// deployment shows the offline-calibrate / online-serve split: the study
// pipeline calibrates both quality impact models, packages the wrapper as a
// single deployment bundle on disk, and a fresh "process" (here: a second
// function with no access to the training objects) loads the bundle,
// reassembles the wrapper, and audits the model through its leaf report —
// the workflow a safety team would follow.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/uw"
)

func main() {
	dir, err := os.MkdirTemp("", "tauw-deploy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	bundlePath := filepath.Join(dir, "tauw-bundle.json")
	if err := calibrateAndSave(bundlePath); err != nil {
		log.Fatal(err)
	}
	if err := loadAndServe(bundlePath); err != nil {
		log.Fatal(err)
	}
}

// calibrateAndSave is the offline half: build the study and write the
// single deployment bundle.
func calibrateAndSave(bundlePath string) error {
	fmt.Println("[offline] calibrating on the synthetic benchmark...")
	st, err := eval.BuildStudy(eval.TinyConfig())
	if err != nil {
		return err
	}
	wrapper, err := st.Wrapper()
	if err != nil {
		return err
	}
	data, err := core.SaveBundle(wrapper)
	if err != nil {
		return err
	}
	if err := os.WriteFile(bundlePath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[offline] wrote %s (%d bytes)\n", filepath.Base(bundlePath), len(data))
	return nil
}

// loadAndServe is the online half: no training data, no DDM — just the
// bundle file.
func loadAndServe(bundlePath string) error {
	data, err := os.ReadFile(bundlePath)
	if err != nil {
		return err
	}
	wrapper, err := core.LoadBundle(data, nil)
	if err != nil {
		return err
	}
	taqim := wrapper.TAQIM()
	fmt.Printf("[online] loaded bundle: %d stateless regions, %d timeseries-aware regions\n",
		wrapper.Base().QIM().NumRegions(), taqim.NumRegions())

	// Audit: the three most trustworthy regions and their conditions.
	fmt.Println("[online] lowest-uncertainty regions of the taQIM:")
	report := taqim.LeafReport()
	for i, leaf := range report {
		if i == 3 {
			break
		}
		fmt.Printf("  leaf %d: u <= %.4f (calib %d/%d)\n",
			leaf.LeafID, leaf.Uncertainty, leaf.CalibFailures, leaf.CalibSamples)
		for _, cond := range leaf.Path {
			fmt.Printf("    where %s\n", cond)
		}
	}

	// Serve a clean, consistent series: ten agreeing outcomes under good
	// conditions. Quality layout: 9 deficit channels + pixel size.
	fmt.Println("[online] streaming a clean series:")
	quality := []float64{0, 0.05, 0, 0, 0, 0.02, 0, 0, 0.1, 180}
	for step := 1; step <= 5; step++ {
		res, err := wrapper.Step(14 /* stop sign */, quality)
		if err != nil {
			return err
		}
		fmt.Printf("  step %d: fused=%d u=%.4f\n", step, res.Fused, res.Uncertainty)
	}

	// Batch serving: the production path. A sharded pool tracks every
	// object concurrently, sessions come and go by string id, and each
	// perception frame arrives as one batch fanned out across the shards —
	// exactly what tauserve's POST /v1/steps does per request.
	fmt.Println("[online] batch-serving three concurrent tracks via the sharded pool:")
	pool, err := core.NewWrapperPool(wrapper.Base(), taqim, core.Config{BufferLimit: 64}, 0)
	if err != nil {
		return err
	}
	ids := make([]string, 3)
	for i := range ids {
		if ids[i], err = pool.OpenSeries(); err != nil {
			return err
		}
	}
	outcomes := []int{14, 14, 3} // two stop signs, one "61" limit sign
	for frame := 1; frame <= 3; frame++ {
		batch := make([]core.SeriesStepItem, len(ids))
		for i, id := range ids {
			batch[i] = core.SeriesStepItem{SeriesID: id, Outcome: outcomes[i], Quality: quality}
		}
		for i, br := range pool.StepBatchSeries(batch, 2) {
			if br.Err != nil {
				return br.Err
			}
			fmt.Printf("  frame %d %s: fused=%d u=%.4f len=%d\n",
				frame, ids[i], br.Result.Fused, br.Result.Uncertainty, br.Result.SeriesLen)
		}
	}
	for _, id := range ids {
		if err := pool.CloseSeries(id); err != nil {
			return err
		}
	}
	fmt.Printf("[online] pool drained: %d active tracks across %d shards\n",
		pool.Active(), pool.NumShards())
	return monitorAndScrape(wrapper, taqim)
}

// monitorAndScrape is the observability half of a deployment: a monitored
// pool serves traffic, ground truth is joined back through the provenance
// ring into the runtime calibration monitor, the state is exposed at
// /metrics exactly as tauserve exposes it, and a scraper (here: a plain
// HTTP GET, standing in for Prometheus) reads the reliability summary.
func monitorAndScrape(wrapper *core.Wrapper, taqim *uw.QualityImpactModel) error {
	fmt.Println("[online] runtime calibration monitoring:")
	pool, err := core.NewWrapperPool(wrapper.Base(), taqim, core.Config{BufferLimit: 64}, 0,
		core.WithMonitoring(128))
	if err != nil {
		return err
	}
	calib, err := monitor.New(monitor.Config{})
	if err != nil {
		return err
	}
	expo := &monitor.Exposition{Monitor: calib, Pool: pool}

	// Serve traffic with ground truth trailing by one frame, as a tracker
	// that confirms objects a frame later would.
	id, err := pool.OpenSeries()
	if err != nil {
		return err
	}
	track, err := pool.ResolveSeries(id)
	if err != nil {
		return err
	}
	quality := []float64{0, 0.05, 0, 0, 0, 0.02, 0, 0, 0.1, 180}
	const truth = 14
	for step := 1; step <= 20; step++ {
		res, err := pool.StepSeries(id, truth, quality)
		if err != nil {
			return err
		}
		if step > 1 {
			rec, err := pool.TakeFeedback(track, res.TotalSteps-1)
			if err != nil {
				return err
			}
			if err := calib.Observe(track, rec.Uncertainty, rec.Fused != truth); err != nil {
				return err
			}
		}
	}

	// Expose and scrape: the handler renders the same Prometheus text
	// tauserve serves at GET /metrics.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(expo.AppendMetrics(nil))
	}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Println("[online] scraped /metrics; reliability summary:")
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case strings.HasPrefix(line, "tauw_steps_total"),
			strings.HasPrefix(line, "tauw_feedback_total"),
			strings.HasPrefix(line, "tauw_brier_windowed"),
			strings.HasPrefix(line, "tauw_ece"),
			strings.HasPrefix(line, "tauw_drift_active"):
			fmt.Printf("  %s\n", line)
		}
	}
	snap := calib.Snapshot()
	fmt.Printf("[online] monitor verdict: %d joins, windowed Brier %.4f, ECE %.4f, drift active=%v\n",
		snap.Feedbacks, snap.WindowedBrier, snap.ECE, snap.Drift.Active)
	return nil
}
