// deployment shows the offline-calibrate / online-serve split: the study
// pipeline calibrates both quality impact models, packages the wrapper as a
// single deployment bundle on disk, and a fresh "process" (here: a second
// function with no access to the training objects) loads the bundle,
// reassembles the wrapper, and audits the model through its leaf report —
// the workflow a safety team would follow.
//
//tauw:cli
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/simplex"
	"github.com/iese-repro/tauw/internal/uw"
	"github.com/iese-repro/tauw/internal/wire"
)

func main() {
	dir, err := os.MkdirTemp("", "tauw-deploy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	bundlePath := filepath.Join(dir, "tauw-bundle.json")
	if err := calibrateAndSave(bundlePath); err != nil {
		log.Fatal(err)
	}
	if err := loadAndServe(bundlePath); err != nil {
		log.Fatal(err)
	}
}

// calibrateAndSave is the offline half: build the study and write the
// single deployment bundle.
func calibrateAndSave(bundlePath string) error {
	fmt.Println("[offline] calibrating on the synthetic benchmark...")
	st, err := eval.BuildStudy(eval.TinyConfig())
	if err != nil {
		return err
	}
	wrapper, err := st.Wrapper()
	if err != nil {
		return err
	}
	data, err := core.SaveBundle(wrapper)
	if err != nil {
		return err
	}
	if err := os.WriteFile(bundlePath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[offline] wrote %s (%d bytes)\n", filepath.Base(bundlePath), len(data))
	return nil
}

// loadAndServe is the online half: no training data, no DDM — just the
// bundle file.
func loadAndServe(bundlePath string) error {
	data, err := os.ReadFile(bundlePath)
	if err != nil {
		return err
	}
	wrapper, err := core.LoadBundle(data, nil)
	if err != nil {
		return err
	}
	taqim := wrapper.TAQIM()
	fmt.Printf("[online] loaded bundle: %d stateless regions, %d timeseries-aware regions\n",
		wrapper.Base().QIM().NumRegions(), taqim.NumRegions())

	// Audit: the three most trustworthy regions and their conditions.
	fmt.Println("[online] lowest-uncertainty regions of the taQIM:")
	report := taqim.LeafReport()
	for i, leaf := range report {
		if i == 3 {
			break
		}
		fmt.Printf("  leaf %d: u <= %.4f (calib %d/%d)\n",
			leaf.LeafID, leaf.Uncertainty, leaf.CalibFailures, leaf.CalibSamples)
		for _, cond := range leaf.Path {
			fmt.Printf("    where %s\n", cond)
		}
	}

	// Serve a clean, consistent series: ten agreeing outcomes under good
	// conditions. Quality layout: 9 deficit channels + pixel size.
	fmt.Println("[online] streaming a clean series:")
	quality := []float64{0, 0.05, 0, 0, 0, 0.02, 0, 0, 0.1, 180}
	for step := 1; step <= 5; step++ {
		res, err := wrapper.Step(14 /* stop sign */, quality)
		if err != nil {
			return err
		}
		fmt.Printf("  step %d: fused=%d u=%.4f\n", step, res.Fused, res.Uncertainty)
	}

	// Batch serving: the production path. A sharded pool tracks every
	// object concurrently, sessions come and go by string id, and each
	// perception frame arrives as one batch fanned out across the shards —
	// exactly what tauserve's POST /v1/steps does per request.
	fmt.Println("[online] batch-serving three concurrent tracks via the sharded pool:")
	pool, err := core.NewWrapperPool(wrapper.Base(), taqim, core.Config{BufferLimit: 64}, 0)
	if err != nil {
		return err
	}
	ids := make([]string, 3)
	for i := range ids {
		if ids[i], err = pool.OpenSeries(); err != nil {
			return err
		}
	}
	outcomes := []int{14, 14, 3} // two stop signs, one "61" limit sign
	for frame := 1; frame <= 3; frame++ {
		batch := make([]core.SeriesStepItem, len(ids))
		for i, id := range ids {
			batch[i] = core.SeriesStepItem{SeriesID: id, Outcome: outcomes[i], Quality: quality}
		}
		for i, br := range pool.StepBatchSeries(batch, 2) {
			if br.Err != nil {
				return br.Err
			}
			fmt.Printf("  frame %d %s: fused=%d u=%.4f len=%d\n",
				frame, ids[i], br.Result.Fused, br.Result.Uncertainty, br.Result.SeriesLen)
		}
	}
	for _, id := range ids {
		if err := pool.CloseSeries(id); err != nil {
			return err
		}
	}
	fmt.Printf("[online] pool drained: %d active tracks across %d shards\n",
		pool.Active(), pool.NumShards())
	if err := monitorAndScrape(wrapper, taqim); err != nil {
		return err
	}
	return wireTransport(wrapper, taqim)
}

// monitorAndScrape is the observability half of a deployment: a monitored
// pool serves traffic, ground truth is joined back through the provenance
// ring into the runtime calibration monitor, the state is exposed at
// /metrics exactly as tauserve exposes it, and a scraper (here: a plain
// HTTP GET, standing in for Prometheus) reads the reliability summary.
func monitorAndScrape(wrapper *core.Wrapper, taqim *uw.QualityImpactModel) error {
	fmt.Println("[online] runtime calibration monitoring:")
	pool, err := core.NewWrapperPool(wrapper.Base(), taqim, core.Config{BufferLimit: 64}, 0,
		core.WithMonitoring(128))
	if err != nil {
		return err
	}
	calib, err := monitor.New(monitor.Config{})
	if err != nil {
		return err
	}
	expo := &monitor.Exposition{Monitor: calib, Pool: pool}

	// Serve traffic with ground truth trailing by one frame, as a tracker
	// that confirms objects a frame later would.
	id, err := pool.OpenSeries()
	if err != nil {
		return err
	}
	track, err := pool.ResolveSeries(id)
	if err != nil {
		return err
	}
	quality := []float64{0, 0.05, 0, 0, 0, 0.02, 0, 0, 0.1, 180}
	const truth = 14
	for step := 1; step <= 20; step++ {
		res, err := pool.StepSeries(id, truth, quality)
		if err != nil {
			return err
		}
		if step > 1 {
			rec, err := pool.TakeFeedback(track, res.TotalSteps-1)
			if err != nil {
				return err
			}
			if err := calib.Observe(track, rec.Uncertainty, rec.Fused != truth); err != nil {
				return err
			}
		}
	}

	// Expose and scrape: the handler renders the same Prometheus text
	// tauserve serves at GET /metrics.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(expo.AppendMetrics(nil))
	}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Println("[online] scraped /metrics; reliability summary:")
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case strings.HasPrefix(line, "tauw_steps_total"),
			strings.HasPrefix(line, "tauw_feedback_total"),
			strings.HasPrefix(line, "tauw_brier_windowed"),
			strings.HasPrefix(line, "tauw_ece"),
			strings.HasPrefix(line, "tauw_drift_active"):
			fmt.Printf("  %s\n", line)
		}
	}
	snap := calib.Snapshot()
	fmt.Printf("[online] monitor verdict: %d joins, windowed Brier %.4f, ECE %.4f, drift active=%v\n",
		snap.Feedbacks, snap.WindowedBrier, snap.ECE, snap.Drift.Active)
	return nil
}

// wireTransport is the binary-transport half of a deployment: instead of
// one HTTP request per perception frame, the client keeps a persistent
// connection and exchanges length-prefixed frames (what `tauserve
// -tcp-addr` serves). The server side here is a miniature of tauserve's
// dispatch — hello, open-series, step, close — backed by the same pool and
// simplex gate, enough to show the client API and the hello ladder.
func wireTransport(wrapper *core.Wrapper, taqim *uw.QualityImpactModel) error {
	fmt.Println("[online] binary streaming transport:")
	pool, err := core.NewWrapperPool(wrapper.Base(), taqim, core.Config{BufferLimit: 64}, 0)
	if err != nil {
		return err
	}
	gate, err := simplex.NewMonitor(simplex.DefaultTSRPolicy())
	if err != nil {
		return err
	}
	policy := gate.Policy()
	levels := make([]string, 0, len(policy.Levels)+1)
	for _, l := range policy.Levels {
		levels = append(levels, l.Name)
	}
	levels = append(levels, policy.Terminal.Name)
	levelIdx := make(map[string]uint8, len(levels))
	for i, name := range levels {
		levelIdx[name] = uint8(i)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fr := wire.NewReader(conn, nil)
		var out []byte
		for {
			f, err := fr.Next()
			if err != nil {
				return
			}
			out = out[:0]
			var lenOff int
			switch f.Type {
			case wire.FrameHello:
				out, lenOff = wire.BeginFrame(out, wire.ResponseType(wire.FrameHello), f.ReqID)
				out, _ = wire.AppendHelloPayload(out, &wire.Hello{Levels: levels})
			case wire.FrameOpenSeries:
				id, err := pool.OpenSeries()
				if err != nil {
					out, lenOff = wire.BeginFrame(out, wire.FrameError, f.ReqID)
					out = wire.AppendErrorPayload(out, wire.StatusInternal, err.Error())
					break
				}
				out, lenOff = wire.BeginFrame(out, wire.ResponseType(wire.FrameOpenSeries), f.ReqID)
				out = wire.AppendSeriesIDPayload(out, id)
			case wire.FrameStep:
				v, _, err := wire.DecodeStepItemView(f.Payload)
				if err != nil {
					return
				}
				qf := make([]float64, v.NumQuality())
				for i := range qf {
					qf[i] = v.QualityAt(i)
				}
				res, err := pool.StepSeries(string(v.SeriesID), v.Outcome, qf)
				if err != nil {
					out, lenOff = wire.BeginFrame(out, wire.FrameError, f.ReqID)
					out = wire.AppendErrorPayload(out, wire.StatusNotFound, err.Error())
					break
				}
				decision, err := gate.Gate(res.Fused, res.Uncertainty)
				if err != nil {
					return
				}
				out, lenOff = wire.BeginFrame(out, wire.ResponseType(wire.FrameStep), f.ReqID)
				out = wire.AppendStepResultPayload(out, &wire.StepResult{
					Fused: res.Fused, Uncertainty: res.Uncertainty,
					StatelessU: res.Stateless.Uncertainty,
					SeriesLen:  res.SeriesLen, TotalSteps: res.TotalSteps,
					ModelVersion: res.ModelVersion, Accepted: decision.Accepted,
				}, levelIdx[decision.Level.Name])
			case wire.FrameCloseSeries:
				id, err := wire.DecodeSeriesIDPayload(f.Payload)
				if err != nil {
					return
				}
				if err := pool.CloseSeries(string(id)); err != nil {
					out, lenOff = wire.BeginFrame(out, wire.FrameError, f.ReqID)
					out = wire.AppendErrorPayload(out, wire.StatusNotFound, err.Error())
					break
				}
				out, lenOff = wire.BeginFrame(out, wire.ResponseType(wire.FrameCloseSeries), f.ReqID)
			default:
				out, lenOff = wire.BeginFrame(out, wire.FrameError, f.ReqID)
				out = wire.AppendErrorPayload(out, wire.StatusBadRequest, "unsupported frame")
			}
			out = wire.EndFrame(out, lenOff)
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	}()

	client, err := wire.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer client.Close()
	fmt.Printf("  connected; countermeasure ladder from hello: %v\n", client.Levels())
	id, err := client.OpenSeries()
	if err != nil {
		return err
	}
	quality := []float64{0, 0.05, 0, 0, 0, 0.02, 0, 0, 0.1, 180}
	var res wire.StepResult
	for step := 1; step <= 3; step++ {
		if err := client.Step(id, 14, quality, &res); err != nil {
			return err
		}
		fmt.Printf("  %s step %d: fused=%d u=%.4f countermeasure=%s\n",
			id, step, res.Fused, res.Uncertainty, res.Countermeasure)
	}
	return client.CloseSeries(id)
}
