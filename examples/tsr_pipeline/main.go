// tsr_pipeline runs the full traffic-sign-recognition pipeline of the paper
// end to end on synthetic data: benchmark generation, augmentation with
// situation settings, DDM training, Kalman tracking for series segmentation,
// majority-vote information fusion, and the timeseries-aware uncertainty
// wrapper — the architecture of the paper's Fig. 2.
//
//tauw:cli
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/gtsrb"
	"github.com/iese-repro/tauw/internal/track"
)

func main() {
	// Calibrate the whole stack on the tiny preset (seconds).
	start := time.Now()
	fmt.Println("calibrating DDM and wrappers on the synthetic GTSRB benchmark...")
	study, err := eval.BuildStudy(eval.TinyConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ready in %v; DDM test accuracy %.1f%%\n\n",
		time.Since(start).Round(time.Millisecond), 100*study.DDMTestAccuracy)

	wrapper, err := study.Wrapper()
	if err != nil {
		log.Fatal(err)
	}
	tracker, err := track.NewTracker(track.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Drive past a few signs: the tracker segments the detection stream;
	// each boundary clears the wrapper's timeseries buffer.
	gen := gtsrb.DefaultGeneratorConfig()
	gen.NumSeries = 3
	gen.Seed = 99
	drive, err := gtsrb.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	for _, sign := range drive {
		class, _ := gtsrb.ClassByID(sign.Class)
		fmt.Printf("=== approaching %q (class %d) ===\n", class.Name, sign.Class)
		// The test-series observations give us DDM outcomes + quality
		// factors for a matching series; here we reuse a study series
		// of the same class to stand in for the live DDM.
		obs := findSeries(study, sign.Class)
		if obs < 0 {
			fmt.Println("  (no test series for this class; skipping)")
			continue
		}
		series := study.TestSeries[obs]
		for j, f := range sign.Frames {
			if j >= len(series.Outcomes) {
				break
			}
			tr, err := tracker.Observe(f.ImageX, f.ImageY)
			if err != nil {
				log.Fatal(err)
			}
			if tr.NewSeries {
				wrapper.NewSeries()
				fmt.Printf("  tracker: new series %d (innovation %.1f)\n", tr.SeriesID, tr.Distance2)
			}
			res, err := wrapper.Step(series.Outcomes[j], series.Quality[j])
			if err != nil {
				log.Fatal(err)
			}
			status := "OK"
			if res.Fused != series.Truth {
				status = "WRONG"
			}
			fmt.Printf("  step %2d: ddm=%2d fused=%2d u=%.4f [%s]\n",
				j+1, series.Outcomes[j], res.Fused, res.Uncertainty, status)
		}
		// Simulate the gap between signs: the detector loses the
		// object and the tracker drops the track.
		for g := 0; g <= track.DefaultConfig().MaxGap; g++ {
			tracker.MissedFrame()
		}
		fmt.Println()
	}
}

// findSeries returns the index of a test series with the given ground-truth
// class, or -1.
func findSeries(study *eval.Study, class int) int {
	for i, s := range study.TestSeries {
		if s.Truth == class {
			return i
		}
	}
	return -1
}
