// fusion_compare contrasts the uncertainty-fusion rules on a hand-crafted
// timeseries and shows how to plug a custom information-fusion rule into the
// wrapper stack. It needs no training: the per-step uncertainties are given,
// which isolates the behaviour of the fusion rules themselves.
//
//tauw:cli
package main

import (
	"fmt"
	"log"

	"github.com/iese-repro/tauw/internal/fusion"
)

// firstSeen is a custom OutcomeFuser: it sticks with the first outcome of
// the series (a deliberately naive rule, to show the interface).
type firstSeen struct{}

func (firstSeen) Name() string { return "first-seen" }

func (firstSeen) Fuse(outcomes []int, _ []float64) (int, error) {
	if len(outcomes) == 0 {
		return 0, fusion.ErrNoOutcomes
	}
	return outcomes[0], nil
}

func main() {
	// A series where the model starts wrong under a distant, blurry view
	// and recovers as the sign grows: outcome 7 is the truth.
	outcomes := []int{3, 7, 3, 7, 7, 7, 7, 7, 7, 7}
	uncertainties := []float64{0.45, 0.38, 0.35, 0.2, 0.12, 0.08, 0.05, 0.04, 0.03, 0.02}

	outcomeFusers := []fusion.OutcomeFuser{
		fusion.MajorityVote{},
		fusion.MajorityVote{TieBreak: fusion.LowestUncertainty},
		fusion.CertaintyWeighted{},
		fusion.Latest{},
		firstSeen{},
	}
	uncertaintyFusers := []fusion.UncertaintyFuser{
		fusion.Naive{},
		fusion.Opportune{},
		fusion.WorstCase{},
		fusion.Current{},
	}

	fmt.Println("step-by-step fused outcomes (truth = 7):")
	fmt.Printf("%4s %7s", "step", "ddm")
	for _, f := range outcomeFusers {
		fmt.Printf(" %28s", f.Name())
	}
	fmt.Println()
	for i := range outcomes {
		fmt.Printf("%4d %7d", i+1, outcomes[i])
		for _, f := range outcomeFusers {
			fused, err := f.Fuse(outcomes[:i+1], uncertainties[:i+1])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %28d", fused)
		}
		fmt.Println()
	}

	fmt.Println("\njoint uncertainty of the fused outcome per step:")
	fmt.Printf("%4s", "step")
	for _, f := range uncertaintyFusers {
		fmt.Printf(" %12s", f.Name())
	}
	fmt.Println()
	for i := range outcomes {
		fmt.Printf("%4d", i+1)
		for _, f := range uncertaintyFusers {
			u, err := f.Fuse(uncertainties[:i+1])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.5f", u)
		}
		fmt.Println()
	}
	fmt.Println("\nnote the spread: the naive product collapses toward 0 (overconfident")
	fmt.Println("under correlated errors), the worst-case maximum never recovers from the")
	fmt.Println("bad start (overly conservative), and the opportune minimum sits between —")
	fmt.Println("the gap the timeseries-aware wrapper closes with calibrated estimates.")
}
