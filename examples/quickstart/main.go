// Quickstart: build a timeseries-aware uncertainty wrapper around a
// black-box classifier in five steps.
//
//  1. Collect frame-level training data: quality factors + "was the model
//     wrong" labels.
//  2. Fit and calibrate the stateless quality impact model (uw.FitQIM).
//  3. Collect series-structured observations and fit the timeseries-aware
//     quality impact model (core.FitTimeseriesQIM).
//  4. Assemble the runtime wrapper (core.NewWrapper).
//  5. Stream outcomes: Step() per frame, NewSeries() when the tracker says
//     the object changed.
//
// The "model" here is a simulated classifier whose error rate depends on a
// single quality factor, so the example runs in milliseconds; swap in any
// real model that yields (outcome, quality factors) per frame.
//
//tauw:cli
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/uw"
)

// observeSeries simulates one tracked object: a ground truth, per-frame
// model outcomes whose error rate grows with the "blur" quality factor, and
// the quality factors seen by the wrapper.
func observeSeries(rng *rand.Rand, length int) (truth int, outcomes []int, quality [][]float64) {
	truth = rng.IntN(10)
	blur := rng.Float64()
	wrong := (truth + 1) % 10
	for j := 0; j < length; j++ {
		o := truth
		if rng.Float64() < 0.03+0.5*blur {
			o = wrong
		}
		outcomes = append(outcomes, o)
		quality = append(quality, []float64{blur, rng.Float64()})
	}
	return truth, outcomes, quality
}

func main() {
	rng := rand.New(rand.NewPCG(42, 1))

	// Steps 1+3: collect training and calibration data, both frame-level
	// (for the stateless model) and series-level (for the taQIM).
	collect := func(n int) (series []core.SeriesObservations, frameX [][]float64, frameY []bool) {
		for i := 0; i < n; i++ {
			truth, outcomes, quality := observeSeries(rng, 10)
			series = append(series, core.SeriesObservations{Truth: truth, Outcomes: outcomes, Quality: quality})
			for j := range outcomes {
				frameX = append(frameX, quality[j])
				frameY = append(frameY, outcomes[j] != truth)
			}
		}
		return series, frameX, frameY
	}
	trainSeries, trainX, trainY := collect(400)
	calibSeries, calibX, calibY := collect(400)

	// Step 2: the stateless quality impact model. Factor names keep the
	// calibrated tree auditable.
	qimCfg := uw.DefaultQIMConfig()
	qimCfg.MinLeafCalibration = 150
	qim, err := uw.FitQIM(trainX, trainY, calibX, calibY, []string{"blur", "noise"}, qimCfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := uw.NewWrapper(qim, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: the timeseries-aware quality impact model on top.
	taqim, err := core.FitTimeseriesQIM(base, trainSeries, calibSeries,
		[]string{"blur", "noise"}, core.AllFeatures(), nil, qimCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4: the runtime wrapper.
	wrapper, err := core.NewWrapper(base, taqim, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Step 5: stream a fresh series and watch the dependable uncertainty
	// tighten as consistent evidence accumulates.
	truth, outcomes, quality := observeSeries(rng, 10)
	fmt.Printf("ground truth class: %d\n", truth)
	fmt.Printf("%4s %8s %7s %12s %12s\n", "step", "outcome", "fused", "stateless u", "taUW u")
	for j := range outcomes {
		res, err := wrapper.Step(outcomes[j], quality[j])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %8d %7d %12.4f %12.4f\n",
			j+1, outcomes[j], res.Fused, res.Stateless.Uncertainty, res.Uncertainty)
	}

	// Transparency: the calibrated tree is a readable rule list.
	fmt.Println("\ntimeseries-aware quality impact model rules:")
	fmt.Print(taqim.Rules())
}
