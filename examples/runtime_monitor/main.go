// runtime_monitor demonstrates runtime V&V with the simplex pattern the
// paper motivates, now wired through the runtime calibration-monitoring
// subsystem: every fused outcome's dependable uncertainty is gated against
// an escalation ladder of countermeasures (accept → advisory-only → ignore
// → handover), served steps are tracked in a monitored wrapper pool, and
// ground truth is fed back through the provenance-ring join so streaming
// reliability statistics — windowed Brier, reliability bins, ECE, and a
// Page-Hinkley drift alarm — are maintained by the same implementation a
// production deployment scrapes at /metrics.
//
// The second act closes the drift loop: a corrupted ground-truth regime
// (label noise) degrades the windowed Brier until the drift alarm fires,
// the recalibrator refreshes the degraded taQIM leaf bounds from the
// accumulated per-leaf evidence, and the refreshed model is hot-swapped
// into the pool with zero downtime — the model version in every result
// ticks up while traffic keeps flowing.
//
//tauw:cli
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/gtsrb"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/recalib"
	"github.com/iese-repro/tauw/internal/simplex"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("calibrating wrappers (tiny preset)...")
	study, err := eval.BuildStudy(eval.TinyConfig())
	if err != nil {
		return err
	}
	gate, err := simplex.NewMonitor(simplex.DefaultTSRPolicy())
	if err != nil {
		return err
	}
	// The serving substrate: a monitored pool (shard-local step counters +
	// per-series provenance rings) and the calibration monitor fed by
	// ground-truth joins. The aggressive drift thresholds make the alarm
	// demonstrable on a tiny stream.
	pool, err := core.NewWrapperPool(study.Base, study.TAQIM, core.Config{}, 0,
		core.WithMonitoring(64))
	if err != nil {
		return err
	}
	calib, err := monitor.New(monitor.Config{
		Window: 512,
		Drift:  monitor.DriftConfig{Delta: 0.01, Lambda: 3, MinSamples: 100},
	})
	if err != nil {
		return err
	}
	// The recalibration loop: per-leaf evidence accumulators and the policy
	// engine that refreshes leaf bounds and hot-swaps the model when the
	// drift alarm fires.
	leafs, err := monitor.NewLeafStats(study.TAQIM.NumRegions(), 0)
	if err != nil {
		return err
	}
	recalibrator, err := recalib.New(pool, leafs, calib, recalib.Config{
		MinLeafFeedback: 25,
		Cooldown:        -1, // demo stream, no wall-clock pacing
		DropPrior:       true,
	})
	if err != nil {
		return err
	}

	// Stream a mix of clean and degraded test series through the gate,
	// reporting each step's ground truth back to the monitor — in a real
	// deployment the truth arrives later (a map match, a human label); here
	// the benchmark knows it immediately.
	rng := rand.New(rand.NewPCG(7, 7))
	shown := 0
	for _, series := range study.TestSeries {
		if rng.Float64() > 0.15 {
			continue
		}
		id, err := pool.OpenSeries()
		if err != nil {
			return err
		}
		track, err := pool.ResolveSeries(id)
		if err != nil {
			return err
		}
		var last core.Result
		var lastLevel string
		for j := range series.Outcomes {
			res, err := pool.StepSeries(id, series.Outcomes[j], series.Quality[j])
			if err != nil {
				return err
			}
			decision, err := gate.Gate(res.Fused, res.Uncertainty)
			if err != nil {
				return err
			}
			// Ground-truth feedback: join the report to the exact estimate
			// it judges, then fold the verdict into the reliability stats.
			rec, err := pool.TakeFeedback(track, res.TotalSteps)
			if err != nil {
				return err
			}
			wrong := rec.Fused != series.Truth
			if err := calib.Observe(track, rec.Uncertainty, wrong); err != nil {
				return err
			}
			leafs.Observe(track, rec.TAQIMLeaf, wrong)
			last, lastLevel = res, decision.Level.Name
		}
		if shown < 8 {
			verdict := "correct"
			if last.Fused != series.Truth {
				verdict = "WRONG"
			}
			fmt.Printf("series truth=%2d -> final u=%.4f, countermeasure=%-14s fused %s (taQIM leaf %d)\n",
				series.Truth, last.Uncertainty, lastLevel, verdict, last.TAQIMLeaf)
			shown++
		}
		if err := pool.CloseSeries(id); err != nil {
			return err
		}
	}

	// The reliability summary — the numbers a dashboard would plot.
	snap := calib.Snapshot()
	fmt.Printf("\ncalibration monitor over %d ground-truth joins (%d steps served):\n",
		snap.Feedbacks, pool.StepCount())
	fmt.Printf("  accuracy        %.1f%%\n", 100*float64(snap.Correct)/float64(snap.Feedbacks))
	fmt.Printf("  windowed Brier  %.4f (last %d feedbacks)\n", snap.WindowedBrier, snap.WindowCount)
	fmt.Printf("  cumulative      %.4f\n", snap.Brier)
	fmt.Printf("  ECE             %.4f\n", snap.ECE)
	fmt.Println("  reliability bins (predicted vs observed error rate):")
	for _, b := range snap.Bins {
		if b.Count == 0 {
			continue
		}
		fmt.Printf("    u in [%.1f,%.1f): predicted %.3f observed %.3f (%d joins)\n",
			b.Lo, b.Hi, b.MeanPredicted, b.ErrorRate, b.Count)
	}
	fmt.Printf("  drift: %d alarms, active=%v (PH stat %.2f over %d samples)\n",
		snap.Drift.Alarms, snap.Drift.Active, snap.Drift.Stat, snap.Drift.Samples)

	gateStats := gate.Snapshot()
	fmt.Printf("\nsimplex gate over %d outcomes:\n", gateStats.Total)
	gate.EachCount(func(name string, count int) {
		fmt.Printf("  %-16s %6d (%.1f%%)\n", name, count, 100*float64(count)/float64(gateStats.Total))
	})

	// ---- Act two: drift and the closed recalibration loop. ----------------
	// A corrupted truth regime (uniform label noise on half the verdicts)
	// stands in for traffic drifting out of the offline calibration: the
	// squared errors degrade, the Page-Hinkley alarm fires, and the armed
	// recalibrator refreshes the degraded leaf bounds and hot-swaps the
	// model — all while the pool keeps serving.
	fmt.Printf("\ninjecting label noise (model version %d serving)...\n", pool.ModelVersion())
	swaps := 0
	for _, series := range study.TestSeries {
		if rng.Float64() > 0.3 {
			continue
		}
		id, err := pool.OpenSeries()
		if err != nil {
			return err
		}
		track, err := pool.ResolveSeries(id)
		if err != nil {
			return err
		}
		for j := range series.Outcomes {
			res, err := pool.StepSeries(id, series.Outcomes[j], series.Quality[j])
			if err != nil {
				return err
			}
			rec, err := pool.TakeFeedback(track, res.TotalSteps)
			if err != nil {
				return err
			}
			truth := series.Truth
			if rng.Float64() < 0.5 {
				truth = (truth + 1) % gtsrb.NumClasses // corrupted verdict
			}
			wrong := rec.Fused != truth
			if err := calib.Observe(track, rec.Uncertainty, wrong); err != nil {
				return err
			}
			leafs.Observe(track, rec.TAQIMLeaf, wrong)
			if calib.DriftAlarmed() {
				rep, err := recalibrator.TryAuto()
				if err != nil {
					return err
				}
				if rep.Swapped {
					swaps++
					lifted := 0
					for _, d := range rep.Deltas {
						if d.Refreshed {
							lifted++
						}
					}
					fmt.Printf("  drift alarm -> recalibrated: model v%d -> v%d (%d leaf bounds refreshed)\n",
						rep.OldVersion, rep.NewVersion, lifted)
				}
			}
		}
		if err := pool.CloseSeries(id); err != nil {
			return err
		}
	}
	snap = calib.Snapshot()
	fmt.Printf("after the drifted regime: model version %d (%d swaps), windowed Brier %.4f, drift alarms %d\n",
		pool.ModelVersion(), swaps, snap.WindowedBrier, snap.Drift.Alarms)

	// The same state, as Prometheus would scrape it — now including the
	// model-version gauges the recalibrator exposes.
	expo := &monitor.Exposition{Monitor: calib, Pool: pool, Gate: gate, Swap: recalibrator}
	fmt.Println("\nselected /metrics lines:")
	printMetricLines(expo.AppendMetrics(nil), 6)
	return nil
}

// printMetricLines prints the first n sample lines (skipping comments).
func printMetricLines(metrics []byte, n int) {
	shown := 0
	for _, line := range strings.Split(string(metrics), "\n") {
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		fmt.Printf("  %s\n", line)
		if shown++; shown == n {
			return
		}
	}
}
