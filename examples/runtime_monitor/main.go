// runtime_monitor demonstrates runtime V&V with the simplex pattern the
// paper motivates: a monitor compares every fused outcome's dependable
// uncertainty against an escalation ladder of countermeasures (accept →
// advisory-only → ignore → handover) so the system never acts on
// undependable perception.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/simplex"
)

func main() {
	fmt.Println("calibrating wrappers (tiny preset)...")
	study, err := eval.BuildStudy(eval.TinyConfig())
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := simplex.NewMonitor(simplex.DefaultTSRPolicy())
	if err != nil {
		log.Fatal(err)
	}
	wrapper, err := study.Wrapper()
	if err != nil {
		log.Fatal(err)
	}

	// Stream a mix of clean and degraded test series through the gate.
	rng := rand.New(rand.NewPCG(7, 7))
	shown := 0
	for _, series := range study.TestSeries {
		if rng.Float64() > 0.15 {
			continue
		}
		wrapper.NewSeries()
		var lastLevel string
		var lastU float64
		lastFused := -1
		for j := range series.Outcomes {
			res, err := wrapper.Step(series.Outcomes[j], series.Quality[j])
			if err != nil {
				log.Fatal(err)
			}
			decision, err := monitor.Gate(res.Fused, res.Uncertainty)
			if err != nil {
				log.Fatal(err)
			}
			lastLevel = decision.Level.Name
			lastU = decision.Uncertainty
			lastFused = res.Fused
		}
		if shown < 12 {
			// The darkness channel hints at why a series is hard.
			dark := series.Quality[0][augment.Darkness]
			verdict := "correct"
			if lastFused != series.Truth {
				verdict = "WRONG"
			}
			fmt.Printf("series truth=%2d darkness=%.2f -> final u=%.4f, countermeasure=%-14s fused %s\n",
				series.Truth, dark, lastU, lastLevel, verdict)
			shown++
		}
	}

	stats := monitor.Snapshot()
	fmt.Printf("\nmonitor gated %d outcomes:\n", stats.Total)
	for _, level := range append(simplex.DefaultTSRPolicy().Levels, simplex.DefaultTSRPolicy().Terminal) {
		fmt.Printf("  %-16s %6d (%.1f%%)\n", level.Name, stats.PerLevel[level.Name],
			100*float64(stats.PerLevel[level.Name])/float64(stats.Total))
	}
}
