package tauw_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/trace"
)

// BenchmarkPoolStepTraced is the flight recorder's hot-path gate: the pool
// contention benchmark (many goroutines, disjoint track partitions, same
// shape as BenchmarkPoolStepParallel/sharded) with a recorder attached, so
// the delta against the untraced runs prices the per-step trace record —
// two clock reads plus two atomic operations on a striped spin word — and
// the 0 allocs/op requirement is enforced by the CI alloc-decay gate.
func BenchmarkPoolStepTraced(b *testing.B) {
	st := study(b)
	series := st.TestSeries[0]
	outcome, quality := series.Outcomes[0], series.Quality[0]
	rec := trace.New(trace.Config{})
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM, benchPoolCfg, 0, core.WithTrace(rec))
	if err != nil {
		b.Fatal(err)
	}
	for id := 0; id < benchPoolTracks; id++ {
		if err := pool.Open(id); err != nil {
			b.Fatal(err)
		}
	}
	// Fill every ring (plus one eviction round) so the timed section never
	// sees buffer growth — only the steady-state step plus trace cost.
	for i := 0; i < benchPoolCfg.BufferLimit+2; i++ {
		for id := 0; id < benchPoolTracks; id++ {
			if _, err := pool.Step(id, outcome, quality); err != nil {
				b.Fatal(err)
			}
		}
	}
	perG := benchPoolTracks / runtime.GOMAXPROCS(0)
	if perG < 1 {
		perG = 1
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := (int(next.Add(1)-1) * perG) % benchPoolTracks
		i := 0
		for pb.Next() {
			i++
			if _, err := pool.Step(base+i%perG, outcome, quality); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkFlightDump prices one merged /debug/flight snapshot of a full
// recorder: drain every stripe under its spin word, then sort by timestamp.
// The destination buffer is reused across iterations, so the steady state —
// what a scrape loop or an anomaly freeze pays — must be allocation-free
// (enforced by the CI alloc gate).
func BenchmarkFlightDump(b *testing.B) {
	rec := trace.New(trace.Config{})
	// Fill every stripe past wraparound so the dump works at capacity.
	perStripe := rec.Capacity() / trace.DefaultRings
	for shard := 0; shard < trace.DefaultRings; shard++ {
		for i := 0; i < perStripe+16; i++ {
			rec.Record(trace.KindStep, trace.StatusOK, uint16(shard), uint64(i), 1)
		}
	}
	dst := make([]trace.Event, 0, rec.Capacity())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = rec.Snapshot(dst)
		if len(dst) != rec.Capacity() {
			b.Fatalf("snapshot of a full recorder returned %d events, want %d", len(dst), rec.Capacity())
		}
	}
}
