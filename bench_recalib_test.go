package tauw_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/dtree"
	"github.com/iese-repro/tauw/internal/uw"
)

// BenchmarkRecalibrate measures one full model refresh: clone the taQIM's
// tree, recompute every leaf's binomial bound from combined offline+online
// counts, and recompile the struct-of-arrays inference form — the work a
// drift alarm triggers. It runs off the serving path (the pool keeps
// stepping on the old revision), so its cost bounds recalibration latency,
// not serving latency.
func BenchmarkRecalibrate(b *testing.B) {
	st := study(b)
	n := st.TAQIM.NumRegions()
	ev := make([]dtree.LeafEvidence, n)
	for i := range ev {
		ev[i] = dtree.LeafEvidence{LeafID: i, Count: 500, Events: 50}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.TAQIM.Recalibrate(ev, dtree.RecalibConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolStepDuringSwap is BenchmarkPoolStepParallel/sharded with a
// background goroutine hot-swapping the serving model about once per
// millisecond: the step path must stay allocation-free and within a few
// nanoseconds of the swap-free number — the zero-downtime claim, measured.
// The monitoring ring is on, as it would be in any deployment that can
// recalibrate at all.
func BenchmarkPoolStepDuringSwap(b *testing.B) {
	st := study(b)
	series := st.TestSeries[0]
	outcome, quality := series.Outcomes[0], series.Quality[0]
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM, benchPoolCfg, 0, core.WithMonitoring(64))
	if err != nil {
		b.Fatal(err)
	}
	for id := 0; id < benchPoolTracks; id++ {
		if err := pool.Open(id); err != nil {
			b.Fatal(err)
		}
	}
	lifted, _, err := st.TAQIM.Recalibrate(
		[]dtree.LeafEvidence{{LeafID: 0, Count: 1000, Events: 500}}, dtree.RecalibConfig{})
	if err != nil {
		b.Fatal(err)
	}
	// Warm every track once before the timer: a track's first step
	// allocates its scratch row, which is open/setup cost — the benchmark
	// (and its alloc gate) measures the steady-state step during swaps.
	for id := 0; id < benchPoolTracks; id++ {
		if _, err := pool.Step(id, outcome, quality); err != nil {
			b.Fatal(err)
		}
	}
	models := [2]*uw.QualityImpactModel{st.TAQIM, lifted}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := pool.SwapModel(models[i%2]); err != nil {
				b.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	perG := benchPoolTracks / runtime.GOMAXPROCS(0)
	if perG < 1 {
		perG = 1
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := (int(next.Add(1)-1) * perG) % benchPoolTracks
		i := 0
		for pb.Next() {
			i++
			if _, err := pool.Step(base+i%perG, outcome, quality); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}
