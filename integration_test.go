package tauw_test

import (
	"encoding/json"
	"testing"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/gtsrb"
	"github.com/iese-repro/tauw/internal/simplex"
	"github.com/iese-repro/tauw/internal/track"
	"github.com/iese-repro/tauw/internal/uw"
)

// integrationStudy builds one shared small study for the integration tests
// (reuses the benchmark fixture's sync.Once via study()).
func integrationStudy(t *testing.T) *eval.Study {
	t.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = eval.BuildStudy(eval.TinyConfig())
	})
	if benchErr != nil {
		t.Fatalf("BuildStudy: %v", benchErr)
	}
	return benchStudy
}

// TestIntegrationDeploymentRoundTrip is the downstream-user scenario:
// calibrate offline, serialise both quality impact models, load them in a
// fresh "process", and serve estimates that agree bit-for-bit with the
// originals.
func TestIntegrationDeploymentRoundTrip(t *testing.T) {
	st := integrationStudy(t)

	baseData, err := json.Marshal(st.Base.QIM())
	if err != nil {
		t.Fatal(err)
	}
	taData, err := json.Marshal(st.TAQIM)
	if err != nil {
		t.Fatal(err)
	}

	loadedQIM, err := uw.LoadQIM(baseData)
	if err != nil {
		t.Fatal(err)
	}
	loadedTAQIM, err := uw.LoadQIM(taData)
	if err != nil {
		t.Fatal(err)
	}
	loadedBase, err := uw.NewWrapper(loadedQIM, nil)
	if err != nil {
		t.Fatal(err)
	}
	liveWrapper, err := st.Wrapper()
	if err != nil {
		t.Fatal(err)
	}
	loadedWrapper, err := core.NewWrapper(loadedBase, loadedTAQIM, core.Config{})
	if err != nil {
		t.Fatal(err)
	}

	for _, series := range st.TestSeries[:10] {
		liveWrapper.NewSeries()
		loadedWrapper.NewSeries()
		for j := range series.Outcomes {
			live, err := liveWrapper.Step(series.Outcomes[j], series.Quality[j])
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := loadedWrapper.Step(series.Outcomes[j], series.Quality[j])
			if err != nil {
				t.Fatal(err)
			}
			if live.Fused != loaded.Fused || live.Uncertainty != loaded.Uncertainty {
				t.Fatalf("deployed model diverges at step %d: (%d,%g) vs (%d,%g)",
					j, live.Fused, live.Uncertainty, loaded.Fused, loaded.Uncertainty)
			}
		}
	}
}

// TestIntegrationMultiSignDrive runs the full perception loop with two
// concurrent signs: the multi-tracker assigns detections to tracks, one
// wrapper per track accumulates evidence, and the simplex monitor gates the
// fused outcomes.
func TestIntegrationMultiSignDrive(t *testing.T) {
	st := integrationStudy(t)
	mt, err := track.NewMultiTracker(track.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := simplex.NewMonitor(simplex.DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}

	// Two synthetic sign encounters playing out simultaneously.
	gen := gtsrb.DefaultGeneratorConfig()
	gen.NumSeries = 2
	gen.Seed = 41
	signs, err := gtsrb.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	// Observations to feed each track, reusing study test series of the
	// right length.
	sources := []core.SeriesObservations{st.TestSeries[0], st.TestSeries[1]}

	wrappers := make(map[int]*core.Wrapper)
	accepted, gated := 0, 0
	steps := min(signs[0].Len(), signs[1].Len(), len(sources[0].Outcomes), len(sources[1].Outcomes))
	for j := 0; j < steps; j++ {
		detections := [][2]float64{
			{signs[0].Frames[j].ImageX, signs[0].Frames[j].ImageY},
			{1 - signs[1].Frames[j].ImageX, 1 - signs[1].Frames[j].ImageY}, // opposite corner
		}
		obs, err := mt.ObserveFrame(detections)
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range obs {
			if o.SeriesID < 0 {
				t.Fatal("track budget must suffice for two signs")
			}
			w := wrappers[o.SeriesID]
			if o.NewSeries || w == nil {
				w, err = core.NewWrapper(st.Base, st.TAQIM, core.Config{})
				if err != nil {
					t.Fatal(err)
				}
				wrappers[o.SeriesID] = w
			}
			res, err := w.Step(sources[i].Outcomes[j], sources[i].Quality[j])
			if err != nil {
				t.Fatal(err)
			}
			decision, err := monitor.Gate(res.Fused, res.Uncertainty)
			if err != nil {
				t.Fatal(err)
			}
			gated++
			if decision.Accepted {
				accepted++
			}
		}
	}
	if len(wrappers) != 2 {
		t.Errorf("expected 2 tracks, got %d", len(wrappers))
	}
	if gated != 2*steps {
		t.Errorf("gated %d outcomes, want %d", gated, 2*steps)
	}
	snap := monitor.Snapshot()
	if snap.Total != gated {
		t.Errorf("monitor counted %d, want %d", snap.Total, gated)
	}
}

// TestIntegrationShardedPoolBatch is the serving-layer scenario end to end:
// a sharded wrapper pool tracks many concurrent objects, steps arrive as
// mixed batches (as the /v1/steps endpoint delivers them), and the batched
// results must agree bit-for-bit with a dedicated wrapper per object.
func TestIntegrationShardedPoolBatch(t *testing.T) {
	st := integrationStudy(t)
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM, core.Config{}, 0, core.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	const tracks = 6
	references := make([]*core.Wrapper, tracks)
	for id := 0; id < tracks; id++ {
		if err := pool.Open(id); err != nil {
			t.Fatal(err)
		}
		references[id], err = core.NewWrapper(st.Base, st.TAQIM, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
	}
	steps := len(st.TestSeries[0].Outcomes)
	for j := 0; j < steps; j++ {
		// One frame: every tracked object contributes one step to the batch.
		items := make([]core.StepItem, tracks)
		for id := 0; id < tracks; id++ {
			s := st.TestSeries[id%len(st.TestSeries)]
			items[id] = core.StepItem{TrackID: id, Outcome: s.Outcomes[j], Quality: s.Quality[j]}
		}
		for id, br := range pool.StepBatch(items, 4) {
			if br.Err != nil {
				t.Fatalf("frame %d track %d: %v", j, id, br.Err)
			}
			want, err := references[id].Step(items[id].Outcome, items[id].Quality)
			if err != nil {
				t.Fatal(err)
			}
			if br.Result.Fused != want.Fused || br.Result.Uncertainty != want.Uncertainty {
				t.Fatalf("frame %d track %d diverges: batch (%d,%g) vs reference (%d,%g)",
					j, id, br.Result.Fused, br.Result.Uncertainty, want.Fused, want.Uncertainty)
			}
		}
	}
	if pool.Active() != tracks {
		t.Errorf("active = %d, want %d", pool.Active(), tracks)
	}
}

// TestIntegrationCustomFusionRule verifies the pluggability contract: a
// wrapper assembled with a different information-fusion rule trains and
// serves consistently end to end.
func TestIntegrationCustomFusionRule(t *testing.T) {
	st := integrationStudy(t)
	fuser := fusion.RecencyWeighted{Lambda: 0.8}
	cfg := uw.DefaultQIMConfig()
	cfg.MinLeafCalibration = 100
	cfg.TreeDepth = 6
	taqim, err := core.FitTimeseriesQIM(st.Base, st.TrainSeries, st.CalibSeries,
		st.StatelessNames, core.AllFeatures(), fuser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.NewWrapper(st.Base, taqim, core.Config{Fuser: fuser})
	if err != nil {
		t.Fatal(err)
	}
	errsFused, errsIso, n := 0, 0, 0
	for _, series := range st.TestSeries {
		w.NewSeries()
		for j := range series.Outcomes {
			res, err := w.Step(series.Outcomes[j], series.Quality[j])
			if err != nil {
				t.Fatal(err)
			}
			n++
			if res.Fused != series.Truth {
				errsFused++
			}
			if series.Outcomes[j] != series.Truth {
				errsIso++
			}
			if res.Uncertainty < 0 || res.Uncertainty > 1 {
				t.Fatalf("invalid uncertainty %g", res.Uncertainty)
			}
		}
	}
	if errsFused >= errsIso {
		t.Errorf("recency-weighted fusion must still beat isolated: %d vs %d of %d",
			errsFused, errsIso, n)
	}
}
