package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestEscapeGate builds the gate and runs it against two throwaway
// modules: one whose annotated function leaks a local to the heap (must
// exit nonzero and name the leak), one whose annotated function is clean
// (must exit zero).
func TestEscapeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to the go tool")
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "escape")
	build := exec.Command("go", "build", "-o", tool, "github.com/iese-repro/tauw/scripts/escape")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building escape: %v\n%s", err, out)
	}

	mkmod := func(name, src string) string {
		dir := filepath.Join(tmp, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module escfix\n\ngo 1.23\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	gate := func(dir string) (string, error) {
		cmd := exec.Command(tool, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	t.Run("red", func(t *testing.T) {
		dir := mkmod("red", `package escfix

//tauw:noescape
func Leak() *int {
	x := 42
	return &x
}
`)
		out, err := gate(dir)
		if err == nil {
			t.Fatalf("gate passed on a leaking function:\n%s", out)
		}
		if !strings.Contains(out, "moved to heap") || !strings.Contains(out, "//tauw:noescape Leak") {
			t.Errorf("gate output does not name the leak:\n%s", out)
		}
	})

	t.Run("green", func(t *testing.T) {
		dir := mkmod("green", `package escfix

//tauw:noescape
func Sum(a, b int) int {
	return a + b
}

// Grow allocates, but carries no annotation — out of scope for the gate.
func Grow(n int) []int {
	return make([]int, n)
}
`)
		out, err := gate(dir)
		if err != nil {
			t.Fatalf("gate failed on a clean module: %v\n%s", err, out)
		}
		if !strings.Contains(out, "1 annotated package(s) clean") {
			t.Errorf("gate did not report the annotated package:\n%s", out)
		}
	})
}
