// Command escape is the escape-analysis gate: a function annotated
// //tauw:noescape asserts that the compiler's escape analysis hoists
// nothing it declares to the heap, and this tool machine-checks the
// assertion by reading the compiler's own -m diagnostics.
//
// Why not `go build -gcflags=-m`? Because a warm build cache silently
// replays nothing: the diagnostics only appear when a package actually
// recompiles, so a CI gate built on it goes green the moment the cache
// warms. This tool instead invokes `go tool compile -m` directly, with an
// importcfg generated from `go list -export` — every run recompiles the
// annotated packages and every run sees the full diagnostic stream.
//
// Usage: escape [packages]   (defaults to ./...)
//
// Packages without a //tauw:noescape annotation are listed but not
// recompiled. Any "escapes to heap" / "moved to heap" diagnostic whose
// position falls inside an annotated function's body is a finding; the
// tool prints it and exits 2, the same contract as tauwcheck.
//
//tauw:cli
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

type pkgMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	SFiles     []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

func run(args []string) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := list(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "escape: %v\n", err)
		return 1
	}
	exports := map[string]string{}
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}

	findings := 0
	checked := 0
	for _, m := range metas {
		if m.DepOnly || m.Standard || m.Module == nil || m.Error != nil {
			continue
		}
		ranges, err := noescapeRanges(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "escape: %s: %v\n", m.ImportPath, err)
			return 1
		}
		if len(ranges) == 0 {
			continue
		}
		if len(m.CgoFiles) > 0 || len(m.SFiles) > 0 {
			fmt.Fprintf(os.Stderr, "escape: %s: cgo/assembly packages are not supported; drop the //tauw:noescape annotations or teach the gate -symabis\n", m.ImportPath)
			return 1
		}
		checked++
		n, err := check(m, ranges, exports)
		if err != nil {
			fmt.Fprintf(os.Stderr, "escape: %s: %v\n", m.ImportPath, err)
			return 1
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "escape: %d escaping declaration(s) inside //tauw:noescape functions\n", findings)
		return 2
	}
	fmt.Fprintf(os.Stderr, "escape: %d annotated package(s) clean\n", checked)
	return 0
}

// list runs go list -export -deps over the patterns.
func list(patterns []string) ([]pkgMeta, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,SFiles,Export,Standard,DepOnly,Module,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}
	var metas []pkgMeta
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m pkgMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// funcRange is one annotated function's body span within a file.
type funcRange struct {
	file       string // absolute path
	start, end int    // line range, inclusive
	name       string
}

// noescapeRanges parses the package's files and returns the body line
// ranges of every //tauw:noescape function.
func noescapeRanges(m pkgMeta) ([]funcRange, error) {
	var out []funcRange
	fset := token.NewFileSet()
	for _, f := range m.GoFiles {
		path := filepath.Join(m.Dir, f)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		// Cheap pre-filter: most files carry no annotation.
		if !bytes.Contains(src, []byte("//tauw:noescape")) {
			continue
		}
		af, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, decl := range af.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			marked := false
			for _, c := range fd.Doc.List {
				if c.Text == "//tauw:noescape" {
					marked = true
					break
				}
			}
			if !marked {
				continue
			}
			out = append(out, funcRange{
				file:  path,
				start: fset.Position(fd.Body.Pos()).Line,
				end:   fset.Position(fd.Body.End()).Line,
				name:  fd.Name.Name,
			})
		}
	}
	return out, nil
}

// escapeRE matches the compiler diagnostics that mean "this allocates".
var escapeRE = regexp.MustCompile(`escapes to heap|moved to heap`)

// check recompiles one package with -m and reports diagnostics landing in
// annotated ranges.
func check(m pkgMeta, ranges []funcRange, exports map[string]string) (int, error) {
	cfg, err := writeImportcfg(m, exports)
	if err != nil {
		return 0, err
	}
	defer os.Remove(cfg)

	args := []string{"tool", "compile", "-p", m.ImportPath, "-importcfg", cfg, "-o", os.DevNull, "-m"}
	for _, f := range m.GoFiles {
		args = append(args, filepath.Join(m.Dir, f))
	}
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return 0, fmt.Errorf("go tool compile: %v\n%s", err, out)
	}

	findings := 0
	for _, line := range strings.Split(string(out), "\n") {
		if !escapeRE.MatchString(line) {
			continue
		}
		file, lno, ok := splitPos(line)
		if !ok {
			continue
		}
		for _, r := range ranges {
			if file == r.file && lno >= r.start && lno <= r.end {
				fmt.Fprintf(os.Stderr, "%s (inside //tauw:noescape %s)\n", line, r.name)
				findings++
				break
			}
		}
	}
	return findings, nil
}

// splitPos parses the file and line of a "file:line:col: msg" diagnostic.
func splitPos(line string) (string, int, bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) < 4 {
		return "", 0, false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, false
	}
	return parts[0], n, true
}

// writeImportcfg renders the dependency export map the compiler needs.
func writeImportcfg(m pkgMeta, exports map[string]string) (string, error) {
	var b strings.Builder
	for path, export := range exports {
		if path == m.ImportPath {
			continue
		}
		fmt.Fprintf(&b, "packagefile %s=%s\n", path, export)
	}
	f, err := os.CreateTemp("", "escape-importcfg-")
	if err != nil {
		return "", err
	}
	if _, err := f.WriteString(b.String()); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	return f.Name(), f.Close()
}
