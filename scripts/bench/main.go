// Command bench converts `go test -bench` output into the repo's
// BENCH_*.json trajectory format and gates benchmark regressions in CI.
//
// Subcommands:
//
//	bench json -in bench.txt -out BENCH_PR3.json
//	    Parse benchmark output (possibly with -count repeats) into a JSON
//	    map of benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op}.
//	    The GOMAXPROCS suffix (-8) is stripped so keys are stable across
//	    runners; repeated measurements keep the minimum ns/op (the least
//	    noisy estimate of the code's cost).
//
//	bench compare -baseline BENCH_2.json -current BENCH_PR3.json \
//	    -gate 'BenchmarkWrapperStep,BenchmarkPoolStepParallel' -warn 0.10 -fail 0.50
//	    Compare two trajectory files. Gated benchmarks (name-prefix match)
//	    warn above the warn threshold and fail the process (exit 1) above
//	    the fail threshold of ns/op regression; everything else is
//	    reported informationally. Independently, the -alloc-gate threshold
//	    (default 2) fails any benchmark that was at or under the threshold
//	    in allocs/op in the baseline and now exceeds it: zero-alloc paths
//	    may not silently decay, and unlike ns/op the check is
//	    machine-independent so it applies to every benchmark.
//
// Benchmarks measured at GOMAXPROCS > 1 (-cpu=1,4) keep their own keys with
// a " [procs=N]" suffix, so contention rows never min-merge with the
// single-core rows.
//
//tauw:cli
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded cost.
type Entry struct {
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is -1 when the benchmark did not report allocations
	// (no b.ReportAllocs / -benchmem): an absent metric is not zero, and
	// recording it as zero would silently enroll the benchmark in the
	// alloc-gate and fail it spuriously once it starts reporting.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Samples is how many -count repeats the minimum was taken over.
	Samples int `json:"samples"`
	// Procs is the GOMAXPROCS the benchmark ran at (the -N name suffix).
	// RunParallel benchmarks measure contention, so their ns/op is only
	// comparable between runs at the same core count; compare skips gating
	// entries whose Procs differ.
	Procs int `json:"procs,omitempty"`
}

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: bench <json|compare> [flags]")
	}
	var err error
	switch os.Args[1] {
	case "json":
		err = runJSON(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	default:
		fatalf("unknown subcommand %q (want json or compare)", os.Args[1])
	}
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}

func runJSON(args []string) error {
	fs := flag.NewFlagSet("json", flag.ExitOnError)
	in := fs.String("in", "", "benchmark output file (default stdin)")
	out := fs.String("out", "", "output JSON file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var raw []byte
	var err error
	if *in != "" {
		raw, err = os.ReadFile(*in)
	} else {
		raw, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}
	entries := parseBench(string(raw))
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	blob, err := marshalSorted(entries)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Println(string(blob))
		return nil
	}
	return os.WriteFile(*out, append(blob, '\n'), 0o644)
}

// parseBench extracts benchmark result lines. A line looks like:
//
//	BenchmarkWrapperStepLen/len=10-8   100   219.0 ns/op   0 B/op   0 allocs/op
func parseBench(out string) map[string]Entry {
	entries := make(map[string]Entry)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, procs := stripProcs(fields[0])
		if procs > 1 {
			// A multi-procs run (-cpu=1,4) measures the same benchmark as a
			// different workload; keep the rows apart instead of collapsing
			// them onto one key and silently min-merging across core counts.
			name = fmt.Sprintf("%s [procs=%d]", name, procs)
		}
		e := Entry{Samples: 1, Procs: procs, AllocsPerOp: -1}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
				seen = true
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		if prev, ok := entries[name]; ok {
			// Keep the fastest repeat: scheduling noise only ever adds time.
			if prev.NsPerOp < e.NsPerOp {
				e.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp < e.BytesPerOp {
				e.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp < e.AllocsPerOp {
				e.AllocsPerOp = prev.AllocsPerOp
			}
			e.Samples = prev.Samples + 1
		}
		entries[name] = e
	}
	return entries
}

// stripProcs removes the trailing -<GOMAXPROCS> go test appends to benchmark
// names, so keys are comparable across machines, and returns the stripped
// value so the core count stays recorded in the entry. go test omits the
// suffix exactly when GOMAXPROCS is 1, so no suffix means procs 1.
func stripProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 1
	}
	return name[:i], procs
}

func marshalSorted(entries map[string]Entry) ([]byte, error) {
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("{\n")
	for i, n := range names {
		v, err := json.Marshal(entries[n])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "  %q: %s", n, v)
		if i < len(names)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("}")
	return []byte(sb.String()), nil
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	baselinePath := fs.String("baseline", "", "committed BENCH_*.json to compare against")
	currentPath := fs.String("current", "", "freshly measured JSON")
	gate := fs.String("gate", "BenchmarkWrapperStep,BenchmarkPoolStepParallel",
		"comma-separated name prefixes whose ns/op regressions are gated")
	warn := fs.Float64("warn", 0.10, "gated regression fraction that triggers a warning")
	fail := fs.Float64("fail", 0.50, "gated regression fraction that fails the gate")
	allocGate := fs.Float64("alloc-gate", 2,
		"zero-alloc decay gate: any benchmark at or under this many allocs/op in the baseline "+
			"fails the gate if it now exceeds it (machine-independent; set negative to disable)")
	flat := fs.String("flat", "",
		"comma-separated within-run ratio gates 'fastName:slowName:maxRatio' — fails when "+
			"current[slowName].ns_per_op > maxRatio * current[fastName].ns_per_op; "+
			"unlike the cross-run ns/op gate this is machine-independent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *currentPath == "" {
		return fmt.Errorf("compare needs -current")
	}
	current, err := load(*currentPath)
	if err != nil {
		return err
	}
	if *baselinePath == "" {
		// Flat-only mode: the within-run ratio gates need no baseline (both
		// sides come from the same measurement), so they can run even when
		// no BENCH_*.json has been committed yet.
		if *flat == "" {
			return fmt.Errorf("compare needs -baseline (or -flat for within-run gates only)")
		}
		if err := checkFlat(*flat, current); err != nil {
			fmt.Printf("::error::%v\n", err)
			return fmt.Errorf("benchmark gate failed")
		}
		return nil
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		return err
	}
	gates := strings.Split(*gate, ",")
	gated := func(name string) bool {
		for _, g := range gates {
			if g != "" && strings.HasPrefix(name, strings.TrimSpace(g)) {
				return true
			}
		}
		return false
	}

	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	sort.Strings(names)
	failed := false
	for _, n := range names {
		base := baseline[n]
		cur, ok := current[n]
		if !ok {
			// A gated benchmark that silently stops being measured (rename,
			// broken -bench regex) would otherwise disable the gate forever.
			if gated(n) {
				fmt.Printf("::error::gated benchmark %s present in %s but not measured now\n", n, *baselinePath)
				failed = true
			} else {
				fmt.Printf("::warning::benchmark %s present in %s but not measured now\n", n, *baselinePath)
			}
			continue
		}
		if base.Procs != 0 && cur.Procs != 0 && base.Procs != cur.Procs {
			// Contention benchmarks (b.RunParallel) measure a different
			// workload at a different core count; gating across that
			// difference would flag hardware, not code.
			fmt.Printf("  %-55s skipped: baseline at GOMAXPROCS=%d, current at %d — not comparable\n",
				n, base.Procs, cur.Procs)
			continue
		}
		delta := cur.NsPerOp/base.NsPerOp - 1
		tag := "ok"
		switch {
		case gated(n) && delta > *fail:
			tag = "FAIL"
			failed = true
		case gated(n) && delta > *warn:
			tag = "warn"
		case delta < -0.10:
			tag = "improved"
		}
		marker := " "
		if gated(n) {
			marker = "*"
		}
		fmt.Printf("%s %-55s %12.1f -> %12.1f ns/op  %+7.1f%%  [%s]\n",
			marker, n, base.NsPerOp, cur.NsPerOp, delta*100, tag)
		if tag == "FAIL" {
			fmt.Printf("::error::%s regressed %.1f%% in ns/op (fail threshold %.0f%%)\n",
				n, delta*100, *fail*100)
		}
		if tag == "warn" {
			fmt.Printf("::warning::%s regressed %.1f%% in ns/op (warn threshold %.0f%%)\n",
				n, delta*100, *warn*100)
		}
		if gated(n) && cur.AllocsPerOp > base.AllocsPerOp {
			fmt.Printf("::warning::%s allocs/op grew %g -> %g\n", n, base.AllocsPerOp, cur.AllocsPerOp)
		}
		// The allocs/op gate is absolute and machine-independent: a path
		// that was (near) allocation-free in the committed trajectory may
		// not silently decay past the threshold, whatever its ns/op does.
		// It applies to every comparable benchmark, not just the ns-gated
		// set — zero-alloc is a property of the code, not the runner.
		if allocRegressed(*allocGate, base.AllocsPerOp, cur.AllocsPerOp) {
			fmt.Printf("::error::%s allocs/op regressed %g -> %g (gate: was <= %g in baseline, must stay there)\n",
				n, base.AllocsPerOp, cur.AllocsPerOp, *allocGate)
			failed = true
		}
	}
	for n := range current {
		if _, ok := baseline[n]; !ok {
			fmt.Printf("  %-55s new benchmark (%.1f ns/op), no baseline yet\n", n, current[n].NsPerOp)
		}
	}
	if err := checkFlat(*flat, current); err != nil {
		fmt.Printf("::error::%v\n", err)
		failed = true
	}
	if failed {
		return fmt.Errorf("benchmark gate failed")
	}
	return nil
}

// allocRegressed is the zero-alloc decay rule: a benchmark whose baseline
// sat at or under the gate in allocs/op fails if it now exceeds the gate.
// Negative gates disable the check, and a negative allocs/op on either
// side means the metric was not reported there (see Entry.AllocsPerOp) —
// an absent measurement can neither enroll a benchmark in the gate nor
// trip it.
func allocRegressed(gate, base, cur float64) bool {
	return gate >= 0 && base >= 0 && cur >= 0 && base <= gate && cur > gate
}

// checkFlat enforces within-run ratio gates: both sides are measured on the
// same machine in the same run, so the check is immune to runner-speed
// variance — it gates the algorithmic shape (e.g. the O(1)-in-series-length
// step claim: len=10000 must stay within 2x of len=10), not absolute speed.
func checkFlat(spec string, current map[string]Entry) error {
	if spec == "" {
		return nil
	}
	for _, g := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(g), ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -flat gate %q (want fast:slow:maxRatio)", g)
		}
		maxRatio, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || maxRatio <= 0 {
			return fmt.Errorf("bad -flat ratio in %q", g)
		}
		fast, ok := current[parts[0]]
		if !ok {
			return fmt.Errorf("-flat gate: %s not measured", parts[0])
		}
		slow, ok := current[parts[1]]
		if !ok {
			return fmt.Errorf("-flat gate: %s not measured", parts[1])
		}
		ratio := slow.NsPerOp / fast.NsPerOp
		if ratio > maxRatio {
			return fmt.Errorf("%s is %.2fx of %s (max %.2fx): step cost is no longer flat",
				parts[1], ratio, parts[0], maxRatio)
		}
		fmt.Printf("  flat: %s / %s = %.2fx (max %.2fx) [ok]\n", parts[1], parts[0], ratio, maxRatio)
	}
	return nil
}

func load(path string) (map[string]Entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Entry
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return m, nil
}
