package main

import "testing"

func TestParseBenchProcsKeys(t *testing.T) {
	out := `
goos: linux
BenchmarkPoolStepParallel/sharded     	     100	       343.9 ns/op	     657 B/op	       4 allocs/op
BenchmarkPoolStepParallel/sharded-4   	     100	      1283 ns/op	     660 B/op	       4 allocs/op
BenchmarkPoolStepParallel/sharded     	     100	       310.0 ns/op	     650 B/op	       4 allocs/op
BenchmarkWrapperStep                  	     100	       186.2 ns/op	      19 B/op	       0 allocs/op
BenchmarkNoAllocsReported             	     100	       500.0 ns/op
`
	entries := parseBench(out)
	one, ok := entries["BenchmarkPoolStepParallel/sharded"]
	if !ok {
		t.Fatalf("missing procs=1 key; have %v", keys(entries))
	}
	if one.Procs != 1 || one.NsPerOp != 310.0 || one.Samples != 2 {
		t.Errorf("procs=1 entry = %+v, want min-merged 310.0 ns over 2 samples", one)
	}
	four, ok := entries["BenchmarkPoolStepParallel/sharded [procs=4]"]
	if !ok {
		t.Fatalf("missing procs=4 key; have %v", keys(entries))
	}
	if four.Procs != 4 || four.NsPerOp != 1283 || four.Samples != 1 {
		t.Errorf("procs=4 entry = %+v, want its own un-merged row", four)
	}
	if _, ok := entries["BenchmarkWrapperStep"]; !ok {
		t.Errorf("plain benchmark key lost; have %v", keys(entries))
	}
	// A benchmark without ReportAllocs records the absent-metric sentinel,
	// not a spurious zero that would enroll it in the alloc gate.
	if e := entries["BenchmarkNoAllocsReported"]; e.AllocsPerOp != -1 {
		t.Errorf("absent allocs/op recorded as %g, want -1", e.AllocsPerOp)
	}
	if e := entries["BenchmarkWrapperStep"]; e.AllocsPerOp != 0 {
		t.Errorf("reported zero allocs/op recorded as %g, want 0", e.AllocsPerOp)
	}
}

func keys(m map[string]Entry) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestAllocRegressed(t *testing.T) {
	cases := []struct {
		gate, base, cur float64
		want            bool
	}{
		{2, 0, 0, false},     // stays clean
		{2, 0, 2, false},     // at the gate is still fine
		{2, 0, 3, true},      // zero-alloc path decayed
		{2, 2, 200, true},    // at-gate baseline decayed
		{2, 200, 400, false}, // was never under the gate: not this gate's job
		{2, 3, 0, false},     // improvement
		{-1, 0, 50, false},   // disabled
		{0, 0, 1, true},      // strict zero-alloc gate
		{2, -1, 120, false},  // baseline never reported allocs: exempt
		{2, 0, -1, false},    // current stopped reporting: exempt
	}
	for _, c := range cases {
		if got := allocRegressed(c.gate, c.base, c.cur); got != c.want {
			t.Errorf("allocRegressed(%g, %g, %g) = %v, want %v", c.gate, c.base, c.cur, got, c.want)
		}
	}
}

func TestStripProcs(t *testing.T) {
	for _, c := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX/len=10-4", "BenchmarkX/len=10", 4},
		{"BenchmarkX/a-b", "BenchmarkX/a-b", 1},
	} {
		name, procs := stripProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("stripProcs(%q) = (%q, %d), want (%q, %d)", c.in, name, procs, c.name, c.procs)
		}
	}
}
