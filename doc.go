// Package tauw is a from-scratch Go reproduction of "Timeseries-aware
// Uncertainty Wrappers for Uncertainty Quantification of Information-Fusion-
// Enhanced AI Models based on Machine Learning" (Groß, Kläs, Jöckel, Gerber;
// VERDI @ IEEE/IFIP DSN 2023).
//
// The library lives under internal/: the paper's contribution in
// internal/core (timeseries buffer, taQF, taQIM, the taUW runtime wrapper),
// the base uncertainty-wrapper framework in internal/uw, and every substrate
// it depends on — CART trees (internal/dtree), binomial bounds and Brier
// decompositions (internal/stats), information/uncertainty fusion
// (internal/fusion), the synthetic GTSRB benchmark (internal/gtsrb), the
// augmentation pipeline (internal/augment), the DDM classifiers
// (internal/ddm), Kalman tracking (internal/track), runtime gating
// (internal/simplex), and the study harness (internal/eval).
//
// See README.md for the quickstart, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's evaluation.
package tauw
