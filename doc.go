// Package tauw is a from-scratch Go reproduction of "Timeseries-aware
// Uncertainty Wrappers for Uncertainty Quantification of Information-Fusion-
// Enhanced AI Models based on Machine Learning" (Groß, Kläs, Jöckel, Gerber;
// VERDI @ IEEE/IFIP DSN 2023).
//
// The library lives under internal/: the paper's contribution in
// internal/core (timeseries buffer, taQF, taQIM, the taUW runtime wrapper,
// and the sharded WrapperPool serving substrate with its batch step API),
// the base uncertainty-wrapper framework in internal/uw, and every substrate
// it depends on — CART trees (internal/dtree), binomial bounds and Brier
// decompositions (internal/stats), information/uncertainty fusion
// (internal/fusion), the synthetic GTSRB benchmark (internal/gtsrb), the
// augmentation pipeline (internal/augment), the DDM classifiers
// (internal/ddm), Kalman tracking (internal/track), runtime gating
// (internal/simplex), and the study harness (internal/eval).
//
// See README.md for the architecture map, the tauserve HTTP API (including
// the batched POST /v1/steps endpoint), and how to run the tier-1 tests,
// the race-hardened concurrency suite, and the benchmarks. The benchmarks
// in bench_test.go regenerate every table and figure of the paper's
// evaluation and measure the serving layer (sharded pool vs global mutex,
// batched vs single-step HTTP).
package tauw
