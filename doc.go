// Package tauw is a from-scratch Go reproduction of "Timeseries-aware
// Uncertainty Wrappers for Uncertainty Quantification of Information-Fusion-
// Enhanced AI Models based on Machine Learning" (Groß, Kläs, Jöckel, Gerber;
// VERDI @ IEEE/IFIP DSN 2023).
//
// The library lives under internal/: the paper's contribution in
// internal/core (timeseries buffer, taQF, taQIM, the taUW runtime wrapper,
// and the sharded WrapperPool serving substrate with its batch step API),
// the base uncertainty-wrapper framework in internal/uw, and every substrate
// it depends on — CART trees (internal/dtree), binomial bounds and Brier
// decompositions (internal/stats), information/uncertainty fusion
// (internal/fusion), the synthetic GTSRB benchmark (internal/gtsrb), the
// augmentation pipeline (internal/augment), the DDM classifiers
// (internal/ddm), Kalman tracking (internal/track), runtime gating
// (internal/simplex), runtime calibration monitoring (internal/monitor:
// streaming reliability statistics over ground-truth feedback, per-leaf
// evidence accumulators, Page-Hinkley drift alarms, and the
// zero-allocation Prometheus exposition behind tauserve's POST
// /v1/feedback and GET /metrics), the adaptive recalibration loop
// (internal/recalib: refreshing taQIM leaf bounds from the accumulated
// online evidence and hot-swapping the refreshed model into the serving
// pool with zero downtime, either on the operator's POST /v1/recalibrate
// or automatically when the drift alarm fires), the binary streaming
// transport (internal/wire: the length-prefixed frame protocol, its
// zero-copy reader and append-based codec, and the pipelining client
// behind tauserve's -tcp-addr listener), the durability layer
// (internal/store: a versioned reflection-free snapshot codec for every
// piece of serving state, a CRC-framed torn-write-safe write-ahead log
// behind a pluggable Store interface, and the write-behind Checkpointer
// that restores a crashed server bit-identically from tauserve's
// -state-dir), the observability layer (internal/trace: the always-on
// flight recorder — per-stripe event rings written lock-free from every
// layer at two atomic operations per event, merged time-ordered on
// tauserve's GET /debug/flight, with automatic anomaly snapshots on drift
// alarms, breaker trips, and shed storms at /debug/flight/last-anomaly —
// and internal/xlog, the leveled logfmt logging shim every component logs
// through), and the study harness
// (internal/eval, whose offline replay is re-scored through the same
// monitor so offline and online reliability numbers come from one
// implementation, and whose drifted replay pins the closed loop: injected
// label noise raises the alarm, recalibration lifts the degraded leaf
// bounds, and the post-swap windowed Brier recovers).
//
// See README.md for the architecture map, the tauserve HTTP API (including
// the batched POST /v1/steps endpoint with its 4096-item and body-size
// caps), and how to run the tier-1 tests, the race-hardened concurrency
// suite, and the benchmarks. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation and measure the serving
// layer (sharded pool vs global mutex, batched vs single-step HTTP).
//
// # Allocation discipline
//
// The serving path is allocation-free in steady state, and CI enforces it:
// any benchmark recorded at <= 2 allocs/op in the committed BENCH_*.json
// trajectory fails the bench gate if it decays past that
// (scripts/bench compare -alloc-gate). The zero-alloc paths are the
// wrapper step (core.Wrapper.Step with an incremental fuser), the pool
// batch with a recycled result slice (core.WrapperPool.StepBatchInto /
// StepBatchSeriesInto: pooled counting-sort grouping, closure-free
// fan-out), taQIM inference (dtree.Compiled, including the PredictBatch /
// ApplyBatch block walks), the tauserve hot-endpoint codec (pooled
// request/response buffers, reflection-free encode/decode), the runtime
// calibration monitoring on the step path (shard-local atomic counters
// plus a preallocated provenance ring — both still zero-alloc while models
// hot-swap underneath, which BenchmarkPoolStepDuringSwap gates, and while
// the checkpointer flushes underneath, which
// BenchmarkPoolStepDuringCheckpoint gates: durability marks a series dirty
// with one bool store under a lock the step already holds), and the
// Prometheus scrape
// (monitor.Exposition renders into a pooled buffer with cached visitor
// closures). The deliberate
// exception: the per-item quality vectors the wrapper buffers retain are
// carved from fresh slab chunks (they outlive the request), so a batch
// request costs one allocation per slab chunk rather than zero.
package tauw
