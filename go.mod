module github.com/iese-repro/tauw

go 1.23.0
