package tauw_test

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/stats"
	"github.com/iese-repro/tauw/internal/uw"
)

// The study fixture is shared across benchmarks: building it is the one-off
// "train + calibrate" phase, while each benchmark measures regenerating one
// of the paper's tables or figures from it.
var (
	benchOnce  sync.Once
	benchStudy *eval.Study
	benchErr   error
)

func study(b *testing.B) *eval.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = eval.BuildStudy(eval.TinyConfig())
	})
	if benchErr != nil {
		b.Fatalf("BuildStudy: %v", benchErr)
	}
	return benchStudy
}

// BenchmarkStudyBuild measures the full train-and-calibrate pipeline (data
// synthesis, DDM training, both quality impact models) at the tiny preset.
func BenchmarkStudyBuild(b *testing.B) {
	cfg := eval.TinyConfig()
	cfg.NumSeries = 90
	cfg.TrainAugmentations = 3
	cfg.EvalAugmentations = 3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.BuildStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4MisclassificationOverTime regenerates Fig. 4 (RQ1).
func BenchmarkFig4MisclassificationOverTime(b *testing.B) {
	st := study(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RunFig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1UncertaintyModels regenerates Table I (RQ2a): all six
// uncertainty models with their Brier decompositions.
func BenchmarkTable1UncertaintyModels(b *testing.B) {
	st := study(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RunTable1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5UncertaintyDistribution regenerates Fig. 5 (RQ2a).
func BenchmarkFig5UncertaintyDistribution(b *testing.B) {
	st := study(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RunFig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Calibration regenerates Fig. 6 (RQ2b).
func BenchmarkFig6Calibration(b *testing.B) {
	st := study(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RunFig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7FeatureImportance regenerates Fig. 7 (RQ3): 15 taQIM refits
// plus scoring.
func BenchmarkFig7FeatureImportance(b *testing.B) {
	st := study(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RunFig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoverageCheck regenerates the dependability (bound coverage)
// check.
func BenchmarkCoverageCheck(b *testing.B) {
	st := study(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RunCoverage(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBinomialBounds regenerates the bound-method ablation.
func BenchmarkAblationBinomialBounds(b *testing.B) {
	st := study(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RunBoundAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTieBreak regenerates the tie-break ablation.
func BenchmarkAblationTieBreak(b *testing.B) {
	st := study(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RunTieBreakAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTreeCalibration regenerates the depth/min-leaf ablation.
func BenchmarkAblationTreeCalibration(b *testing.B) {
	st := study(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.RunTreeAblation([]int{4, 8}, []int{100, 200}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrapperStep measures the runtime cost of one taUW step — the
// latency a perception pipeline pays per frame for dependable uncertainty.
func BenchmarkWrapperStep(b *testing.B) {
	st := study(b)
	w, err := st.Wrapper()
	if err != nil {
		b.Fatal(err)
	}
	series := st.TestSeries[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(series.Outcomes)
		if j == 0 {
			w.NewSeries()
		}
		if _, err := w.Step(series.Outcomes[j], series.Quality[j]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStepLens are the window lengths the O(1)-step claim is demonstrated
// at: ns/op at len=10000 must stay within 2x of len=10 (see BENCH_*.json and
// the CI regression gate).
var benchStepLens = []int{10, 1000, 10000}

// stepAtLen measures the per-step cost of a wrapper holding a series of
// constant length L: the buffer is a ring of exactly L records, prefilled
// before the timer starts, so every measured step runs at series length L —
// including one eviction per step, the steady state of a long-lived stream.
func stepAtLen(b *testing.B, w *core.Wrapper, L int, quality []float64) {
	b.Helper()
	for i := 0; i < L; i++ {
		if _, err := w.Step(i&3, quality); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Step(i&3, quality); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrapperStepLen is the O(1)-step proof: the incremental fast path
// (running buffer stats + fusion tally + compiled tree + scratch row) must
// hold ns/op flat and allocs/op at zero as the series length grows 10 → 10k.
func BenchmarkWrapperStepLen(b *testing.B) {
	st := study(b)
	quality := st.TestSeries[0].Quality[0]
	for _, L := range benchStepLens {
		b.Run(fmt.Sprintf("len=%d", L), func(b *testing.B) {
			w, err := core.NewWrapper(st.Base, st.TAQIM, core.Config{BufferLimit: L})
			if err != nil {
				b.Fatal(err)
			}
			stepAtLen(b, w, L, quality)
		})
	}
}

// opaqueFuser hides the fuser's incremental form, forcing the wrapper onto
// the reference full-series path — the pre-optimisation behaviour kept as
// the benchmark baseline (O(series length) per step).
type opaqueFuser struct{ fusion.OutcomeFuser }

// BenchmarkWrapperStepLenReference is the "before" column: the same workload
// on the reference path, whose per-step cost grows linearly with the series.
func BenchmarkWrapperStepLenReference(b *testing.B) {
	st := study(b)
	quality := st.TestSeries[0].Quality[0]
	for _, L := range benchStepLens {
		b.Run(fmt.Sprintf("len=%d", L), func(b *testing.B) {
			w, err := core.NewWrapper(st.Base, st.TAQIM, core.Config{
				BufferLimit: L,
				Fuser:       opaqueFuser{fusion.MajorityVote{}},
			})
			if err != nil {
				b.Fatal(err)
			}
			stepAtLen(b, w, L, quality)
		})
	}
}

// BenchmarkStatelessEstimate measures the base wrapper's per-frame cost.
func BenchmarkStatelessEstimate(b *testing.B) {
	st := study(b)
	series := st.TestSeries[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(series.Outcomes)
		if _, err := st.Base.Estimate(series.Outcomes[j], series.Quality[j], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClopperPearson measures the leaf-calibration bound itself.
func BenchmarkClopperPearson(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := i % 40
		if _, err := stats.BinomialUpperBound(stats.ClopperPearson, k, 200, 0.999); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBrierDecompose measures the Murphy decomposition on a
// tree-valued forecast sample.
func BenchmarkBrierDecompose(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	levels := []float64{0.005, 0.02, 0.1, 0.3, 0.6}
	n := 10000
	forecast := make([]float64, n)
	outcome := make([]bool, n)
	for i := range forecast {
		forecast[i] = levels[rng.IntN(len(levels))]
		outcome[i] = rng.Float64() < forecast[i]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Decompose(forecast, outcome); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMajorityVote measures the paper's information-fusion rule on a
// length-10 history.
func BenchmarkMajorityVote(b *testing.B) {
	outcomes := []int{3, 7, 3, 7, 7, 3, 7, 7, 7, 7}
	us := []float64{0.4, 0.3, 0.3, 0.2, 0.1, 0.3, 0.1, 0.05, 0.04, 0.02}
	mv := fusion.MajorityVote{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mv.Fuse(outcomes, us); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBufferAppend contrasts the unbounded buffer against the ring
// variant (the buffer-implementation ablation from DESIGN.md).
func BenchmarkBufferAppend(b *testing.B) {
	b.Run("unbounded", func(b *testing.B) {
		buf, err := core.NewBuffer(0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				buf.Reset()
			}
			buf.Append(core.Record{Outcome: i, Uncertainty: 0.1})
		}
	})
	b.Run("ring64", func(b *testing.B) {
		buf, err := core.NewBuffer(64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Append(core.Record{Outcome: i, Uncertainty: 0.1})
		}
	})
}

// ---- serving-layer benchmarks: sharded pool vs single-mutex baseline ----

// mutexPool replicates the pre-sharding WrapperPool: one global mutex
// guarding one track map, a per-track mutex serialising steps. It exists
// only as the benchmark baseline the sharded pool is measured against.
type mutexPool struct {
	mu     sync.Mutex
	tracks map[int]*mutexTrack
}

type mutexTrack struct {
	mu sync.Mutex
	w  *core.Wrapper
}

func (p *mutexPool) open(st *eval.Study, trackID int, cfg core.Config) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, err := core.NewWrapper(st.Base, st.TAQIM, cfg)
	if err != nil {
		return err
	}
	p.tracks[trackID] = &mutexTrack{w: w}
	return nil
}

func (p *mutexPool) step(trackID, outcome int, quality []float64) (core.Result, error) {
	p.mu.Lock()
	tr := p.tracks[trackID]
	p.mu.Unlock()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.w.Step(outcome, quality)
}

// benchPoolCfg keeps per-step work small so the lock path, not the fusion
// math over a long buffer, dominates what the contention benchmarks measure.
var benchPoolCfg = core.Config{BufferLimit: 16}

const benchPoolTracks = 512

// BenchmarkPoolStepParallel is the headline contention benchmark: many
// goroutines step many tracks at once. "sharded" is the production
// WrapperPool; "global-mutex" is the old design. Run with -cpu to scale the
// stepper count.
//
// Single-vCPU caveat: on a 1-CPU runner the -cpu=4 variants measure the Go
// scheduler multiplexing four steppers onto one core, not lock contention,
// and short -benchtime runs there are noisy enough to invert the ranking
// (BENCH_6 recorded sharded at 577 ns/op vs global-mutex at 401; at
// -benchtime=100000x both designs sit in the same 220–280 ns band). The CI
// bench step runs the contention benchmarks at a fixed large -benchtime for
// this reason; treat sharded-vs-global deltas from 1-CPU boxes as noise.
func BenchmarkPoolStepParallel(b *testing.B) {
	st := study(b)
	series := st.TestSeries[0]
	outcome, quality := series.Outcomes[0], series.Quality[0]

	// Each stepper goroutine owns a disjoint slice of the track space (as a
	// connection handling its own sessions would), so per-track locks never
	// collide and the benchmark isolates the pool's lookup layer — the lock
	// the two designs differ in. RunParallel spawns GOMAXPROCS goroutines,
	// so sizing the slices off that keeps the partition exact at any -cpu.
	perG := benchPoolTracks / runtime.GOMAXPROCS(0)
	if perG < 1 {
		perG = 1
	}

	b.Run("sharded", func(b *testing.B) {
		pool, err := core.NewWrapperPool(st.Base, st.TAQIM, benchPoolCfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		for id := 0; id < benchPoolTracks; id++ {
			if err := pool.Open(id); err != nil {
				b.Fatal(err)
			}
		}
		var next atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			base := (int(next.Add(1)-1) * perG) % benchPoolTracks
			i := 0
			for pb.Next() {
				i++
				if _, err := pool.Step(base+i%perG, outcome, quality); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("global-mutex", func(b *testing.B) {
		pool := &mutexPool{tracks: make(map[int]*mutexTrack)}
		for id := 0; id < benchPoolTracks; id++ {
			if err := pool.open(st, id, benchPoolCfg); err != nil {
				b.Fatal(err)
			}
		}
		var next atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			base := (int(next.Add(1)-1) * perG) % benchPoolTracks
			i := 0
			for pb.Next() {
				i++
				if _, err := pool.step(base+i%perG, outcome, quality); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkPoolOpenCloseParallel measures session churn — the path a
// tracker exercises whenever objects enter and leave the scene. The global
// mutex serialises it fully; the shards keep it mostly parallel.
func BenchmarkPoolOpenCloseParallel(b *testing.B) {
	st := study(b)
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM, benchPoolCfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine churns its own ten-million-id space (the slot
		// count keeps the arithmetic inside 32-bit int range); contention
		// is purely on shard locks (or, pre-sharding, one global lock).
		id := (int(next.Add(1)) % 200) * 10_000_000
		for pb.Next() {
			id++
			if err := pool.Open(id); err != nil {
				b.Error(err)
				return
			}
			if err := pool.Close(id); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPoolStepBatch measures the batch fan-out path: one frame's worth
// of steps for every open track. The "reuse" variants recycle the result
// slice through StepBatchInto — the steady-state serving loop, which must
// stay at ≤2 allocs per op (the bench gate enforces it); the "fresh"
// variants allocate results per batch, the price a caller pays for not
// recycling. Rings are prefilled before the timer so the numbers measure
// steady state, not warm-up growth.
func BenchmarkPoolStepBatch(b *testing.B) {
	st := study(b)
	series := st.TestSeries[0]
	outcome, quality := series.Outcomes[0], series.Quality[0]
	items := make([]core.StepItem, benchPoolTracks)
	for id := range items {
		items[id] = core.StepItem{TrackID: id, Outcome: outcome, Quality: quality}
	}
	warmPool := func(b *testing.B) *core.WrapperPool {
		b.Helper()
		pool, err := core.NewWrapperPool(st.Base, st.TAQIM, benchPoolCfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		for id := 0; id < benchPoolTracks; id++ {
			if err := pool.Open(id); err != nil {
				b.Fatal(err)
			}
		}
		// Fill every ring (plus one eviction round) so the timed section
		// never sees buffer growth.
		var dst []core.BatchResult
		for i := 0; i < benchPoolCfg.BufferLimit+2; i++ {
			dst = pool.StepBatchInto(items, 0, dst)
			for _, r := range dst {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		return pool
	}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("reuse/workers=%d", workers), func(b *testing.B) {
			pool := warmPool(b)
			dst := make([]core.BatchResult, benchPoolTracks)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = pool.StepBatchInto(items, workers, dst)
				for j := range dst {
					if dst[j].Err != nil {
						b.Fatal(dst[j].Err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchPoolTracks), "ns/item")
		})
		b.Run(fmt.Sprintf("fresh/workers=%d", workers), func(b *testing.B) {
			pool := warmPool(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range pool.StepBatch(items, workers) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchPoolTracks), "ns/item")
		})
	}
}

// BenchmarkMonitorStepOverhead prices the runtime calibration monitoring on
// the pool's step hot path: "off" is a plain pool, "on" a monitored one
// (shard-local counters + provenance-ring write). Both sides must report
// 0 allocs/op — the monitor may cost a few nanoseconds of atomics, never an
// allocation — and the committed trajectory enrolls them in the alloc-decay
// gate. The ring is prefilled past one wrap so the measured steps overwrite
// slots, the steady state of a long-lived stream.
func BenchmarkMonitorStepOverhead(b *testing.B) {
	st := study(b)
	series := st.TestSeries[0]
	outcome, quality := series.Outcomes[0], series.Quality[0]
	run := func(b *testing.B, opts ...core.PoolOption) {
		b.Helper()
		pool, err := core.NewWrapperPool(st.Base, st.TAQIM, benchPoolCfg, 0, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Open(1); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 300; i++ { // past ring wrap and buffer fill
			if _, err := pool.Step(1, outcome, quality); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Step(1, outcome, quality); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b) })
	b.Run("on", func(b *testing.B) { run(b, core.WithMonitoring(256)) })
}

// BenchmarkMonitorFeedback prices one ground-truth join: the provenance-
// ring take plus the monitor's shard/bin/window/drift update. Each
// iteration steps once and joins once, so the number is the full feedback
// round minus HTTP.
func BenchmarkMonitorFeedback(b *testing.B) {
	st := study(b)
	series := st.TestSeries[0]
	outcome, quality := series.Outcomes[0], series.Quality[0]
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM, benchPoolCfg, 0, core.WithMonitoring(256))
	if err != nil {
		b.Fatal(err)
	}
	if err := pool.Open(1); err != nil {
		b.Fatal(err)
	}
	m, err := monitor.New(monitor.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pool.Step(1, outcome, quality)
		if err != nil {
			b.Fatal(err)
		}
		rec, err := pool.TakeFeedback(1, res.TotalSteps)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Observe(1, rec.Uncertainty, rec.Fused != series.Truth); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQIMFit measures growing and calibrating a quality impact model
// on frame-scale data — the cost of the (re)calibration phase.
func BenchmarkQIMFit(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	n := 4000
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = rng.Float64() < 0.05+0.4*x[i][0]
	}
	cfg := uw.DefaultQIMConfig()
	cfg.MinLeafCalibration = 200
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uw.FitQIM(x, y, x, y, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDDMTraining measures softmax-regression training on a
// study-scale sample count (reported as the DDM-training context number).
func BenchmarkDDMTraining(b *testing.B) {
	st := study(b)
	_ = st // ensures comparable process state with the other benches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := eval.TinyConfig()
		cfg.NumSeries = 60
		cfg.TrainAugmentations = 2
		cfg.EvalAugmentations = 2
		cfg.Train.Epochs = 2
		if _, err := eval.BuildStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
