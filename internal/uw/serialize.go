package uw

import (
	"encoding/json"
	"fmt"

	"github.com/iese-repro/tauw/internal/dtree"
	"github.com/iese-repro/tauw/internal/stats"
)

// qimJSON is the on-disk representation of a calibrated quality impact
// model: the tree with its leaf bounds plus the configuration and factor
// names, enough to deploy the model without access to training data.
type qimJSON struct {
	Tree   json.RawMessage `json:"tree"`
	Names  []string        `json:"factor_names"`
	Config qimConfigJSON   `json:"config"`
}

type qimConfigJSON struct {
	TreeDepth          int     `json:"tree_depth"`
	MinLeafCalibration int     `json:"min_leaf_calibration"`
	Confidence         float64 `json:"confidence"`
	Bound              int     `json:"bound"`
	Criterion          int     `json:"criterion"`
}

// MarshalJSON serialises the calibrated model.
func (q *QualityImpactModel) MarshalJSON() ([]byte, error) {
	treeData, err := json.Marshal(q.tree)
	if err != nil {
		return nil, fmt.Errorf("uw: encode tree: %w", err)
	}
	return json.Marshal(qimJSON{
		Tree:  treeData,
		Names: q.names,
		Config: qimConfigJSON{
			TreeDepth:          q.cfg.TreeDepth,
			MinLeafCalibration: q.cfg.MinLeafCalibration,
			Confidence:         q.cfg.Confidence,
			Bound:              int(q.cfg.Bound),
			Criterion:          int(q.cfg.Criterion),
		},
	})
}

// LoadQIM deserialises a model produced by MarshalJSON and validates it.
func LoadQIM(data []byte) (*QualityImpactModel, error) {
	var qj qimJSON
	if err := json.Unmarshal(data, &qj); err != nil {
		return nil, fmt.Errorf("uw: decode quality impact model: %w", err)
	}
	tree, err := dtree.Load(qj.Tree)
	if err != nil {
		return nil, fmt.Errorf("uw: decode tree: %w", err)
	}
	cfg := QIMConfig{
		TreeDepth:          qj.Config.TreeDepth,
		MinLeafCalibration: qj.Config.MinLeafCalibration,
		Confidence:         qj.Config.Confidence,
		Bound:              stats.BoundMethod(qj.Config.Bound),
		Criterion:          dtree.Criterion(qj.Config.Criterion),
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("uw: loaded model has invalid config: %w", err)
	}
	// A deployed model must be calibrated: every leaf needs a bound.
	if _, err := tree.MinLeafValue(); err != nil {
		return nil, fmt.Errorf("uw: loaded model is not calibrated: %w", err)
	}
	return &QualityImpactModel{tree: tree, flat: tree.Compile(), cfg: cfg, names: qj.Names}, nil
}
