package uw

import (
	"testing"

	"github.com/iese-repro/tauw/internal/dtree"
)

func TestQIMRecalibrate(t *testing.T) {
	qim := fitTestQIM(t)
	probe := []float64{0.2, 0.5} // the clean region
	leaf, err := qim.LeafID(probe)
	if err != nil {
		t.Fatal(err)
	}
	before, err := qim.Uncertainty(probe)
	if err != nil {
		t.Fatal(err)
	}

	// Heavy online failure evidence for the clean region: the refreshed
	// bound must rise, the structure must not change, and the receiver must
	// keep serving the old bound.
	ev := []dtree.LeafEvidence{{LeafID: leaf, Count: 2000, Events: 1500}}
	next, deltas, err := qim.Recalibrate(ev, dtree.RecalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if next.NumRegions() != qim.NumRegions() || next.NumFeatures() != qim.NumFeatures() {
		t.Fatalf("recalibration changed the model shape: %d/%d -> %d/%d",
			qim.NumRegions(), qim.NumFeatures(), next.NumRegions(), next.NumFeatures())
	}
	after, err := next.Uncertainty(probe)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("1500/2000 online failures must raise the bound: %g -> %g", before, after)
	}
	still, err := qim.Uncertainty(probe)
	if err != nil {
		t.Fatal(err)
	}
	if still != before {
		t.Fatalf("recalibration mutated the serving model: %g -> %g", before, still)
	}
	// The same leaf routes the same input on both models (structure
	// preserved), and the delta records the move.
	leafAfter, err := next.LeafID(probe)
	if err != nil {
		t.Fatal(err)
	}
	if leafAfter != leaf {
		t.Fatalf("leaf id moved across recalibration: %d -> %d", leaf, leafAfter)
	}
	found := false
	for _, d := range deltas {
		if d.LeafID == leaf {
			found = true
			if !d.Refreshed || d.OldValue != before || d.NewValue != after {
				t.Fatalf("delta for leaf %d inconsistent: %+v (want %g -> %g)", leaf, d, before, after)
			}
		} else if d.Refreshed {
			t.Fatalf("leaf %d refreshed without evidence", d.LeafID)
		}
	}
	if !found {
		t.Fatalf("no delta for leaf %d", leaf)
	}

	// Invalid evidence propagates as an error.
	if _, _, err := qim.Recalibrate([]dtree.LeafEvidence{{LeafID: -3, Count: 1}}, dtree.RecalibConfig{}); err == nil {
		t.Fatal("invalid evidence must fail")
	}
}
