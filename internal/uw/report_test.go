package uw

import (
	"strings"
	"testing"
)

func TestLeafReport(t *testing.T) {
	qim := fitTestQIM(t)
	report := qim.LeafReport()
	if len(report) != qim.NumRegions() {
		t.Fatalf("report has %d rows, want %d regions", len(report), qim.NumRegions())
	}
	seen := make(map[int]bool)
	prevU := -1.0
	for _, info := range report {
		if seen[info.LeafID] {
			t.Errorf("leaf %d reported twice", info.LeafID)
		}
		seen[info.LeafID] = true
		if info.Uncertainty < prevU {
			t.Error("report must be sorted by uncertainty")
		}
		prevU = info.Uncertainty
		if info.CalibSamples <= 0 {
			t.Errorf("leaf %d has no calibration evidence", info.LeafID)
		}
		if info.CalibFailures > info.CalibSamples {
			t.Errorf("leaf %d: %d failures of %d samples", info.LeafID,
				info.CalibFailures, info.CalibSamples)
		}
		// Every non-root leaf must carry at least one condition, and
		// conditions must use the configured factor names.
		if qim.NumRegions() > 1 && len(info.Path) == 0 {
			t.Errorf("leaf %d has an empty path", info.LeafID)
		}
		for _, cond := range info.Path {
			if !strings.Contains(cond, "severity") && !strings.Contains(cond, "noise") {
				t.Errorf("condition %q does not use factor names", cond)
			}
		}
	}
	// Routing consistency: an input must land in a leaf whose reported
	// bound matches the wrapper's estimate.
	probe := []float64{0.9, 0.5}
	u, err := qim.Uncertainty(probe)
	if err != nil {
		t.Fatal(err)
	}
	id, err := qim.LeafID(probe)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range report {
		if info.LeafID == id {
			found = true
			if info.Uncertainty != u {
				t.Errorf("report bound %g != estimate %g", info.Uncertainty, u)
			}
		}
	}
	if !found {
		t.Errorf("leaf %d missing from report", id)
	}
	text := qim.ReportString()
	if !strings.Contains(text, "severity") || !strings.Contains(text, "uncertainty") {
		t.Errorf("report string unexpected:\n%s", text)
	}
}
