package uw

import (
	"encoding/json"
	"math/rand/v2"
	"testing"
)

func TestQIMSerialiseRoundTrip(t *testing.T) {
	qim := fitTestQIM(t)
	data, err := json.Marshal(qim)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQIM(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRegions() != qim.NumRegions() {
		t.Fatalf("regions differ: %d vs %d", loaded.NumRegions(), qim.NumRegions())
	}
	if loaded.Config() != qim.Config() {
		t.Errorf("config differs: %+v vs %+v", loaded.Config(), qim.Config())
	}
	rng := rand.New(rand.NewPCG(3, 5))
	for i := 0; i < 300; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		u1, err := qim.Uncertainty(p)
		if err != nil {
			t.Fatal(err)
		}
		u2, err := loaded.Uncertainty(p)
		if err != nil {
			t.Fatal(err)
		}
		if u1 != u2 {
			t.Fatalf("probe %v: %g != %g", p, u1, u2)
		}
	}
	// Rule export keeps the factor names.
	if loaded.Rules() != qim.Rules() {
		t.Error("rules differ after round trip")
	}
	// A loaded model can back a wrapper immediately.
	w, err := NewWrapper(loaded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Estimate(1, []float64{0.5, 0.5}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadQIMRejectsCorrupt(t *testing.T) {
	if _, err := LoadQIM([]byte(`{nope`)); err == nil {
		t.Error("bad JSON must fail")
	}
	if _, err := LoadQIM([]byte(`{"tree":{"num_features":0,"nodes":[]},"config":{}}`)); err == nil {
		t.Error("corrupt tree must fail")
	}
	// Valid tree but invalid config.
	qim := fitTestQIM(t)
	data, err := json.Marshal(qim)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["config"] = json.RawMessage(`{"tree_depth":0,"min_leaf_calibration":0,"confidence":2}`)
	tampered, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadQIM(tampered); err == nil {
		t.Error("invalid config must fail")
	}
	// Uncalibrated tree must be rejected for deployment.
	uncal := []byte(`{
	  "tree": {"num_features":1,"nodes":[{"feature":-1,"left":-1,"right":-1,"value":-1}],
	           "config":{"max_depth":1,"min_split_samples":2,"min_leaf_samples":1,"criterion":1}},
	  "factor_names": ["x"],
	  "config": {"tree_depth":8,"min_leaf_calibration":200,"confidence":0.999,"bound":1,"criterion":1}
	}`)
	if _, err := LoadQIM(uncal); err == nil {
		t.Error("uncalibrated model must fail to load")
	}
}
