package uw

import (
	"math"
	"testing"
)

// TestScopeModelNaNFactors pins the NaN regression: a NaN scope factor means
// "out of scope" (uncertainty 1) in every configuration — whether the NaN
// dimension carries a hard boundary check or not, and whether a similarity
// model has been fitted or not. Before the fix, a NaN in an unchecked
// dimension returned NaN on the fitted path (poisoned worstZ) and 0 — fully
// in scope — on the unfitted path.
func TestScopeModelNaNFactors(t *testing.T) {
	nan := math.NaN()
	fit := func(sm *ScopeModel) *ScopeModel {
		t.Helper()
		data := [][]float64{{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}, {0.2, 0.1}}
		if err := sm.FitSimilarity(data); err != nil {
			t.Fatal(err)
		}
		return sm
	}
	check := BoundaryCheck{Name: "dim0", Index: 0, Min: 0, Max: 1}
	newModel := func(fitted bool, checks ...BoundaryCheck) *ScopeModel {
		t.Helper()
		sm, err := NewScopeModel(2, checks...)
		if err != nil {
			t.Fatal(err)
		}
		if fitted {
			fit(sm)
		}
		return sm
	}

	cases := []struct {
		name    string
		model   *ScopeModel
		factors []float64
		want    float64
	}{
		{"NaN in checked dim, unfitted", newModel(false, check), []float64{nan, 0.2}, 1},
		{"NaN in checked dim, fitted", newModel(true, check), []float64{nan, 0.2}, 1},
		{"NaN in unchecked dim, unfitted", newModel(false, check), []float64{0.2, nan}, 1},
		{"NaN in unchecked dim, fitted", newModel(true, check), []float64{0.2, nan}, 1},
		{"NaN with no checks at all, unfitted", newModel(false), []float64{0.2, nan}, 1},
		{"NaN with no checks at all, fitted", newModel(true), []float64{0.2, nan}, 1},
		{"finite in-scope input still passes, unfitted", newModel(false, check), []float64{0.2, 0.2}, 0},
		{"finite in-scope input still passes, fitted", newModel(true, check), []float64{0.2, 0.2}, 0},
	}
	for _, tc := range cases {
		got, err := tc.model.Uncertainty(tc.factors)
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: Uncertainty = %g, want %g", tc.name, got, tc.want)
		}
	}
}

// TestScopeModelUncertaintyNeverNaN sweeps NaN through every dimension of a
// fitted model: the returned uncertainty must always be a number in [0,1].
func TestScopeModelUncertaintyNeverNaN(t *testing.T) {
	sm, err := NewScopeModel(3, BoundaryCheck{Name: "d1", Index: 1, Min: -1, Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.FitSimilarity([][]float64{{0, 0, 0}, {1, 1, 1}, {0.5, 0.2, 0.8}}); err != nil {
		t.Fatal(err)
	}
	base := []float64{0.5, 0.5, 0.5}
	for d := 0; d < 3; d++ {
		factors := append([]float64(nil), base...)
		factors[d] = math.NaN()
		u, err := sm.Uncertainty(factors)
		if err != nil {
			t.Fatalf("dim %d: %v", d, err)
		}
		if math.IsNaN(u) || u < 0 || u > 1 {
			t.Fatalf("dim %d: Uncertainty = %g, want a number in [0,1]", d, u)
		}
		if u != 1 {
			t.Fatalf("dim %d: NaN factor scored %g, want out of scope (1)", d, u)
		}
	}
}
