package uw

import (
	"errors"
	"fmt"
	"math"
)

// BoundaryCheck declares a hard limit of the target application scope on one
// scope factor (e.g. GPS latitude within Germany).
type BoundaryCheck struct {
	// Name labels the check in reports.
	Name string
	// Index selects the scope-factor dimension the check applies to.
	Index int
	// Min and Max are the inclusive bounds of the scope.
	Min, Max float64
}

// ScopeModel estimates scope-compliance-related uncertainty: the probability
// that the DDM is applied outside its target application scope (TAS). It
// combines hard boundary checks with a similarity degree between the runtime
// input and the data seen during development, as described in the framework
// papers. The study itself keeps all data inside the TAS and omits the scope
// model; it is provided for completeness and used by the runtime examples.
type ScopeModel struct {
	checks []BoundaryCheck
	dim    int
	// Per-dimension Gaussian summary of in-scope development data for the
	// similarity degree.
	mean, std []float64
	fitted    bool
}

// NewScopeModel creates a scope model for scope-factor vectors of the given
// dimension.
func NewScopeModel(dim int, checks ...BoundaryCheck) (*ScopeModel, error) {
	if dim <= 0 {
		return nil, errors.New("uw: scope dimension must be positive")
	}
	for _, c := range checks {
		if c.Index < 0 || c.Index >= dim {
			return nil, fmt.Errorf("uw: boundary check %q index %d outside dimension %d", c.Name, c.Index, dim)
		}
		if c.Min > c.Max {
			return nil, fmt.Errorf("uw: boundary check %q has min %g > max %g", c.Name, c.Min, c.Max)
		}
	}
	cs := make([]BoundaryCheck, len(checks))
	copy(cs, checks)
	return &ScopeModel{checks: cs, dim: dim}, nil
}

// FitSimilarity summarises in-scope development data so runtime inputs can
// be scored by their similarity to it.
func (s *ScopeModel) FitSimilarity(inScope [][]float64) error {
	if len(inScope) < 2 {
		return errors.New("uw: need at least 2 in-scope samples to fit similarity")
	}
	mean := make([]float64, s.dim)
	std := make([]float64, s.dim)
	for i, row := range inScope {
		if len(row) != s.dim {
			return fmt.Errorf("uw: in-scope row %d has %d factors, want %d", i, len(row), s.dim)
		}
		for d, v := range row {
			mean[d] += v
		}
	}
	n := float64(len(inScope))
	for d := range mean {
		mean[d] /= n
	}
	for _, row := range inScope {
		for d, v := range row {
			std[d] += (v - mean[d]) * (v - mean[d])
		}
	}
	for d := range std {
		std[d] = math.Sqrt(std[d] / (n - 1))
		if std[d] == 0 {
			std[d] = 1e-9
		}
	}
	s.mean, s.std = mean, std
	s.fitted = true
	return nil
}

// Uncertainty returns the scope-compliance uncertainty for the scope-factor
// vector: 1 when any hard boundary is violated, otherwise a similarity-based
// estimate of the probability of being outside the TAS (0 when no similarity
// model is fitted).
func (s *ScopeModel) Uncertainty(factors []float64) (float64, error) {
	if len(factors) != s.dim {
		return math.NaN(), fmt.Errorf("uw: got %d scope factors, want %d", len(factors), s.dim)
	}
	for _, c := range s.checks {
		v := factors[c.Index]
		if v < c.Min || v > c.Max || math.IsNaN(v) {
			return 1, nil
		}
	}
	// A NaN factor is out of scope whichever dimension carries it, hard
	// boundary check or not: a sensor that reports not-a-number is not
	// reporting an in-scope value. Without this, a NaN in an unchecked
	// dimension would poison worstZ below (math.Abs(NaN)/std propagates NaN
	// through math.Max and out of the smooth step) and the unfitted path
	// would even report 0 — fully in scope — for garbage input.
	for _, v := range factors {
		if math.IsNaN(v) {
			return 1, nil
		}
	}
	if !s.fitted {
		return 0, nil
	}
	// Similarity degree: the largest per-dimension z-score against the
	// development data, mapped through a smooth step so that inputs within
	// ~3 sigma count as compliant and inputs beyond ~6 sigma as clearly
	// out of scope.
	var worstZ float64
	for d, v := range factors {
		z := math.Abs(v-s.mean[d]) / s.std[d]
		worstZ = math.Max(worstZ, z)
	}
	switch {
	case worstZ <= 3:
		return 0, nil
	case worstZ >= 6:
		return 1, nil
	default:
		return (worstZ - 3) / 3, nil
	}
}

// Checks returns a copy of the configured boundary checks.
func (s *ScopeModel) Checks() []BoundaryCheck {
	out := make([]BoundaryCheck, len(s.checks))
	copy(out, s.checks)
	return out
}
