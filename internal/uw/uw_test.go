package uw

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"github.com/iese-repro/tauw/internal/stats"
)

// failureData builds factors where failures concentrate at high x0:
// P(fail) = 0.02 for x0 <= 0.5, 0.4 above.
func failureData(n int, seed uint64) ([][]float64, []bool) {
	rng := rand.New(rand.NewPCG(seed, 1))
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		p := 0.02
		if x[i][0] > 0.5 {
			p = 0.4
		}
		y[i] = rng.Float64() < p
	}
	return x, y
}

func fitTestQIM(t *testing.T) *QualityImpactModel {
	t.Helper()
	tx, ty := failureData(4000, 3)
	cx, cy := failureData(4000, 5)
	qim, err := FitQIM(tx, ty, cx, cy, []string{"severity", "noise"}, DefaultQIMConfig())
	if err != nil {
		t.Fatal(err)
	}
	return qim
}

func TestQIMConfigValidate(t *testing.T) {
	bad := []QIMConfig{
		{TreeDepth: 0, MinLeafCalibration: 10, Confidence: 0.9},
		{TreeDepth: 3, MinLeafCalibration: 0, Confidence: 0.9},
		{TreeDepth: 3, MinLeafCalibration: 10, Confidence: 0},
		{TreeDepth: 3, MinLeafCalibration: 10, Confidence: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d must fail", i)
		}
	}
	if err := DefaultQIMConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestFitQIMSeparatesRegions(t *testing.T) {
	qim := fitTestQIM(t)
	uLow, err := qim.Uncertainty([]float64{0.2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	uHigh, err := qim.Uncertainty([]float64{0.9, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if uLow >= uHigh {
		t.Errorf("clean region u=%g must be below degraded region u=%g", uLow, uHigh)
	}
	// Dependability: bounds must cover the true rates (0.02 and 0.4).
	if uLow < 0.02 {
		t.Errorf("clean bound %g below true rate 0.02", uLow)
	}
	if uHigh < 0.4 {
		t.Errorf("degraded bound %g below true rate 0.4", uHigh)
	}
	// But not uselessly loose.
	if uLow > 0.15 || uHigh > 0.6 {
		t.Errorf("bounds too loose: %g / %g", uLow, uHigh)
	}
	if qim.NumRegions() < 2 {
		t.Error("QIM must keep at least the informative split")
	}
	minU, err := qim.MinUncertainty()
	if err != nil {
		t.Fatal(err)
	}
	if minU > uLow {
		t.Errorf("MinUncertainty %g above observed low %g", minU, uLow)
	}
}

func TestFitQIMErrors(t *testing.T) {
	tx, ty := failureData(100, 1)
	if _, err := FitQIM(nil, nil, tx, ty, nil, DefaultQIMConfig()); err == nil {
		t.Error("empty training set must fail")
	}
	if _, err := FitQIM(tx, ty, nil, nil, nil, DefaultQIMConfig()); err == nil {
		t.Error("empty calibration set must fail")
	}
	bad := DefaultQIMConfig()
	bad.TreeDepth = 0
	if _, err := FitQIM(tx, ty, tx, ty, nil, bad); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestQIMTransparency(t *testing.T) {
	qim := fitTestQIM(t)
	rules := qim.Rules()
	if !strings.Contains(rules, "severity") {
		t.Errorf("rules must show factor names:\n%s", rules)
	}
	if !strings.HasPrefix(qim.DOT(), "digraph") {
		t.Error("DOT export broken")
	}
	imp := qim.FeatureImportance()
	if imp["severity"] < 0.8 {
		t.Errorf("severity importance %g, want > 0.8 (it drives all failures)", imp["severity"])
	}
	if qim.Config().Confidence != 0.999 {
		t.Error("config not preserved")
	}
	if qim.LeafIDMustWork(t) {
		// helper asserts inside
	}
}

// LeafIDMustWork exercises LeafID; defined as a method on the test to keep
// the production API clean.
func (q *QualityImpactModel) LeafIDMustWork(t *testing.T) bool {
	t.Helper()
	id, err := q.LeafID([]float64{0.3, 0.3})
	if err != nil {
		t.Fatalf("LeafID: %v", err)
	}
	if id < 0 || id >= q.NumRegions() {
		t.Fatalf("leaf id %d outside [0,%d)", id, q.NumRegions())
	}
	return true
}

func TestScopeModelBoundaries(t *testing.T) {
	// Scope factors: [lat, lon]; TAS = Germany bounding box.
	sm, err := NewScopeModel(2,
		BoundaryCheck{Name: "lat", Index: 0, Min: 47.27, Max: 55.06},
		BoundaryCheck{Name: "lon", Index: 1, Min: 5.87, Max: 15.04},
	)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sm.Uncertainty([]float64{49.49, 8.47}) // Mannheim
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Errorf("in-scope uncertainty = %g, want 0", u)
	}
	u, err = sm.Uncertainty([]float64{40.71, -74.01}) // New York
	if err != nil {
		t.Fatal(err)
	}
	if u != 1 {
		t.Errorf("out-of-scope uncertainty = %g, want 1", u)
	}
	if _, err := sm.Uncertainty([]float64{49}); err == nil {
		t.Error("wrong factor count must fail")
	}
	if len(sm.Checks()) != 2 {
		t.Error("checks not preserved")
	}
}

func TestScopeModelValidation(t *testing.T) {
	if _, err := NewScopeModel(0); err == nil {
		t.Error("zero dim must fail")
	}
	if _, err := NewScopeModel(1, BoundaryCheck{Index: 5, Min: 0, Max: 1}); err == nil {
		t.Error("out-of-range index must fail")
	}
	if _, err := NewScopeModel(1, BoundaryCheck{Index: 0, Min: 2, Max: 1}); err == nil {
		t.Error("inverted bounds must fail")
	}
}

func TestScopeModelSimilarity(t *testing.T) {
	sm, err := NewScopeModel(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.FitSimilarity(nil); err == nil {
		t.Error("too few samples must fail")
	}
	if err := sm.FitSimilarity([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows must fail")
	}
	rng := rand.New(rand.NewPCG(7, 8))
	data := make([][]float64, 500)
	for i := range data {
		data[i] = []float64{10 + rng.NormFloat64()}
	}
	if err := sm.FitSimilarity(data); err != nil {
		t.Fatal(err)
	}
	uNear, _ := sm.Uncertainty([]float64{10.5})
	uMid, _ := sm.Uncertainty([]float64{14.5})
	uFar, _ := sm.Uncertainty([]float64{30})
	if uNear != 0 {
		t.Errorf("similar input uncertainty = %g, want 0", uNear)
	}
	if !(uMid > 0 && uMid < 1) {
		t.Errorf("borderline input uncertainty = %g, want in (0,1)", uMid)
	}
	if uFar != 1 {
		t.Errorf("dissimilar input uncertainty = %g, want 1", uFar)
	}
}

func TestWrapperCombination(t *testing.T) {
	qim := fitTestQIM(t)
	sm, err := NewScopeModel(1, BoundaryCheck{Name: "lat", Index: 0, Min: 47, Max: 55})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWrapper(qim, sm)
	if err != nil {
		t.Fatal(err)
	}
	est, err := w.Estimate(14, []float64{0.2, 0.5}, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if est.Outcome != 14 {
		t.Error("outcome not echoed")
	}
	if est.ScopeUncertainty != 0 {
		t.Error("in-scope estimate must have zero scope uncertainty")
	}
	if est.Uncertainty != est.QualityUncertainty {
		t.Error("with zero scope uncertainty, combined must equal quality")
	}
	if math.Abs(est.Certainty()-(1-est.Uncertainty)) > 1e-15 {
		t.Error("certainty inconsistent")
	}
	// Out of scope dominates everything.
	est, err = w.Estimate(14, []float64{0.2, 0.5}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if est.Uncertainty != 1 {
		t.Errorf("out-of-scope uncertainty = %g, want 1", est.Uncertainty)
	}
	if w.QIM() != qim || w.Scope() != sm {
		t.Error("accessors broken")
	}
}

func TestWrapperWithoutScope(t *testing.T) {
	qim := fitTestQIM(t)
	w, err := NewWrapper(qim, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := w.Estimate(3, []float64{0.8, 0.1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.ScopeUncertainty != 0 {
		t.Error("nil scope model must contribute zero uncertainty")
	}
	if _, err := NewWrapper(nil, nil); err == nil {
		t.Error("nil QIM must fail")
	}
	if _, err := w.Estimate(3, []float64{0.8}, nil); err == nil {
		t.Error("wrong factor width must fail")
	}
	if _, err := w.Estimate(3, []float64{math.NaN(), 0.5}, nil); err == nil {
		t.Error("NaN quality factor must fail")
	}
	if _, err := w.Estimate(3, []float64{math.Inf(1), 0.5}, nil); err == nil {
		t.Error("infinite quality factor must fail")
	}
}

// Property: the combined uncertainty never falls below either component and
// stays in [0,1].
func TestCombinationProperty(t *testing.T) {
	qim := fitTestQIM(t)
	sm, err := NewScopeModel(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(17, 18))
	data := make([][]float64, 100)
	for i := range data {
		data[i] = []float64{rng.NormFloat64()}
	}
	if err := sm.FitSimilarity(data); err != nil {
		t.Fatal(err)
	}
	w, err := NewWrapper(qim, sm)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c uint16) bool {
		qf := []float64{float64(a) / 65535, float64(b) / 65535}
		sf := []float64{float64(c)/6553.5 - 5}
		est, err := w.Estimate(0, qf, sf)
		if err != nil {
			return false
		}
		return est.Uncertainty >= est.QualityUncertainty-1e-12 &&
			est.Uncertainty >= est.ScopeUncertainty-1e-12 &&
			est.Uncertainty >= 0 && est.Uncertainty <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The paper's headline guarantee: with Clopper-Pearson at 0.999 the fraction
// of regions whose true rate exceeds the bound must be tiny. We simulate
// fresh data from the known generating process and check empirical coverage.
func TestQIMCoverage(t *testing.T) {
	qim := fitTestQIM(t)
	rng := rand.New(rand.NewPCG(23, 29))
	violations := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		x := []float64{rng.Float64(), rng.Float64()}
		trueRate := 0.02
		if x[0] > 0.5 {
			trueRate = 0.4
		}
		u, err := qim.Uncertainty(x)
		if err != nil {
			t.Fatal(err)
		}
		if u < trueRate-1e-9 {
			violations++
		}
	}
	// Boundary leaves may mix the two rates; allow a small share.
	if violations > trials/10 {
		t.Errorf("%d/%d coverage violations", violations, trials)
	}
	_ = stats.ClopperPearson // documents which bound underwrites the guarantee
}
