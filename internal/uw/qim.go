// Package uw implements the base (stateless) uncertainty wrapper framework
// of Kläs & Sembach / Kläs & Jöckel that the paper extends: a model-agnostic
// shell around a data-driven model that turns interpretable quality factors
// into dependable, situation-aware uncertainty estimates. The quality impact
// model is a CART decision tree whose leaves carry one-sided binomial upper
// bounds on the failure probability at a requested confidence level; the
// scope compliance model estimates the probability that the model is being
// used outside its target application scope; the wrapper combines both.
package uw

import (
	"errors"
	"fmt"

	"github.com/iese-repro/tauw/internal/dtree"
	"github.com/iese-repro/tauw/internal/stats"
)

// QIMConfig controls how a quality impact model is built and calibrated.
type QIMConfig struct {
	// TreeDepth is the maximum decision-tree depth (the paper uses 8).
	TreeDepth int
	// MinLeafCalibration is the minimum number of calibration samples per
	// leaf after pruning (the paper uses 200).
	MinLeafCalibration int
	// Confidence is the one-sided confidence level of the leaf bounds
	// (the paper uses 0.999).
	Confidence float64
	// Bound selects the binomial bound construction (default
	// Clopper-Pearson).
	Bound stats.BoundMethod
	// Criterion selects the split impurity (default gini).
	Criterion dtree.Criterion
}

// DefaultQIMConfig mirrors the paper's calibration protocol.
func DefaultQIMConfig() QIMConfig {
	return QIMConfig{
		TreeDepth:          8,
		MinLeafCalibration: 200,
		Confidence:         0.999,
		Bound:              stats.ClopperPearson,
		Criterion:          dtree.Gini,
	}
}

// Validate checks the configuration.
func (c QIMConfig) Validate() error {
	switch {
	case c.TreeDepth <= 0:
		return errors.New("uw: tree depth must be positive")
	case c.MinLeafCalibration <= 0:
		return errors.New("uw: min leaf calibration must be positive")
	case c.Confidence <= 0 || c.Confidence >= 1:
		return fmt.Errorf("uw: confidence %g outside (0,1)", c.Confidence)
	}
	return nil
}

// QualityImpactModel decomposes the target application scope into regions of
// similar uncertainty using the quality factors and guarantees a calibrated
// failure-probability bound per region.
type QualityImpactModel struct {
	tree *dtree.Tree
	// flat is the compiled (struct-of-arrays) form of tree, built once
	// after fit or load; all per-estimate lookups run on it. The pointer
	// tree stays canonical for rules, DOT, and serialisation.
	flat  *dtree.Compiled
	cfg   QIMConfig
	names []string
}

// FitQIM grows the decision tree on the training factors/labels (label true
// = the DDM outcome was wrong) and calibrates its leaves on the held-out
// calibration set, following the paper's two-phase protocol.
func FitQIM(trainX [][]float64, trainY []bool, calibX [][]float64, calibY []bool,
	featureNames []string, cfg QIMConfig) (*QualityImpactModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Bound == 0 {
		cfg.Bound = stats.ClopperPearson
	}
	tree, err := dtree.Fit(trainX, trainY, dtree.Config{
		MaxDepth:  cfg.TreeDepth,
		Criterion: cfg.Criterion,
	})
	if err != nil {
		return nil, fmt.Errorf("uw: growing quality impact model: %w", err)
	}
	bound := func(k, n int) (float64, error) {
		return stats.BinomialUpperBound(cfg.Bound, k, n, cfg.Confidence)
	}
	if err := tree.Calibrate(calibX, calibY, cfg.MinLeafCalibration, bound); err != nil {
		return nil, fmt.Errorf("uw: calibrating quality impact model: %w", err)
	}
	names := make([]string, len(featureNames))
	copy(names, featureNames)
	return &QualityImpactModel{tree: tree, flat: tree.Compile(), cfg: cfg, names: names}, nil
}

// Recalibrate returns a new model whose leaf bounds have been refreshed
// from the combined offline-prior and online-feedback counts (see
// dtree.Recalibrate), computed with the same bound construction and
// confidence level the model was calibrated with, and recompiled for
// inference. The receiver is untouched and keeps serving — the returned
// model is meant to be hot-swapped in (core.WrapperPool.SwapModel). The tree
// structure, feature layout, and leaf numbering are preserved, so estimate
// provenance (leaf ids) stays comparable across the swap.
func (q *QualityImpactModel) Recalibrate(evidence []dtree.LeafEvidence, cfg dtree.RecalibConfig) (*QualityImpactModel, []dtree.LeafDelta, error) {
	bound := func(k, n int) (float64, error) {
		return stats.BinomialUpperBound(q.cfg.Bound, k, n, q.cfg.Confidence)
	}
	tree, deltas, err := q.tree.Recalibrate(evidence, bound, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("uw: recalibrating quality impact model: %w", err)
	}
	names := make([]string, len(q.names))
	copy(names, q.names)
	return &QualityImpactModel{tree: tree, flat: tree.Compile(), cfg: q.cfg, names: names}, deltas, nil
}

// Uncertainty returns the dependable input-quality uncertainty for the given
// factor vector: with probability >= Confidence the true failure rate in
// this region does not exceed the returned value.
func (q *QualityImpactModel) Uncertainty(factors []float64) (float64, error) {
	return q.flat.PredictValue(factors)
}

// LeafID returns the decision-tree region the factors fall into, which makes
// estimates auditable.
func (q *QualityImpactModel) LeafID(factors []float64) (int, error) {
	return q.flat.Apply(factors)
}

// UncertaintyBatch scores many factor vectors in one call, routed through
// the compiled tree's block inference (dtree.Compiled.PredictBatch): rows
// descend the struct-of-arrays tree in cache-friendly blocks instead of one
// root-to-leaf chase per row. out is reused when its capacity suffices (use
// the returned slice). Results match an Uncertainty-per-row loop exactly.
func (q *QualityImpactModel) UncertaintyBatch(rows [][]float64, out []float64) ([]float64, error) {
	return q.flat.PredictBatch(rows, out)
}

// LeafIDBatch returns the region ids of many factor vectors in one call,
// with the same block inference as UncertaintyBatch.
func (q *QualityImpactModel) LeafIDBatch(rows [][]float64, out []int) ([]int, error) {
	return q.flat.ApplyBatch(rows, out)
}

// Predict returns both the dependable uncertainty and the region id in a
// single tree traversal — the hot-path combination Wrapper.Estimate needs.
func (q *QualityImpactModel) Predict(factors []float64) (uncertainty float64, leafID int, err error) {
	return q.flat.PredictLeaf(factors)
}

// MinUncertainty is the lowest uncertainty the model can ever guarantee
// (bounded away from zero by the calibration-set size).
func (q *QualityImpactModel) MinUncertainty() (float64, error) {
	return q.tree.MinLeafValue()
}

// NumRegions returns the number of calibrated leaves.
func (q *QualityImpactModel) NumRegions() int { return q.tree.NumLeaves() }

// NumFeatures returns the width of the factor vectors the model scores —
// the compatibility check a model hot-swap must pass.
func (q *QualityImpactModel) NumFeatures() int { return q.tree.NumFeatures() }

// Rules exports the model as a human-auditable rule list.
func (q *QualityImpactModel) Rules() string { return q.tree.Rules(q.names) }

// DOT exports the model in Graphviz format.
func (q *QualityImpactModel) DOT() string { return q.tree.DOT(q.names) }

// FeatureImportance maps factor names to normalised gini importance.
func (q *QualityImpactModel) FeatureImportance() map[string]float64 {
	imp := q.tree.FeatureImportance()
	out := make(map[string]float64, len(imp))
	for i, v := range imp {
		name := fmt.Sprintf("x[%d]", i)
		if i < len(q.names) && q.names[i] != "" {
			name = q.names[i]
		}
		out[name] = v
	}
	return out
}

// Config returns the configuration the model was built with.
func (q *QualityImpactModel) Config() QIMConfig { return q.cfg }
