package uw

import (
	"fmt"
	"sort"
	"strings"

	"github.com/iese-repro/tauw/internal/dtree"
)

// LeafInfo describes one calibrated region of a quality impact model: the
// guaranteed bound, the calibration evidence behind it, and the factor
// conditions that route an input there. This is the machine-readable form
// of the transparency property domain experts use to audit the model.
type LeafInfo struct {
	// LeafID is the region index (what Wrapper estimates report).
	LeafID int `json:"leaf_id"`
	// Uncertainty is the calibrated bound of the region.
	Uncertainty float64 `json:"uncertainty"`
	// CalibSamples and CalibFailures are the calibration evidence.
	CalibSamples  int `json:"calib_samples"`
	CalibFailures int `json:"calib_failures"`
	// Path lists the factor conditions from root to leaf, e.g.
	// "rain <= 0.31".
	Path []string `json:"path"`
}

// LeafReport returns every calibrated region sorted by increasing
// uncertainty.
func (q *QualityImpactModel) LeafReport() []LeafInfo {
	var out []LeafInfo
	var walk func(n *dtree.Node, path []string)
	walk = func(n *dtree.Node, path []string) {
		if n.IsLeaf() {
			info := LeafInfo{
				LeafID:        n.LeafID,
				Uncertainty:   n.Value,
				CalibSamples:  n.CalibCount,
				CalibFailures: n.CalibEvents,
				Path:          append([]string(nil), path...),
			}
			out = append(out, info)
			return
		}
		name := fmt.Sprintf("x[%d]", n.Feature)
		if n.Feature < len(q.names) && q.names[n.Feature] != "" {
			name = q.names[n.Feature]
		}
		// Copy the prefix per branch: plain append would share the
		// backing array between the two recursive calls.
		left := append(append([]string(nil), path...), fmt.Sprintf("%s <= %.6g", name, n.Threshold))
		right := append(append([]string(nil), path...), fmt.Sprintf("%s > %.6g", name, n.Threshold))
		walk(n.Left, left)
		walk(n.Right, right)
	}
	walk(q.tree.Root(), nil)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Uncertainty < out[b].Uncertainty })
	return out
}

// ReportString renders the leaf report as a table.
func (q *QualityImpactModel) ReportString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-12s %-14s %s\n", "leaf", "uncertainty", "calib (k/n)", "conditions")
	for _, info := range q.LeafReport() {
		fmt.Fprintf(&b, "%-6d %-12.6f %6d/%-7d %s\n",
			info.LeafID, info.Uncertainty, info.CalibFailures, info.CalibSamples,
			strings.Join(info.Path, " AND "))
	}
	return b.String()
}
