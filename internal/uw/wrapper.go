package uw

import (
	"errors"
	"fmt"
	"math"
)

// Estimate is the wrapper's verdict for one DDM outcome.
type Estimate struct {
	// Outcome echoes the wrapped DDM outcome the estimate refers to.
	Outcome int
	// QualityUncertainty is the input-quality-related uncertainty from
	// the quality impact model.
	QualityUncertainty float64
	// ScopeUncertainty is the scope-compliance-related uncertainty (0
	// when no scope model is configured).
	ScopeUncertainty float64
	// Uncertainty is the combined dependable uncertainty.
	Uncertainty float64
	// LeafID is the quality-impact-model region that produced the
	// estimate, for auditability.
	LeafID int
}

// Certainty returns 1 - Uncertainty.
func (e Estimate) Certainty() float64 { return 1 - e.Uncertainty }

// Wrapper is the stateless uncertainty wrapper: it enriches each DDM outcome
// with a dependable uncertainty estimate derived from the quality impact
// model and, optionally, a scope compliance model. It holds no timeseries
// state; the timeseries-aware extension lives in internal/core.
type Wrapper struct {
	qim   *QualityImpactModel
	scope *ScopeModel
}

// NewWrapper builds a wrapper from a calibrated quality impact model and an
// optional scope model (nil disables scope checking, as in the paper's
// study).
func NewWrapper(qim *QualityImpactModel, scope *ScopeModel) (*Wrapper, error) {
	if qim == nil {
		return nil, errors.New("uw: quality impact model is required")
	}
	return &Wrapper{qim: qim, scope: scope}, nil
}

// Estimate combines the uncertainty sources for one DDM outcome observed
// under the given quality factors (and scope factors, ignored when no scope
// model is configured): u = 1 - (1-u_quality)(1-u_scope).
//
// Non-finite quality factors are rejected: a NaN would silently fall
// through every tree comparison and land in an arbitrary region, producing
// a bound that means nothing — the opposite of dependable.
func (w *Wrapper) Estimate(outcome int, qualityFactors, scopeFactors []float64) (Estimate, error) {
	for i, f := range qualityFactors {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return Estimate{}, fmt.Errorf("uw: quality factor %d is not finite (%g)", i, f)
		}
	}
	uq, leaf, err := w.qim.Predict(qualityFactors)
	if err != nil {
		return Estimate{}, fmt.Errorf("uw: quality uncertainty: %w", err)
	}
	us := 0.0
	if w.scope != nil {
		us, err = w.scope.Uncertainty(scopeFactors)
		if err != nil {
			return Estimate{}, fmt.Errorf("uw: scope uncertainty: %w", err)
		}
	}
	u := 1 - (1-uq)*(1-us)
	// Keep single-source estimates bit-exact: 1-(1-x) loses precision.
	switch {
	case us == 0:
		u = uq
	case uq == 0:
		u = us
	}
	if u < 0 {
		u = 0
	}
	if u > 1 || math.IsNaN(u) {
		return Estimate{}, fmt.Errorf("uw: combined uncertainty %g invalid", u)
	}
	return Estimate{
		Outcome:            outcome,
		QualityUncertainty: uq,
		ScopeUncertainty:   us,
		Uncertainty:        u,
		LeafID:             leaf,
	}, nil
}

// QIM exposes the underlying quality impact model for inspection.
func (w *Wrapper) QIM() *QualityImpactModel { return w.qim }

// Scope exposes the scope model (nil when disabled).
func (w *Wrapper) Scope() *ScopeModel { return w.scope }
