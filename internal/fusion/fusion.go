// Package fusion implements the information-fusion and uncertainty-fusion
// rules of the study. Information fusion combines the DDM outcomes observed
// so far in a timeseries into one improved decision (the paper uses majority
// voting with a most-recent tie-break); uncertainty fusion combines the
// per-step uncertainty estimates into a joint uncertainty for the fused
// outcome (the paper's baselines: naïve product, opportune minimum, and
// worst-case maximum).
package fusion

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoOutcomes is returned when a fuser is invoked on an empty history.
var ErrNoOutcomes = errors.New("fusion: no outcomes to fuse")

// OutcomeFuser fuses the DDM outcomes o_0..o_i of the current timeseries
// (optionally consulting the per-step uncertainties u_0..u_i) into a single
// fused outcome.
type OutcomeFuser interface {
	// Name identifies the rule in reports.
	Name() string
	// Fuse returns the fused outcome. uncertainties may be nil when the
	// rule ignores them; when present it must match outcomes in length.
	Fuse(outcomes []int, uncertainties []float64) (int, error)
}

// TieBreak selects how MajorityVote resolves ties.
type TieBreak int

const (
	// MostRecent picks the most recently predicted class among the tied
	// ones — the paper's rule.
	MostRecent TieBreak = iota + 1
	// LowestUncertainty picks the tied class whose best (lowest
	// uncertainty) vote is strongest; used as an ablation.
	LowestUncertainty
)

// String returns the tie-break name.
func (t TieBreak) String() string {
	switch t {
	case MostRecent:
		return "most-recent"
	case LowestUncertainty:
		return "lowest-uncertainty"
	default:
		return fmt.Sprintf("TieBreak(%d)", int(t))
	}
}

// MajorityVote fuses outcomes by plain vote counting.
type MajorityVote struct {
	// TieBreak selects the tie rule; zero value behaves as MostRecent.
	TieBreak TieBreak
}

// Name implements OutcomeFuser.
func (m MajorityVote) Name() string {
	if m.TieBreak == LowestUncertainty {
		return "majority-vote/lowest-uncertainty-tie"
	}
	return "majority-vote"
}

// Fuse implements OutcomeFuser.
func (m MajorityVote) Fuse(outcomes []int, uncertainties []float64) (int, error) {
	if len(outcomes) == 0 {
		return 0, ErrNoOutcomes
	}
	if uncertainties != nil && len(uncertainties) != len(outcomes) {
		return 0, fmt.Errorf("fusion: %d outcomes but %d uncertainties", len(outcomes), len(uncertainties))
	}
	counts := make(map[int]int, 4)
	maxCount := 0
	for _, o := range outcomes {
		counts[o]++
		if counts[o] > maxCount {
			maxCount = counts[o]
		}
	}
	tied := make(map[int]bool, 2)
	for o, c := range counts {
		if c == maxCount {
			tied[o] = true
		}
	}
	if len(tied) == 1 {
		for o := range tied {
			return o, nil
		}
	}
	if m.TieBreak == LowestUncertainty && uncertainties != nil {
		best := -1
		bestU := math.Inf(1)
		for i, o := range outcomes {
			if tied[o] && uncertainties[i] < bestU {
				bestU = uncertainties[i]
				best = o
			}
		}
		return best, nil
	}
	// Most recent momentaneous prediction among the tied classes.
	for i := len(outcomes) - 1; i >= 0; i-- {
		if tied[outcomes[i]] {
			return outcomes[i], nil
		}
	}
	return 0, ErrNoOutcomes // unreachable: tied is non-empty
}

// CertaintyWeighted fuses outcomes by summing the certainty 1-u of each vote
// per class; it is an extension beyond the paper used in ablations.
type CertaintyWeighted struct{}

// Name implements OutcomeFuser.
func (CertaintyWeighted) Name() string { return "certainty-weighted-vote" }

// Fuse implements OutcomeFuser.
func (CertaintyWeighted) Fuse(outcomes []int, uncertainties []float64) (int, error) {
	if len(outcomes) == 0 {
		return 0, ErrNoOutcomes
	}
	if len(uncertainties) != len(outcomes) {
		return 0, fmt.Errorf("fusion: %d outcomes but %d uncertainties", len(outcomes), len(uncertainties))
	}
	weights := make(map[int]float64, 4)
	for i, o := range outcomes {
		u := uncertainties[i]
		if u < 0 || u > 1 || math.IsNaN(u) {
			return 0, fmt.Errorf("fusion: uncertainty %g outside [0,1]", u)
		}
		weights[o] += 1 - u
	}
	best, bestW := outcomes[len(outcomes)-1], math.Inf(-1)
	// Deterministic scan: last occurrence wins ties, matching the
	// most-recent rule.
	for i := len(outcomes) - 1; i >= 0; i-- {
		o := outcomes[i]
		if weights[o] > bestW {
			bestW = weights[o]
			best = o
		}
	}
	return best, nil
}

// Latest is the no-fusion baseline: the isolated momentaneous prediction.
type Latest struct{}

// Name implements OutcomeFuser.
func (Latest) Name() string { return "latest" }

// Fuse implements OutcomeFuser.
func (Latest) Fuse(outcomes []int, _ []float64) (int, error) {
	if len(outcomes) == 0 {
		return 0, ErrNoOutcomes
	}
	return outcomes[len(outcomes)-1], nil
}
