package fusion

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDempsterShaferSingleStep(t *testing.T) {
	ds := DempsterShafer{}
	o, u, err := ds.Combine([]int{5}, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if o != 5 {
		t.Errorf("outcome = %d, want 5", o)
	}
	// Single simple support: belief = 1-u = 0.7, combined u = 0.3.
	if !almost(u, 0.3) {
		t.Errorf("u = %g, want 0.3", u)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDempsterShaferAgreementReinforces(t *testing.T) {
	ds := DempsterShafer{}
	// Two agreeing pieces of evidence: belief = 1-(1-s1)(1-s2)
	// = 1 - u1*u2 = 1 - 0.12; combined u = 0.12.
	o, u, err := ds.Combine([]int{2, 2}, []float64{0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if o != 2 {
		t.Errorf("outcome = %d", o)
	}
	if !almost(u, 0.12) {
		t.Errorf("u = %g, want 0.12", u)
	}
	// More agreement -> lower uncertainty, monotone in the count.
	prev := 1.0
	for n := 1; n <= 6; n++ {
		outcomes := make([]int, n)
		us := make([]float64, n)
		for i := range outcomes {
			outcomes[i] = 1
			us[i] = 0.4
		}
		_, u, err := ds.Combine(outcomes, us)
		if err != nil {
			t.Fatal(err)
		}
		if u >= prev {
			t.Errorf("n=%d: u=%g did not shrink from %g", n, u, prev)
		}
		prev = u
	}
}

func TestDempsterShaferConflict(t *testing.T) {
	ds := DempsterShafer{}
	// Two conflicting pieces, the first stronger: class 1 wins.
	o, u, err := ds.Combine([]int{1, 2}, []float64{0.1, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if o != 1 {
		t.Errorf("outcome = %d, want 1 (stronger evidence)", o)
	}
	// Hand-computed: m̂({1}) = u2*(1-u1) = 0.4*0.9 = 0.36,
	// m̂({2}) = u1*(1-u2) = 0.1*0.6 = 0.06, m̂(Θ) = 0.04,
	// denominator = 0.46, Bel(1) = 0.36/0.46.
	want := 1 - 0.36/0.46
	if !almost(u, want) {
		t.Errorf("u = %g, want %g", u, want)
	}
	// Equal-strength conflict: tie resolves to the most recent.
	o, _, err = ds.Combine([]int{1, 2}, []float64{0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if o != 2 {
		t.Errorf("tie outcome = %d, want 2 (most recent)", o)
	}
}

func TestDempsterShaferCertainEvidence(t *testing.T) {
	ds := DempsterShafer{}
	// One certain piece of evidence dominates everything compatible.
	o, u, err := ds.Combine([]int{3, 3, 1}, []float64{0, 0.5, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if o != 3 {
		t.Errorf("outcome = %d, want 3", o)
	}
	if u < 0 || u > 1 {
		t.Errorf("u = %g outside [0,1]", u)
	}
	// Totally conflicting certain evidence is undefined.
	if _, _, err := ds.Combine([]int{1, 2}, []float64{0, 0}); err == nil {
		t.Error("total conflict must fail")
	}
}

func TestDempsterShaferErrors(t *testing.T) {
	ds := DempsterShafer{}
	if _, _, err := ds.Combine(nil, nil); err == nil {
		t.Error("empty must fail")
	}
	if _, _, err := ds.Combine([]int{1}, []float64{0.1, 0.2}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, _, err := ds.Combine([]int{1}, []float64{1.2}); err == nil {
		t.Error("invalid uncertainty must fail")
	}
	if _, err := ds.Fuse([]int{1, 1}, []float64{0.2, 0.3}); err != nil {
		t.Errorf("Fuse adapter: %v", err)
	}
	if ds.Name() != "dempster-shafer" {
		t.Error("name wrong")
	}
}

// Property: DS is permutation-invariant in its masses — shuffling the
// evidence changes neither the winning class (up to exact mass ties) nor
// its combined uncertainty.
func TestDempsterShaferPermutationInvariant(t *testing.T) {
	ds := DempsterShafer{}
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%8) + 1
		rng := rand.New(rand.NewPCG(seed, 0xd5))
		outcomes := make([]int, n)
		us := make([]float64, n)
		for i := range outcomes {
			outcomes[i] = rng.IntN(3)
			us[i] = 0.05 + 0.9*rng.Float64()
		}
		o1, u1, err := ds.Combine(outcomes, us)
		if err != nil {
			return false
		}
		perm := rng.Perm(n)
		po := make([]int, n)
		pu := make([]float64, n)
		for i, p := range perm {
			po[i] = outcomes[p]
			pu[i] = us[p]
		}
		o2, u2, err := ds.Combine(po, pu)
		if err != nil {
			return false
		}
		// Beliefs are permutation invariant; when two classes tie
		// exactly the most-recent rule may pick differently, so only
		// compare uncertainties strictly and outcomes when unique.
		if math.Abs(u1-u2) > 1e-9 {
			return false
		}
		return o1 == o2 || almost(u1, u2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRecencyWeighted(t *testing.T) {
	// Strong decay: the most recent outcome dominates an older majority.
	r := RecencyWeighted{Lambda: 0.1}
	got, err := r.Fuse([]int{1, 1, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("strong decay = %d, want 2", got)
	}
	// Lambda 1 equals plain majority voting on a clear majority.
	r = RecencyWeighted{Lambda: 1}
	got, err = r.Fuse([]int{1, 1, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("lambda=1 = %d, want 1", got)
	}
	if _, err := (RecencyWeighted{Lambda: 0}).Fuse([]int{1}, nil); err == nil {
		t.Error("lambda 0 must fail")
	}
	if _, err := (RecencyWeighted{Lambda: 1.5}).Fuse([]int{1}, nil); err == nil {
		t.Error("lambda > 1 must fail")
	}
	if _, err := (RecencyWeighted{Lambda: 0.5}).Fuse(nil, nil); err == nil {
		t.Error("empty must fail")
	}
	if (RecencyWeighted{Lambda: 0.5}).Name() == "" {
		t.Error("name empty")
	}
}

// Property: lambda=1 recency voting agrees with MajorityVote whenever the
// majority is strict.
func TestRecencyMatchesMajority(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%12) + 1
		rng := rand.New(rand.NewPCG(seed, 0xaa))
		outcomes := make([]int, n)
		counts := make(map[int]int)
		for i := range outcomes {
			outcomes[i] = rng.IntN(3)
			counts[outcomes[i]]++
		}
		maxC, ties := 0, 0
		for _, c := range counts {
			if c > maxC {
				maxC, ties = c, 1
			} else if c == maxC {
				ties++
			}
		}
		if ties > 1 {
			return true // tie behaviour may differ; skip
		}
		mv, err1 := MajorityVote{}.Fuse(outcomes, nil)
		rw, err2 := (RecencyWeighted{Lambda: 1}).Fuse(outcomes, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return mv == rw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
