package fusion

// Tally is the running state of an incremental information-fusion rule: the
// caller pushes one (outcome, uncertainty) pair per timestep, evicts the
// oldest pair when its timeseries buffer drops it (ring eviction), and reads
// the current fused outcome in O(distinct outcomes) — independent of the
// series length. A Tally is not safe for concurrent use; each wrapper owns
// its own.
type Tally interface {
	// Push records one new timestep.
	Push(outcome int, uncertainty float64)
	// Evict removes the oldest recorded timestep. The caller must pass the
	// pair exactly as it was pushed and must evict in push order; evicting
	// more than was pushed is ignored.
	Evict(outcome int, uncertainty float64)
	// Reset clears the tally at the onset of a new timeseries.
	Reset()
	// Fused returns the fused outcome of the pushed-minus-evicted window,
	// or ErrNoOutcomes when the window is empty.
	Fused() (int, error)
}

// Incremental is implemented by OutcomeFusers that can maintain their fusion
// decision incrementally. NewTally returns a fresh empty tally, or nil when
// the fuser's configuration has no incremental form (the caller must then
// fall back to Fuse over the full history).
type Incremental interface {
	NewTally() Tally
}

// NewTally implements Incremental for the paper's majority vote. Only the
// MostRecent tie-break has an incremental form: the lowest-uncertainty
// tie-break needs the per-class minimum uncertainty, which cannot be
// maintained in O(1) under eviction.
func (m MajorityVote) NewTally() Tally {
	if m.TieBreak == LowestUncertainty {
		return nil
	}
	return &majorityTally{votes: make(map[int]voteStat, 8)}
}

// majorityTally maintains per-outcome vote counts plus the logical time of
// each outcome's most recent occurrence. The fused outcome is the count
// argmax; ties go to the larger last-seen time, which is exactly the paper's
// most-recent tie-break. Eviction always removes the oldest pushed pair, so
// an outcome's last-seen time only dies when its count reaches zero.
type majorityTally struct {
	votes map[int]voteStat
	clock uint64
}

// voteStat is one outcome class' running vote state.
type voteStat struct {
	count int
	last  uint64
}

func (t *majorityTally) Push(outcome int, _ float64) {
	t.clock++
	s := t.votes[outcome]
	s.count++
	s.last = t.clock
	t.votes[outcome] = s
}

func (t *majorityTally) Evict(outcome int, _ float64) {
	s, ok := t.votes[outcome]
	if !ok {
		return
	}
	if s.count <= 1 {
		delete(t.votes, outcome)
		return
	}
	s.count--
	t.votes[outcome] = s
}

func (t *majorityTally) Reset() {
	clear(t.votes)
	t.clock = 0
}

func (t *majorityTally) Fused() (int, error) {
	if len(t.votes) == 0 {
		return 0, ErrNoOutcomes
	}
	best := 0
	var bestStat voteStat
	for o, s := range t.votes {
		if s.count > bestStat.count || (s.count == bestStat.count && s.last > bestStat.last) {
			best, bestStat = o, s
		}
	}
	return best, nil
}

// NewTally implements Incremental for the no-fusion baseline: the fused
// outcome is simply the most recently pushed one, which eviction (always of
// the oldest pair) can never remove while the window is non-empty.
func (Latest) NewTally() Tally { return &latestTally{} }

type latestTally struct {
	outcome int
	n       int
}

func (t *latestTally) Push(outcome int, _ float64) {
	t.outcome = outcome
	t.n++
}

func (t *latestTally) Evict(int, float64) {
	if t.n > 0 {
		t.n--
	}
}

func (t *latestTally) Reset() { t.outcome, t.n = 0, 0 }

func (t *latestTally) Fused() (int, error) {
	if t.n == 0 {
		return 0, ErrNoOutcomes
	}
	return t.outcome, nil
}
