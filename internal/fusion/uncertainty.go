package fusion

import (
	"fmt"
	"math"
)

// UncertaintyFuser combines the per-step uncertainty estimates u_0..u_i of a
// timeseries into one joint uncertainty for the fused outcome.
type UncertaintyFuser interface {
	// Name identifies the rule in reports.
	Name() string
	// Fuse returns the joint uncertainty.
	Fuse(uncertainties []float64) (float64, error)
}

// Naive multiplies the uncertainties (paper eq. 1). It is only valid under
// independence of the per-step failures — an assumption the study shows to
// be badly violated on timeseries data, which makes this rule overconfident.
type Naive struct{}

// Name implements UncertaintyFuser.
func (Naive) Name() string { return "naive" }

// Fuse implements UncertaintyFuser.
func (Naive) Fuse(us []float64) (float64, error) {
	if err := checkUncertainties(us); err != nil {
		return math.NaN(), err
	}
	p := 1.0
	for _, u := range us {
		p *= u
	}
	return p, nil
}

// Opportune takes the minimum uncertainty (paper eq. 2). Valid only when the
// estimates are never overconfident; selecting minima amplifies whatever
// overconfidence exists.
type Opportune struct{}

// Name implements UncertaintyFuser.
func (Opportune) Name() string { return "opportune" }

// Fuse implements UncertaintyFuser.
func (Opportune) Fuse(us []float64) (float64, error) {
	if err := checkUncertainties(us); err != nil {
		return math.NaN(), err
	}
	minU := us[0]
	for _, u := range us[1:] {
		minU = math.Min(minU, u)
	}
	return minU, nil
}

// WorstCase takes the maximum uncertainty (paper eq. 3). Dependable but
// overly conservative: it negates most of the benefit of information fusion.
type WorstCase struct{}

// Name implements UncertaintyFuser.
func (WorstCase) Name() string { return "worst-case" }

// Fuse implements UncertaintyFuser.
func (WorstCase) Fuse(us []float64) (float64, error) {
	if err := checkUncertainties(us); err != nil {
		return math.NaN(), err
	}
	maxU := us[0]
	for _, u := range us[1:] {
		maxU = math.Max(maxU, u)
	}
	return maxU, nil
}

// Current passes the most recent per-step estimate through unchanged: the
// study's "IF + no UF" condition, i.e. information fusion for the outcome
// but a timeseries-unaware uncertainty.
type Current struct{}

// Name implements UncertaintyFuser.
func (Current) Name() string { return "current" }

// Fuse implements UncertaintyFuser.
func (Current) Fuse(us []float64) (float64, error) {
	if err := checkUncertainties(us); err != nil {
		return math.NaN(), err
	}
	return us[len(us)-1], nil
}

func checkUncertainties(us []float64) error {
	if len(us) == 0 {
		return ErrNoOutcomes
	}
	for i, u := range us {
		if u < 0 || u > 1 || math.IsNaN(u) {
			return fmt.Errorf("fusion: uncertainty[%d] = %g outside [0,1]", i, u)
		}
	}
	return nil
}
