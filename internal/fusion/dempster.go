package fusion

import (
	"errors"
	"fmt"
	"math"
)

// DempsterShafer combines the per-step outcomes using Dempster's rule of
// combination, the classifier-fusion approach of Rogova that the paper cites
// as related work. Each timestep j contributes a simple support function:
// mass 1-u_j on the singleton {o_j} and the remainder u_j on the full frame
// of discernment Θ. Because all focal elements are singletons or Θ, the
// combination has a closed form:
//
//	m̂({c}) = Π_{j:o_j≠c}(1-s_j) · (1 - Π_{j:o_j=c}(1-s_j))   with s_j = 1-u_j
//	m̂(Θ)   = Π_j (1-s_j)
//
// normalised by the non-conflicting mass. The fused outcome is the class
// with maximal combined belief; its uncertainty is 1 minus that belief.
type DempsterShafer struct{}

// Name implements OutcomeFuser.
func (DempsterShafer) Name() string { return "dempster-shafer" }

// ErrTotalConflict is returned when the evidence is fully contradictory
// (two different outcomes asserted with certainty 1): Dempster's rule is
// undefined there.
var ErrTotalConflict = errors.New("fusion: total conflict, Dempster's rule undefined")

// Combine returns the fused outcome and its combined uncertainty
// (1 - belief of the winning class).
func (DempsterShafer) Combine(outcomes []int, uncertainties []float64) (int, float64, error) {
	if len(outcomes) == 0 {
		return 0, math.NaN(), ErrNoOutcomes
	}
	if len(uncertainties) != len(outcomes) {
		return 0, math.NaN(), fmt.Errorf("fusion: %d outcomes but %d uncertainties",
			len(outcomes), len(uncertainties))
	}
	if err := checkUncertainties(uncertainties); err != nil {
		return 0, math.NaN(), err
	}
	// doubt[c] = product of (1-s_j) over supporters of c; total = product
	// over all steps.
	doubt := make(map[int]float64, 4)
	total := 1.0
	for j, o := range outcomes {
		d := uncertainties[j] // 1 - s_j
		if cur, ok := doubt[o]; ok {
			doubt[o] = cur * d
		} else {
			doubt[o] = d
		}
		total *= d
	}
	// Unnormalised singleton masses and the mass on Θ.
	masses := make(map[int]float64, len(doubt))
	var massSum float64
	for c, dc := range doubt {
		// Π_{j:o_j≠c}(1-s_j) = total/dc, guarded for dc == 0 below.
		others := 0.0
		if dc > 0 {
			others = total / dc
		} else {
			// Some supporter of c was certain: recompute directly.
			others = 1.0
			for j, o := range outcomes {
				if o != c {
					others *= uncertainties[j]
				}
			}
		}
		m := others * (1 - dc)
		masses[c] = m
		massSum += m
	}
	denominator := massSum + total // 1 - conflict
	if denominator <= 0 {
		return 0, math.NaN(), ErrTotalConflict
	}
	best := outcomes[len(outcomes)-1]
	bestBel := math.Inf(-1)
	// Scan in reverse time order so ties resolve to the most recent
	// outcome, matching the majority-vote convention.
	for j := len(outcomes) - 1; j >= 0; j-- {
		c := outcomes[j]
		bel := masses[c] / denominator
		if bel > bestBel {
			bestBel = bel
			best = c
		}
	}
	return best, 1 - bestBel, nil
}

// Fuse implements OutcomeFuser by discarding the combined uncertainty.
func (ds DempsterShafer) Fuse(outcomes []int, uncertainties []float64) (int, error) {
	o, _, err := ds.Combine(outcomes, uncertainties)
	return o, err
}

// RecencyWeighted fuses outcomes by votes that decay exponentially with
// age: the most recent vote has weight 1, the one before Lambda, then
// Lambda², and so on. Lambda = 1 recovers plain majority voting with
// most-recent tie-break; small Lambda approaches the isolated prediction.
type RecencyWeighted struct {
	// Lambda is the per-step decay factor in (0, 1].
	Lambda float64
}

// Name implements OutcomeFuser.
func (r RecencyWeighted) Name() string {
	return fmt.Sprintf("recency-weighted(%.2g)", r.Lambda)
}

// Fuse implements OutcomeFuser.
func (r RecencyWeighted) Fuse(outcomes []int, _ []float64) (int, error) {
	if len(outcomes) == 0 {
		return 0, ErrNoOutcomes
	}
	if r.Lambda <= 0 || r.Lambda > 1 || math.IsNaN(r.Lambda) {
		return 0, fmt.Errorf("fusion: recency decay %g outside (0,1]", r.Lambda)
	}
	weights := make(map[int]float64, 4)
	w := 1.0
	for j := len(outcomes) - 1; j >= 0; j-- {
		weights[outcomes[j]] += w
		w *= r.Lambda
	}
	best := outcomes[len(outcomes)-1]
	bestW := math.Inf(-1)
	for j := len(outcomes) - 1; j >= 0; j-- {
		c := outcomes[j]
		if weights[c] > bestW {
			bestW = weights[c]
			best = c
		}
	}
	return best, nil
}
