package fusion

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// TestMajorityTallyDifferential drives the incremental majority tally
// through long random push/evict/reset sequences with a deliberately tiny
// outcome alphabet (heavy vote ties, so the `last`-clock tie-break and the
// delete-on-zero path are exercised constantly) and checks, after every
// operation, that the tally's fused outcome equals the MajorityVote.Fuse
// oracle applied to the surviving window.
func TestMajorityTallyDifferential(t *testing.T) {
	oracle := MajorityVote{TieBreak: MostRecent}
	for seed := uint64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xfeed))
		tally := oracle.NewTally()
		if tally == nil {
			t.Fatal("majority vote with MostRecent must have an incremental form")
		}
		// The FIFO window the tally mirrors: outcomes and uncertainties in
		// push order.
		var winO []int
		var winU []float64
		check := func(op string, step int) {
			t.Helper()
			got, gotErr := tally.Fused()
			want, wantErr := oracle.Fuse(winO, winU)
			switch {
			case wantErr != nil:
				if !errors.Is(gotErr, ErrNoOutcomes) {
					t.Fatalf("seed %d step %d (%s): empty window, tally err = %v, want ErrNoOutcomes",
						seed, step, op, gotErr)
				}
			case gotErr != nil:
				t.Fatalf("seed %d step %d (%s): tally err %v, oracle fused %d", seed, step, op, gotErr, want)
			case got != want:
				t.Fatalf("seed %d step %d (%s): tally fused %d, oracle %d (window %v)",
					seed, step, op, got, want, winO)
			}
		}
		for step := 0; step < 4000; step++ {
			switch r := rng.Float64(); {
			case r < 0.55 || len(winO) == 0:
				// Tiny alphabet: three classes tie constantly.
				o := rng.IntN(3)
				u := rng.Float64()
				tally.Push(o, u)
				winO = append(winO, o)
				winU = append(winU, u)
				check("push", step)
			case r < 0.9:
				tally.Evict(winO[0], winU[0])
				winO = winO[1:]
				winU = winU[1:]
				check("evict", step)
			case r < 0.95:
				tally.Reset()
				winO = winO[:0]
				winU = winU[:0]
				check("reset", step)
			default:
				// Over-evicting an empty-or-not window must be ignored for
				// outcomes that are not present.
				tally.Evict(999, 0)
				check("evict-absent", step)
			}
		}
	}
}

// TestLatestTallyDifferential runs the same adversarial sequence against the
// no-fusion baseline's tally.
func TestLatestTallyDifferential(t *testing.T) {
	oracle := Latest{}
	rng := rand.New(rand.NewPCG(99, 0xbeef))
	tally := oracle.NewTally()
	var winO []int
	var winU []float64
	for step := 0; step < 2000; step++ {
		if rng.Float64() < 0.6 || len(winO) == 0 {
			o := rng.IntN(4)
			tally.Push(o, 0.5)
			winO = append(winO, o)
			winU = append(winU, 0.5)
		} else {
			tally.Evict(winO[0], winU[0])
			winO = winO[1:]
			winU = winU[1:]
		}
		got, gotErr := tally.Fused()
		want, wantErr := oracle.Fuse(winO, winU)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("step %d: error divergence %v vs %v", step, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("step %d: latest tally %d, oracle %d", step, got, want)
		}
	}
}

// TestMajorityTallyTieBreakExact pins the tie semantics the differential
// test sweeps statistically: on a count tie the most recently seen class
// wins, and eviction keeps a class's last-seen clock alive while any vote
// remains.
func TestMajorityTallyTieBreakExact(t *testing.T) {
	tally := MajorityVote{}.NewTally()
	tally.Push(1, 0.2)
	tally.Push(2, 0.2) // 1 and 2 tie at one vote; 2 is most recent
	if got, _ := tally.Fused(); got != 2 {
		t.Fatalf("tie after pushes fused %d, want 2", got)
	}
	tally.Push(1, 0.2) // 1 leads 2-1
	if got, _ := tally.Fused(); got != 1 {
		t.Fatalf("majority fused %d, want 1", got)
	}
	tally.Evict(1, 0.2) // back to a 1-1 tie; 1's last-seen is newer than 2's
	if got, _ := tally.Fused(); got != 1 {
		t.Fatalf("tie after evict fused %d, want 1 (newer last-seen)", got)
	}
}
