// state.go is the snapshot/restore surface of the incremental fusion
// tallies: a Tally owns the only fusion state that cannot be recomputed
// cheaply at restore time (per-outcome vote counts and last-seen clocks
// accumulated since the series began, including pushes a ring buffer has
// since evicted), so durable checkpointing exports it as a flat, portable
// value and re-imports it bit-identically. The exported form is
// deliberately storage-agnostic — plain ints and floats — so the binary
// encoding lives with the store codec, not here.
package fusion

import "fmt"

// TallyVote is one outcome class' exported vote state.
type TallyVote struct {
	// Outcome is the outcome class.
	Outcome int
	// Count is the pushed-minus-evicted vote count of the class.
	Count int
	// Last is the logical time of the class' most recent push (majority
	// tallies; 0 for tallies without a clock).
	Last uint64
}

// TallyState is the portable state of an incremental tally. Votes are
// sorted by outcome so two exports of the same tally are identical
// regardless of map iteration order.
type TallyState struct {
	// Clock is the tally's logical time (pushes since reset).
	Clock uint64
	// Votes holds the per-outcome vote state.
	Votes []TallyVote
}

// StatefulTally is implemented by tallies whose state can be exported and
// restored exactly. Both built-in incremental fusers (majority vote with
// the most-recent tie-break, and the no-fusion Latest baseline) implement
// it; a custom Tally that does not is restored approximately by replaying
// the buffered window instead.
type StatefulTally interface {
	Tally
	// ExportState appends the tally's state into st (reusing st.Votes'
	// capacity) so a steady-state checkpoint loop allocates nothing.
	ExportState(st *TallyState)
	// RestoreState replaces the tally's state with st, as exported by
	// ExportState on a tally of the same kind.
	RestoreState(st *TallyState) error
}

// ExportState implements StatefulTally: one vote entry per outcome class,
// sorted by outcome, plus the logical clock.
func (t *majorityTally) ExportState(st *TallyState) {
	st.Clock = t.clock
	st.Votes = st.Votes[:0]
	for o, s := range t.votes {
		st.Votes = append(st.Votes, TallyVote{Outcome: o, Count: s.count, Last: s.last})
	}
	sortVotes(st.Votes)
}

// RestoreState implements StatefulTally.
func (t *majorityTally) RestoreState(st *TallyState) error {
	clear(t.votes)
	for _, v := range st.Votes {
		if v.Count <= 0 {
			return fmt.Errorf("fusion: vote count %d for outcome %d must be positive", v.Count, v.Outcome)
		}
		if _, dup := t.votes[v.Outcome]; dup {
			return fmt.Errorf("fusion: duplicate vote entry for outcome %d", v.Outcome)
		}
		t.votes[v.Outcome] = voteStat{count: v.Count, last: v.Last}
	}
	t.clock = st.Clock
	return nil
}

// ExportState implements StatefulTally: the latest outcome is a single
// vote entry carrying the window length as its count.
func (t *latestTally) ExportState(st *TallyState) {
	st.Clock = 0
	st.Votes = st.Votes[:0]
	if t.n > 0 {
		st.Votes = append(st.Votes, TallyVote{Outcome: t.outcome, Count: t.n})
	}
}

// RestoreState implements StatefulTally.
func (t *latestTally) RestoreState(st *TallyState) error {
	if len(st.Votes) > 1 {
		return fmt.Errorf("fusion: latest tally state has %d vote entries, want at most 1", len(st.Votes))
	}
	t.outcome, t.n = 0, 0
	if len(st.Votes) == 1 {
		v := st.Votes[0]
		if v.Count < 0 {
			return fmt.Errorf("fusion: window length %d must be >= 0", v.Count)
		}
		t.outcome, t.n = v.Outcome, v.Count
	}
	return nil
}

// sortVotes orders entries by outcome (insertion sort: the vote map holds
// the distinct outcomes of one window, a handful of classes in practice,
// and avoiding sort.Slice keeps the export allocation-free).
func sortVotes(votes []TallyVote) {
	for i := 1; i < len(votes); i++ {
		v := votes[i]
		j := i - 1
		for j >= 0 && votes[j].Outcome > v.Outcome {
			votes[j+1] = votes[j]
			j--
		}
		votes[j+1] = v
	}
}
