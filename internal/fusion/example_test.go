package fusion_test

import (
	"fmt"

	"github.com/iese-repro/tauw/internal/fusion"
)

// ExampleMajorityVote shows the paper's information-fusion rule, including
// the most-recent tie-break.
func ExampleMajorityVote() {
	mv := fusion.MajorityVote{}
	fused, _ := mv.Fuse([]int{3, 7, 3, 7, 7}, nil)
	fmt.Println("majority:", fused)
	tie, _ := mv.Fuse([]int{3, 7}, nil)
	fmt.Println("tie goes to the most recent:", tie)
	// Output:
	// majority: 7
	// tie goes to the most recent: 7
}

// ExampleNaive contrasts the three uncertainty-fusion baselines on the same
// series of per-step uncertainties.
func ExampleNaive() {
	us := []float64{0.4, 0.2, 0.1}
	naive, _ := fusion.Naive{}.Fuse(us)
	opportune, _ := fusion.Opportune{}.Fuse(us)
	worst, _ := fusion.WorstCase{}.Fuse(us)
	fmt.Printf("naive (product):   %.3f\n", naive)
	fmt.Printf("opportune (min):   %.3f\n", opportune)
	fmt.Printf("worst-case (max):  %.3f\n", worst)
	// Output:
	// naive (product):   0.008
	// opportune (min):   0.100
	// worst-case (max):  0.400
}

// ExampleDempsterShafer combines conflicting evidence with Dempster's rule.
func ExampleDempsterShafer() {
	ds := fusion.DempsterShafer{}
	outcome, u, _ := ds.Combine([]int{1, 1, 2}, []float64{0.3, 0.3, 0.5})
	// m({1}) = 0.5*(1-0.09) = 0.455, m({2}) = 0.09*0.5 = 0.045,
	// m(Θ) = 0.045; Bel(1) = 0.455/0.545 ≈ 0.835.
	fmt.Printf("outcome %d with combined uncertainty %.3f\n", outcome, u)
	// Output:
	// outcome 1 with combined uncertainty 0.165
}
