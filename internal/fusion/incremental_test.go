package fusion

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// TestMajorityTallyMatchesFuse is the differential check without eviction:
// after every push, the tally's fused outcome must equal MajorityVote.Fuse
// over the full prefix — including every tie resolved by recency.
func TestMajorityTallyMatchesFuse(t *testing.T) {
	mv := MajorityVote{}
	for seed := uint64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, 2))
		tally := mv.NewTally()
		if tally == nil {
			t.Fatal("MostRecent majority vote must have an incremental form")
		}
		var outcomes []int
		var us []float64
		for step := 0; step < 120; step++ {
			o := rng.IntN(4)
			u := rng.Float64()
			outcomes = append(outcomes, o)
			us = append(us, u)
			tally.Push(o, u)
			want, err := mv.Fuse(outcomes, us)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tally.Fused()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d step %d: tally fused %d, Fuse %d (history %v)",
					seed, step, got, want, outcomes)
			}
		}
	}
}

// TestMajorityTallyUnderEviction simulates the ring-buffer protocol: pushes
// beyond the window evict the oldest pair first. The tally must track
// MajorityVote.Fuse over the visible window for every window size, including
// windows that repeatedly shrink a class to zero and revive it.
func TestMajorityTallyUnderEviction(t *testing.T) {
	mv := MajorityVote{TieBreak: MostRecent}
	for _, window := range []int{1, 2, 3, 7, 16} {
		for seed := uint64(1); seed <= 10; seed++ {
			rng := rand.New(rand.NewPCG(seed, uint64(window)))
			tally := mv.NewTally()
			var outcomes []int
			var us []float64
			for step := 0; step < 200; step++ {
				o := rng.IntN(3)
				u := rng.Float64()
				outcomes = append(outcomes, o)
				us = append(us, u)
				if len(outcomes) > window {
					tally.Evict(outcomes[len(outcomes)-window-1], us[len(us)-window-1])
				}
				tally.Push(o, u)
				lo := max(0, len(outcomes)-window)
				want, err := mv.Fuse(outcomes[lo:], us[lo:])
				if err != nil {
					t.Fatal(err)
				}
				got, err := tally.Fused()
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("window %d seed %d step %d: tally %d, Fuse %d over %v",
						window, seed, step, got, want, outcomes[lo:])
				}
			}
		}
	}
}

func TestMajorityTallyEmptyAndReset(t *testing.T) {
	tally := MajorityVote{}.NewTally()
	if _, err := tally.Fused(); !errors.Is(err, ErrNoOutcomes) {
		t.Errorf("empty tally must return ErrNoOutcomes, got %v", err)
	}
	tally.Push(5, 0.3)
	if got, err := tally.Fused(); err != nil || got != 5 {
		t.Errorf("fused = %d, %v", got, err)
	}
	tally.Reset()
	if _, err := tally.Fused(); !errors.Is(err, ErrNoOutcomes) {
		t.Errorf("reset tally must return ErrNoOutcomes, got %v", err)
	}
	// Over-evicting (caller bug) must not panic or corrupt.
	tally.Evict(5, 0.3)
	tally.Push(7, 0.1)
	if got, err := tally.Fused(); err != nil || got != 7 {
		t.Errorf("after over-evict: fused = %d, %v", got, err)
	}
}

func TestLowestUncertaintyHasNoTally(t *testing.T) {
	if tally := (MajorityVote{TieBreak: LowestUncertainty}).NewTally(); tally != nil {
		t.Error("lowest-uncertainty tie-break must report no incremental form")
	}
}

func TestLatestTally(t *testing.T) {
	tally := Latest{}.NewTally()
	if _, err := tally.Fused(); !errors.Is(err, ErrNoOutcomes) {
		t.Errorf("empty latest tally must fail, got %v", err)
	}
	tally.Push(1, 0.5)
	tally.Push(2, 0.5)
	tally.Push(3, 0.5)
	tally.Evict(1, 0.5)
	got, err := tally.Fused()
	if err != nil || got != 3 {
		t.Errorf("latest = %d, %v, want 3", got, err)
	}
	tally.Reset()
	if _, err := tally.Fused(); !errors.Is(err, ErrNoOutcomes) {
		t.Errorf("reset latest tally must fail, got %v", err)
	}
}

// The incremental types must stay behind the existing OutcomeFuser interface.
func TestIncrementalFusersAreOutcomeFusers(t *testing.T) {
	var fusers = []OutcomeFuser{MajorityVote{}, Latest{}}
	for _, f := range fusers {
		if _, ok := f.(Incremental); !ok {
			t.Errorf("%s must implement Incremental", f.Name())
		}
		if _, err := f.Fuse([]int{1, 2, 1}, []float64{0.1, 0.2, 0.3}); err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
}
