package fusion

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMajorityVoteBasic(t *testing.T) {
	mv := MajorityVote{}
	tests := []struct {
		name     string
		outcomes []int
		want     int
	}{
		{"single", []int{5}, 5},
		{"clear-majority", []int{1, 2, 2, 2, 1}, 2},
		{"unanimous", []int{7, 7, 7}, 7},
		{"tie-most-recent", []int{1, 2}, 2},
		{"tie-three-way", []int{3, 1, 2}, 2},
		{"tie-resolved-by-recency", []int{2, 1, 2, 1}, 1},
		{"majority-overrides-recency", []int{2, 2, 1}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := mv.Fuse(tt.outcomes, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Fuse(%v) = %d, want %d", tt.outcomes, got, tt.want)
			}
		})
	}
	if _, err := mv.Fuse(nil, nil); err == nil {
		t.Error("empty history must fail")
	}
	if _, err := mv.Fuse([]int{1, 2}, []float64{0.1}); err == nil {
		t.Error("mismatched uncertainties must fail")
	}
}

func TestMajorityVoteLowestUncertaintyTie(t *testing.T) {
	mv := MajorityVote{TieBreak: LowestUncertainty}
	// Tie between 1 and 2; class 1's best vote has the lowest u.
	got, err := mv.Fuse([]int{1, 2}, []float64{0.05, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("lowest-uncertainty tie = %d, want 1", got)
	}
	// Without uncertainties it falls back to most recent.
	got, err = mv.Fuse([]int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("fallback tie = %d, want 2", got)
	}
}

func TestTieBreakString(t *testing.T) {
	if MostRecent.String() != "most-recent" || LowestUncertainty.String() != "lowest-uncertainty" {
		t.Error("tie-break names wrong")
	}
	if TieBreak(9).String() == "" {
		t.Error("unknown tie-break must stringify")
	}
	if (MajorityVote{}).Name() != "majority-vote" {
		t.Error("name wrong")
	}
	if (MajorityVote{TieBreak: LowestUncertainty}).Name() != "majority-vote/lowest-uncertainty-tie" {
		t.Error("ablation name wrong")
	}
}

func TestCertaintyWeighted(t *testing.T) {
	cw := CertaintyWeighted{}
	// Class 2 has fewer votes but much higher certainty.
	got, err := cw.Fuse([]int{1, 1, 2}, []float64{0.9, 0.9, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("weighted vote = %d, want 2", got)
	}
	if _, err := cw.Fuse([]int{1}, nil); err == nil {
		t.Error("missing uncertainties must fail")
	}
	if _, err := cw.Fuse(nil, nil); err == nil {
		t.Error("empty must fail")
	}
	if _, err := cw.Fuse([]int{1}, []float64{1.5}); err == nil {
		t.Error("invalid uncertainty must fail")
	}
	if cw.Name() == "" {
		t.Error("name empty")
	}
}

func TestLatest(t *testing.T) {
	l := Latest{}
	got, err := l.Fuse([]int{3, 1, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("latest = %d, want 4", got)
	}
	if _, err := l.Fuse(nil, nil); err == nil {
		t.Error("empty must fail")
	}
	if l.Name() != "latest" {
		t.Error("name wrong")
	}
}

func TestUncertaintyFusers(t *testing.T) {
	us := []float64{0.3, 0.1, 0.6}
	tests := []struct {
		fuser UncertaintyFuser
		want  float64
	}{
		{Naive{}, 0.3 * 0.1 * 0.6},
		{Opportune{}, 0.1},
		{WorstCase{}, 0.6},
	}
	for _, tt := range tests {
		got, err := tt.fuser.Fuse(us)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s = %g, want %g", tt.fuser.Name(), got, tt.want)
		}
	}
}

func TestUncertaintyFuserErrors(t *testing.T) {
	for _, f := range []UncertaintyFuser{Naive{}, Opportune{}, WorstCase{}} {
		if _, err := f.Fuse(nil); err == nil {
			t.Errorf("%s: empty must fail", f.Name())
		}
		if _, err := f.Fuse([]float64{0.5, -0.1}); err == nil {
			t.Errorf("%s: negative uncertainty must fail", f.Name())
		}
		if _, err := f.Fuse([]float64{math.NaN()}); err == nil {
			t.Errorf("%s: NaN must fail", f.Name())
		}
		if f.Name() == "" {
			t.Errorf("fuser has empty name")
		}
	}
}

// Property (used by the paper's discussion): naive <= opportune <=
// worst-case for any valid uncertainty vector.
func TestUncertaintyFusionOrdering(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%10) + 1
		rng := rand.New(rand.NewPCG(seed, 1))
		us := make([]float64, n)
		for i := range us {
			us[i] = rng.Float64()
		}
		nv, err1 := Naive{}.Fuse(us)
		op, err2 := Opportune{}.Fuse(us)
		wc, err3 := WorstCase{}.Fuse(us)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return nv <= op+1e-15 && op <= wc+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: majority vote returns one of the input outcomes, and a strict
// majority always wins regardless of order.
func TestMajorityVoteProperties(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%15) + 1
		rng := rand.New(rand.NewPCG(seed, 2))
		outcomes := make([]int, n)
		for i := range outcomes {
			outcomes[i] = rng.IntN(4)
		}
		got, err := MajorityVote{}.Fuse(outcomes, nil)
		if err != nil {
			return false
		}
		counts := make(map[int]int)
		maxC, maxO := 0, -1
		for _, o := range outcomes {
			counts[o]++
			if counts[o] > maxC {
				maxC, maxO = counts[o], o
			}
		}
		// got must be among the inputs.
		found := false
		strictWinner := true
		for o, c := range counts {
			if o == got {
				found = true
			}
			if o != maxO && c == maxC {
				strictWinner = false
			}
		}
		if !found {
			return false
		}
		if strictWinner && got != maxO {
			return false
		}
		return counts[got] == maxC // winner always holds the max count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property from the paper's RQ1 setup: at steps 1 and 2 of a series,
// majority-vote fusion coincides with the isolated prediction.
func TestMajorityMatchesIsolatedForShortSeries(t *testing.T) {
	f := func(a, b uint8) bool {
		o1 := int(a % 5)
		o2 := int(b % 5)
		mv := MajorityVote{}
		f1, err := mv.Fuse([]int{o1}, nil)
		if err != nil || f1 != o1 {
			return false
		}
		f2, err := mv.Fuse([]int{o1, o2}, nil)
		if err != nil {
			return false
		}
		return f2 == o2 || o1 == o2 // tie -> most recent = isolated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
