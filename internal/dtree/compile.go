package dtree

import (
	"fmt"
	"math"
)

// Compiled is a tree flattened into struct-of-arrays form for inference: one
// parallel slice per node attribute, children addressed by index, no
// pointers. Traversal walks a few contiguous slices instead of chasing heap
// nodes, which roughly halves the per-lookup cost and removes the tree from
// the garbage collector's pointer graph. A Compiled tree is immutable and
// safe for concurrent use.
//
// The pointer Tree stays canonical: rules, DOT export, serialisation, and
// calibration all operate on it; Compile is a pure projection taken after
// fit/calibrate/load.
type Compiled struct {
	// feature[i] is the split feature of node i, or -1 for a leaf.
	feature []int32
	// threshold[i] routes x[feature[i]] <= threshold[i] to left[i],
	// otherwise to right[i]. NaN factors fail the comparison and go right,
	// exactly as in the pointer tree.
	threshold []float64
	// left and right are child node indices (unset for leaves).
	left, right []int32
	// value[i] is the calibrated leaf value (NaN when uncalibrated or for
	// internal nodes).
	value []float64
	// leafID[i] is the dense leaf id of node i, -1 for internal nodes.
	leafID []int32

	nFeatures int
	nLeaves   int
}

// Compile flattens the tree into its inference form. Call it after Fit and
// Calibrate (or Load); the result does not track later mutations of the
// pointer tree.
func (t *Tree) Compile() *Compiled {
	n := countNodes(t.root)
	c := &Compiled{
		feature:   make([]int32, 0, n),
		threshold: make([]float64, 0, n),
		left:      make([]int32, 0, n),
		right:     make([]int32, 0, n),
		value:     make([]float64, 0, n),
		leafID:    make([]int32, 0, n),
		nFeatures: t.nFeatures,
		nLeaves:   t.nLeaves,
	}
	c.flatten(t.root)
	return c
}

func countNodes(n *Node) int {
	if n.IsLeaf() {
		return 1
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// flatten appends the subtree rooted at n in preorder and returns its index.
func (c *Compiled) flatten(n *Node) int32 {
	idx := int32(len(c.feature))
	c.feature = append(c.feature, int32(n.Feature))
	c.threshold = append(c.threshold, n.Threshold)
	c.left = append(c.left, -1)
	c.right = append(c.right, -1)
	c.value = append(c.value, n.Value)
	c.leafID = append(c.leafID, int32(n.LeafID))
	if !n.IsLeaf() {
		c.left[idx] = c.flatten(n.Left)
		c.right[idx] = c.flatten(n.Right)
	}
	return idx
}

// leaf routes x to its leaf and returns the node index. The caller must have
// validated len(x) == nFeatures.
func (c *Compiled) leaf(x []float64) int32 {
	i := int32(0)
	for {
		f := c.feature[i]
		if f < 0 {
			return i
		}
		if x[f] <= c.threshold[i] {
			i = c.left[i]
		} else {
			i = c.right[i]
		}
	}
}

// PredictValue returns the calibrated uncertainty of the leaf x falls into,
// matching Tree.PredictValue exactly.
func (c *Compiled) PredictValue(x []float64) (float64, error) {
	if len(x) != c.nFeatures {
		return math.NaN(), fmt.Errorf("%w: got %d features, want %d", ErrShapeMismatch, len(x), c.nFeatures)
	}
	v := c.value[c.leaf(x)]
	if math.IsNaN(v) {
		return math.NaN(), ErrNotCalibrated
	}
	return v, nil
}

// Apply returns the dense LeafID that x falls into, matching Tree.Apply.
func (c *Compiled) Apply(x []float64) (int, error) {
	if len(x) != c.nFeatures {
		return 0, fmt.Errorf("%w: got %d features, want %d", ErrShapeMismatch, len(x), c.nFeatures)
	}
	return int(c.leafID[c.leaf(x)]), nil
}

// PredictLeaf returns both the calibrated uncertainty and the dense LeafID of
// the leaf x falls into in a single traversal — the hot-path combination the
// uncertainty wrapper needs per estimate.
func (c *Compiled) PredictLeaf(x []float64) (value float64, leafID int, err error) {
	if len(x) != c.nFeatures {
		return math.NaN(), 0, fmt.Errorf("%w: got %d features, want %d", ErrShapeMismatch, len(x), c.nFeatures)
	}
	i := c.leaf(x)
	v := c.value[i]
	if math.IsNaN(v) {
		return math.NaN(), 0, ErrNotCalibrated
	}
	return v, int(c.leafID[i]), nil
}

// NumNodes returns the total node count.
func (c *Compiled) NumNodes() int { return len(c.feature) }

// NumLeaves returns the number of leaves.
func (c *Compiled) NumLeaves() int { return c.nLeaves }

// NumFeatures returns the number of input features.
func (c *Compiled) NumFeatures() int { return c.nFeatures }
