package dtree

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randData builds a noisy multi-feature dataset so fitted trees get varied
// shapes (depth, leaf counts) across seeds.
func randData(n, nf int, seed uint64) ([][]float64, []bool) {
	rng := rand.New(rand.NewPCG(seed, 7))
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		row := make([]float64, nf)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = rng.Float64() < 0.1+0.6*row[rng.IntN(nf)]
	}
	return x, y
}

// probeInputs generates traversal probes: in-range points, boundary echoes of
// the training data, and non-finite factors (NaN, ±Inf) that must route
// identically through both tree forms.
func probeInputs(nf int, train [][]float64, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 13))
	var probes [][]float64
	for i := 0; i < 200; i++ {
		row := make([]float64, nf)
		for j := range row {
			switch rng.IntN(10) {
			case 0:
				row[j] = math.NaN()
			case 1:
				row[j] = math.Inf(1)
			case 2:
				row[j] = math.Inf(-1)
			case 3:
				// Exact training values hit thresholds' <= boundary.
				row[j] = train[rng.IntN(len(train))][j]
			default:
				row[j] = rng.Float64()*3 - 1
			}
		}
		probes = append(probes, row)
	}
	return probes
}

// TestCompileMatchesPointerTree is the differential harness: across random
// trees and probe inputs (including NaN/±Inf factors), the compiled
// struct-of-arrays tree must agree bit-for-bit with the pointer tree on
// value, leaf id, and the combined lookup.
func TestCompileMatchesPointerTree(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		nf := 2 + int(seed%3)
		x, y := randData(300+int(seed)*20, nf, seed)
		tr, err := Fit(x, y, Config{MaxDepth: 2 + int(seed%6)})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Calibrate(x, y, 10+int(seed%40), cpBound); err != nil {
			t.Fatal(err)
		}
		c := tr.Compile()
		if c.NumLeaves() != tr.NumLeaves() || c.NumFeatures() != tr.NumFeatures() {
			t.Fatalf("seed %d: compiled shape %d/%d, tree %d/%d",
				seed, c.NumLeaves(), c.NumFeatures(), tr.NumLeaves(), tr.NumFeatures())
		}
		for pi, probe := range probeInputs(nf, x, seed) {
			wantV, errV := tr.PredictValue(probe)
			gotV, errGV := c.PredictValue(probe)
			if (errV == nil) != (errGV == nil) {
				t.Fatalf("seed %d probe %d: value errors diverge: %v vs %v", seed, pi, errV, errGV)
			}
			if errV == nil && wantV != gotV {
				t.Fatalf("seed %d probe %d: value %g vs compiled %g", seed, pi, wantV, gotV)
			}
			wantID, err := tr.Apply(probe)
			if err != nil {
				t.Fatal(err)
			}
			gotID, err := c.Apply(probe)
			if err != nil {
				t.Fatal(err)
			}
			if wantID != gotID {
				t.Fatalf("seed %d probe %d: leaf %d vs compiled %d", seed, pi, wantID, gotID)
			}
			bothV, bothID, err := c.PredictLeaf(probe)
			if err != nil {
				t.Fatal(err)
			}
			if bothV != wantV || bothID != wantID {
				t.Fatalf("seed %d probe %d: PredictLeaf (%g, %d) vs (%g, %d)",
					seed, pi, bothV, bothID, wantV, wantID)
			}
		}
	}
}

func TestCompileUncalibratedAndShapeErrors(t *testing.T) {
	x, y := sepData(200, 21)
	tr, err := Fit(x, y, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Compile()
	if _, err := c.PredictValue([]float64{0.1, 0.2}); err != ErrNotCalibrated {
		t.Errorf("uncalibrated compiled tree must return ErrNotCalibrated, got %v", err)
	}
	if _, _, err := c.PredictLeaf([]float64{0.1, 0.2}); err != ErrNotCalibrated {
		t.Errorf("uncalibrated PredictLeaf must return ErrNotCalibrated, got %v", err)
	}
	// Apply works without calibration, like the pointer tree.
	if _, err := c.Apply([]float64{0.1, 0.2}); err != nil {
		t.Errorf("Apply on uncalibrated compiled tree: %v", err)
	}
	if _, err := c.PredictValue([]float64{0.1}); err == nil {
		t.Error("shape mismatch must fail")
	}
	if _, err := c.Apply(nil); err == nil {
		t.Error("nil probe must fail")
	}
	if _, _, err := c.PredictLeaf([]float64{1, 2, 3}); err == nil {
		t.Error("wide probe must fail")
	}
}

// TestCompileRootLeaf covers the degenerate single-node tree (no split found).
func TestCompileRootLeaf(t *testing.T) {
	x := [][]float64{{0.1}, {0.2}, {0.3}}
	y := []bool{false, false, false} // pure node: never splits
	tr, err := Fit(x, y, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Calibrate(x, y, 1, cpBound); err != nil {
		t.Fatal(err)
	}
	c := tr.Compile()
	if c.NumNodes() != 1 || c.NumLeaves() != 1 {
		t.Fatalf("root-leaf compiled to %d nodes / %d leaves", c.NumNodes(), c.NumLeaves())
	}
	v, id, err := c.PredictLeaf([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.PredictValue([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if v != want || id != 0 {
		t.Errorf("root leaf = (%g, %d), want (%g, 0)", v, id, want)
	}
}

// TestCompileSnapshotSemantics: Compile is a projection taken at a point in
// time — recalibrating the pointer tree afterwards must not leak into an
// already-compiled form, while a fresh Compile picks the new values up.
func TestCompileSnapshotSemantics(t *testing.T) {
	x, y := sepData(400, 33)
	tr, err := Fit(x, y, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Calibrate(x, y, 20, cpBound); err != nil {
		t.Fatal(err)
	}
	before := tr.Compile()
	probe := []float64{0.9, 0.5}
	v1, err := before.PredictValue(probe)
	if err != nil {
		t.Fatal(err)
	}
	// Recalibrate with a much coarser minimum: leaves collapse, values move.
	if err := tr.Calibrate(x, y, 200, cpBound); err != nil {
		t.Fatal(err)
	}
	v1Again, err := before.PredictValue(probe)
	if err != nil {
		t.Fatal(err)
	}
	if v1Again != v1 {
		t.Errorf("compiled snapshot changed under recalibration: %g -> %g", v1, v1Again)
	}
	after := tr.Compile()
	vNew, err := after.PredictValue(probe)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.PredictValue(probe)
	if err != nil {
		t.Fatal(err)
	}
	if vNew != want {
		t.Errorf("fresh compile = %g, pointer tree = %g", vNew, want)
	}
}
