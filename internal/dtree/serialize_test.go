package dtree

import (
	"encoding/json"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSerialiseRoundTrip(t *testing.T) {
	x, y := sepData(2000, 101)
	tr, err := Fit(x, y, Config{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	cx, cy := sepData(2000, 103)
	if err := tr.Calibrate(cx, cy, 150, cpBound); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumLeaves() != tr.NumLeaves() || loaded.NumFeatures() != tr.NumFeatures() {
		t.Fatalf("shape differs: %d/%d leaves, %d/%d features",
			loaded.NumLeaves(), tr.NumLeaves(), loaded.NumFeatures(), tr.NumFeatures())
	}
	// Predictions must agree on random probes.
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 500; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		v1, err := tr.PredictValue(p)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := loaded.PredictValue(p)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Fatalf("probe %v: %g != %g", p, v1, v2)
		}
		id1, _ := tr.Apply(p)
		id2, _ := loaded.Apply(p)
		if id1 != id2 {
			t.Fatalf("probe %v: leaf %d != %d", p, id1, id2)
		}
	}
	// Rule export of the loaded tree must still work.
	if loaded.Rules(nil) != tr.Rules(nil) {
		t.Error("rules differ after round trip")
	}
}

func TestSerialiseUncalibrated(t *testing.T) {
	x, y := sepData(200, 7)
	tr, err := Fit(x, y, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	// NaN leaf values survive as "not calibrated".
	if _, err := loaded.PredictValue(x[0]); err == nil {
		t.Error("uncalibrated loaded tree must refuse PredictValue")
	}
	// But training rates still work.
	if _, err := loaded.TrainRate(x[0]); err != nil {
		t.Error(err)
	}
}

func TestLoadRejectsCorruptTrees(t *testing.T) {
	cases := map[string]string{
		"bad json":           `{nope`,
		"no nodes":           `{"num_features":2,"nodes":[]}`,
		"zero features":      `{"num_features":0,"nodes":[{"feature":-1,"left":-1,"right":-1}]}`,
		"leaf with feature":  `{"num_features":2,"nodes":[{"feature":1,"left":-1,"right":-1}]}`,
		"one child":          `{"num_features":2,"nodes":[{"feature":0,"left":1,"right":-1},{"feature":-1,"left":-1,"right":-1}]}`,
		"index out of range": `{"num_features":2,"nodes":[{"feature":0,"left":1,"right":9},{"feature":-1,"left":-1,"right":-1}]}`,
		"feature range":      `{"num_features":2,"nodes":[{"feature":5,"left":1,"right":2},{"feature":-1,"left":-1,"right":-1},{"feature":-1,"left":-1,"right":-1}]}`,
		"cycle":              `{"num_features":2,"nodes":[{"feature":0,"left":0,"right":1},{"feature":-1,"left":-1,"right":-1}]}`,
	}
	for name, data := range cases {
		if _, err := Load([]byte(data)); err == nil {
			t.Errorf("%s: Load must fail", name)
		}
	}
}

// Property: round trip preserves predictions for arbitrary generated trees.
func TestSerialiseRoundTripProperty(t *testing.T) {
	f := func(seed uint64, rawDepth uint8) bool {
		depth := int(rawDepth%6) + 1
		x, y := sepData(300, seed)
		tr, err := Fit(x, y, Config{MaxDepth: depth})
		if err != nil {
			return false
		}
		if err := tr.Calibrate(x, y, 20, cpBound); err != nil {
			return false
		}
		data, err := json.Marshal(tr)
		if err != nil {
			return false
		}
		loaded, err := Load(data)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 42))
		for i := 0; i < 50; i++ {
			p := []float64{rng.Float64(), rng.Float64()}
			v1, err1 := tr.PredictValue(p)
			v2, err2 := loaded.PredictValue(p)
			if err1 != nil || err2 != nil || v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
