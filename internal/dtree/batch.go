package dtree

import (
	"fmt"
	"math"

	"github.com/iese-repro/tauw/internal/xslice"
)

// treeBlock is the number of rows one block walk advances together. The
// walk descends all rows of a block one level per sweep, so within a sweep
// every access to the struct-of-arrays tree clusters around the same few
// levels — the nodes stay hot in cache across the whole block instead of
// being re-fetched root-to-leaf per row. 64 rows of walk state (one int32
// frontier each) fit comfortably in registers-plus-L1 alongside the upper
// tree levels.
const treeBlock = 64

// walkBlock routes every row of a block to its leaf, writing the leaf's
// node index into idx[j] for row j. len(idx) == len(xs) <= treeBlock, and
// every row has been shape-checked by the caller.
func (c *Compiled) walkBlock(xs [][]float64, idx []int32) {
	for j := range idx {
		idx[j] = 0
	}
	// Hoist the slice headers out of the sweep loops: the compiler cannot
	// prove c's fields stable across iterations, and the walk is the
	// hottest loop in batch inference.
	feature, threshold := c.feature, c.threshold
	left, right := c.left, c.right
	for {
		pending := false
		for j, x := range xs {
			i := idx[j]
			f := feature[i]
			if f < 0 {
				continue
			}
			// NaN factors fail the comparison and go right, exactly as in
			// the pointer tree and the per-row walk.
			if x[f] <= threshold[i] {
				i = left[i]
			} else {
				i = right[i]
			}
			idx[j] = i
			if feature[i] >= 0 {
				pending = true
			}
		}
		if !pending {
			return
		}
	}
}

// checkRows validates the batch's shape up front so the block walk itself
// can run unchecked.
func (c *Compiled) checkRows(xs [][]float64) error {
	for i, x := range xs {
		if len(x) != c.nFeatures {
			return fmt.Errorf("%w: row %d has %d features, want %d", ErrShapeMismatch, i, len(x), c.nFeatures)
		}
	}
	return nil
}

// PredictBatch is PredictValue over many rows in one call: rows are walked
// in cache-friendly blocks of treeBlock over the struct-of-arrays tree, and
// the calibrated leaf values are written into out (reused when its capacity
// suffices, reallocated otherwise — use the returned slice). It returns
// exactly the values a PredictValue-per-row loop would, at a fraction of
// the per-row dispatch and cache cost.
func (c *Compiled) PredictBatch(xs [][]float64, out []float64) ([]float64, error) {
	if err := c.checkRows(xs); err != nil {
		return nil, err
	}
	out = xslice.Grow(out, len(xs))
	var idx [treeBlock]int32
	for base := 0; base < len(xs); base += treeBlock {
		n := min(treeBlock, len(xs)-base)
		c.walkBlock(xs[base:base+n], idx[:n])
		for j := 0; j < n; j++ {
			v := c.value[idx[j]]
			if math.IsNaN(v) {
				return nil, ErrNotCalibrated
			}
			out[base+j] = v
		}
	}
	return out, nil
}

// ApplyBatch is Apply over many rows in one call: the dense LeafIDs of
// every row, computed with the same block walk as PredictBatch. out is
// reused when large enough (use the returned slice).
func (c *Compiled) ApplyBatch(xs [][]float64, out []int) ([]int, error) {
	if err := c.checkRows(xs); err != nil {
		return nil, err
	}
	out = xslice.Grow(out, len(xs))
	var idx [treeBlock]int32
	for base := 0; base < len(xs); base += treeBlock {
		n := min(treeBlock, len(xs)-base)
		c.walkBlock(xs[base:base+n], idx[:n])
		for j := 0; j < n; j++ {
			out[base+j] = int(c.leafID[idx[j]])
		}
	}
	return out, nil
}
