package dtree

import (
	"math"
	"math/rand/v2"
	"testing"
)

// noisyData has one informative feature and pure noise labels in a corner,
// so deep trees overfit structure that cost-complexity pruning removes.
func noisyData(n int, seed uint64) ([][]float64, []bool) {
	rng := rand.New(rand.NewPCG(seed, 1))
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		p := 0.05
		if x[i][0] > 0.5 {
			p = 0.45
		}
		y[i] = rng.Float64() < p
	}
	return x, y
}

func TestPruneCostComplexityReducesLeaves(t *testing.T) {
	x, y := noisyData(3000, 3)
	tr, err := Fit(x, y, Config{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.NumLeaves()
	if before < 8 {
		t.Skipf("tree too small to prune meaningfully (%d leaves)", before)
	}
	if err := tr.PruneCostComplexity(0.002); err != nil {
		t.Fatal(err)
	}
	after := tr.NumLeaves()
	if after >= before {
		t.Errorf("pruning did not shrink the tree: %d -> %d", before, after)
	}
	// The informative root split must survive a moderate alpha.
	if tr.Root().IsLeaf() {
		t.Error("pruning removed the informative root split")
	}
	// Higher alpha prunes at least as much.
	x2, y2 := noisyData(3000, 3)
	tr2, err := Fit(x2, y2, Config{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.PruneCostComplexity(0.05); err != nil {
		t.Fatal(err)
	}
	if tr2.NumLeaves() > after {
		t.Errorf("larger alpha kept more leaves: %d vs %d", tr2.NumLeaves(), after)
	}
}

func TestPruneCostComplexityValidation(t *testing.T) {
	x, y := noisyData(100, 5)
	tr, err := Fit(x, y, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.PruneCostComplexity(-1); err == nil {
		t.Error("negative alpha must fail")
	}
	if err := tr.PruneCostComplexity(math.NaN()); err == nil {
		t.Error("NaN alpha must fail")
	}
}

func TestPruneThenRecalibrate(t *testing.T) {
	x, y := noisyData(3000, 7)
	tr, err := Fit(x, y, Config{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.PruneCostComplexity(0.001); err != nil {
		t.Fatal(err)
	}
	// Pruning leaves the tree uncalibrated.
	if _, err := tr.PredictValue(x[0]); err == nil {
		t.Error("pruned tree must require recalibration")
	}
	cx, cy := noisyData(2000, 9)
	if err := tr.Calibrate(cx, cy, 150, cpBound); err != nil {
		t.Fatal(err)
	}
	v, err := tr.PredictValue([]float64{0.2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.05 || v > 0.2 {
		t.Errorf("clean-region bound %g outside the plausible range", v)
	}
}

func TestPruneStumpNoOp(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := []bool{false, false}
	tr, err := Fit(x, y, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.PruneCostComplexity(0.5); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Errorf("stump changed: %d leaves", tr.NumLeaves())
	}
}
