package dtree

import (
	"encoding/json"
	"fmt"
	"math"
)

// treeJSON is the on-disk representation of a calibrated tree: a flat node
// arena with child indices, which survives arbitrarily deep trees without
// recursion limits and keeps the format diff-friendly.
type treeJSON struct {
	NumFeatures int        `json:"num_features"`
	Nodes       []nodeJSON `json:"nodes"`
	Config      configJSON `json:"config"`
}

type nodeJSON struct {
	Feature     int     `json:"feature"` // -1 for leaves
	Threshold   float64 `json:"threshold,omitempty"`
	Left        int     `json:"left"`  // node index, -1 for leaves
	Right       int     `json:"right"` // node index, -1 for leaves
	Count       int     `json:"count"`
	Events      int     `json:"events"`
	CalibCount  int     `json:"calib_count"`
	CalibEvents int     `json:"calib_events"`
	Value       float64 `json:"value"` // NaN encoded as -1 (values are probabilities)
	Depth       int     `json:"depth"`
	Gain        float64 `json:"gain,omitempty"`
}

type configJSON struct {
	MaxDepth        int     `json:"max_depth"`
	MinSplitSamples int     `json:"min_split_samples"`
	MinLeafSamples  int     `json:"min_leaf_samples"`
	Criterion       int     `json:"criterion"`
	MinGain         float64 `json:"min_gain"`
}

// MarshalJSON serialises the tree, including calibration statistics and
// leaf values, so a calibrated quality impact model can be deployed without
// retraining.
func (t *Tree) MarshalJSON() ([]byte, error) {
	var nodes []nodeJSON
	var flatten func(n *Node) int
	flatten = func(n *Node) int {
		idx := len(nodes)
		nodes = append(nodes, nodeJSON{})
		v := n.Value
		if math.IsNaN(v) {
			v = -1
		}
		nj := nodeJSON{
			Feature:     n.Feature,
			Threshold:   n.Threshold,
			Left:        -1,
			Right:       -1,
			Count:       n.Count,
			Events:      n.Events,
			CalibCount:  n.CalibCount,
			CalibEvents: n.CalibEvents,
			Value:       v,
			Depth:       n.Depth,
			Gain:        n.gain,
		}
		if !n.IsLeaf() {
			nj.Left = flatten(n.Left)
			nj.Right = flatten(n.Right)
		}
		nodes[idx] = nj
		return idx
	}
	flatten(t.root)
	return json.Marshal(treeJSON{
		NumFeatures: t.nFeatures,
		Nodes:       nodes,
		Config: configJSON{
			MaxDepth:        t.cfg.MaxDepth,
			MinSplitSamples: t.cfg.MinSplitSamples,
			MinLeafSamples:  t.cfg.MinLeafSamples,
			Criterion:       int(t.cfg.Criterion),
			MinGain:         t.cfg.MinGain,
		},
	})
}

// Load deserialises a tree produced by MarshalJSON, validating structural
// integrity (indices in range, no cycles, leaves consistent).
func Load(data []byte) (*Tree, error) {
	var tj treeJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return nil, fmt.Errorf("dtree: decode: %w", err)
	}
	if tj.NumFeatures <= 0 {
		return nil, fmt.Errorf("dtree: corrupt tree: %d features", tj.NumFeatures)
	}
	if len(tj.Nodes) == 0 {
		return nil, fmt.Errorf("dtree: corrupt tree: no nodes")
	}
	visited := make([]bool, len(tj.Nodes))
	var build func(idx int) (*Node, error)
	build = func(idx int) (*Node, error) {
		if idx < 0 || idx >= len(tj.Nodes) {
			return nil, fmt.Errorf("dtree: corrupt tree: node index %d out of range", idx)
		}
		if visited[idx] {
			return nil, fmt.Errorf("dtree: corrupt tree: node %d referenced twice", idx)
		}
		visited[idx] = true
		nj := tj.Nodes[idx]
		v := nj.Value
		if v < 0 {
			v = math.NaN()
		}
		n := &Node{
			Feature:     nj.Feature,
			Threshold:   nj.Threshold,
			Count:       nj.Count,
			Events:      nj.Events,
			CalibCount:  nj.CalibCount,
			CalibEvents: nj.CalibEvents,
			Value:       v,
			Depth:       nj.Depth,
			gain:        nj.Gain,
		}
		isLeaf := nj.Left < 0 && nj.Right < 0
		if isLeaf {
			if nj.Feature != -1 {
				return nil, fmt.Errorf("dtree: corrupt tree: leaf %d has feature %d", idx, nj.Feature)
			}
			return n, nil
		}
		if nj.Left < 0 || nj.Right < 0 {
			return nil, fmt.Errorf("dtree: corrupt tree: node %d has one child", idx)
		}
		if nj.Feature < 0 || nj.Feature >= tj.NumFeatures {
			return nil, fmt.Errorf("dtree: corrupt tree: node %d splits on feature %d of %d",
				idx, nj.Feature, tj.NumFeatures)
		}
		var err error
		if n.Left, err = build(nj.Left); err != nil {
			return nil, err
		}
		if n.Right, err = build(nj.Right); err != nil {
			return nil, err
		}
		return n, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		root:      root,
		nFeatures: tj.NumFeatures,
		cfg: Config{
			MaxDepth:        tj.Config.MaxDepth,
			MinSplitSamples: tj.Config.MinSplitSamples,
			MinLeafSamples:  tj.Config.MinLeafSamples,
			Criterion:       Criterion(tj.Config.Criterion),
			MinGain:         tj.Config.MinGain,
		},
	}
	t.renumberLeaves()
	return t, nil
}
