// recalibrate.go implements online leaf recalibration: refreshing the
// calibrated leaf bounds of an already-fitted tree from the offline
// calibration counts combined with ground-truth evidence collected at
// runtime. The tree structure (splits, leaf ids) is never changed — only the
// per-leaf binomial bounds move — so provenance recorded against the old
// model (leaf ids, feature layout) stays meaningful across a recalibration,
// which is what makes zero-downtime model hot-swap possible one level up.
//
// The evidence-combination scheme follows the framework's dependability
// argument: each leaf's bound is a one-sided binomial upper bound on the
// failure probability computed from (k, n) counts, so online evidence is
// folded in by adding the observed (events, count) to the offline
// calibration statistics and recomputing the same bound. Optional Laplace
// smoothing (add-alpha pseudo-counts, per Gerber/Jöckel/Kläs's mitigation of
// hard region boundaries) regularises leaves whose online evidence is thin.
package dtree

import (
	"fmt"
	"math"
)

// LeafEvidence is the online ground-truth evidence accumulated for one leaf
// region since the last (re)calibration: how many served estimates were
// judged by feedback, and how many of those judgements found the fused
// outcome wrong.
type LeafEvidence struct {
	LeafID int
	Count  int
	Events int
}

// RecalibConfig tunes Recalibrate.
type RecalibConfig struct {
	// MinLeafEvidence guards thin evidence: a leaf's bound is refreshed
	// only when its online Count reaches this minimum; leaves below it (or
	// absent from the evidence) keep their current bound unchanged. Zero
	// refreshes every leaf named in the evidence, however thin.
	MinLeafEvidence int
	// LaplaceAlpha adds alpha pseudo-events out of 2*alpha pseudo-trials to
	// each refreshed leaf's combined counts before the bound is recomputed
	// (add-alpha smoothing, Gerber et al.): it pulls bounds computed from
	// thin evidence towards 1/2 instead of letting a handful of lucky
	// feedbacks collapse them. Zero disables smoothing. The pseudo-counts
	// only enter the bound computation; the stored calibration statistics
	// stay the true observed counts.
	LaplaceAlpha int
	// DropPrior discards the offline calibration counts and recomputes
	// refreshed leaves from online evidence alone — the aggressive policy
	// for regime changes where the offline data no longer describes the
	// traffic. Default keeps the prior (offline + online).
	DropPrior bool
}

func (c RecalibConfig) validate() error {
	if c.MinLeafEvidence < 0 {
		return fmt.Errorf("dtree: min leaf evidence %d must be >= 0", c.MinLeafEvidence)
	}
	if c.LaplaceAlpha < 0 {
		return fmt.Errorf("dtree: laplace alpha %d must be >= 0", c.LaplaceAlpha)
	}
	return nil
}

// LeafDelta reports how one leaf moved through a recalibration, the
// per-region audit trail of a model swap.
type LeafDelta struct {
	// LeafID is the dense leaf id (stable across recalibrations, since the
	// structure never changes).
	LeafID int
	// OldValue and NewValue are the leaf's bound before and after; equal
	// when the leaf was not refreshed.
	OldValue, NewValue float64
	// PriorCount and PriorEvents are the calibration statistics the leaf
	// held before the online evidence was folded in.
	PriorCount, PriorEvents int
	// OnlineCount and OnlineEvents are the online evidence offered for the
	// leaf (zero when none was).
	OnlineCount, OnlineEvents int
	// Refreshed reports whether the bound was recomputed (evidence met
	// MinLeafEvidence) or kept.
	Refreshed bool
}

// Clone returns a deep copy of the tree: nodes, split parameters, counts,
// calibrated values, and leaf numbering. The copy shares nothing mutable
// with the original, so one can be recalibrated while the other keeps
// serving.
func (t *Tree) Clone() *Tree {
	return &Tree{
		root:      cloneNode(t.root),
		nFeatures: t.nFeatures,
		nLeaves:   t.nLeaves,
		cfg:       t.cfg,
	}
}

func cloneNode(n *Node) *Node {
	c := *n
	if !n.IsLeaf() {
		c.Left = cloneNode(n.Left)
		c.Right = cloneNode(n.Right)
	}
	return &c
}

// Recalibrate returns a copy of the calibrated tree whose leaf bounds have
// been refreshed from the combined (offline-prior + online-feedback) counts,
// leaving the receiver untouched — the old tree keeps serving until the
// caller swaps the new one in. Evidence entries name leaves by their dense
// LeafID; a leaf may appear at most once. The returned deltas cover every
// leaf in LeafID order, refreshed or not, so the caller can render a full
// audit of the swap.
//
// Refreshed leaves store the combined counts as their new calibration
// statistics, so a later recalibration compounds on top of the absorbed
// evidence instead of double-counting it (the caller is expected to reset
// its online accumulators after a successful swap).
func (t *Tree) Recalibrate(evidence []LeafEvidence, bound BoundFunc, cfg RecalibConfig) (*Tree, []LeafDelta, error) {
	if bound == nil {
		return nil, nil, fmt.Errorf("dtree: recalibrate needs a bound function")
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	byLeaf := make(map[int]LeafEvidence, len(evidence))
	for _, ev := range evidence {
		if ev.LeafID < 0 || ev.LeafID >= t.nLeaves {
			return nil, nil, fmt.Errorf("dtree: evidence names leaf %d outside [0,%d)", ev.LeafID, t.nLeaves)
		}
		if ev.Count < 0 || ev.Events < 0 || ev.Events > ev.Count {
			return nil, nil, fmt.Errorf("dtree: leaf %d evidence %d/%d is not a valid (events, count) pair",
				ev.LeafID, ev.Events, ev.Count)
		}
		if _, dup := byLeaf[ev.LeafID]; dup {
			return nil, nil, fmt.Errorf("dtree: duplicate evidence for leaf %d", ev.LeafID)
		}
		byLeaf[ev.LeafID] = ev
	}
	nt := t.Clone()
	deltas := make([]LeafDelta, 0, nt.nLeaves)
	for _, leaf := range nt.Leaves() {
		if math.IsNaN(leaf.Value) {
			return nil, nil, fmt.Errorf("dtree: recalibrating leaf %d: %w", leaf.LeafID, ErrNotCalibrated)
		}
		ev := byLeaf[leaf.LeafID]
		d := LeafDelta{
			LeafID:       leaf.LeafID,
			OldValue:     leaf.Value,
			NewValue:     leaf.Value,
			PriorCount:   leaf.CalibCount,
			PriorEvents:  leaf.CalibEvents,
			OnlineCount:  ev.Count,
			OnlineEvents: ev.Events,
		}
		if ev.Count > 0 && ev.Count >= cfg.MinLeafEvidence {
			k, n := ev.Events, ev.Count
			if !cfg.DropPrior {
				k += leaf.CalibEvents
				n += leaf.CalibCount
			}
			v, err := bound(k+cfg.LaplaceAlpha, n+2*cfg.LaplaceAlpha)
			if err != nil {
				return nil, nil, fmt.Errorf("dtree: recalibrating leaf %d: %w", leaf.LeafID, err)
			}
			leaf.Value = v
			leaf.CalibCount, leaf.CalibEvents = n, k
			d.NewValue = v
			d.Refreshed = true
		}
		deltas = append(deltas, d)
	}
	return nt, deltas, nil
}
