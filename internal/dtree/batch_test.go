package dtree

import (
	"errors"
	"testing"
)

// TestBatchMatchesPerRow is the block-inference differential: across random
// trees and probe inputs (including NaN/±Inf factors and exact-threshold
// echoes), PredictBatch and ApplyBatch must agree bit-for-bit with the
// per-row PredictValue/Apply walk — at every batch length around the block
// boundary, with and without a recycled output slice.
func TestBatchMatchesPerRow(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		nf := 2 + int(seed%3)
		x, y := randData(300+int(seed)*20, nf, seed)
		tr, err := Fit(x, y, Config{MaxDepth: 2 + int(seed%6)})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Calibrate(x, y, 10+int(seed%40), cpBound); err != nil {
			t.Fatal(err)
		}
		c := tr.Compile()
		probes := probeInputs(nf, x, seed)
		var values []float64
		var leaves []int
		// Lengths straddling the block size exercise the full-block path,
		// the partial tail, and the empty batch.
		for _, n := range []int{0, 1, treeBlock - 1, treeBlock, treeBlock + 1, len(probes)} {
			batch := probes[:n]
			values, err = c.PredictBatch(batch, values)
			if err != nil {
				t.Fatal(err)
			}
			leaves, err = c.ApplyBatch(batch, leaves)
			if err != nil {
				t.Fatal(err)
			}
			if len(values) != n || len(leaves) != n {
				t.Fatalf("seed %d n=%d: got %d values, %d leaves", seed, n, len(values), len(leaves))
			}
			for i, probe := range batch {
				wantV, err := c.PredictValue(probe)
				if err != nil {
					t.Fatal(err)
				}
				wantID, err := c.Apply(probe)
				if err != nil {
					t.Fatal(err)
				}
				if values[i] != wantV || leaves[i] != wantID {
					t.Fatalf("seed %d n=%d row %d: batch (%g, %d) vs per-row (%g, %d)",
						seed, n, i, values[i], leaves[i], wantV, wantID)
				}
			}
		}
	}
}

// TestBatchErrors pins the batch error semantics to the per-row ones: shape
// mismatches fail the whole batch before any walk, and an uncalibrated tree
// fails PredictBatch with ErrNotCalibrated while ApplyBatch still works.
func TestBatchErrors(t *testing.T) {
	x, y := sepData(200, 21)
	tr, err := Fit(x, y, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Compile()
	good := [][]float64{{0.1, 0.2}, {0.3, 0.4}}
	bad := [][]float64{{0.1, 0.2}, {0.3}}
	if _, err := c.PredictBatch(bad, nil); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("PredictBatch shape error = %v, want ErrShapeMismatch", err)
	}
	if _, err := c.ApplyBatch(bad, nil); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("ApplyBatch shape error = %v, want ErrShapeMismatch", err)
	}
	if _, err := c.PredictBatch(good, nil); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("uncalibrated PredictBatch = %v, want ErrNotCalibrated", err)
	}
	leaves, err := c.ApplyBatch(good, nil)
	if err != nil || len(leaves) != 2 {
		t.Errorf("uncalibrated ApplyBatch = (%v, %v), want two leaf ids", leaves, err)
	}
	if err := tr.Calibrate(x, y, 20, cpBound); err != nil {
		t.Fatal(err)
	}
	c = tr.Compile()
	// Recycled output: a too-small dst grows, a large one is reused.
	large := make([]float64, 0, 128)
	out, err := c.PredictBatch(good, large)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || cap(out) != 128 {
		t.Errorf("recycled dst not reused: len=%d cap=%d", len(out), cap(out))
	}
}
