package dtree

import (
	"fmt"
	"math"
)

// PruneCostComplexity applies weakest-link (cost-complexity) pruning with
// complexity parameter alpha, the standard CART post-pruning: any subtree
// whose per-leaf impurity reduction is worth less than alpha is collapsed.
// Larger alpha prunes more aggressively; alpha = 0 only collapses splits
// with zero risk reduction. Pruning invalidates leaf calibration, so
// Calibrate must be called again afterwards.
func (t *Tree) PruneCostComplexity(alpha float64) error {
	if alpha < 0 || math.IsNaN(alpha) {
		return fmt.Errorf("dtree: alpha %g must be non-negative", alpha)
	}
	total := float64(t.root.Count)
	if total == 0 {
		return nil
	}
	// Iteratively collapse the weakest link until every remaining split
	// is worth its complexity.
	for {
		weakest, g := weakestLink(t.root, total, t.cfg.Criterion)
		if weakest == nil || g > alpha {
			break
		}
		weakest.Feature = -1
		weakest.Threshold = 0
		weakest.Left = nil
		weakest.Right = nil
		weakest.gain = 0
		weakest.Value = math.NaN()
	}
	t.renumberLeaves()
	return nil
}

// weakestLink returns the internal node with the smallest per-leaf risk
// reduction g(node) = (R(node) - R(subtree)) / (leaves(subtree) - 1), along
// with that value.
func weakestLink(n *Node, total float64, c Criterion) (*Node, float64) {
	if n.IsLeaf() {
		return nil, math.Inf(1)
	}
	bestNode, bestG := (*Node)(nil), math.Inf(1)
	var walk func(m *Node) (risk float64, leaves int)
	walk = func(m *Node) (float64, int) {
		nodeRisk := float64(m.Count) / total * impurity(c, m.Events, m.Count)
		if m.IsLeaf() {
			return nodeRisk, 1
		}
		lRisk, lLeaves := walk(m.Left)
		rRisk, rLeaves := walk(m.Right)
		subRisk := lRisk + rRisk
		subLeaves := lLeaves + rLeaves
		g := (nodeRisk - subRisk) / float64(subLeaves-1)
		if g < bestG {
			bestG = g
			bestNode = m
		}
		return subRisk, subLeaves
	}
	walk(n)
	return bestNode, bestG
}
