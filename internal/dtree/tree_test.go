package dtree

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"github.com/iese-repro/tauw/internal/stats"
)

// sepData builds a dataset where failures happen exactly when x0 > 0.5.
func sepData(n int, seed uint64) ([][]float64, []bool) {
	rng := rand.New(rand.NewPCG(seed, 1))
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = x[i][0] > 0.5
	}
	return x, y
}

func TestFitSeparable(t *testing.T) {
	x, y := sepData(500, 3)
	tr, err := Fit(x, y, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if root.IsLeaf() {
		t.Fatal("separable data must split the root")
	}
	if root.Feature != 0 {
		t.Errorf("root splits on feature %d, want 0", root.Feature)
	}
	if math.Abs(root.Threshold-0.5) > 0.05 {
		t.Errorf("root threshold = %g, want about 0.5", root.Threshold)
	}
	// Training rates of the two sides must be pure.
	for _, tc := range []struct {
		x    []float64
		want float64
	}{
		{[]float64{0.1, 0.9}, 0},
		{[]float64{0.9, 0.1}, 1},
	} {
		r, err := tr.TrainRate(tc.x)
		if err != nil {
			t.Fatal(err)
		}
		if r != tc.want {
			t.Errorf("TrainRate(%v) = %g, want %g", tc.x, r, tc.want)
		}
	}
}

func TestFitRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	n := 2000
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		// A deep XOR-ish target that wants many splits.
		y[i] = (x[i][0] > 0.5) != (x[i][1] > 0.5) != (x[i][2] > 0.5)
	}
	for _, depth := range []int{1, 2, 4, 8} {
		tr, err := Fit(x, y, Config{MaxDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Depth(); got > depth {
			t.Errorf("depth %d exceeds limit %d", got, depth)
		}
	}
}

func TestFitPureNodeStops(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []bool{false, false, false, false}
	tr, err := Fit(x, y, Config{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().IsLeaf() {
		t.Error("pure node must not split")
	}
	if tr.NumLeaves() != 1 {
		t.Errorf("leaves = %d, want 1", tr.NumLeaves())
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Config{}); err == nil {
		t.Error("empty training set must fail")
	}
	if _, err := Fit([][]float64{{1}}, []bool{true, false}, Config{}); err == nil {
		t.Error("shape mismatch must fail")
	}
	if _, err := Fit([][]float64{{}}, []bool{true}, Config{}); err == nil {
		t.Error("zero features must fail")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, []bool{true, false}, Config{}); err == nil {
		t.Error("ragged rows must fail")
	}
}

func TestMinLeafSamplesDuringGrowth(t *testing.T) {
	x, y := sepData(100, 9)
	tr, err := Fit(x, y, Config{MaxDepth: 8, MinLeafSamples: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range tr.Leaves() {
		if leaf.Count < 30 {
			t.Errorf("leaf with %d < 30 training samples", leaf.Count)
		}
	}
}

func TestLeafErrorsOnWrongWidth(t *testing.T) {
	x, y := sepData(50, 2)
	tr, err := Fit(x, y, Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Leaf([]float64{1}); err == nil {
		t.Error("wrong feature count must fail")
	}
	if _, err := tr.Apply([]float64{1, 2, 3}); err == nil {
		t.Error("wrong feature count must fail")
	}
}

func TestPredictValueRequiresCalibration(t *testing.T) {
	x, y := sepData(50, 2)
	tr, err := Fit(x, y, Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.PredictValue(x[0]); err == nil {
		t.Error("uncalibrated tree must refuse PredictValue")
	}
}

func cpBound(k, n int) (float64, error) {
	return stats.BinomialUpperBound(stats.ClopperPearson, k, n, 0.999)
}

func TestCalibrateBoundsAndPruning(t *testing.T) {
	x, y := sepData(2000, 11)
	tr, err := Fit(x, y, Config{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	cx, cy := sepData(2000, 13)
	if err := tr.Calibrate(cx, cy, 200, cpBound); err != nil {
		t.Fatal(err)
	}
	for _, leaf := range tr.Leaves() {
		if leaf.CalibCount < 200 {
			t.Errorf("leaf %d kept only %d calibration samples", leaf.LeafID, leaf.CalibCount)
		}
		if math.IsNaN(leaf.Value) || leaf.Value < 0 || leaf.Value > 1 {
			t.Errorf("leaf %d has invalid value %g", leaf.LeafID, leaf.Value)
		}
		// Dependable: the bound must not be below the observed rate.
		rate := float64(leaf.CalibEvents) / float64(leaf.CalibCount)
		if leaf.Value < rate {
			t.Errorf("leaf %d bound %g below observed rate %g", leaf.LeafID, leaf.Value, rate)
		}
	}
	// The clean side of a separable split should provide a low bound.
	v, err := tr.PredictValue([]float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.05 {
		t.Errorf("clean region bound = %g, want < 0.05", v)
	}
	minV, err := tr.MinLeafValue()
	if err != nil {
		t.Fatal(err)
	}
	if minV > v {
		t.Errorf("MinLeafValue %g > observed %g", minV, v)
	}
}

func TestCalibratePrunesEverythingOnTinyCalibSet(t *testing.T) {
	x, y := sepData(500, 17)
	tr, err := Fit(x, y, Config{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	// 250 calibration samples with >=200 per leaf can keep at most one
	// leaf: the tree must collapse to the root.
	cx, cy := sepData(250, 19)
	if err := tr.Calibrate(cx, cy, 200, cpBound); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 1 {
		t.Errorf("leaves = %d, want 1 after aggressive pruning", tr.NumLeaves())
	}
}

func TestCalibrateErrors(t *testing.T) {
	x, y := sepData(100, 23)
	tr, err := Fit(x, y, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Calibrate(nil, nil, 10, cpBound); err == nil {
		t.Error("empty calibration set must fail")
	}
	if err := tr.Calibrate(x, y[:10], 10, cpBound); err == nil {
		t.Error("length mismatch must fail")
	}
	if err := tr.Calibrate([][]float64{{1}}, []bool{true}, 1, cpBound); err == nil {
		t.Error("wrong width calibration rows must fail")
	}
	if err := tr.Calibrate(x, y, len(x)+1, cpBound); err == nil {
		t.Error("min leaf larger than calibration set must fail")
	}
}

func TestRulesAndDOT(t *testing.T) {
	x, y := sepData(400, 29)
	tr, err := Fit(x, y, Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Calibrate(x, y, 50, cpBound); err != nil {
		t.Fatal(err)
	}
	rules := tr.Rules([]string{"rain", "blur"})
	if !strings.Contains(rules, "rain") {
		t.Errorf("rules missing feature name:\n%s", rules)
	}
	if !strings.Contains(rules, "leaf") {
		t.Errorf("rules missing leaves:\n%s", rules)
	}
	dot := tr.DOT(nil)
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "x[0]") {
		t.Errorf("unexpected DOT output:\n%s", dot)
	}
}

func TestFeatureImportance(t *testing.T) {
	x, y := sepData(1000, 31)
	tr, err := Fit(x, y, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance()
	if len(imp) != 2 {
		t.Fatalf("importance length %d", len(imp))
	}
	if imp[0] < 0.9 {
		t.Errorf("informative feature importance %g, want > 0.9", imp[0])
	}
	sum := imp[0] + imp[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %g", sum)
	}
}

func TestFeatureImportanceStump(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := []bool{false, false}
	tr, err := Fit(x, y, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance()
	if imp[0] != 0 {
		t.Errorf("stump importance = %g, want 0", imp[0])
	}
}

func TestEntropyCriterion(t *testing.T) {
	x, y := sepData(500, 37)
	tr, err := Fit(x, y, Config{MaxDepth: 3, Criterion: Entropy})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root().IsLeaf() {
		t.Fatal("entropy tree must split separable data")
	}
	if tr.Root().Feature != 0 {
		t.Errorf("entropy tree splits on %d, want 0", tr.Root().Feature)
	}
}

func TestCriterionString(t *testing.T) {
	if Gini.String() != "gini" || Entropy.String() != "entropy" {
		t.Error("criterion names wrong")
	}
	if !strings.Contains(Criterion(9).String(), "9") {
		t.Error("unknown criterion should include number")
	}
}

// Property: Apply always lands in a valid dense leaf id, and the leaf
// returned by Leaf agrees with Apply.
func TestApplyConsistency(t *testing.T) {
	x, y := sepData(300, 41)
	tr, err := Fit(x, y, Config{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		p := []float64{float64(a) / 65535, float64(b) / 65535}
		id, err := tr.Apply(p)
		if err != nil {
			return false
		}
		leaf, err := tr.Leaf(p)
		if err != nil {
			return false
		}
		return id == leaf.LeafID && id >= 0 && id < tr.NumLeaves()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: leaf training counts partition the training set.
func TestLeafCountsPartition(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := int(rawN%400) + 20
		x, y := sepData(n, seed)
		tr, err := Fit(x, y, Config{MaxDepth: 6})
		if err != nil {
			return false
		}
		total := 0
		for _, leaf := range tr.Leaves() {
			total += leaf.Count
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
