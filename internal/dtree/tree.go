// Package dtree implements the CART decision trees that uncertainty wrappers
// use as quality impact models: binary-outcome trees grown with the gini (or
// entropy) criterion, pruned so that every leaf keeps a minimum number of
// calibration samples, and calibrated with an injected one-sided binomial
// bound so each leaf carries a dependable uncertainty value. Trees stay fully
// transparent: rules can be exported as text or Graphviz DOT and gini feature
// importances are available.
package dtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Criterion selects the impurity measure used during growth.
type Criterion int

const (
	// Gini impurity, the paper's choice ("gini index as an approximation
	// for entropy").
	Gini Criterion = iota + 1
	// Entropy (information gain).
	Entropy
)

// String returns the criterion name.
func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Config controls tree growth.
type Config struct {
	// MaxDepth is the maximum tree depth; the paper uses 8. Zero means
	// depth 1 (a stump is depth 1; a bare root-leaf has depth 0).
	MaxDepth int
	// MinSplitSamples is the minimum number of samples a node needs to be
	// considered for splitting (default 2).
	MinSplitSamples int
	// MinLeafSamples is the minimum number of training samples either
	// child of a split must keep (default 1).
	MinLeafSamples int
	// Criterion is the impurity measure (default Gini).
	Criterion Criterion
	// MinGain is the minimum impurity decrease required to split
	// (default 0, i.e. any strictly positive gain).
	MinGain float64
}

func (c Config) withDefaults() Config {
	if c.MinSplitSamples < 2 {
		c.MinSplitSamples = 2
	}
	if c.MinLeafSamples < 1 {
		c.MinLeafSamples = 1
	}
	if c.Criterion == 0 {
		c.Criterion = Gini
	}
	return c
}

// Node is one node of a fitted tree. Leaves have Left == Right == nil.
type Node struct {
	// Feature is the index of the feature this node splits on (-1 for a
	// leaf).
	Feature int
	// Threshold routes x[Feature] <= Threshold to Left, otherwise Right.
	Threshold float64
	// Left and Right are the child nodes (nil for leaves).
	Left, Right *Node
	// Count and Events are the training-sample count and event (failure)
	// count that reached this node.
	Count, Events int
	// CalibCount and CalibEvents are the calibration-sample statistics
	// assigned by Calibrate.
	CalibCount, CalibEvents int
	// Value is the calibrated uncertainty bound of a leaf (NaN before
	// calibration).
	Value float64
	// LeafID is the dense index of a leaf after (re)numbering, -1 for
	// internal nodes.
	LeafID int
	// Depth is the node depth (root = 0).
	Depth int
	// gain is the impurity decrease achieved by this node's split,
	// weighted by the fraction of training samples reaching the node;
	// used for feature importances.
	gain float64
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Tree is a fitted CART tree for a binary failure event.
type Tree struct {
	root      *Node
	nFeatures int
	nLeaves   int
	cfg       Config
}

// Errors returned by the package.
var (
	ErrEmptyTrainingSet = errors.New("dtree: empty training set")
	ErrShapeMismatch    = errors.New("dtree: feature/label shape mismatch")
	ErrNotCalibrated    = errors.New("dtree: tree is not calibrated")
)

// Fit grows a CART tree on feature matrix x (rows are samples) and binary
// event labels y (true = failure).
func Fit(x [][]float64, y []bool, cfg Config) (*Tree, error) {
	if len(x) == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d labels", ErrShapeMismatch, len(x), len(y))
	}
	nf := len(x[0])
	if nf == 0 {
		return nil, fmt.Errorf("%w: zero features", ErrShapeMismatch)
	}
	for i, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrShapeMismatch, i, len(row), nf)
		}
	}
	cfg = cfg.withDefaults()
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	g := &grower{x: x, y: y, cfg: cfg}
	root := g.grow(idx, 0)
	t := &Tree{root: root, nFeatures: nf, cfg: cfg}
	t.renumberLeaves()
	return t, nil
}

// grower carries the shared growth state.
type grower struct {
	x   [][]float64
	y   []bool
	cfg Config
}

func (g *grower) grow(idx []int, depth int) *Node {
	count := len(idx)
	events := 0
	for _, i := range idx {
		if g.y[i] {
			events++
		}
	}
	n := &Node{
		Feature: -1,
		Count:   count,
		Events:  events,
		Value:   math.NaN(),
		Depth:   depth,
	}
	if depth >= g.cfg.MaxDepth || count < g.cfg.MinSplitSamples || events == 0 || events == count {
		return n
	}
	feat, thr, gain, ok := g.bestSplit(idx, events)
	if !ok || gain <= g.cfg.MinGain {
		return n
	}
	var left, right []int
	for _, i := range idx {
		if g.x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < g.cfg.MinLeafSamples || len(right) < g.cfg.MinLeafSamples {
		return n
	}
	n.Feature = feat
	n.Threshold = thr
	n.gain = gain * float64(count)
	n.Left = g.grow(left, depth+1)
	n.Right = g.grow(right, depth+1)
	return n
}

// bestSplit scans every feature for the threshold with the largest impurity
// decrease. Thresholds are midpoints between consecutive distinct values.
func (g *grower) bestSplit(idx []int, events int) (feature int, threshold, gain float64, ok bool) {
	count := len(idx)
	parentImp := impurity(g.cfg.Criterion, events, count)
	type pair struct {
		v float64
		y bool
	}
	pairs := make([]pair, count)
	bestGain := 0.0
	for f := 0; f < len(g.x[idx[0]]); f++ {
		for j, i := range idx {
			pairs[j] = pair{v: g.x[i][f], y: g.y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		leftEvents := 0
		for j := 0; j < count-1; j++ {
			if pairs[j].y {
				leftEvents++
			}
			if pairs[j].v == pairs[j+1].v {
				continue
			}
			nl := j + 1
			nr := count - nl
			if nl < g.cfg.MinLeafSamples || nr < g.cfg.MinLeafSamples {
				continue
			}
			impL := impurity(g.cfg.Criterion, leftEvents, nl)
			impR := impurity(g.cfg.Criterion, events-leftEvents, nr)
			gn := parentImp - (float64(nl)*impL+float64(nr)*impR)/float64(count)
			if gn > bestGain {
				bestGain = gn
				feature = f
				threshold = (pairs[j].v + pairs[j+1].v) / 2
				ok = true
			}
		}
	}
	return feature, threshold, bestGain, ok
}

// impurity computes the binary impurity of a node with k events out of n.
func impurity(c Criterion, k, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(k) / float64(n)
	switch c {
	case Entropy:
		if p == 0 || p == 1 {
			return 0
		}
		return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	default: // Gini
		return 2 * p * (1 - p)
	}
}

// Leaf returns the leaf node that x falls into.
func (t *Tree) Leaf(x []float64) (*Node, error) {
	if len(x) != t.nFeatures {
		return nil, fmt.Errorf("%w: got %d features, want %d", ErrShapeMismatch, len(x), t.nFeatures)
	}
	n := t.root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n, nil
}

// Apply returns the dense LeafID that x falls into.
func (t *Tree) Apply(x []float64) (int, error) {
	n, err := t.Leaf(x)
	if err != nil {
		return 0, err
	}
	return n.LeafID, nil
}

// PredictValue returns the calibrated uncertainty of the leaf x falls into.
// The tree must have been calibrated first.
func (t *Tree) PredictValue(x []float64) (float64, error) {
	n, err := t.Leaf(x)
	if err != nil {
		return math.NaN(), err
	}
	if math.IsNaN(n.Value) {
		return math.NaN(), ErrNotCalibrated
	}
	return n.Value, nil
}

// TrainRate returns the raw training failure rate of the leaf x falls into
// (useful as an uncalibrated point estimate).
func (t *Tree) TrainRate(x []float64) (float64, error) {
	n, err := t.Leaf(x)
	if err != nil {
		return math.NaN(), err
	}
	if n.Count == 0 {
		return 0, nil
	}
	return float64(n.Events) / float64(n.Count), nil
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return t.nLeaves }

// NumFeatures returns the number of input features.
func (t *Tree) NumFeatures() int { return t.nFeatures }

// Depth returns the maximum depth of the tree.
func (t *Tree) Depth() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if n.IsLeaf() {
			return n.Depth
		}
		return max(walk(n.Left), walk(n.Right))
	}
	return walk(t.root)
}

// Root exposes the root node for read-only inspection (export, tests).
func (t *Tree) Root() *Node { return t.root }

// Leaves returns all leaf nodes in LeafID order.
func (t *Tree) Leaves() []*Node {
	out := make([]*Node, 0, t.nLeaves)
	t.walkLeaves(t.root, func(n *Node) { out = append(out, n) })
	return out
}

func (t *Tree) walkLeaves(n *Node, fn func(*Node)) {
	if n.IsLeaf() {
		fn(n)
		return
	}
	t.walkLeaves(n.Left, fn)
	t.walkLeaves(n.Right, fn)
}

// renumberLeaves assigns dense LeafIDs in left-to-right order.
func (t *Tree) renumberLeaves() {
	id := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			n.LeafID = id
			id++
			return
		}
		n.LeafID = -1
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.root)
	t.nLeaves = id
}
