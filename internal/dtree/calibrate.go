package dtree

import (
	"fmt"
	"math"
)

// BoundFunc computes a one-sided upper confidence bound for k observed
// events out of n trials. internal/stats.BinomialUpperBound curried with a
// method and confidence level satisfies this signature.
type BoundFunc func(k, n int) (float64, error)

// Calibrate assigns the calibration set (x, y) to the leaves, prunes the
// tree bottom-up until every leaf holds at least minLeafSamples calibration
// samples (the paper prunes to >= 200), and then sets each leaf's Value to
// the dependable uncertainty bound(k, n) computed from the calibration
// statistics of that leaf.
func (t *Tree) Calibrate(x [][]float64, y []bool, minLeafSamples int, bound BoundFunc) error {
	if len(x) == 0 {
		return ErrEmptyTrainingSet
	}
	if len(x) != len(y) {
		return fmt.Errorf("%w: %d rows vs %d labels", ErrShapeMismatch, len(x), len(y))
	}
	if minLeafSamples < 1 {
		minLeafSamples = 1
	}
	if minLeafSamples > len(x) {
		return fmt.Errorf("dtree: cannot keep %d samples per leaf with only %d calibration samples: %w",
			minLeafSamples, len(x), ErrShapeMismatch)
	}
	if err := t.assignCalibration(x, y); err != nil {
		return err
	}
	t.pruneToMinCalib(minLeafSamples)
	t.renumberLeaves()
	for _, leaf := range t.Leaves() {
		v, err := bound(leaf.CalibEvents, leaf.CalibCount)
		if err != nil {
			return fmt.Errorf("dtree: calibrating leaf %d: %w", leaf.LeafID, err)
		}
		leaf.Value = v
	}
	return nil
}

// assignCalibration routes every calibration sample down the tree, recording
// per-node counts (internal nodes accumulate too so pruning can collapse a
// subtree into a leaf without re-routing).
func (t *Tree) assignCalibration(x [][]float64, y []bool) error {
	var clear func(n *Node)
	clear = func(n *Node) {
		n.CalibCount, n.CalibEvents = 0, 0
		n.Value = math.NaN()
		if !n.IsLeaf() {
			clear(n.Left)
			clear(n.Right)
		}
	}
	clear(t.root)
	for i, row := range x {
		if len(row) != t.nFeatures {
			return fmt.Errorf("%w: calibration row %d has %d features, want %d",
				ErrShapeMismatch, i, len(row), t.nFeatures)
		}
		n := t.root
		for {
			n.CalibCount++
			if y[i] {
				n.CalibEvents++
			}
			if n.IsLeaf() {
				break
			}
			if row[n.Feature] <= n.Threshold {
				n = n.Left
			} else {
				n = n.Right
			}
		}
	}
	return nil
}

// pruneToMinCalib repeatedly collapses the deepest split that has a child
// leaf with fewer than minSamples calibration samples. Because internal
// nodes already hold the aggregated counts of their subtree, a collapse is a
// local operation.
func (t *Tree) pruneToMinCalib(minSamples int) {
	for {
		target := deepestUnderfilledSplit(t.root, minSamples)
		if target == nil {
			return
		}
		target.Feature = -1
		target.Threshold = 0
		target.Left = nil
		target.Right = nil
		target.gain = 0
	}
}

// deepestUnderfilledSplit returns the deepest internal node with a leaf
// child that is under the calibration minimum, or nil when none remain.
func deepestUnderfilledSplit(n *Node, minSamples int) *Node {
	if n.IsLeaf() {
		return nil
	}
	if d := deepestUnderfilledSplit(n.Left, minSamples); d != nil {
		return d
	}
	if d := deepestUnderfilledSplit(n.Right, minSamples); d != nil {
		return d
	}
	if (n.Left.IsLeaf() && n.Left.CalibCount < minSamples) ||
		(n.Right.IsLeaf() && n.Right.CalibCount < minSamples) {
		return n
	}
	return nil
}

// MinLeafValue returns the smallest calibrated leaf value; it is the lowest
// uncertainty the tree can ever guarantee (the paper's u = 0.0072).
func (t *Tree) MinLeafValue() (float64, error) {
	minV := math.Inf(1)
	for _, leaf := range t.Leaves() {
		if math.IsNaN(leaf.Value) {
			return math.NaN(), ErrNotCalibrated
		}
		minV = math.Min(minV, leaf.Value)
	}
	return minV, nil
}
