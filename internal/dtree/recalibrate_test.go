package dtree

import (
	"testing"
)

// calibratedTree builds a fitted, calibrated tree on the separable fixture.
func calibratedTree(t *testing.T, minLeaf int) *Tree {
	t.Helper()
	x, y := sepData(600, 11)
	tr, err := Fit(x, y, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	cx, cy := sepData(600, 12)
	if err := tr.Calibrate(cx, cy, minLeaf, cpBound); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	tr := calibratedTree(t, 50)
	cl := tr.Clone()
	if cl.NumLeaves() != tr.NumLeaves() || cl.NumFeatures() != tr.NumFeatures() {
		t.Fatalf("clone shape %d/%d, want %d/%d", cl.NumLeaves(), cl.NumFeatures(), tr.NumLeaves(), tr.NumFeatures())
	}
	x, _ := sepData(200, 13)
	for _, row := range x {
		a, err := tr.PredictValue(row)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cl.PredictValue(row)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("clone predicts %g, original %g", b, a)
		}
	}
	// Mutating the clone's leaves must not touch the original.
	before := make([]float64, 0, tr.NumLeaves())
	for _, l := range tr.Leaves() {
		before = append(before, l.Value)
	}
	for _, l := range cl.Leaves() {
		l.Value = 0.5
	}
	for i, l := range tr.Leaves() {
		if l.Value != before[i] {
			t.Fatalf("clone mutation leaked into original leaf %d", l.LeafID)
		}
	}
}

func TestRecalibrateFoldsOnlineEvidence(t *testing.T) {
	tr := calibratedTree(t, 50)
	leaves := tr.Leaves()
	target := leaves[0]
	// Heavy online failure evidence for leaf 0 must raise its bound.
	ev := []LeafEvidence{{LeafID: target.LeafID, Count: 400, Events: 390}}
	nt, deltas, err := tr.Recalibrate(ev, cpBound, RecalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != tr.NumLeaves() {
		t.Fatalf("got %d deltas, want one per leaf (%d)", len(deltas), tr.NumLeaves())
	}
	d := deltas[0]
	if !d.Refreshed {
		t.Fatal("leaf 0 with 400 feedbacks was not refreshed")
	}
	if d.NewValue <= d.OldValue {
		t.Fatalf("390/400 failures must raise the bound: %g -> %g", d.OldValue, d.NewValue)
	}
	// The refreshed leaf stores the combined counts; the bound equals the
	// one computed directly from them.
	nl := nt.Leaves()[0]
	wantN := target.CalibCount + 400
	wantK := target.CalibEvents + 390
	if nl.CalibCount != wantN || nl.CalibEvents != wantK {
		t.Fatalf("combined counts %d/%d, want %d/%d", nl.CalibEvents, nl.CalibCount, wantK, wantN)
	}
	want, err := cpBound(wantK, wantN)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Value != want {
		t.Fatalf("leaf value %g, want bound(%d,%d) = %g", nl.Value, wantK, wantN, want)
	}
	// Leaves without evidence keep their bound exactly.
	for i := 1; i < len(deltas); i++ {
		if deltas[i].Refreshed || deltas[i].NewValue != deltas[i].OldValue {
			t.Fatalf("leaf %d without evidence moved: %+v", deltas[i].LeafID, deltas[i])
		}
	}
	// The original tree is untouched.
	if leaves[0].Value != deltas[0].OldValue {
		t.Fatal("recalibration mutated the source tree")
	}
}

func TestRecalibrateMinLeafEvidenceGuard(t *testing.T) {
	tr := calibratedTree(t, 50)
	ev := []LeafEvidence{
		{LeafID: 0, Count: 10, Events: 9},
	}
	_, deltas, err := tr.Recalibrate(ev, cpBound, RecalibConfig{MinLeafEvidence: 50})
	if err != nil {
		t.Fatal(err)
	}
	if deltas[0].Refreshed {
		t.Fatal("10 feedbacks refreshed a leaf guarded at 50")
	}
	if deltas[0].OnlineCount != 10 || deltas[0].OnlineEvents != 9 {
		t.Fatalf("delta must still report the offered evidence: %+v", deltas[0])
	}
}

func TestRecalibrateDropPriorAndLaplace(t *testing.T) {
	tr := calibratedTree(t, 50)
	ev := []LeafEvidence{{LeafID: 0, Count: 100, Events: 50}}

	nt, _, err := tr.Recalibrate(ev, cpBound, RecalibConfig{DropPrior: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := cpBound(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := nt.Leaves()[0].Value; got != want {
		t.Fatalf("DropPrior bound %g, want bound(50,100) = %g", got, want)
	}

	nt2, _, err := tr.Recalibrate(ev, cpBound, RecalibConfig{DropPrior: true, LaplaceAlpha: 5})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := cpBound(55, 110)
	if err != nil {
		t.Fatal(err)
	}
	if got := nt2.Leaves()[0].Value; got != want2 {
		t.Fatalf("Laplace bound %g, want bound(55,110) = %g", got, want2)
	}
	// Pseudo-counts must not leak into the stored statistics.
	if nl := nt2.Leaves()[0]; nl.CalibCount != 100 || nl.CalibEvents != 50 {
		t.Fatalf("Laplace pseudo-counts leaked into stored stats: %d/%d", nl.CalibEvents, nl.CalibCount)
	}
}

func TestRecalibrateCompounds(t *testing.T) {
	// Recalibrating twice with the accumulators reset in between must equal
	// recalibrating once with the summed evidence.
	tr := calibratedTree(t, 50)
	ev1 := []LeafEvidence{{LeafID: 0, Count: 100, Events: 20}}
	ev2 := []LeafEvidence{{LeafID: 0, Count: 150, Events: 60}}
	step1, _, err := tr.Recalibrate(ev1, cpBound, RecalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	step2, _, err := step1.Recalibrate(ev2, cpBound, RecalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	both, _, err := tr.Recalibrate([]LeafEvidence{{LeafID: 0, Count: 250, Events: 80}}, cpBound, RecalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := step2.Leaves()[0].Value, both.Leaves()[0].Value; a != b {
		t.Fatalf("two-step recalibration %g != one-step %g", a, b)
	}
}

func TestRecalibrateErrors(t *testing.T) {
	tr := calibratedTree(t, 50)
	cases := []struct {
		name string
		ev   []LeafEvidence
		cfg  RecalibConfig
	}{
		{"leaf out of range", []LeafEvidence{{LeafID: tr.NumLeaves(), Count: 1}}, RecalibConfig{}},
		{"negative leaf", []LeafEvidence{{LeafID: -1, Count: 1}}, RecalibConfig{}},
		{"events above count", []LeafEvidence{{LeafID: 0, Count: 2, Events: 3}}, RecalibConfig{}},
		{"negative count", []LeafEvidence{{LeafID: 0, Count: -1}}, RecalibConfig{}},
		{"duplicate leaf", []LeafEvidence{{LeafID: 0, Count: 1}, {LeafID: 0, Count: 2}}, RecalibConfig{}},
		{"negative min evidence", nil, RecalibConfig{MinLeafEvidence: -1}},
		{"negative laplace", nil, RecalibConfig{LaplaceAlpha: -1}},
	}
	for _, tc := range cases {
		if _, _, err := tr.Recalibrate(tc.ev, cpBound, tc.cfg); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, _, err := tr.Recalibrate(nil, nil, RecalibConfig{}); err == nil {
		t.Error("nil bound: no error")
	}
	// An uncalibrated tree cannot be recalibrated.
	x, y := sepData(100, 21)
	raw, err := Fit(x, y, Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := raw.Recalibrate(nil, cpBound, RecalibConfig{}); err == nil {
		t.Error("uncalibrated tree: no error")
	}
}
