package dtree

import (
	"fmt"
	"strings"
)

// Rules renders the tree as an indented, human-auditable rule list. Feature
// names are optional; missing names fall back to x[i]. Transparency of the
// quality impact model is a core property of the uncertainty wrapper
// framework, so this output is part of the public contract.
func (t *Tree) Rules(featureNames []string) string {
	var b strings.Builder
	t.writeRules(&b, t.root, featureNames, 0)
	return b.String()
}

func (t *Tree) writeRules(b *strings.Builder, n *Node, names []string, indent int) {
	pad := strings.Repeat("  ", indent)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%s=> leaf %d: u<=%.6g (train %d/%d, calib %d/%d)\n",
			pad, n.LeafID, n.Value, n.Events, n.Count, n.CalibEvents, n.CalibCount)
		return
	}
	name := featureName(names, n.Feature)
	fmt.Fprintf(b, "%sif %s <= %.6g:\n", pad, name, n.Threshold)
	t.writeRules(b, n.Left, names, indent+1)
	fmt.Fprintf(b, "%selse:  # %s > %.6g\n", pad, name, n.Threshold)
	t.writeRules(b, n.Right, names, indent+1)
}

// DOT renders the tree in Graphviz DOT format.
func (t *Tree) DOT(featureNames []string) string {
	var b strings.Builder
	b.WriteString("digraph QIM {\n  node [shape=box, fontname=\"monospace\"];\n")
	id := 0
	var walk func(n *Node) int
	walk = func(n *Node) int {
		my := id
		id++
		if n.IsLeaf() {
			fmt.Fprintf(&b, "  n%d [label=\"leaf %d\\nu<=%.4g\\ncalib %d/%d\", style=filled, fillcolor=lightgray];\n",
				my, n.LeafID, n.Value, n.CalibEvents, n.CalibCount)
			return my
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s <= %.4g\"];\n", my, featureName(featureNames, n.Feature), n.Threshold)
		l := walk(n.Left)
		r := walk(n.Right)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"yes\"];\n", my, l)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"no\"];\n", my, r)
		return my
	}
	walk(t.root)
	b.WriteString("}\n")
	return b.String()
}

// FeatureImportance returns the normalised gini importance of every feature:
// the total impurity decrease contributed by splits on the feature, summed
// over the tree and normalised to sum to 1 (all zeros for a stump).
func (t *Tree) FeatureImportance() []float64 {
	imp := make([]float64, t.nFeatures)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		imp[n.Feature] += n.gain
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.root)
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

func featureName(names []string, i int) string {
	if i >= 0 && i < len(names) && names[i] != "" {
		return names[i]
	}
	return fmt.Sprintf("x[%d]", i)
}
