package dtree

import (
	"encoding/json"
	"testing"
)

// FuzzLoad hardens tree deserialisation: arbitrary bytes must either load a
// structurally valid tree or fail cleanly — no panics, no cycles, no
// out-of-range routing.
func FuzzLoad(f *testing.F) {
	// Seeds: a real calibrated tree plus characteristic corruptions.
	x, y := sepData(400, 55)
	tr, err := Fit(x, y, Config{MaxDepth: 4})
	if err != nil {
		f.Fatal(err)
	}
	if err := tr.Calibrate(x, y, 50, cpBound); err != nil {
		f.Fatal(err)
	}
	good, err := json.Marshal(tr)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{"num_features":2,"nodes":[{"feature":-1,"left":-1,"right":-1,"value":0.5}]}`))
	f.Add([]byte(`{"num_features":2,"nodes":[{"feature":0,"left":0,"right":0}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(data)
		if err != nil {
			return
		}
		// A loaded tree must route any probe to a valid dense leaf.
		probe := make([]float64, loaded.NumFeatures())
		id, err := loaded.Apply(probe)
		if err != nil {
			t.Fatalf("loaded tree cannot route: %v", err)
		}
		if id < 0 || id >= loaded.NumLeaves() {
			t.Fatalf("leaf id %d outside [0,%d)", id, loaded.NumLeaves())
		}
		// Rule export must not panic either.
		_ = loaded.Rules(nil)
	})
}
