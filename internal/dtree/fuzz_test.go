package dtree

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzLoad hardens tree deserialisation: arbitrary bytes must either load a
// structurally valid tree or fail cleanly — no panics, no cycles, no
// out-of-range routing.
func FuzzLoad(f *testing.F) {
	// Seeds: a real calibrated tree plus characteristic corruptions.
	x, y := sepData(400, 55)
	tr, err := Fit(x, y, Config{MaxDepth: 4})
	if err != nil {
		f.Fatal(err)
	}
	if err := tr.Calibrate(x, y, 50, cpBound); err != nil {
		f.Fatal(err)
	}
	good, err := json.Marshal(tr)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{"num_features":2,"nodes":[{"feature":-1,"left":-1,"right":-1,"value":0.5}]}`))
	f.Add([]byte(`{"num_features":2,"nodes":[{"feature":0,"left":0,"right":0}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(data)
		if err != nil {
			return
		}
		// A loaded tree must route any probe to a valid dense leaf.
		probe := make([]float64, loaded.NumFeatures())
		id, err := loaded.Apply(probe)
		if err != nil {
			t.Fatalf("loaded tree cannot route: %v", err)
		}
		if id < 0 || id >= loaded.NumLeaves() {
			t.Fatalf("leaf id %d outside [0,%d)", id, loaded.NumLeaves())
		}
		// Rule export must not panic either.
		_ = loaded.Rules(nil)
	})
}

// FuzzCompile is the Compile round-trip target: any tree that loads must
// compile, and the compiled form must agree with the pointer tree on routing
// and values for arbitrary probes — including probes derived from the fuzzed
// bytes themselves, which exercises threshold boundaries, NaN, and ±Inf.
func FuzzCompile(f *testing.F) {
	x, y := sepData(400, 55)
	tr, err := Fit(x, y, Config{MaxDepth: 4})
	if err != nil {
		f.Fatal(err)
	}
	if err := tr.Calibrate(x, y, 50, cpBound); err != nil {
		f.Fatal(err)
	}
	good, err := json.Marshal(tr)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good, 0.25, 0.75)
	f.Add(good, math.NaN(), math.Inf(1))
	f.Add([]byte(`{"num_features":1,"nodes":[{"feature":-1,"left":-1,"right":-1,"value":0.5}]}`), 0.0, 0.0)

	f.Fuzz(func(t *testing.T, data []byte, p0, p1 float64) {
		loaded, err := Load(data)
		if err != nil {
			return
		}
		c := loaded.Compile()
		if c.NumLeaves() != loaded.NumLeaves() || c.NumFeatures() != loaded.NumFeatures() {
			t.Fatalf("compiled shape %d/%d, tree %d/%d",
				c.NumLeaves(), c.NumFeatures(), loaded.NumLeaves(), loaded.NumFeatures())
		}
		probe := make([]float64, loaded.NumFeatures())
		for i := range probe {
			if i%2 == 0 {
				probe[i] = p0
			} else {
				probe[i] = p1
			}
		}
		wantID, err := loaded.Apply(probe)
		if err != nil {
			t.Fatalf("pointer tree cannot route: %v", err)
		}
		gotID, err := c.Apply(probe)
		if err != nil {
			t.Fatalf("compiled tree cannot route: %v", err)
		}
		if wantID != gotID {
			t.Fatalf("leaf %d vs compiled %d for probe %v", wantID, gotID, probe)
		}
		wantV, errW := loaded.PredictValue(probe)
		gotV, errG := c.PredictValue(probe)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("value errors diverge: %v vs %v", errW, errG)
		}
		if errW == nil && wantV != gotV {
			t.Fatalf("value %g vs compiled %g", wantV, gotV)
		}
	})
}
