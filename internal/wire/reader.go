package wire

import (
	"fmt"
	"io"
)

// Reader decodes frames from a byte stream into zero-copy payload views.
// It owns one growable buffer: complete frames already buffered are served
// without touching the underlying reader, which is what lets a server
// coalesce responses (flush only when Buffered() == 0, i.e. the client is
// about to wait) and lets a drain deadline interrupt only idle connections,
// never frames already received.
type Reader struct {
	r   io.Reader
	buf []byte
	// buf[start:end] holds unconsumed bytes; the frame returned by Next
	// occupies buf[start-frameLen:start] until the following Next call.
	start, end int
}

// NewReader wraps r, reusing buf as the initial window when non-nil (the
// pooling hook: a connection handler checks one scratch buffer out per
// connection, not per frame).
func NewReader(r io.Reader, buf []byte) *Reader {
	if cap(buf) < HeaderSize {
		buf = make([]byte, 4096)
	}
	return &Reader{r: r, buf: buf[:cap(buf)]}
}

// Buffer returns the reader's current buffer for re-pooling after the
// stream ends.
func (fr *Reader) Buffer() []byte { return fr.buf }

// Buffered reports how many unconsumed bytes sit in the buffer. Zero means
// the next frame needs a fresh read from the stream — the peer has nothing
// else in flight, so now is the moment to flush pending responses.
func (fr *Reader) Buffered() int { return fr.end - fr.start }

// fill reads more bytes until at least need are buffered, compacting or
// growing the buffer as required.
func (fr *Reader) fill(need int) error {
	if fr.end-fr.start >= need {
		return nil
	}
	if fr.start > 0 && (len(fr.buf)-fr.start < need || fr.start > len(fr.buf)/2) {
		copy(fr.buf, fr.buf[fr.start:fr.end])
		fr.end -= fr.start
		fr.start = 0
	}
	if need > len(fr.buf) {
		grown := make([]byte, roundUp(need))
		copy(grown, fr.buf[fr.start:fr.end])
		fr.end -= fr.start
		fr.start = 0
		fr.buf = grown
	}
	for fr.end-fr.start < need {
		n, err := fr.r.Read(fr.buf[fr.end:])
		fr.end += n
		if err != nil {
			if err == io.EOF && fr.end-fr.start >= need {
				return nil
			}
			if err == io.EOF && fr.end > fr.start {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

func roundUp(n int) int {
	size := 4096
	for size < n {
		size *= 2
	}
	return size
}

// Next returns the next frame. The payload aliases the internal buffer and
// is valid only until the following Next call. Header violations (bad
// version, non-zero flags or reserved byte, oversized length) are returned
// as errors: the stream cannot be trusted past them, so the connection
// should be closed.
func (fr *Reader) Next() (Frame, error) {
	if err := fr.fill(HeaderSize); err != nil {
		return Frame{}, err
	}
	h := fr.buf[fr.start:]
	n := int(getU32(h))
	if n < headerAfterLen {
		return Frame{}, fmt.Errorf("wire: frame length %d below header size", n)
	}
	if n-headerAfterLen > MaxPayload {
		return Frame{}, ErrTooLarge
	}
	if v := h[4]; v != Version {
		return Frame{}, fmt.Errorf("wire: protocol version %d, want %d", v, Version)
	}
	if h[6] != 0 || h[7] != 0 {
		return Frame{}, fmt.Errorf("wire: non-zero flags/reserved (%d/%d) in version %d frame", h[6], h[7], Version)
	}
	total := 4 + n
	if err := fr.fill(total); err != nil {
		return Frame{}, err
	}
	h = fr.buf[fr.start:]
	f := Frame{
		Type:    h[5],
		ReqID:   getU32(h[8:]),
		Payload: h[HeaderSize:total:total],
	}
	fr.start += total
	return f, nil
}
