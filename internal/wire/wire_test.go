package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/iotest"
)

// buildFrame renders one complete frame for the reader tests.
func buildFrame(typ byte, reqID uint32, payload []byte) []byte {
	buf, lenOff := BeginFrame(nil, typ, reqID)
	buf = append(buf, payload...)
	return EndFrame(buf, lenOff)
}

func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	stream = append(stream, buildFrame(FrameStep, 7, []byte("alpha"))...)
	stream = append(stream, buildFrame(FrameHello, 0, nil)...)
	stream = append(stream, buildFrame(FrameError, 0xFFFFFFFF, []byte{1, 2, 3})...)

	fr := NewReader(bytes.NewReader(stream), nil)
	want := []Frame{
		{Type: FrameStep, ReqID: 7, Payload: []byte("alpha")},
		{Type: FrameHello, ReqID: 0, Payload: []byte{}},
		{Type: FrameError, ReqID: 0xFFFFFFFF, Payload: []byte{1, 2, 3}},
	}
	for i, w := range want {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != w.Type || f.ReqID != w.ReqID || !bytes.Equal(f.Payload, w.Payload) {
			t.Fatalf("frame %d = %+v, want %+v", i, f, w)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestReaderSplitReads drips the stream one byte at a time: frame boundaries
// never align with read boundaries, so every fill/compact path runs.
func TestReaderSplitReads(t *testing.T) {
	var stream []byte
	for i := 0; i < 50; i++ {
		stream = append(stream, buildFrame(FrameStep, uint32(i), bytes.Repeat([]byte{byte(i)}, i*7%97))...)
	}
	fr := NewReader(iotest.OneByteReader(bytes.NewReader(stream)), nil)
	for i := 0; i < 50; i++ {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.ReqID != uint32(i) || len(f.Payload) != i*7%97 {
			t.Fatalf("frame %d: reqID %d payload %d bytes", i, f.ReqID, len(f.Payload))
		}
	}
}

// TestReaderGrowth feeds a frame larger than the initial buffer so the
// reader must grow, then a small one to confirm the stream stays aligned.
func TestReaderGrowth(t *testing.T) {
	big := bytes.Repeat([]byte{0xAB}, 100<<10)
	var stream []byte
	stream = append(stream, buildFrame(FrameStepBatch, 1, big)...)
	stream = append(stream, buildFrame(FrameStep, 2, []byte("tail"))...)
	fr := NewReader(bytes.NewReader(stream), make([]byte, 4096))
	f, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Payload, big) {
		t.Fatalf("big payload corrupted: %d bytes", len(f.Payload))
	}
	f, err = fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Payload) != "tail" {
		t.Fatalf("tail payload = %q", f.Payload)
	}
}

func TestReaderHeaderViolations(t *testing.T) {
	valid := buildFrame(FrameStep, 1, []byte("x"))
	corrupt := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), valid...)
		mutate(b)
		return b
	}
	cases := []struct {
		name   string
		stream []byte
		want   string
	}{
		{"length below header", corrupt(func(b []byte) { putU32(b, 3) }), "below header size"},
		{"oversized length", corrupt(func(b []byte) { putU32(b, MaxPayload+headerAfterLen+1) }), ErrTooLarge.Error()},
		{"wrong version", corrupt(func(b []byte) { b[4] = 9 }), "protocol version 9"},
		{"non-zero flags", corrupt(func(b []byte) { b[6] = 1 }), "non-zero flags"},
		{"non-zero reserved", corrupt(func(b []byte) { b[7] = 0x80 }), "non-zero flags"},
		{"truncated header", valid[:6], io.ErrUnexpectedEOF.Error()},
		{"truncated payload", valid[:len(valid)-1], io.ErrUnexpectedEOF.Error()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := NewReader(bytes.NewReader(tc.stream), nil)
			_, err := fr.Next()
			if err == nil {
				t.Fatal("corrupt frame accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q, want it to mention %q", err, tc.want)
			}
		})
	}
}

// ---------------------------------------------------------------- codec --

// truncationSweep checks that a decoder errors (never panics, never
// succeeds) on every strict prefix of a valid payload.
func truncationSweep(t *testing.T, payload []byte, decode func([]byte) error) {
	t.Helper()
	for n := 0; n < len(payload); n++ {
		if err := decode(payload[:n]); err == nil {
			t.Fatalf("decoder accepted %d of %d payload bytes", n, len(payload))
		}
	}
	if err := decode(payload); err != nil {
		t.Fatalf("full payload rejected: %v", err)
	}
}

func TestErrorPayloadRoundTrip(t *testing.T) {
	p := AppendErrorPayload(nil, StatusConflict, "duplicate feedback")
	status, msg, err := DecodeErrorPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusConflict || msg != "duplicate feedback" {
		t.Fatalf("decoded %d %q", status, msg)
	}
	truncationSweep(t, p, func(b []byte) error {
		_, _, err := DecodeErrorPayload(b)
		return err
	})
}

func TestHelloRoundTrip(t *testing.T) {
	want := Hello{Levels: []string{"accept", "advisory-only", "ignore-reading", "handover"}}
	p, err := AppendHelloPayload(nil, &want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHelloPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded %+v", got)
	}
	truncationSweep(t, p, func(b []byte) error {
		_, err := DecodeHelloPayload(b)
		return err
	})
}

func TestSeriesIDRoundTrip(t *testing.T) {
	p := AppendSeriesIDPayload(nil, "s-0042")
	id, err := DecodeSeriesIDPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(id) != "s-0042" {
		t.Fatalf("decoded %q", id)
	}
	truncationSweep(t, p, func(b []byte) error {
		_, err := DecodeSeriesIDPayload(b)
		return err
	})
	// Trailing garbage is rejected too: the payload is exactly the id.
	if _, err := DecodeSeriesIDPayload(append(p, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestStepItemRoundTrip(t *testing.T) {
	quality := []float64{0, 0.25, 1, math.Pi, -3.5}
	p, err := AppendStepItem(nil, "series-9", -14, quality)
	if err != nil {
		t.Fatal(err)
	}
	v, rest, err := DecodeStepItemView(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if string(v.SeriesID) != "series-9" || v.Outcome != -14 || v.NumQuality() != len(quality) {
		t.Fatalf("decoded id=%q outcome=%d nq=%d", v.SeriesID, v.Outcome, v.NumQuality())
	}
	for i, q := range quality {
		if v.QualityAt(i) != q {
			t.Fatalf("quality[%d] = %g, want %g", i, v.QualityAt(i), q)
		}
	}
	truncationSweep(t, p, func(b []byte) error {
		_, _, err := DecodeStepItemView(b)
		return err
	})
}

func TestStepResultRoundTrip(t *testing.T) {
	levels := []string{"accept", "handover"}
	want := StepResult{
		Fused: 14, Uncertainty: 0.03125, StatelessU: 0.5,
		SeriesLen: 17, TotalSteps: 1 << 40, ModelVersion: 3,
		Countermeasure: "handover", Accepted: false,
	}
	p := AppendStepResultPayload(nil, &want, 1)
	var got StepResult
	rest, err := DecodeStepResultPayload(p, &got, levels)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if got != want {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
	// A level index outside the hello table is a protocol error, not an
	// out-of-bounds read.
	bad := AppendStepResultPayload(nil, &want, 7)
	if _, err := DecodeStepResultPayload(bad, &got, levels); err == nil {
		t.Fatal("out-of-table level index accepted")
	}
	truncationSweep(t, p, func(b []byte) error {
		var r StepResult
		_, err := DecodeStepResultPayload(b, &r, levels)
		return err
	})
}

func TestBatchItemResultRoundTrip(t *testing.T) {
	levels := []string{"accept"}
	ok := StepResult{Fused: 3, Uncertainty: 0.1, Countermeasure: "accept", Accepted: true}
	var p []byte
	p, err := AppendBatchHeader(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	p = AppendBatchItemResult(p, StatusOK, &ok, 0, "")
	p = AppendBatchItemResult(p, StatusNotFound, nil, 0, `unknown series "ghost"`)

	n, rest, err := DecodeBatchHeader(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("batch count %d", n)
	}
	var items [2]BatchItemResult
	// Poison the reused structs: a decode must fully overwrite them.
	items[0] = BatchItemResult{Status: 999, Err: "stale", Step: StepResult{Fused: -1}}
	items[1] = BatchItemResult{Status: 999, Step: StepResult{Fused: -1, Countermeasure: "stale"}}
	for i := range items {
		if rest, err = DecodeBatchItemResult(rest, &items[i], levels); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if items[0].Status != StatusOK || items[0].Err != "" || items[0].Step != ok {
		t.Fatalf("item 0 = %+v", items[0])
	}
	if items[1].Status != StatusNotFound || items[1].Err != `unknown series "ghost"` || items[1].Step != (StepResult{}) {
		t.Fatalf("item 1 = %+v", items[1])
	}
	truncationSweep(t, p[2:], func(b []byte) error {
		var it BatchItemResult
		rest := b
		var err error
		for i := 0; i < 2; i++ {
			if rest, err = DecodeBatchItemResult(rest, &it, levels); err != nil {
				return err
			}
		}
		return nil
	})

	if _, err := AppendBatchHeader(nil, MaxBatchItems+1); err == nil {
		t.Fatal("oversized batch header accepted")
	}
}

func TestFeedbackRoundTrip(t *testing.T) {
	req, err := AppendFeedbackRequestPayload(nil, "s1", 42, -3)
	if err != nil {
		t.Fatal(err)
	}
	id, step, truth, err := DecodeFeedbackRequestPayload(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(id) != "s1" || step != 42 || truth != -3 {
		t.Fatalf("decoded %q %d %d", id, step, truth)
	}
	truncationSweep(t, req, func(b []byte) error {
		_, _, _, err := DecodeFeedbackRequestPayload(b)
		return err
	})

	want := FeedbackResult{
		Step: 42, Correct: true, FusedOutcome: -3, Uncertainty: 0.25,
		TAQIMLeaf: 5, ModelVersion: 2, DriftAlarm: true,
	}
	resp := AppendFeedbackResultPayload(nil, &want)
	var got FeedbackResult
	if err := DecodeFeedbackResultPayload(resp, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
	truncationSweep(t, resp, func(b []byte) error {
		var r FeedbackResult
		return DecodeFeedbackResultPayload(b, &r)
	})
}

// ---------------------------------------------------------------- client --

// scriptedPeer is a minimal in-memory wire server for client tests: it
// answers hello with the given ladder and hands every other frame to
// respond, which appends complete response frames to out.
func scriptedPeer(t *testing.T, conn net.Conn, levels []string, respond func(f Frame, out []byte) []byte) {
	t.Helper()
	go func() {
		defer conn.Close()
		fr := NewReader(conn, nil)
		var out []byte
		for {
			f, err := fr.Next()
			if err != nil {
				return
			}
			out = out[:0]
			if f.Type == FrameHello {
				var lenOff int
				out, lenOff = BeginFrame(out, ResponseType(FrameHello), f.ReqID)
				out, err = AppendHelloPayload(out, &Hello{Levels: levels})
				if err != nil {
					t.Error(err)
					return
				}
				out = EndFrame(out, lenOff)
			} else {
				out = respond(f, out)
			}
			if len(out) > 0 {
				if _, err := conn.Write(out); err != nil {
					return
				}
			}
		}
	}()
}

var testLevels = []string{"accept", "advisory-only", "handover"}

func TestClientRoundTrip(t *testing.T) {
	cs, ss := net.Pipe()
	scriptedPeer(t, ss, testLevels, func(f Frame, out []byte) []byte {
		var lenOff int
		switch f.Type {
		case FrameOpenSeries:
			out, lenOff = BeginFrame(out, ResponseType(FrameOpenSeries), f.ReqID)
			out = AppendSeriesIDPayload(out, "s-1")
		case FrameStep:
			v, rest, err := DecodeStepItemView(f.Payload)
			if err != nil || len(rest) != 0 {
				t.Errorf("step decode: %v (%d trailing)", err, len(rest))
			}
			out, lenOff = BeginFrame(out, ResponseType(FrameStep), f.ReqID)
			out = AppendStepResultPayload(out, &StepResult{
				Fused: v.Outcome, Uncertainty: v.QualityAt(0),
				SeriesLen: 1, TotalSteps: 1, ModelVersion: 1, Accepted: true,
			}, 0)
		case FrameStepBatch:
			n, rest, err := DecodeBatchHeader(f.Payload)
			if err != nil {
				t.Errorf("batch decode: %v", err)
			}
			out, lenOff = BeginFrame(out, ResponseType(FrameStepBatch), f.ReqID)
			out, _ = AppendBatchHeader(out, n)
			for i := 0; i < n; i++ {
				var v StepItemView
				if v, rest, err = DecodeStepItemView(rest); err != nil {
					t.Errorf("batch item %d: %v", i, err)
				}
				if string(v.SeriesID) == "ghost" {
					out = AppendBatchItemResult(out, StatusNotFound, nil, 0, `unknown series "ghost"`)
					continue
				}
				out = AppendBatchItemResult(out, StatusOK, &StepResult{Fused: v.Outcome, Accepted: true}, 2, "")
			}
		case FrameFeedback:
			_, step, truth, err := DecodeFeedbackRequestPayload(f.Payload)
			if err != nil {
				t.Errorf("feedback decode: %v", err)
			}
			out, lenOff = BeginFrame(out, ResponseType(FrameFeedback), f.ReqID)
			out = AppendFeedbackResultPayload(out, &FeedbackResult{
				Step: step, Correct: true, FusedOutcome: truth, ModelVersion: 1,
			})
		case FrameCloseSeries:
			out, lenOff = BeginFrame(out, ResponseType(FrameCloseSeries), f.ReqID)
		default:
			t.Errorf("unexpected frame type %#x", f.Type)
			return out
		}
		return EndFrame(out, lenOff)
	})

	c, err := NewClient(cs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !reflect.DeepEqual(c.Levels(), testLevels) {
		t.Fatalf("levels = %v", c.Levels())
	}

	id, err := c.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	if id != "s-1" {
		t.Fatalf("series id %q", id)
	}

	var res StepResult
	if err := c.Step(id, 14, []float64{0.125, 0, 1}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Fused != 14 || res.Uncertainty != 0.125 || res.Countermeasure != "accept" || !res.Accepted {
		t.Fatalf("step result %+v", res)
	}

	items := []StepRequest{
		{SeriesID: id, Outcome: 1, Quality: []float64{0.5}},
		{SeriesID: "ghost", Outcome: 2, Quality: []float64{0.5}},
	}
	out := make([]BatchItemResult, 2)
	if err := c.StepBatch(items, out); err != nil {
		t.Fatal(err)
	}
	if out[0].Status != StatusOK || out[0].Step.Fused != 1 || out[0].Step.Countermeasure != "handover" {
		t.Fatalf("batch item 0 %+v", out[0])
	}
	if out[1].Status != StatusNotFound || out[1].Err != `unknown series "ghost"` {
		t.Fatalf("batch item 1 %+v", out[1])
	}

	var fb FeedbackResult
	if err := c.Feedback(id, 1, 14, &fb); err != nil {
		t.Fatal(err)
	}
	if fb.Step != 1 || fb.FusedOutcome != 14 || !fb.Correct {
		t.Fatalf("feedback result %+v", fb)
	}

	if err := c.CloseSeries(id); err != nil {
		t.Fatal(err)
	}
}

// TestClientPipelined drives many concurrent callers over one connection:
// the peer answers with each request's own outcome, so any response
// misrouting (request-id bookkeeping, buffer aliasing) shows up as a wrong
// field, and the race detector watches the write-combining path.
func TestClientPipelined(t *testing.T) {
	cs, ss := net.Pipe()
	scriptedPeer(t, ss, testLevels, func(f Frame, out []byte) []byte {
		v, _, err := DecodeStepItemView(f.Payload)
		if err != nil {
			t.Errorf("step decode: %v", err)
		}
		out, lenOff := BeginFrame(out, ResponseType(FrameStep), f.ReqID)
		out = AppendStepResultPayload(out, &StepResult{
			Fused: v.Outcome, TotalSteps: v.Outcome, Accepted: true,
		}, 0)
		return EndFrame(out, lenOff)
	})
	c, err := NewClient(cs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const callers, steps = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			quality := []float64{0.1}
			var res StepResult
			for i := 0; i < steps; i++ {
				outcome := g*steps + i + 1
				if err := c.Step("s", outcome, quality, &res); err != nil {
					t.Errorf("caller %d step %d: %v", g, i, err)
					return
				}
				if res.Fused != outcome || res.TotalSteps != outcome {
					t.Errorf("caller %d step %d: got fused=%d total=%d, want %d",
						g, i, res.Fused, res.TotalSteps, outcome)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestClientServerErrorFrame(t *testing.T) {
	cs, ss := net.Pipe()
	scriptedPeer(t, ss, testLevels, func(f Frame, out []byte) []byte {
		out, lenOff := BeginFrame(out, FrameError, f.ReqID)
		out = AppendErrorPayload(out, StatusNotFound, `unknown series "nope"`)
		return EndFrame(out, lenOff)
	})
	c, err := NewClient(cs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var res StepResult
	err = c.Step("nope", 1, []float64{0}, &res)
	var werr *Error
	if !errors.As(err, &werr) {
		t.Fatalf("error %T %v, want *wire.Error", err, err)
	}
	if werr.Status != StatusNotFound || werr.Msg != `unknown series "nope"` {
		t.Fatalf("error %+v", werr)
	}
	// The connection survives an error frame: the next call still works if
	// the peer answers it.
}

// TestClientConnectionLoss kills the peer mid-call: the blocked caller and
// all subsequent calls must fail instead of hanging.
func TestClientConnectionLoss(t *testing.T) {
	cs, ss := net.Pipe()
	scriptedPeer(t, ss, testLevels, func(f Frame, out []byte) []byte {
		ss.Close() // die instead of answering
		return nil
	})
	c, err := NewClient(cs)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var res StepResult
	if err := c.Step("s", 1, []float64{0}, &res); err == nil {
		t.Fatal("step succeeded over a dead connection")
	}
	if _, err := c.OpenSeries(); err == nil {
		t.Fatal("open-series succeeded after connection loss")
	}
}

func TestClientClosed(t *testing.T) {
	cs, ss := net.Pipe()
	scriptedPeer(t, ss, testLevels, func(f Frame, out []byte) []byte { return nil })
	c, err := NewClient(cs)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	var res StepResult
	if err := c.Step("s", 1, []float64{0}, &res); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("error %v, want ErrClientClosed", err)
	}
}
