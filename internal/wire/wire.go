// Package wire is the binary streaming transport of the serving layer: a
// length-prefixed frame protocol over a persistent TCP connection, for
// deployments where the JSON endpoints' per-request HTTP overhead (~60× the
// actual uncertainty computation in BENCH_5) dominates. Frames are pipelined
// — a client keeps many requests in flight and the server answers in
// whatever order it processes them, correlated by request id — and both
// sides reuse pooled buffers, so the steady-state path allocates nothing
// per frame.
//
// Frame layout (all integers little-endian, no encoding/binary reflection):
//
//	offset  size  field
//	0       4     payload length N = frame bytes after this prefix (>= 8)
//	4       1     protocol version (Version)
//	5       1     frame type
//	6       1     flags (must be 0 in version 1)
//	7       1     reserved (must be 0)
//	8       4     request id (echoed verbatim in the response frame)
//	12      N-8   payload (shape per frame type, see codec.go)
//
// Request frame types are small integers; the matching response sets the
// high bit (type | 0x80). FrameError answers any request that failed, with
// an HTTP-aligned status code so the two transports share one error
// vocabulary. A connection starts with a Hello exchange: the response
// carries the simplex countermeasure ladder, so step responses can name the
// selected countermeasure as a one-byte index into that table instead of a
// string per frame.
//
//tauw:codec
package wire

import (
	"errors"
	"fmt"
)

// Version is the protocol version byte; a server rejects frames carrying
// any other value (the versioning escape hatch for incompatible layouts).
const Version = 1

// HeaderSize is the fixed byte count before the payload (length prefix
// included); headerAfterLen is the part covered by the length prefix.
const (
	HeaderSize     = 12
	headerAfterLen = 8
)

// Frame types. Responses echo the request type with the high bit set.
const (
	FrameHello       byte = 1
	FrameOpenSeries  byte = 2
	FrameStep        byte = 3
	FrameStepBatch   byte = 4
	FrameFeedback    byte = 5
	FrameCloseSeries byte = 6

	// FrameError answers any request that failed as a whole; its payload
	// carries a status code and message (see AppendErrorPayload).
	FrameError byte = 0xFF

	// responseBit marks a frame as the response to the same-type request.
	responseBit byte = 0x80
)

// ResponseType maps a request frame type to its response type.
func ResponseType(req byte) byte { return req | responseBit }

// MaxPayload caps one frame's payload, aligned with the JSON batch
// endpoint's body cap: a hostile length prefix is rejected before any
// allocation sized by it.
const MaxPayload = 16 << 20

// MaxBatchItems caps one step-batch frame, matching the JSON batch
// endpoint's item cap so a client can switch transports without resizing
// its batches.
const MaxBatchItems = 4096

// Statuses carried by FrameError and per-item batch results mirror the
// HTTP endpoints' codes, so clients translate failures identically on both
// transports.
const (
	StatusOK             = 200
	StatusBadRequest     = 400
	StatusNotFound       = 404
	StatusConflict       = 409
	StatusGone           = 410
	StatusTooLarge       = 413
	StatusInternal       = 500
	StatusNotImplemented = 501
	StatusUnavailable    = 503
)

// Error is a failed request as reported by the server.
type Error struct {
	Status int
	Msg    string
}

func (e *Error) Error() string { return fmt.Sprintf("wire: status %d: %s", e.Status, e.Msg) }

// ErrTooLarge is returned when a frame's length prefix exceeds MaxPayload.
var ErrTooLarge = errors.New("wire: frame exceeds max payload")

// errShortPayload fails a payload decode that ran out of bytes.
var errShortPayload = errors.New("wire: truncated payload")

// ---------------------------------------------------------------- little-endian --

// The hand-rolled put/get helpers keep the codec free of encoding/binary's
// interface boxing; all bounds checks are the callers' (appends grow,
// decodes length-check before reading).

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU16(b []byte) uint16 {
	_ = b[1]
	return uint16(b[0]) | uint16(b[1])<<8
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// ---------------------------------------------------------------- framing --

// BeginFrame appends a frame header for the given type and request id and
// returns the grown buffer plus the offset of the length prefix; the caller
// appends the payload and then calls EndFrame with that offset. Frames
// under construction nest freely in one buffer as long as Begin/End pair up
// innermost-first (the transport only ever builds them sequentially).
//
//tauw:hotpath
func BeginFrame(dst []byte, typ byte, reqID uint32) ([]byte, int) {
	lenOff := len(dst)
	dst = appendU32(dst, 0) // patched by EndFrame
	dst = append(dst, Version, typ, 0, 0)
	dst = appendU32(dst, reqID)
	return dst, lenOff
}

// EndFrame patches the length prefix of the frame begun at lenOff.
//
//tauw:hotpath
func EndFrame(dst []byte, lenOff int) []byte {
	putU32(dst[lenOff:], uint32(len(dst)-lenOff-4))
	return dst
}

// Frame is one decoded frame. Payload aliases the reader's buffer and is
// valid only until the next Next call.
type Frame struct {
	Type    byte
	ReqID   uint32
	Payload []byte
}

// AppendErrorPayload renders a FrameError payload: u16 status, u16 message
// length, message bytes (truncated to fit the length field).
func AppendErrorPayload(dst []byte, status int, msg string) []byte {
	if len(msg) > 0xFFFF {
		msg = msg[:0xFFFF]
	}
	dst = appendU16(dst, uint16(status))
	dst = appendU16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// DecodeErrorPayload parses a FrameError payload.
func DecodeErrorPayload(p []byte) (status int, msg string, err error) {
	if len(p) < 4 {
		return 0, "", errShortPayload
	}
	n := int(getU16(p[2:]))
	if len(p) < 4+n {
		return 0, "", errShortPayload
	}
	return int(getU16(p)), string(p[4 : 4+n]), nil
}
