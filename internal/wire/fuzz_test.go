package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReaderNext feeds arbitrary bytes through the frame reader: it must
// never panic, never return a payload inconsistent with the header it
// decoded, and always terminate (every error path ends the stream).
func FuzzReaderNext(f *testing.F) {
	f.Add(buildFrame(FrameStep, 1, []byte("payload")))
	f.Add(buildFrame(FrameHello, 0, nil))
	multi := append(buildFrame(FrameOpenSeries, 2, nil), buildFrame(FrameError, 3, AppendErrorPayload(nil, StatusNotFound, "x"))...)
	f.Add(multi)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 3, 0, 0})
	f.Add([]byte{8, 0, 0, 0, 2, 3, 0, 0, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewReader(bytes.NewReader(data), nil)
		consumed := 0
		for {
			frame, err := fr.Next()
			if err != nil {
				if err == io.EOF && consumed != len(data) {
					t.Fatalf("clean EOF after %d of %d bytes", consumed, len(data))
				}
				return
			}
			if len(frame.Payload) > MaxPayload {
				t.Fatalf("payload %d bytes exceeds MaxPayload", len(frame.Payload))
			}
			consumed += HeaderSize + len(frame.Payload)
			if consumed > len(data) {
				t.Fatalf("consumed %d of %d input bytes", consumed, len(data))
			}
		}
	})
}

// FuzzDecodePayloads runs every payload decoder over arbitrary bytes: none
// may panic or read out of bounds, whatever the input.
func FuzzDecodePayloads(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendErrorPayload(nil, StatusInternal, "boom"))
	hello, _ := AppendHelloPayload(nil, &Hello{Levels: []string{"accept", "handover"}})
	f.Add(hello)
	f.Add(AppendSeriesIDPayload(nil, "s-1"))
	item, _ := AppendStepItem(nil, "s-1", 14, []float64{0, 0.5, 1})
	f.Add(item)
	f.Add(AppendStepResultPayload(nil, &StepResult{Fused: 3, Accepted: true}, 1))
	fbReq, _ := AppendFeedbackRequestPayload(nil, "s-1", 7, 14)
	f.Add(fbReq)
	f.Add(AppendFeedbackResultPayload(nil, &FeedbackResult{Step: 7, Correct: true}))
	batch, _ := AppendBatchHeader(nil, 2)
	batch = AppendBatchItemResult(batch, StatusOK, &StepResult{}, 0, "")
	batch = AppendBatchItemResult(batch, StatusNotFound, nil, 0, "missing")
	f.Add(batch)

	f.Fuzz(func(t *testing.T, data []byte) {
		levels := []string{"accept", "advisory-only", "handover"}
		_, _, _ = DecodeErrorPayload(data)
		_, _ = DecodeHelloPayload(data)
		_, _ = DecodeSeriesIDPayload(data)
		_, _, _, _ = DecodeFeedbackRequestPayload(data)
		var fb FeedbackResult
		_ = DecodeFeedbackResultPayload(data, &fb)
		var sr StepResult
		_, _ = DecodeStepResultPayload(data, &sr, levels)

		// Step items and batch results concatenate; walk until an error,
		// guarding against decoders that fail to consume input.
		rest := data
		for len(rest) > 0 {
			v, next, err := DecodeStepItemView(rest)
			if err != nil {
				break
			}
			for i := 0; i < v.NumQuality(); i++ {
				_ = v.QualityAt(i)
			}
			if len(next) >= len(rest) {
				t.Fatalf("step item decode consumed nothing (%d -> %d bytes)", len(rest), len(next))
			}
			rest = next
		}
		if n, p, err := DecodeBatchHeader(data); err == nil {
			var item BatchItemResult
			for i := 0; i < n; i++ {
				prev := len(p)
				if p, err = DecodeBatchItemResult(p, &item, levels); err != nil {
					break
				}
				if len(p) >= prev {
					t.Fatalf("batch item decode consumed nothing (%d -> %d bytes)", prev, len(p))
				}
			}
		}
	})
}
