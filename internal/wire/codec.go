// codec.go defines the payload shapes of each frame type and their
// append-based encoders / view-based decoders. Every encoder appends to a
// caller-owned buffer and every decoder reads from a frame's payload view,
// so neither side allocates on the steady-state path; strings cross the
// boundary as length-prefixed byte runs, floats as IEEE-754 bits.
package wire

import (
	"fmt"
	"math"
)

// ---------------------------------------------------------------- hello --

// Hello is the handshake response: the server's countermeasure ladder in
// escalation order (terminal last). Step responses refer to a level by its
// index in this table, so the per-frame cost of naming the countermeasure
// is one byte and the client-side string is interned once per connection.
type Hello struct {
	Levels []string
}

// AppendHelloPayload renders the hello response payload: u8 level count,
// then per level u8 name length + bytes.
func AppendHelloPayload(dst []byte, h *Hello) ([]byte, error) {
	if len(h.Levels) > 0xFF {
		return dst, fmt.Errorf("wire: %d countermeasure levels exceed the u8 table", len(h.Levels))
	}
	dst = append(dst, byte(len(h.Levels)))
	for _, name := range h.Levels {
		if len(name) > 0xFF {
			return dst, fmt.Errorf("wire: countermeasure name %d bytes long exceeds the u8 length", len(name))
		}
		dst = append(dst, byte(len(name)))
		dst = append(dst, name...)
	}
	return dst, nil
}

// DecodeHelloPayload parses a hello response payload. The level names are
// copied out (once per connection — this is the interning moment).
func DecodeHelloPayload(p []byte) (Hello, error) {
	if len(p) < 1 {
		return Hello{}, errShortPayload
	}
	n := int(p[0])
	p = p[1:]
	h := Hello{Levels: make([]string, 0, n)}
	for i := 0; i < n; i++ {
		if len(p) < 1 {
			return Hello{}, errShortPayload
		}
		l := int(p[0])
		p = p[1:]
		if len(p) < l {
			return Hello{}, errShortPayload
		}
		h.Levels = append(h.Levels, string(p[:l]))
		p = p[l:]
	}
	return h, nil
}

// ---------------------------------------------------------------- series --

// AppendSeriesIDPayload renders a payload that is just a series id (the
// open-series response and the close-series request): u16 length + bytes.
func AppendSeriesIDPayload(dst []byte, id string) []byte {
	dst = appendU16(dst, uint16(len(id)))
	return append(dst, id...)
}

// DecodeSeriesIDPayload parses a series-id payload as a zero-copy view.
func DecodeSeriesIDPayload(p []byte) ([]byte, error) {
	if len(p) < 2 {
		return nil, errShortPayload
	}
	n := int(getU16(p))
	if len(p) != 2+n {
		return nil, errShortPayload
	}
	return p[2 : 2+n], nil
}

// ---------------------------------------------------------------- step --

// StepRequest is one timestep: the momentaneous outcome and the quality
// factor vector (the deficit channels in augment.Names() order with the
// pixel size as the trailing element — positional, unlike the JSON map).
type StepRequest struct {
	SeriesID string
	Outcome  int
	Quality  []float64
}

// AppendStepItem renders one step item (the step request payload, and one
// element of a batch payload): u16 id length + bytes, i64 outcome, u8
// factor count, then each factor as f64 bits.
//
//tauw:hotpath
func AppendStepItem(dst []byte, seriesID string, outcome int, quality []float64) ([]byte, error) {
	if len(seriesID) > 0xFFFF {
		return dst, fmt.Errorf("wire: series id %d bytes long exceeds the u16 length", len(seriesID))
	}
	if len(quality) > 0xFF {
		return dst, fmt.Errorf("wire: %d quality factors exceed the u8 count", len(quality))
	}
	dst = appendU16(dst, uint16(len(seriesID)))
	dst = append(dst, seriesID...)
	dst = appendU64(dst, uint64(int64(outcome)))
	dst = append(dst, byte(len(quality)))
	for _, q := range quality {
		dst = appendU64(dst, math.Float64bits(q))
	}
	return dst, nil
}

// StepItemView is a decoded step item; SeriesID and the quality bytes
// alias the payload (factors are re-read per element, see QualityAt) so
// decoding one item allocates nothing.
type StepItemView struct {
	SeriesID []byte
	Outcome  int
	quality  []byte // NumQuality * 8 raw bytes
	nq       int
}

// DecodeStepItemView parses one step item starting at p and returns the
// remaining bytes (batch payloads concatenate items).
//
//tauw:hotpath
func DecodeStepItemView(p []byte) (StepItemView, []byte, error) {
	var v StepItemView
	if len(p) < 2 {
		return v, nil, errShortPayload
	}
	idLen := int(getU16(p))
	p = p[2:]
	if len(p) < idLen+9 {
		return v, nil, errShortPayload
	}
	v.SeriesID = p[:idLen]
	p = p[idLen:]
	v.Outcome = int(int64(getU64(p)))
	v.nq = int(p[8])
	p = p[9:]
	if len(p) < v.nq*8 {
		return v, nil, errShortPayload
	}
	v.quality = p[: v.nq*8 : v.nq*8]
	return v, p[v.nq*8:], nil
}

// NumQuality reports the item's quality-factor count.
func (v *StepItemView) NumQuality() int { return v.nq }

// QualityAt returns factor i of a decoded item.
func (v *StepItemView) QualityAt(i int) float64 {
	return math.Float64frombits(getU64(v.quality[i*8:]))
}

// StepResult is a decoded step response — the binary twin of the JSON
// step response body. Countermeasure is resolved by the client from the
// hello table (the wire carries only the level index).
type StepResult struct {
	Fused          int
	Uncertainty    float64
	StatelessU     float64
	SeriesLen      int
	TotalSteps     int
	ModelVersion   uint64
	Countermeasure string
	Accepted       bool
}

// stepResultSize is the fixed payload size of a step response.
const stepResultSize = 8 + 8 + 8 + 4 + 8 + 8 + 1 + 1

// AppendStepResultPayload renders a step response payload.
//
//tauw:hotpath
func AppendStepResultPayload(dst []byte, r *StepResult, levelIdx uint8) []byte {
	dst = appendU64(dst, uint64(int64(r.Fused)))
	dst = appendU64(dst, math.Float64bits(r.Uncertainty))
	dst = appendU64(dst, math.Float64bits(r.StatelessU))
	dst = appendU32(dst, uint32(r.SeriesLen))
	dst = appendU64(dst, uint64(r.TotalSteps))
	dst = appendU64(dst, r.ModelVersion)
	accepted := byte(0)
	if r.Accepted {
		accepted = 1
	}
	return append(dst, levelIdx, accepted)
}

// DecodeStepResultPayload parses a step response payload into out,
// resolving the countermeasure index through levels (nil levels leave the
// name empty). Returns the remaining bytes for batch decoding.
//
//tauw:hotpath
func DecodeStepResultPayload(p []byte, out *StepResult, levels []string) ([]byte, error) {
	if len(p) < stepResultSize {
		return nil, errShortPayload
	}
	out.Fused = int(int64(getU64(p)))
	out.Uncertainty = math.Float64frombits(getU64(p[8:]))
	out.StatelessU = math.Float64frombits(getU64(p[16:]))
	out.SeriesLen = int(int32(getU32(p[24:])))
	out.TotalSteps = int(getU64(p[28:]))
	out.ModelVersion = getU64(p[36:])
	levelIdx, accepted := p[44], p[45]
	if int(levelIdx) >= len(levels) {
		return nil, fmt.Errorf("wire: countermeasure index %d outside the %d-level hello table", levelIdx, len(levels))
	}
	out.Countermeasure = levels[levelIdx]
	out.Accepted = accepted != 0
	return p[stepResultSize:], nil
}

// ---------------------------------------------------------------- batch --

// BatchItemResult is one item of a step-batch response: Status mirrors the
// code the single-step exchange would have answered, and exactly one of
// Step / Err is meaningful.
type BatchItemResult struct {
	Status int
	Step   StepResult
	Err    string
}

// AppendBatchHeader renders the item count that opens both batch payload
// directions.
func AppendBatchHeader(dst []byte, n int) ([]byte, error) {
	if n > MaxBatchItems {
		return dst, fmt.Errorf("wire: batch of %d exceeds limit %d", n, MaxBatchItems)
	}
	return appendU16(dst, uint16(n)), nil
}

// DecodeBatchHeader parses a batch item count and returns the rest.
func DecodeBatchHeader(p []byte) (int, []byte, error) {
	if len(p) < 2 {
		return 0, nil, errShortPayload
	}
	n := int(getU16(p))
	if n > MaxBatchItems {
		return 0, nil, fmt.Errorf("wire: batch of %d exceeds limit %d", n, MaxBatchItems)
	}
	return n, p[2:], nil
}

// AppendBatchItemStatus writes just the status word of a batch item, for
// callers that render a success body through their own step-result path.
func AppendBatchItemStatus(dst []byte, status int) []byte {
	return appendU16(dst, uint16(status))
}

// AppendBatchItemResult renders one item of a batch response: u16 status,
// then the step result (status 200) or u16 message length + bytes.
//
//tauw:hotpath
func AppendBatchItemResult(dst []byte, status int, r *StepResult, levelIdx uint8, errMsg string) []byte {
	dst = appendU16(dst, uint16(status))
	if status == StatusOK {
		return AppendStepResultPayload(dst, r, levelIdx)
	}
	if len(errMsg) > 0xFFFF {
		errMsg = errMsg[:0xFFFF]
	}
	dst = appendU16(dst, uint16(len(errMsg)))
	return append(dst, errMsg...)
}

// DecodeBatchItemResult parses one batch response item into out and
// returns the rest. The error message is copied (error path only).
//
//tauw:hotpath
func DecodeBatchItemResult(p []byte, out *BatchItemResult, levels []string) ([]byte, error) {
	if len(p) < 2 {
		return nil, errShortPayload
	}
	out.Status = int(getU16(p))
	out.Err = ""
	p = p[2:]
	if out.Status == StatusOK {
		return DecodeStepResultPayload(p, &out.Step, levels)
	}
	if len(p) < 2 {
		return nil, errShortPayload
	}
	n := int(getU16(p))
	p = p[2:]
	if len(p) < n {
		return nil, errShortPayload
	}
	out.Step = StepResult{}
	out.Err = string(p[:n])
	return p[n:], nil
}

// ---------------------------------------------------------------- feedback --

// FeedbackRequest reports the ground truth for one served step.
type FeedbackRequest struct {
	SeriesID string
	Step     int
	Truth    int
}

// AppendFeedbackRequestPayload renders a feedback request payload: u16 id
// length + bytes, u64 step, i64 truth.
//
//tauw:hotpath
func AppendFeedbackRequestPayload(dst []byte, seriesID string, step, truth int) ([]byte, error) {
	if len(seriesID) > 0xFFFF {
		return dst, fmt.Errorf("wire: series id %d bytes long exceeds the u16 length", len(seriesID))
	}
	dst = appendU16(dst, uint16(len(seriesID)))
	dst = append(dst, seriesID...)
	dst = appendU64(dst, uint64(step))
	dst = appendU64(dst, uint64(int64(truth)))
	return dst, nil
}

// DecodeFeedbackRequestPayload parses a feedback request payload; the
// series id aliases the payload.
//
//tauw:hotpath
func DecodeFeedbackRequestPayload(p []byte) (seriesID []byte, step, truth int, err error) {
	if len(p) < 2 {
		return nil, 0, 0, errShortPayload
	}
	n := int(getU16(p))
	p = p[2:]
	if len(p) != n+16 {
		return nil, 0, 0, errShortPayload
	}
	seriesID = p[:n]
	step = int(getU64(p[n:]))
	truth = int(int64(getU64(p[n+8:])))
	return seriesID, step, truth, nil
}

// FeedbackResult is a decoded feedback response — the binary twin of the
// JSON feedback response body.
type FeedbackResult struct {
	Step         int
	Correct      bool
	FusedOutcome int
	Uncertainty  float64
	TAQIMLeaf    int
	ModelVersion uint64
	DriftAlarm   bool
}

// feedbackResultSize is the fixed payload size of a feedback response.
const feedbackResultSize = 8 + 8 + 8 + 4 + 8 + 1 + 1

// AppendFeedbackResultPayload renders a feedback response payload.
func AppendFeedbackResultPayload(dst []byte, r *FeedbackResult) []byte {
	dst = appendU64(dst, uint64(r.Step))
	dst = appendU64(dst, uint64(int64(r.FusedOutcome)))
	dst = appendU64(dst, math.Float64bits(r.Uncertainty))
	dst = appendU32(dst, uint32(r.TAQIMLeaf))
	dst = appendU64(dst, r.ModelVersion)
	correct, alarm := byte(0), byte(0)
	if r.Correct {
		correct = 1
	}
	if r.DriftAlarm {
		alarm = 1
	}
	return append(dst, correct, alarm)
}

// DecodeFeedbackResultPayload parses a feedback response payload into out.
func DecodeFeedbackResultPayload(p []byte, out *FeedbackResult) error {
	if len(p) != feedbackResultSize {
		return errShortPayload
	}
	out.Step = int(getU64(p))
	out.FusedOutcome = int(int64(getU64(p[8:])))
	out.Uncertainty = math.Float64frombits(getU64(p[16:]))
	out.TAQIMLeaf = int(int32(getU32(p[24:])))
	out.ModelVersion = getU64(p[28:])
	out.Correct = p[36] != 0
	out.DriftAlarm = p[37] != 0
	return nil
}
