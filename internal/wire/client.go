// client.go is the Go client of the binary transport: one persistent
// connection multiplexing any number of concurrent callers. Each call
// appends its frame to a shared output buffer under a mutex and one caller
// at a time drains it to the socket (write combining: concurrent callers'
// frames leave in a single syscall), while a background read loop decodes
// responses straight into the caller-supplied result structs and wakes the
// matching caller. The steady-state step path allocates nothing: calls are
// pooled, payloads are appended to recycled buffers, and responses are
// decoded from the reader's buffer views before the reader advances.
package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// ErrClientClosed fails calls issued after Close (or after a connection
// error tore the client down).
var ErrClientClosed = errors.New("wire: client closed")

// call is one in-flight request. done carries the call's verdict from the
// read loop; the result fields tell the read loop where to decode to, so
// decoding happens inside the loop while the frame's payload view is still
// valid, not after handoff.
type call struct {
	done  chan error
	step  *StepResult       // FrameStep
	batch []BatchItemResult // FrameStepBatch, len = expected items
	fb    *FeedbackResult   // FrameFeedback
	id    *string           // FrameOpenSeries
}

// Client is a connection to a tauserve binary listener. It is safe for
// concurrent use; concurrency is the pipelining mechanism (each blocked
// caller is one in-flight frame).
type Client struct {
	conn   net.Conn
	levels []string // hello table: countermeasure index -> name

	// Write side: out accumulates frames under mu; the first caller to
	// find no active flusher drains it (and whatever arrives meanwhile).
	mu       sync.Mutex
	out      []byte
	spare    []byte
	flushing bool

	// Read side: pending maps request ids to in-flight calls.
	pmu     sync.Mutex
	pending map[uint32]*call
	closed  bool
	err     error

	reqID    atomic.Uint32
	callPool sync.Pool
}

// Dial connects to a tauserve binary listener and performs the hello
// handshake, returning a ready-to-use client.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient performs the hello handshake over an established connection
// (any net.Conn — tests use in-memory pipes) and starts the read loop.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:    conn,
		out:     make([]byte, 0, 4096),
		spare:   make([]byte, 0, 4096),
		pending: make(map[uint32]*call),
	}
	c.callPool.New = func() any { return &call{done: make(chan error, 1)} }

	// The handshake runs synchronously before the read loop exists: one
	// hello frame out, one response in.
	buf, lenOff := BeginFrame(nil, FrameHello, 0)
	buf = EndFrame(buf, lenOff)
	if _, err := conn.Write(buf); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	fr := NewReader(conn, nil)
	f, err := fr.Next()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	if f.Type == FrameError {
		conn.Close()
		if status, msg, derr := DecodeErrorPayload(f.Payload); derr == nil {
			return nil, &Error{Status: status, Msg: msg}
		}
		return nil, errors.New("wire: hello rejected")
	}
	if f.Type != ResponseType(FrameHello) {
		conn.Close()
		return nil, fmt.Errorf("wire: hello answered with frame type %#x", f.Type)
	}
	hello, err := DecodeHelloPayload(f.Payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	c.levels = hello.Levels
	go c.readLoop(fr)
	return c, nil
}

// Levels returns the server's countermeasure ladder from the handshake.
func (c *Client) Levels() []string { return c.levels }

// Close tears the connection down; in-flight calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return c.conn.Close()
}

// fail marks the client dead and wakes every in-flight call with err.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	pending := c.pending
	c.pending = nil
	c.pmu.Unlock()
	for _, cl := range pending {
		cl.done <- err
	}
}

// readLoop drains response frames, decoding each into its caller's result
// before advancing the reader (the payload view dies on the next frame).
func (c *Client) readLoop(fr *Reader) {
	for {
		f, err := fr.Next()
		if err != nil {
			c.fail(fmt.Errorf("wire: connection lost: %w", err))
			c.conn.Close()
			return
		}
		c.pmu.Lock()
		cl := c.pending[f.ReqID]
		delete(c.pending, f.ReqID)
		c.pmu.Unlock()
		if cl == nil {
			// A response to a call that no longer exists (impossible under
			// normal operation); drop it rather than kill the connection.
			continue
		}
		cl.done <- c.decodeResponse(&f, cl)
	}
}

// decodeResponse dispatches one response frame into the call's result.
func (c *Client) decodeResponse(f *Frame, cl *call) error {
	if f.Type == FrameError {
		status, msg, err := DecodeErrorPayload(f.Payload)
		if err != nil {
			return err
		}
		return &Error{Status: status, Msg: msg}
	}
	switch {
	case cl.step != nil:
		if f.Type != ResponseType(FrameStep) {
			return fmt.Errorf("wire: step answered with frame type %#x", f.Type)
		}
		rest, err := DecodeStepResultPayload(f.Payload, cl.step, c.levels)
		if err == nil && len(rest) != 0 {
			err = fmt.Errorf("wire: %d trailing bytes after step result", len(rest))
		}
		return err
	case cl.batch != nil:
		if f.Type != ResponseType(FrameStepBatch) {
			return fmt.Errorf("wire: batch answered with frame type %#x", f.Type)
		}
		n, p, err := DecodeBatchHeader(f.Payload)
		if err != nil {
			return err
		}
		if n != len(cl.batch) {
			return fmt.Errorf("wire: batch answered %d items, want %d", n, len(cl.batch))
		}
		for i := range cl.batch {
			if p, err = DecodeBatchItemResult(p, &cl.batch[i], c.levels); err != nil {
				return err
			}
		}
		if len(p) != 0 {
			return fmt.Errorf("wire: %d trailing bytes after batch result", len(p))
		}
		return nil
	case cl.fb != nil:
		if f.Type != ResponseType(FrameFeedback) {
			return fmt.Errorf("wire: feedback answered with frame type %#x", f.Type)
		}
		return DecodeFeedbackResultPayload(f.Payload, cl.fb)
	case cl.id != nil:
		if f.Type != ResponseType(FrameOpenSeries) {
			return fmt.Errorf("wire: open-series answered with frame type %#x", f.Type)
		}
		id, err := DecodeSeriesIDPayload(f.Payload)
		if err != nil {
			return err
		}
		*cl.id = string(id)
		return nil
	default: // close-series: empty payload
		if f.Type != ResponseType(FrameCloseSeries) {
			return fmt.Errorf("wire: close-series answered with frame type %#x", f.Type)
		}
		return nil
	}
}

// register checks a pooled call out and enrolls it under a fresh request
// id.
func (c *Client) register(cl *call) (uint32, error) {
	id := c.reqID.Add(1)
	c.pmu.Lock()
	if c.closed {
		err := c.err
		c.pmu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return 0, err
	}
	c.pending[id] = cl
	c.pmu.Unlock()
	return id, nil
}

// flushAndUnlock drains the shared output buffer to the socket. Exactly
// one caller flushes at a time; others append and leave, and the active
// flusher keeps going until the buffer stays empty (their frames ride the
// flusher's syscalls — the write-combining that makes pipelining cheap).
// The caller must hold c.mu; it is released on return.
func (c *Client) flushAndUnlock() {
	if c.flushing {
		c.mu.Unlock()
		return
	}
	c.flushing = true
	for len(c.out) > 0 {
		// Swap the double buffer: callers append to the old spare while this
		// flush writes; the written storage rotates back in on the next pass
		// (never nil — a nil write target would cost one allocation per
		// flush cycle under load).
		buf := c.out
		c.out = c.spare[:0]
		c.spare = buf
		c.mu.Unlock()
		_, err := c.conn.Write(buf)
		if err != nil {
			c.fail(fmt.Errorf("wire: write: %w", err))
			c.conn.Close()
		}
		c.mu.Lock()
	}
	c.flushing = false
	c.mu.Unlock()
}

// await blocks on the call's verdict and returns it to the pool.
func (c *Client) await(cl *call) error {
	err := <-cl.done
	cl.step, cl.batch, cl.fb, cl.id = nil, nil, nil, nil
	c.callPool.Put(cl)
	return err
}

// OpenSeries starts a new series on the server and returns its id.
func (c *Client) OpenSeries() (string, error) {
	cl := c.callPool.Get().(*call)
	var id string
	cl.id = &id
	reqID, err := c.register(cl)
	if err != nil {
		c.callPool.Put(cl)
		return "", err
	}
	c.mu.Lock()
	out, lenOff := BeginFrame(c.out, FrameOpenSeries, reqID)
	c.out = EndFrame(out, lenOff)
	c.flushAndUnlock()
	if err := c.await(cl); err != nil {
		return "", err
	}
	return id, nil
}

// Step feeds one timestep and decodes the response into res. quality is
// the positional factor vector (deficit channels in augment.Names() order,
// pixel size last); it is copied into the frame before Step returns, so
// the caller may reuse it immediately.
func (c *Client) Step(seriesID string, outcome int, quality []float64, res *StepResult) error {
	cl := c.callPool.Get().(*call)
	cl.step = res
	reqID, err := c.register(cl)
	if err != nil {
		c.callPool.Put(cl)
		return err
	}
	c.mu.Lock()
	out, lenOff := BeginFrame(c.out, FrameStep, reqID)
	if out, err = AppendStepItem(out, seriesID, outcome, quality); err != nil {
		c.out = out[:lenOff]
		c.flushAndUnlock()
		c.unregister(reqID, cl)
		return err
	}
	c.out = EndFrame(out, lenOff)
	c.flushAndUnlock()
	return c.await(cl)
}

// StepBatch feeds a batch of timesteps in one frame; results land in out,
// which must have the items' length. Items fail individually (Status per
// item), exactly as the JSON batch endpoint's per-item statuses.
func (c *Client) StepBatch(items []StepRequest, out []BatchItemResult) error {
	if len(items) != len(out) {
		return fmt.Errorf("wire: %d items but %d result slots", len(items), len(out))
	}
	cl := c.callPool.Get().(*call)
	cl.batch = out
	reqID, err := c.register(cl)
	if err != nil {
		c.callPool.Put(cl)
		return err
	}
	c.mu.Lock()
	buf, lenOff := BeginFrame(c.out, FrameStepBatch, reqID)
	buf, err = AppendBatchHeader(buf, len(items))
	if err == nil {
		for i := range items {
			it := &items[i]
			if buf, err = AppendStepItem(buf, it.SeriesID, it.Outcome, it.Quality); err != nil {
				break
			}
		}
	}
	if err != nil {
		c.out = buf[:lenOff]
		c.flushAndUnlock()
		c.unregister(reqID, cl)
		return err
	}
	c.out = EndFrame(buf, lenOff)
	c.flushAndUnlock()
	return c.await(cl)
}

// Feedback reports the ground truth for one served step and decodes the
// join result into res.
func (c *Client) Feedback(seriesID string, step, truth int, res *FeedbackResult) error {
	cl := c.callPool.Get().(*call)
	cl.fb = res
	reqID, err := c.register(cl)
	if err != nil {
		c.callPool.Put(cl)
		return err
	}
	c.mu.Lock()
	out, lenOff := BeginFrame(c.out, FrameFeedback, reqID)
	if out, err = AppendFeedbackRequestPayload(out, seriesID, step, truth); err != nil {
		c.out = out[:lenOff]
		c.flushAndUnlock()
		c.unregister(reqID, cl)
		return err
	}
	c.out = EndFrame(out, lenOff)
	c.flushAndUnlock()
	return c.await(cl)
}

// CloseSeries ends a series on the server.
func (c *Client) CloseSeries(seriesID string) error {
	cl := c.callPool.Get().(*call)
	reqID, err := c.register(cl)
	if err != nil {
		c.callPool.Put(cl)
		return err
	}
	c.mu.Lock()
	out, lenOff := BeginFrame(c.out, FrameCloseSeries, reqID)
	out = AppendSeriesIDPayload(out, seriesID)
	c.out = EndFrame(out, lenOff)
	c.flushAndUnlock()
	return c.await(cl)
}

// unregister withdraws a call whose frame never left (encode failure),
// tolerating the race where the read loop already claimed it.
func (c *Client) unregister(reqID uint32, cl *call) {
	c.pmu.Lock()
	_, mine := c.pending[reqID]
	if mine {
		delete(c.pending, reqID)
	}
	c.pmu.Unlock()
	if !mine {
		// The read loop (or fail) owns the call now; consume its verdict so
		// the pooled call is not returned with a pending send.
		<-cl.done
	}
	cl.step, cl.batch, cl.fb, cl.id = nil, nil, nil, nil
	c.callPool.Put(cl)
}
