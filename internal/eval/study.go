package eval

import (
	"fmt"
	"math/rand/v2"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/ddm"
	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/gtsrb"
	"github.com/iese-repro/tauw/internal/uw"
)

// Study is a fully assembled reproduction run: data, trained DDM, calibrated
// wrappers, and the cached replay needed by the experiments.
type Study struct {
	// Cfg is the configuration the study was built with.
	Cfg StudyConfig
	// Model is the trained DDM.
	Model ddm.Classifier
	// Features is the synthetic embedding model.
	Features *ddm.FeatureModel
	// Base is the stateless uncertainty wrapper.
	Base *uw.Wrapper
	// TAQIM is the timeseries-aware quality impact model with all four
	// taQF.
	TAQIM *uw.QualityImpactModel
	// TrainSeries, CalibSeries and TestSeries are the series-structured
	// observations (subsampled, augmented, predicted).
	TrainSeries, CalibSeries, TestSeries []core.SeriesObservations
	// DDMTrainAccuracy and DDMTestAccuracy report the classifier in the
	// paper's two accuracy regimes (full augmented training set;
	// length-10 test subseries).
	DDMTrainAccuracy, DDMTestAccuracy float64
	// StatelessNames are the quality-factor column names.
	StatelessNames []string

	// Cached taQIM rows (with all four taQF) for the feature study.
	trainRowsX [][]float64
	trainRowsY []bool
	calibRowsX [][]float64
	calibRowsY []bool
}

// statelessWidth is the number of stateless quality factors: the nine
// deficit channels plus the apparent pixel size.
const statelessWidth = augment.NumDeficits + 1

// qualityVector assembles the stateless quality factors of one frame: the
// deficit intensities the sensors/augmentation metadata provide, plus the
// sign's apparent size.
func qualityVector(in augment.Intensities, frame gtsrb.Frame) []float64 {
	qf := make([]float64, 0, statelessWidth)
	qf = append(qf, in[:]...)
	qf = append(qf, frame.PixelSize)
	return qf
}

// statelessNames returns the quality-factor column names.
func statelessNames() []string {
	return append(augment.Names(), "pixel_size")
}

// BuildStudy assembles the full study: synthetic benchmark, augmentation,
// DDM training, and wrapper calibration, mirroring the paper's execution
// plan (Fig. 3).
func BuildStudy(cfg StudyConfig) (*Study, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen := gtsrb.DefaultGeneratorConfig()
	gen.NumSeries = cfg.NumSeries
	gen.Seed = cfg.Seed
	// Guarantee that every class can appear in all three splits even in
	// scaled-down presets; the real GTSRB archive covers all classes.
	gen.MinPerClass = min(3, cfg.NumSeries/gtsrb.NumClasses)
	series, err := gtsrb.Generate(gen)
	if err != nil {
		return nil, fmt.Errorf("eval: generating benchmark: %w", err)
	}
	trainS, calibS, testS, err := gtsrb.Split(series, cfg.TrainFrac, cfg.CalibFrac, cfg.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("eval: splitting series: %w", err)
	}
	pool, err := augment.NewPool(cfg.Seed+2, cfg.PoolSize)
	if err != nil {
		return nil, fmt.Errorf("eval: building setting pool: %w", err)
	}
	fm, err := ddm.NewFeatureModel(cfg.Feature)
	if err != nil {
		return nil, fmt.Errorf("eval: building feature model: %w", err)
	}
	st := &Study{Cfg: cfg, Features: fm, StatelessNames: statelessNames()}

	// 1) DDM training on the variant-augmented training frames (paper:
	// every deficit at three intensities per image).
	trainSamples, err := buildTrainingFrames(trainS, fm, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	model, err := trainModel(trainSamples, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: training DDM: %w", err)
	}
	st.Model = model
	trainEval, err := ddm.Evaluate(model, trainSamples)
	if err != nil {
		return nil, fmt.Errorf("eval: evaluating DDM on training frames: %w", err)
	}
	st.DDMTrainAccuracy = trainEval.Accuracy

	// 2) Series-structured observations: subsampled, setting-augmented,
	// and predicted by the trained DDM.
	st.TrainSeries, err = buildSeriesObservations(trainS, pool, fm, model, cfg, cfg.TrainAugmentations, cfg.Seed+4)
	if err != nil {
		return nil, err
	}
	st.CalibSeries, err = buildSeriesObservations(calibS, pool, fm, model, cfg, cfg.EvalAugmentations, cfg.Seed+5)
	if err != nil {
		return nil, err
	}
	st.TestSeries, err = buildSeriesObservations(testS, pool, fm, model, cfg, cfg.EvalAugmentations, cfg.Seed+6)
	if err != nil {
		return nil, err
	}
	correct, total := 0, 0
	for _, s := range st.TestSeries {
		for _, o := range s.Outcomes {
			total++
			if o == s.Truth {
				correct++
			}
		}
	}
	st.DDMTestAccuracy = float64(correct) / float64(total)

	// 3) Stateless quality impact model: the tree is grown on the
	// setting-augmented training series (fresh feature draws, so the
	// failure labels reflect the deployed error rates rather than the
	// DDM's near-perfect resubstitution fit) and calibrated on the
	// subsampled calibration frames.
	trainQF, trainLabels := flattenSeries(st.TrainSeries)
	calibQF, calibLabels := flattenSeries(st.CalibSeries)
	qim, err := uw.FitQIM(trainQF, trainLabels, calibQF, calibLabels, st.StatelessNames, cfg.QIM)
	if err != nil {
		return nil, fmt.Errorf("eval: fitting stateless QIM: %w", err)
	}
	st.Base, err = uw.NewWrapper(qim, nil)
	if err != nil {
		return nil, err
	}

	// 4) Timeseries-aware quality impact model with all four taQF; the
	// rows are cached so the feature study can re-fit on column subsets.
	st.trainRowsX, st.trainRowsY, err = core.BuildRows(st.TrainSeries, st.Base, fusion.MajorityVote{}, core.AllFeatures())
	if err != nil {
		return nil, fmt.Errorf("eval: building taQIM training rows: %w", err)
	}
	st.calibRowsX, st.calibRowsY, err = core.BuildRows(st.CalibSeries, st.Base, fusion.MajorityVote{}, core.AllFeatures())
	if err != nil {
		return nil, fmt.Errorf("eval: building taQIM calibration rows: %w", err)
	}
	st.TAQIM, err = st.fitTAQIMSubset(core.AllFeatures())
	if err != nil {
		return nil, err
	}
	return st, nil
}

// trainModel fits the configured classifier.
func trainModel(samples []ddm.Sample, cfg StudyConfig) (ddm.Classifier, error) {
	if cfg.UseMLP {
		return ddm.TrainMLP(samples, gtsrb.NumClasses, cfg.MLPHidden, cfg.Train)
	}
	return ddm.TrainSoftmax(samples, gtsrb.NumClasses, cfg.Train)
}

// buildTrainingFrames augments every training frame with the paper's
// per-deficit low/medium/high variants and synthesises the DDM's training
// embeddings.
func buildTrainingFrames(series []gtsrb.Series, fm *ddm.FeatureModel, seed uint64) ([]ddm.Sample, error) {
	variants := augment.TrainingVariants()
	var samples []ddm.Sample
	for _, s := range series {
		rng := rand.New(rand.NewPCG(seed, uint64(s.ID)))
		for _, f := range s.Frames {
			for _, v := range variants {
				// The paper's training augmentation renders each
				// deficit independently per image; no persistent
				// series confusion applies here.
				x, err := fm.Observe(f.Class, f.PixelSize, v, nil, rng)
				if err != nil {
					return nil, fmt.Errorf("eval: observing training frame: %w", err)
				}
				samples = append(samples, ddm.Sample{X: x, Class: f.Class})
			}
		}
	}
	return samples, nil
}

// buildSeriesObservations subsamples each series augPerSeries times, assigns
// a random situation setting per copy, realises per-frame intensities,
// synthesises embeddings, and records the trained DDM's outcomes — the
// series-structured dataset of the study.
func buildSeriesObservations(series []gtsrb.Series, pool *augment.Pool, fm *ddm.FeatureModel,
	model ddm.Classifier, cfg StudyConfig, augPerSeries int, seed uint64) ([]core.SeriesObservations, error) {
	out := make([]core.SeriesObservations, 0, len(series)*augPerSeries)
	for _, s := range series {
		rng := rand.New(rand.NewPCG(seed, uint64(s.ID)))
		for a := 0; a < augPerSeries; a++ {
			sub, err := gtsrb.Subsample(s, cfg.SubseriesLen, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: subsampling series %d: %w", s.ID, err)
			}
			setting := pool.Random(rng)
			ints := augment.Apply(setting, sub, seed+uint64(a))
			dist, err := fm.NewSeriesDistortion(sub.Class, rng)
			if err != nil {
				return nil, err
			}
			obs := core.SeriesObservations{
				Truth:    sub.Class,
				Outcomes: make([]int, sub.Len()),
				Quality:  make([][]float64, sub.Len()),
			}
			for j, f := range sub.Frames {
				x, err := fm.Observe(f.Class, f.PixelSize, ints[j], &dist, rng)
				if err != nil {
					return nil, fmt.Errorf("eval: observing series %d frame %d: %w", s.ID, j, err)
				}
				pred, err := model.Predict(x)
				if err != nil {
					return nil, fmt.Errorf("eval: predicting series %d frame %d: %w", s.ID, j, err)
				}
				obs.Outcomes[j] = pred
				obs.Quality[j] = qualityVector(ints[j], f)
			}
			out = append(out, obs)
		}
	}
	return out, nil
}

// flattenSeries turns series observations into frame-level quality-factor
// rows with per-frame failure labels.
func flattenSeries(series []core.SeriesObservations) ([][]float64, []bool) {
	var x [][]float64
	var y []bool
	for _, s := range series {
		for j := range s.Outcomes {
			x = append(x, s.Quality[j])
			y = append(y, s.Outcomes[j] != s.Truth)
		}
	}
	return x, y
}

// fitTAQIMSubset fits a timeseries-aware QIM on the cached rows restricted
// to the given taQF subset (the stateless columns are always kept).
func (st *Study) fitTAQIMSubset(feats []core.Feature) (*uw.QualityImpactModel, error) {
	return st.fitTAQIMWith(st.Cfg.QIM, feats)
}

// fitTAQIMWith is fitTAQIMSubset with an explicit QIM configuration, used by
// the calibration ablations.
func (st *Study) fitTAQIMWith(qimCfg uw.QIMConfig, feats []core.Feature) (*uw.QualityImpactModel, error) {
	cols := make([]int, 0, statelessWidth+len(feats))
	for i := 0; i < statelessWidth; i++ {
		cols = append(cols, i)
	}
	for _, f := range feats {
		cols = append(cols, statelessWidth+int(f-core.Ratio))
	}
	names := make([]string, 0, len(cols))
	names = append(names, st.StatelessNames...)
	names = append(names, core.FeatureNames(feats)...)
	select2D := func(rows [][]float64) [][]float64 {
		out := make([][]float64, len(rows))
		for i, row := range rows {
			r := make([]float64, len(cols))
			for j, c := range cols {
				r[j] = row[c]
			}
			out[i] = r
		}
		return out
	}
	qim, err := uw.FitQIM(select2D(st.trainRowsX), st.trainRowsY,
		select2D(st.calibRowsX), st.calibRowsY, names, qimCfg)
	if err != nil {
		return nil, fmt.Errorf("eval: fitting taQIM subset %v: %w", feats, err)
	}
	return qim, nil
}

// Wrapper assembles the ready-to-use taUW for runtime use (examples,
// services).
func (st *Study) Wrapper() (*core.Wrapper, error) {
	return core.NewWrapper(st.Base, st.TAQIM, core.Config{})
}
