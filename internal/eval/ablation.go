package eval

import (
	"fmt"
	"strings"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/stats"
)

// BoundAblationRow scores one binomial-bound construction.
type BoundAblationRow struct {
	Method stats.BoundMethod
	// Brier is the taUW Brier score on the test replay.
	Brier float64
	// Overconfidence is the overconfident share of the unreliability.
	Overconfidence float64
	// MinU is the lowest guaranteed uncertainty.
	MinU float64
}

// BoundAblationResult compares Clopper-Pearson (the paper's choice) against
// Wilson and Jeffreys bounds for the taQIM leaf calibration: less
// conservative bounds buy a lower Brier score at the cost of potential
// overconfidence.
type BoundAblationResult struct {
	Rows []BoundAblationRow
}

// RunBoundAblation refits the taQIM under each bound method and scores it.
func (st *Study) RunBoundAblation() (BoundAblationResult, error) {
	recs, err := st.replayTest()
	if err != nil {
		return BoundAblationResult{}, err
	}
	fusedWrong := make([]bool, len(recs))
	for i, r := range recs {
		fusedWrong[i] = r.fused != r.truth
	}
	// The factor rows are identical under every bound method; build them
	// once and let each refitted model score the whole replay through the
	// compiled tree's block inference.
	rows := taqimRows(recs)
	var out BoundAblationResult
	var forecast []float64
	for _, m := range []stats.BoundMethod{stats.ClopperPearson, stats.Wilson, stats.Jeffreys} {
		cfg := st.Cfg.QIM
		cfg.Bound = m
		qim, err := st.fitTAQIMWith(cfg, core.AllFeatures())
		if err != nil {
			return BoundAblationResult{}, err
		}
		forecast, err = qim.UncertaintyBatch(rows, forecast)
		if err != nil {
			return BoundAblationResult{}, err
		}
		d, err := decomposeAdaptive(forecast, fusedWrong)
		if err != nil {
			return BoundAblationResult{}, err
		}
		minU, err := qim.MinUncertainty()
		if err != nil {
			return BoundAblationResult{}, err
		}
		out.Rows = append(out.Rows, BoundAblationRow{
			Method:         m,
			Brier:          d.Brier,
			Overconfidence: d.Overconfidence,
			MinU:           minU,
		})
	}
	return out, nil
}

// String renders the bound ablation.
func (r BoundAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — binomial bound for leaf calibration (taUW)\n")
	fmt.Fprintf(&b, "%-16s %10s %14s %10s\n", "method", "Brier", "overconfidence", "min u")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %10.4f %14.2e %10.4f\n", row.Method, row.Brier, row.Overconfidence, row.MinU)
	}
	return b.String()
}

// TieBreakAblationRow scores one majority-vote tie-break rule.
type TieBreakAblationRow struct {
	TieBreak fusion.TieBreak
	// FusedErrOverall and FusedErrFinal are the fused misclassification
	// rates over all steps and at the final step.
	FusedErrOverall, FusedErrFinal float64
}

// TieBreakAblationResult compares the paper's most-recent tie-break against
// breaking ties toward the lowest-uncertainty vote.
type TieBreakAblationResult struct {
	Rows []TieBreakAblationRow
}

// RunTieBreakAblation replays the test set under both tie-break rules.
func (st *Study) RunTieBreakAblation() (TieBreakAblationResult, error) {
	var out TieBreakAblationResult
	for _, tb := range []fusion.TieBreak{fusion.MostRecent, fusion.LowestUncertainty} {
		recs, err := st.replayWith(fusion.MajorityVote{TieBreak: tb})
		if err != nil {
			return TieBreakAblationResult{}, err
		}
		errsAll, nAll := 0, 0
		errsFinal, nFinal := 0, 0
		maxStep := st.Cfg.SubseriesLen - 1
		for _, r := range recs {
			nAll++
			if r.fused != r.truth {
				errsAll++
			}
			if r.step == maxStep {
				nFinal++
				if r.fused != r.truth {
					errsFinal++
				}
			}
		}
		out.Rows = append(out.Rows, TieBreakAblationRow{
			TieBreak:        tb,
			FusedErrOverall: float64(errsAll) / float64(nAll),
			FusedErrFinal:   float64(errsFinal) / float64(nFinal),
		})
	}
	return out, nil
}

// String renders the tie-break ablation.
func (r TieBreakAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — majority-vote tie-break\n")
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "tie-break", "fused err", "fused err@final")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %13.2f%% %13.2f%%\n", row.TieBreak,
			100*row.FusedErrOverall, 100*row.FusedErrFinal)
	}
	return b.String()
}

// TreeAblationRow scores one taQIM growth/calibration configuration.
type TreeAblationRow struct {
	Depth   int
	MinLeaf int
	Brier   float64
	Regions int
	MinU    float64
}

// TreeAblationResult sweeps the taQIM tree depth and the minimum
// calibration samples per leaf — the two knobs the paper fixes at 8 and 200.
type TreeAblationResult struct {
	Rows []TreeAblationRow
}

// RunTreeAblation evaluates the depth x min-leaf grid.
func (st *Study) RunTreeAblation(depths, minLeaves []int) (TreeAblationResult, error) {
	if len(depths) == 0 {
		depths = []int{4, 6, 8}
	}
	if len(minLeaves) == 0 {
		minLeaves = []int{50, 200, 800}
	}
	recs, err := st.replayTest()
	if err != nil {
		return TreeAblationResult{}, err
	}
	fusedWrong := make([]bool, len(recs))
	for i, r := range recs {
		fusedWrong[i] = r.fused != r.truth
	}
	rows := taqimRows(recs)
	var out TreeAblationResult
	var forecast []float64
	for _, depth := range depths {
		for _, minLeaf := range minLeaves {
			cfg := st.Cfg.QIM
			cfg.TreeDepth = depth
			cfg.MinLeafCalibration = minLeaf
			if minLeaf > len(st.calibRowsY) {
				continue // infeasible on this preset
			}
			qim, err := st.fitTAQIMWith(cfg, core.AllFeatures())
			if err != nil {
				return TreeAblationResult{}, err
			}
			forecast, err = qim.UncertaintyBatch(rows, forecast)
			if err != nil {
				return TreeAblationResult{}, err
			}
			bs, err := stats.BrierScore(forecast, fusedWrong)
			if err != nil {
				return TreeAblationResult{}, err
			}
			minU, err := qim.MinUncertainty()
			if err != nil {
				return TreeAblationResult{}, err
			}
			out.Rows = append(out.Rows, TreeAblationRow{
				Depth:   depth,
				MinLeaf: minLeaf,
				Brier:   bs,
				Regions: qim.NumRegions(),
				MinU:    minU,
			})
		}
	}
	return out, nil
}

// String renders the tree ablation.
func (r TreeAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — taQIM depth and calibration minimum per leaf\n")
	fmt.Fprintf(&b, "%6s %8s %10s %8s %10s\n", "depth", "minLeaf", "Brier", "regions", "min u")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %8d %10.4f %8d %10.4f\n",
			row.Depth, row.MinLeaf, row.Brier, row.Regions, row.MinU)
	}
	return b.String()
}
