package eval

import (
	"testing"

	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/recalib"
)

// driftCfg is the shared experiment configuration of the two arms: heavy
// label noise from the halfway point, a drift detector tuned to fire within
// the tiny study's post-onset steps, and an online-evidence-only refresh
// policy (the injected corruption is a regime change, so the offline prior
// is exactly what must be dropped).
func driftCfg(adaptive bool) DriftReplayConfig {
	return DriftReplayConfig{
		Monitor: monitor.Config{
			Shards: 1,
			Window: 512,
			Drift:  monitor.DriftConfig{Lambda: 10, MinSamples: 100},
		},
		NoiseFrac:   0.5,
		DriftAt:     0.5,
		Seed:        7,
		Recalibrate: adaptive,
		Recalib: recalib.Config{
			MinLeafFeedback: 25,
			Cooldown:        -1, // wall-clock cooldowns are meaningless in a replay
			DropPrior:       true,
		},
	}
}

// TestDriftedReplayClosesTheLoop pins the full adaptive loop end to end:
// the injected label noise degrades the windowed Brier, the Page-Hinkley
// alarm fires after the onset, the recalibrator hot-swaps a refreshed model
// (version increment observable), the refreshed bounds moved up (the
// degraded regions' evidence got worse), and the post-swap windowed Brier
// beats the control arm that kept serving the stale offline calibration.
func TestDriftedReplayClosesTheLoop(t *testing.T) {
	st := tinyStudy(t)

	control, err := st.RunDriftedReplay(driftCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := st.RunDriftedReplay(driftCfg(true))
	if err != nil {
		t.Fatal(err)
	}

	// The injected noise must actually degrade the control arm.
	if control.FinalWindowedBrier <= control.PreDriftBrier {
		t.Fatalf("noise did not degrade the control arm: pre %g, final %g",
			control.PreDriftBrier, control.FinalWindowedBrier)
	}
	// The monitor alarms in both arms, after the onset.
	for name, res := range map[string]DriftReplayResult{"control": control, "adaptive": adaptive} {
		if res.AlarmStep == 0 {
			t.Fatalf("%s arm: drift alarm never fired", name)
		}
		if res.AlarmStep <= res.DriftOnsetStep {
			t.Fatalf("%s arm: alarm at step %d, before the onset at %d", name, res.AlarmStep, res.DriftOnsetStep)
		}
	}
	// The control arm never touches the model.
	if control.VersionBefore != 1 || control.VersionAfter != 1 || control.Recalibrations != 0 {
		t.Fatalf("control arm recalibrated: %+v", control)
	}
	// The adaptive arm swaps at least once, after (or at) the alarm.
	if adaptive.Recalibrations == 0 || adaptive.VersionAfter < 2 {
		t.Fatalf("adaptive arm never swapped: %+v", adaptive)
	}
	if adaptive.SwapStep < adaptive.AlarmStep {
		t.Fatalf("swap at step %d before the alarm at %d", adaptive.SwapStep, adaptive.AlarmStep)
	}
	if adaptive.VersionAfter != adaptive.VersionBefore+uint64(adaptive.Recalibrations) {
		t.Fatalf("version accounting off: %+v", adaptive)
	}
	// Recalibration lifted the degraded regions' bounds.
	if adaptive.RefreshedLeaves == 0 || adaptive.MeanBoundLift <= 0 {
		t.Fatalf("recalibration did not lift the degraded bounds: refreshed %d, mean lift %g",
			adaptive.RefreshedLeaves, adaptive.MeanBoundLift)
	}
	// And the closed loop pays off: the post-swap windowed Brier recovers
	// relative to the stale control.
	if adaptive.FinalWindowedBrier >= control.FinalWindowedBrier {
		t.Fatalf("recalibration did not improve the windowed Brier: adaptive %g vs control %g",
			adaptive.FinalWindowedBrier, control.FinalWindowedBrier)
	}
	t.Logf("pre-drift Brier %.4f; control final %.4f; adaptive final %.4f (alarm@%d, swap@%d, %d swaps, %d leaves, mean lift %+.4f)",
		control.PreDriftBrier, control.FinalWindowedBrier, adaptive.FinalWindowedBrier,
		adaptive.AlarmStep, adaptive.SwapStep, adaptive.Recalibrations,
		adaptive.RefreshedLeaves, adaptive.MeanBoundLift)
}

// TestDriftedReplayDeterministic: same seed, same trajectory.
func TestDriftedReplayDeterministic(t *testing.T) {
	st := tinyStudy(t)
	a, err := st.RunDriftedReplay(driftCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.RunDriftedReplay(driftCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if a.AlarmStep != b.AlarmStep || a.SwapStep != b.SwapStep ||
		a.Recalibrations != b.Recalibrations ||
		a.FinalWindowedBrier != b.FinalWindowedBrier {
		t.Fatalf("replay is not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestDriftedReplayValidation(t *testing.T) {
	st := tinyStudy(t)
	bad := driftCfg(false)
	bad.NoiseFrac = 1.5
	if _, err := st.RunDriftedReplay(bad); err == nil {
		t.Error("noise fraction above 1 must fail")
	}
	bad = driftCfg(false)
	bad.DriftAt = 1
	if _, err := st.RunDriftedReplay(bad); err == nil {
		t.Error("onset at 1 must fail")
	}
}
