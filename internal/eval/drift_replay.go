package eval

import (
	"fmt"
	"math/rand/v2"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/gtsrb"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/recalib"
)

// DriftReplayConfig parameterises the drifted-replay experiment: an offline
// replay of the test series through the full serving substrate (monitored
// pool, calibration monitor, per-leaf accumulators, recalibrator) with label
// noise injected from a chosen point on — the controlled stand-in for a
// deployment whose traffic drifts out of the offline calibration's regime.
type DriftReplayConfig struct {
	// Monitor configures the calibration monitor (zero fields take the
	// package defaults). Pick Drift.MinSamples/Lambda so the detector can
	// fire within the replay's length.
	Monitor monitor.Config
	// FeedbackRing is the per-series provenance ring (0 takes
	// DefaultReplayRing).
	FeedbackRing int
	// PoolShards and BufferLimit configure the pool as in
	// MonitorReplayConfig.
	PoolShards  int
	BufferLimit int
	// NoiseFrac is the probability that a post-onset step's ground-truth
	// label is replaced by a uniformly drawn different class — the injected
	// drift. Must be in [0, 1].
	NoiseFrac float64
	// DriftAt is the fraction of the replay after which the noise starts
	// (0.5 = halfway). Must be in [0, 1).
	DriftAt float64
	// Recalibrate turns the adaptive response on: when the drift alarm is
	// active, the recalibrator's auto trigger runs after the feedback that
	// observed it. Off, the replay is the no-recalibration control arm.
	Recalibrate bool
	// Recalib tunes the recalibration policy (auto trigger guards,
	// smoothing). The wall-clock cooldown is meaningless inside a replay,
	// so leave it negative (disabled) unless testing the guard itself.
	Recalib recalib.Config
	// Seed drives the label-noise draws.
	Seed uint64
}

// DriftReplayResult is the outcome of a drifted replay.
type DriftReplayResult struct {
	// Steps is the number of steps replayed; DriftOnsetStep the 1-based
	// step index at which label noise began.
	Steps, DriftOnsetStep int
	// AlarmStep is the 1-based step at which the drift detector first
	// alarmed (0 = never).
	AlarmStep int
	// SwapStep is the step at which the first recalibration swap landed
	// (0 = never); Recalibrations counts all swaps over the replay.
	SwapStep       int
	Recalibrations int
	// VersionBefore and VersionAfter are the pool's model versions at the
	// start and end of the replay.
	VersionBefore, VersionAfter uint64
	// PreDriftBrier is the windowed Brier just before the noise onset;
	// FinalWindowedBrier the windowed Brier at the end of the replay. Their
	// gap is what recalibration is supposed to close.
	PreDriftBrier, FinalWindowedBrier float64
	// RefreshedLeaves and MeanBoundLift summarise the first swap: how many
	// leaf bounds were refreshed and their mean increase (positive when the
	// injected noise degraded the regions, as it should).
	RefreshedLeaves int
	MeanBoundLift   float64
	// Snapshot is the monitor's final aggregate.
	Snapshot monitor.Snapshot
}

// RunDriftedReplay replays the test series through the serving substrate
// while injecting label noise from DriftAt on, and (optionally) lets the
// recalibration loop respond. It is the end-to-end proof of the closed
// loop: the monitor alarms on the degradation, the recalibrator refreshes
// the degraded leaf bounds from the joined feedback, the pool hot-swaps the
// refreshed model, and the post-swap windowed Brier recovers relative to
// the control arm that keeps serving the stale offline calibration.
func (st *Study) RunDriftedReplay(cfg DriftReplayConfig) (DriftReplayResult, error) {
	if cfg.NoiseFrac < 0 || cfg.NoiseFrac > 1 {
		return DriftReplayResult{}, fmt.Errorf("eval: noise fraction %g outside [0,1]", cfg.NoiseFrac)
	}
	if cfg.DriftAt < 0 || cfg.DriftAt >= 1 {
		return DriftReplayResult{}, fmt.Errorf("eval: drift onset %g outside [0,1)", cfg.DriftAt)
	}
	if cfg.FeedbackRing == 0 {
		cfg.FeedbackRing = DefaultReplayRing
	}
	m, err := monitor.New(cfg.Monitor)
	if err != nil {
		return DriftReplayResult{}, err
	}
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM, core.Config{BufferLimit: cfg.BufferLimit}, 0,
		core.WithShards(cfg.PoolShards), core.WithMonitoring(cfg.FeedbackRing))
	if err != nil {
		return DriftReplayResult{}, err
	}
	leafs, err := monitor.NewLeafStats(st.TAQIM.NumRegions(), cfg.PoolShards)
	if err != nil {
		return DriftReplayResult{}, err
	}
	var rec *recalib.Recalibrator
	if cfg.Recalibrate {
		rec, err = recalib.New(pool, leafs, m, cfg.Recalib)
		if err != nil {
			return DriftReplayResult{}, err
		}
	}

	total := 0
	for _, s := range st.TestSeries {
		total += len(s.Outcomes)
	}
	onset := int(cfg.DriftAt * float64(total))
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x0d21f7))
	out := DriftReplayResult{
		Steps:          total,
		DriftOnsetStep: onset + 1,
		VersionBefore:  pool.ModelVersion(),
	}
	g := 0 // global step counter across series
	for si, s := range st.TestSeries {
		id, err := pool.OpenSeries()
		if err != nil {
			return DriftReplayResult{}, fmt.Errorf("eval: drifted replay series %d: %w", si, err)
		}
		track, err := pool.ResolveSeries(id)
		if err != nil {
			return DriftReplayResult{}, err
		}
		for j := range s.Outcomes {
			if g == onset {
				out.PreDriftBrier = m.Snapshot().WindowedBrier
			}
			g++
			res, err := pool.StepSeries(id, s.Outcomes[j], s.Quality[j])
			if err != nil {
				return DriftReplayResult{}, fmt.Errorf("eval: drifted replay series %d step %d: %w", si, j, err)
			}
			fb, err := pool.TakeFeedback(track, res.TotalSteps)
			if err != nil {
				return DriftReplayResult{}, fmt.Errorf("eval: drifted replay join series %d step %d: %w", si, j, err)
			}
			truth := s.Truth
			if g > onset && rng.Float64() < cfg.NoiseFrac {
				// Uniform label noise: replace the truth with a different
				// class, the standard corruption model.
				truth = (truth + 1 + rng.IntN(gtsrb.NumClasses-1)) % gtsrb.NumClasses
			}
			wrong := fb.Fused != truth
			if err := m.Observe(track, fb.Uncertainty, wrong); err != nil {
				return DriftReplayResult{}, err
			}
			leafs.Observe(track, fb.TAQIMLeaf, wrong)
			if m.DriftAlarmed() {
				if out.AlarmStep == 0 {
					out.AlarmStep = g
				}
				if rec != nil {
					rep, err := rec.TryAuto()
					if err != nil {
						return DriftReplayResult{}, fmt.Errorf("eval: drifted replay recalibration at step %d: %w", g, err)
					}
					if rep.Swapped {
						out.Recalibrations++
						if out.SwapStep == 0 {
							out.SwapStep = g
							var lift float64
							for _, d := range rep.Deltas {
								if d.Refreshed {
									out.RefreshedLeaves++
									lift += d.NewValue - d.OldValue
								}
							}
							if out.RefreshedLeaves > 0 {
								out.MeanBoundLift = lift / float64(out.RefreshedLeaves)
							}
						}
					}
				}
			}
		}
		if err := pool.CloseSeries(id); err != nil {
			return DriftReplayResult{}, err
		}
	}
	out.VersionAfter = pool.ModelVersion()
	out.Snapshot = m.Snapshot()
	out.FinalWindowedBrier = out.Snapshot.WindowedBrier
	return out, nil
}
