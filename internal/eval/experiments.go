package eval

import (
	"fmt"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/stats"
)

// stepRecord caches everything the experiments need about one test step.
type stepRecord struct {
	truth    int
	isolated int
	fused    int
	step     int // 0-based position within the series
	uStep    float64
	uNaive   float64
	uOpp     float64
	uWorst   float64
	uTAUW    float64
	quality  []float64
	taqf     [4]float64
}

// replayTest runs every test series through the full pipeline once and
// caches per-step records; all experiments read from this replay.
func (st *Study) replayTest() ([]stepRecord, error) {
	return st.replayWith(fusion.MajorityVote{})
}

// replayWith replays the test series under an arbitrary information-fusion
// rule (used by the tie-break ablation). The per-step fusion state is
// sequential by nature; the taQIM scoring is not, so it runs as one batch
// over the whole replay through the compiled tree's block inference.
func (st *Study) replayWith(fuser fusion.OutcomeFuser) ([]stepRecord, error) {
	var out []stepRecord
	for si, s := range st.TestSeries {
		n := len(s.Outcomes)
		us := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			est, err := st.Base.Estimate(s.Outcomes[i], s.Quality[i], nil)
			if err != nil {
				return nil, fmt.Errorf("eval: replay series %d step %d: %w", si, i, err)
			}
			us = append(us, est.Uncertainty)
			fused, err := fuser.Fuse(s.Outcomes[:i+1], us)
			if err != nil {
				return nil, fmt.Errorf("eval: replay fuse: %w", err)
			}
			taqf, err := core.ComputeFeatures(s.Outcomes[:i+1], us, fused)
			if err != nil {
				return nil, err
			}
			uNaive, err := fusion.Naive{}.Fuse(us)
			if err != nil {
				return nil, err
			}
			uOpp, err := fusion.Opportune{}.Fuse(us)
			if err != nil {
				return nil, err
			}
			uWorst, err := fusion.WorstCase{}.Fuse(us)
			if err != nil {
				return nil, err
			}
			out = append(out, stepRecord{
				truth:    s.Truth,
				isolated: s.Outcomes[i],
				fused:    fused,
				step:     i,
				uStep:    est.Uncertainty,
				uNaive:   uNaive,
				uOpp:     uOpp,
				uWorst:   uWorst,
				quality:  s.Quality[i],
				taqf:     taqf,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("eval: empty test replay")
	}
	uTAUW, err := st.TAQIM.UncertaintyBatch(taqimRows(out), nil)
	if err != nil {
		return nil, fmt.Errorf("eval: replay taUW estimate: %w", err)
	}
	for i := range out {
		out[i].uTAUW = uTAUW[i]
	}
	return out, nil
}

// taqimRows materialises the taQIM input rows — stateless quality factors
// followed by the four taQF — for every replay record: the batch shape the
// compiled tree scores in cache-friendly blocks.
func taqimRows(recs []stepRecord) [][]float64 {
	rows := make([][]float64, len(recs))
	for i, r := range recs {
		row := make([]float64, 0, len(r.quality)+4)
		row = append(row, r.quality...)
		row = append(row, r.taqf[:]...)
		rows[i] = row
	}
	return rows
}

// ---------------------------------------------------------------- Fig. 4 --

// Fig4Step is one position of the misclassification-over-time curve.
type Fig4Step struct {
	// Position is the 1-based step within the series.
	Position int
	// IsolatedRate and FusedRate are the misclassification rates of the
	// momentaneous and fused outcomes at this position.
	IsolatedRate, FusedRate float64
	// N is the number of series contributing.
	N int
}

// Fig4Result reproduces Fig. 4 (RQ1): misclassification rate over series
// position for isolated and fused predictions.
type Fig4Result struct {
	Steps []Fig4Step
	// IsolatedOverall and FusedOverall average over all steps (the
	// paper: 7.89% -> 5.57%); FusedFinal is the fused rate at the last
	// step (paper: 3.69%).
	IsolatedOverall, FusedOverall, FusedFinal float64
}

// RunFig4 computes the misclassification-over-time experiment.
func (st *Study) RunFig4() (Fig4Result, error) {
	recs, err := st.replayTest()
	if err != nil {
		return Fig4Result{}, err
	}
	maxStep := 0
	for _, r := range recs {
		if r.step > maxStep {
			maxStep = r.step
		}
	}
	steps := make([]Fig4Step, maxStep+1)
	var isoErr, fusErr, total int
	for _, r := range recs {
		s := &steps[r.step]
		s.Position = r.step + 1
		s.N++
		total++
		if r.isolated != r.truth {
			s.IsolatedRate++
			isoErr++
		}
		if r.fused != r.truth {
			s.FusedRate++
			fusErr++
		}
	}
	for i := range steps {
		if steps[i].N > 0 {
			steps[i].IsolatedRate /= float64(steps[i].N)
			steps[i].FusedRate /= float64(steps[i].N)
		}
	}
	res := Fig4Result{
		Steps:           steps,
		IsolatedOverall: float64(isoErr) / float64(total),
		FusedOverall:    float64(fusErr) / float64(total),
		FusedFinal:      steps[maxStep].FusedRate,
	}
	return res, nil
}

// --------------------------------------------------------------- Table I --

// Table1Row is one uncertainty model's scores.
type Table1Row struct {
	// Approach names the condition as in the paper's Table I.
	Approach string
	// D holds the Brier score and its components.
	D stats.BrierDecomposition
}

// Table1Result reproduces Table I (RQ2a): Brier score and components for
// the six evaluated uncertainty models.
type Table1Result struct {
	Rows []Table1Row
}

// Row returns the row with the given approach name, or nil.
func (t Table1Result) Row(name string) *Table1Row {
	for i := range t.Rows {
		if t.Rows[i].Approach == name {
			return &t.Rows[i]
		}
	}
	return nil
}

// Approach names used in Table I.
const (
	ApproachStateless = "stateless UW (no IF + no UF)"
	ApproachNoUF      = "IF + no UF"
	ApproachNaive     = "IF + naive UF"
	ApproachWorstCase = "IF + worst-case UF"
	ApproachOpportune = "IF + opportune UF"
	ApproachTAUW      = "IF + taUW"
)

// RunTable1 computes the Table I comparison.
func (st *Study) RunTable1() (Table1Result, error) {
	recs, err := st.replayTest()
	if err != nil {
		return Table1Result{}, err
	}
	n := len(recs)
	type cond struct {
		name     string
		forecast []float64
		wrong    []bool
	}
	conds := []cond{
		{name: ApproachStateless, forecast: make([]float64, n), wrong: make([]bool, n)},
		{name: ApproachNoUF, forecast: make([]float64, n), wrong: make([]bool, n)},
		{name: ApproachNaive, forecast: make([]float64, n), wrong: make([]bool, n)},
		{name: ApproachWorstCase, forecast: make([]float64, n), wrong: make([]bool, n)},
		{name: ApproachOpportune, forecast: make([]float64, n), wrong: make([]bool, n)},
		{name: ApproachTAUW, forecast: make([]float64, n), wrong: make([]bool, n)},
	}
	for i, r := range recs {
		isoWrong := r.isolated != r.truth
		fusedWrong := r.fused != r.truth
		conds[0].forecast[i], conds[0].wrong[i] = r.uStep, isoWrong
		conds[1].forecast[i], conds[1].wrong[i] = r.uStep, fusedWrong
		conds[2].forecast[i], conds[2].wrong[i] = r.uNaive, fusedWrong
		conds[3].forecast[i], conds[3].wrong[i] = r.uWorst, fusedWrong
		conds[4].forecast[i], conds[4].wrong[i] = r.uOpp, fusedWrong
		conds[5].forecast[i], conds[5].wrong[i] = r.uTAUW, fusedWrong
	}
	var out Table1Result
	for _, c := range conds {
		d, err := decomposeAdaptive(c.forecast, c.wrong)
		if err != nil {
			return Table1Result{}, fmt.Errorf("eval: decomposing %q: %w", c.name, err)
		}
		out.Rows = append(out.Rows, Table1Row{Approach: c.name, D: d})
	}
	return out, nil
}

// decomposeAdaptive groups by exact forecast value when the estimator is
// discrete (tree leaves) and falls back to 50 quantile bins for continuous
// estimators (products/minima/maxima of leaf values).
func decomposeAdaptive(forecast []float64, wrong []bool) (stats.BrierDecomposition, error) {
	distinct := make(map[float64]struct{}, 80)
	for _, f := range forecast {
		distinct[f] = struct{}{}
		if len(distinct) > 64 {
			return stats.DecomposeBinned(forecast, wrong, 50)
		}
	}
	return stats.Decompose(forecast, wrong)
}

// ---------------------------------------------------------------- Fig. 5 --

// UncertaintyDist summarises the distribution of predicted uncertainties
// across the test cases for one estimator.
type UncertaintyDist struct {
	// MinU is the lowest uncertainty the estimator can guarantee.
	MinU float64
	// ShareAtMin is the fraction of cases that receive MinU (the arrow in
	// the paper's Fig. 5: 65.9% for the taUW).
	ShareAtMin float64
	// Mean is the mean predicted uncertainty.
	Mean float64
	// Hist is a 20-bin histogram over [0, 1].
	Hist []stats.HistogramBin
}

// Fig5Result reproduces Fig. 5 (RQ2a): uncertainty distributions of the
// stateless UW versus the taUW with information fusion.
type Fig5Result struct {
	Stateless UncertaintyDist
	TAUW      UncertaintyDist
}

// RunFig5 computes the uncertainty-distribution comparison.
func (st *Study) RunFig5() (Fig5Result, error) {
	recs, err := st.replayTest()
	if err != nil {
		return Fig5Result{}, err
	}
	statelessU := make([]float64, len(recs))
	tauwU := make([]float64, len(recs))
	for i, r := range recs {
		statelessU[i] = r.uStep
		tauwU[i] = r.uTAUW
	}
	sDist, err := summariseUncertainty(statelessU)
	if err != nil {
		return Fig5Result{}, err
	}
	tDist, err := summariseUncertainty(tauwU)
	if err != nil {
		return Fig5Result{}, err
	}
	return Fig5Result{Stateless: sDist, TAUW: tDist}, nil
}

func summariseUncertainty(us []float64) (UncertaintyDist, error) {
	summary, err := stats.Describe(us)
	if err != nil {
		return UncertaintyDist{}, err
	}
	hist, err := stats.Histogram(us, 0, 1, 20)
	if err != nil {
		return UncertaintyDist{}, err
	}
	return UncertaintyDist{
		MinU:       summary.Min,
		ShareAtMin: stats.WeightedShare(us, summary.Min+1e-12),
		Mean:       summary.Mean,
		Hist:       hist,
	}, nil
}

// ---------------------------------------------------------------- Fig. 6 --

// Fig6Curve is the calibration curve of one uncertainty model.
type Fig6Curve struct {
	Approach string
	Points   []stats.CalibrationPoint
}

// Fig6Result reproduces Fig. 6 (RQ2b): calibration of the UF approaches and
// the taUW, in 10% certainty-quantile steps.
type Fig6Result struct {
	Curves []Fig6Curve
}

// Curve returns the named curve, or nil.
func (f Fig6Result) Curve(name string) *Fig6Curve {
	for i := range f.Curves {
		if f.Curves[i].Approach == name {
			return &f.Curves[i]
		}
	}
	return nil
}

// RunFig6 computes the calibration plot data.
func (st *Study) RunFig6() (Fig6Result, error) {
	recs, err := st.replayTest()
	if err != nil {
		return Fig6Result{}, err
	}
	n := len(recs)
	mk := func(name string, u func(stepRecord) float64) (Fig6Curve, error) {
		certainty := make([]float64, n)
		correct := make([]bool, n)
		for i, r := range recs {
			certainty[i] = 1 - u(r)
			correct[i] = r.fused == r.truth
		}
		pts, err := stats.CalibrationCurve(certainty, correct, 10)
		if err != nil {
			return Fig6Curve{}, err
		}
		return Fig6Curve{Approach: name, Points: pts}, nil
	}
	specs := []struct {
		name string
		u    func(stepRecord) float64
	}{
		{ApproachNoUF, func(r stepRecord) float64 { return r.uStep }},
		{ApproachNaive, func(r stepRecord) float64 { return r.uNaive }},
		{ApproachWorstCase, func(r stepRecord) float64 { return r.uWorst }},
		{ApproachOpportune, func(r stepRecord) float64 { return r.uOpp }},
		{ApproachTAUW, func(r stepRecord) float64 { return r.uTAUW }},
	}
	var out Fig6Result
	for _, spec := range specs {
		c, err := mk(spec.name, spec.u)
		if err != nil {
			return Fig6Result{}, fmt.Errorf("eval: calibration curve %q: %w", spec.name, err)
		}
		out.Curves = append(out.Curves, c)
	}
	return out, nil
}

// ---------------------------------------------------------------- Fig. 7 --

// Fig7Row is the Brier score of one taQF subset.
type Fig7Row struct {
	// Features is the taQF subset the taQIM was fitted with.
	Features []core.Feature
	// Brier is the resulting Brier score on the test replay.
	Brier float64
}

// Fig7Result reproduces Fig. 7 (RQ3): the feature-importance study over all
// 15 non-empty taQF subsets.
type Fig7Result struct {
	Rows []Fig7Row
	// ReferenceNoTAQF is the Brier score with no taQF at all (IF + the
	// stateless estimate), the implicit baseline of the figure.
	ReferenceNoTAQF float64
	// Best points at the subset with the lowest Brier score.
	Best Fig7Row
}

// RunFig7 refits the taQIM for every taQF subset and scores it on the test
// replay.
func (st *Study) RunFig7() (Fig7Result, error) {
	recs, err := st.replayTest()
	if err != nil {
		return Fig7Result{}, err
	}
	fusedWrong := make([]bool, len(recs))
	for i, r := range recs {
		fusedWrong[i] = r.fused != r.truth
	}
	noTA := make([]float64, len(recs))
	for i, r := range recs {
		noTA[i] = r.uStep
	}
	ref, err := stats.BrierScore(noTA, fusedWrong)
	if err != nil {
		return Fig7Result{}, err
	}
	out := Fig7Result{ReferenceNoTAQF: ref, Best: Fig7Row{Brier: 2}}
	rows := make([][]float64, len(recs))
	var forecast []float64
	for _, feats := range core.FeatureSubsets() {
		qim, err := st.fitTAQIMSubset(feats)
		if err != nil {
			return Fig7Result{}, err
		}
		for i, r := range recs {
			sel, err := core.SelectFeatures(r.taqf, feats)
			if err != nil {
				return Fig7Result{}, err
			}
			row := rows[i][:0]
			row = append(row, r.quality...)
			row = append(row, sel...)
			rows[i] = row
		}
		forecast, err = qim.UncertaintyBatch(rows, forecast)
		if err != nil {
			return Fig7Result{}, fmt.Errorf("eval: subset %v estimate: %w", feats, err)
		}
		bs, err := stats.BrierScore(forecast, fusedWrong)
		if err != nil {
			return Fig7Result{}, err
		}
		row := Fig7Row{Features: append([]core.Feature(nil), feats...), Brier: bs}
		out.Rows = append(out.Rows, row)
		if bs < out.Best.Brier {
			out.Best = row
		}
	}
	return out, nil
}

// ---------------------------------------------------------------- RunAll --

// Results bundles every experiment of the study.
type Results struct {
	Config   StudyConfig
	DDMTest  float64
	DDMTrain float64
	Fig4     Fig4Result
	Table1   Table1Result
	Fig5     Fig5Result
	Fig6     Fig6Result
	Fig7     Fig7Result
	Coverage CoverageResult
	Lengths  LengthSweepResult
}

// RunAll executes every experiment, including the extensions beyond the
// paper (bound-coverage check and series-length sweep).
func (st *Study) RunAll() (Results, error) {
	fig4, err := st.RunFig4()
	if err != nil {
		return Results{}, err
	}
	table1, err := st.RunTable1()
	if err != nil {
		return Results{}, err
	}
	fig5, err := st.RunFig5()
	if err != nil {
		return Results{}, err
	}
	fig6, err := st.RunFig6()
	if err != nil {
		return Results{}, err
	}
	fig7, err := st.RunFig7()
	if err != nil {
		return Results{}, err
	}
	coverage, err := st.RunCoverage()
	if err != nil {
		return Results{}, err
	}
	lengths, err := st.RunLengthSweep(nil)
	if err != nil {
		return Results{}, err
	}
	return Results{
		Config:   st.Cfg,
		DDMTest:  st.DDMTestAccuracy,
		DDMTrain: st.DDMTrainAccuracy,
		Fig4:     fig4,
		Table1:   table1,
		Fig5:     fig5,
		Fig6:     fig6,
		Fig7:     fig7,
		Coverage: coverage,
		Lengths:  lengths,
	}, nil
}
