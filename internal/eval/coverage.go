package eval

import (
	"fmt"
	"sort"
	"strings"

	"github.com/iese-repro/tauw/internal/stats"
)

// coverageAlpha is the significance level of the one-sided binomial test
// that decides whether an observed group error rate exceeds the claimed
// bound beyond sampling noise.
const coverageAlpha = 0.05

// CoverageRow reports how well one estimator's uncertainty values hold up as
// upper bounds on the observed error rate.
type CoverageRow struct {
	// Approach names the estimator.
	Approach string
	// Groups is the number of forecast groups large enough to assess
	// (>= MinGroup samples).
	Groups int
	// ViolatedGroups counts groups whose observed error rate exceeds the
	// predicted uncertainty *significantly* (one-sided exact binomial
	// test at level coverageAlpha); an observed rate nudging past the
	// bound within sampling noise is not a violation.
	ViolatedGroups int
	// ViolationShare is the sample-weighted share of assessed cases that
	// sit in violating groups.
	ViolationShare float64
	// WorstGap is the largest (observed rate - predicted bound) across
	// groups, 0 when nothing violates.
	WorstGap float64
}

// CoverageResult is the dependability check: uncertainty wrappers promise
// that, region by region, the true failure rate stays below the estimate
// with the calibration confidence (0.999 in the paper). This experiment
// verifies the promise empirically on the held-out test replay, for the
// estimators that claim it (stateless UW, taUW) and for the fusion
// baselines for contrast — the naïve product is expected to violate
// massively, which is the paper's core argument against it.
type CoverageResult struct {
	// MinGroup is the smallest group size assessed.
	MinGroup int
	Rows     []CoverageRow
}

// RunCoverage computes the dependability check with the default minimum
// group size of 50 samples.
func (st *Study) RunCoverage() (CoverageResult, error) {
	return st.RunCoverageMinGroup(50)
}

// RunCoverageMinGroup computes the dependability check, assessing only
// forecast groups with at least minGroup test samples (smaller groups carry
// too much sampling noise to call a violation).
func (st *Study) RunCoverageMinGroup(minGroup int) (CoverageResult, error) {
	if minGroup < 1 {
		minGroup = 1
	}
	recs, err := st.replayTest()
	if err != nil {
		return CoverageResult{}, err
	}
	type estimator struct {
		name  string
		u     func(stepRecord) float64
		wrong func(stepRecord) bool
	}
	isoWrong := func(r stepRecord) bool { return r.isolated != r.truth }
	fusedWrong := func(r stepRecord) bool { return r.fused != r.truth }
	estimators := []estimator{
		{ApproachStateless, func(r stepRecord) float64 { return r.uStep }, isoWrong},
		{ApproachNoUF, func(r stepRecord) float64 { return r.uStep }, fusedWrong},
		{ApproachNaive, func(r stepRecord) float64 { return r.uNaive }, fusedWrong},
		{ApproachWorstCase, func(r stepRecord) float64 { return r.uWorst }, fusedWrong},
		{ApproachOpportune, func(r stepRecord) float64 { return r.uOpp }, fusedWrong},
		{ApproachTAUW, func(r stepRecord) float64 { return r.uTAUW }, fusedWrong},
	}
	out := CoverageResult{MinGroup: minGroup}
	for _, est := range estimators {
		row, err := coverageFor(recs, est.u, est.wrong, minGroup)
		if err != nil {
			return CoverageResult{}, fmt.Errorf("eval: coverage for %q: %w", est.name, err)
		}
		row.Approach = est.name
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// coverageFor groups samples by (rounded) forecast value and assesses bound
// violations. Continuous estimators are quantised to 3 decimal places so
// near-identical products share a group.
func coverageFor(recs []stepRecord, u func(stepRecord) float64, wrong func(stepRecord) bool,
	minGroup int) (CoverageRow, error) {
	type group struct {
		bound  float64
		count  int
		events int
	}
	groups := make(map[float64]*group, 64)
	for _, r := range recs {
		v := u(r)
		key := quantise(v)
		g := groups[key]
		if g == nil {
			g = &group{bound: v}
			groups[key] = g
		}
		// Keep the loosest bound of the quantisation bucket so the
		// check never blames rounding.
		if v > g.bound {
			g.bound = v
		}
		g.count++
		if wrong(r) {
			g.events++
		}
	}
	keys := make([]float64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	var row CoverageRow
	assessed := 0
	violating := 0
	for _, k := range keys {
		g := groups[k]
		if g.count < minGroup {
			continue
		}
		row.Groups++
		assessed += g.count
		rate := float64(g.events) / float64(g.count)
		if rate <= g.bound {
			continue
		}
		// The observed rate exceeds the bound: significant, or noise?
		tail, err := stats.BinomialTailAtLeast(g.events, g.count, g.bound)
		if err != nil {
			return CoverageRow{}, err
		}
		if tail < coverageAlpha {
			row.ViolatedGroups++
			violating += g.count
			if gap := rate - g.bound; gap > row.WorstGap {
				row.WorstGap = gap
			}
		}
	}
	if assessed > 0 {
		row.ViolationShare = float64(violating) / float64(assessed)
	}
	return row, nil
}

// quantise buckets forecasts to 3 decimal places.
func quantise(v float64) float64 {
	return float64(int(v*1000+0.5)) / 1000
}

// String renders the coverage check.
func (r CoverageResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dependability check — bound coverage on held-out data (groups >= %d samples)\n", r.MinGroup)
	fmt.Fprintf(&b, "%-30s %8s %10s %16s %10s\n", "approach", "groups", "violated", "violation share", "worst gap")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-30s %8d %10d %15.2f%% %10.4f\n",
			row.Approach, row.Groups, row.ViolatedGroups, 100*row.ViolationShare, row.WorstGap)
	}
	return b.String()
}
