package eval

import (
	"fmt"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/monitor"
)

// MonitorReplayConfig parameterises an offline replay through the runtime
// calibration monitor.
type MonitorReplayConfig struct {
	// Monitor configures the calibration monitor the replay is scored
	// through (zero fields take the monitor defaults).
	Monitor monitor.Config
	// FeedbackRing is the per-series provenance ring length (0 takes
	// DefaultReplayRing). The replay joins each step's truth immediately,
	// so any positive ring suffices; the size only matters when comparing
	// against an online run that must be configured identically.
	FeedbackRing int
	// PoolShards overrides the wrapper pool's shard count (0 = default).
	PoolShards int
	// BufferLimit caps each series' timeseries buffer (0 = unbounded).
	BufferLimit int
}

// DefaultReplayRing comfortably covers the study's series lengths.
const DefaultReplayRing = 256

// MonitorReplayResult is the outcome of an offline monitor replay.
type MonitorReplayResult struct {
	// Snapshot is the monitor's final aggregate — the same windowed
	// Brier / ECE / reliability bins a live /metrics scrape reports.
	Snapshot monitor.Snapshot
	// Steps is the number of steps replayed and Joined the number of
	// ground-truth joins folded into the monitor (equal unless a join
	// fails, which the replay treats as an error).
	Steps, Joined int
}

// RunMonitorReplay replays every test series through the serving substrate
// — the sharded, monitored wrapper pool — and feeds each step's known
// ground truth back through the same provenance-ring join and calibration
// monitor the live /v1/feedback path uses. Offline evaluation and online
// monitoring therefore share one implementation: the reliability numbers a
// deployment scrapes from /metrics are directly comparable to (and, on an
// identical trace, bit-identical with) the numbers this replay reports,
// which is pinned by the tauserve differential test.
func (st *Study) RunMonitorReplay(cfg MonitorReplayConfig) (MonitorReplayResult, error) {
	if cfg.FeedbackRing == 0 {
		cfg.FeedbackRing = DefaultReplayRing
	}
	m, err := monitor.New(cfg.Monitor)
	if err != nil {
		return MonitorReplayResult{}, err
	}
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM, core.Config{BufferLimit: cfg.BufferLimit}, 0,
		core.WithShards(cfg.PoolShards), core.WithMonitoring(cfg.FeedbackRing))
	if err != nil {
		return MonitorReplayResult{}, err
	}
	var out MonitorReplayResult
	for si, s := range st.TestSeries {
		id, err := pool.OpenSeries()
		if err != nil {
			return MonitorReplayResult{}, fmt.Errorf("eval: monitor replay series %d: %w", si, err)
		}
		track, err := pool.ResolveSeries(id)
		if err != nil {
			return MonitorReplayResult{}, err
		}
		for j := range s.Outcomes {
			res, err := pool.StepSeries(id, s.Outcomes[j], s.Quality[j])
			if err != nil {
				return MonitorReplayResult{}, fmt.Errorf("eval: monitor replay series %d step %d: %w", si, j, err)
			}
			out.Steps++
			rec, err := pool.TakeFeedback(track, res.TotalSteps)
			if err != nil {
				return MonitorReplayResult{}, fmt.Errorf("eval: monitor replay join series %d step %d: %w", si, j, err)
			}
			if err := m.Observe(track, rec.Uncertainty, rec.Fused != s.Truth); err != nil {
				return MonitorReplayResult{}, err
			}
			out.Joined++
		}
		if err := pool.CloseSeries(id); err != nil {
			return MonitorReplayResult{}, err
		}
	}
	out.Snapshot = m.Snapshot()
	return out, nil
}
