package eval

import (
	"fmt"
	"sort"
	"strings"

	"github.com/iese-repro/tauw/internal/stats"
)

// LengthRow reports the study metrics when only the first L steps of every
// test series are available.
type LengthRow struct {
	// Length is the truncated series length.
	Length int
	// IsolatedErr and FusedErr are the misclassification rates at the
	// final available step.
	IsolatedErr, FusedErr float64
	// TAUWBrier and NoUFBrier score the taUW and the timeseries-unaware
	// estimate at the final available step.
	TAUWBrier, NoUFBrier float64
}

// LengthSweepResult answers the second half of RQ1 ("is information fusion
// effectively applicable even for shorter timeseries?") quantitatively:
// every test series is truncated to its first L steps and the final-step
// decision quality and uncertainty quality are reported per L. The taQIM
// stays the one calibrated on full-length series — the length taQF is
// exactly what lets it adapt.
type LengthSweepResult struct {
	Rows []LengthRow
}

// RunLengthSweep evaluates the given truncation lengths (default 1..full).
func (st *Study) RunLengthSweep(lengths []int) (LengthSweepResult, error) {
	if len(lengths) == 0 {
		for l := 1; l <= st.Cfg.SubseriesLen; l++ {
			lengths = append(lengths, l)
		}
	}
	sort.Ints(lengths)
	recs, err := st.replayTest()
	if err != nil {
		return LengthSweepResult{}, err
	}
	// Index the replay by step position.
	byStep := make(map[int][]stepRecord)
	for _, r := range recs {
		byStep[r.step] = append(byStep[r.step], r)
	}
	var out LengthSweepResult
	for _, l := range lengths {
		if l < 1 || l > st.Cfg.SubseriesLen {
			return LengthSweepResult{}, fmt.Errorf("eval: length %d outside 1..%d", l, st.Cfg.SubseriesLen)
		}
		finals := byStep[l-1]
		if len(finals) == 0 {
			return LengthSweepResult{}, fmt.Errorf("eval: no test records at step %d", l)
		}
		row := LengthRow{Length: l}
		tauwForecast := make([]float64, len(finals))
		noufForecast := make([]float64, len(finals))
		fusedWrong := make([]bool, len(finals))
		for i, r := range finals {
			if r.isolated != r.truth {
				row.IsolatedErr++
			}
			if r.fused != r.truth {
				row.FusedErr++
				fusedWrong[i] = true
			}
			tauwForecast[i] = r.uTAUW
			noufForecast[i] = r.uStep
		}
		n := float64(len(finals))
		row.IsolatedErr /= n
		row.FusedErr /= n
		if row.TAUWBrier, err = stats.BrierScore(tauwForecast, fusedWrong); err != nil {
			return LengthSweepResult{}, err
		}
		if row.NoUFBrier, err = stats.BrierScore(noufForecast, fusedWrong); err != nil {
			return LengthSweepResult{}, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the sweep.
func (r LengthSweepResult) String() string {
	var b strings.Builder
	b.WriteString("Length sweep — decision and uncertainty quality vs. available series length\n")
	fmt.Fprintf(&b, "%7s %12s %10s %12s %12s\n", "length", "isolated", "fused", "taUW Brier", "no-UF Brier")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7d %11.2f%% %9.2f%% %12.4f %12.4f\n",
			row.Length, 100*row.IsolatedErr, 100*row.FusedErr, row.TAUWBrier, row.NoUFBrier)
	}
	return b.String()
}
