package eval

import (
	"strings"
	"testing"
)

func TestCoverageShapes(t *testing.T) {
	st := tinyStudy(t)
	res, err := st.RunCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(res.Rows))
	}
	byName := make(map[string]CoverageRow, len(res.Rows))
	for _, row := range res.Rows {
		byName[row.Approach] = row
		if row.ViolationShare < 0 || row.ViolationShare > 1 {
			t.Errorf("%s: violation share %g invalid", row.Approach, row.ViolationShare)
		}
		if row.ViolatedGroups > row.Groups {
			t.Errorf("%s: %d violated of %d groups", row.Approach, row.ViolatedGroups, row.Groups)
		}
		if row.ViolatedGroups == 0 && row.WorstGap != 0 {
			t.Errorf("%s: no violations but worst gap %g", row.Approach, row.WorstGap)
		}
	}
	// The dependable estimators must keep violations rare; the naive
	// product must violate more than the taUW (the paper's core
	// argument: independence does not hold on timeseries).
	tauw := byName[ApproachTAUW]
	naive := byName[ApproachNaive]
	if tauw.ViolationShare > 0.1 {
		t.Errorf("taUW violation share %.3f too high for a calibrated bound", tauw.ViolationShare)
	}
	if naive.ViolationShare <= tauw.ViolationShare {
		t.Errorf("naive UF (%.3f) must violate more than taUW (%.3f)",
			naive.ViolationShare, tauw.ViolationShare)
	}
	stateless := byName[ApproachStateless]
	if stateless.ViolationShare > 0.25 {
		t.Errorf("stateless UW violation share %.3f implausibly high", stateless.ViolationShare)
	}
	if !strings.Contains(res.String(), "Dependability check") {
		t.Error("renderer broken")
	}
}

func TestLengthSweep(t *testing.T) {
	st := tinyStudy(t)
	res, err := st.RunLengthSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != st.Cfg.SubseriesLen {
		t.Fatalf("%d rows, want %d", len(res.Rows), st.Cfg.SubseriesLen)
	}
	first := res.Rows[0]
	last := res.Rows[len(res.Rows)-1]
	// At length 1 fusion cannot help; by the final length it must.
	if first.FusedErr != first.IsolatedErr {
		t.Errorf("length 1: fused %.4f != isolated %.4f", first.FusedErr, first.IsolatedErr)
	}
	if last.FusedErr >= last.IsolatedErr {
		t.Errorf("full length: fused %.4f must beat isolated %.4f", last.FusedErr, last.IsolatedErr)
	}
	// Fusion is effective for short series too: already by length 3 the
	// fused error must not exceed the isolated one (the paper's claim).
	if res.Rows[2].FusedErr > res.Rows[2].IsolatedErr {
		t.Errorf("length 3: fused %.4f worse than isolated %.4f",
			res.Rows[2].FusedErr, res.Rows[2].IsolatedErr)
	}
	// The taUW's uncertainty quality must beat the timeseries-unaware
	// estimate at full length.
	if last.TAUWBrier >= last.NoUFBrier {
		t.Errorf("full length: taUW Brier %.4f must beat no-UF %.4f",
			last.TAUWBrier, last.NoUFBrier)
	}
	// Bad lengths fail.
	if _, err := st.RunLengthSweep([]int{0}); err == nil {
		t.Error("length 0 must fail")
	}
	if _, err := st.RunLengthSweep([]int{99}); err == nil {
		t.Error("oversized length must fail")
	}
	if !strings.Contains(res.String(), "Length sweep") {
		t.Error("renderer broken")
	}
}

func TestCoverageMinGroupClamp(t *testing.T) {
	st := tinyStudy(t)
	res, err := st.RunCoverageMinGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinGroup != 1 {
		t.Errorf("min group = %d, want clamped to 1", res.MinGroup)
	}
	// With min group 1 every sample is assessed, so there are at least
	// as many groups as with the default.
	def, err := st.RunCoverage()
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i].Groups < def.Rows[i].Groups {
			t.Errorf("%s: %d groups with min 1 < %d with min 50",
				res.Rows[i].Approach, res.Rows[i].Groups, def.Rows[i].Groups)
		}
	}
}
