package eval

import (
	"fmt"
	"strings"

	"github.com/iese-repro/tauw/internal/core"
)

// String renders Fig. 4 as an ASCII table plus bar chart.
func (r Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 4 — misclassification rate over timesteps (isolated vs. information fusion)\n")
	b.WriteString("step |   isolated |      fused | chart (#=isolated, *=fused)\n")
	for _, s := range r.Steps {
		bar := func(v float64, ch byte) string {
			n := int(v * 200)
			if n > 40 {
				n = 40
			}
			return strings.Repeat(string(ch), n)
		}
		fmt.Fprintf(&b, "%4d | %9.2f%% | %9.2f%% | %s\n%s\n",
			s.Position, 100*s.IsolatedRate, 100*s.FusedRate,
			bar(s.IsolatedRate, '#'), strings.Repeat(" ", 33)+"| "+bar(s.FusedRate, '*'))
	}
	fmt.Fprintf(&b, "overall: isolated %.2f%%, fused %.2f%%, fused@final %.2f%%\n",
		100*r.IsolatedOverall, 100*r.FusedOverall, 100*r.FusedFinal)
	return b.String()
}

// String renders Table I in the paper's layout.
func (t Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table I — evaluation of different uncertainty models\n")
	fmt.Fprintf(&b, "%-30s %10s %10s %12s %13s %14s\n",
		"approach", "Brier", "variance", "unspecific.", "unreliability", "overconfidence")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-30s %10.4f %10.4f %12.4f %13.5f %14.2e\n",
			row.Approach, row.D.Brier, row.D.Variance, row.D.Unspecificity,
			row.D.Unreliability, row.D.Overconfidence)
	}
	return b.String()
}

// String renders Fig. 5 as paired histograms.
func (r Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 5 — distribution of uncertainty across cases\n")
	render := func(name string, d UncertaintyDist) {
		fmt.Fprintf(&b, "%s: min u = %.4f guaranteed for %.1f%% of cases, mean u = %.4f\n",
			name, d.MinU, 100*d.ShareAtMin, d.Mean)
		for _, bin := range d.Hist {
			if bin.Count == 0 {
				continue
			}
			bar := bin.Count * 60 / d.Hist[maxBin(d)].Count
			fmt.Fprintf(&b, "  [%.2f,%.2f) %7d %s\n", bin.Lo, bin.Hi, bin.Count, strings.Repeat("#", bar))
		}
	}
	render("stateless UW (isolated)", r.Stateless)
	render("taUW + IF", r.TAUW)
	return b.String()
}

func maxBin(d UncertaintyDist) int {
	best := 0
	for i, b := range d.Hist {
		if b.Count > d.Hist[best].Count {
			best = i
		}
	}
	return best
}

// String renders Fig. 6 as a calibration table per approach.
func (f Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 6 — calibration (predicted certainty quantiles vs. observed correctness)\n")
	for _, c := range f.Curves {
		fmt.Fprintf(&b, "%s:\n", c.Approach)
		for _, p := range c.Points {
			verdict := "calibrated"
			switch {
			case p.Observed < p.MeanPredicted-0.01:
				verdict = "OVERconfident"
			case p.Observed > p.MeanPredicted+0.01:
				verdict = "underconfident"
			}
			fmt.Fprintf(&b, "  predicted %.4f -> observed %.4f (n=%d, %s)\n",
				p.MeanPredicted, p.Observed, p.Count, verdict)
		}
	}
	return b.String()
}

// String renders Fig. 7 grouped by subset size.
func (r Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — Brier score by taQF subset\n")
	fmt.Fprintf(&b, "reference (IF + no taQF): %.4f\n", r.ReferenceNoTAQF)
	lastSize := 0
	for _, row := range r.Rows {
		if len(row.Features) != lastSize {
			lastSize = len(row.Features)
			fmt.Fprintf(&b, "-- %d feature(s) --\n", lastSize)
		}
		fmt.Fprintf(&b, "  %-55s %.4f\n", featureList(row.Features), row.Brier)
	}
	fmt.Fprintf(&b, "best: %s with %.4f\n", featureList(r.Best.Features), r.Best.Brier)
	return b.String()
}

func featureList(feats []core.Feature) string {
	names := core.FeatureNames(feats)
	return strings.Join(names, "+")
}

// String renders the full result bundle.
func (r Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "study preset %q: %d series, %d-step subseries, %dx eval augmentation\n",
		r.Config.Name, r.Config.NumSeries, r.Config.SubseriesLen, r.Config.EvalAugmentations)
	fmt.Fprintf(&b, "DDM accuracy: %.2f%% on training frames, %.2f%% on test subseries frames\n\n",
		100*r.DDMTrain, 100*r.DDMTest)
	b.WriteString(r.Fig4.String())
	b.WriteString("\n")
	b.WriteString(r.Table1.String())
	b.WriteString("\n")
	b.WriteString(r.Fig5.String())
	b.WriteString("\n")
	b.WriteString(r.Fig6.String())
	b.WriteString("\n")
	b.WriteString(r.Fig7.String())
	b.WriteString("\n")
	b.WriteString(r.Coverage.String())
	b.WriteString("\n")
	b.WriteString(r.Lengths.String())
	return b.String()
}
