package eval

import (
	"math"
	"testing"

	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/stats"
)

func TestRunMonitorReplay(t *testing.T) {
	st := tinyStudy(t)
	res, err := st.RunMonitorReplay(MonitorReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := 0
	for _, s := range st.TestSeries {
		wantSteps += len(s.Outcomes)
	}
	if res.Steps != wantSteps || res.Joined != wantSteps {
		t.Errorf("steps/joined = %d/%d, want %d/%d", res.Steps, res.Joined, wantSteps, wantSteps)
	}
	snap := res.Snapshot
	if snap.Feedbacks != uint64(wantSteps) {
		t.Errorf("monitor saw %d feedbacks, want %d", snap.Feedbacks, wantSteps)
	}
	if snap.Brier < 0 || snap.Brier > 1 || math.IsNaN(snap.Brier) {
		t.Errorf("cumulative Brier %g outside [0,1]", snap.Brier)
	}
	if snap.ECE < 0 || snap.ECE > 1 {
		t.Errorf("ECE %g outside [0,1]", snap.ECE)
	}
	if snap.WindowCount == 0 {
		t.Error("empty sliding window after replay")
	}
	var binned uint64
	for _, b := range snap.Bins {
		binned += b.Count
	}
	if binned != snap.Feedbacks {
		t.Errorf("reliability bins cover %d of %d feedbacks", binned, snap.Feedbacks)
	}
}

// TestMonitorReplayMatchesTable1 ties the monitor's cumulative Brier to the
// study's established scoring path: the monitor judges the taUW estimates
// against fused-outcome errors over the full test replay, which is exactly
// the "IF + taUW" condition of Table I — computed by completely different
// code (batch tree inference + stats.BrierScore there, streaming shard
// accumulators here).
func TestMonitorReplayMatchesTable1(t *testing.T) {
	st := tinyStudy(t)
	res, err := st.RunMonitorReplay(MonitorReplayConfig{
		// One huge window so the windowed and cumulative scores coincide.
		Monitor: monitor.Config{Window: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.replayTest()
	if err != nil {
		t.Fatal(err)
	}
	forecast := make([]float64, len(recs))
	wrong := make([]bool, len(recs))
	for i, r := range recs {
		forecast[i] = r.uTAUW
		wrong[i] = r.fused != r.truth
	}
	want, err := stats.BrierScore(forecast, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Snapshot.Brier-want) > 1e-12 {
		t.Errorf("monitor Brier = %g, Table-1 scoring = %g", res.Snapshot.Brier, want)
	}
	if math.Abs(res.Snapshot.WindowedBrier-res.Snapshot.Brier) > 1e-12 {
		t.Errorf("windowed %g != cumulative %g with an unfilled window",
			res.Snapshot.WindowedBrier, res.Snapshot.Brier)
	}
}
