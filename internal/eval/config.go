// Package eval implements the study harness: it assembles the synthetic
// GTSRB benchmark, trains the DDM, calibrates the stateless and
// timeseries-aware uncertainty wrappers, and reproduces every table and
// figure of the paper's evaluation (Fig. 4, Fig. 5, Table I, Fig. 6,
// Fig. 7) plus the ablations called out in DESIGN.md.
package eval

import (
	"errors"
	"fmt"

	"github.com/iese-repro/tauw/internal/ddm"
	"github.com/iese-repro/tauw/internal/gtsrb"
	"github.com/iese-repro/tauw/internal/uw"
)

// StudyConfig parameterises a full study run.
type StudyConfig struct {
	// Name labels the preset in reports.
	Name string
	// NumSeries is the number of physical sign encounters (paper: 1307).
	NumSeries int
	// TrainFrac and CalibFrac split the series (paper: 522/392/392 ~
	// 0.4/0.3/0.3).
	TrainFrac, CalibFrac float64
	// SubseriesLen is the length of the subsampled calibration and test
	// series (paper: 10).
	SubseriesLen int
	// TrainAugmentations is how many situation settings are drawn per
	// training series for the timeseries-aware training rows.
	TrainAugmentations int
	// EvalAugmentations is how many situation settings are drawn per
	// calibration/test series (paper: 28).
	EvalAugmentations int
	// PoolSize is the situation-setting pool size (paper: 2.7 million).
	PoolSize int
	// Feature is the synthetic embedding model configuration.
	Feature ddm.FeatureConfig
	// Train is the DDM training configuration.
	Train ddm.TrainConfig
	// QIM configures both quality impact models.
	QIM uw.QIMConfig
	// UseMLP selects the MLP classifier instead of softmax regression.
	UseMLP bool
	// MLPHidden is the hidden width when UseMLP is set.
	MLPHidden int
	// Seed drives every random choice in the study.
	Seed uint64
}

// PaperConfig reproduces the paper's scale: 1307 series split 522/392/392,
// 28 augmentations of each calibration/test series, length-10 subseries,
// tree depth 8, >=200 calibration samples per leaf, 0.999 confidence.
func PaperConfig() StudyConfig {
	return StudyConfig{
		Name:               "paper",
		NumSeries:          1307,
		TrainFrac:          0.4,
		CalibFrac:          0.3,
		SubseriesLen:       10,
		TrainAugmentations: 28,
		EvalAugmentations:  28,
		PoolSize:           augmentPoolSize,
		Feature:            ddm.DefaultFeatureConfig(),
		Train:              ddm.DefaultTrainConfig(),
		QIM:                uw.DefaultQIMConfig(),
		Seed:               2023,
	}
}

// augmentPoolSize is shared by the presets; the paper's pool holds 2.7
// million settings. Settings are generated lazily, so the pool size costs
// nothing.
const augmentPoolSize = 2_700_000

// QuickConfig is a scaled-down preset that preserves every shape of the
// study while running in a couple of seconds on one core.
func QuickConfig() StudyConfig {
	cfg := PaperConfig()
	cfg.Name = "quick"
	cfg.NumSeries = 220
	cfg.TrainAugmentations = 10
	cfg.EvalAugmentations = 10
	cfg.Train.Epochs = 4
	cfg.QIM.MinLeafCalibration = 150
	return cfg
}

// TinyConfig is the test preset: small enough for unit tests, still
// end-to-end.
func TinyConfig() StudyConfig {
	cfg := PaperConfig()
	cfg.Name = "tiny"
	cfg.NumSeries = 170
	cfg.TrainAugmentations = 6
	cfg.EvalAugmentations = 6
	cfg.Train.Epochs = 3
	cfg.QIM.MinLeafCalibration = 100
	cfg.QIM.TreeDepth = 6
	return cfg
}

// Validate checks the configuration.
func (c StudyConfig) Validate() error {
	switch {
	case c.NumSeries < 10:
		return fmt.Errorf("eval: need at least 10 series, got %d", c.NumSeries)
	case c.TrainFrac <= 0 || c.CalibFrac <= 0 || c.TrainFrac+c.CalibFrac >= 1:
		return fmt.Errorf("eval: invalid split %g/%g", c.TrainFrac, c.CalibFrac)
	case c.SubseriesLen < 2:
		return errors.New("eval: subseries length must be at least 2")
	case c.TrainAugmentations <= 0 || c.EvalAugmentations <= 0:
		return errors.New("eval: augmentation counts must be positive")
	case c.PoolSize <= 0:
		return errors.New("eval: pool size must be positive")
	case c.UseMLP && c.MLPHidden <= 0:
		return errors.New("eval: MLP hidden width must be positive")
	}
	if err := c.Feature.Validate(); err != nil {
		return err
	}
	if err := c.Train.Validate(); err != nil {
		return err
	}
	if err := c.QIM.Validate(); err != nil {
		return err
	}
	if c.SubseriesLen > gtsrb.DefaultGeneratorConfig().MinFrames {
		return fmt.Errorf("eval: subseries length %d exceeds the shortest series", c.SubseriesLen)
	}
	return nil
}
