package eval

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/stats"
)

// The study is expensive to build, so all tests share one instance.
var (
	studyOnce sync.Once
	studyVal  *Study
	studyErr  error
)

func tinyStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		studyVal, studyErr = BuildStudy(TinyConfig())
	})
	if studyErr != nil {
		t.Fatalf("BuildStudy: %v", studyErr)
	}
	return studyVal
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []StudyConfig{PaperConfig(), QuickConfig(), TinyConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", cfg.Name, err)
		}
	}
	bad := TinyConfig()
	bad.NumSeries = 5
	if err := bad.Validate(); err == nil {
		t.Error("too few series must fail")
	}
	bad = TinyConfig()
	bad.TrainFrac = 0.9
	bad.CalibFrac = 0.3
	if err := bad.Validate(); err == nil {
		t.Error("fractions above 1 must fail")
	}
	bad = TinyConfig()
	bad.SubseriesLen = 1
	if err := bad.Validate(); err == nil {
		t.Error("subseries of 1 must fail")
	}
	bad = TinyConfig()
	bad.SubseriesLen = 40
	if err := bad.Validate(); err == nil {
		t.Error("subseries longer than series must fail")
	}
	bad = TinyConfig()
	bad.UseMLP = true
	if err := bad.Validate(); err == nil {
		t.Error("MLP without hidden width must fail")
	}
	bad = TinyConfig()
	bad.EvalAugmentations = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero augmentations must fail")
	}
	if _, err := BuildStudy(bad); err == nil {
		t.Error("BuildStudy must validate")
	}
}

func TestStudyBasics(t *testing.T) {
	st := tinyStudy(t)
	if st.Model == nil || st.Base == nil || st.TAQIM == nil {
		t.Fatal("study incomplete")
	}
	// The paper's DDM regime: clearly better than chance, imperfect.
	if st.DDMTestAccuracy < 0.75 || st.DDMTestAccuracy > 0.99 {
		t.Errorf("DDM test accuracy %.3f outside the study regime", st.DDMTestAccuracy)
	}
	if st.DDMTrainAccuracy < st.DDMTestAccuracy {
		t.Errorf("training accuracy %.3f below test accuracy %.3f",
			st.DDMTrainAccuracy, st.DDMTestAccuracy)
	}
	wantSeries := func(name string, got []core.SeriesObservations, orig, aug int) {
		if len(got) != orig*aug {
			t.Errorf("%s series = %d, want %d*%d", name, len(got), orig, aug)
		}
		for _, s := range got {
			if len(s.Outcomes) != st.Cfg.SubseriesLen {
				t.Fatalf("%s series has %d steps, want %d", name, len(s.Outcomes), st.Cfg.SubseriesLen)
			}
		}
	}
	// 80 series split 0.4/0.3/0.3 stratified: sizes vary by rounding, so
	// check only the augmentation factor via divisibility.
	if len(st.TrainSeries)%st.Cfg.TrainAugmentations != 0 {
		t.Error("train series not a multiple of augmentations")
	}
	wantSeries("train", st.TrainSeries, len(st.TrainSeries)/st.Cfg.TrainAugmentations, st.Cfg.TrainAugmentations)
	wantSeries("calib", st.CalibSeries, len(st.CalibSeries)/st.Cfg.EvalAugmentations, st.Cfg.EvalAugmentations)
	wantSeries("test", st.TestSeries, len(st.TestSeries)/st.Cfg.EvalAugmentations, st.Cfg.EvalAugmentations)
}

func TestFig4Shapes(t *testing.T) {
	st := tinyStudy(t)
	fig4, err := st.RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4.Steps) != st.Cfg.SubseriesLen {
		t.Fatalf("%d steps, want %d", len(fig4.Steps), st.Cfg.SubseriesLen)
	}
	// Paper: during the first two steps fused and isolated coincide.
	for i := 0; i < 2; i++ {
		if fig4.Steps[i].IsolatedRate != fig4.Steps[i].FusedRate {
			t.Errorf("step %d: fused %.4f != isolated %.4f", i+1,
				fig4.Steps[i].FusedRate, fig4.Steps[i].IsolatedRate)
		}
	}
	// Paper: with three or more timesteps the fused predictions win, and
	// the improvement grows toward the end of the series.
	if fig4.FusedOverall >= fig4.IsolatedOverall {
		t.Errorf("fused overall %.4f must beat isolated %.4f", fig4.FusedOverall, fig4.IsolatedOverall)
	}
	last := fig4.Steps[len(fig4.Steps)-1]
	if last.FusedRate >= last.IsolatedRate {
		t.Errorf("final step: fused %.4f must beat isolated %.4f", last.FusedRate, last.IsolatedRate)
	}
	if fig4.FusedFinal >= fig4.FusedOverall {
		t.Errorf("fused error must shrink along the series: final %.4f vs overall %.4f",
			fig4.FusedFinal, fig4.FusedOverall)
	}
	if !strings.Contains(fig4.String(), "Fig. 4") {
		t.Error("renderer broken")
	}
}

func TestTable1Shapes(t *testing.T) {
	st := tinyStudy(t)
	table, err := st.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(table.Rows))
	}
	get := func(name string) stats.BrierDecomposition {
		row := table.Row(name)
		if row == nil {
			t.Fatalf("missing row %q", name)
		}
		return row.D
	}
	stateless := get(ApproachStateless)
	noUF := get(ApproachNoUF)
	naive := get(ApproachNaive)
	worst := get(ApproachWorstCase)
	opp := get(ApproachOpportune)
	tauw := get(ApproachTAUW)

	// The variance component depends only on the predictand: identical
	// across the five fused conditions, higher for the isolated one.
	for _, d := range []stats.BrierDecomposition{naive, worst, opp, tauw} {
		if math.Abs(d.Variance-noUF.Variance) > 1e-12 {
			t.Errorf("variance must match across fused conditions: %g vs %g", d.Variance, noUF.Variance)
		}
	}
	if stateless.Variance <= noUF.Variance {
		t.Error("fusion must reduce the variance component")
	}
	// Paper's headline: the taUW achieves the best Brier score.
	for name, d := range map[string]stats.BrierDecomposition{
		ApproachStateless: stateless, ApproachNoUF: noUF, ApproachNaive: naive,
		ApproachWorstCase: worst, ApproachOpportune: opp,
	} {
		if tauw.Brier >= d.Brier {
			t.Errorf("taUW Brier %.4f must beat %s (%.4f)", tauw.Brier, name, d.Brier)
		}
	}
	// Naive UF is the overconfident one; worst-case is the most
	// conservative (near-zero overconfidence) and the worst fused Brier.
	if naive.Overconfidence <= tauw.Overconfidence {
		t.Error("naive must be more overconfident than taUW")
	}
	if naive.Overconfidence <= worst.Overconfidence {
		t.Error("naive must be more overconfident than worst-case")
	}
	if worst.Brier <= noUF.Brier {
		t.Error("worst-case must have the worst Brier among simple fused estimators")
	}
	if tauw.Unspecificity >= stateless.Unspecificity {
		t.Error("taUW must be more specific than the stateless wrapper")
	}
	if !strings.Contains(table.String(), "Table I") {
		t.Error("renderer broken")
	}
	if table.Row("nope") != nil {
		t.Error("unknown row must be nil")
	}
}

func TestFig5Shapes(t *testing.T) {
	st := tinyStudy(t)
	fig5, err := st.RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: the taUW guarantees a lower minimum uncertainty to more
	// cases, and reduces the tolerated uncertainty overall.
	if fig5.TAUW.MinU >= fig5.Stateless.MinU {
		t.Errorf("taUW min u %.4f must be below stateless %.4f", fig5.TAUW.MinU, fig5.Stateless.MinU)
	}
	if fig5.TAUW.Mean >= fig5.Stateless.Mean {
		t.Errorf("taUW mean u %.4f must be below stateless %.4f", fig5.TAUW.Mean, fig5.Stateless.Mean)
	}
	if fig5.TAUW.ShareAtMin <= fig5.Stateless.ShareAtMin {
		t.Errorf("taUW share at min %.3f must exceed stateless %.3f",
			fig5.TAUW.ShareAtMin, fig5.Stateless.ShareAtMin)
	}
	for _, d := range []UncertaintyDist{fig5.Stateless, fig5.TAUW} {
		total := 0
		for _, b := range d.Hist {
			total += b.Count
		}
		if total == 0 {
			t.Error("empty histogram")
		}
	}
	if !strings.Contains(fig5.String(), "Fig. 5") {
		t.Error("renderer broken")
	}
}

func TestFig6Shapes(t *testing.T) {
	st := tinyStudy(t)
	fig6, err := st.RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig6.Curves) != 5 {
		t.Fatalf("%d curves, want 5", len(fig6.Curves))
	}
	overconfidence := func(name string) float64 {
		c := fig6.Curve(name)
		if c == nil {
			t.Fatalf("missing curve %q", name)
		}
		var worst float64
		for _, p := range c.Points {
			if gap := p.MeanPredicted - p.Observed; gap > worst {
				worst = gap
			}
		}
		return worst
	}
	// Paper: the naive approach is highly overconfident; worst-case and
	// taUW are not.
	if overconfidence(ApproachNaive) <= overconfidence(ApproachWorstCase) {
		t.Error("naive must be more overconfident than worst-case in the calibration plot")
	}
	if overconfidence(ApproachNaive) <= overconfidence(ApproachTAUW) {
		t.Error("naive must be more overconfident than taUW in the calibration plot")
	}
	if fig6.Curve("nope") != nil {
		t.Error("unknown curve must be nil")
	}
	if !strings.Contains(fig6.String(), "Fig. 6") {
		t.Error("renderer broken")
	}
}

func TestFig7Shapes(t *testing.T) {
	st := tinyStudy(t)
	fig7, err := st.RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Rows) != 15 {
		t.Fatalf("%d rows, want 15 subsets", len(fig7.Rows))
	}
	// Using taQF must beat the no-taQF reference for the best subset
	// (paper: "generally, the Brier score improves when more features
	// are used").
	if fig7.Best.Brier >= fig7.ReferenceNoTAQF {
		t.Errorf("best subset %.4f must beat the no-taQF reference %.4f",
			fig7.Best.Brier, fig7.ReferenceNoTAQF)
	}
	// The full feature set must be near the optimum (within 20%).
	var full float64
	for _, row := range fig7.Rows {
		if len(row.Features) == 4 {
			full = row.Brier
		}
	}
	if full > fig7.Best.Brier*1.2+1e-9 {
		t.Errorf("full set %.4f far above best subset %.4f", full, fig7.Best.Brier)
	}
	if !strings.Contains(fig7.String(), "Fig. 7") {
		t.Error("renderer broken")
	}
}

func TestRunAllAndRender(t *testing.T) {
	st := tinyStudy(t)
	res, err := st.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"Fig. 4", "Table I", "Fig. 5", "Fig. 6", "Fig. 7",
		"DDM accuracy", "Dependability check", "Length sweep"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered results missing %q", want)
		}
	}
}

func TestBoundAblation(t *testing.T) {
	st := tinyStudy(t)
	res, err := st.RunBoundAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	byMethod := make(map[stats.BoundMethod]BoundAblationRow)
	for _, r := range res.Rows {
		byMethod[r.Method] = r
		if r.Brier <= 0 || r.Brier >= 1 {
			t.Errorf("%s Brier %g implausible", r.Method, r.Brier)
		}
		if r.MinU < 0 || r.MinU > 1 {
			t.Errorf("%s min u %g invalid", r.Method, r.MinU)
		}
	}
	cp := byMethod[stats.ClopperPearson]
	jf := byMethod[stats.Jeffreys]
	// Clopper-Pearson is exact and conservative; the Bayesian Jeffreys
	// bound is uniformly tighter, so its lowest guaranteed uncertainty
	// cannot exceed CP's. (Wilson is not uniformly ordered against CP:
	// at k=0 the score interval is looser.)
	if jf.MinU > cp.MinU+1e-12 {
		t.Errorf("Jeffreys min u %.5f above Clopper-Pearson %.5f", jf.MinU, cp.MinU)
	}
	if !strings.Contains(res.String(), "clopper-pearson") {
		t.Error("renderer broken")
	}
}

func TestTieBreakAblation(t *testing.T) {
	st := tinyStudy(t)
	res, err := st.RunTieBreakAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.FusedErrOverall < 0 || r.FusedErrOverall > 1 {
			t.Errorf("error rate %g invalid", r.FusedErrOverall)
		}
	}
	if !strings.Contains(res.String(), "tie-break") {
		t.Error("renderer broken")
	}
}

func TestTreeAblation(t *testing.T) {
	st := tinyStudy(t)
	res, err := st.RunTreeAblation([]int{4, 8}, []int{60, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no feasible ablation rows")
	}
	for _, r := range res.Rows {
		if r.Regions < 1 {
			t.Errorf("row %+v has no regions", r)
		}
		if r.Brier <= 0 || r.Brier > 1 {
			t.Errorf("row %+v has invalid Brier", r)
		}
	}
	// Larger min-leaf means fewer, coarser regions: min u cannot shrink.
	byKey := make(map[[2]int]TreeAblationRow)
	for _, r := range res.Rows {
		byKey[[2]int{r.Depth, r.MinLeaf}] = r
	}
	a, okA := byKey[[2]int{8, 60}]
	b, okB := byKey[[2]int{8, 200}]
	if okA && okB && a.Regions < b.Regions {
		t.Errorf("smaller min-leaf must not reduce regions: %d vs %d", a.Regions, b.Regions)
	}
	if !strings.Contains(res.String(), "depth") {
		t.Error("renderer broken")
	}
}

func TestWrapperFromStudy(t *testing.T) {
	st := tinyStudy(t)
	w, err := st.Wrapper()
	if err != nil {
		t.Fatal(err)
	}
	s := st.TestSeries[0]
	for j := range s.Outcomes {
		res, err := w.Step(s.Outcomes[j], s.Quality[j])
		if err != nil {
			t.Fatal(err)
		}
		if res.Uncertainty < 0 || res.Uncertainty > 1 {
			t.Fatalf("step %d uncertainty %g", j, res.Uncertainty)
		}
	}
}

func TestStudyWithMLP(t *testing.T) {
	// The wrapper is model-agnostic: the same study must work with the
	// MLP classifier in place of softmax regression.
	cfg := TinyConfig()
	cfg.NumSeries = 90
	cfg.TrainAugmentations = 3
	cfg.EvalAugmentations = 3
	cfg.UseMLP = true
	cfg.MLPHidden = 32
	cfg.Train.Epochs = 3
	cfg.Train.LearningRate = 0.01
	st, err := BuildStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.DDMTestAccuracy < 0.5 {
		t.Errorf("MLP study accuracy %.3f implausibly low", st.DDMTestAccuracy)
	}
	fig4, err := st.RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	if fig4.FusedOverall > fig4.IsolatedOverall {
		t.Errorf("fusion must not hurt with the MLP either: %.4f vs %.4f",
			fig4.FusedOverall, fig4.IsolatedOverall)
	}
}

func TestStudyDeterminism(t *testing.T) {
	// Two studies from the same config must agree on the replay-derived
	// headline numbers.
	cfg := TinyConfig()
	cfg.NumSeries = 60
	cfg.TrainAugmentations = 3
	cfg.EvalAugmentations = 3
	a, err := BuildStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DDMTestAccuracy != b.DDMTestAccuracy {
		t.Errorf("accuracy differs: %v vs %v", a.DDMTestAccuracy, b.DDMTestAccuracy)
	}
	fa, err := a.RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	if fa.FusedOverall != fb.FusedOverall || fa.IsolatedOverall != fb.IsolatedOverall {
		t.Error("Fig4 differs between identical configs")
	}
}
