package shardpad_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/analysis"
	"github.com/iese-repro/tauw/internal/analysis/atest"
	"github.com/iese-repro/tauw/internal/analysis/shardpad"
)

func TestShardpad(t *testing.T) {
	atest.Run(t, "testdata/pads", []*analysis.Analyzer{shardpad.Analyzer})
}

// TestShardpadRedToGreen adds the missing pad array to the broken shard
// and expects its finding (and only its finding) to disappear.
func TestShardpadRedToGreen(t *testing.T) {
	tmp := atest.Run(t, "testdata/pads", []*analysis.Analyzer{shardpad.Analyzer})

	path := filepath.Join(tmp, "shards", "shards.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fixed := strings.Replace(string(src),
		`type brokenShard struct { // want "shardpad: brokenShard is 16 bytes, not a positive multiple of the declared 128-byte stride"
	goodState
}`,
		`type brokenShard struct {
	goodState
	_ [stride - unsafe.Sizeof(goodState{})%stride]byte
}`, 1)
	if fixed == string(src) {
		t.Fatal("fixture brokenShard not found")
	}
	if err := os.WriteFile(path, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	atest.RunDir(t, tmp, []*analysis.Analyzer{shardpad.Analyzer})
}
