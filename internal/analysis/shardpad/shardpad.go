// Package shardpad machine-checks the false-sharing defence: a struct
// annotated //tauw:pad=N must have a types.Sizes-verified size that is a
// positive multiple of N, so no two shards in a backing array can share a
// cache line (or an adjacent-line prefetch pair) whatever the array's base
// alignment. It replaces the hand-written unsafe.Sizeof tests the repo
// used to re-write for every new padded shard struct; one runtime test
// remains as an analyzer-vs-runtime cross-check.
//
// The analyzer also pins the padding idiom itself: the annotated struct's
// payload must sit at offset 0 (first field), so shard selection lands
// directly on the hot head of the stride.
package shardpad

import (
	"go/ast"
	"go/types"
	"strconv"

	"github.com/iese-repro/tauw/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shardpad",
	Doc:  "structs marked //tauw:pad=N must be sized to a positive multiple of N bytes",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// The directive may sit on the TypeSpec (grouped decls) or
				// on the GenDecl (the common single-type form).
				val, ok := DirectiveFor(gd, ts)
				if !ok {
					continue
				}
				check(pass, ts, val)
			}
		}
	}
	return nil
}

// DirectiveFor extracts //tauw:pad=N for one type spec.
func DirectiveFor(gd *ast.GenDecl, ts *ast.TypeSpec) (string, bool) {
	if v, ok := analysis.DirectiveValue(ts.Doc, "pad"); ok {
		return v, true
	}
	if len(gd.Specs) == 1 {
		if v, ok := analysis.DirectiveValue(gd.Doc, "pad"); ok {
			return v, true
		}
	}
	return "", false
}

func check(pass *analysis.Pass, ts *ast.TypeSpec, val string) {
	stride, err := strconv.ParseInt(val, 10, 64)
	if err != nil || stride <= 0 {
		pass.Reportf(ts.Pos(), "shardpad: malformed //tauw:pad=%s on %s: the value must be a positive byte stride, e.g. //tauw:pad=128", val, ts.Name.Name)
		return
	}
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "shardpad: //tauw:pad=%d on %s, which is not a struct", stride, ts.Name.Name)
		return
	}
	size := pass.TypesSizes.Sizeof(obj.Type())
	if size == 0 || size%stride != 0 {
		pass.Reportf(ts.Pos(), "shardpad: %s is %d bytes, not a positive multiple of the declared %d-byte stride — false-sharing pad is broken", ts.Name.Name, size, stride)
		return
	}
	// Payload-at-offset-0: the pad must trail the state, never displace it.
	if st.NumFields() > 0 {
		offsets := pass.TypesSizes.Offsetsof(structFields(st))
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if fld.Name() == "_" {
				continue
			}
			if offsets[i] == 0 {
				return // some payload field leads the struct: idiom intact
			}
		}
		pass.Reportf(ts.Pos(), "shardpad: %s has no payload field at offset 0 — the pad must follow the shard state, not precede it", ts.Name.Name)
	}
}

func structFields(st *types.Struct) []*types.Var {
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	return fields
}
