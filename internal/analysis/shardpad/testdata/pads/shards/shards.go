// Package shards exercises the //tauw:pad size verification.
package shards

import (
	"sync"
	"unsafe"
)

const stride = 128

// goodState is a small payload whose padded wrapper must be checked, not
// trusted.
type goodState struct {
	mu sync.Mutex
	n  uint64
}

// goodShard follows the repo idiom: payload first, computed tail pad.
//
//tauw:pad=128
type goodShard struct {
	goodState
	_ [stride - unsafe.Sizeof(goodState{})%stride]byte
}

// brokenShard declares the stride but forgot the pad array.
//
//tauw:pad=128
type brokenShard struct { // want "shardpad: brokenShard is 16 bytes, not a positive multiple of the declared 128-byte stride"
	goodState
}

// padFirst puts the pad before the payload: size checks out, idiom broken.
//
//tauw:pad=128
type padFirst struct { // want "shardpad: padFirst has no payload field at offset 0"
	_ [stride - unsafe.Sizeof(goodState{})%stride]byte
	goodState
}

// notAStruct cannot carry a stride at all.
//
//tauw:pad=128
type notAStruct uint64 // want "shardpad: //tauw:pad=128 on notAStruct, which is not a struct"

// badValue has an unparseable stride.
//
//tauw:pad=banana
type badValue struct { // want "shardpad: malformed //tauw:pad=banana on badValue"
	goodState
}

// use keeps the fixture compiling without exporting everything.
var use = [...]any{goodShard{}, brokenShard{}, padFirst{}, notAStruct(0), badValue{}}
