package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"os"
	"sort"
)

// Fact is a marker interface for analyzer facts: serializable statements
// about package-level objects that cross package boundaries. Implementations
// must be gob-encodable.
type Fact interface{ AFact() }

// ObjectKey returns a stable, export-data-independent key for a
// package-level object: "Name" for functions/vars/types, "(T).Name" or
// "(*T).Name" for methods. The second result is false for objects facts
// cannot address (locals, fields, imported dot idents, ...).
//
// The key is deliberately independent of go/types object identity: the same
// function is a *types.Func from source when its package is under analysis
// and a different *types.Func from export data when an importer looks it
// up, and the key must match across the two.
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		recv := sig.Recv()
		if recv == nil {
			if fn.Parent() != nil && fn.Parent() != obj.Pkg().Scope() {
				return "", false // function literal or local
			}
			return fn.Name(), true
		}
		t := recv.Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		return "(" + ptr + named.Obj().Name() + ")." + fn.Name(), true
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// FactRecord is the serialized form of one exported fact.
type FactRecord struct {
	Analyzer string // analyzer name
	PkgPath  string // package of the object the fact is about
	ObjKey   string // ObjectKey of the object
	Type     string // fmt.Sprintf("%T") of the concrete fact value
	Data     []byte // gob encoding of the concrete fact value
}

// FactStore holds the facts visible while analyzing one package (imported
// from dependencies) plus the facts that package exports. A store is built
// per analyzed package; the driver threads dependency facts forward either
// in memory (standalone mode) or through vetx files (vettool mode).
type FactStore struct {
	in  map[string]FactRecord // (analyzer, pkg, key, type) -> record
	out []FactRecord
	pkg string // path of the package under analysis
}

// NewFactStore returns a store for analyzing package pkgPath with the given
// imported dependency facts available.
func NewFactStore(pkgPath string, imported []FactRecord) *FactStore {
	in := make(map[string]FactRecord, len(imported))
	for _, r := range imported {
		in[factKey(r.Analyzer, r.PkgPath, r.ObjKey, r.Type)] = r
	}
	return &FactStore{in: in, pkg: pkgPath}
}

func factKey(analyzer, pkg, obj, typ string) string {
	return analyzer + "\x00" + pkg + "\x00" + obj + "\x00" + typ
}

func (s *FactStore) export(analyzer string, obj types.Object, fact Fact) error {
	key, ok := ObjectKey(obj)
	if !ok {
		return fmt.Errorf("analysis: object %v is not fact-addressable", obj)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return fmt.Errorf("analysis: encoding %T fact: %w", fact, err)
	}
	rec := FactRecord{
		Analyzer: analyzer,
		PkgPath:  obj.Pkg().Path(),
		ObjKey:   key,
		Type:     fmt.Sprintf("%T", fact),
		Data:     buf.Bytes(),
	}
	s.out = append(s.out, rec)
	// Facts about the package under analysis are importable within the
	// same run (an analyzer may consult facts it just exported).
	s.in[factKey(rec.Analyzer, rec.PkgPath, rec.ObjKey, rec.Type)] = rec
	return nil
}

func (s *FactStore) importInto(analyzer string, obj types.Object, fact Fact) bool {
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	rec, ok := s.in[factKey(analyzer, obj.Pkg().Path(), key, fmt.Sprintf("%T", fact))]
	if !ok {
		return false
	}
	return gob.NewDecoder(bytes.NewReader(rec.Data)).Decode(fact) == nil
}

// Exported returns the facts the analyzed package exported, in a
// deterministic order.
func (s *FactStore) Exported() []FactRecord {
	out := append([]FactRecord(nil), s.out...)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.ObjKey != b.ObjKey {
			return a.ObjKey < b.ObjKey
		}
		return a.Type < b.Type
	})
	return out
}

// WriteFactFile serializes fact records to path (the vettool VetxOutput
// contract: the file must exist even when there are no facts).
func WriteFactFile(path string, recs []FactRecord) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o666)
}

// ReadFactFile reads records written by WriteFactFile.
func ReadFactFile(path string) ([]FactRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []FactRecord
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&recs); err != nil {
		return nil, fmt.Errorf("analysis: fact file %s: %w", path, err)
	}
	return recs, nil
}
