// Package codecpure enforces the repo's reflection-free codec discipline:
// a package marked //tauw:codec (the wire protocol, the snapshot codec,
// the tauserve request/response codecs) must not import reflect or
// encoding/json outside its _test.go files. Tests are exempt by design —
// the codecs are proven byte-identical to encoding/json by differential
// tests, so the stdlib package is their oracle, never their implementation.
package codecpure

import (
	"strconv"

	"github.com/iese-repro/tauw/internal/analysis"
)

var forbidden = map[string]bool{
	"reflect":       true,
	"encoding/json": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "codecpure",
	Doc:  "packages marked //tauw:codec may not import reflect or encoding/json outside tests",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageMarked(pass.Files, "codec") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !forbidden[path] {
				continue
			}
			pass.Reportf(imp.Pos(), "codecpure: //tauw:codec package imports %s outside tests (codecs must stay reflection-free; keep stdlib JSON as a test oracle only)", path)
		}
	}
	return nil
}
