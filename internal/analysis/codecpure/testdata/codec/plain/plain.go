// Package plain is not marked //tauw:codec: stdlib JSON is fine here.
package plain

import "encoding/json"

// Valid reports whether b is valid JSON.
func Valid(b []byte) bool { return json.Valid(b) }
