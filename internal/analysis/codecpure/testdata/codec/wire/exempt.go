package wire

import (
	//tauwcheck:ignore codecpure cold debug endpoint, not a serving codec
	"encoding/json"
)

// Exempt exercises the suppressed import.
func Exempt(b []byte) bool { return json.Valid(b) }
