// Package wire is a fixture codec package: marked //tauw:codec, so the
// reflective stdlib codecs are banned outside tests.
//
//tauw:codec
package wire

import (
	"encoding/json" // want "codecpure: //tauw:codec package imports encoding/json"
	"reflect"       // want "codecpure: //tauw:codec package imports reflect"
)

// Uses keeps the banned imports referenced so the fixture compiles.
func Uses() string {
	return reflect.TypeOf(json.Valid).String()
}
