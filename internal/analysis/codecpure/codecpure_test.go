package codecpure_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/analysis"
	"github.com/iese-repro/tauw/internal/analysis/atest"
	"github.com/iese-repro/tauw/internal/analysis/codecpure"
	"github.com/iese-repro/tauw/internal/analysis/driver"
	"github.com/iese-repro/tauw/internal/analysis/load"
)

func TestCodecpure(t *testing.T) {
	atest.Run(t, "testdata/codec", []*analysis.Analyzer{codecpure.Analyzer})
}

// TestCodecpureRedToGreen proves the analyzer goes quiet once the banned
// import is removed — the finding is driven by the code, not the fixture's
// want comments.
func TestCodecpureRedToGreen(t *testing.T) {
	tmp := atest.Run(t, "testdata/codec", []*analysis.Analyzer{codecpure.Analyzer})

	green := `//tauw:codec
package wire

// Uses is the hand-rolled replacement: no reflective codec imports left.
func Uses() string { return "ok" }
`
	if err := os.WriteFile(filepath.Join(tmp, "wire", "wire.go"), []byte(green), 0o644); err != nil {
		t.Fatal(err)
	}
	atest.RunDir(t, tmp, []*analysis.Analyzer{codecpure.Analyzer})
}

// TestIgnoreNeedsReason pins the driver-level rule that an exemption
// without a reason is itself a finding — and that the finding cannot be
// suppressed by another ignore.
func TestIgnoreNeedsReason(t *testing.T) {
	tmp := atest.Run(t, "testdata/codec", []*analysis.Analyzer{codecpure.Analyzer})

	path := filepath.Join(tmp, "wire", "exempt.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the reason: the import it used to exempt becomes a real finding
	// again, and the reasonless directive is reported on top.
	bad := strings.Replace(string(src),
		"//tauwcheck:ignore codecpure cold debug endpoint, not a serving codec",
		"//tauwcheck:ignore codecpure",
		1)
	if bad == string(src) {
		t.Fatal("fixture ignore directive not found")
	}
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := load.Load(tmp, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(res, []*analysis.Analyzer{codecpure.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var sawReasonless, sawImport bool
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a reason") {
			sawReasonless = true
		}
		if d.Analyzer == "codecpure" && strings.Contains(d.Message, "encoding/json") &&
			strings.HasSuffix(res.Fset.Position(d.Pos).Filename, "exempt.go") {
			sawImport = true
		}
	}
	if !sawReasonless {
		t.Errorf("reasonless ignore directive not reported: %v", messages(diags))
	}
	if !sawImport {
		t.Errorf("import behind the broken exemption not reported: %v", messages(diags))
	}
}

func messages(diags []analysis.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}
