// Package app is a fixture library package: ambient logging and stdout
// printing are banned here.
package app

import (
	"fmt"
	"log"
)

// Noisy exercises the banned emitters.
func Noisy() {
	log.Printf("x=%d", 1)  // want "xlogonly: log.Printf outside internal/xlog"
	fmt.Println("hello")   // want "xlogonly: fmt.Println outside internal/xlog"
	log.Println("goodbye") // want "xlogonly: log.Println outside internal/xlog"
}

// Quiet shows the allowed shapes: formatting without emitting, and a
// deliberate, justified exemption.
func Quiet() string {
	//tauwcheck:ignore xlogonly startup banner, printed once before xlog exists
	fmt.Println("banner")
	return fmt.Sprintf("x=%d", 1)
}
