// Command cli is a fixture CLI: //tauw:cli packages own their stdout.
//
//tauw:cli
package main

import "fmt"

func main() {
	fmt.Println("cli output is the product here")
}
