module tauwfix

go 1.23
