// Package xlog is the fixture stand-in for the real logging seam: the one
// package allowed to touch the stdlib logger.
package xlog

import "log"

// Emit forwards to the ambient logger.
func Emit(msg string) { log.Println(msg) }
