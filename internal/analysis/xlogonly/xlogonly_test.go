package xlogonly_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/analysis"
	"github.com/iese-repro/tauw/internal/analysis/atest"
	"github.com/iese-repro/tauw/internal/analysis/xlogonly"
)

func TestXlogonly(t *testing.T) {
	atest.Run(t, "testdata/logging", []*analysis.Analyzer{xlogonly.Analyzer})
}

// TestXlogonlyRedToGreen proves the findings follow the code: rewriting the
// noisy function through the xlog seam silences the analyzer.
func TestXlogonlyRedToGreen(t *testing.T) {
	tmp := atest.Run(t, "testdata/logging", []*analysis.Analyzer{xlogonly.Analyzer})

	green := `package app

import (
	"fmt"

	"tauwfix/internal/xlog"
)

// Noisy now routes through the logging seam.
func Noisy() {
	xlog.Emit(fmt.Sprintf("x=%d", 1))
}

// Quiet shows the allowed shapes: formatting without emitting, and a
// deliberate, justified exemption.
func Quiet() string {
	//tauwcheck:ignore xlogonly startup banner, printed once before xlog exists
	fmt.Println("banner")
	return fmt.Sprintf("x=%d", 1)
}
`
	if err := os.WriteFile(filepath.Join(tmp, "app", "app.go"), []byte(green), 0o644); err != nil {
		t.Fatal(err)
	}
	atest.RunDir(t, tmp, []*analysis.Analyzer{xlogonly.Analyzer})
}

// TestCLIUnmarkedGoesRed drops the //tauw:cli mark and expects the CLI's
// println to surface — pinning that the exemption is the annotation, not
// the package name.
func TestCLIUnmarkedGoesRed(t *testing.T) {
	tmp := atest.Run(t, "testdata/logging", []*analysis.Analyzer{xlogonly.Analyzer})

	path := filepath.Join(tmp, "cli", "main.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(src), "//tauw:cli\n", "", 1)
	if bad == string(src) {
		t.Fatal("fixture //tauw:cli mark not found")
	}
	bad = strings.Replace(bad,
		"fmt.Println(\"cli output is the product here\")",
		"fmt.Println(\"cli output is the product here\") // want \"xlogonly: fmt.Println outside internal/xlog\"",
		1)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	atest.RunDir(t, tmp, []*analysis.Analyzer{xlogonly.Analyzer})
}
