// Package xlogonly enforces the serving stack's logging seam: all logging
// goes through internal/xlog (leveled logfmt with an injectable sink), so
// stray log.Printf / fmt.Print* calls cannot bypass the level gate, the
// component fields, or the tests that capture log output through the sink.
//
// Exemptions, in policy order: _test.go files (tests print freely),
// internal/xlog itself (it renders onto the stdlib logger), and packages
// marked //tauw:cli — command-line tools and examples whose stdout IS the
// product (bench tooling, generators, demo binaries).
package xlogonly

import (
	"go/ast"
	"go/types"

	"github.com/iese-repro/tauw/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "xlogonly",
	Doc:  "forbid log.Print*/log.Fatal*/fmt.Print* outside internal/xlog, tests, and //tauw:cli packages",
	Run:  run,
}

// emitFuncs are the stdlib entry points that write log or console output.
var emitFuncs = map[string]map[string]bool{
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
		"Output": true,
	},
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
	},
}

func run(pass *analysis.Pass) error {
	if analysis.PkgPathSuffix(pass.Pkg, "internal/xlog") {
		return nil
	}
	if analysis.PackageMarked(pass.Files, "cli") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			names, ok := emitFuncs[fn.Pkg().Path()]
			if !ok || !names[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "xlogonly: %s.%s outside internal/xlog — log through internal/xlog (or mark the package //tauw:cli if stdout is its product)", fn.Pkg().Path(), fn.Name())
			return true
		})
	}
	return nil
}
