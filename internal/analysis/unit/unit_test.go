package unit_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetTool drives the real `go vet -vettool` pipeline end to end: it
// builds the tauwcheck binary, runs it over a fixture module, and checks
// that findings surface (including a cross-package hotpath finding that
// can only exist if vetx fact files flow between per-package invocations),
// that test files stay exempt, and that a clean package vets green.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to the go tool")
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "tauwcheck")
	build := exec.Command("go", "build", "-o", tool, "github.com/iese-repro/tauw/cmd/tauwcheck")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tauwcheck: %v\n%s", err, out)
	}

	fixture, err := filepath.Abs("testdata/vetmod")
	if err != nil {
		t.Fatal(err)
	}

	vet := func(patterns ...string) (string, error) {
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + tool}, patterns...)...)
		cmd.Dir = fixture
		// A fresh GOFLAGS-independent run; vet caches per tool build, and
		// the tool hashes itself into the version, so no manual busting.
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	t.Run("red", func(t *testing.T) {
		out, err := vet("./...")
		if err == nil {
			t.Fatalf("vet passed on a fixture with seeded violations:\n%s", out)
		}
		for _, want := range []string{
			"xlogonly: log.Printf outside internal/xlog",
			"hotpath: call to dep.Render in hot path",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("vet output missing %q:\n%s", want, out)
			}
		}
		if strings.Contains(out, "app_test.go") {
			t.Errorf("test-file logging was flagged; xlogonly must exempt _test.go:\n%s", out)
		}
	})

	t.Run("green", func(t *testing.T) {
		out, err := vet("./clean")
		if err != nil {
			t.Fatalf("vet failed on the clean package: %v\n%s", err, out)
		}
	})
}
