// Package unit implements the `go vet -vettool` side of tauwcheck: cmd/go
// hands the tool one JSON config file per package (import maps, export-data
// files for every dependency, fact files from already-vetted packages, and
// an output path for this package's facts), and expects diagnostics on
// stderr with a non-zero exit. The protocol was pinned empirically against
// go1.24's cmd/go; the config schema below mirrors the fields cmd/go
// writes (the same ones x/tools' unitchecker consumes).
package unit

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"github.com/iese-repro/tauw/internal/analysis"
)

// Config is the vet.cfg schema cmd/go writes for each vetted package.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Run executes the analyzers for one vet.cfg unit and returns the
// diagnostics to print (already ignore-filtered) plus the FileSet to
// position them with.
func Run(cfgPath string, analyzers []*analysis.Analyzer) (*token.FileSet, []analysis.Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, nil, err
	}
	b, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	var cfg Config
	if err := json.Unmarshal(b, &cfg); err != nil {
		return nil, nil, fmt.Errorf("unit: parsing %s: %w", cfgPath, err)
	}

	// Facts only flow between module packages; the standard library is
	// policy-trusted, so its facts-only passes are a no-op with an empty
	// (but mandatory) vetx file.
	if cfg.ModulePath == "" || len(cfg.GoFiles) == 0 {
		return nil, nil, analysis.WriteFactFile(cfg.VetxOutput, nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, f := range cfg.GoFiles {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil, analysis.WriteFactFile(cfg.VetxOutput, nil)
			}
			return nil, nil, err
		}
		files = append(files, af)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("unit: no export data for %q", path)
		}
		return os.Open(file)
	}
	sizes := types.SizesFor(cfg.Compiler, goarch())
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		Sizes:     sizes,
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := tconf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil, analysis.WriteFactFile(cfg.VetxOutput, nil)
		}
		return nil, nil, fmt.Errorf("unit: %s does not type-check: %w", cfg.ImportPath, errors.Join(typeErrs...))
	}

	var imported []analysis.FactRecord
	for path, vetx := range cfg.PackageVetx {
		recs, err := analysis.ReadFactFile(vetx)
		if err != nil {
			return nil, nil, fmt.Errorf("unit: facts of %s: %w", path, err)
		}
		imported = append(imported, recs...)
	}
	store := analysis.NewFactStore(cfg.ImportPath, imported)

	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if cfg.VetxOnly && len(a.FactTypes) == 0 {
			continue
		}
		pass := analysis.NewPass(a, fset, files, pkg, info, sizes, cfg.ModulePath, store, report)
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("unit: %s on %s: %w", a.Name, cfg.ImportPath, err)
		}
	}
	if err := analysis.WriteFactFile(cfg.VetxOutput, store.Exported()); err != nil {
		return nil, nil, err
	}
	if cfg.VetxOnly {
		return fset, nil, nil // facts pass: the package gets its own diagnostic unit
	}
	ignores, bad := analysis.CollectIgnores(fset, files)
	out := bad
	for _, d := range diags {
		if !ignores.Suppressed(fset, d) {
			out = append(out, d)
		}
	}
	return fset, out, nil
}

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
