// Package clean violates nothing.
package clean

// Add is pure arithmetic.
func Add(a, b int) int { return a + b }
