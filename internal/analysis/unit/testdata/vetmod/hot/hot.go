// Package hot has a hot root whose violation is only visible through the
// dependency's facts — the cross-package case the unitchecker plumbing
// must carry.
package hot

import "tauwfix/dep"

// Step is hot; its dep.Render call is the finding.
//
//tauw:hotpath
func Step(x int) string {
	return dep.Render(x)
}
