// Package dep carries impurity that must flow to dependents as vetx facts.
package dep

import "fmt"

// Render allocates by contract.
func Render(x int) string { return fmt.Sprintf("%d", x) }
