package app

import (
	"log"
	"testing"
)

// TestWarn logs from a test file, which xlogonly exempts by design.
func TestWarn(t *testing.T) {
	log.Printf("test logging is fine")
	Warn()
}
