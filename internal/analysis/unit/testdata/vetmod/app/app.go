// Package app logs ambiently: the xlogonly finding for the vet run.
package app

import "log"

// Warn is the violation.
func Warn() { log.Printf("warn") }
