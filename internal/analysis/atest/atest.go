// Package atest is the repo's analysistest equivalent: it drives the
// tauwcheck analyzers over a hermetic fixture module and checks the
// diagnostics against `// want "regexp"` comments in the fixture sources.
//
// A fixture is a directory under testdata containing a self-contained Go
// module (conventionally `module tauwfix`, stdlib-only so the load works
// offline). Run copies it into t.TempDir() — so a test can freely mutate
// the copy for red→green proofs — loads it through the same loader the
// standalone tauwcheck binary uses, runs the analyzers through the same
// driver, and then matches:
//
//   - every diagnostic must be claimed by a want on its file:line;
//   - every want must be claimed by a diagnostic.
//
// Want syntax, on the line the diagnostic is expected:
//
//	code() // want "first regexp" "second regexp"
//
// Each quoted string is one expected diagnostic whose message must match
// the regexp. Fixture files must be gofmt-clean and must compile: CI's
// gofmt sweep covers testdata, and the loader type-checks fixtures with
// the same strictness as real packages.
package atest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/analysis"
	"github.com/iese-repro/tauw/internal/analysis/driver"
	"github.com/iese-repro/tauw/internal/analysis/load"
)

// wantRE extracts the quoted regexps of one want comment: double-quoted
// or backquoted, as in analysistest.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run copies the fixture module at dir (a path relative to the test's
// working directory, conventionally testdata/<name>) into a fresh temp
// dir, analyzes ./... with the given analyzers, and reports every mismatch
// between diagnostics and want comments as a test error. It returns the
// temp dir so callers can mutate the fixture and re-run for red→green
// proofs.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer) string {
	t.Helper()
	tmp := t.TempDir()
	if err := copyTree(dir, tmp); err != nil {
		t.Fatalf("atest: copying fixture %s: %v", dir, err)
	}
	RunDir(t, tmp, analyzers)
	return tmp
}

// RunDir is Run on a fixture already on disk (no copy): the module at dir
// is analyzed in place and diagnostics are matched against its current
// want comments. Use after mutating the copy Run returned.
func RunDir(t *testing.T, dir string, analyzers []*analysis.Analyzer) {
	t.Helper()
	res, err := load.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("atest: loading fixture %s: %v", dir, err)
	}
	diags, err := driver.Run(res, analyzers)
	if err != nil {
		t.Fatalf("atest: running analyzers: %v", err)
	}

	wants, err := collectWants(dir)
	if err != nil {
		t.Fatalf("atest: scanning want comments: %v", err)
	}

	for _, d := range diags {
		pos := res.Fset.Position(d.Pos)
		if w := claim(wants, filepath.Base(pos.Filename), pos.Line, d.Message); w == nil {
			t.Errorf("atest: unexpected diagnostic at %s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("atest: no diagnostic at %s:%d matching %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks and returns the first unclaimed want on file:line whose
// regexp matches msg.
func claim(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.hit = true
			return w
		}
	}
	return nil
}

// collectWants scans every .go file under dir for `// want` comments. The
// scan is textual (line-based) rather than AST-based so wants attach to
// the exact line they sit on, test files included.
func collectWants(dir string) ([]*want, error) {
	var wants []*want
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, spec, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantRE.FindAllStringSubmatch(spec, -1)
			if len(ms) == 0 {
				return fmt.Errorf("%s:%d: want comment without a quoted regexp", path, i+1)
			}
			for _, m := range ms {
				raw := m[1]
				if m[2] != "" {
					raw = m[2]
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp %q: %v", path, i+1, raw, err)
				}
				wants = append(wants, &want{file: filepath.Base(path), line: i + 1, re: re, raw: raw})
			}
		}
		return nil
	})
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, err
}

// copyTree copies the fixture tree at src into dst (which must exist).
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}
