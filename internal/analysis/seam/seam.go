// Package seam enforces clock/rng injectability: a package marked
// //tauw:seam (store, recalib, monitor) promises that every test can drive
// its timing and randomness deterministically, so the ambient sources —
// time.Now, time.Sleep, math/rand — may only be touched by the functions
// that wire the injectable defaults, and those are annotated
// //tauw:seamimpl. Everything else must go through the seam fields
// (c.now, c.sleep, c.rng, ...), or a test somewhere is flaky by
// construction.
//
// Both calls and bare references (e.g. storing time.Now in a field outside
// a seamimpl constructor) are flagged; _test.go files are exempt.
package seam

import (
	"go/ast"
	"go/types"

	"github.com/iese-repro/tauw/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seam",
	Doc:  "packages marked //tauw:seam may touch time.Now/time.Sleep/math/rand only inside //tauw:seamimpl functions",
	Run:  run,
}

// forbiddenTime lists the ambient-clock entry points in package time.
// Duration arithmetic and formatting are pure and stay allowed.
var forbiddenTime = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageMarked(pass.Files, "seam") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		impl := analysis.CollectFuncDirectiveRanges([]*ast.File{f}, "seamimpl")
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			var what string
			switch {
			case obj.Pkg().Path() == "time" && forbiddenTime[obj.Name()]:
				what = "time." + obj.Name()
			case randPkgs[obj.Pkg().Path()]:
				if _, isFn := obj.(*types.Func); !isFn {
					if _, isVar := obj.(*types.Var); !isVar {
						return true // types and constants are fine
					}
				}
				what = obj.Pkg().Path() + "." + obj.Name()
			default:
				return true
			}
			if impl.Contains(sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(), "seam: %s in a //tauw:seam package — route it through the injectable seam, or annotate the wiring function //tauw:seamimpl", what)
			return true
		})
	}
	return nil
}
