// Package clocked is a fixture //tauw:seam package: ambient time and rand
// belong in //tauw:seamimpl wiring functions only.
//
//tauw:seam
package clocked

import (
	"math/rand"
	"time"
)

// Ticker owns an injectable clock.
type Ticker struct {
	now   func() time.Time
	jit   func() float64
	limit time.Duration
}

// New wires the ambient defaults — the one place they are allowed.
//
//tauw:seamimpl
func New(limit time.Duration) *Ticker {
	return &Ticker{now: time.Now, jit: rand.Float64, limit: limit}
}

// Expired goes through the seam: allowed.
func (t *Ticker) Expired(since time.Time) bool {
	return t.now().Sub(since) > t.limit
}

// Leaky bypasses the seam in three ways.
func (t *Ticker) Leaky(since time.Time) bool {
	if time.Since(since) > t.limit { // want "seam: time.Since in a //tauw:seam package"
		return true
	}
	time.Sleep(time.Millisecond) // want "seam: time.Sleep in a //tauw:seam package"
	return rand.Float64() < 0.5  // want `seam: math/rand.Float64 in a //tauw:seam package`
}

// Stash stores the ambient clock outside a seamimpl function: a bare
// reference is as much of a leak as a call.
func (t *Ticker) Stash() {
	t.now = time.Now // want "seam: time.Now in a //tauw:seam package"
}

// Bounded uses duration arithmetic and constants only: allowed.
func (t *Ticker) Bounded(d time.Duration) time.Duration {
	if d > t.limit {
		return t.limit
	}
	return d
}

// Probe documents a reviewed exception inline.
func (t *Ticker) Probe() time.Time {
	//tauwcheck:ignore seam half-open probe timing is observability-only, never asserted in tests
	return time.Now()
}
