// Package free is not marked //tauw:seam: ambient time is fine.
package free

import "time"

// Stamp returns the current wall clock.
func Stamp() time.Time { return time.Now() }
