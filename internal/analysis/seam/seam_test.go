package seam_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/analysis"
	"github.com/iese-repro/tauw/internal/analysis/atest"
	"github.com/iese-repro/tauw/internal/analysis/seam"
)

func TestSeam(t *testing.T) {
	atest.Run(t, "testdata/seams", []*analysis.Analyzer{seam.Analyzer})
}

// TestSeamRedToGreen rewrites the leaky methods through the seam and
// expects silence.
func TestSeamRedToGreen(t *testing.T) {
	tmp := atest.Run(t, "testdata/seams", []*analysis.Analyzer{seam.Analyzer})

	path := filepath.Join(tmp, "clocked", "clocked.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	green := `// Package clocked is a fixture //tauw:seam package: ambient time and rand
// belong in //tauw:seamimpl wiring functions only.
//
//tauw:seam
package clocked

import (
	"math/rand"
	"time"
)

// Ticker owns an injectable clock.
type Ticker struct {
	now   func() time.Time
	jit   func() float64
	limit time.Duration
}

// New wires the ambient defaults — the one place they are allowed.
//
//tauw:seamimpl
func New(limit time.Duration) *Ticker {
	return &Ticker{now: time.Now, jit: rand.Float64, limit: limit}
}

// Leaky now routes everything through the seam.
func (t *Ticker) Leaky(since time.Time) bool {
	if t.now().Sub(since) > t.limit {
		return true
	}
	return t.jit() < 0.5
}
`
	_ = src
	if err := os.WriteFile(path, []byte(green), 0o644); err != nil {
		t.Fatal(err)
	}
	atest.RunDir(t, tmp, []*analysis.Analyzer{seam.Analyzer})
}

// TestSeamimplRemovedGoesRed strips the //tauw:seamimpl mark from the
// wiring constructor: its time.Now / rand.Float64 references must surface.
func TestSeamimplRemovedGoesRed(t *testing.T) {
	tmp := atest.Run(t, "testdata/seams", []*analysis.Analyzer{seam.Analyzer})

	path := filepath.Join(tmp, "clocked", "clocked.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(src), "//\n//tauw:seamimpl\n", "//\n", 1)
	if bad == string(src) {
		t.Fatal("fixture //tauw:seamimpl mark not found")
	}
	bad = strings.Replace(bad,
		"return &Ticker{now: time.Now, jit: rand.Float64, limit: limit}",
		"return &Ticker{now: time.Now, jit: rand.Float64, limit: limit} // want \"seam: time.Now\" `seam: math/rand.Float64`",
		1)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	atest.RunDir(t, tmp, []*analysis.Analyzer{seam.Analyzer})
}
