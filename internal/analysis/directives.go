package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The repo's machine-readable annotations are line comments of the form
//
//	//tauw:<name>            e.g. //tauw:hotpath, //tauw:codec
//	//tauw:<name>=<value>    e.g. //tauw:pad=128
//
// attached to the declaration they describe (function, struct type, field,
// or — for package-scope marks like //tauw:codec and //tauw:seam — any
// standalone comment in a non-test file, conventionally next to the
// package clause). Like go:build constraints they must start the comment:
// no space after //, nothing before tauw:.
//
// Suppression uses a separate namespace so greps for policy exceptions stay
// trivial:
//
//	//tauwcheck:ignore <analyzer> <reason...>
//
// which silences that analyzer on the directive's own line and the line
// directly below it (covering both trailing and standalone placement). The
// reason is mandatory; a directive without one is itself a finding.

const (
	directivePrefix = "//tauw:"
	ignorePrefix    = "//tauwcheck:ignore"
)

// HasDirective reports whether the comment group carries //tauw:<name>.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	_, ok := DirectiveValue(doc, name)
	return ok
}

// DirectiveValue returns the value of a //tauw:<name>=<value> directive in
// doc ("" for the value-less form) and whether the directive is present.
func DirectiveValue(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if v, ok := parseDirective(c.Text, name); ok {
			return v, true
		}
	}
	return "", false
}

func parseDirective(text, name string) (string, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return "", false
	}
	rest = strings.TrimSpace(rest)
	if rest == name {
		return "", true
	}
	if v, ok := strings.CutPrefix(rest, name+"="); ok {
		return strings.TrimSpace(v), true
	}
	return "", false
}

// PackageMarked reports whether any comment in the given files carries the
// package-scope directive //tauw:<name>. Test files are conventionally
// excluded by the caller (the loader only parses non-test files).
func PackageMarked(files []*ast.File, name string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			if HasDirective(cg, name) {
				return true
			}
		}
	}
	return false
}

// IgnoreSet records, per file and line, which analyzers are suppressed.
type IgnoreSet struct {
	// byLine maps "filename\x00line" -> set of analyzer names ("*" never
	// used; suppression is always analyzer-specific by design).
	byLine map[ignoreKey]map[string]bool
}

type ignoreKey struct {
	file string
	line int
}

// CollectIgnores scans the files' comments for //tauwcheck:ignore
// directives. Malformed directives (missing analyzer or reason) are
// returned as diagnostics attributed to the pseudo-analyzer "tauwcheck";
// those cannot themselves be suppressed.
func CollectIgnores(fset *token.FileSet, files []*ast.File) (*IgnoreSet, []Diagnostic) {
	set := &IgnoreSet{byLine: make(map[ignoreKey]map[string]bool)}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "ignore directive needs an analyzer name and a reason: //tauwcheck:ignore <analyzer> <reason>",
						Analyzer: "tauwcheck",
					})
					continue
				}
				if len(fields) == 1 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "ignore directive for " + fields[0] + " needs a reason: //tauwcheck:ignore " + fields[0] + " <reason>",
						Analyzer: "tauwcheck",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := ignoreKey{file: pos.Filename, line: line}
					if set.byLine[k] == nil {
						set.byLine[k] = make(map[string]bool)
					}
					set.byLine[k][fields[0]] = true
				}
			}
		}
	}
	return set, bad
}

// Suppressed reports whether d is silenced by an ignore directive.
func (s *IgnoreSet) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	if d.Analyzer == "tauwcheck" {
		return false
	}
	return s.SuppressedAt(fset, d.Pos, d.Analyzer)
}

// SuppressedAt reports whether the given analyzer is silenced at pos.
// Analyzers that model code structure (hotpath's call-graph traversal) use
// this during analysis, not just at report time, so an exempted line also
// stops propagation — an ignore on a call site severs the hot-path edge
// instead of merely hiding one diagnostic.
func (s *IgnoreSet) SuppressedAt(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	if s == nil {
		return false
	}
	p := fset.Position(pos)
	return s.byLine[ignoreKey{file: p.Filename, line: p.Line}][analyzer]
}
