// Package pool exercises the //tauw:notrace critical-section rule.
package pool

import (
	"sync"

	"tauwfix/internal/trace"
)

// wrapper is the fixture hot-path struct.
type wrapper struct {
	//tauw:notrace
	mu sync.Mutex
	// free is an ordinary mutex: tracing under it is allowed.
	free sync.Mutex
	n    int
}

// bad records while the annotated lock is held.
func bad(w *wrapper, rec *trace.Recorder) {
	w.mu.Lock()
	w.n++
	rec.Record(1) // want "lockorder: trace.Record while holding //tauw:notrace mutex mu"
	w.mu.Unlock()
}

// badDefer holds to the end of the function: the deferred unlock does not
// close the lexical window.
func badDefer(w *wrapper, rec *trace.Recorder) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.RecordSince(0, 1) // want "lockorder: trace.RecordSince while holding //tauw:notrace mutex mu"
}

// good records after the lock drops — the shape the rule wants.
func good(w *wrapper, rec *trace.Recorder) {
	w.mu.Lock()
	w.n++
	w.mu.Unlock()
	rec.Record(1)
}

// goodBranch locks only inside the branch: the critical section cannot
// leak past it.
func goodBranch(w *wrapper, rec *trace.Recorder, cond bool) {
	if cond {
		w.mu.Lock()
		w.n++
		w.mu.Unlock()
	}
	rec.Record(1)
}

// goodOtherMutex holds an unannotated lock: not this analyzer's business.
func goodOtherMutex(w *wrapper, rec *trace.Recorder) {
	w.free.Lock()
	rec.Record(1)
	w.free.Unlock()
}

// goodGoroutine spawns the record into its own goroutine: it runs outside
// the lexical critical section.
func goodGoroutine(w *wrapper, rec *trace.Recorder) {
	w.mu.Lock()
	defer w.mu.Unlock()
	go rec.Record(1)
}

// goodSnapshot calls a non-Record trace function under the lock.
func goodSnapshot(w *wrapper, rec *trace.Recorder) {
	w.mu.Lock()
	defer w.mu.Unlock()
	_ = rec.Snapshot()
}

// exempted documents a reviewed exception: a frozen recorder can never
// spin, so this call is safe despite its shape.
func exempted(w *wrapper, rec *trace.Recorder) {
	w.mu.Lock()
	defer w.mu.Unlock()
	//tauwcheck:ignore lockorder recorder is frozen here, the stripe can never spin
	rec.Record(1)
}
