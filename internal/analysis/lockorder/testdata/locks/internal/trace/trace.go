// Package trace is the fixture stand-in for the real flight recorder: the
// analyzer matches it by its internal/trace import-path suffix.
package trace

// Recorder is a minimal ring stand-in.
type Recorder struct{}

// Record logs one event.
func (r *Recorder) Record(kind int) {}

// RecordSince logs one timed event.
func (r *Recorder) RecordSince(start int64, kind int) {}

// Snapshot is not a Record* call and must never be flagged.
func (r *Recorder) Snapshot() []int { return nil }
