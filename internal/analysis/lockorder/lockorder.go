// Package lockorder machine-enforces the PR 9 tracing rule: the flight
// recorder's ring stripes are guarded by a spin word, so a trace event must
// never be recorded while a hot-path mutex is held — the spin would extend
// the critical section, and a frozen ring would wedge every stepper stuck
// behind the lock. Mutex fields annotated //tauw:notrace declare that
// contract; this analyzer flags any internal/trace Record* call lexically
// inside their Lock()...Unlock() window (a deferred Unlock extends the
// window to the end of the function).
//
// The analysis is lexical, per function, per mutex *field* (not per
// instance): exactly the shape of the invariant — "record after the wrapper
// lock drops" is a source-layout rule, and a lexical checker catches the
// regression the moment a refactor hoists a Record call above an Unlock.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/iese-repro/tauw/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "no internal/trace Record* call lexically inside a //tauw:notrace mutex's critical section",
	Run:  run,
}

var lockNames = map[string]bool{"Lock": true, "RLock": true}
var unlockNames = map[string]bool{"Unlock": true, "RUnlock": true}

func run(pass *analysis.Pass) error {
	annotated := collectAnnotatedMutexFields(pass)
	if len(annotated) == 0 {
		return nil
	}
	w := &walker{pass: pass, annotated: annotated}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.stmts(fd.Body.List, map[*types.Var]token.Pos{})
			}
		}
	}
	return nil
}

// collectAnnotatedMutexFields finds struct fields whose declaration carries
// //tauw:notrace (doc comment above, or line comment after).
func collectAnnotatedMutexFields(pass *analysis.Pass) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if !analysis.HasDirective(fld.Doc, "notrace") && !analysis.HasDirective(fld.Comment, "notrace") {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

type walker struct {
	pass      *analysis.Pass
	annotated map[*types.Var]bool
}

// stmts processes a statement sequence, threading the held-lock set through
// it. Nested control flow gets a copy: a Lock inside a branch does not leak
// past the branch, matching the lexical reading of the invariant.
func (w *walker) stmts(list []ast.Stmt, held map[*types.Var]token.Pos) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[*types.Var]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if fld, isLock, ok := w.lockCall(call); ok {
				if isLock {
					held[fld] = call.Pos()
				} else {
					delete(held, fld)
				}
				return
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the critical section open to the end of
		// the function: leave held untouched. Any other deferred call is
		// scanned like an expression — it is lexically inside the window.
		if _, isLock, ok := w.lockCall(s.Call); ok && !isLock {
			return
		}
		w.expr(s.Call, held)
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
		w.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.GoStmt:
		// The goroutine body runs outside the lexical critical section.
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, held)
				return false
			}
			return true
		})
	}
}

// expr scans an expression subtree for trace-record calls while locks are
// held.
func (w *walker) expr(e ast.Expr, held map[*types.Var]token.Pos) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := w.pass.Callee(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if !analysis.PkgPathSuffix(fn.Pkg(), "internal/trace") || !strings.HasPrefix(fn.Name(), "Record") {
			return true
		}
		for fld, lockPos := range held {
			w.pass.Reportf(call.Pos(), "lockorder: trace.%s while holding //tauw:notrace mutex %s (locked at %s) — record after the lock drops, the ring spin word must never nest inside it",
				fn.Name(), fld.Name(), w.pass.Fset.Position(lockPos))
			break
		}
		return true
	})
}

// lockCall matches calls of the form <expr>.<field>.Lock/Unlock where
// <field> is an annotated mutex field, returning the field and whether the
// call acquires.
func (w *walker) lockCall(call *ast.CallExpr) (*types.Var, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	isLock := lockNames[sel.Sel.Name]
	if !isLock && !unlockNames[sel.Sel.Name] {
		return nil, false, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	fld, ok := w.pass.TypesInfo.Uses[inner.Sel].(*types.Var)
	if !ok || !w.annotated[fld] {
		return nil, false, false
	}
	return fld, isLock, true
}

func copyHeld(held map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
