package lockorder_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/analysis"
	"github.com/iese-repro/tauw/internal/analysis/atest"
	"github.com/iese-repro/tauw/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	atest.Run(t, "testdata/locks", []*analysis.Analyzer{lockorder.Analyzer})
}

// TestLockorderRedToGreen hoists the bad record below the unlock and
// expects silence for that function.
func TestLockorderRedToGreen(t *testing.T) {
	tmp := atest.Run(t, "testdata/locks", []*analysis.Analyzer{lockorder.Analyzer})

	path := filepath.Join(tmp, "pool", "pool.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fixed := strings.Replace(string(src),
		`	w.mu.Lock()
	w.n++
	rec.Record(1) // want "lockorder: trace.Record while holding //tauw:notrace mutex mu"
	w.mu.Unlock()`,
		`	w.mu.Lock()
	w.n++
	w.mu.Unlock()
	rec.Record(1)`, 1)
	if fixed == string(src) {
		t.Fatal("fixture bad function not found")
	}
	if err := os.WriteFile(path, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	atest.RunDir(t, tmp, []*analysis.Analyzer{lockorder.Analyzer})
}
