package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// InTestFile reports whether pos lies in a _test.go file. Several analyzers
// exempt tests by policy (tests may use encoding/json oracles, real clocks,
// and plain printing freely).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Callee resolves the static callee of a call expression: a package-level
// function, or a method called on a concrete (non-interface) receiver.
// Returns nil for calls through interfaces, function values, conversions,
// and builtins — those have no statically known body.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := p.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch: no static body
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier pkg.Func.
		if fn, ok := p.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// InModule reports whether pkg belongs to the module under analysis.
func (p *Pass) InModule(pkg *types.Package) bool {
	if pkg == nil || p.Module == "" {
		return false
	}
	path := pkg.Path()
	return path == p.Module || strings.HasPrefix(path, p.Module+"/")
}

// PkgPathSuffix reports whether pkg's import path is path or ends in
// "/"+path. Analyzers match repo packages by suffix (e.g. "internal/trace")
// so their test fixtures — separate little modules — can stand in for the
// real packages.
func PkgPathSuffix(pkg *types.Package, path string) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == path || strings.HasSuffix(pkg.Path(), "/"+path)
}

// FuncDeclRanges maps each function declaration to its source extent, for
// analyzers that need "is this position inside a //tauw:<x> function".
type FuncDeclRanges struct {
	decls []declRange
}

type declRange struct {
	start, end token.Pos
}

// CollectFuncDirectiveRanges records the extents of all function
// declarations in files whose doc comment carries //tauw:<name>.
func CollectFuncDirectiveRanges(files []*ast.File, name string) *FuncDeclRanges {
	r := &FuncDeclRanges{}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !HasDirective(fd.Doc, name) {
				continue
			}
			r.decls = append(r.decls, declRange{start: fd.Pos(), end: fd.End()})
		}
	}
	return r
}

// Contains reports whether pos falls inside any recorded declaration.
func (r *FuncDeclRanges) Contains(pos token.Pos) bool {
	for _, d := range r.decls {
		if d.start <= pos && pos < d.end {
			return true
		}
	}
	return false
}
