// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer / Pass /
// Diagnostic / object-fact machinery to drive the repo's tauwcheck suite
// from both a standalone loader and the `go vet -vettool` protocol. It is
// deliberately stdlib-only — the toolchain image this repo builds in has
// no module proxy, so the framework the analyzers run on is part of the
// codebase, pinned and testable like everything else.
//
// The shape mirrors x/tools so the analyzers would port with trivial
// mechanical changes if the dependency ever becomes available: an Analyzer
// has a Name, a Doc string, and a Run function over a Pass; a Pass exposes
// the parsed files, the type-checked package, sizes, and fact import/export
// for cross-package reasoning.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tauwcheck:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description: first line is a summary.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error

	// FactTypes lists prototype values of every fact type the analyzer
	// exports or imports. An analyzer with no FactTypes is skipped
	// entirely on facts-only (VetxOnly) passes.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	// Module is the module path of the package under analysis, or "" when
	// unknown. Analyzers use it to distinguish module-internal callees
	// (which carry facts) from external ones.
	Module string

	report func(Diagnostic)
	facts  *FactStore
}

// NewPass assembles a Pass. The report callback receives every diagnostic;
// facts may be nil for analyzers that declare no FactTypes.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sizes types.Sizes, module string, facts *FactStore, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: sizes,
		Module:     module,
		report:     report,
		facts:      facts,
	}
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// ExportObjectFact attaches fact to obj, which must be a package-level
// object of the package under analysis. The fact becomes visible to later
// passes over packages that import this one.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) error {
	if p.facts == nil {
		return fmt.Errorf("analysis: %s declared no FactTypes", p.Analyzer.Name)
	}
	if obj == nil || obj.Pkg() != p.Pkg {
		return fmt.Errorf("analysis: fact on object %v outside package %v", obj, p.Pkg)
	}
	return p.facts.export(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact copies the fact previously exported for obj (by this
// analyzer, possibly while analyzing another package) into the pointer
// fact, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil {
		return false
	}
	return p.facts.importInto(p.Analyzer.Name, obj, fact)
}

// Validate checks the analyzer set for driver use: unique non-empty names.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q missing name or run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
