// Package load turns `go list -export` output into type-checked packages
// for the tauwcheck analyzers, with no dependency outside the standard
// library: sources are parsed with go/parser and type-checked against the
// gc export data the build cache already holds for every dependency. This
// is the standalone driver's loader (cmd/tauwcheck run on package
// patterns); the `go vet -vettool` path gets the same information from the
// vet.cfg file instead.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded package. Standard-library and other
// dependency-only packages carry their metadata but are not type-checked
// from source (Files/Types are nil for them unless they are module
// packages, which are analyzed for facts).
type Package struct {
	PkgPath string
	Dir     string
	GoFiles []string
	Module  string // module path, "" for standard library
	DepOnly bool   // true when listed only as a dependency of the patterns
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Sizes   types.Sizes
}

// Result is a load in dependency order (dependencies before dependents),
// sharing one FileSet.
type Result struct {
	Fset     *token.FileSet
	Packages []*Package
}

type listJSON struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns (with -deps) in dir and type-checks every module
// package from source. Returns an error if listing fails or any module
// package does not type-check — tauwcheck is a checker for compiling
// trees, not a compiler frontend.
func Load(dir string, patterns []string) (*Result, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,Module,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	var metas []listJSON
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listJSON
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		metas = append(metas, p)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	sizes := types.SizesFor("gc", runtime.GOARCH)

	res := &Result{Fset: fset}
	for _, m := range metas {
		pkg := &Package{
			PkgPath: m.ImportPath,
			Dir:     m.Dir,
			GoFiles: absFiles(m.Dir, m.GoFiles),
			DepOnly: m.DepOnly,
			Fset:    fset,
			Sizes:   sizes,
		}
		if m.Module != nil {
			pkg.Module = m.Module.Path
		}
		// Only module packages are analyzed from source; the standard
		// library (and any vendored dependency) is trusted at the
		// analyzer-policy level, not re-checked.
		if pkg.Module != "" && len(m.CgoFiles) == 0 {
			if err := typecheck(pkg, m, imp); err != nil {
				return nil, err
			}
		}
		res.Packages = append(res.Packages, pkg)
	}
	return res, nil
}

// absFiles resolves go list's Dir-relative file names.
func absFiles(dir string, files []string) []string {
	out := make([]string, len(files))
	for i, f := range files {
		if filepath.IsAbs(f) {
			out[i] = f
		} else {
			out[i] = filepath.Join(dir, f)
		}
	}
	return out
}

func typecheck(pkg *Package, m listJSON, imp types.Importer) error {
	for _, f := range pkg.GoFiles {
		af, err := parser.ParseFile(pkg.Fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		pkg.Files = append(pkg.Files, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    pkg.Sizes,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(m.ImportPath, pkg.Fset, pkg.Files, info)
	if len(typeErrs) > 0 {
		return fmt.Errorf("load: %s does not type-check: %w", m.ImportPath, errors.Join(typeErrs...))
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}
