// Package suite is the registry of the repo's tauwcheck analyzers: the
// single list both driver modes (standalone and `go vet -vettool`) and the
// docs are generated from.
package suite

import (
	"github.com/iese-repro/tauw/internal/analysis"
	"github.com/iese-repro/tauw/internal/analysis/codecpure"
	"github.com/iese-repro/tauw/internal/analysis/hotpath"
	"github.com/iese-repro/tauw/internal/analysis/lockorder"
	"github.com/iese-repro/tauw/internal/analysis/seam"
	"github.com/iese-repro/tauw/internal/analysis/shardpad"
	"github.com/iese-repro/tauw/internal/analysis/xlogonly"
)

// Analyzers returns the full tauwcheck suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		hotpath.Analyzer,
		seam.Analyzer,
		xlogonly.Analyzer,
		shardpad.Analyzer,
		lockorder.Analyzer,
		codecpure.Analyzer,
	}
}
