package hotpath_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/analysis"
	"github.com/iese-repro/tauw/internal/analysis/atest"
	"github.com/iese-repro/tauw/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	atest.Run(t, "testdata/hot", []*analysis.Analyzer{hotpath.Analyzer})
}

// TestHotpathRedToGreen removes the root annotation: with no hot root in
// the package, every finding must disappear (cold code may allocate).
func TestHotpathRedToGreen(t *testing.T) {
	tmp := atest.Run(t, "testdata/hot", []*analysis.Analyzer{hotpath.Analyzer})

	path := filepath.Join(tmp, "step", "step.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cold := strings.ReplaceAll(string(src), "//tauw:hotpath\n", "")
	if cold == string(src) {
		t.Fatal("fixture //tauw:hotpath roots not found")
	}
	cold = stripWants(cold)
	if err := os.WriteFile(path, []byte(cold), 0o644); err != nil {
		t.Fatal(err)
	}
	atest.RunDir(t, tmp, []*analysis.Analyzer{hotpath.Analyzer})
}

// TestSeveringRemovedGoesRed drops the edge-severing exemption in Severed:
// the cross-package call must surface with the transitive reason.
func TestSeveringRemovedGoesRed(t *testing.T) {
	tmp := atest.Run(t, "testdata/hot", []*analysis.Analyzer{hotpath.Analyzer})

	path := filepath.Join(tmp, "step", "step.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(src),
		`		//tauwcheck:ignore hotpath reference replay branch, never taken in production
		return dep.Indirect(x)`,
		"\t\treturn dep.Indirect(x) // want `hotpath: call to dep.Indirect in hot path: calls Render: call to fmt.Sprintf`",
		1)
	if bad == string(src) {
		t.Fatal("fixture severing exemption not found")
	}
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	atest.RunDir(t, tmp, []*analysis.Analyzer{hotpath.Analyzer})
}

// stripWants drops the want comments so the mutated fixture expects
// silence.
func stripWants(src string) string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		if head, _, ok := strings.Cut(line, "// want "); ok {
			line = strings.TrimRight(head, " \t")
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}
