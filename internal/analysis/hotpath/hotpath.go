// Package hotpath machine-enforces the repo's zero-allocation discipline:
// a function annotated //tauw:hotpath — the pool step/batch paths, the wire
// codec, the tauserve request codecs, the trace recorder — and everything
// it statically calls within the module may not use the constructs the
// discipline bans: defer (measurable per-call cost on a ~200ns path),
// encoding/json and the fmt.Sprint* family (allocation by contract),
// map/channel/closure literals (allocation by construction), and explicit
// interface-boxing conversions.
//
// Reachability is computed over static calls: in-package calls are followed
// transitively, calls into other module packages are resolved through
// exported Impure facts (each package exports, for every package-level
// function, why it would be illegal on a hot path — so `go vet`'s
// per-package fact pipeline carries the transitive closure across package
// boundaries). Dynamic calls (interface methods, function values) cannot be
// followed and are trusted; the benchmark alloc-gate remains the runtime
// backstop for those.
//
// fmt.Errorf is deliberately allowed: hot functions keep error paths, the
// discipline is about the happy path, and the benchmark gate pins 0
// allocs/op there. What the analyzer bans is the set of constructs that
// allocate on *every* invocation.
//
// //tauwcheck:ignore hotpath <reason> has edge-severing semantics here: an
// ignored line not only silences its own violation, it also stops the
// traversal through any call on that line. That is how a hot function
// declares a deliberate cold branch — the pool's reference replay path, the
// recorder's once-per-storm anomaly freeze — without exempting the callee
// for every other caller.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"github.com/iese-repro/tauw/internal/analysis"
)

// Impure is the exported fact: the function cannot appear on a hot path,
// with human-readable reasons (capped; the first is the primary).
type Impure struct {
	Reasons []string
}

func (*Impure) AFact() {}

const maxReasons = 3

var Analyzer = &analysis.Analyzer{
	Name:      "hotpath",
	Doc:       "//tauw:hotpath functions and their static callees may not defer, allocate literals, box interfaces, or call fmt.Sprint*/encoding/json",
	FactTypes: []analysis.Fact{(*Impure)(nil)},
	Run:       run,
}

// bannedStdlib maps stdlib callees to the reason they are banned. Any
// function in encoding/json is banned wholesale.
var bannedFmt = map[string]bool{"Sprintf": true, "Sprint": true, "Sprintln": true}

type violation struct {
	pos token.Pos
	msg string
}

type calleeRef struct {
	fn  *types.Func
	pos token.Pos
}

type funcInfo struct {
	obj     *types.Func
	decl    *ast.FuncDecl
	hot     bool
	direct  []violation
	inPkg   []calleeRef // static calls to package-level funcs/methods of this package
	crossed []calleeRef // static calls into other packages of the module
}

func run(pass *analysis.Pass) error {
	// The ignore set severs traversal (see the package comment); malformed
	// directives are the driver's to report.
	ignores, _ := analysis.CollectIgnores(pass.Fset, pass.Files)
	funcs := map[*types.Func]*funcInfo{}
	var order []*funcInfo
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{obj: obj, decl: fd, hot: analysis.HasDirective(fd.Doc, "hotpath")}
			scanBody(pass, ignores, fi)
			funcs[obj] = fi
			order = append(order, fi)
		}
	}

	// Transitive impurity for fact export: every package-level function
	// that is (or calls into) something banned gets an Impure fact, so a
	// hot path in another package sees through the call.
	memo := map[*types.Func][]string{}
	onStack := map[*types.Func]bool{}
	var impurity func(fi *funcInfo) []string
	impurity = func(fi *funcInfo) []string {
		if r, ok := memo[fi.obj]; ok {
			return r
		}
		if onStack[fi.obj] {
			return nil // cycle: resolved by the other frames
		}
		onStack[fi.obj] = true
		defer func() { onStack[fi.obj] = false }()
		var reasons []string
		for _, v := range fi.direct {
			reasons = appendReason(reasons, fmt.Sprintf("%s (at %s)", v.msg, shortPos(pass, v.pos)))
		}
		for _, c := range fi.inPkg {
			if callee, ok := funcs[c.fn]; ok {
				if sub := impurity(callee); len(sub) > 0 {
					reasons = appendReason(reasons, fmt.Sprintf("calls %s: %s", c.fn.Name(), sub[0]))
				}
			}
		}
		for _, c := range fi.crossed {
			var fact Impure
			if pass.ImportObjectFact(c.fn, &fact) && len(fact.Reasons) > 0 {
				reasons = appendReason(reasons, fmt.Sprintf("calls %s.%s: %s", c.fn.Pkg().Name(), c.fn.Name(), fact.Reasons[0]))
			}
		}
		memo[fi.obj] = reasons
		return reasons
	}
	for _, fi := range order {
		if reasons := impurity(fi); len(reasons) > 0 {
			if err := pass.ExportObjectFact(fi.obj, &Impure{Reasons: reasons}); err != nil {
				// Non-addressable objects (none in practice: FuncDecls are
				// package-level) just don't export.
				continue
			}
		}
	}

	// Diagnostics: BFS from each //tauw:hotpath root through in-package
	// static calls; report direct violations where they occur, and
	// cross-package calls whose target carries an Impure fact at the call
	// site.
	type visit struct {
		fi  *funcInfo
		via string
	}
	reported := map[*types.Func]bool{}
	for _, root := range order {
		if !root.hot {
			continue
		}
		queue := []visit{{fi: root, via: root.obj.Name()}}
		seen := map[*types.Func]bool{root.obj: true}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if !reported[v.fi.obj] {
				reported[v.fi.obj] = true
				suffix := ""
				if v.fi != root || !v.fi.hot {
					suffix = fmt.Sprintf(" (hot via %s)", v.via)
				}
				for _, viol := range v.fi.direct {
					pass.Reportf(viol.pos, "hotpath: %s in hot path%s", viol.msg, suffix)
				}
				for _, c := range v.fi.crossed {
					var fact Impure
					if pass.ImportObjectFact(c.fn, &fact) && len(fact.Reasons) > 0 {
						pass.Reportf(c.pos, "hotpath: call to %s.%s in hot path%s: %s", c.fn.Pkg().Name(), c.fn.Name(), suffix, fact.Reasons[0])
					}
				}
			}
			for _, c := range v.fi.inPkg {
				callee, ok := funcs[c.fn]
				if !ok || seen[c.fn] {
					continue
				}
				seen[c.fn] = true
				queue = append(queue, visit{fi: callee, via: v.via + " -> " + c.fn.Name()})
			}
		}
	}
	return nil
}

// scanBody records a function's direct violations and static call edges.
// Nodes on an ignored line are skipped entirely — no violation, no edge.
func scanBody(pass *analysis.Pass, ignores *analysis.IgnoreSet, fi *funcInfo) {
	severed := func(pos token.Pos) bool {
		return ignores.SuppressedAt(pass.Fset, pos, "hotpath")
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if !severed(n.Pos()) {
				fi.direct = append(fi.direct, violation{n.Pos(), "defer"})
			}
		case *ast.FuncLit:
			if !severed(n.Pos()) {
				fi.direct = append(fi.direct, violation{n.Pos(), "closure literal"})
			}
		case *ast.CompositeLit:
			if severed(n.Pos()) {
				break
			}
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					fi.direct = append(fi.direct, violation{n.Pos(), "map literal"})
				}
			}
		case *ast.CallExpr:
			if !severed(n.Pos()) {
				scanCall(pass, fi, n)
			}
		}
		return true
	})
}

func scanCall(pass *analysis.Pass, fi *funcInfo, call *ast.CallExpr) {
	// Conversions: flag concrete-to-interface boxing.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 && types.IsInterface(target) {
			if at := pass.TypesInfo.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				if b, ok := at.Underlying().(*types.Basic); !ok || b.Kind() != types.UntypedNil {
					fi.direct = append(fi.direct, violation{call.Pos(), fmt.Sprintf("interface-boxing conversion to %s", types.TypeString(target, types.RelativeTo(pass.Pkg)))})
				}
			}
		}
		return
	}
	// Builtins: make(map...) / make(chan...).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 1 {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if t := pass.TypesInfo.TypeOf(call.Args[0]); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					fi.direct = append(fi.direct, violation{call.Pos(), "make(map)"})
				case *types.Chan:
					fi.direct = append(fi.direct, violation{call.Pos(), "make(chan)"})
				}
			}
			return
		}
	}
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return // dynamic call: trusted, the alloc-gate benchmarks backstop it
	}
	switch {
	case fn.Pkg().Path() == "fmt" && bannedFmt[fn.Name()]:
		fi.direct = append(fi.direct, violation{call.Pos(), "call to fmt." + fn.Name()})
	case fn.Pkg().Path() == "encoding/json":
		fi.direct = append(fi.direct, violation{call.Pos(), "call to encoding/json." + fn.Name()})
	case fn.Pkg() == pass.Pkg:
		fi.inPkg = append(fi.inPkg, calleeRef{fn: fn, pos: call.Pos()})
	case pass.InModule(fn.Pkg()):
		fi.crossed = append(fi.crossed, calleeRef{fn: fn, pos: call.Pos()})
	}
}

func appendReason(reasons []string, r string) []string {
	if len(reasons) >= maxReasons {
		return reasons
	}
	return append(reasons, r)
}

func shortPos(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
