// Package step exercises the hot-path discipline: direct violations,
// transitive in-package calls, cross-package facts, and edge-severing
// exemptions.
package step

import (
	"fmt"

	"tauwfix/dep"
)

// Step is the fixture hot root.
//
//tauw:hotpath
func Step(x int) (int, error) {
	defer release()              // want "hotpath: defer in hot path"
	f := func() int { return x } // want "hotpath: closure literal in hot path"
	m := map[int]int{x: x}       // want "hotpath: map literal in hot path"
	c := make(chan int)          // want `hotpath: make\(chan\) in hot path`
	s := fmt.Sprintf("%d", x)    // want "hotpath: call to fmt.Sprintf in hot path"
	var sink any = x             // interface boxing via assignment is implicit; conversions are what the analyzer sees
	box := any(x)                // want "hotpath: interface-boxing conversion to any in hot path"
	helper(x)
	_ = dep.Indirect(x) // want `hotpath: call to dep.Indirect in hot path: calls Render: call to fmt.Sprintf`
	if x < 0 {
		return 0, fmt.Errorf("step: negative input %d", x) // fmt.Errorf is allowed: error path
	}
	_, _, _, _, _ = f, m, c, s, sink
	_ = box
	_ = dep.Pure(x)
	return x, nil
}

// helper is hot only by reachability from Step.
func helper(x int) {
	sink = fmt.Sprint(x) // want `hotpath: call to fmt.Sprint in hot path \(hot via Step -> helper\)`
}

// cold is never reached from a hot root: anything goes.
func cold(x int) string {
	defer release()
	return fmt.Sprintf("%d", x)
}

// Severed demonstrates the edge-severing exemption: the ignored call into
// the allocating oracle is a declared cold branch.
//
//tauw:hotpath
func Severed(x int) string {
	if x < 0 {
		//tauwcheck:ignore hotpath reference replay branch, never taken in production
		return dep.Indirect(x)
	}
	return ""
}

var sink string

func release() {}

// use keeps cold referenced so the fixture compiles vet-clean.
var _ = cold
