// Package dep exports helpers whose (im)purity must cross the package
// boundary as facts.
package dep

import "fmt"

// Pure is fine to call from a hot path.
func Pure(x int) int { return x * 2 }

// Render allocates by contract: any hot caller must be flagged.
func Render(x int) string { return fmt.Sprintf("%d", x) }

// Indirect hides the allocation one hop deeper.
func Indirect(x int) string { return Render(x) }
