// Package driver runs a tauwcheck analyzer suite over packages loaded by
// internal/analysis/load: dependency order, facts threaded forward in
// memory, //tauwcheck:ignore directives applied, diagnostics reported only
// for the packages the caller actually named (dependencies are analyzed
// for facts alone).
package driver

import (
	"sort"

	"github.com/iese-repro/tauw/internal/analysis"
	"github.com/iese-repro/tauw/internal/analysis/load"
)

// Run applies analyzers to every type-checked package in res.
func Run(res *load.Result, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var all []analysis.Diagnostic
	var facts []analysis.FactRecord
	for _, pkg := range res.Packages {
		if pkg.Types == nil {
			continue
		}
		store := analysis.NewFactStore(pkg.PkgPath, facts)
		var diags []analysis.Diagnostic
		report := func(d analysis.Diagnostic) { diags = append(diags, d) }
		for _, a := range analyzers {
			if pkg.DepOnly && len(a.FactTypes) == 0 {
				continue // facts-only pass: nothing to produce
			}
			pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Sizes, pkg.Module, store, report)
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		facts = append(facts, store.Exported()...)
		if pkg.DepOnly {
			continue
		}
		ignores, bad := analysis.CollectIgnores(res.Fset, pkg.Files)
		all = append(all, bad...)
		for _, d := range diags {
			if !ignores.Suppressed(res.Fset, d) {
				all = append(all, d)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := res.Fset.Position(all[i].Pos), res.Fset.Position(all[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return all[i].Message < all[j].Message
	})
	return all, nil
}
