package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestDecomposeBinnedBasics(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	n := 5000
	forecast := make([]float64, n)
	outcome := make([]bool, n)
	for i := range forecast {
		f := rng.Float64()
		forecast[i] = f
		outcome[i] = rng.Float64() < f // perfectly calibrated
	}
	d, err := DecomposeBinned(forecast, outcome, 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Groups != 20 {
		t.Errorf("groups = %d, want 20", d.Groups)
	}
	// Perfect calibration: unreliability must be tiny.
	if d.Unreliability > 0.002 {
		t.Errorf("unreliability %g for calibrated forecasts", d.Unreliability)
	}
	// And the identity must hold approximately (within-bin variance of a
	// 20-bin uniform forecast is ~(1/20)^2/12 per bin).
	if math.Abs(d.Identity()) > 0.002 {
		t.Errorf("identity residual %g too large", d.Identity())
	}
	if d.Overconfidence < 0 || d.Overconfidence > d.Unreliability+1e-15 {
		t.Errorf("overconfidence %g outside [0, unrel]", d.Overconfidence)
	}
}

func TestDecomposeBinnedDetectsOverconfidence(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	n := 4000
	forecast := make([]float64, n)
	outcome := make([]bool, n)
	for i := range forecast {
		forecast[i] = 0.05 + 0.1*rng.Float64()
		outcome[i] = rng.Float64() < 0.5 // true rate far above forecasts
	}
	d, err := DecomposeBinned(forecast, outcome, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Overconfidence < 0.9*d.Unreliability {
		t.Errorf("all miscalibration is overconfident, got over=%g of unrel=%g",
			d.Overconfidence, d.Unreliability)
	}
	if d.Unreliability < 0.1 {
		t.Errorf("unreliability %g too small for a 0.1-vs-0.5 miscalibration", d.Unreliability)
	}
}

func TestDecomposeBinnedErrors(t *testing.T) {
	if _, err := DecomposeBinned(nil, nil, 5); err == nil {
		t.Error("empty must fail")
	}
	if _, err := DecomposeBinned([]float64{0.5}, []bool{true, false}, 5); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := DecomposeBinned([]float64{0.5}, []bool{true}, 0); err == nil {
		t.Error("zero bins must fail")
	}
	if _, err := DecomposeBinned([]float64{1.5}, []bool{true}, 2); err == nil {
		t.Error("out-of-range forecast must fail")
	}
}

func TestDecomposeBinnedMoreBinsThanSamples(t *testing.T) {
	d, err := DecomposeBinned([]float64{0.2, 0.8}, []bool{false, true}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d.Groups != 2 {
		t.Errorf("groups = %d, want clamped to 2", d.Groups)
	}
}

func TestDecomposeBinnedAgreesWithExactOnDiscrete(t *testing.T) {
	// When forecasts are already discrete and bins align, binned and exact
	// decompositions must agree.
	rng := rand.New(rand.NewPCG(9, 10))
	n := 4000
	forecast := make([]float64, n)
	outcome := make([]bool, n)
	for i := range forecast {
		if i < n/2 {
			forecast[i] = 0.1
		} else {
			forecast[i] = 0.9
		}
		outcome[i] = rng.Float64() < forecast[i]
	}
	exact, err := Decompose(forecast, outcome)
	if err != nil {
		t.Fatal(err)
	}
	binned, err := DecomposeBinned(forecast, outcome, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Resolution-binned.Resolution) > 1e-12 ||
		math.Abs(exact.Unreliability-binned.Unreliability) > 1e-12 {
		t.Errorf("exact %+v vs binned %+v", exact, binned)
	}
}
