package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a float sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Describe computes a Summary of xs.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("stats: empty sample: %w", ErrDomain)
	}
	var w Welford
	minV, maxV := xs[0], xs[0]
	for _, x := range xs {
		w.Add(x)
		minV = math.Min(minV, x)
		maxV = math.Max(maxV, x)
	}
	med, err := Quantile(xs, 0.5)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:      len(xs),
		Mean:   w.Mean(),
		Var:    w.Variance(),
		Std:    math.Sqrt(w.Variance()),
		Min:    minV,
		Max:    maxV,
		Median: med,
	}, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs with linear
// interpolation between order statistics (the common "type 7" estimator).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), fmt.Errorf("stats: empty sample: %w", ErrDomain)
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN(), fmt.Errorf("stats: quantile %g outside [0,1]: %w", q, ErrDomain)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Welford accumulates mean and variance in one pass with the numerically
// stable Welford update. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// HistogramBin is one bin of a fixed-width histogram.
type HistogramBin struct {
	Lo, Hi float64
	Count  int
}

// Histogram builds a fixed-width histogram of xs over [lo, hi] with the
// given number of bins. Values outside the range are clamped into the edge
// bins, which is the behaviour wanted for bounded uncertainty values.
func Histogram(xs []float64, lo, hi float64, bins int) ([]HistogramBin, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d: %w", bins, ErrDomain)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid histogram range [%g,%g]: %w", lo, hi, ErrDomain)
	}
	out := make([]HistogramBin, bins)
	width := (hi - lo) / float64(bins)
	for i := range out {
		out[i].Lo = lo + float64(i)*width
		out[i].Hi = lo + float64(i+1)*width
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		out[b].Count++
	}
	return out, nil
}

// WeightedShare returns the fraction of xs that are <= threshold. It backs
// the paper's Fig. 5 statement "lowest uncertainty guaranteed for X% of the
// cases".
func WeightedShare(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
