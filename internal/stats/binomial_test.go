package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClopperPearsonZeroFailures(t *testing.T) {
	// Closed form: 1 - alpha^(1/n). For n=200, conf=0.999:
	// 1 - 0.001^(1/200) = 0.033944...
	got, err := BinomialUpperBound(ClopperPearson, 0, 200, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(0.001, 1.0/200)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("CP(0,200,0.999) = %g, want %g", got, want)
	}
}

func TestClopperPearsonPaperLowestUncertainty(t *testing.T) {
	// The paper reports a lowest dependable uncertainty of u = 0.0072 at
	// 99.9% confidence, which corresponds to an error-free leaf of ~956
	// calibration samples. Check that our bound reproduces that regime.
	got, err := BinomialUpperBound(ClopperPearson, 0, 956, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.0072, 2e-4) {
		t.Errorf("CP(0,956,0.999) = %g, want about 0.0072", got)
	}
}

func TestClopperPearsonAllFailures(t *testing.T) {
	got, err := BinomialUpperBound(ClopperPearson, 10, 10, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("CP(10,10) = %g, want 1", got)
	}
}

func TestClopperPearsonKnownValue(t *testing.T) {
	// scipy.stats.beta.ppf(0.95, 3, 18) = 0.28262...
	// (k=2 failures, n=20, one-sided 95%).
	got, err := BinomialUpperBound(ClopperPearson, 2, 20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.2826, 5e-4) {
		t.Errorf("CP(2,20,0.95) = %g, want ~0.2826", got)
	}
}

func TestBinomialBoundDomainErrors(t *testing.T) {
	cases := []struct {
		k, n int
		conf float64
	}{
		{0, 0, 0.999},
		{-1, 10, 0.999},
		{11, 10, 0.999},
		{1, 10, 0},
		{1, 10, 1},
	}
	for _, c := range cases {
		if _, err := BinomialUpperBound(ClopperPearson, c.k, c.n, c.conf); err == nil {
			t.Errorf("k=%d n=%d conf=%g should fail", c.k, c.n, c.conf)
		}
	}
	if _, err := BinomialUpperBound(BoundMethod(99), 1, 10, 0.9); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestBoundMethodString(t *testing.T) {
	tests := []struct {
		m    BoundMethod
		want string
	}{
		{ClopperPearson, "clopper-pearson"},
		{Wilson, "wilson"},
		{Jeffreys, "jeffreys"},
		{BoundMethod(42), "BoundMethod(42)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}

// Property: every method returns a bound in [k/n, 1] that covers the point
// estimate, and the bound shrinks as n grows with k=0.
func TestBinomialBoundProperties(t *testing.T) {
	methods := []BoundMethod{ClopperPearson, Wilson, Jeffreys}
	f := func(rawK, rawN uint16) bool {
		n := int(rawN%500) + 1
		k := int(rawK) % (n + 1)
		for _, m := range methods {
			u, err := BinomialUpperBound(m, k, n, 0.999)
			if err != nil {
				return false
			}
			point := float64(k) / float64(n)
			if u < point-1e-9 || u > 1+1e-12 || math.IsNaN(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Clopper-Pearson is at least as conservative as Jeffreys, which
// is generally at least as large as the point estimate; and more data means
// a tighter zero-failure bound.
func TestBinomialBoundOrdering(t *testing.T) {
	for _, n := range []int{5, 20, 100, 500, 2000} {
		cp, err := BinomialUpperBound(ClopperPearson, 0, n, 0.999)
		if err != nil {
			t.Fatal(err)
		}
		jf, err := BinomialUpperBound(Jeffreys, 0, n, 0.999)
		if err != nil {
			t.Fatal(err)
		}
		if cp < jf-1e-12 {
			t.Errorf("n=%d: CP %g < Jeffreys %g; CP must be most conservative", n, cp, jf)
		}
	}
	prev := 1.0
	for _, n := range []int{10, 50, 200, 1000, 5000} {
		cp, err := BinomialUpperBound(ClopperPearson, 0, n, 0.999)
		if err != nil {
			t.Fatal(err)
		}
		if cp >= prev {
			t.Errorf("zero-failure bound must shrink with n: n=%d bound=%g prev=%g", n, cp, prev)
		}
		prev = cp
	}
}

func TestBinomialTailAtLeast(t *testing.T) {
	// P(X >= 1 | n=3, p=0.5) = 1 - 0.125 = 0.875.
	got, err := BinomialTailAtLeast(1, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.875, 1e-12) {
		t.Errorf("tail = %g, want 0.875", got)
	}
	// P(X >= 3 | n=3, p=0.5) = 0.125.
	got, err = BinomialTailAtLeast(3, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.125, 1e-12) {
		t.Errorf("tail = %g, want 0.125", got)
	}
	// Edges.
	if v, err := BinomialTailAtLeast(0, 10, 0.3); err != nil || v != 1 {
		t.Errorf("k=0 tail = %g, %v", v, err)
	}
	if v, err := BinomialTailAtLeast(5, 10, 0); err != nil || v != 0 {
		t.Errorf("p=0 tail = %g, %v", v, err)
	}
	if v, err := BinomialTailAtLeast(5, 10, 1); err != nil || v != 1 {
		t.Errorf("p=1 tail = %g, %v", v, err)
	}
	// Domain errors.
	if _, err := BinomialTailAtLeast(1, 0, 0.5); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := BinomialTailAtLeast(-1, 5, 0.5); err == nil {
		t.Error("k<0 must fail")
	}
	if _, err := BinomialTailAtLeast(6, 5, 0.5); err == nil {
		t.Error("k>n must fail")
	}
	if _, err := BinomialTailAtLeast(1, 5, 1.5); err == nil {
		t.Error("p>1 must fail")
	}
}

// The defining duality of the Clopper-Pearson bound: at the upper limit
// p_u for k observed events, P(X <= k | p_u) = 1-confidence, equivalently
// P(X >= k+1 | p_u) = confidence.
func TestBinomialTailConsistentWithBound(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{1, 50}, {3, 100}, {10, 400}} {
		bound, err := BinomialUpperBound(ClopperPearson, tc.k, tc.n, 0.999)
		if err != nil {
			t.Fatal(err)
		}
		tail, err := BinomialTailAtLeast(tc.k+1, tc.n, bound)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(tail, 0.999, 1e-9) {
			t.Errorf("k=%d n=%d: P(X>=k+1) at CP bound = %g, want 0.999", tc.k, tc.n, tail)
		}
	}
}

func TestWilsonMatchesNormalApproxForLargeN(t *testing.T) {
	// For large n and moderate p the Wilson bound approaches
	// p + z*sqrt(p(1-p)/n).
	n, k := 100000, 10000
	u, err := BinomialUpperBound(Wilson, k, n, 0.975)
	if err != nil {
		t.Fatal(err)
	}
	p := 0.1
	z := 1.959963985
	approx := p + z*math.Sqrt(p*(1-p)/float64(n))
	if !almostEqual(u, approx, 1e-4) {
		t.Errorf("Wilson = %g, normal approx %g", u, approx)
	}
}
