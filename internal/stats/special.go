// Package stats provides the statistical substrate for uncertainty wrappers:
// special functions (regularised incomplete beta and its inverse), one-sided
// binomial confidence bounds (Clopper–Pearson, Wilson, Jeffreys), the Brier
// score with its Murphy decomposition, calibration curves, and descriptive
// statistics. Everything is implemented from scratch on top of math.
package stats

import (
	"errors"
	"math"
)

// ErrDomain is returned when an argument is outside the mathematical domain
// of a function (e.g. a probability outside [0,1]).
var ErrDomain = errors.New("stats: argument outside domain")

const (
	// betaMaxIter bounds the continued-fraction iterations for the
	// regularised incomplete beta function.
	betaMaxIter = 300
	// betaEps is the relative accuracy target of the continued fraction.
	betaEps = 1e-14
	// invEps is the absolute accuracy target for inverse CDFs.
	invEps = 1e-12
)

// LogBeta returns ln(B(a, b)) for a, b > 0.
func LogBeta(a, b float64) (float64, error) {
	if a <= 0 || b <= 0 {
		return math.NaN(), ErrDomain
	}
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab, nil
}

// RegIncBeta returns the regularised incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1]. It evaluates the standard continued fraction
// (modified Lentz), using the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay in
// the rapidly converging region.
func RegIncBeta(a, b, x float64) (float64, error) {
	switch {
	case a <= 0 || b <= 0:
		return math.NaN(), ErrDomain
	case x < 0 || x > 1 || math.IsNaN(x):
		return math.NaN(), ErrDomain
	case x == 0:
		return 0, nil
	case x == 1:
		return 1, nil
	}
	lbeta, err := LogBeta(a, b)
	if err != nil {
		return math.NaN(), err
	}
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	if x < (a+1)/(a+b+2) {
		cf, err := betaContinuedFraction(a, b, x)
		if err != nil {
			return math.NaN(), err
		}
		return front * cf / a, nil
	}
	cf, err := betaContinuedFraction(b, a, 1-x)
	if err != nil {
		return math.NaN(), err
	}
	return 1 - front*cf/b, nil
}

// betaContinuedFraction evaluates the continued fraction for the incomplete
// beta function by the modified Lentz method (Numerical Recipes §6.4).
func betaContinuedFraction(a, b, x float64) (float64, error) {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= betaMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < betaEps {
			return h, nil
		}
	}
	// The fraction converges for all interior points; reaching the
	// iteration cap still leaves h accurate to ~1e-10, good enough for
	// calibration bounds, so we return it rather than failing hard.
	return h, nil
}

// BetaQuantile returns the p-quantile of the Beta(a, b) distribution, i.e.
// the x in [0,1] with I_x(a,b) = p. It brackets by bisection and polishes
// with Newton steps, which is robust for the extreme tail probabilities used
// by 0.999-confidence bounds.
func BetaQuantile(p, a, b float64) (float64, error) {
	switch {
	case a <= 0 || b <= 0:
		return math.NaN(), ErrDomain
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN(), ErrDomain
	case p == 0:
		return 0, nil
	case p == 1:
		return 1, nil
	}
	lo, hi := 0.0, 1.0
	x := a / (a + b) // mean as the initial guess
	for i := 0; i < 200; i++ {
		v, err := RegIncBeta(a, b, x)
		if err != nil {
			return math.NaN(), err
		}
		if v > p {
			hi = x
		} else {
			lo = x
		}
		// Newton step from the current point; fall back to bisection
		// when it leaves the bracket.
		lbeta, _ := LogBeta(a, b)
		logPDF := (a-1)*math.Log(x) + (b-1)*math.Log(1-x) - lbeta
		step := (v - p) / math.Exp(logPDF)
		nx := x - step
		if !(nx > lo && nx < hi) || math.IsNaN(nx) {
			nx = (lo + hi) / 2
		}
		if math.Abs(nx-x) < invEps {
			return nx, nil
		}
		x = nx
	}
	return x, nil
}

// NormalQuantile returns the p-quantile of the standard normal distribution,
// using the stdlib inverse error function.
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return math.NaN(), ErrDomain
	}
	return math.Sqrt2 * math.Erfinv(2*p-1), nil
}
