package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDescribe(t *testing.T) {
	s, err := Describe([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if !almostEqual(s.Var, 2.5, 1e-12) {
		t.Errorf("variance = %g, want 2.5", s.Var)
	}
	if _, err := Describe(nil); err == nil {
		t.Error("empty sample should fail")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		q, want float64
	}{
		{0, 10},
		{1, 40},
		{0.5, 25},
		{0.25, 17.5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q > 1 should fail")
	}
	if v, err := Quantile([]float64{7}, 0.9); err != nil || v != 7 {
		t.Errorf("single element quantile = %g, %v", v, err)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 1000)
	var w Welford
	var sum float64
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	wantVar := ss / float64(len(xs)-1)
	if !almostEqual(w.Mean(), mean, 1e-9) {
		t.Errorf("mean %g != %g", w.Mean(), mean)
	}
	if !almostEqual(w.Variance(), wantVar, 1e-9) {
		t.Errorf("variance %g != %g", w.Variance(), wantVar)
	}
	if w.N() != 1000 {
		t.Errorf("n = %d", w.N())
	}
}

func TestWelfordSmallSamples(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Error("zero value must report zeros")
	}
	w.Add(5)
	if w.Variance() != 0 {
		t.Error("variance of one sample must be 0")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.05, 0.15, 0.15, 0.95, -1, 2}
	bins, err := Histogram(xs, 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 10 {
		t.Fatalf("len = %d", len(bins))
	}
	if bins[0].Count != 2 { // 0.05 and clamped -1
		t.Errorf("bin0 = %d, want 2", bins[0].Count)
	}
	if bins[1].Count != 2 {
		t.Errorf("bin1 = %d, want 2", bins[1].Count)
	}
	if bins[9].Count != 2 { // 0.95 and clamped 2
		t.Errorf("bin9 = %d, want 2", bins[9].Count)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(xs) {
		t.Errorf("histogram loses mass: %d != %d", total, len(xs))
	}
	if _, err := Histogram(xs, 0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := Histogram(xs, 1, 0, 5); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestWeightedShare(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, 0.4}
	if got := WeightedShare(xs, 0.25); got != 0.5 {
		t.Errorf("share = %g, want 0.5", got)
	}
	if got := WeightedShare(nil, 0.5); got != 0 {
		t.Errorf("empty share = %g, want 0", got)
	}
}

// Property: histogram conserves sample count for any input.
func TestHistogramConservesMass(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN) + 1
		rng := rand.New(rand.NewPCG(seed, 9))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*4 - 2
		}
		bins, err := Histogram(xs, 0, 1, 7)
		if err != nil {
			return false
		}
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64, q1, q2 uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		a := float64(q1%1001) / 1000
		b := float64(q2%1001) / 1000
		if a > b {
			a, b = b, a
		}
		va, err1 := Quantile(xs, a)
		vb, err2 := Quantile(xs, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return vb >= va-1e-12 && !math.IsNaN(va)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
