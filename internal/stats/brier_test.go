package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBrierScoreBasics(t *testing.T) {
	tests := []struct {
		name     string
		forecast []float64
		outcome  []bool
		want     float64
	}{
		{"perfect", []float64{0, 1, 0, 1}, []bool{false, true, false, true}, 0},
		{"worst", []float64{1, 0}, []bool{false, true}, 1},
		{"uniform-half", []float64{0.5, 0.5}, []bool{true, false}, 0.25},
		{"mixed", []float64{0.2, 0.8}, []bool{false, true}, (0.04 + 0.04) / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := BrierScore(tt.forecast, tt.outcome)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("BrierScore = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestBrierScoreErrors(t *testing.T) {
	if _, err := BrierScore([]float64{0.1}, []bool{}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := BrierScore(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestDecomposeIdentityExact(t *testing.T) {
	// When grouping by exact forecast values the Murphy identity holds
	// exactly (up to float error).
	rng := rand.New(rand.NewPCG(7, 11))
	levels := []float64{0.01, 0.05, 0.2, 0.5, 0.9}
	n := 5000
	forecast := make([]float64, n)
	outcome := make([]bool, n)
	for i := 0; i < n; i++ {
		f := levels[rng.IntN(len(levels))]
		forecast[i] = f
		outcome[i] = rng.Float64() < f*0.9 // slightly miscalibrated
	}
	d, err := Decompose(forecast, outcome)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Identity()) > 1e-10 {
		t.Errorf("Murphy identity residual = %g", d.Identity())
	}
	if d.Groups != len(levels) {
		t.Errorf("groups = %d, want %d", d.Groups, len(levels))
	}
	if d.Resolution < 0 || d.Unreliability < 0 {
		t.Errorf("components must be non-negative: res=%g unrel=%g", d.Resolution, d.Unreliability)
	}
	if d.Overconfidence < 0 || d.Overconfidence > d.Unreliability+1e-15 {
		t.Errorf("overconfidence %g outside [0, unreliability=%g]", d.Overconfidence, d.Unreliability)
	}
	if !almostEqual(d.Underconfidence+d.Overconfidence, d.Unreliability, 1e-12) {
		t.Error("over+under must sum to unreliability")
	}
	if !almostEqual(d.Unspecificity, d.Variance-d.Resolution, 1e-15) {
		t.Error("unspecificity must equal variance - resolution")
	}
}

func TestDecomposePerfectCalibration(t *testing.T) {
	// Deterministic construction: forecast 0.25 on 4 samples with exactly
	// 1 event -> perfectly reliable group.
	forecast := []float64{0.25, 0.25, 0.25, 0.25, 0.75, 0.75, 0.75, 0.75}
	outcome := []bool{true, false, false, false, true, true, true, false}
	d, err := Decompose(forecast, outcome)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.Unreliability, 0, 1e-12) {
		t.Errorf("perfectly calibrated groups must have unreliability 0, got %g", d.Unreliability)
	}
	if !almostEqual(d.Brier, d.Variance-d.Resolution, 1e-12) {
		t.Errorf("identity: %g != %g", d.Brier, d.Variance-d.Resolution)
	}
}

func TestDecomposeOverconfidenceAttribution(t *testing.T) {
	// One group predicts 0.1 but observes rate 0.5 -> overconfident.
	// Another predicts 0.9 and observes 0.5 -> underconfident.
	forecast := []float64{0.1, 0.1, 0.9, 0.9}
	outcome := []bool{true, false, true, false}
	d, err := Decompose(forecast, outcome)
	if err != nil {
		t.Fatal(err)
	}
	wantEach := 0.5 * (0.4 * 0.4) // weight 1/2, deviation 0.4
	if !almostEqual(d.Overconfidence, wantEach, 1e-12) {
		t.Errorf("overconfidence = %g, want %g", d.Overconfidence, wantEach)
	}
	if !almostEqual(d.Underconfidence, wantEach, 1e-12) {
		t.Errorf("underconfidence = %g, want %g", d.Underconfidence, wantEach)
	}
}

func TestDecomposeRejectsBadForecasts(t *testing.T) {
	if _, err := Decompose([]float64{1.2}, []bool{true}); err == nil {
		t.Error("forecast > 1 should fail")
	}
	if _, err := Decompose([]float64{math.NaN()}, []bool{true}); err == nil {
		t.Error("NaN forecast should fail")
	}
	if _, err := Decompose([]float64{0.5}, []bool{}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Decompose(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

// Property: for random discrete forecasts the identity holds and all
// components stay within their theoretical bounds.
func TestDecomposePropertyIdentity(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := int(rawN%300) + 10
		rng := rand.New(rand.NewPCG(seed, 3))
		forecast := make([]float64, n)
		outcome := make([]bool, n)
		for i := range forecast {
			forecast[i] = float64(rng.IntN(6)) / 5.0
			outcome[i] = rng.Float64() < 0.3
		}
		d, err := Decompose(forecast, outcome)
		if err != nil {
			return false
		}
		if math.Abs(d.Identity()) > 1e-9 {
			return false
		}
		if d.Resolution < -1e-12 || d.Resolution > d.Variance+1e-9 {
			return false
		}
		return d.Brier >= -1e-12 && d.Brier <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCalibrationCurve(t *testing.T) {
	// 100 samples, certainty equals index/100, correct iff certainty>0.5.
	n := 100
	certainty := make([]float64, n)
	correct := make([]bool, n)
	for i := 0; i < n; i++ {
		certainty[i] = float64(i) / float64(n)
		correct[i] = certainty[i] > 0.5
	}
	pts, err := CalibrationCurve(certainty, correct, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
	for i, p := range pts {
		if p.Count != 10 {
			t.Errorf("bin %d count = %d, want 10", i, p.Count)
		}
	}
	// Lowest-certainty bins observe 0, highest observe 1.
	if pts[0].Observed != 0 {
		t.Errorf("first bin observed = %g, want 0", pts[0].Observed)
	}
	if pts[9].Observed != 1 {
		t.Errorf("last bin observed = %g, want 1", pts[9].Observed)
	}
	// Mean predicted certainty must increase across bins.
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanPredicted <= pts[i-1].MeanPredicted {
			t.Errorf("bin %d mean %g not increasing", i, pts[i].MeanPredicted)
		}
	}
}

func TestCalibrationCurveErrors(t *testing.T) {
	if _, err := CalibrationCurve([]float64{0.1}, []bool{true, false}, 2); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := CalibrationCurve([]float64{0.1, 0.2}, []bool{true, false}, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := CalibrationCurve([]float64{0.1}, []bool{true}, 5); err == nil {
		t.Error("fewer samples than bins should fail")
	}
}
