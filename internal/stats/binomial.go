package stats

import (
	"fmt"
	"math"
)

// BoundMethod selects the one-sided binomial upper-bound construction used
// when calibrating decision-tree leaves.
type BoundMethod int

const (
	// ClopperPearson is the exact (conservative) bound used by the paper.
	ClopperPearson BoundMethod = iota + 1
	// Wilson is the score-interval bound (less conservative).
	Wilson
	// Jeffreys is the Bayesian Beta(1/2,1/2) credible bound.
	Jeffreys
)

// String returns the canonical name of the method.
func (m BoundMethod) String() string {
	switch m {
	case ClopperPearson:
		return "clopper-pearson"
	case Wilson:
		return "wilson"
	case Jeffreys:
		return "jeffreys"
	default:
		return fmt.Sprintf("BoundMethod(%d)", int(m))
	}
}

// BinomialUpperBound returns a one-sided upper confidence bound on the
// success probability p of a binomial experiment with k observed successes
// in n trials, at the given confidence level (e.g. 0.999). In the wrapper
// setting "success" is a DDM failure, so the bound is a dependable
// uncertainty estimate: with probability >= confidence the true failure rate
// does not exceed the returned value.
func BinomialUpperBound(method BoundMethod, k, n int, confidence float64) (float64, error) {
	switch {
	case n <= 0:
		return math.NaN(), fmt.Errorf("stats: binomial bound needs n > 0, got %d: %w", n, ErrDomain)
	case k < 0 || k > n:
		return math.NaN(), fmt.Errorf("stats: binomial bound needs 0 <= k <= n, got k=%d n=%d: %w", k, n, ErrDomain)
	case confidence <= 0 || confidence >= 1:
		return math.NaN(), fmt.Errorf("stats: confidence must be in (0,1), got %g: %w", confidence, ErrDomain)
	}
	switch method {
	case ClopperPearson:
		return clopperPearsonUpper(k, n, confidence)
	case Wilson:
		return wilsonUpper(k, n, confidence)
	case Jeffreys:
		return jeffreysUpper(k, n, confidence)
	default:
		return math.NaN(), fmt.Errorf("stats: unknown bound method %d: %w", int(method), ErrDomain)
	}
}

// clopperPearsonUpper computes the exact upper bound: the confidence-quantile
// of Beta(k+1, n-k). For k == n the bound is 1; for k == 0 it has the closed
// form 1-(1-confidence)^(1/n).
func clopperPearsonUpper(k, n int, confidence float64) (float64, error) {
	if k == n {
		return 1, nil
	}
	if k == 0 {
		alpha := 1 - confidence
		return 1 - math.Pow(alpha, 1/float64(n)), nil
	}
	return BetaQuantile(confidence, float64(k)+1, float64(n-k))
}

// wilsonUpper computes the one-sided Wilson score upper bound.
func wilsonUpper(k, n int, confidence float64) (float64, error) {
	z, err := NormalQuantile(confidence)
	if err != nil {
		return math.NaN(), err
	}
	nf := float64(n)
	ph := float64(k) / nf
	z2 := z * z
	denom := 1 + z2/nf
	centre := ph + z2/(2*nf)
	half := z * math.Sqrt(ph*(1-ph)/nf+z2/(4*nf*nf))
	u := (centre + half) / denom
	return math.Min(u, 1), nil
}

// BinomialTailAtLeast returns P(X >= k) for X ~ Binomial(n, p), via the
// identity P(X >= k) = I_p(k, n-k+1). It is the exact one-sided test used to
// decide whether an observed failure count significantly exceeds a claimed
// bound.
func BinomialTailAtLeast(k, n int, p float64) (float64, error) {
	switch {
	case n <= 0:
		return math.NaN(), fmt.Errorf("stats: binomial tail needs n > 0, got %d: %w", n, ErrDomain)
	case k < 0 || k > n:
		return math.NaN(), fmt.Errorf("stats: binomial tail needs 0 <= k <= n, got k=%d n=%d: %w", k, n, ErrDomain)
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN(), fmt.Errorf("stats: probability %g outside [0,1]: %w", p, ErrDomain)
	case k == 0:
		return 1, nil
	case p == 0:
		return 0, nil
	case p == 1:
		return 1, nil
	}
	return RegIncBeta(float64(k), float64(n-k+1), p)
}

// jeffreysUpper computes the Bayesian upper credible bound with the Jeffreys
// prior Beta(1/2, 1/2).
func jeffreysUpper(k, n int, confidence float64) (float64, error) {
	if k == n {
		return 1, nil
	}
	return BetaQuantile(confidence, float64(k)+0.5, float64(n-k)+0.5)
}
