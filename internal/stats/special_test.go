package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestLogBeta(t *testing.T) {
	tests := []struct {
		a, b float64
		want float64
	}{
		{1, 1, 0},                  // B(1,1)=1
		{2, 3, math.Log(1.0 / 12)}, // B(2,3)=1/12
		{0.5, 0.5, math.Log(math.Pi)},
		// B(10,10) = (9!)^2 / 19!
		{10, 10, math.Log(362880.0 * 362880.0 / 1.21645100408832e17)},
	}
	for _, tt := range tests {
		got, err := LogBeta(tt.a, tt.b)
		if err != nil {
			t.Fatalf("LogBeta(%g,%g): %v", tt.a, tt.b, err)
		}
		if !almostEqual(got, tt.want, 1e-10) {
			t.Errorf("LogBeta(%g,%g) = %g, want %g", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLogBetaDomain(t *testing.T) {
	if _, err := LogBeta(0, 1); err == nil {
		t.Error("LogBeta(0,1) should fail")
	}
	if _, err := LogBeta(1, -2); err == nil {
		t.Error("LogBeta(1,-2) should fail")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	tests := []struct {
		a, b, x float64
		want    float64
	}{
		{1, 1, 0.3, 0.3},  // uniform CDF
		{2, 1, 0.5, 0.25}, // I_x(2,1) = x^2
		{1, 2, 0.5, 0.75}, // I_x(1,2) = 1-(1-x)^2
		{2, 2, 0.5, 0.5},  // symmetric
		// Integer case has a closed form:
		// I_x(5,3) = sum_{j=5..7} C(7,j) x^j (1-x)^(7-j) = 0.6470695 at x=0.7.
		{5, 3, 0.7, 0.6470695},
		{0.5, 0.5, 0.25, 2 * math.Asin(math.Sqrt(0.25)) / math.Pi},
	}
	for _, tt := range tests {
		got, err := RegIncBeta(tt.a, tt.b, tt.x)
		if err != nil {
			t.Fatalf("RegIncBeta(%g,%g,%g): %v", tt.a, tt.b, tt.x, err)
		}
		if !almostEqual(got, tt.want, 1e-7) {
			t.Errorf("RegIncBeta(%g,%g,%g) = %g, want %g", tt.a, tt.b, tt.x, got, tt.want)
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if v, err := RegIncBeta(3, 4, 0); err != nil || v != 0 {
		t.Errorf("I_0 = %g, %v; want 0, nil", v, err)
	}
	if v, err := RegIncBeta(3, 4, 1); err != nil || v != 1 {
		t.Errorf("I_1 = %g, %v; want 1, nil", v, err)
	}
	if _, err := RegIncBeta(3, 4, -0.1); err == nil {
		t.Error("x < 0 should fail")
	}
	if _, err := RegIncBeta(3, 4, 1.1); err == nil {
		t.Error("x > 1 should fail")
	}
	if _, err := RegIncBeta(-1, 4, 0.5); err == nil {
		t.Error("a <= 0 should fail")
	}
}

// Property: I_x(a,b) is monotonically non-decreasing in x.
func TestRegIncBetaMonotone(t *testing.T) {
	f := func(rawA, rawB, rawX, rawY uint16) bool {
		a := 0.1 + float64(rawA%500)/25   // (0.1, 20.1)
		b := 0.1 + float64(rawB%500)/25   // (0.1, 20.1)
		x := float64(rawX%1000) / 1000    // [0, 1)
		y := x + float64(rawY%100)/1000.0 // x..x+0.099
		if y > 1 {
			y = 1
		}
		vx, err1 := RegIncBeta(a, b, x)
		vy, err2 := RegIncBeta(a, b, y)
		if err1 != nil || err2 != nil {
			return false
		}
		return vy >= vx-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
func TestRegIncBetaSymmetry(t *testing.T) {
	f := func(rawA, rawB, rawX uint16) bool {
		a := 0.2 + float64(rawA%300)/20
		b := 0.2 + float64(rawB%300)/20
		x := float64(rawX%999+1) / 1001 // keep inside (0,1)
		v1, err1 := RegIncBeta(a, b, x)
		v2, err2 := RegIncBeta(b, a, 1-x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(v1, 1-v2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBetaQuantileRoundTrip(t *testing.T) {
	f := func(rawA, rawB, rawP uint16) bool {
		a := 0.5 + float64(rawA%200)/10
		b := 0.5 + float64(rawB%200)/10
		p := float64(rawP%998+1) / 1000
		x, err := BetaQuantile(p, a, b)
		if err != nil {
			return false
		}
		v, err := RegIncBeta(a, b, x)
		if err != nil {
			return false
		}
		return almostEqual(v, p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBetaQuantileEdges(t *testing.T) {
	if x, err := BetaQuantile(0, 2, 3); err != nil || x != 0 {
		t.Errorf("BetaQuantile(0) = %g, %v", x, err)
	}
	if x, err := BetaQuantile(1, 2, 3); err != nil || x != 1 {
		t.Errorf("BetaQuantile(1) = %g, %v", x, err)
	}
	if _, err := BetaQuantile(0.5, 0, 3); err == nil {
		t.Error("a = 0 should fail")
	}
	if _, err := BetaQuantile(math.NaN(), 1, 1); err == nil {
		t.Error("NaN p should fail")
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963985},
		{0.999, 3.090232306},
		{0.025, -1.959963985},
	}
	for _, tt := range tests {
		got, err := NormalQuantile(tt.p)
		if err != nil {
			t.Fatalf("NormalQuantile(%g): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-6) {
			t.Errorf("NormalQuantile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if _, err := NormalQuantile(0); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := NormalQuantile(1); err == nil {
		t.Error("p=1 should fail")
	}
}
