package stats_test

import (
	"fmt"

	"github.com/iese-repro/tauw/internal/stats"
)

// ExampleBinomialUpperBound reproduces the calibration arithmetic behind
// the paper's headline number: an error-free leaf with ~956 calibration
// samples yields the dependable uncertainty u = 0.0072 at 99.9% confidence.
func ExampleBinomialUpperBound() {
	u, _ := stats.BinomialUpperBound(stats.ClopperPearson, 0, 956, 0.999)
	fmt.Printf("u <= %.4f\n", u)
	// Output:
	// u <= 0.0072
}

// ExampleDecompose shows the Murphy partition the paper's Table I reports.
func ExampleDecompose() {
	// Two calibrated forecast groups: 10% and 50% failure probability.
	forecast := []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1,
		0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	outcome := []bool{true, false, false, false, false, false, false, false, false, false,
		true, true, true, true, true, false, false, false, false, false}
	d, _ := stats.Decompose(forecast, outcome)
	fmt.Printf("brier=%.4f variance=%.4f resolution=%.4f unreliability=%.4f\n",
		d.Brier, d.Variance, d.Resolution, d.Unreliability)
	fmt.Printf("identity holds: %v\n", d.Identity() < 1e-12 && d.Identity() > -1e-12)
	// Output:
	// brier=0.1700 variance=0.2100 resolution=0.0400 unreliability=0.0000
	// identity holds: true
}
