package stats

import (
	"fmt"
	"math"
	"sort"
)

// BrierDecomposition holds the Brier score of a set of probabilistic
// predictions together with its Murphy (1973) vector partition. The paper
// reports the components under the names variance (Murphy's uncertainty),
// resolution, unreliability (Murphy's reliability), the derived
// unspecificity = variance - resolution, and the overconfident share of the
// unreliability.
type BrierDecomposition struct {
	// Brier is the mean squared difference between predicted probability
	// and the binary outcome.
	Brier float64
	// Variance is the outcome base-rate term e(1-e); it depends only on
	// the predictand, not on the estimator.
	Variance float64
	// Resolution measures how far the per-group observed rates deviate
	// from the base rate (higher is better, bounded by Variance).
	Resolution float64
	// Unspecificity is Variance - Resolution.
	Unspecificity float64
	// Unreliability measures miscalibration of the predicted
	// probabilities against the per-group observed rates (lower is
	// better).
	Unreliability float64
	// Overconfidence is the portion of Unreliability contributed by
	// groups whose predicted probability underestimates the observed
	// event rate.
	Overconfidence float64
	// Underconfidence is Unreliability - Overconfidence.
	Underconfidence float64
	// BaseRate is the overall observed event rate.
	BaseRate float64
	// Groups is the number of distinct forecast groups used.
	Groups int
	// N is the number of (forecast, outcome) pairs scored.
	N int
}

// Identity returns the residual of the Murphy identity
// Brier - (Variance - Resolution + Unreliability); it is zero up to floating
// point error when the decomposition grouped by exact forecast values.
func (d BrierDecomposition) Identity() float64 {
	return d.Brier - (d.Variance - d.Resolution + d.Unreliability)
}

// BrierScore returns the plain Brier score of probabilistic forecasts
// against binary outcomes (true = event occurred).
func BrierScore(forecast []float64, outcome []bool) (float64, error) {
	if len(forecast) != len(outcome) {
		return math.NaN(), fmt.Errorf("stats: forecast/outcome length mismatch %d vs %d: %w",
			len(forecast), len(outcome), ErrDomain)
	}
	if len(forecast) == 0 {
		return math.NaN(), fmt.Errorf("stats: empty sample: %w", ErrDomain)
	}
	var sum float64
	for i, f := range forecast {
		o := 0.0
		if outcome[i] {
			o = 1
		}
		d := f - o
		sum += d * d
	}
	return sum / float64(len(forecast)), nil
}

// Decompose computes the Brier score and its Murphy partition, grouping
// samples that share the same forecast value. Forecasts produced by a
// calibrated decision tree take one value per leaf, so exact grouping is the
// natural partition and makes the identity bs = var - res + unrel exact.
func Decompose(forecast []float64, outcome []bool) (BrierDecomposition, error) {
	if len(forecast) != len(outcome) {
		return BrierDecomposition{}, fmt.Errorf("stats: forecast/outcome length mismatch %d vs %d: %w",
			len(forecast), len(outcome), ErrDomain)
	}
	n := len(forecast)
	if n == 0 {
		return BrierDecomposition{}, fmt.Errorf("stats: empty sample: %w", ErrDomain)
	}
	type group struct {
		count  int
		events int
	}
	groups := make(map[float64]*group)
	events := 0
	for i, f := range forecast {
		if f < 0 || f > 1 || math.IsNaN(f) {
			return BrierDecomposition{}, fmt.Errorf("stats: forecast %g outside [0,1]: %w", f, ErrDomain)
		}
		g := groups[f]
		if g == nil {
			g = &group{}
			groups[f] = g
		}
		g.count++
		if outcome[i] {
			g.events++
			events++
		}
	}
	bs, err := BrierScore(forecast, outcome)
	if err != nil {
		return BrierDecomposition{}, err
	}
	nf := float64(n)
	base := float64(events) / nf
	d := BrierDecomposition{
		Brier:    bs,
		Variance: base * (1 - base),
		BaseRate: base,
		Groups:   len(groups),
		N:        n,
	}
	for f, g := range groups {
		w := float64(g.count) / nf
		rate := float64(g.events) / float64(g.count)
		d.Resolution += w * (rate - base) * (rate - base)
		rel := w * (f - rate) * (f - rate)
		d.Unreliability += rel
		if f < rate {
			d.Overconfidence += rel
		}
	}
	d.Unspecificity = d.Variance - d.Resolution
	d.Underconfidence = d.Unreliability - d.Overconfidence
	return d, nil
}

// DecomposeBinned computes the Murphy partition after grouping samples into
// equal-count quantile bins of the forecast value, for estimators whose
// forecasts are (nearly) continuous — e.g. the naïve product fusion, where
// exact-value grouping would put every sample in its own group and make the
// reliability term meaningless. Each bin is represented by its mean
// forecast; the identity bs = var - res + unrel then holds only up to the
// within-bin forecast variance, which is the standard trade-off of binned
// decompositions.
func DecomposeBinned(forecast []float64, outcome []bool, bins int) (BrierDecomposition, error) {
	if len(forecast) != len(outcome) {
		return BrierDecomposition{}, fmt.Errorf("stats: forecast/outcome length mismatch %d vs %d: %w",
			len(forecast), len(outcome), ErrDomain)
	}
	n := len(forecast)
	if n == 0 {
		return BrierDecomposition{}, fmt.Errorf("stats: empty sample: %w", ErrDomain)
	}
	if bins <= 0 {
		return BrierDecomposition{}, fmt.Errorf("stats: bins must be positive, got %d: %w", bins, ErrDomain)
	}
	if bins > n {
		bins = n
	}
	for _, f := range forecast {
		if f < 0 || f > 1 || math.IsNaN(f) {
			return BrierDecomposition{}, fmt.Errorf("stats: forecast %g outside [0,1]: %w", f, ErrDomain)
		}
	}
	bs, err := BrierScore(forecast, outcome)
	if err != nil {
		return BrierDecomposition{}, err
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return forecast[idx[a]] < forecast[idx[b]] })
	events := 0
	for _, o := range outcome {
		if o {
			events++
		}
	}
	nf := float64(n)
	base := float64(events) / nf
	d := BrierDecomposition{
		Brier:    bs,
		Variance: base * (1 - base),
		BaseRate: base,
		N:        n,
	}
	for b := 0; b < bins; b++ {
		lo := b * n / bins
		hi := (b + 1) * n / bins
		if hi == lo {
			continue
		}
		var sumF float64
		ev := 0
		for _, i := range idx[lo:hi] {
			sumF += forecast[i]
			if outcome[i] {
				ev++
			}
		}
		cnt := hi - lo
		w := float64(cnt) / nf
		meanF := sumF / float64(cnt)
		rate := float64(ev) / float64(cnt)
		d.Resolution += w * (rate - base) * (rate - base)
		rel := w * (meanF - rate) * (meanF - rate)
		d.Unreliability += rel
		if meanF < rate {
			d.Overconfidence += rel
		}
		d.Groups++
	}
	d.Unspecificity = d.Variance - d.Resolution
	d.Underconfidence = d.Unreliability - d.Overconfidence
	return d, nil
}

// CalibrationPoint is one bin of a reliability diagram: the mean predicted
// certainty of the bin against the observed rate of correct outcomes.
type CalibrationPoint struct {
	// MeanPredicted is the mean predicted certainty (1 - uncertainty) of
	// the samples in the bin.
	MeanPredicted float64
	// Observed is the fraction of samples in the bin whose outcome was
	// correct.
	Observed float64
	// Count is the number of samples in the bin.
	Count int
}

// CalibrationCurve bins samples into `bins` equal-count quantile bins by
// predicted certainty and reports mean predicted certainty vs observed
// correctness per bin, reproducing the paper's Fig. 6 plot. correct[i] must
// be true when the i-th outcome was correct (i.e. the certainty "paid off").
func CalibrationCurve(certainty []float64, correct []bool, bins int) ([]CalibrationPoint, error) {
	if len(certainty) != len(correct) {
		return nil, fmt.Errorf("stats: certainty/correct length mismatch %d vs %d: %w",
			len(certainty), len(correct), ErrDomain)
	}
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d: %w", bins, ErrDomain)
	}
	n := len(certainty)
	if n < bins {
		return nil, fmt.Errorf("stats: %d samples cannot fill %d bins: %w", n, bins, ErrDomain)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return certainty[idx[a]] < certainty[idx[b]] })
	points := make([]CalibrationPoint, 0, bins)
	for b := 0; b < bins; b++ {
		lo := b * n / bins
		hi := (b + 1) * n / bins
		if hi == lo {
			continue
		}
		var sum float64
		hits := 0
		for _, i := range idx[lo:hi] {
			sum += certainty[i]
			if correct[i] {
				hits++
			}
		}
		cnt := hi - lo
		points = append(points, CalibrationPoint{
			MeanPredicted: sum / float64(cnt),
			Observed:      float64(hits) / float64(cnt),
			Count:         cnt,
		})
	}
	return points, nil
}
