package store

import (
	"math"
	"testing"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/monitor"
)

// sampleSeriesState covers every field class: negative track (series
// space), eviction (Total > len(Records)), per-record quality vectors,
// outcome stats with non-trivial certainty sums, a majority tally with a
// recency clock, and a provenance ring with taken and untaken slots.
func sampleSeriesState() core.SeriesState {
	return core.SeriesState{
		Track: -3,
		Total: 12,
		Records: []core.Record{
			{Outcome: 1, Uncertainty: 0.25, Quality: []float64{0.1, 0.9, 3.5}},
			{Outcome: -2, Uncertainty: math.Nextafter(0, 1), Quality: []float64{0, 0, 0}},
			{Outcome: 0, Uncertainty: 1},
		},
		Stats: []core.OutcomeStat{
			{Outcome: -2, Count: 1, Certainty: math.Nextafter(1, 0)},
			{Outcome: 0, Count: 1, Certainty: 0},
			{Outcome: 1, Count: 1, Certainty: 0.75},
		},
		HasTally: true,
		Tally: fusion.TallyState{
			Clock: 12,
			Votes: []fusion.TallyVote{
				{Outcome: -2, Count: 1, Last: 11},
				{Outcome: 1, Count: 2, Last: 12},
			},
		},
		Ring: []core.ProvEntry{
			{Step: 11, Uncertainty: 0.5, ModelVersion: 1, Fused: 1, Leaf: 3, Taken: true},
			{Step: 12, Uncertainty: 0.125, ModelVersion: 2, Fused: -2, Leaf: -1},
		},
	}
}

func seriesStatesEqual(a, b *core.SeriesState) bool {
	if a.Track != b.Track || a.Total != b.Total || a.HasTally != b.HasTally {
		return false
	}
	if len(a.Records) != len(b.Records) || len(a.Stats) != len(b.Stats) || len(a.Ring) != len(b.Ring) {
		return false
	}
	for i := range a.Records {
		ra, rb := &a.Records[i], &b.Records[i]
		if ra.Outcome != rb.Outcome ||
			math.Float64bits(ra.Uncertainty) != math.Float64bits(rb.Uncertainty) ||
			len(ra.Quality) != len(rb.Quality) {
			return false
		}
		for j := range ra.Quality {
			if math.Float64bits(ra.Quality[j]) != math.Float64bits(rb.Quality[j]) {
				return false
			}
		}
	}
	for i := range a.Stats {
		if a.Stats[i].Outcome != b.Stats[i].Outcome || a.Stats[i].Count != b.Stats[i].Count ||
			math.Float64bits(a.Stats[i].Certainty) != math.Float64bits(b.Stats[i].Certainty) {
			return false
		}
	}
	if a.Tally.Clock != b.Tally.Clock || len(a.Tally.Votes) != len(b.Tally.Votes) {
		return false
	}
	for i := range a.Tally.Votes {
		if a.Tally.Votes[i] != b.Tally.Votes[i] {
			return false
		}
	}
	for i := range a.Ring {
		if a.Ring[i] != b.Ring[i] {
			return false
		}
	}
	return true
}

func TestSeriesRecordRoundtrip(t *testing.T) {
	want := sampleSeriesState()
	rec := AppendSeriesRecord(nil, &want)
	var got core.SeriesState
	if err := DecodeSeriesRecord(rec, &got); err != nil {
		t.Fatal(err)
	}
	if !seriesStatesEqual(&want, &got) {
		t.Fatalf("roundtrip diverged:\nwant %+v\ngot  %+v", want, got)
	}
	// Decoding into a dirty reused state must fully overwrite it.
	if err := DecodeSeriesRecord(rec, &got); err != nil {
		t.Fatal(err)
	}
	if !seriesStatesEqual(&want, &got) {
		t.Fatalf("reused-state roundtrip diverged")
	}
	// An empty series (fresh open, no steps) roundtrips too.
	empty := core.SeriesState{Track: 7}
	rec2 := AppendSeriesRecord(nil, &empty)
	var got2 core.SeriesState
	if err := DecodeSeriesRecord(rec2, &got2); err != nil {
		t.Fatal(err)
	}
	if !seriesStatesEqual(&empty, &got2) {
		t.Fatalf("empty-series roundtrip diverged: %+v", got2)
	}
}

func TestSeriesRecordRejectsTruncation(t *testing.T) {
	st := sampleSeriesState()
	rec := AppendSeriesRecord(nil, &st)
	var got core.SeriesState
	for cut := 0; cut < len(rec); cut++ {
		if err := DecodeSeriesRecord(rec[:cut], &got); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", cut, len(rec))
		}
	}
	// Trailing garbage is rejected, not ignored.
	if err := DecodeSeriesRecord(append(append([]byte(nil), rec...), 0xff), &got); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

func TestCloseRecordRoundtrip(t *testing.T) {
	for _, track := range []int{0, 1, -5, 1 << 40} {
		rec := AppendCloseRecord(nil, track)
		got, err := DecodeCloseRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		if got != track {
			t.Fatalf("close roundtrip: got %d, want %d", got, track)
		}
	}
	if _, err := DecodeCloseRecord([]byte{kindClose}); err == nil {
		t.Fatal("empty close payload decoded")
	}
}

func TestMetaRecordRoundtrip(t *testing.T) {
	want := Meta{SeriesCounter: 42, ModelVersion: 7, ModelJSON: []byte(`{"leaves":[]}`)}
	rec := AppendMetaRecord(nil, &want)
	var got Meta
	if err := DecodeMetaRecord(rec, &got); err != nil {
		t.Fatal(err)
	}
	if got.SeriesCounter != want.SeriesCounter || got.ModelVersion != want.ModelVersion ||
		string(got.ModelJSON) != string(want.ModelJSON) {
		t.Fatalf("meta roundtrip: got %+v, want %+v", got, want)
	}
	// Version-1 meta has no model payload.
	v1 := Meta{SeriesCounter: 3, ModelVersion: 1}
	rec = AppendMetaRecord(nil, &v1)
	if err := DecodeMetaRecord(rec, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.ModelJSON) != 0 {
		t.Fatalf("v1 meta decoded model payload %q", got.ModelJSON)
	}
}

func sampleMonitorRecord() MonitorRecord {
	r := MonitorRecord{
		HasMonitor: true,
		Monitor: monitor.MonitorState{
			Shards: 2, Window: 4, Bins: 2,
			ShardStates: []monitor.ShardState{
				{
					N: 3, Correct: 2, BrierSum: 0.375,
					Bins:   []monitor.BinState{{Count: 2, Errors: 1, USum: 0.5}, {Count: 1, USum: 0.9}},
					Window: []float64{0.01, 0.25, 0.09},
					WinSum: 0.35,
				},
				{
					Bins: []monitor.BinState{{}, {}},
				},
			},
			Drift: monitor.DriftState{N: 3, Mean: 0.11, MT: -0.5, MinMT: -1.5, Alarms: 1, Active: true},
		},
		HasLeaves: true,
		Leaves: monitor.LeafState{
			Leaves:       []monitor.LeafCounts{{Count: 5, Events: 2}, {}, {Count: 1, Events: 1}},
			Unattributed: monitor.LeafCounts{Count: 9, Events: 4},
		},
	}
	r.PoolStats.UncertaintyFP = 12345
	r.PoolStats.Outcomes[0] = 3
	r.PoolStats.Outcomes[len(r.PoolStats.Outcomes)-1] = 8
	return r
}

func monitorRecordsEqual(a, b *MonitorRecord) bool {
	if a.HasMonitor != b.HasMonitor || a.HasLeaves != b.HasLeaves || a.PoolStats != b.PoolStats {
		return false
	}
	am, bm := &a.Monitor, &b.Monitor
	if am.Shards != bm.Shards || am.Window != bm.Window || am.Bins != bm.Bins ||
		am.Drift != bm.Drift || len(am.ShardStates) != len(bm.ShardStates) {
		return false
	}
	for i := range am.ShardStates {
		sa, sb := &am.ShardStates[i], &bm.ShardStates[i]
		if sa.N != sb.N || sa.Correct != sb.Correct ||
			math.Float64bits(sa.BrierSum) != math.Float64bits(sb.BrierSum) ||
			math.Float64bits(sa.WinSum) != math.Float64bits(sb.WinSum) ||
			len(sa.Bins) != len(sb.Bins) || len(sa.Window) != len(sb.Window) {
			return false
		}
		for j := range sa.Bins {
			if sa.Bins[j] != sb.Bins[j] {
				return false
			}
		}
		for j := range sa.Window {
			if math.Float64bits(sa.Window[j]) != math.Float64bits(sb.Window[j]) {
				return false
			}
		}
	}
	if len(a.Leaves.Leaves) != len(b.Leaves.Leaves) || a.Leaves.Unattributed != b.Leaves.Unattributed {
		return false
	}
	for i := range a.Leaves.Leaves {
		if a.Leaves.Leaves[i] != b.Leaves.Leaves[i] {
			return false
		}
	}
	return true
}

func TestMonitorRecordRoundtrip(t *testing.T) {
	want := sampleMonitorRecord()
	rec := AppendMonitorRecord(nil, &want)
	var got MonitorRecord
	if err := DecodeMonitorRecord(rec, &got); err != nil {
		t.Fatal(err)
	}
	if !monitorRecordsEqual(&want, &got) {
		t.Fatalf("monitor roundtrip diverged:\nwant %+v\ngot  %+v", want, got)
	}
	// Decoding a record without monitor/leaf payloads into the reused (now
	// populated) struct must clear it.
	bare := MonitorRecord{}
	bare.PoolStats.UncertaintyFP = 1
	rec = AppendMonitorRecord(nil, &bare)
	if err := DecodeMonitorRecord(rec, &got); err != nil {
		t.Fatal(err)
	}
	if !monitorRecordsEqual(&bare, &got) {
		t.Fatalf("bare monitor roundtrip diverged: %+v", got)
	}
}

func TestMonitorRecordRejectsBadBucket(t *testing.T) {
	rec := []byte{kindMonitor, 0, 0}
	rec = appendUvarint(rec, 0) // UncertaintyFP
	rec = appendUvarint(rec, 1) // one pair
	rec = appendUvarint(rec, 200)
	rec = appendUvarint(rec, 1)
	var got MonitorRecord
	if err := DecodeMonitorRecord(rec, &got); err == nil {
		t.Fatal("out-of-range outcome bucket decoded")
	}
}

func TestBlobWalk(t *testing.T) {
	st := sampleSeriesState()
	var blob []byte
	blob = AppendBlobRecord(blob, AppendMetaRecord(nil, &Meta{SeriesCounter: 1, ModelVersion: 1}))
	blob = AppendBlobRecord(blob, AppendSeriesRecord(nil, &st))
	blob = AppendBlobRecord(blob, AppendCloseRecord(nil, 4))
	var kinds []byte
	err := WalkBlob(blob, func(rec []byte) error {
		k, err := RecordKind(rec)
		if err != nil {
			return err
		}
		kinds = append(kinds, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(kinds) != string([]byte{kindMeta, kindSeries, kindClose}) {
		t.Fatalf("walked kinds %v", kinds)
	}
	// A truncated blob fails instead of yielding a short record.
	if err := WalkBlob(blob[:len(blob)-1], func([]byte) error { return nil }); err == nil {
		t.Fatal("truncated blob walked without error")
	}
}
