// faultstore.go is the fault-injection Store — the errfs pattern applied to
// the durability layer. A FaultStore wraps any Store and injects failures on
// a per-operation schedule (skip the next M calls, then fail the next N),
// adds artificial latency, and can model torn appends; everything is
// runtime-reconfigurable under one mutex, so a chaos harness can break and
// heal a live store while the checkpointer is running against it.
//
// The torn-append mode deserves a note: the Store contract requires a failed
// Append to leave the log as if the call never happened (FileStore repairs a
// partial frame write by truncating back to the last known-good size), so at
// this interface a torn write is observationally "an error with no durable
// side effect". TornAppend models exactly that — it counts the bytes that
// would have hit the platter before the tear and returns an error without
// touching the inner store — while the byte-level torn-tail handling is
// exercised directly against FileStore's recovery scanner (and fuzzed by
// FuzzWALRecover).
package store

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Op names one Store operation for fault scheduling.
type Op uint8

const (
	OpAppend Op = iota
	OpCheckpoint
	OpSync
	numOps
)

// NumOps reports the number of schedulable operations — the length of the
// FaultStats arrays, for callers iterating them.
func NumOps() Op { return numOps }

// String implements fmt.Stringer for log lines and test failure messages.
func (o Op) String() string {
	switch o {
	case OpAppend:
		return "append"
	case OpCheckpoint:
		return "checkpoint"
	case OpSync:
		return "sync"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ErrInjected is the default error a scheduled fault returns; schedules may
// carry their own error instead (e.g. a wrapped syscall error) to exercise
// specific classification paths.
var ErrInjected = errors.New("store: injected fault")

// faultSchedule is one operation's pending fault plan.
type faultSchedule struct {
	// after counts successful calls to let through before failing; count is
	// how many subsequent calls fail (negative = until cleared).
	after int
	count int
	err   error
	torn  bool
}

// FaultStats is a point-in-time read of a FaultStore's counters.
type FaultStats struct {
	// Ops counts calls per operation (including failed ones); Faults counts
	// injected failures per operation.
	Ops    [numOps]uint64
	Faults [numOps]uint64
	// TornBytes is the total payload prefix length "lost to the platter"
	// across torn appends — what a crash-consistency audit would reconcile.
	TornBytes uint64
}

// FaultStore wraps a Store with a runtime-scriptable fault plan. It is safe
// for concurrent use and adds one mutex acquisition per operation — fine for
// the write-behind path it wraps, which serialises through the checkpointer
// anyway.
type FaultStore struct {
	inner Store

	mu      sync.Mutex
	sched   [numOps]faultSchedule
	latency [numOps]time.Duration
	stats   FaultStats

	// sleep is the latency injector, swappable so unit tests can observe
	// injected delays without paying them.
	sleep func(time.Duration)
}

// NewFaultStore wraps inner with an initially healthy fault plan. The real
// time.Sleep is the default latency injector, swapped out by tests.
//
//tauw:seamimpl
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{inner: inner, sleep: time.Sleep}
}

// FailOps schedules op to succeed `after` more times and then fail `count`
// times with err (nil err means ErrInjected; count < 0 fails until Clear or
// a new schedule). Replaces any previous schedule for the op.
func (f *FaultStore) FailOps(op Op, after, count int, err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	f.sched[op] = faultSchedule{after: after, count: count, err: err}
	f.mu.Unlock()
}

// TornAppend schedules the next `count` Appends (after `after` successes) to
// tear: the failure is reported with ErrInjected wrapped as a torn write,
// and the would-be-partial payload bytes are tallied in FaultStats.TornBytes.
// Per the Store contract the inner log is left untouched.
func (f *FaultStore) TornAppend(after, count int) {
	f.mu.Lock()
	f.sched[OpAppend] = faultSchedule{after: after, count: count, err: ErrInjected, torn: true}
	f.mu.Unlock()
}

// SetLatency injects a fixed delay before every call of op (0 clears it).
func (f *FaultStore) SetLatency(op Op, d time.Duration) {
	f.mu.Lock()
	f.latency[op] = d
	f.mu.Unlock()
}

// Clear heals the store: all schedules and latencies are dropped; counters
// are kept.
func (f *FaultStore) Clear() {
	f.mu.Lock()
	for i := range f.sched {
		f.sched[i] = faultSchedule{}
	}
	for i := range f.latency {
		f.latency[i] = 0
	}
	f.mu.Unlock()
}

// Stats returns a snapshot of the operation and fault counters.
func (f *FaultStore) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Inner exposes the wrapped Store (tests recover through it directly to
// bypass the fault plan).
func (f *FaultStore) Inner() Store { return f.inner }

// gate consumes one call of op against the schedule: it returns the
// scheduled error (and whether this failure is a torn append) or nil when
// the call should pass through. Latency is sampled under the lock but slept
// outside it, so a slow store never blocks rescheduling.
func (f *FaultStore) gate(op Op) (err error, torn bool) {
	f.mu.Lock()
	f.stats.Ops[op]++
	delay := f.latency[op]
	s := &f.sched[op]
	switch {
	case s.count == 0:
		// healthy (no schedule, or an exhausted one)
	case s.after > 0:
		s.after--
	default:
		err, torn = s.err, s.torn
		if s.count > 0 {
			s.count--
		}
		f.stats.Faults[op]++
	}
	sleep := f.sleep
	f.mu.Unlock()
	if delay > 0 {
		sleep(delay)
	}
	return err, torn
}

// Append implements Store.
func (f *FaultStore) Append(payload []byte) error {
	if err, torn := f.gate(OpAppend); err != nil {
		if torn {
			f.mu.Lock()
			f.stats.TornBytes += uint64(len(payload) / 2)
			f.mu.Unlock()
			return fmt.Errorf("store: torn write after %d bytes: %w", len(payload)/2, err)
		}
		return err
	}
	return f.inner.Append(payload)
}

// Checkpoint implements Store.
func (f *FaultStore) Checkpoint(blob []byte) error {
	if err, _ := f.gate(OpCheckpoint); err != nil {
		return err
	}
	return f.inner.Checkpoint(blob)
}

// Sync implements Store.
func (f *FaultStore) Sync() error {
	if err, _ := f.gate(OpSync); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Recover implements Store (never faulted: recovery runs before the fault
// window a chaos scenario scripts, and a recovery-time fault is a corrupt
// store, which FileStore models itself).
func (f *FaultStore) Recover(checkpoint func([]byte) error, record func([]byte) error) error {
	return f.inner.Recover(checkpoint, record)
}

// LogSize implements Store.
func (f *FaultStore) LogSize() int64 { return f.inner.LogSize() }

// Close implements Store.
func (f *FaultStore) Close() error { return f.inner.Close() }
