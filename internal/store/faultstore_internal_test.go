// faultstore_internal_test.go unit-tests the fault injector itself and the
// checkpointer's retry/jitter primitives — in-package, so the tests can swap
// the sleep seams and drive the machinery without real time passing.
package store

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFaultStoreSchedule(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	f.FailOps(OpAppend, 2, 2, nil)
	for i := 0; i < 2; i++ {
		if err := f.Append([]byte("ok")); err != nil {
			t.Fatalf("append %d before the window: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := f.Append([]byte("boom")); !errors.Is(err, ErrInjected) {
			t.Fatalf("append %d inside the window: %v, want ErrInjected", i, err)
		}
	}
	if err := f.Append([]byte("ok")); err != nil {
		t.Fatalf("append after the window: %v", err)
	}
	st := f.Stats()
	if st.Ops[OpAppend] != 5 || st.Faults[OpAppend] != 2 {
		t.Fatalf("stats = %d ops, %d faults; want 5, 2", st.Ops[OpAppend], st.Faults[OpAppend])
	}
}

func TestFaultStoreFailsUntilCleared(t *testing.T) {
	f := NewFaultStore(NewMemStore())
	f.FailOps(OpSync, 0, -1, nil)
	for i := 0; i < 4; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: %v, want ErrInjected", i, err)
		}
	}
	f.Clear()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Clear: %v", err)
	}
	// Clear heals the schedule but keeps the evidence.
	if st := f.Stats(); st.Faults[OpSync] != 4 || st.Ops[OpSync] != 5 {
		t.Fatalf("stats after Clear = %d ops, %d faults; want 5, 4", st.Ops[OpSync], st.Faults[OpSync])
	}
}

func TestFaultStoreCustomError(t *testing.T) {
	diskFull := errors.New("disk full")
	f := NewFaultStore(NewMemStore())
	f.FailOps(OpCheckpoint, 0, 1, diskFull)
	if err := f.Checkpoint([]byte("blob")); !errors.Is(err, diskFull) {
		t.Fatalf("checkpoint error %v, want the scheduled one", err)
	}
	if err := f.Checkpoint([]byte("blob")); err != nil {
		t.Fatalf("checkpoint after the schedule drained: %v", err)
	}
}

func TestFaultStoreTornAppend(t *testing.T) {
	inner := NewMemStore()
	f := NewFaultStore(inner)
	f.TornAppend(0, 1)
	err := f.Append(make([]byte, 8))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append error %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn append error %q does not name the tear", err)
	}
	// Per the Store contract a failed Append leaves no partial frame behind.
	if n := inner.LogSize(); n != 0 {
		t.Fatalf("inner log grew to %d bytes through a torn append", n)
	}
	if tb := f.Stats().TornBytes; tb != 4 {
		t.Fatalf("TornBytes = %d, want 4 (half the payload)", tb)
	}
	if err := f.Append(make([]byte, 8)); err != nil {
		t.Fatalf("append after the tear: %v", err)
	}
	if inner.LogSize() == 0 {
		t.Fatal("healed append never reached the inner store")
	}
}

func TestFaultStoreLatency(t *testing.T) {
	var slept []time.Duration
	f := NewFaultStore(NewMemStore())
	f.sleep = func(d time.Duration) { slept = append(slept, d) }
	f.SetLatency(OpSync, 5*time.Millisecond)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 5*time.Millisecond {
		t.Fatalf("slept %v, want exactly one 5ms delay", slept)
	}
	f.SetLatency(OpSync, 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("cleared latency still slept: %v", slept)
	}
}

func TestWithRetryEventualSuccess(t *testing.T) {
	var slept []time.Duration
	c := &Checkpointer{
		cfg:   CheckpointConfig{RetryAttempts: 3, RetryBase: 8 * time.Millisecond},
		sleep: func(d time.Duration) { slept = append(slept, d) },
		rng:   1,
	}
	calls := 0
	err := c.withRetry(func() error {
		calls++
		if calls < 3 {
			return ErrInjected
		}
		return nil
	})
	if err != nil {
		t.Fatalf("withRetry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	if got := c.storeErrors.Load(); got != 2 {
		t.Fatalf("storeErrors = %d, want 2 (every failed attempt counts)", got)
	}
	// Two backoffs, exponentially doubled with ±50% jitter.
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, base := range []time.Duration{8 * time.Millisecond, 16 * time.Millisecond} {
		if slept[i] < base/2 || slept[i] >= base/2+base {
			t.Fatalf("backoff %d = %v outside jitter range [%v, %v)", i, slept[i], base/2, base/2+base)
		}
	}
}

func TestWithRetryExhausted(t *testing.T) {
	diskGone := errors.New("device vanished")
	c := &Checkpointer{
		cfg:   CheckpointConfig{RetryAttempts: 2, RetryBase: time.Microsecond},
		sleep: func(time.Duration) {},
		rng:   7,
	}
	err := c.withRetry(func() error { return diskGone })
	if !errors.Is(err, diskGone) {
		t.Fatalf("exhausted withRetry returned %v, want the last error", err)
	}
	if got := c.storeErrors.Load(); got != 2 {
		t.Fatalf("storeErrors = %d, want 2", got)
	}
}

func TestJitterRange(t *testing.T) {
	c := &Checkpointer{rng: 99}
	const d = 10 * time.Millisecond
	for i := 0; i < 1000; i++ {
		if j := c.jitter(d); j < d/2 || j >= d/2+d {
			t.Fatalf("draw %d: jitter(%v) = %v outside [%v, %v)", i, d, j, d/2, d/2+d)
		}
	}
	if j := c.jitter(0); j != 0 {
		t.Fatalf("jitter(0) = %v, want 0", j)
	}
}
