// filestore.go is the durable Store: a CRC-framed write-ahead log plus an
// atomically replaced checkpoint file in one state directory.
//
// Layout:
//
//	<dir>/checkpoint   header {magic, version, LSN, length, CRC32-C} + blob
//	<dir>/wal          frames {length, LSN, CRC32-C(LSN‖payload), payload}
//
// Every record carries a log sequence number. A checkpoint consumes an LSN
// and is written as checkpoint.tmp → fsync → rename → fsync(dir), so a
// crash anywhere leaves either the old checkpoint or the new one, never a
// torn mixture; the WAL is truncated only after the rename, and records
// with LSN below the checkpoint's are skipped at recovery — which makes
// the crash window between rename and truncate safe too. Recovery scans
// the WAL until the first short or corrupt frame and truncates there: a
// torn tail (crash mid-write) silently loses only the unsynced suffix,
// exactly the contract Sync advertises.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	checkpointName = "checkpoint"
	walName        = "wal"

	// formatMagic opens the checkpoint header ("TAUW" as a little-endian
	// u32); formatVersion is bumped when the record encoding changes
	// incompatibly.
	formatMagic   = uint32('T') | uint32('A')<<8 | uint32('U')<<16 | uint32('W')<<24
	formatVersion = 1

	// checkpointHeaderSize is magic u32 + version u8 + lsn u64 + len u32 +
	// crc u32.
	checkpointHeaderSize = 4 + 1 + 8 + 4 + 4
	// frameHeaderSize is len u32 + lsn u64 + crc u32.
	frameHeaderSize = 4 + 8 + 4

	// maxFramePayload bounds one WAL frame; larger state belongs in a
	// checkpoint. Also the recovery scanner's plausibility cap, so a
	// corrupt length field cannot demand a giant read.
	maxFramePayload = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptCheckpoint is returned by Recover when the checkpoint file
// exists but fails validation — durable state is present and cannot be
// trusted, so the layer above must decide (fail startup, or move the
// directory aside and start empty) rather than silently losing it.
var ErrCorruptCheckpoint = errors.New("store: corrupt checkpoint")

// FileStore is the file-backed Store.
type FileStore struct {
	dir string

	mu      sync.Mutex
	closed  bool
	wal     *os.File
	walSize int64
	nextLSN uint64
	cpLSN   uint64
	scratch []byte
}

// OpenFileStore opens (creating if needed) a state directory. The existing
// checkpoint header and WAL are scanned so LSNs continue monotonically; a
// torn WAL tail is truncated here as well as in Recover, so appends after
// a partial recovery never interleave with garbage.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: state dir: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	s := &FileStore{dir: dir, wal: wal}
	if _, _, err := s.readCheckpoint(nil); err != nil && !errors.Is(err, os.ErrNotExist) {
		// Corruption is surfaced at Recover, where the caller handles it;
		// Open only needs the LSN floor, and a corrupt header contributes
		// none.
		if !errors.Is(err, ErrCorruptCheckpoint) {
			wal.Close()
			return nil, err
		}
	}
	lastLSN, validSize, err := s.scanWAL(nil)
	if err != nil {
		wal.Close()
		return nil, err
	}
	if err := s.truncateWAL(validSize); err != nil {
		wal.Close()
		return nil, err
	}
	s.nextLSN = max(s.cpLSN, lastLSN) + 1
	return s, nil
}

// readCheckpoint validates the checkpoint file and returns its blob
// (appended to dst) and LSN; it also refreshes s.cpLSN on success.
func (s *FileStore) readCheckpoint(dst []byte) ([]byte, uint64, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, checkpointName))
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < checkpointHeaderSize {
		return nil, 0, fmt.Errorf("%w: %d-byte file is shorter than the header", ErrCorruptCheckpoint, len(raw))
	}
	if got := binary.LittleEndian.Uint32(raw); got != formatMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %#x", ErrCorruptCheckpoint, got)
	}
	if got := raw[4]; got != formatVersion {
		return nil, 0, fmt.Errorf("%w: format version %d, this build reads %d", ErrCorruptCheckpoint, got, formatVersion)
	}
	lsn := binary.LittleEndian.Uint64(raw[5:])
	blobLen := binary.LittleEndian.Uint32(raw[13:])
	crc := binary.LittleEndian.Uint32(raw[17:])
	blob := raw[checkpointHeaderSize:]
	if uint32(len(blob)) != blobLen {
		return nil, 0, fmt.Errorf("%w: header claims %d blob bytes, file holds %d", ErrCorruptCheckpoint, blobLen, len(blob))
	}
	if got := crc32.Checksum(blob, castagnoli); got != crc {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrCorruptCheckpoint)
	}
	s.cpLSN = lsn
	return append(dst, blob...), lsn, nil
}

// scanWAL walks the frames from the start, optionally visiting each
// (payload views are only valid during the callback), and returns the last
// valid frame's LSN and the byte offset where validity ends.
func (s *FileStore) scanWAL(visit func(lsn uint64, payload []byte) error) (lastLSN uint64, validSize int64, err error) {
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("store: wal seek: %w", err)
	}
	r := io.Reader(s.wal)
	var header [frameHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			// A short header is a torn tail, not an error.
			return lastLSN, validSize, nil
		}
		n := binary.LittleEndian.Uint32(header[0:])
		lsn := binary.LittleEndian.Uint64(header[4:])
		crc := binary.LittleEndian.Uint32(header[12:])
		if n > maxFramePayload {
			return lastLSN, validSize, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return lastLSN, validSize, nil
		}
		if crc32.Update(crc32.Checksum(header[4:12], castagnoli), castagnoli, payload) != crc {
			return lastLSN, validSize, nil
		}
		if visit != nil {
			if err := visit(lsn, payload); err != nil {
				return lastLSN, validSize, err
			}
		}
		lastLSN = lsn
		validSize += frameHeaderSize + int64(n)
	}
}

// truncateWAL cuts the log to size and positions the writer at its end.
func (s *FileStore) truncateWAL(size int64) error {
	if err := s.wal.Truncate(size); err != nil {
		return fmt.Errorf("store: wal truncate: %w", err)
	}
	if _, err := s.wal.Seek(size, io.SeekStart); err != nil {
		return fmt.Errorf("store: wal seek: %w", err)
	}
	s.walSize = size
	return nil
}

// Append implements Store: one CRC-framed record, durable at the next
// Sync.
func (s *FileStore) Append(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(payload) > maxFramePayload {
		return fmt.Errorf("store: %d-byte record exceeds the %d-byte frame cap", len(payload), maxFramePayload)
	}
	lsn := s.nextLSN
	s.nextLSN++
	buf := s.scratch[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	crc := crc32.Update(crc32.Checksum(buf[4:12], castagnoli), castagnoli, payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	buf = append(buf, payload...)
	s.scratch = buf
	if _, err := s.wal.Write(buf); err != nil {
		// A partial frame may have reached the file before the write failed.
		// Repair by truncating back to the last known-good size: the recovery
		// scanner stops at the first torn frame and discards everything
		// behind it, so leaving the fragment in place would make a later
		// successful append (a retry, or just the next flush) silently
		// unrecoverable. Both calls are best-effort — if they fail too, the
		// next write lands at the known-good offset anyway (the seek target),
		// overwriting the fragment.
		s.wal.Truncate(s.walSize)           //nolint:errcheck // best-effort repair
		s.wal.Seek(s.walSize, io.SeekStart) //nolint:errcheck
		s.nextLSN--                         // the frame never happened
		return fmt.Errorf("store: wal append: %w", err)
	}
	s.walSize += int64(len(buf))
	return nil
}

// Sync implements Store.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	return nil
}

// Checkpoint implements Store: tmp + fsync + rename + fsync(dir), then WAL
// truncation.
func (s *FileStore) Checkpoint(blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	lsn := s.nextLSN
	s.nextLSN++

	header := make([]byte, 0, checkpointHeaderSize)
	header = binary.LittleEndian.AppendUint32(header, formatMagic)
	header = append(header, formatVersion)
	header = binary.LittleEndian.AppendUint64(header, lsn)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(blob)))
	header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(blob, castagnoli))

	tmpPath := filepath.Join(s.dir, checkpointName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: checkpoint tmp: %w", err)
	}
	if _, err := tmp.Write(header); err == nil {
		_, err = tmp.Write(blob)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: checkpoint write: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, checkpointName)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: checkpoint rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.cpLSN = lsn
	// From here the checkpoint is durable; clearing the WAL is safe, and if
	// the truncate is lost to a crash, recovery skips the stale records by
	// LSN.
	if err := s.truncateWAL(0); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: dir open: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: dir sync: %w", err)
	}
	return nil
}

// Recover implements Store.
func (s *FileStore) Recover(checkpoint func([]byte) error, record func([]byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	blob, cpLSN, err := s.readCheckpoint(nil)
	switch {
	case err == nil:
		if err := checkpoint(blob); err != nil {
			return err
		}
	case errors.Is(err, os.ErrNotExist):
		cpLSN = 0
	default:
		return err
	}
	_, validSize, err := s.scanWAL(func(lsn uint64, payload []byte) error {
		if lsn <= cpLSN {
			return nil // pre-checkpoint leftover (crash between rename and truncate)
		}
		return record(payload)
	})
	if err != nil {
		return err
	}
	return s.truncateWAL(validSize)
}

// LogSize implements Store.
func (s *FileStore) LogSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walSize
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}

// Dir reports the state directory.
func (s *FileStore) Dir() string { return s.dir }
