// differential_test.go is the durability layer's proof obligation: a run
// that is checkpointed, killed, and restored must continue bit-identically
// to a run that was never interrupted — across ring-buffer eviction,
// feedback joins against pre-crash estimates, series close/reopen, and a
// recalibration hot-swap whose model must survive serialisation.
package store_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/recalib"
	"github.com/iese-repro/tauw/internal/store"
)

var (
	studyOnce sync.Once
	studyVal  *eval.Study
	studyErr  error
)

func testStudy(t testing.TB) *eval.Study {
	t.Helper()
	studyOnce.Do(func() {
		studyVal, studyErr = eval.BuildStudy(eval.TinyConfig())
	})
	if studyErr != nil {
		t.Fatalf("BuildStudy: %v", studyErr)
	}
	return studyVal
}

// rig bundles one full serving stack: a journaled, monitored pool plus the
// feedback-side state the checkpointer persists.
type rig struct {
	pool  *core.WrapperPool
	calib *monitor.Monitor
	leafs *monitor.LeafStats
	recal *recalib.Recalibrator
}

func newRig(t testing.TB) *rig {
	t.Helper()
	st := testStudy(t)
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM,
		core.Config{BufferLimit: 8}, 0,
		core.WithMonitoring(16), core.WithStateJournal())
	if err != nil {
		t.Fatal(err)
	}
	calib, err := monitor.New(monitor.Config{Window: 32, Bins: 5})
	if err != nil {
		t.Fatal(err)
	}
	leafs, err := monitor.NewLeafStats(st.TAQIM.NumRegions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Guards disabled: the scripted recalibration must swap in both runs
	// regardless of how the evidence happens to distribute over leaves.
	recal, err := recalib.New(pool, leafs, calib, recalib.Config{
		MinLeafFeedback: -1, Cooldown: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{pool: pool, calib: calib, leafs: leafs, recal: recal}
}

// schedule scripts the drive: every event is a pure function of the global
// tick index, so two rigs driven over the same tick range behave
// identically given identical starting state.
type schedule struct {
	// ticks is the drive length; series lists who is open at each tick
	// (recomputed per tick from the script below).
	ticks int
	// monitorGapFrom/To suppress the checkpoint-granular observations
	// (calibration monitor, per-leaf evidence) over (from, to]: the WAL-tail
	// subtest loses those to a crash by design, so the reference run must
	// not accumulate them either.
	monitorGapFrom, monitorGapTo int
}

const (
	closeTick   = 10 // s2 closes
	reopenTick  = 12 // a fresh series (s5) opens
	recalibTick = 20 // hot-swap to model version 2
)

// openAt lists the series ids open during tick i (after the tick's
// open/close events have run).
func (sc schedule) openAt(i int) []string {
	ids := []string{"s1", "s2", "s3", "s4"}
	if i >= closeTick {
		ids = []string{"s1", "s3", "s4"}
	}
	if i >= reopenTick {
		ids = append(ids, "s5")
	}
	return ids
}

// drive advances r over ticks [from, to) and appends every step result (in
// deterministic series order) to out.
func drive(t testing.TB, r *rig, sc schedule, from, to int, out []core.Result) []core.Result {
	t.Helper()
	st := testStudy(t)
	data := st.TestSeries
	if from == 0 {
		for k := 0; k < 4; k++ {
			if _, err := r.pool.OpenSeries(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := from; i < to; i++ {
		if i == closeTick {
			if err := r.pool.CloseSeries("s2"); err != nil {
				t.Fatal(err)
			}
		}
		if i == reopenTick {
			id, err := r.pool.OpenSeries()
			if err != nil {
				t.Fatal(err)
			}
			if id != "s5" {
				t.Fatalf("reopened series id %q, want s5 (series counter not continuous)", id)
			}
		}
		if i == recalibTick {
			rep, err := r.recal.Recalibrate()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Swapped {
				t.Fatalf("scripted recalibration did not swap: %+v", rep)
			}
		}
		for si, id := range sc.openAt(i) {
			s := data[si%len(data)]
			j := i % len(s.Outcomes)
			res, err := r.pool.StepSeries(id, s.Outcomes[j], s.Quality[j])
			if err != nil {
				t.Fatalf("tick %d series %s: %v", i, id, err)
			}
			out = append(out, res)
			// Every third tick, ground truth arrives for the estimate served
			// two steps ago — a join against the provenance ring, reaching
			// across the restore point when i-from < 2.
			if i%3 == 0 && res.TotalSteps > 2 {
				rec, err := r.pool.TakeFeedbackSeries(id, res.TotalSteps-2)
				if err != nil {
					t.Fatalf("tick %d series %s feedback: %v", i, id, err)
				}
				wrong := (i+si)%2 == 0
				if sc.monitorGapFrom == sc.monitorGapTo || i <= sc.monitorGapFrom || i > sc.monitorGapTo {
					track, err := r.pool.ResolveSeries(id)
					if err != nil {
						t.Fatal(err)
					}
					if err := r.calib.Observe(track, rec.Uncertainty, wrong); err != nil {
						t.Fatal(err)
					}
					r.leafs.Observe(track, rec.TAQIMLeaf, wrong)
				}
			}
		}
	}
	return out
}

// compareRuns asserts the interrupted run's tail results and final state
// equal the continuous run's, bit for bit. The two flags gate the
// checkpoint-granular state: feedback-side accumulators (monitor, leaf
// evidence) and the pool's step counters only match when the crash point
// coincides with a checkpoint — between checkpoints they lose their tail by
// design while series state stays exact.
func compareRuns(t *testing.T, cont, rest *rig, contRes, restRes []core.Result, compareFeedback, compareStats bool) {
	t.Helper()
	if len(contRes) != len(restRes) {
		t.Fatalf("result counts differ: continuous %d, restored %d", len(contRes), len(restRes))
	}
	for i := range contRes {
		if contRes[i] != restRes[i] {
			t.Fatalf("result %d diverged:\ncontinuous: %+v\nrestored:   %+v", i, contRes[i], restRes[i])
		}
	}
	if got, want := rest.pool.Active(), cont.pool.Active(); got != want {
		t.Errorf("active series: restored %d, continuous %d", got, want)
	}
	if got, want := rest.pool.SeriesCounter(), cont.pool.SeriesCounter(); got != want {
		t.Errorf("series counter: restored %d, continuous %d", got, want)
	}
	if got, want := rest.pool.ModelVersion(), cont.pool.ModelVersion(); got != want {
		t.Errorf("model version: restored %d, continuous %d", got, want)
	}
	if compareStats {
		var contStats, restStats core.PoolStats
		cont.pool.ExportStats(&contStats)
		rest.pool.ExportStats(&restStats)
		if contStats != restStats {
			t.Errorf("pool stats diverged:\ncontinuous: %+v\nrestored:   %+v", contStats, restStats)
		}
	}
	if compareFeedback {
		contSnap, restSnap := cont.calib.Snapshot(), rest.calib.Snapshot()
		if fmt.Sprintf("%+v", contSnap) != fmt.Sprintf("%+v", restSnap) {
			t.Errorf("monitor snapshots diverged:\ncontinuous: %+v\nrestored:   %+v", contSnap, restSnap)
		}
		if got, want := rest.leafs.TotalCount(), cont.leafs.TotalCount(); got != want {
			t.Errorf("leaf evidence: restored %d, continuous %d", got, want)
		}
	}
}

// TestDifferentialCheckpointRestore drives a continuous run and an
// interrupted run over the same script and requires the interrupted run —
// checkpointed, torn down, recovered into a fresh stack — to produce
// bit-identical step results and state from the restore point on.
func TestDifferentialCheckpointRestore(t *testing.T) {
	const ticks = 40
	for _, k := range []int{15, 25} { // before and after the hot-swap
		k := k
		t.Run(fmt.Sprintf("restoreAt%d", k), func(t *testing.T) {
			sc := schedule{ticks: ticks}
			cont := newRig(t)
			_ = drive(t, cont, sc, 0, k, nil)
			contTail := drive(t, cont, sc, k, ticks, nil)

			// Interrupted run: drive to k, full checkpoint, abandon the rig.
			dir := t.TempDir()
			a := newRig(t)
			_ = drive(t, a, sc, 0, k, nil)
			fs, err := store.OpenFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			cp, err := store.NewCheckpointer(fs, a.pool, a.calib, a.leafs, store.CheckpointConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := cp.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := fs.Close(); err != nil {
				t.Fatal(err)
			}

			// Recovery into a fresh stack, then the rest of the script.
			fs2, err := store.OpenFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer fs2.Close()
			b := newRig(t)
			rs, err := store.Recover(fs2, b.pool, b.calib, b.leafs)
			if err != nil {
				t.Fatal(err)
			}
			if !rs.HadCheckpoint {
				t.Fatal("recovery found no checkpoint")
			}
			restTail := drive(t, b, sc, k, ticks, nil)
			compareRuns(t, cont, b, contTail, restTail, true, true)
		})
	}
}

// TestDifferentialWALTailRestore crashes between checkpoints: the state at
// the kill point is a compacted checkpoint plus incremental WAL flushes —
// including the hot-swap's meta record, which rides the WAL. Series state
// must continue bit-identically; the checkpoint-granular feedback state is
// restored as of the checkpoint and is not compared here.
func TestDifferentialWALTailRestore(t *testing.T) {
	const (
		ticks = 40
		k1    = 14 // checkpoint
		k     = 26 // flush + crash
	)
	sc := schedule{ticks: ticks}
	cont := newRig(t)
	_ = drive(t, cont, sc, 0, k, nil)
	contTail := drive(t, cont, sc, k, ticks, nil)

	dir := t.TempDir()
	a := newRig(t)
	fs, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := store.NewCheckpointer(fs, a.pool, a.calib, a.leafs, store.CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_ = drive(t, a, sc, 0, k1, nil)
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Two incremental flushes with the close/reopen/hot-swap landing
	// between them, then the "crash": the FileStore is simply abandoned
	// (no Close, like a SIGKILL) — reopening must replay checkpoint + tail.
	mid := (k1 + k) / 2
	_ = drive(t, a, sc, k1, mid, nil)
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = drive(t, a, sc, mid, k, nil)
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	if lg := fs.LogSize(); lg <= 0 {
		t.Fatalf("expected a non-empty WAL tail, got %d bytes", lg)
	}

	fs2, err := store.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	b := newRig(t)
	rs, err := store.Recover(fs2, b.pool, b.calib, b.leafs)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HadCheckpoint || rs.Records == 0 {
		t.Fatalf("recovery should see checkpoint plus WAL tail, got %+v", rs)
	}
	if got := b.pool.ModelVersion(); got != 2 {
		t.Fatalf("hot-swapped model version did not survive the WAL: version %d, want 2", got)
	}
	restTail := drive(t, b, sc, k, ticks, nil)
	compareRuns(t, cont, b, contTail, restTail, false, false)
}

// TestRecoverEmptyDir is the first-boot path: an empty state directory
// recovers to nothing and the server starts cold.
func TestRecoverEmptyDir(t *testing.T) {
	fs, err := store.OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	r := newRig(t)
	rs, err := store.Recover(fs, r.pool, r.calib, r.leafs)
	if err != nil {
		t.Fatal(err)
	}
	if rs.HadCheckpoint || rs.Series != 0 || rs.Records != 0 {
		t.Fatalf("empty dir recovered %+v", rs)
	}
	if rs.ModelVersion != 1 {
		t.Fatalf("cold model version %d, want 1", rs.ModelVersion)
	}
}

// TestMemStoreDifferential runs the checkpoint cycle through the in-memory
// backend: same recovery semantics, no disk.
func TestMemStoreDifferential(t *testing.T) {
	const ticks, k = 30, 15
	// The feedback observed between the checkpoint (before tick k-3) and
	// the crash (before tick k) is checkpoint-granular and would be lost —
	// and that evidence feeds the scripted recalibration at tick 20, which
	// must see identical evidence in both runs. The schedule suppresses
	// observation over ticks [k-3, k) in both runs (the gap is (from, to]).
	sc := schedule{ticks: ticks, monitorGapFrom: k - 4, monitorGapTo: k - 1}
	cont := newRig(t)
	_ = drive(t, cont, sc, 0, k, nil)
	contTail := drive(t, cont, sc, k, ticks, nil)

	ms := store.NewMemStore()
	a := newRig(t)
	cp, err := store.NewCheckpointer(ms, a.pool, a.calib, a.leafs, store.CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_ = drive(t, a, sc, 0, k-3, nil)
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_ = drive(t, a, sc, k-3, k, nil)
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}

	b := newRig(t)
	if _, err := store.Recover(ms, b.pool, b.calib, b.leafs); err != nil {
		t.Fatal(err)
	}
	restTail := drive(t, b, sc, k, ticks, nil)
	// Pool step counters lose ticks (k-3, k] to the crash (they live in the
	// checkpoint's monitor record); feedback state matches because the
	// schedule gap kept both runs from observing over that window.
	compareRuns(t, cont, b, contTail, restTail, true, false)
}
