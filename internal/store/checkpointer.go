// checkpointer.go is the write-behind glue between the serving state and a
// Store. The serving hot path never sees it: steps only flip a per-track
// dirty bit under a lock they already hold, and the checkpointer harvests
// those bits on its own clock — an incremental flush (dirty series +
// drained closes + changed meta, appended to the WAL and synced) every
// FlushInterval, compacted into a full checkpoint (every open series +
// monitor state + meta, atomically replacing the previous checkpoint) every
// CheckpointInterval or once the WAL outgrows MaxWALBytes.
//
// Monitor state is deliberately checkpoint-granular: the reliability
// windows are the bulk of the state (shards × window × 8 bytes), far too
// heavy to append per flush, and unlike series state they degrade
// gracefully — losing the tail of a sliding statistic costs precision, not
// correctness. Series state is flush-granular; a crash loses at most the
// last FlushInterval of steps.
package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/trace"
	"github.com/iese-repro/tauw/internal/uw"
	"github.com/iese-repro/tauw/internal/xlog"
)

// Defaults for CheckpointConfig's zero values.
const (
	DefaultFlushInterval      = time.Second
	DefaultCheckpointInterval = time.Minute
	DefaultMaxWALBytes        = 16 << 20
	DefaultRetryAttempts      = 3
	DefaultRetryBase          = 10 * time.Millisecond
	DefaultBreakerThreshold   = 3
	DefaultProbeInterval      = 5 * time.Second
)

// maxProbeBackoffFactor caps the exponential growth of the degraded-mode
// probe interval at this multiple of ProbeInterval.
const maxProbeBackoffFactor = 8

// CheckpointConfig tunes the write-behind cadence and its fault handling.
type CheckpointConfig struct {
	// FlushInterval is the incremental-flush period (0 means
	// DefaultFlushInterval) — the durability window: a crash loses at most
	// this much serving history.
	FlushInterval time.Duration
	// CheckpointInterval is the full-checkpoint period (0 means
	// DefaultCheckpointInterval).
	CheckpointInterval time.Duration
	// MaxWALBytes triggers an early checkpoint once the WAL outgrows it
	// (0 means DefaultMaxWALBytes; negative disables the size trigger).
	MaxWALBytes int64

	// RetryAttempts is the total tries per store operation before the cycle
	// gives up on a transient failure (0 means DefaultRetryAttempts; 1
	// disables retries). Between tries the checkpointer backs off
	// exponentially from RetryBase (0 means DefaultRetryBase) with ±50%
	// jitter, so a fleet recovering from a shared-storage hiccup does not
	// hammer it in lockstep.
	RetryAttempts int
	RetryBase     time.Duration

	// BreakerThreshold is the circuit breaker: after this many consecutive
	// failed flush/checkpoint cycles the checkpointer enters degraded mode —
	// durability is suspended, traffic keeps serving from RAM, and the
	// store is only touched by half-open probes every ProbeInterval
	// (backing off up to 8× while probes keep failing). A successful probe
	// is a full recovery checkpoint, which reconciles everything the WAL
	// missed while degraded in one blob. 0 means DefaultBreakerThreshold;
	// negative disables the breaker (every failed cycle just logs and
	// retries next tick, the pre-breaker behavior).
	BreakerThreshold int
	ProbeInterval    time.Duration

	// Trace wires the durability layer into the flight recorder: WAL
	// appends, flush/checkpoint cycles, every failed retry attempt, and
	// breaker transitions (a trip also freezes the anomaly snapshot that
	// explains it). Nil disables tracing.
	Trace *trace.Recorder
	// Stages, when set, receives the store_append/checkpoint/fsync stage
	// timings of the tauw_stage_duration_seconds attribution.
	Stages *monitor.StageSet
	// Log is the structured logger for cycle failures and breaker
	// transitions; nil means a default component=store logger.
	Log *xlog.Logger
}

func (c CheckpointConfig) withDefaults() CheckpointConfig {
	if c.FlushInterval == 0 {
		c.FlushInterval = DefaultFlushInterval
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = DefaultCheckpointInterval
	}
	if c.MaxWALBytes == 0 {
		c.MaxWALBytes = DefaultMaxWALBytes
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = DefaultRetryAttempts
	}
	if c.RetryBase == 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.Log == nil {
		c.Log = xlog.New("store")
	}
	return c
}

// Stats is a point-in-time read of the checkpointer's counters, the
// backing of the tauw_checkpoint_* metrics.
type Stats struct {
	// Checkpoints and Flushes count completed full checkpoints and
	// incremental flushes; Errors counts failed ones (state stays dirty and
	// is retried on the next tick).
	Checkpoints, Flushes, Errors uint64
	// WALRecords and WALBytes count records appended to the log since
	// construction (not reset by checkpoints).
	WALRecords, WALBytes uint64
	// LastCheckpointUnixNano is the completion time of the newest
	// checkpoint (0 before the first); LastCheckpointBytes its blob size.
	LastCheckpointUnixNano int64
	LastCheckpointBytes    uint64
	// StoreErrors counts failed store operations (every attempt, so a retry
	// that eventually succeeds still shows up here); Degraded is true while
	// the circuit breaker holds durability suspended, and DegradedEntries
	// counts how many times it has tripped.
	StoreErrors     uint64
	Degraded        bool
	DegradedEntries uint64
}

// Checkpointer drives the write-behind loop. Flush/Checkpoint serialise
// through an internal mutex, so the background loop and a drain-time final
// checkpoint can overlap safely.
type Checkpointer struct {
	store  Store
	pool   *core.WrapperPool
	mon    *monitor.Monitor
	leaves *monitor.LeafStats
	cfg    CheckpointConfig

	mu      sync.Mutex // serialises flush/checkpoint cycles
	scratch core.SeriesState
	buf     []byte // record scratch
	blob    []byte // checkpoint blob scratch
	closed  []int
	mrec    MonitorRecord

	// lastMeta* dedupe the meta record: flushes rewrite it only on change.
	lastMetaCounter uint64
	lastMetaVersion uint64

	checkpoints atomic.Uint64
	flushes     atomic.Uint64
	errorsN     atomic.Uint64
	walRecords  atomic.Uint64
	walBytes    atomic.Uint64
	lastCPNanos atomic.Int64
	lastCPBytes atomic.Uint64
	stopOnce    sync.Once
	stop        chan struct{}
	done        chan struct{}
	loopStarted bool
	loopStartMu sync.Mutex

	// Circuit-breaker state. degraded/degradedN/storeErrors are atomics so
	// /readyz and the metrics scrape read them without touching c.mu; the
	// rest is owned by the background loop (consecFails, nextProbe,
	// probeBackoff never race — only tick/probe mutate them).
	degraded     atomic.Bool
	degradedN    atomic.Uint64
	storeErrors  atomic.Uint64
	consecFails  int
	nextProbe    time.Time
	probeBackoff time.Duration

	// now/sleep/rng are the clock, backoff sleeper, and jitter source —
	// fields so resilience tests run the whole retry/breaker machinery
	// without real time passing.
	now   func() time.Time
	sleep func(time.Duration)
	rng   uint64
}

// NewCheckpointer wires a pool (required) and the optional feedback-side
// state to a store. The pool should be built with core.WithStateJournal so
// closes reach the log. This constructor is the clock/rng seam: the real
// time.Now and time.Sleep become the injectable defaults here, and every
// other use in the package must go through c.now / c.sleep / c.rng.
//
//tauw:seamimpl
func NewCheckpointer(s Store, pool *core.WrapperPool, mon *monitor.Monitor, leaves *monitor.LeafStats, cfg CheckpointConfig) (*Checkpointer, error) {
	if s == nil || pool == nil {
		return nil, fmt.Errorf("store: checkpointer needs a store and a pool")
	}
	cfg = cfg.withDefaults()
	if cfg.FlushInterval < 0 || cfg.CheckpointInterval < 0 {
		return nil, fmt.Errorf("store: flush interval %v and checkpoint interval %v must be >= 0",
			cfg.FlushInterval, cfg.CheckpointInterval)
	}
	if cfg.RetryAttempts < 0 || cfg.RetryBase < 0 {
		return nil, fmt.Errorf("store: retry attempts %d and retry base %v must be >= 0",
			cfg.RetryAttempts, cfg.RetryBase)
	}
	if cfg.ProbeInterval < 0 {
		return nil, fmt.Errorf("store: probe interval %v must be >= 0", cfg.ProbeInterval)
	}
	return &Checkpointer{
		store:  s,
		pool:   pool,
		mon:    mon,
		leaves: leaves,
		cfg:    cfg,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		now:    time.Now,
		sleep:  time.Sleep,
		rng:    uint64(time.Now().UnixNano()) | 1,
	}, nil
}

// Start launches the background loop. Safe to call once.
func (c *Checkpointer) Start() {
	c.loopStartMu.Lock()
	defer c.loopStartMu.Unlock()
	if c.loopStarted {
		return
	}
	c.loopStarted = true
	go c.run()
}

// run is the background loop. Its tickers are deliberately ambient — tests
// never run the loop, they call tick/flush/checkpoint directly through the
// injected clock — so the loop is part of the production seam wiring.
//
//tauw:seamimpl
func (c *Checkpointer) run() {
	defer close(c.done)
	flushT := time.NewTicker(c.cfg.FlushInterval)
	defer flushT.Stop()
	cpT := time.NewTicker(c.cfg.CheckpointInterval)
	defer cpT.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-flushT.C:
			c.tick(false)
		case <-cpT.C:
			c.tick(true)
		}
	}
}

// tick is one background-cycle attempt: while healthy it runs the scheduled
// flush (or a full checkpoint on the checkpoint tick / WAL-size trip) and
// feeds the breaker; while degraded it only probes. Exclusively called from
// the run loop, so the breaker bookkeeping needs no lock.
func (c *Checkpointer) tick(full bool) {
	if c.degraded.Load() {
		c.probe()
		return
	}
	trip := full || (c.cfg.MaxWALBytes > 0 && c.store.LogSize() >= c.cfg.MaxWALBytes)
	var err error
	if trip {
		err = c.Checkpoint()
	} else {
		err = c.Flush()
	}
	if err == nil {
		c.consecFails = 0
		return
	}
	c.errorsN.Add(1)
	c.consecFails++
	if c.cfg.BreakerThreshold > 0 && c.consecFails >= c.cfg.BreakerThreshold {
		c.enterDegraded(err)
		return
	}
	c.cfg.Log.Warn("cycle failed — state stays dirty, retrying next tick", "err", err)
}

// enterDegraded trips the breaker: durability is suspended (ticks stop
// touching the store, dirty bits keep accumulating in the pool at one bool
// per mutated series) and half-open probes take over.
func (c *Checkpointer) enterDegraded(err error) {
	c.degraded.Store(true)
	c.degradedN.Add(1)
	c.probeBackoff = c.cfg.ProbeInterval
	c.nextProbe = c.now().Add(c.probeBackoff)
	// Record the transition before freezing so the anomaly snapshot holds
	// the breaker event alongside the store errors that tripped it.
	c.cfg.Trace.Record(trace.KindBreaker, trace.StatusTripped, 0, 0, uint64(c.consecFails))
	c.cfg.Trace.Freeze("breaker_trip")
	c.cfg.Log.Error("entering degraded mode — durability suspended, serving from RAM",
		"consecutive_failures", c.consecFails, "probe_in", c.probeBackoff, "err", err)
}

// probe is the half-open state: at most one store attempt per backoff
// window, and that attempt is a full recovery checkpoint — on success it
// captures every series the WAL missed while degraded in one consistent
// blob, so closing the breaker (done inside Checkpoint) and reconciling the
// gap are the same act.
func (c *Checkpointer) probe() {
	if c.now().Before(c.nextProbe) {
		return
	}
	if err := c.Checkpoint(); err != nil {
		c.errorsN.Add(1)
		if c.probeBackoff < maxProbeBackoffFactor*c.cfg.ProbeInterval {
			c.probeBackoff *= 2
		}
		c.nextProbe = c.now().Add(c.probeBackoff)
		c.cfg.Log.Warn("degraded-mode probe failed", "next_probe", c.probeBackoff, "err", err)
		return
	}
	c.consecFails = 0
}

// Degraded reports whether the circuit breaker currently holds durability
// suspended (the tauw_degraded gauge and the /readyz body).
func (c *Checkpointer) Degraded() bool { return c.degraded.Load() }

// withRetry runs one store operation with bounded exponential backoff and
// jitter: transient failures (a flaky disk, a network-attached store
// hiccuping) are absorbed here, persistent ones surface to the breaker.
// Every failed attempt counts into StoreErrors.
func (c *Checkpointer) withRetry(fn func() error) error {
	delay := c.cfg.RetryBase
	var err error
	for attempt := 0; attempt < c.cfg.RetryAttempts; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		c.storeErrors.Add(1)
		c.cfg.Trace.Record(trace.KindRetry, trace.StatusError, 0, 0, uint64(attempt+1))
		if attempt < c.cfg.RetryAttempts-1 {
			c.sleep(c.jitter(delay))
			delay *= 2
		}
	}
	return err
}

// jitter spreads d over [d/2, 3d/2) with a xorshift64 step, so fleet-wide
// retries against shared storage de-synchronise.
func (c *Checkpointer) jitter(d time.Duration) time.Duration {
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(x%uint64(d))
}

// Stop halts the loop and writes a final full checkpoint — the drain-time
// hook: after it returns, every served step is in the checkpoint. When the
// store is still failing (degraded mode that never healed), the final
// checkpoint fails after its bounded retries and Stop surfaces the error
// instead of hanging — the operator learns the drain lost the un-flushed
// window rather than the process wedging on a dead disk.
func (c *Checkpointer) Stop() error {
	c.stopOnce.Do(func() { close(c.stop) })
	c.loopStartMu.Lock()
	started := c.loopStarted
	c.loopStartMu.Unlock()
	if started {
		<-c.done
	}
	return c.Checkpoint()
}

// Flush appends every dirty series, the drained closes, and a changed meta
// record to the log, then syncs. One failed append aborts the cycle with
// the affected series re-marked dirty.
func (c *Checkpointer) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var traceStart int64
	if c.cfg.Trace != nil {
		traceStart = c.cfg.Trace.Now()
	}
	recs0 := c.walRecords.Load()
	err := c.flushLocked()
	if c.cfg.Trace != nil {
		status := trace.StatusOK
		if err != nil {
			status = trace.StatusError
		}
		c.cfg.Trace.RecordSince(traceStart, trace.KindFlush, status, 0, 0, c.walRecords.Load()-recs0)
	}
	return err
}

func (c *Checkpointer) flushLocked() error {
	_, err := c.pool.CollectDirty(&c.scratch, func(st *core.SeriesState) error {
		c.buf = AppendSeriesRecord(c.buf[:0], st)
		return c.append(c.buf)
	})
	if err != nil {
		return err
	}
	// Closes drain strictly after the sweep's snapshots (see
	// core.CollectDirty's ordering contract).
	c.closed = c.pool.DrainClosed(c.closed[:0])
	for _, track := range c.closed {
		c.buf = AppendCloseRecord(c.buf[:0], track)
		if err := c.append(c.buf); err != nil {
			return err
		}
	}
	if err := c.appendMetaIfChanged(); err != nil {
		return err
	}
	if err := c.timedSync(); err != nil {
		return err
	}
	c.flushes.Add(1)
	return nil
}

// timedSync is the store Sync with fsync-stage attribution: of a flush's
// cost, the Sync is the part the deployment's storage determines, so it
// gets its own stage histogram.
func (c *Checkpointer) timedSync() error {
	if c.cfg.Stages == nil {
		return c.withRetry(c.store.Sync)
	}
	t0 := c.now()
	err := c.withRetry(c.store.Sync)
	c.cfg.Stages.Fsync.Observe(c.now().Sub(t0))
	return err
}

// append writes one WAL record with the retry policy. Retrying an Append is
// sound because the Store contract requires a failed Append to leave the log
// as if the call never happened (FileStore truncates a partial frame back
// out), so the retry can never land behind garbage of its own making.
func (c *Checkpointer) append(rec []byte) error {
	var traceStart int64
	if c.cfg.Trace != nil {
		traceStart = c.cfg.Trace.Now()
	}
	var t0 time.Time
	if c.cfg.Stages != nil {
		t0 = c.now()
	}
	err := c.withRetry(func() error { return c.store.Append(rec) })
	if c.cfg.Stages != nil {
		c.cfg.Stages.StoreAppend.Observe(c.now().Sub(t0))
	}
	if c.cfg.Trace != nil {
		status := trace.StatusOK
		if err != nil {
			status = trace.StatusError
		}
		c.cfg.Trace.RecordSince(traceStart, trace.KindWALAppend, status, 0, 0, uint64(len(rec)))
	}
	if err != nil {
		return err
	}
	c.walRecords.Add(1)
	c.walBytes.Add(uint64(len(rec)))
	return nil
}

// appendMetaIfChanged writes the meta record when the series counter or
// serving model moved since the last write.
func (c *Checkpointer) appendMetaIfChanged() error {
	counter := c.pool.SeriesCounter()
	_, version := c.pool.ServingModel()
	if counter == c.lastMetaCounter && version == c.lastMetaVersion {
		return nil
	}
	rec, err := c.metaRecord(c.buf[:0])
	if err != nil {
		return err
	}
	c.buf = rec
	if err := c.append(rec); err != nil {
		return err
	}
	c.lastMetaCounter = counter
	c.lastMetaVersion = version
	return nil
}

// metaRecord renders the current meta record, embedding the serving model
// as JSON once it has been swapped past the construction revision.
func (c *Checkpointer) metaRecord(dst []byte) ([]byte, error) {
	qim, version := c.pool.ServingModel()
	m := Meta{SeriesCounter: c.pool.SeriesCounter(), ModelVersion: version}
	if version > 1 {
		js, err := qim.MarshalJSON()
		if err != nil {
			return dst, fmt.Errorf("store: encode serving model: %w", err)
		}
		m.ModelJSON = js
	}
	return AppendMetaRecord(dst, &m), nil
}

// Checkpoint captures the complete state — meta, monitor, every open
// series — into one blob and atomically replaces the previous checkpoint,
// clearing the WAL.
func (c *Checkpointer) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var traceStart int64
	if c.cfg.Trace != nil {
		traceStart = c.cfg.Trace.Now()
	}
	var t0 time.Time
	if c.cfg.Stages != nil {
		t0 = c.now()
	}
	err := c.checkpointLocked()
	if c.cfg.Stages != nil {
		c.cfg.Stages.Checkpoint.Observe(c.now().Sub(t0))
	}
	if c.cfg.Trace != nil {
		status := trace.StatusOK
		if err != nil {
			status = trace.StatusError
		}
		c.cfg.Trace.RecordSince(traceStart, trace.KindCheckpoint, status, 0, 0, c.lastCPBytes.Load())
	}
	return err
}

func (c *Checkpointer) checkpointLocked() error {
	blob := c.blob[:0]
	rec, err := c.metaRecord(c.buf[:0])
	if err != nil {
		return err
	}
	c.buf = rec
	blob = AppendBlobRecord(blob, rec)

	c.mrec.HasMonitor = c.mon != nil
	if c.mon != nil {
		c.mon.ExportState(&c.mrec.Monitor)
	}
	c.mrec.HasLeaves = c.leaves != nil
	if c.leaves != nil {
		c.leaves.ExportState(&c.mrec.Leaves)
	}
	c.pool.ExportStats(&c.mrec.PoolStats)
	c.buf = AppendMonitorRecord(c.buf[:0], &c.mrec)
	blob = AppendBlobRecord(blob, c.buf)

	_, err = c.pool.ForEachTrack(&c.scratch, func(st *core.SeriesState) error {
		c.buf = AppendSeriesRecord(c.buf[:0], st)
		blob = AppendBlobRecord(blob, c.buf)
		return nil
	})
	if err != nil {
		return err
	}
	c.blob = blob
	if err := c.withRetry(func() error { return c.store.Checkpoint(blob) }); err != nil {
		return err
	}
	// The checkpoint holds everything, including any pending closes and the
	// current meta: drop the journal backlog and re-arm the meta dedupe.
	c.closed = c.pool.DrainClosed(c.closed[:0])
	c.lastMetaCounter = c.pool.SeriesCounter()
	_, c.lastMetaVersion = c.pool.ServingModel()
	c.checkpoints.Add(1)
	c.lastCPNanos.Store(c.now().UnixNano())
	c.lastCPBytes.Store(uint64(len(blob)))
	// A successful full checkpoint holds the complete serving state, so
	// whatever WAL gap degraded mode opened is reconciled by construction:
	// any path that lands one (background probe, drain-time Stop, a manual
	// trigger) closes the breaker.
	if c.degraded.Swap(false) {
		c.cfg.Trace.Record(trace.KindBreaker, trace.StatusRecovered, 0, 0, 0)
		c.cfg.Log.Info("store recovered — degraded mode cleared, recovery checkpoint reconciled the WAL gap")
	}
	return nil
}

// CheckpointStats implements the exposition's CheckpointSource.
func (c *Checkpointer) CheckpointStats() monitor.CheckpointStats {
	return monitor.CheckpointStats{
		Checkpoints:            c.checkpoints.Load(),
		Flushes:                c.flushes.Load(),
		Errors:                 c.errorsN.Load(),
		WALRecords:             c.walRecords.Load(),
		WALBytes:               c.walBytes.Load(),
		LastCheckpointUnixNano: c.lastCPNanos.Load(),
		LastCheckpointBytes:    c.lastCPBytes.Load(),
		StoreErrors:            c.storeErrors.Load(),
		Degraded:               c.degraded.Load(),
		DegradedEntries:        c.degradedN.Load(),
	}
}

// RecoverStats summarises what a recovery restored.
type RecoverStats struct {
	// Series is the number of live series after recovery; Closes the close
	// records applied; Records the log records replayed on top of the
	// checkpoint; ModelVersion the restored serving version (1 = the
	// construction model, nothing was restored over it).
	Series, Closes, Records int
	ModelVersion            uint64
	HadCheckpoint           bool
}

// Recover replays a store into a freshly built pool (and optional monitor
// state), before any traffic: checkpoint records first, then the WAL tail.
// Unknown record kinds are skipped — a newer writer's records do not brick
// an older reader — and close records for tracks that never materialised
// are ignored.
func Recover(s Store, pool *core.WrapperPool, mon *monitor.Monitor, leaves *monitor.LeafStats) (RecoverStats, error) {
	var rs RecoverStats
	var st core.SeriesState
	var meta Meta
	var mrec MonitorRecord
	apply := func(rec []byte) error {
		kind, err := RecordKind(rec)
		if err != nil {
			return err
		}
		switch kind {
		case kindSeries:
			if err := DecodeSeriesRecord(rec, &st); err != nil {
				return err
			}
			if err := pool.RestoreTrack(&st); err != nil {
				return err
			}
		case kindClose:
			track, err := DecodeCloseRecord(rec)
			if err != nil {
				return err
			}
			if id := (&core.SeriesState{Track: track}).SeriesID(); id != "" {
				if pool.CloseSeries(id) == nil {
					rs.Closes++
				}
			} else if pool.Close(track) == nil {
				rs.Closes++
			}
		case kindMeta:
			if err := DecodeMetaRecord(rec, &meta); err != nil {
				return err
			}
			pool.SetSeriesCounter(meta.SeriesCounter)
			if len(meta.ModelJSON) > 0 && meta.ModelVersion > 1 {
				qim, err := uw.LoadQIM(meta.ModelJSON)
				if err != nil {
					return fmt.Errorf("store: restore serving model: %w", err)
				}
				if err := pool.InstallModel(qim, meta.ModelVersion); err != nil {
					return err
				}
			}
		case kindMonitor:
			if err := DecodeMonitorRecord(rec, &mrec); err != nil {
				return err
			}
			if mrec.HasMonitor && mon != nil {
				if err := mon.RestoreState(&mrec.Monitor); err != nil {
					return err
				}
			}
			if mrec.HasLeaves && leaves != nil {
				if err := leaves.RestoreState(&mrec.Leaves); err != nil {
					return err
				}
			}
			pool.RestoreStats(&mrec.PoolStats)
		}
		return nil
	}
	err := s.Recover(
		func(blob []byte) error {
			rs.HadCheckpoint = true
			return WalkBlob(blob, apply)
		},
		func(rec []byte) error {
			rs.Records++
			return apply(rec)
		},
	)
	if err != nil {
		return rs, err
	}
	// Recovery's own Close calls journalled themselves; those tracks are
	// gone, so drop the entries instead of logging tombstones for ghosts.
	pool.DrainClosed(nil)
	rs.Series = pool.Active()
	rs.ModelVersion = pool.ModelVersion()
	return rs, nil
}
