// resilience_test.go proves the durability layer's fault story end to end:
// transient store failures are absorbed by retries, persistent ones abort the
// cycle with state kept dirty, sustained ones trip the circuit breaker into
// degraded mode — and once the store heals, a recovery checkpoint reconciles
// everything so a restart continues bit-identically to a run whose store
// never failed.
package store_test

import (
	"errors"
	"testing"
	"time"

	"github.com/iese-repro/tauw/internal/store"
)

// failAllOps schedules every store operation to fail until Clear.
func failAllOps(fs *store.FaultStore) {
	for op := store.Op(0); op < store.NumOps(); op++ {
		fs.FailOps(op, 0, -1, nil)
	}
}

// TestFlushRetriesTransientFault: a store that fails once and then recovers
// must not fail the cycle — the retry absorbs it, and only the per-attempt
// counter shows the hiccup.
func TestFlushRetriesTransientFault(t *testing.T) {
	r := newRig(t)
	sc := schedule{ticks: 10}
	_ = drive(t, r, sc, 0, 5, nil)
	fs := store.NewFaultStore(store.NewMemStore())
	cp, err := store.NewCheckpointer(fs, r.pool, r.calib, r.leafs, store.CheckpointConfig{
		RetryAttempts: 3, RetryBase: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs.FailOps(store.OpAppend, 0, 1, nil)
	if err := cp.Flush(); err != nil {
		t.Fatalf("flush with a transient append fault: %v", err)
	}
	st := cp.CheckpointStats()
	if st.StoreErrors == 0 {
		t.Fatal("the absorbed fault never counted into StoreErrors")
	}
	if st.Errors != 0 {
		t.Fatalf("cycle errors = %d, want 0 (the retry absorbed the fault)", st.Errors)
	}
	if st.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", st.Flushes)
	}
	if st.Degraded {
		t.Fatal("one transient fault must not suggest degraded mode")
	}
}

// TestFlushFailureKeepsStateDirty: a flush aborted mid-sweep must leave the
// unpersisted series dirty, so the next healthy flush persists everything —
// proven by recovering the healed store into a fresh stack and requiring the
// continuation to match the uninterrupted rig bit for bit.
func TestFlushFailureKeepsStateDirty(t *testing.T) {
	const k, ticks = 8, 10
	sc := schedule{ticks: ticks}
	r := newRig(t)
	_ = drive(t, r, sc, 0, k, nil)
	ms := store.NewMemStore()
	fs := store.NewFaultStore(ms)
	cp, err := store.NewCheckpointer(fs, r.pool, r.calib, r.leafs, store.CheckpointConfig{
		RetryAttempts: 1, // no retries: the abort path is the subject
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two series land, then every further append fails: the sweep aborts
	// mid-flight.
	fs.FailOps(store.OpAppend, 2, -1, nil)
	if err := cp.Flush(); err == nil {
		t.Fatal("flush succeeded against a failing store")
	}
	if cp.CheckpointStats().Flushes != 0 {
		t.Fatal("aborted flush counted as completed")
	}
	fs.Clear()
	if err := cp.Flush(); err != nil {
		t.Fatalf("flush after healing: %v", err)
	}

	b := newRig(t)
	if _, err := store.Recover(ms, b.pool, b.calib, b.leafs); err != nil {
		t.Fatal(err)
	}
	contTail := drive(t, r, sc, k, ticks, nil)
	restTail := drive(t, b, sc, k, ticks, nil)
	compareRuns(t, r, b, contTail, restTail, false, false)
}

// TestDifferentialFaultWindowRestore is the chaos differential: traffic keeps
// flowing while every store operation fails (spanning a series close, a
// reopen, and a failed flush), the store heals, a recovery checkpoint
// reconciles the WAL gap — and a stack recovered from that checkpoint must
// continue bit-identically to a run whose store never failed, through the
// scripted recalibration hot-swap in the tail.
func TestDifferentialFaultWindowRestore(t *testing.T) {
	const (
		ticks = 30
		k1    = 8  // healthy checkpoint
		mid   = 12 // failed flush attempt inside the fault window
		k     = 16 // heal + recovery checkpoint
	)
	sc := schedule{ticks: ticks}
	cont := newRig(t)
	_ = drive(t, cont, sc, 0, k, nil)
	contTail := drive(t, cont, sc, k, ticks, nil)

	ms := store.NewMemStore()
	fs := store.NewFaultStore(ms)
	a := newRig(t)
	cp, err := store.NewCheckpointer(fs, a.pool, a.calib, a.leafs, store.CheckpointConfig{
		RetryAttempts: 2, RetryBase: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = drive(t, a, sc, 0, k1, nil)
	if err := cp.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The fault window: serving continues (close at tick 10, reopen at 12)
	// while the store fails everything, including a flush attempt.
	failAllOps(fs)
	_ = drive(t, a, sc, k1, mid, nil)
	if err := cp.Flush(); err == nil {
		t.Fatal("flush succeeded inside the fault window")
	}
	_ = drive(t, a, sc, mid, k, nil)

	// Heal: the recovery checkpoint captures the complete state, reconciling
	// everything the WAL missed during the window.
	fs.Clear()
	if err := cp.Checkpoint(); err != nil {
		t.Fatalf("recovery checkpoint after healing: %v", err)
	}

	b := newRig(t)
	rs, err := store.Recover(ms, b.pool, b.calib, b.leafs)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HadCheckpoint {
		t.Fatal("recovery found no checkpoint")
	}
	restTail := drive(t, b, sc, k, ticks, nil)
	// The recovery point coincides with a full checkpoint, so even the
	// checkpoint-granular feedback state and pool counters must match.
	compareRuns(t, cont, b, contTail, restTail, true, true)
}

// TestBreakerTripAndRecovery runs the real background loop against a dead
// store: the breaker must trip into degraded mode after the configured
// consecutive failures, keep probing half-open, and clear itself with a
// recovery checkpoint once the store heals — then a drain-time Stop and a
// recovery must carry the complete state.
func TestBreakerTripAndRecovery(t *testing.T) {
	const k, ticks = 6, 10
	sc := schedule{ticks: ticks}
	r := newRig(t)
	_ = drive(t, r, sc, 0, k, nil)
	ms := store.NewMemStore()
	fs := store.NewFaultStore(ms)
	cp, err := store.NewCheckpointer(fs, r.pool, r.calib, r.leafs, store.CheckpointConfig{
		FlushInterval:      time.Millisecond,
		CheckpointInterval: time.Hour,
		RetryAttempts:      1,
		BreakerThreshold:   2,
		ProbeInterval:      2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	failAllOps(fs)
	cp.Start()

	waitCond(t, "breaker trip", func() bool { return cp.Degraded() })
	st := cp.CheckpointStats()
	if !st.Degraded || st.DegradedEntries != 1 {
		t.Fatalf("degraded=%v entries=%d, want tripped exactly once", st.Degraded, st.DegradedEntries)
	}
	if st.Errors < 2 || st.StoreErrors < 2 {
		t.Fatalf("cycle errors %d / store errors %d, want >= breaker threshold", st.Errors, st.StoreErrors)
	}

	fs.Clear()
	waitCond(t, "breaker recovery", func() bool { return !cp.Degraded() })
	st = cp.CheckpointStats()
	if st.Checkpoints < 1 {
		t.Fatalf("recovery closed the breaker without a checkpoint: %+v", st)
	}
	if st.DegradedEntries != 1 {
		t.Fatalf("breaker re-tripped against a healthy store: %d entries", st.DegradedEntries)
	}

	if err := cp.Stop(); err != nil {
		t.Fatalf("drain after recovery: %v", err)
	}
	b := newRig(t)
	if _, err := store.Recover(ms, b.pool, b.calib, b.leafs); err != nil {
		t.Fatal(err)
	}
	contTail := drive(t, r, sc, k, ticks, nil)
	restTail := drive(t, b, sc, k, ticks, nil)
	compareRuns(t, r, b, contTail, restTail, true, true)
}

// TestStopSurfacesStoreFailure: a drain against a store that never heals must
// return the error after bounded retries instead of hanging — and the
// checkpointer must stay usable for a later retry once the store is back.
func TestStopSurfacesStoreFailure(t *testing.T) {
	r := newRig(t)
	_ = drive(t, r, schedule{ticks: 4}, 0, 4, nil)
	fs := store.NewFaultStore(store.NewMemStore())
	cp, err := store.NewCheckpointer(fs, r.pool, r.calib, r.leafs, store.CheckpointConfig{
		RetryAttempts: 2, RetryBase: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs.FailOps(store.OpCheckpoint, 0, -1, nil)
	done := make(chan error, 1)
	go func() { done <- cp.Stop() }()
	select {
	case err := <-done:
		if !errors.Is(err, store.ErrInjected) {
			t.Fatalf("Stop against a dead store returned %v, want the injected error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung on a dead store instead of surfacing the error")
	}
	fs.Clear()
	if err := cp.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after the store healed: %v", err)
	}
}

// waitCond polls a condition the background loop flips, failing after a
// generous deadline (the loop's intervals are single-digit milliseconds).
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s never happened", what)
}
