package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/iese-repro/tauw/internal/core"
)

// FuzzDecodeRecord throws arbitrary bytes at every record decoder plus the
// blob walker: none may panic or over-allocate (the count guards validate
// element counts against remaining payload before any make), and a record
// that decodes must re-encode into something that decodes to the same
// state.
func FuzzDecodeRecord(f *testing.F) {
	st := sampleSeriesState()
	f.Add(AppendSeriesRecord(nil, &st))
	f.Add(AppendCloseRecord(nil, -7))
	f.Add(AppendMetaRecord(nil, &Meta{SeriesCounter: 9, ModelVersion: 2, ModelJSON: []byte(`{}`)}))
	mr := sampleMonitorRecord()
	f.Add(AppendMonitorRecord(nil, &mr))
	var blob []byte
	blob = AppendBlobRecord(blob, AppendCloseRecord(nil, 1))
	blob = AppendBlobRecord(blob, AppendMetaRecord(nil, &Meta{SeriesCounter: 1, ModelVersion: 1}))
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{kindSeries})
	f.Add([]byte{kindMonitor, 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		var ss core.SeriesState
		if err := DecodeSeriesRecord(data, &ss); err == nil {
			re := AppendSeriesRecord(nil, &ss)
			var back core.SeriesState
			if err := DecodeSeriesRecord(re, &back); err != nil {
				t.Fatalf("re-encoded series record failed to decode: %v", err)
			}
			if !seriesStatesEqual(&ss, &back) {
				t.Fatalf("series re-encode diverged")
			}
		}
		if track, err := DecodeCloseRecord(data); err == nil {
			re := AppendCloseRecord(nil, track)
			if got, err := DecodeCloseRecord(re); err != nil || got != track {
				t.Fatalf("close re-encode: got %d, %v", got, err)
			}
		}
		var m Meta
		if err := DecodeMetaRecord(data, &m); err == nil {
			re := AppendMetaRecord(nil, &m)
			var back Meta
			if err := DecodeMetaRecord(re, &back); err != nil {
				t.Fatalf("re-encoded meta record failed to decode: %v", err)
			}
			if back.SeriesCounter != m.SeriesCounter || back.ModelVersion != m.ModelVersion ||
				!bytes.Equal(back.ModelJSON, m.ModelJSON) {
				t.Fatalf("meta re-encode diverged")
			}
		}
		var mr MonitorRecord
		if err := DecodeMonitorRecord(data, &mr); err == nil {
			re := AppendMonitorRecord(nil, &mr)
			var back MonitorRecord
			if err := DecodeMonitorRecord(re, &back); err != nil {
				t.Fatalf("re-encoded monitor record failed to decode: %v", err)
			}
			if !monitorRecordsEqual(&mr, &back) {
				t.Fatalf("monitor re-encode diverged")
			}
		}
		WalkBlob(data, func(rec []byte) error { return nil }) //nolint:errcheck // must not panic
	})
}

// FuzzWALRecover writes arbitrary bytes as a WAL file and requires the
// store to open, recover whatever frames survive scrutiny, and then accept
// fresh appends and a checkpoint on top — a corrupt log never bricks the
// store.
func FuzzWALRecover(f *testing.F) {
	// Seed: a well-formed two-frame WAL, produced by the store itself.
	dir, err := os.MkdirTemp("", "walfuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := OpenFileStore(dir)
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Append([]byte("frame-one")); err != nil {
		f.Fatal(err)
	}
	if err := s.Append([]byte("frame-two")); err != nil {
		f.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		f.Fatal(err)
	}
	s.Close()
	wal, err := os.ReadFile(filepath.Join(dir, "wal"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wal)
	f.Add(wal[:len(wal)-3])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenFileStore(dir)
		if err != nil {
			t.Fatalf("open over arbitrary wal: %v", err)
		}
		var n int
		if err := s.Recover(
			func([]byte) error { return nil },
			func(rec []byte) error { n++; return nil },
		); err != nil {
			t.Fatalf("recover over arbitrary wal: %v", err)
		}
		if err := s.Append([]byte("fresh")); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint([]byte("cp")); err != nil {
			t.Fatal(err)
		}
		s.Close()
		// The store must come back with exactly the checkpoint.
		s2, err := OpenFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		var cp []byte
		if err := s2.Recover(
			func(blob []byte) error { cp = append([]byte(nil), blob...); return nil },
			func([]byte) error { return nil },
		); err != nil {
			t.Fatal(err)
		}
		if string(cp) != "cp" {
			t.Fatalf("checkpoint after recovery cycle = %q", cp)
		}
	})
}
