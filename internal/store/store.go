// store.go defines the Store contract — what the checkpointer needs from a
// persistence backend — and the in-memory backend (tests, benchmarks, and
// deployments that want restore semantics without a disk, e.g. snapshot
// shipping over a side channel).
// The package is clock-deterministic by contract: see //tauw:seam and the
// codec discipline mark //tauw:codec below.
//
//tauw:seam
//tauw:codec
package store

import (
	"errors"
	"sync"
)

// Store persists the durability layer's records: an append-only log of
// incremental records (the WAL) compacted by periodic full checkpoints.
// Implementations must be safe for one writer (the checkpointer serialises
// Append/Checkpoint/Sync) racing Close, and Recover is only called before
// the writer starts.
type Store interface {
	// Append adds one record to the log. The payload is owned by the caller
	// and copied (or written out) before Append returns. A failed Append
	// must leave the log as if the call never happened — no partial frame a
	// later successful append could land behind — which is what makes the
	// checkpointer's retry-on-transient-failure policy sound (FileStore
	// repairs a torn write by truncating back to the known-good size).
	Append(payload []byte) error
	// Checkpoint atomically replaces the checkpoint with blob and clears
	// the log: after a successful Checkpoint, Recover yields the new blob
	// and none of the previously appended records. The replacement must be
	// crash-atomic — a crash mid-Checkpoint recovers either the old state
	// (checkpoint + log) or the new blob, never a mixture.
	Checkpoint(blob []byte) error
	// Sync makes everything appended so far durable. Append may buffer;
	// records are only guaranteed to survive a crash once Sync returns.
	Sync() error
	// Recover replays the persisted state: the checkpoint blob (if any)
	// first, then every surviving log record in append order. Implementations
	// discard torn log tails (a crash mid-Append) silently; a corrupt
	// checkpoint is an error — it means durable state exists but cannot be
	// trusted, and the caller decides whether to start empty.
	Recover(checkpoint func(blob []byte) error, record func(payload []byte) error) error
	// LogSize reports the bytes appended to the log since the last
	// checkpoint — the compaction trigger.
	LogSize() int64
	// Close releases the backend. The Store is unusable afterwards.
	Close() error
}

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("store: closed")

// MemStore is the in-memory Store: records and checkpoint live on the
// heap, Sync is a no-op. Its Recover replays exactly what a FileStore
// would after a clean shutdown, so differential tests can run the full
// checkpoint/recover cycle without touching a disk.
type MemStore struct {
	mu         sync.Mutex
	closed     bool
	checkpoint []byte
	log        [][]byte
	logBytes   int64
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (s *MemStore) Append(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.log = append(s.log, append([]byte(nil), payload...))
	s.logBytes += int64(len(payload))
	return nil
}

// Checkpoint implements Store.
func (s *MemStore) Checkpoint(blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.checkpoint = append(s.checkpoint[:0], blob...)
	s.log = s.log[:0]
	s.logBytes = 0
	return nil
}

// Sync implements Store (memory is as durable as it gets).
func (s *MemStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Recover implements Store.
func (s *MemStore) Recover(checkpoint func([]byte) error, record func([]byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.checkpoint) > 0 {
		if err := checkpoint(s.checkpoint); err != nil {
			return err
		}
	}
	for _, rec := range s.log {
		if err := record(rec); err != nil {
			return err
		}
	}
	return nil
}

// LogSize implements Store.
func (s *MemStore) LogSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logBytes
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
