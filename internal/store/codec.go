// Package store is the durability layer: a compact versioned binary
// encoding of the wrapper pool's restorable state (internal/core and
// internal/monitor export it as flat snapshot structs), a Store contract
// for persisting it, and the write-behind checkpointer that ties the two
// together without touching the serving hot path.
//
// codec.go defines the record encoding, in the same discipline as the wire
// codec: reflection-free append-based encoders over caller-owned buffers,
// decoders that validate every length against the remaining payload before
// allocating, floats as IEEE-754 bits (snapshot/restore must be
// bit-exact), and varints for the counters (most are small; series totals
// and LSNs grow without bound). Every record starts with a kind byte, so a
// log is a self-describing sequence and future kinds extend the format
// without renumbering.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/monitor"
)

// Record kinds. A close record retires a track; a meta record carries the
// pool-level scalars (series counter, serving model); a monitor record
// carries the feedback-side accumulators.
const (
	kindSeries  = 0x01
	kindClose   = 0x02
	kindMeta    = 0x03
	kindMonitor = 0x04
)

var (
	errShortRecord = errors.New("store: truncated record")
	errIntRange    = errors.New("store: integer field out of range")
)

// ---------------------------------------------------------- primitives --

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// decoder is a cursor over one record with a sticky error: a short or
// malformed field poisons every subsequent read, so call sites read
// straight through and check err once.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(errShortRecord)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail(errShortRecord)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail(errShortRecord)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail(errShortRecord)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) bytes() []byte {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v
}

// count reads an element count and validates it against the bytes left:
// every element occupies at least minBytes, so a count that could not
// possibly be backed by the payload is rejected before anything is
// allocated (the fuzz targets lean on this).
func (d *decoder) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)/minBytes) {
		d.fail(fmt.Errorf("%w: count %d exceeds %d remaining bytes", errShortRecord, v, len(d.b)))
		return 0
	}
	return int(v)
}

// int63 narrows a uvarint into a non-negative int.
func (d *decoder) int63() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > math.MaxInt64 {
		d.fail(errIntRange)
		return 0
	}
	return int(v)
}

// intv narrows a varint into an int.
func (d *decoder) intv() int {
	return int(d.varint())
}

// finish rejects trailing garbage — records are exact, not prefixes.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("store: %d trailing bytes after record", len(d.b))
	}
	return nil
}

// ------------------------------------------------------- series record --

// AppendSeriesRecord encodes one track snapshot.
func AppendSeriesRecord(dst []byte, st *core.SeriesState) []byte {
	dst = append(dst, kindSeries)
	dst = appendVarint(dst, int64(st.Track))
	dst = appendUvarint(dst, uint64(st.Total))
	dst = appendUvarint(dst, uint64(len(st.Records)))
	for i := range st.Records {
		r := &st.Records[i]
		dst = appendVarint(dst, int64(r.Outcome))
		dst = appendF64(dst, r.Uncertainty)
		dst = appendUvarint(dst, uint64(len(r.Quality)))
		for _, q := range r.Quality {
			dst = appendF64(dst, q)
		}
	}
	dst = appendUvarint(dst, uint64(len(st.Stats)))
	for i := range st.Stats {
		s := &st.Stats[i]
		dst = appendVarint(dst, int64(s.Outcome))
		dst = appendUvarint(dst, uint64(s.Count))
		dst = appendF64(dst, s.Certainty)
	}
	if st.HasTally {
		dst = append(dst, 1)
		dst = appendUvarint(dst, st.Tally.Clock)
		dst = appendUvarint(dst, uint64(len(st.Tally.Votes)))
		for i := range st.Tally.Votes {
			v := &st.Tally.Votes[i]
			dst = appendVarint(dst, int64(v.Outcome))
			dst = appendUvarint(dst, uint64(v.Count))
			dst = appendUvarint(dst, v.Last)
		}
	} else {
		dst = append(dst, 0)
	}
	dst = appendUvarint(dst, uint64(len(st.Ring)))
	for i := range st.Ring {
		e := &st.Ring[i]
		dst = appendUvarint(dst, e.Step)
		dst = appendF64(dst, e.Uncertainty)
		dst = appendUvarint(dst, e.ModelVersion)
		dst = appendVarint(dst, int64(e.Fused))
		dst = appendVarint(dst, int64(e.Leaf))
		taken := byte(0)
		if e.Taken {
			taken = 1
		}
		dst = append(dst, taken)
	}
	return dst
}

// DecodeSeriesRecord decodes a series record into st, reusing its slice
// capacity (each record's Quality gets its own backing — restore is a cold
// path and the wrapper takes ownership).
func DecodeSeriesRecord(rec []byte, st *core.SeriesState) error {
	if len(rec) < 1 || rec[0] != kindSeries {
		return fmt.Errorf("store: not a series record")
	}
	d := decoder{b: rec[1:]}
	st.Track = d.intv()
	st.Total = d.int63()
	nrec := d.count(10) // varint + f64 + count per record at minimum
	st.Records = st.Records[:0]
	for i := 0; i < nrec && d.err == nil; i++ {
		var r core.Record
		r.Outcome = d.intv()
		r.Uncertainty = d.f64()
		if nq := d.count(8); nq > 0 && d.err == nil {
			r.Quality = make([]float64, nq)
			for j := range r.Quality {
				r.Quality[j] = d.f64()
			}
		}
		st.Records = append(st.Records, r)
	}
	nstats := d.count(3)
	st.Stats = st.Stats[:0]
	for i := 0; i < nstats && d.err == nil; i++ {
		st.Stats = append(st.Stats, core.OutcomeStat{
			Outcome:   d.intv(),
			Count:     d.int63(),
			Certainty: d.f64(),
		})
	}
	st.HasTally = d.byte() != 0
	st.Tally.Clock = 0
	st.Tally.Votes = st.Tally.Votes[:0]
	if st.HasTally {
		st.Tally.Clock = d.uvarint()
		nvotes := d.count(3)
		for i := 0; i < nvotes && d.err == nil; i++ {
			st.Tally.Votes = append(st.Tally.Votes, fusion.TallyVote{
				Outcome: d.intv(),
				Count:   d.int63(),
				Last:    d.uvarint(),
			})
		}
	}
	nring := d.count(13)
	st.Ring = st.Ring[:0]
	for i := 0; i < nring && d.err == nil; i++ {
		st.Ring = append(st.Ring, core.ProvEntry{
			Step:         d.uvarint(),
			Uncertainty:  d.f64(),
			ModelVersion: d.uvarint(),
			Fused:        int32(d.intv()),
			Leaf:         int32(d.intv()),
			Taken:        d.byte() != 0,
		})
	}
	return d.finish()
}

// -------------------------------------------------------- close record --

// AppendCloseRecord encodes a track retirement.
func AppendCloseRecord(dst []byte, track int) []byte {
	dst = append(dst, kindClose)
	return appendVarint(dst, int64(track))
}

// DecodeCloseRecord decodes a close record.
func DecodeCloseRecord(rec []byte) (track int, err error) {
	if len(rec) < 1 || rec[0] != kindClose {
		return 0, fmt.Errorf("store: not a close record")
	}
	d := decoder{b: rec[1:]}
	track = d.intv()
	return track, d.finish()
}

// --------------------------------------------------------- meta record --

// Meta carries the pool-level scalars: the series-id counter and the
// serving model. ModelJSON is empty while the pool still serves its
// construction-time model (version 1) — that model is rebuilt from the
// calibration preset at startup, so only hot-swapped revisions persist.
type Meta struct {
	SeriesCounter uint64
	ModelVersion  uint64
	ModelJSON     []byte
}

// AppendMetaRecord encodes the pool-level scalars.
func AppendMetaRecord(dst []byte, m *Meta) []byte {
	dst = append(dst, kindMeta)
	dst = appendUvarint(dst, m.SeriesCounter)
	dst = appendUvarint(dst, m.ModelVersion)
	dst = appendUvarint(dst, uint64(len(m.ModelJSON)))
	return append(dst, m.ModelJSON...)
}

// DecodeMetaRecord decodes a meta record; ModelJSON aliases rec.
func DecodeMetaRecord(rec []byte, m *Meta) error {
	if len(rec) < 1 || rec[0] != kindMeta {
		return fmt.Errorf("store: not a meta record")
	}
	d := decoder{b: rec[1:]}
	m.SeriesCounter = d.uvarint()
	m.ModelVersion = d.uvarint()
	m.ModelJSON = d.bytes()
	return d.finish()
}

// ------------------------------------------------------ monitor record --

// MonitorRecord bundles the feedback-side state checkpointed together: the
// reliability accumulators (optional — tauserve can run unmonitored), the
// per-leaf recalibration evidence (optional), and the pool's step
// counters.
type MonitorRecord struct {
	HasMonitor bool
	Monitor    monitor.MonitorState
	HasLeaves  bool
	Leaves     monitor.LeafState
	PoolStats  core.PoolStats
}

// AppendMonitorRecord encodes the feedback-side state.
func AppendMonitorRecord(dst []byte, r *MonitorRecord) []byte {
	dst = append(dst, kindMonitor)
	if r.HasMonitor {
		dst = append(dst, 1)
		m := &r.Monitor
		dst = appendUvarint(dst, uint64(m.Shards))
		dst = appendUvarint(dst, uint64(m.Window))
		dst = appendUvarint(dst, uint64(m.Bins))
		dst = appendUvarint(dst, uint64(len(m.ShardStates)))
		for i := range m.ShardStates {
			sh := &m.ShardStates[i]
			dst = appendUvarint(dst, sh.N)
			dst = appendUvarint(dst, sh.Correct)
			dst = appendF64(dst, sh.BrierSum)
			dst = appendUvarint(dst, uint64(len(sh.Bins)))
			for j := range sh.Bins {
				dst = appendUvarint(dst, sh.Bins[j].Count)
				dst = appendUvarint(dst, sh.Bins[j].Errors)
				dst = appendF64(dst, sh.Bins[j].USum)
			}
			dst = appendUvarint(dst, uint64(len(sh.Window)))
			for _, se := range sh.Window {
				dst = appendF64(dst, se)
			}
			dst = appendF64(dst, sh.WinSum)
		}
		dr := &m.Drift
		dst = appendUvarint(dst, uint64(dr.N))
		dst = appendF64(dst, dr.Mean)
		dst = appendF64(dst, dr.MT)
		dst = appendF64(dst, dr.MinMT)
		dst = appendUvarint(dst, uint64(dr.Alarms))
		active := byte(0)
		if dr.Active {
			active = 1
		}
		dst = append(dst, active)
	} else {
		dst = append(dst, 0)
	}
	if r.HasLeaves {
		dst = append(dst, 1)
		dst = appendUvarint(dst, uint64(len(r.Leaves.Leaves)))
		for i := range r.Leaves.Leaves {
			dst = appendUvarint(dst, r.Leaves.Leaves[i].Count)
			dst = appendUvarint(dst, r.Leaves.Leaves[i].Events)
		}
		dst = appendUvarint(dst, r.Leaves.Unattributed.Count)
		dst = appendUvarint(dst, r.Leaves.Unattributed.Events)
	} else {
		dst = append(dst, 0)
	}
	dst = appendUvarint(dst, r.PoolStats.UncertaintyFP)
	nonzero := 0
	for _, c := range r.PoolStats.Outcomes {
		if c > 0 {
			nonzero++
		}
	}
	dst = appendUvarint(dst, uint64(nonzero))
	for b, c := range r.PoolStats.Outcomes {
		if c > 0 {
			dst = appendUvarint(dst, uint64(b))
			dst = appendUvarint(dst, c)
		}
	}
	return dst
}

// DecodeMonitorRecord decodes a monitor record into r, reusing its slice
// capacity.
func DecodeMonitorRecord(rec []byte, r *MonitorRecord) error {
	if len(rec) < 1 || rec[0] != kindMonitor {
		return fmt.Errorf("store: not a monitor record")
	}
	d := decoder{b: rec[1:]}
	r.HasMonitor = d.byte() != 0
	if r.HasMonitor {
		m := &r.Monitor
		m.Shards = d.int63()
		m.Window = d.int63()
		m.Bins = d.int63()
		nsh := d.count(11)
		if cap(m.ShardStates) < nsh {
			m.ShardStates = make([]monitor.ShardState, nsh)
		}
		m.ShardStates = m.ShardStates[:nsh]
		for i := 0; i < nsh && d.err == nil; i++ {
			sh := &m.ShardStates[i]
			sh.N = d.uvarint()
			sh.Correct = d.uvarint()
			sh.BrierSum = d.f64()
			nbins := d.count(10)
			sh.Bins = sh.Bins[:0]
			for j := 0; j < nbins && d.err == nil; j++ {
				sh.Bins = append(sh.Bins, monitor.BinState{
					Count:  d.uvarint(),
					Errors: d.uvarint(),
					USum:   d.f64(),
				})
			}
			nwin := d.count(8)
			sh.Window = sh.Window[:0]
			for j := 0; j < nwin && d.err == nil; j++ {
				sh.Window = append(sh.Window, d.f64())
			}
			sh.WinSum = d.f64()
		}
		m.Drift.N = d.int63()
		m.Drift.Mean = d.f64()
		m.Drift.MT = d.f64()
		m.Drift.MinMT = d.f64()
		m.Drift.Alarms = d.int63()
		m.Drift.Active = d.byte() != 0
	} else {
		r.Monitor = monitor.MonitorState{ShardStates: r.Monitor.ShardStates[:0]}
	}
	r.HasLeaves = d.byte() != 0
	r.Leaves.Leaves = r.Leaves.Leaves[:0]
	r.Leaves.Unattributed = monitor.LeafCounts{}
	if r.HasLeaves {
		nleaves := d.count(2)
		for i := 0; i < nleaves && d.err == nil; i++ {
			r.Leaves.Leaves = append(r.Leaves.Leaves, monitor.LeafCounts{
				Count:  d.uvarint(),
				Events: d.uvarint(),
			})
		}
		r.Leaves.Unattributed.Count = d.uvarint()
		r.Leaves.Unattributed.Events = d.uvarint()
	}
	r.PoolStats.UncertaintyFP = d.uvarint()
	clear(r.PoolStats.Outcomes[:])
	npairs := d.count(2)
	for i := 0; i < npairs && d.err == nil; i++ {
		b := d.int63()
		c := d.uvarint()
		if d.err == nil {
			if b >= len(r.PoolStats.Outcomes) {
				return fmt.Errorf("store: outcome bucket %d outside pool range", b)
			}
			r.PoolStats.Outcomes[b] = c
		}
	}
	return d.finish()
}

// -------------------------------------------------------------- blobs --

// AppendBlobRecord frames one record inside a checkpoint blob (uvarint
// length + record), so a checkpoint is one store payload holding many
// records.
func AppendBlobRecord(dst, rec []byte) []byte {
	dst = appendUvarint(dst, uint64(len(rec)))
	return append(dst, rec...)
}

// WalkBlob visits the records of a checkpoint blob in order.
func WalkBlob(blob []byte, visit func(rec []byte) error) error {
	for len(blob) > 0 {
		n, w := binary.Uvarint(blob)
		if w <= 0 || n > uint64(len(blob)-w) {
			return fmt.Errorf("store: truncated checkpoint blob")
		}
		if err := visit(blob[w : w+int(n) : w+int(n)]); err != nil {
			return err
		}
		blob = blob[w+int(n):]
	}
	return nil
}

// RecordKind peeks at a record's kind byte.
func RecordKind(rec []byte) (byte, error) {
	if len(rec) == 0 {
		return 0, errShortRecord
	}
	return rec[0], nil
}
