package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// recoverAll replays a store into ([]checkpoint, []records) copies.
func recoverAll(t *testing.T, s Store) (cp []byte, recs [][]byte) {
	t.Helper()
	err := s.Recover(
		func(blob []byte) error {
			cp = append([]byte(nil), blob...)
			return nil
		},
		func(rec []byte) error {
			recs = append(recs, append([]byte(nil), rec...))
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cp, recs
}

func TestFileStoreAppendRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{{1}, {2, 3}, bytes.Repeat([]byte{4}, 1000), {}}
	for _, p := range payloads {
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.LogSize() <= 0 {
		t.Fatalf("log size %d after appends", s.LogSize())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cp, recs := recoverAll(t, s2)
	if cp != nil {
		t.Fatalf("unexpected checkpoint %q", cp)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(recs[i], payloads[i]) {
			t.Fatalf("record %d: got %v, want %v", i, recs[i], payloads[i])
		}
	}
}

func TestFileStoreCheckpointClearsLog(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint([]byte("blob-1")); err != nil {
		t.Fatal(err)
	}
	if s.LogSize() != 0 {
		t.Fatalf("log size %d after checkpoint", s.LogSize())
	}
	if err := s.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cp, recs := recoverAll(t, s2)
	if string(cp) != "blob-1" {
		t.Fatalf("checkpoint %q, want blob-1", cp)
	}
	if len(recs) != 1 || string(recs[0]) != "tail" {
		t.Fatalf("post-checkpoint records %q, want [tail]", recs)
	}
}

// TestFileStoreTornTail simulates a crash mid-append: a WAL whose last
// frame is cut anywhere in header or payload recovers every complete frame
// and silently drops the tail — and the next writer reuses the truncated
// position.
func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("keep-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("keep-2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("torn-away")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	walPath := filepath.Join(dir, "wal")
	whole, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(whole) - (frameHeaderSize + len("torn-away"))
	for _, cut := range []int{
		lastStart + 1,                   // torn header
		lastStart + frameHeaderSize,     // header only, no payload
		lastStart + frameHeaderSize + 3, // torn payload
		len(whole) - 1,                  // one byte short
	} {
		if err := os.WriteFile(walPath, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := OpenFileStore(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		_, recs := recoverAll(t, s2)
		if len(recs) != 2 || string(recs[0]) != "keep-1" || string(recs[1]) != "keep-2" {
			t.Fatalf("cut %d: recovered %q, want the two complete frames", cut, recs)
		}
		// Appending after a torn tail must produce a clean, fully
		// recoverable log again.
		if err := s2.Append([]byte("after")); err != nil {
			t.Fatal(err)
		}
		if err := s2.Sync(); err != nil {
			t.Fatal(err)
		}
		s2.Close()
		s3, err := OpenFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, recs = recoverAll(t, s3)
		if len(recs) != 3 || string(recs[2]) != "after" {
			t.Fatalf("cut %d: after re-append recovered %q", cut, recs)
		}
		s3.Close()
		if err := os.WriteFile(walPath, whole, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileStoreCorruptFrameCRC flips a payload bit in the middle of the
// WAL: the corrupt frame and everything after it are discarded (a CRC
// mismatch is indistinguishable from a torn write, and later frames may
// depend on the lost one).
func TestFileStoreCorruptFrameCRC(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"alpha", "beta", "gamma"} {
		if err := s.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	walPath := filepath.Join(dir, "wal")
	whole, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the second frame's payload ("beta").
	corrupt := append([]byte(nil), whole...)
	corrupt[frameHeaderSize+len("alpha")+frameHeaderSize] ^= 0x80
	if err := os.WriteFile(walPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, recs := recoverAll(t, s2)
	if len(recs) != 1 || string(recs[0]) != "alpha" {
		t.Fatalf("recovered %q, want only the frame before the corruption", recs)
	}
}

// TestFileStoreCrashBetweenRenameAndTruncate covers the checkpoint's one
// non-atomic seam: the checkpoint file has been renamed into place but the
// process dies before the WAL is truncated. The stale WAL frames carry LSNs
// at or below the checkpoint's and must be skipped on recovery.
func TestFileStoreCrashBetweenRenameAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("pre-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint([]byte("cp")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Resurrect the pre-checkpoint WAL contents, as if truncate never ran.
	if err := os.WriteFile(filepath.Join(dir, "wal"), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp, recs := recoverAll(t, s2)
	if string(cp) != "cp" {
		t.Fatalf("checkpoint %q, want cp", cp)
	}
	if len(recs) != 0 {
		t.Fatalf("stale pre-checkpoint frames replayed: %q", recs)
	}
	// New appends after the recovery must carry LSNs above the checkpoint
	// and survive.
	if err := s2.Append([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	cp, recs = recoverAll(t, s3)
	if string(cp) != "cp" || len(recs) != 1 || string(recs[0]) != "new" {
		t.Fatalf("after re-append: checkpoint %q records %q", cp, recs)
	}
}

func TestFileStoreCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint([]byte("good")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	cpPath := filepath.Join(dir, "checkpoint")
	blob, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff
	if err := os.WriteFile(cpPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	// Open tolerates the corruption (the server may still decide to start
	// empty); Recover surfaces it.
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	err = s2.Recover(func([]byte) error { return nil }, func([]byte) error { return nil })
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("recover over corrupt checkpoint = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestFileStoreClosedOps(t *testing.T) {
	s, err := OpenFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("append on closed = %v", err)
	}
	if err := s.Checkpoint([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("checkpoint on closed = %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("sync on closed = %v", err)
	}
}

func TestMemStoreSemantics(t *testing.T) {
	s := NewMemStore()
	if err := s.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint([]byte("cp")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if s.LogSize() != 1 {
		t.Fatalf("log size %d, want 1", s.LogSize())
	}
	cp, recs := recoverAll(t, s)
	if string(cp) != "cp" || len(recs) != 1 || string(recs[0]) != "b" {
		t.Fatalf("recovered checkpoint %q records %q", cp, recs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("c")); !errors.Is(err, ErrClosed) {
		t.Errorf("append on closed = %v", err)
	}
}
