package core

import (
	"errors"
	"fmt"

	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/uw"
)

// Result is the runtime output of a timeseries-aware wrapper step.
type Result struct {
	// Fused is the information-fused outcome o_i^(if).
	Fused int
	// Uncertainty is the dependable uncertainty of the fused outcome.
	Uncertainty float64
	// Stateless is the per-step base-wrapper estimate for the
	// momentaneous outcome (u_i).
	Stateless uw.Estimate
	// TAQF holds the four timeseries-aware quality factors computed at
	// this step (indexed Ratio-1..Certainty-1).
	TAQF [4]float64
	// SeriesLen is the buffered series length including this step: the
	// window the taQF are computed over. Under a BufferLimit it saturates
	// at the limit once the ring starts evicting.
	SeriesLen int
	// TotalSteps is the number of steps observed since the series began,
	// including any a full ring buffer has evicted. TotalSteps ==
	// SeriesLen while no eviction has happened; the difference is the
	// number of evicted steps.
	TotalSteps int
	// TAQIMLeaf is the timeseries-aware quality-impact-model region that
	// produced Uncertainty — the estimate's provenance, the taQIM
	// counterpart of Stateless.LeafID. It is -1 when no taQIM was involved
	// (the uncertainty-fusion baselines).
	TAQIMLeaf int
	// ModelVersion identifies the taQIM revision that produced Uncertainty
	// when the step ran through a WrapperPool (versions start at 1 and
	// increment on every hot-swap, see WrapperPool.SwapModel). Standalone
	// wrappers have no version registry and report 0.
	ModelVersion uint64
}

// Config assembles a timeseries-aware wrapper.
type Config struct {
	// Features selects which taQF feed the taQIM (default: all four).
	Features []Feature
	// Fuser is the information-fusion rule (default: majority vote with
	// most-recent tie-break, as in the paper).
	Fuser fusion.OutcomeFuser
	// BufferLimit caps the timeseries buffer (0 = unbounded).
	BufferLimit int
}

func (c Config) withDefaults() Config {
	if len(c.Features) == 0 {
		c.Features = AllFeatures()
	}
	if c.Fuser == nil {
		c.Fuser = fusion.MajorityVote{}
	}
	return c
}

// Wrapper is the timeseries-aware uncertainty wrapper (taUW): the base
// stateless wrapper supplies per-step estimates, the buffer accumulates the
// series, the fusion rule improves the outcome, and the taQIM turns
// stateless factors plus taQF into a dependable uncertainty for the fused
// outcome. It is not safe for concurrent use.
//
// When the fusion rule has an incremental form (fusion.Incremental — the
// default majority vote does), Step runs a fast path that is O(1) in the
// series length and allocation-free in steady state: the fused outcome comes
// from a running tally, the taQF from the buffer's running statistics, and
// the taQIM row is assembled into a reused scratch slice. Other fusers fall
// back to the reference full-series path.
type Wrapper struct {
	base  *uw.Wrapper
	taqim *uw.QualityImpactModel
	fuser fusion.OutcomeFuser
	feats []Feature
	buf   *Buffer
	// tally is the incremental fusion state (nil = reference path).
	tally fusion.Tally
	// row is the scratch slice taQIM input rows are assembled into.
	row []float64
}

// NewWrapper assembles a taUW from a fitted base wrapper and a calibrated
// timeseries-aware quality impact model (see FitTimeseriesQIM). The feature
// subset must match the one used to fit the taQIM.
func NewWrapper(base *uw.Wrapper, taqim *uw.QualityImpactModel, cfg Config) (*Wrapper, error) {
	if base == nil {
		return nil, errors.New("core: base wrapper is required")
	}
	if taqim == nil {
		return nil, errors.New("core: timeseries-aware quality impact model is required")
	}
	cfg = cfg.withDefaults()
	for _, f := range cfg.Features {
		if f < Ratio || f > Certainty {
			return nil, fmt.Errorf("core: unknown feature %d", int(f))
		}
	}
	buf, err := NewBuffer(cfg.BufferLimit)
	if err != nil {
		return nil, err
	}
	w := &Wrapper{
		base:  base,
		taqim: taqim,
		fuser: cfg.Fuser,
		feats: append([]Feature(nil), cfg.Features...),
		buf:   buf,
	}
	if inc, ok := cfg.Fuser.(fusion.Incremental); ok {
		w.tally = inc.NewTally() // nil when the configuration has no incremental form
	}
	return w, nil
}

// NewSeries clears the timeseries buffer; call it when the tracking
// component reports that subsequent predictions relate to a new physical
// object.
func (w *Wrapper) NewSeries() {
	w.buf.Reset()
	if w.tally != nil {
		w.tally.Reset()
	}
}

// SeriesLen returns the current buffered series length.
func (w *Wrapper) SeriesLen() int { return w.buf.Len() }

// TotalSteps returns the number of steps observed since the series began,
// including steps a full ring buffer has evicted.
func (w *Wrapper) TotalSteps() int { return w.buf.TotalSteps() }

// Step processes one timestep: the momentaneous DDM outcome and the
// stateless quality factors observed with it. It returns the fused outcome
// and its dependable uncertainty.
func (w *Wrapper) Step(outcome int, quality []float64) (Result, error) {
	return w.StepScoped(outcome, quality, nil)
}

// StepScoped is Step with scope factors: when the base wrapper carries a
// scope-compliance model (e.g. GPS inside the target application scope), the
// per-step estimate combines input-quality and scope uncertainty, and an
// out-of-scope frame saturates the fused uncertainty at 1 — the deployment
// behaviour of the full framework. With a nil scope model the scope factors
// are ignored.
func (w *Wrapper) StepScoped(outcome int, quality, scope []float64) (Result, error) {
	return w.stepScopedModel(w.taqim, outcome, quality, scope)
}

// stepScopedModel is StepScoped parameterised by the taQIM revision scoring
// this step. The pool's hot-swap path loads the current model once per step
// and passes it here, so every step sees exactly one model revision even
// while a swap lands concurrently; standalone wrappers pass their own taqim.
// The model must share the construction-time feature layout
// (SwapModel guards this).
func (w *Wrapper) stepScopedModel(taqim *uw.QualityImpactModel, outcome int, quality, scope []float64) (Result, error) {
	est, err := w.base.Estimate(outcome, quality, scope)
	if err != nil {
		return Result{}, fmt.Errorf("core: base estimate: %w", err)
	}
	evicted, wasEvicted := w.buf.Append(Record{Outcome: outcome, Uncertainty: est.Uncertainty, Quality: quality})
	var fused int
	var taqf [4]float64
	if w.tally != nil {
		// Fast path: O(1) in the series length, allocation-free in steady
		// state. Estimate guarantees the uncertainty the tally sees equals
		// the one the buffer stored (both in [0,1]).
		if wasEvicted {
			w.tally.Evict(evicted.Outcome, evicted.Uncertainty)
		}
		w.tally.Push(outcome, est.Uncertainty)
		fused, err = w.tally.Fused()
		if err != nil {
			return Result{}, fmt.Errorf("core: information fusion: %w", err)
		}
		taqf, err = w.buf.FeaturesAt(fused)
		if err != nil {
			return Result{}, err
		}
	} else {
		// Reference path for fusers without an incremental form: replay the
		// buffered series through the fuser and the taQF oracle. Production
		// pools always run the tally path above; the replay's allocations are
		// a deliberate trade for keeping the oracle byte-for-byte simple.
		//tauwcheck:ignore hotpath reference replay branch, never taken by pooled wrappers
		outcomes := w.buf.Outcomes()
		//tauwcheck:ignore hotpath reference replay branch, never taken by pooled wrappers
		us := w.buf.Uncertainties()
		fused, err = w.fuser.Fuse(outcomes, us)
		if err != nil {
			return Result{}, fmt.Errorf("core: information fusion: %w", err)
		}
		//tauwcheck:ignore hotpath reference replay branch, never taken by pooled wrappers
		taqf, err = ComputeFeatures(outcomes, us, fused)
		if err != nil {
			return Result{}, err
		}
	}
	row := w.assembleRow(quality, taqf)
	u, leaf, err := taqim.Predict(row)
	if err != nil {
		return Result{}, fmt.Errorf("core: timeseries-aware estimate: %w", err)
	}
	// Scope-compliance uncertainty is independent of the timeseries
	// evidence: combine it multiplicatively, as the base framework does.
	if us := est.ScopeUncertainty; us > 0 {
		u = 1 - (1-u)*(1-us)
		if u > 1 {
			u = 1
		}
	}
	return Result{
		Fused:       fused,
		Uncertainty: u,
		Stateless:   est,
		TAQF:        taqf,
		SeriesLen:   w.buf.Len(),
		TotalSteps:  w.buf.TotalSteps(),
		TAQIMLeaf:   leaf,
	}, nil
}

// assembleRow concatenates the stateless quality factors with the selected
// taQF — the input layout of the taQIM — into the wrapper's scratch slice,
// which is overwritten by the next step. The feature subset was validated at
// construction, so selection cannot fail.
func (w *Wrapper) assembleRow(quality []float64, taqf [4]float64) []float64 {
	row := w.row[:0]
	row = append(row, quality...)
	for _, f := range w.feats {
		row = append(row, taqf[f-1])
	}
	w.row = row
	return row
}

// TAQIM exposes the timeseries-aware quality impact model for inspection
// (rules, importances).
func (w *Wrapper) TAQIM() *uw.QualityImpactModel { return w.taqim }

// Base exposes the stateless wrapper.
func (w *Wrapper) Base() *uw.Wrapper { return w.base }

// UFWrapper runs the same information-fusion pipeline but estimates the
// joint uncertainty with one of the uncertainty-fusion baselines (naïve,
// opportune, worst-case, or the timeseries-unaware pass-through) instead of
// a taQIM. It exists to reproduce the paper's comparisons and to let
// deployments choose a baseline at runtime. Uncertainty fusion consumes the
// full uncertainty series, so UFWrapper has no O(1) fast path.
type UFWrapper struct {
	base  *uw.Wrapper
	fuser fusion.OutcomeFuser
	uf    fusion.UncertaintyFuser
	buf   *Buffer
}

// NewUFWrapper assembles an uncertainty-fusion baseline wrapper.
func NewUFWrapper(base *uw.Wrapper, uf fusion.UncertaintyFuser, cfg Config) (*UFWrapper, error) {
	if base == nil {
		return nil, errors.New("core: base wrapper is required")
	}
	if uf == nil {
		return nil, errors.New("core: uncertainty fuser is required")
	}
	cfg = cfg.withDefaults()
	buf, err := NewBuffer(cfg.BufferLimit)
	if err != nil {
		return nil, err
	}
	return &UFWrapper{base: base, fuser: cfg.Fuser, uf: uf, buf: buf}, nil
}

// NewSeries clears the timeseries buffer.
func (w *UFWrapper) NewSeries() { w.buf.Reset() }

// SeriesLen returns the current buffered series length.
func (w *UFWrapper) SeriesLen() int { return w.buf.Len() }

// Step processes one timestep under the baseline uncertainty-fusion rule.
func (w *UFWrapper) Step(outcome int, quality []float64) (Result, error) {
	est, err := w.base.Estimate(outcome, quality, nil)
	if err != nil {
		return Result{}, fmt.Errorf("core: base estimate: %w", err)
	}
	w.buf.Append(Record{Outcome: outcome, Uncertainty: est.Uncertainty, Quality: quality})
	outcomes := w.buf.Outcomes()
	us := w.buf.Uncertainties()
	fused, err := w.fuser.Fuse(outcomes, us)
	if err != nil {
		return Result{}, fmt.Errorf("core: information fusion: %w", err)
	}
	u, err := w.uf.Fuse(us)
	if err != nil {
		return Result{}, fmt.Errorf("core: uncertainty fusion: %w", err)
	}
	taqf, err := ComputeFeatures(outcomes, us, fused)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Fused:       fused,
		Uncertainty: u,
		Stateless:   est,
		TAQF:        taqf,
		SeriesLen:   w.buf.Len(),
		TotalSteps:  w.buf.TotalSteps(),
		TAQIMLeaf:   -1,
	}, nil
}
