// monitor.go is the pool side of the runtime calibration-monitoring
// subsystem (see internal/monitor for the feedback-side statistics): cheap
// shard-local step accounting on the Step hot path, and a per-track
// provenance ring that lets ground-truth feedback arriving seconds later be
// joined back to the exact estimate it judges.
//
// The split is deliberate. Everything that must run on every step — counter
// bumps and one ring write — lives here, inside the locks Step already
// holds or as shard-local atomics, so monitoring adds a handful of
// nanoseconds and zero allocations to the serving path. Everything that
// only runs when ground truth arrives (windowed Brier, reliability bins,
// drift detection) lives in internal/monitor and never touches the step
// path at all.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"unsafe"

	"github.com/iese-repro/tauw/internal/trace"
)

// NumOutcomeBuckets is the number of distinct outcome classes the per-shard
// step counters resolve: fused outcomes in [0, NumOutcomeBuckets) each get
// their own counter, everything else (including negative outcomes) lands in
// a shared overflow bucket reported as outcome -1. The bound keeps the
// counters a fixed-size array of atomics — allocation-free and O(1) —
// instead of a map that would need a lock on the hot path.
const NumOutcomeBuckets = 64

// uncertaintyScale is the fixed-point scale of the per-shard uncertainty
// sum: uncertainties in [0,1] are accumulated as integers in units of
// 2^-24, so the sum is a single atomic add instead of a CAS loop. The
// quantisation error (6e-8 per step) is far below the noise floor of the
// mean-uncertainty gauge it feeds; the headroom before overflow is 2^40
// steps per shard.
const uncertaintyScale = 1 << 24

// stepStatsState is the payload of one step-accounting shard: counters
// updated on every monitored step of the tracks owning this shard. All
// fields are atomics because the counters are written after the shard lock
// has been released (only the per-track lock is still held, and tracks
// sharing a shard step concurrently). There is deliberately no total-steps
// counter: the total is the sum of the outcome buckets, so the hot path
// pays two atomic adds instead of three and the read side does the
// arithmetic.
type stepStatsState struct {
	// uncertaintyFP accumulates the served dependable uncertainties in
	// fixed point (see uncertaintyScale).
	uncertaintyFP atomic.Uint64
	// outcomes counts steps by fused outcome; the last slot is the
	// overflow bucket.
	outcomes [NumOutcomeBuckets + 1]atomic.Uint64
}

// stepStatsShard pads the counters to the shard stride so two shards'
// counters never share a cache line or an adjacent-line prefetch pair (the
// same defence trackShard uses; TestShardPadding pins it).
//
//tauw:pad=128
type stepStatsShard struct {
	stepStatsState
	_ [shardPad - unsafe.Sizeof(stepStatsState{})%shardPad]byte
}

// outcomeBucket maps a fused outcome to its counter slot.
func outcomeBucket(outcome int) int {
	if outcome >= 0 && outcome < NumOutcomeBuckets {
		return outcome
	}
	return NumOutcomeBuckets
}

// provRecord is one slot of a track's provenance ring: the estimate the
// wrapper served at the given step, kept so late ground-truth feedback can
// be joined to it. step is the 1-based TotalSteps of the series (0 marks an
// empty slot); taken marks a slot whose feedback has been consumed, so a
// duplicate report is detected instead of double-counted.
type provRecord struct {
	step        uint64
	uncertainty float64
	modelVer    uint64
	fused       int32
	taqimLeaf   int32
	taken       bool
}

// FeedbackRecord is the provenance of one served estimate, returned when
// ground-truth feedback is joined to it.
type FeedbackRecord struct {
	// Step is the 1-based step index within the series (Result.TotalSteps
	// of the step being judged).
	Step int
	// Fused is the fused outcome that was served.
	Fused int
	// Uncertainty is the dependable uncertainty that was served with it.
	Uncertainty float64
	// TAQIMLeaf is the taQIM region that produced the estimate (-1 when
	// the wrapper had no taQIM, e.g. an uncertainty-fusion baseline).
	TAQIMLeaf int
	// ModelVersion is the taQIM revision that served the estimate, so
	// feedback arriving after a hot-swap is still attributed to the model
	// that actually produced the judged uncertainty.
	ModelVersion uint64
}

// ErrFeedbackDisabled is returned by TakeFeedback on a pool built without
// monitoring (or with a zero feedback ring).
var ErrFeedbackDisabled = errors.New("core: feedback ring disabled")

// ErrStepUnavailable is returned when the requested step has no live ring
// slot: the feedback came too late (the ring has wrapped past it), the step
// was never taken, or the series was reset since.
var ErrStepUnavailable = errors.New("core: step not available for feedback")

// ErrDuplicateFeedback is returned when the step's feedback has already
// been consumed.
var ErrDuplicateFeedback = errors.New("core: duplicate feedback for step")

// WithMonitoring enables runtime calibration monitoring on the pool:
// shard-local step accounting (StepCount, UncertaintySum, OutcomeCounts)
// and, when ringSize > 0, a per-track provenance ring of the last ringSize
// estimates that ground-truth feedback is joined against (TakeFeedback).
// The ring costs about 40 bytes per slot per open track; monitoring adds a
// few atomic increments and one ring write to each step and allocates
// nothing.
func WithMonitoring(ringSize int) PoolOption {
	return func(o *poolOptions) {
		o.monitored = true
		o.ringSize = ringSize
	}
}

// recordStep folds one successful step into the monitoring state. Called
// with the track lock held (the ring belongs to the track); the shard
// counters are atomics shared by every track of the shard.
func (p *WrapperPool) recordStep(pw *pooledWrapper, shard uint64, res *Result) {
	if pw.ring != nil {
		slot := &pw.ring[(uint64(res.TotalSteps)-1)%uint64(len(pw.ring))]
		slot.step = uint64(res.TotalSteps)
		slot.uncertainty = res.Uncertainty
		slot.modelVer = res.ModelVersion
		slot.fused = int32(res.Fused)
		slot.taqimLeaf = int32(res.TAQIMLeaf)
		slot.taken = false
	}
	st := &p.stepStats[shard]
	st.uncertaintyFP.Add(uint64(res.Uncertainty * uncertaintyScale))
	st.outcomes[outcomeBucket(res.Fused)].Add(1)
}

// TakeFeedback joins one ground-truth report to the estimate the pool
// served at the given step of the track and consumes the ring slot, so a
// repeated report fails with ErrDuplicateFeedback instead of being counted
// twice. Steps older than the ring (or from a series that has since been
// reset) fail with ErrStepUnavailable — the caller decides whether late
// feedback is dropped or logged.
func (p *WrapperPool) TakeFeedback(trackID, step int) (FeedbackRecord, error) {
	rec, err := p.takeFeedback(trackID, step)
	if p.trace != nil {
		status := trace.StatusOK
		switch {
		case err == nil:
		case errors.Is(err, ErrDuplicateFeedback):
			status = trace.StatusDuplicate
		case errors.Is(err, ErrUnknownTrack):
			status = trace.StatusNotFound
		default:
			status = trace.StatusError
		}
		p.trace.Record(trace.KindFeedback, status, uint16(p.shardIndex(trackID)), uint64(trackID), uint64(step))
	}
	return rec, err
}

func (p *WrapperPool) takeFeedback(trackID, step int) (FeedbackRecord, error) {
	if !p.monitored || p.ringSize <= 0 {
		return FeedbackRecord{}, ErrFeedbackDisabled
	}
	sh := p.trackShardFor(trackID)
	sh.mu.Lock()
	pw, ok := sh.tracks[trackID]
	sh.mu.Unlock()
	if !ok {
		return FeedbackRecord{}, fmt.Errorf("%w: %d", ErrUnknownTrack, trackID)
	}
	pw.mu.Lock()
	defer pw.mu.Unlock()
	if step <= 0 {
		return FeedbackRecord{}, fmt.Errorf("%w: step %d", ErrStepUnavailable, step)
	}
	slot := &pw.ring[(uint64(step)-1)%uint64(len(pw.ring))]
	if slot.step != uint64(step) {
		return FeedbackRecord{}, fmt.Errorf("%w: step %d", ErrStepUnavailable, step)
	}
	if slot.taken {
		return FeedbackRecord{}, fmt.Errorf("%w: step %d", ErrDuplicateFeedback, step)
	}
	slot.taken = true
	pw.dirty = true
	return FeedbackRecord{
		Step:         step,
		Fused:        int(slot.fused),
		Uncertainty:  slot.uncertainty,
		TAQIMLeaf:    int(slot.taqimLeaf),
		ModelVersion: slot.modelVer,
	}, nil
}

// TakeFeedbackSeries is TakeFeedback addressed by string series id.
func (p *WrapperPool) TakeFeedbackSeries(id string, step int) (FeedbackRecord, error) {
	track, err := p.ResolveSeries(id)
	if err != nil {
		return FeedbackRecord{}, err
	}
	return p.TakeFeedback(track, step)
}

// FeedbackRingSize reports the per-track provenance ring length (0 when
// feedback is disabled).
func (p *WrapperPool) FeedbackRingSize() int {
	if !p.monitored {
		return 0
	}
	return p.ringSize
}

// StepCount returns the total number of monitored steps served by the pool
// (0 on an unmonitored pool), aggregated over the shard outcome counters on
// read so the step path never contends on a global counter.
func (p *WrapperPool) StepCount() uint64 {
	var n uint64
	for i := range p.stepStats {
		for b := 0; b <= NumOutcomeBuckets; b++ {
			n += p.stepStats[i].outcomes[b].Load()
		}
	}
	return n
}

// UncertaintySum returns the sum of the dependable uncertainties served
// with the monitored steps (fixed-point accumulation, see
// uncertaintyScale); UncertaintySum()/StepCount() is the mean served
// uncertainty.
func (p *WrapperPool) UncertaintySum() float64 {
	var fp uint64
	for i := range p.stepStats {
		fp += p.stepStats[i].uncertaintyFP.Load()
	}
	return float64(fp) / uncertaintyScale
}

// OutcomeCounts visits the per-fused-outcome step counts in ascending
// outcome order, skipping zero counters. The overflow bucket (outcomes
// outside [0, NumOutcomeBuckets)) is reported last as outcome -1. The
// aggregation allocates nothing, so a metrics scrape can sit directly on
// top of it.
func (p *WrapperPool) OutcomeCounts(visit func(outcome int, count uint64)) {
	for b := 0; b <= NumOutcomeBuckets; b++ {
		var n uint64
		for i := range p.stepStats {
			n += p.stepStats[i].outcomes[b].Load()
		}
		if n == 0 {
			continue
		}
		if b == NumOutcomeBuckets {
			visit(-1, n)
		} else {
			visit(b, n)
		}
	}
}
