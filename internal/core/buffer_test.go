package core

import (
	"testing"
	"testing/quick"
)

func TestBufferUnbounded(t *testing.T) {
	b, err := NewBuffer(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Error("fresh buffer must be empty")
	}
	if _, ok := b.Last(); ok {
		t.Error("Last on empty buffer must report !ok")
	}
	for i := 0; i < 100; i++ {
		b.Append(Record{Outcome: i, Uncertainty: float64(i) / 100})
	}
	if b.Len() != 100 {
		t.Errorf("len = %d", b.Len())
	}
	outs := b.Outcomes()
	us := b.Uncertainties()
	for i := 0; i < 100; i++ {
		if outs[i] != i {
			t.Fatalf("outcome[%d] = %d", i, outs[i])
		}
		if us[i] != float64(i)/100 {
			t.Fatalf("uncertainty[%d] = %g", i, us[i])
		}
	}
	last, ok := b.Last()
	if !ok || last.Outcome != 99 {
		t.Errorf("last = %+v, %v", last, ok)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("reset must clear")
	}
}

func TestBufferRing(t *testing.T) {
	b, err := NewBuffer(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.Append(Record{Outcome: i})
	}
	if b.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", b.Len())
	}
	outs := b.Outcomes()
	want := []int{2, 3, 4}
	for i := range want {
		if outs[i] != want[i] {
			t.Errorf("ring outcomes = %v, want %v", outs, want)
			break
		}
	}
	last, ok := b.Last()
	if !ok || last.Outcome != 4 {
		t.Errorf("ring last = %+v", last)
	}
	recs := b.Records()
	if len(recs) != 3 || recs[0].Outcome != 2 {
		t.Errorf("records = %+v", recs)
	}
	b.Reset()
	b.Append(Record{Outcome: 9})
	if got := b.Outcomes(); len(got) != 1 || got[0] != 9 {
		t.Errorf("after reset: %v", got)
	}
}

func TestBufferValidation(t *testing.T) {
	if _, err := NewBuffer(-1); err == nil {
		t.Error("negative limit must fail")
	}
	b, _ := NewBuffer(0)
	b.Append(Record{Uncertainty: -0.5})
	if us := b.Uncertainties(); us[0] != 0 {
		t.Errorf("negative uncertainty must clamp to 0, got %g", us[0])
	}
	b.Append(Record{Uncertainty: 1.5})
	if us := b.Uncertainties(); us[1] != 1 {
		t.Errorf("oversized uncertainty must clamp to 1, got %g", us[1])
	}
}

// Property: a ring buffer of limit L holding n appends always exposes the
// last min(n, L) records in order.
func TestBufferRingProperty(t *testing.T) {
	f := func(rawL, rawN uint8) bool {
		l := int(rawL%10) + 1
		n := int(rawN % 40)
		b, err := NewBuffer(l)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			b.Append(Record{Outcome: i})
		}
		outs := b.Outcomes()
		want := min(n, l)
		if len(outs) != want {
			return false
		}
		for i, o := range outs {
			if o != n-want+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFeatureSubsets(t *testing.T) {
	subs := FeatureSubsets()
	if len(subs) != 15 {
		t.Fatalf("%d subsets, want 15", len(subs))
	}
	// Sorted by size: 4 singletons, 6 pairs, 4 triples, 1 quad.
	sizes := map[int]int{}
	for i, s := range subs {
		sizes[len(s)]++
		if i > 0 && len(subs[i-1]) > len(s) {
			t.Error("subsets must be ordered by size")
		}
	}
	if sizes[1] != 4 || sizes[2] != 6 || sizes[3] != 4 || sizes[4] != 1 {
		t.Errorf("subset size histogram wrong: %v", sizes)
	}
}

func TestComputeFeatures(t *testing.T) {
	outcomes := []int{1, 2, 1, 1}
	us := []float64{0.1, 0.5, 0.2, 0.3}
	taqf, err := ComputeFeatures(outcomes, us, 1)
	if err != nil {
		t.Fatal(err)
	}
	if taqf[Ratio-1] != 0.75 {
		t.Errorf("ratio = %g, want 0.75", taqf[Ratio-1])
	}
	if taqf[Length-1] != 4 {
		t.Errorf("length = %g, want 4", taqf[Length-1])
	}
	if taqf[Size-1] != 2 {
		t.Errorf("size = %g, want 2", taqf[Size-1])
	}
	// certainty = (1-0.1)+(1-0.2)+(1-0.3) over agreeing steps = 2.4
	if diff := taqf[Certainty-1] - 2.4; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("certainty = %g, want 2.4", taqf[Certainty-1])
	}
	if _, err := ComputeFeatures(nil, nil, 0); err == nil {
		t.Error("empty series must fail")
	}
	if _, err := ComputeFeatures([]int{1}, []float64{0.1, 0.2}, 1); err == nil {
		t.Error("mismatched lengths must fail")
	}
}

func TestSelectFeatures(t *testing.T) {
	all := [4]float64{0.75, 4, 2, 2.4}
	sel, err := SelectFeatures(all, []Feature{Certainty, Ratio})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0] != 2.4 || sel[1] != 0.75 {
		t.Errorf("selection = %v", sel)
	}
	if _, err := SelectFeatures(all, []Feature{Feature(9)}); err == nil {
		t.Error("unknown feature must fail")
	}
	names := FeatureNames(AllFeatures())
	want := []string{"taqf_ratio", "taqf_length", "taqf_size", "taqf_certainty"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names = %v", names)
			break
		}
	}
	if Feature(9).String() == "" {
		t.Error("unknown feature must stringify")
	}
}
