package core

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/uw"
)

func TestBundleRoundTrip(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	w, err := NewWrapper(st.base, taqim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := SaveBundle(w)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundle(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Behavioural equality over several series.
	for _, s := range st.testSeries[:8] {
		w.NewSeries()
		loaded.NewSeries()
		for j := range s.Outcomes {
			a, err := w.Step(s.Outcomes[j], s.Quality[j])
			if err != nil {
				t.Fatal(err)
			}
			b, err := loaded.Step(s.Outcomes[j], s.Quality[j])
			if err != nil {
				t.Fatal(err)
			}
			if a.Fused != b.Fused || a.Uncertainty != b.Uncertainty {
				t.Fatalf("bundle diverges: (%d,%g) vs (%d,%g)",
					a.Fused, a.Uncertainty, b.Fused, b.Uncertainty)
			}
		}
	}
}

func TestBundlePreservesConfig(t *testing.T) {
	st := buildStudy(t)
	feats := []Feature{Ratio, Certainty}
	taqim := fitTAQIM(t, st, feats)
	w, err := NewWrapper(st.base, taqim, Config{
		Features:    feats,
		Fuser:       fusion.DempsterShafer{},
		BufferLimit: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := SaveBundle(w)
	if err != nil {
		t.Fatal(err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Fuser != "dempster-shafer" || b.BufferLimit != 16 || len(b.Features) != 2 {
		t.Errorf("bundle config wrong: %+v", b)
	}
	loaded, err := LoadBundle(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := st.testSeries[0]
	a, err := w.Step(s.Outcomes[0], s.Quality[0])
	if err != nil {
		t.Fatal(err)
	}
	c, err := loaded.Step(s.Outcomes[0], s.Quality[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Uncertainty != c.Uncertainty {
		t.Error("loaded bundle behaves differently")
	}
}

func TestBundleWithScope(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	w, err := NewWrapper(st.base, taqim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := SaveBundle(w)
	if err != nil {
		t.Fatal(err)
	}
	scope, err := uw.NewScopeModel(1, uw.BoundaryCheck{Name: "lat", Index: 0, Min: 0, Max: 10})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundle(data, scope)
	if err != nil {
		t.Fatal(err)
	}
	s := st.testSeries[0]
	res, err := loaded.StepScoped(s.Outcomes[0], s.Quality[0], []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Uncertainty != 1 {
		t.Errorf("out-of-scope uncertainty = %g, want 1", res.Uncertainty)
	}
}

func TestBundleErrors(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	if _, err := SaveBundle(nil); err == nil {
		t.Error("nil wrapper must fail")
	}
	// Custom fuser cannot be bundled.
	w, err := NewWrapper(st.base, taqim, Config{Fuser: fusion.RecencyWeighted{Lambda: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SaveBundle(w); err == nil {
		t.Error("unbundleable fuser must fail at save time")
	}
	if _, err := LoadBundle([]byte("{nope"), nil); err == nil {
		t.Error("bad JSON must fail")
	}
	if _, err := LoadBundle([]byte(`{"version":99}`), nil); err == nil {
		t.Error("wrong version must fail")
	}
	good, err := SaveBundle(mustWrapper(t, st, taqim))
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(good), `"majority-vote"`, `"bogus-rule"`, 1)
	if _, err := LoadBundle([]byte(tampered), nil); err == nil {
		t.Error("unknown fuser name must fail")
	}
}

func mustWrapper(t *testing.T, st *synthStudy, taqim *uw.QualityImpactModel) *Wrapper {
	t.Helper()
	w, err := NewWrapper(st.base, taqim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}
