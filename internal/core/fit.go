package core

import (
	"errors"
	"fmt"

	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/uw"
)

// SeriesObservations carries everything the fitting pipeline needs to know
// about one timeseries: the shared ground truth, the momentaneous DDM
// outcomes, and the stateless quality factors per step.
type SeriesObservations struct {
	// Truth is the ground-truth class of the series.
	Truth int
	// Outcomes are the DDM outcomes o_0..o_n.
	Outcomes []int
	// Quality holds the stateless quality factors per step; all rows
	// must have the same width.
	Quality [][]float64
}

// Validate checks internal consistency.
func (s SeriesObservations) Validate() error {
	if len(s.Outcomes) == 0 {
		return ErrEmptySeries
	}
	if len(s.Outcomes) != len(s.Quality) {
		return fmt.Errorf("core: %d outcomes but %d quality rows", len(s.Outcomes), len(s.Quality))
	}
	width := len(s.Quality[0])
	for i, q := range s.Quality {
		if len(q) != width {
			return fmt.Errorf("core: quality row %d has width %d, want %d", i, len(q), width)
		}
	}
	return nil
}

// BuildRows replays the series through the base wrapper and the fusion rule
// and emits one taQIM training row per timestep: the stateless quality
// factors of the step concatenated with the selected taQF, labelled with
// whether the fused outcome was wrong. This is exactly the data layout used
// at runtime by Wrapper.Step, which keeps training and inference consistent.
func BuildRows(series []SeriesObservations, base *uw.Wrapper, fuser fusion.OutcomeFuser,
	feats []Feature) (x [][]float64, y []bool, err error) {
	if base == nil {
		return nil, nil, errors.New("core: base wrapper is required")
	}
	if fuser == nil {
		fuser = fusion.MajorityVote{}
	}
	if len(feats) == 0 {
		feats = AllFeatures()
	}
	if len(series) == 0 {
		return nil, nil, errors.New("core: no series to build rows from")
	}
	for si, s := range series {
		if err := s.Validate(); err != nil {
			return nil, nil, fmt.Errorf("core: series %d: %w", si, err)
		}
		n := len(s.Outcomes)
		us := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			est, err := base.Estimate(s.Outcomes[i], s.Quality[i], nil)
			if err != nil {
				return nil, nil, fmt.Errorf("core: series %d step %d: %w", si, i, err)
			}
			us = append(us, est.Uncertainty)
			fused, err := fuser.Fuse(s.Outcomes[:i+1], us)
			if err != nil {
				return nil, nil, fmt.Errorf("core: series %d step %d fuse: %w", si, i, err)
			}
			taqf, err := ComputeFeatures(s.Outcomes[:i+1], us, fused)
			if err != nil {
				return nil, nil, err
			}
			sel, err := SelectFeatures(taqf, feats)
			if err != nil {
				return nil, nil, err
			}
			row := make([]float64, 0, len(s.Quality[i])+len(sel))
			row = append(row, s.Quality[i]...)
			row = append(row, sel...)
			x = append(x, row)
			y = append(y, fused != s.Truth)
		}
	}
	return x, y, nil
}

// FitTimeseriesQIM builds the timeseries-aware quality impact model: rows
// are generated from the training series, the tree is grown on them, and the
// leaves are pruned and calibrated on rows generated from the calibration
// series (the paper calibrates on length-10 subsampled series). The
// statelessNames label the quality-factor columns in rule exports.
func FitTimeseriesQIM(base *uw.Wrapper, trainSeries, calibSeries []SeriesObservations,
	statelessNames []string, feats []Feature, fuser fusion.OutcomeFuser,
	cfg uw.QIMConfig) (*uw.QualityImpactModel, error) {
	if len(feats) == 0 {
		feats = AllFeatures()
	}
	trainX, trainY, err := BuildRows(trainSeries, base, fuser, feats)
	if err != nil {
		return nil, fmt.Errorf("core: building training rows: %w", err)
	}
	calibX, calibY, err := BuildRows(calibSeries, base, fuser, feats)
	if err != nil {
		return nil, fmt.Errorf("core: building calibration rows: %w", err)
	}
	names := make([]string, 0, len(statelessNames)+len(feats))
	names = append(names, statelessNames...)
	names = append(names, FeatureNames(feats)...)
	qim, err := uw.FitQIM(trainX, trainY, calibX, calibY, names, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: fitting timeseries-aware QIM: %w", err)
	}
	return qim, nil
}
