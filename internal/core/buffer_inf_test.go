package core

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestBufferRingEvictionWithInfUncertainties drives ring-eviction sequences
// whose uncertainties include ±Inf (and NaN) — the values a buggy upstream
// could hand the buffer — and checks after every append that the defensive
// clamp holds (+Inf → 1, -Inf → 0, NaN → 1), that the evicted record
// returns exactly what was stored (so a fusion tally retires the clamped
// pair, not the raw one), and that the O(1) running statistics stay equal
// to the ComputeFeatures oracle across evictions of non-finite entries.
func TestBufferRingEvictionWithInfUncertainties(t *testing.T) {
	specials := []float64{math.Inf(1), math.Inf(-1), math.NaN(), 0, 1, 0.5}
	clamp := func(u float64) float64 {
		switch {
		case math.IsNaN(u) || u > 1:
			return 1
		case u < 0:
			return 0
		default:
			return u
		}
	}
	for _, limit := range []int{1, 2, 3, 8} {
		for seed := uint64(1); seed <= 6; seed++ {
			rng := rand.New(rand.NewPCG(seed, uint64(limit)))
			b, err := NewBuffer(limit)
			if err != nil {
				t.Fatal(err)
			}
			var pushed []float64 // clamped values in push order
			for step := 0; step < 400; step++ {
				var u float64
				if rng.IntN(2) == 0 {
					u = specials[rng.IntN(len(specials))]
				} else {
					u = rng.Float64()
				}
				o := rng.IntN(3)
				evicted, wasEvicted := b.Append(Record{Outcome: o, Uncertainty: u})
				pushed = append(pushed, clamp(u))
				if wantEvict := len(pushed) > limit; wasEvicted != wantEvict {
					t.Fatalf("limit %d step %d: wasEvicted %v, want %v", limit, step, wasEvicted, wantEvict)
				}
				if wasEvicted {
					wantU := pushed[len(pushed)-limit-1]
					if evicted.Uncertainty != wantU {
						t.Fatalf("limit %d step %d: evicted uncertainty %g, want clamped %g",
							limit, step, evicted.Uncertainty, wantU)
					}
				}
				// The buffered series must hold only clamped values...
				for i, got := range b.Uncertainties() {
					want := pushed[len(pushed)-b.Len()+i]
					if got != want || math.IsInf(got, 0) || math.IsNaN(got) {
						t.Fatalf("limit %d step %d: buffered u[%d] = %g, want %g", limit, step, i, got, want)
					}
				}
				// ...and the running stats must match the oracle on them.
				outs := b.Outcomes()
				us := b.Uncertainties()
				for fused := 0; fused < 3; fused++ {
					want, err := ComputeFeatures(outs, us, fused)
					if err != nil {
						t.Fatal(err)
					}
					got, err := b.FeaturesAt(fused)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if math.Abs(want[i]-got[i]) > taqfTol {
							t.Fatalf("limit %d seed %d step %d fused %d: taQF[%d] oracle %g, incremental %g",
								limit, seed, step, fused, i, want[i], got[i])
						}
					}
				}
			}
		}
	}
}
