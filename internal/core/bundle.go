package core

import (
	"encoding/json"
	"fmt"

	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/uw"
)

// Bundle is the single-artifact deployment format of a timeseries-aware
// uncertainty wrapper: both calibrated quality impact models plus the
// assembly configuration. Everything needed at runtime, nothing from
// training. Scope-compliance models carry deployment-specific boundaries
// and are attached programmatically after loading.
type Bundle struct {
	// Version guards the format.
	Version int `json:"version"`
	// BaseQIM and TAQIM are the serialised quality impact models.
	BaseQIM json.RawMessage `json:"base_qim"`
	TAQIM   json.RawMessage `json:"taqim"`
	// Features is the taQF subset the taQIM was fitted with.
	Features []Feature `json:"features"`
	// Fuser names the information-fusion rule.
	Fuser string `json:"fuser"`
	// BufferLimit is the timeseries-buffer cap (0 = unbounded).
	BufferLimit int `json:"buffer_limit"`
}

// bundleVersion is the current format version.
const bundleVersion = 1

// SaveBundle serialises a wrapper into the deployment format. Only the
// fusion rules shipped with this package can be named in a bundle; wrappers
// assembled around custom fusers must be re-assembled programmatically.
func SaveBundle(w *Wrapper) ([]byte, error) {
	if w == nil {
		return nil, fmt.Errorf("core: nil wrapper")
	}
	if _, err := fuserByName(w.fuser.Name()); err != nil {
		return nil, fmt.Errorf("core: cannot bundle: %w", err)
	}
	baseData, err := json.Marshal(w.base.QIM())
	if err != nil {
		return nil, fmt.Errorf("core: encode base QIM: %w", err)
	}
	taData, err := json.Marshal(w.taqim)
	if err != nil {
		return nil, fmt.Errorf("core: encode taQIM: %w", err)
	}
	return json.Marshal(Bundle{
		Version:     bundleVersion,
		BaseQIM:     baseData,
		TAQIM:       taData,
		Features:    append([]Feature(nil), w.feats...),
		Fuser:       w.fuser.Name(),
		BufferLimit: w.buf.limit,
	})
}

// LoadBundle reassembles a ready-to-use wrapper from the deployment format.
// The optional scope model is attached to the base wrapper (nil disables
// scope checking).
func LoadBundle(data []byte, scope *uw.ScopeModel) (*Wrapper, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("core: decode bundle: %w", err)
	}
	if b.Version != bundleVersion {
		return nil, fmt.Errorf("core: unsupported bundle version %d (want %d)", b.Version, bundleVersion)
	}
	qim, err := uw.LoadQIM(b.BaseQIM)
	if err != nil {
		return nil, fmt.Errorf("core: load base QIM: %w", err)
	}
	taqim, err := uw.LoadQIM(b.TAQIM)
	if err != nil {
		return nil, fmt.Errorf("core: load taQIM: %w", err)
	}
	fuser, err := fuserByName(b.Fuser)
	if err != nil {
		return nil, err
	}
	base, err := uw.NewWrapper(qim, scope)
	if err != nil {
		return nil, err
	}
	return NewWrapper(base, taqim, Config{
		Features:    b.Features,
		Fuser:       fuser,
		BufferLimit: b.BufferLimit,
	})
}

// fuserByName resolves the fusion rules shipped with this module.
func fuserByName(name string) (fusion.OutcomeFuser, error) {
	switch name {
	case fusion.MajorityVote{}.Name():
		return fusion.MajorityVote{}, nil
	case (fusion.MajorityVote{TieBreak: fusion.LowestUncertainty}).Name():
		return fusion.MajorityVote{TieBreak: fusion.LowestUncertainty}, nil
	case fusion.CertaintyWeighted{}.Name():
		return fusion.CertaintyWeighted{}, nil
	case fusion.Latest{}.Name():
		return fusion.Latest{}, nil
	case fusion.DempsterShafer{}.Name():
		return fusion.DempsterShafer{}, nil
	default:
		return nil, fmt.Errorf("core: unknown fusion rule %q", name)
	}
}
