package core

import (
	"errors"
	"sync"
	"testing"
)

func monitoredPoolFixture(t *testing.T, ringSize int) (*WrapperPool, *synthStudy) {
	t.Helper()
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	pool, err := NewWrapperPool(st.base, taqim, Config{}, 0, WithMonitoring(ringSize))
	if err != nil {
		t.Fatal(err)
	}
	return pool, st
}

func TestPoolStepStats(t *testing.T) {
	pool, st := monitoredPoolFixture(t, 8)
	if err := pool.Open(1); err != nil {
		t.Fatal(err)
	}
	s := st.testSeries[0]
	var wantU float64
	var fusedCounts [NumOutcomeBuckets + 1]uint64
	for j := range s.Outcomes {
		res, err := pool.Step(1, s.Outcomes[j], s.Quality[j])
		if err != nil {
			t.Fatal(err)
		}
		wantU += res.Uncertainty
		fusedCounts[outcomeBucket(res.Fused)]++
	}
	if got, want := pool.StepCount(), uint64(len(s.Outcomes)); got != want {
		t.Errorf("StepCount = %d, want %d", got, want)
	}
	if got := pool.UncertaintySum(); got < wantU-1e-4 || got > wantU+1e-4 {
		t.Errorf("UncertaintySum = %g, want ~%g", got, wantU)
	}
	var seen uint64
	pool.OutcomeCounts(func(outcome int, count uint64) {
		seen += count
		b := outcomeBucket(outcome)
		if outcome == -1 {
			b = NumOutcomeBuckets
		}
		if fusedCounts[b] != count {
			t.Errorf("outcome %d count = %d, want %d", outcome, count, fusedCounts[b])
		}
	})
	if seen != uint64(len(s.Outcomes)) {
		t.Errorf("OutcomeCounts total = %d, want %d", seen, len(s.Outcomes))
	}
}

func TestPoolStatsDisabledByDefault(t *testing.T) {
	pool, st := poolFixture(t, 0)
	if err := pool.Open(1); err != nil {
		t.Fatal(err)
	}
	s := st.testSeries[0]
	if _, err := pool.Step(1, s.Outcomes[0], s.Quality[0]); err != nil {
		t.Fatal(err)
	}
	if got := pool.StepCount(); got != 0 {
		t.Errorf("unmonitored StepCount = %d, want 0", got)
	}
	if got := pool.FeedbackRingSize(); got != 0 {
		t.Errorf("unmonitored FeedbackRingSize = %d, want 0", got)
	}
	if _, err := pool.TakeFeedback(1, 1); !errors.Is(err, ErrFeedbackDisabled) {
		t.Errorf("TakeFeedback on unmonitored pool = %v, want ErrFeedbackDisabled", err)
	}
}

func TestTakeFeedbackJoin(t *testing.T) {
	pool, st := monitoredPoolFixture(t, 4)
	id, err := pool.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	s := st.testSeries[0]
	var results []Result
	for j := 0; j < 6; j++ {
		res, err := pool.StepSeries(id, s.Outcomes[j], s.Quality[j])
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}

	// Steps 1 and 2 have been evicted by the 4-slot ring (6 steps taken).
	for _, late := range []int{1, 2} {
		if _, err := pool.TakeFeedbackSeries(id, late); !errors.Is(err, ErrStepUnavailable) {
			t.Errorf("late feedback for step %d = %v, want ErrStepUnavailable", late, err)
		}
	}
	// Steps 3..6 join and echo the exact estimate that was served.
	for j := 2; j < 6; j++ {
		rec, err := pool.TakeFeedbackSeries(id, j+1)
		if err != nil {
			t.Fatalf("feedback step %d: %v", j+1, err)
		}
		want := results[j]
		if rec.Step != j+1 || rec.Fused != want.Fused ||
			rec.Uncertainty != want.Uncertainty || rec.TAQIMLeaf != want.TAQIMLeaf {
			t.Errorf("step %d joined %+v, want fused=%d u=%g leaf=%d",
				j+1, rec, want.Fused, want.Uncertainty, want.TAQIMLeaf)
		}
	}
	// A second report for a consumed step is a duplicate, not a re-join.
	if _, err := pool.TakeFeedbackSeries(id, 6); !errors.Is(err, ErrDuplicateFeedback) {
		t.Errorf("duplicate feedback = %v, want ErrDuplicateFeedback", err)
	}
	// Future and non-positive steps were never recorded.
	for _, bad := range []int{0, -3, 7} {
		if _, err := pool.TakeFeedbackSeries(id, bad); !errors.Is(err, ErrStepUnavailable) {
			t.Errorf("feedback for step %d = %v, want ErrStepUnavailable", bad, err)
		}
	}
	// Closing the series makes feedback a not-found condition.
	if err := pool.CloseSeries(id); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.TakeFeedbackSeries(id, 3); !errors.Is(err, ErrUnknownSeries) {
		t.Errorf("feedback after close = %v, want ErrUnknownSeries", err)
	}
	if _, err := pool.TakeFeedbackSeries("never-issued", 1); !errors.Is(err, ErrUnknownSeries) {
		t.Errorf("feedback for unknown series = %v, want ErrUnknownSeries", err)
	}
}

func TestReopenClearsFeedbackRing(t *testing.T) {
	pool, st := monitoredPoolFixture(t, 8)
	if err := pool.Open(7); err != nil {
		t.Fatal(err)
	}
	s := st.testSeries[0]
	for j := 0; j < 3; j++ {
		if _, err := pool.Step(7, s.Outcomes[j], s.Quality[j]); err != nil {
			t.Fatal(err)
		}
	}
	// The tracker reports a new physical object: the old series' estimates
	// must no longer be joinable under the restarted step numbering.
	if err := pool.Open(7); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.TakeFeedback(7, 2); !errors.Is(err, ErrStepUnavailable) {
		t.Errorf("feedback across reset = %v, want ErrStepUnavailable", err)
	}
	res, err := pool.Step(7, s.Outcomes[0], s.Quality[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pool.TakeFeedback(7, res.TotalSteps)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Uncertainty != res.Uncertainty {
		t.Errorf("post-reset join u = %g, want %g", rec.Uncertainty, res.Uncertainty)
	}
}

// TestConcurrentFeedbackAndSteps races feedback joins against ongoing steps
// on many tracks: run under -race it pins that the ring writes (track lock)
// and the shard counters (atomics) never conflict, and that every join
// returns either a consistent record or a typed error.
func TestConcurrentFeedbackAndSteps(t *testing.T) {
	pool, st := monitoredPoolFixture(t, 16)
	const tracks = 8
	for id := 0; id < tracks; id++ {
		if err := pool.Open(id); err != nil {
			t.Fatal(err)
		}
	}
	s := st.testSeries[0]
	var wg sync.WaitGroup
	for id := 0; id < tracks; id++ {
		wg.Add(2)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if _, err := pool.Step(id, s.Outcomes[j%len(s.Outcomes)], s.Quality[j%len(s.Quality)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
		go func(id int) {
			defer wg.Done()
			for step := 1; step <= 200; step++ {
				rec, err := pool.TakeFeedback(id, step)
				switch {
				case err == nil:
					if rec.Step != step || rec.Uncertainty < 0 || rec.Uncertainty > 1 {
						t.Errorf("inconsistent join: %+v", rec)
						return
					}
				case errors.Is(err, ErrStepUnavailable), errors.Is(err, ErrDuplicateFeedback):
					// Expected interleavings: the step has not happened yet,
					// was evicted, or a retry raced us.
				default:
					t.Errorf("unexpected feedback error: %v", err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if got, want := pool.StepCount(), uint64(tracks*200); got != want {
		t.Errorf("StepCount = %d, want %d", got, want)
	}
}
