// swap.go implements zero-downtime model hot-swap for the wrapper pool: the
// serving taQIM lives behind an atomic pointer paired with a monotonically
// increasing version, so an online recalibration (see internal/recalib) can
// replace the model under full traffic. Concurrent Step/StepBatch calls
// never block on a swap and never observe a torn model — each step loads the
// (model, version) pair once and runs entirely on that revision, with the
// version stamped into its Result for provenance.
package core

import (
	"errors"
	"fmt"

	"github.com/iese-repro/tauw/internal/trace"
	"github.com/iese-repro/tauw/internal/uw"
)

// modelState pairs a taQIM revision with its version. The struct is
// immutable once published through WrapperPool.model; swaps publish a fresh
// one.
type modelState struct {
	qim     *uw.QualityImpactModel
	version uint64
}

// ErrModelShape is returned by SwapModel when the candidate model does not
// match the serving model's shape (factor-vector width or region count).
var ErrModelShape = errors.New("core: swapped model has incompatible shape")

// SwapModel atomically replaces the pool's serving taQIM with next and
// returns the versions before and after the swap. The new model must score
// the same factor-vector width and expose the same number of regions as the
// current one: recalibrated models (uw.QualityImpactModel.Recalibrate)
// preserve both by construction, and any other drop-in must too — a
// different feature width would fail every subsequent step, and a different
// region count would silently detach every leaf-provenance consumer (the
// feedback ring's leaf ids, the per-leaf evidence accumulators sized at
// startup). Swaps serialise among themselves through the CAS loop;
// concurrent steps keep serving whichever revision they loaded.
func (p *WrapperPool) SwapModel(next *uw.QualityImpactModel) (oldVersion, newVersion uint64, err error) {
	if next == nil {
		return 0, 0, errors.New("core: swapped model must not be nil")
	}
	for {
		cur := p.model.Load()
		if got, want := next.NumFeatures(), cur.qim.NumFeatures(); got != want {
			return 0, 0, fmt.Errorf("%w: scores %d features, pool assembles %d", ErrModelShape, got, want)
		}
		if got, want := next.NumRegions(), cur.qim.NumRegions(); got != want {
			return 0, 0, fmt.Errorf("%w: %d regions, serving model has %d", ErrModelShape, got, want)
		}
		ns := &modelState{qim: next, version: cur.version + 1}
		if p.model.CompareAndSwap(cur, ns) {
			if p.trace != nil {
				p.trace.Record(trace.KindSwap, trace.StatusOK, 0, 0, ns.version)
			}
			return cur.version, ns.version, nil
		}
	}
}

// ModelVersion reports the serving model's version (1 until the first swap).
func (p *WrapperPool) ModelVersion() uint64 { return p.model.Load().version }

// CurrentTAQIM returns the taQIM revision currently serving — the base a
// recalibration refreshes. The returned model is immutable; it may be
// superseded by a swap the moment this returns.
func (p *WrapperPool) CurrentTAQIM() *uw.QualityImpactModel { return p.model.Load().qim }

// ServingModel returns the serving model and its version as one consistent
// pair (a single atomic load — reading CurrentTAQIM and ModelVersion
// separately can straddle a swap). The durability layer checkpoints the
// pair.
func (p *WrapperPool) ServingModel() (*uw.QualityImpactModel, uint64) {
	ms := p.model.Load()
	return ms.qim, ms.version
}
