// Package core implements the paper's contribution: the timeseries-aware
// uncertainty wrapper (taUW). A timeseries buffer stores the interim results
// of the current series (DDM outcomes, per-step base-wrapper uncertainties,
// and quality factors); an information-fusion rule combines the outcomes
// into an improved fused prediction; four timeseries-aware quality factors
// (taQF) are derived from the buffer; and a second calibrated quality impact
// model (taQIM) maps the stateless factors plus the taQF to a dependable
// uncertainty for the fused outcome. Uncertainty-fusion baselines (naïve,
// opportune, worst-case) are provided behind the same runtime interface.
package core

import (
	"errors"
	"fmt"
)

// Record stores the interim results of one timestep, as kept in the
// timeseries buffer.
type Record struct {
	// Outcome is the momentaneous DDM outcome o_j.
	Outcome int
	// Uncertainty is the stateless base-wrapper estimate u_j.
	Uncertainty float64
	// Quality holds the stateless quality factors observed at t_j.
	Quality []float64
}

// Buffer is the timeseries buffer: it accumulates one Record per timestep
// and is cleared at the onset of a new timeseries (when the tracker reports
// that predictions now relate to a different physical object). A Limit > 0
// turns it into a ring that keeps only the most recent records, for
// unbounded streams; the study uses unlimited buffers since GTSRB series
// have at most 30 frames.
type Buffer struct {
	records []Record
	limit   int
	start   int // ring start when limit > 0 and full
	full    bool
}

// NewBuffer creates a buffer; limit 0 means unbounded.
func NewBuffer(limit int) (*Buffer, error) {
	if limit < 0 {
		return nil, fmt.Errorf("core: buffer limit %d must be >= 0", limit)
	}
	b := &Buffer{limit: limit}
	if limit > 0 {
		b.records = make([]Record, 0, limit)
	}
	return b, nil
}

// Append adds one timestep.
func (b *Buffer) Append(r Record) {
	if r.Uncertainty < 0 || r.Uncertainty > 1 {
		// Clamp defensively; upstream validation should prevent this.
		if r.Uncertainty < 0 {
			r.Uncertainty = 0
		} else {
			r.Uncertainty = 1
		}
	}
	if b.limit == 0 {
		b.records = append(b.records, r)
		return
	}
	if len(b.records) < b.limit {
		b.records = append(b.records, r)
		return
	}
	b.records[b.start] = r
	b.start = (b.start + 1) % b.limit
	b.full = true
}

// Len returns the number of buffered timesteps.
func (b *Buffer) Len() int { return len(b.records) }

// Reset clears the buffer at the onset of a new timeseries.
func (b *Buffer) Reset() {
	b.records = b.records[:0]
	b.start = 0
	b.full = false
}

// Outcomes returns the buffered outcomes in time order (a fresh slice).
func (b *Buffer) Outcomes() []int {
	out := make([]int, 0, len(b.records))
	b.each(func(r Record) { out = append(out, r.Outcome) })
	return out
}

// Uncertainties returns the buffered per-step uncertainties in time order (a
// fresh slice).
func (b *Buffer) Uncertainties() []float64 {
	out := make([]float64, 0, len(b.records))
	b.each(func(r Record) { out = append(out, r.Uncertainty) })
	return out
}

// Records returns a copy of the buffered records in time order.
func (b *Buffer) Records() []Record {
	out := make([]Record, 0, len(b.records))
	b.each(func(r Record) { out = append(out, r) })
	return out
}

// Last returns the most recent record; ok is false for an empty buffer.
func (b *Buffer) Last() (Record, bool) {
	if len(b.records) == 0 {
		return Record{}, false
	}
	if b.limit > 0 && b.full {
		idx := (b.start + b.limit - 1) % b.limit
		return b.records[idx], true
	}
	return b.records[len(b.records)-1], true
}

// each visits records in time order, handling ring wrap-around.
func (b *Buffer) each(fn func(Record)) {
	if b.limit == 0 || !b.full {
		for _, r := range b.records {
			fn(r)
		}
		return
	}
	for i := 0; i < b.limit; i++ {
		fn(b.records[(b.start+i)%b.limit])
	}
}

// ErrEmptySeries is returned when a wrapper step is requested with no data.
var ErrEmptySeries = errors.New("core: empty timeseries")
