// Package core implements the paper's contribution: the timeseries-aware
// uncertainty wrapper (taUW). A timeseries buffer stores the interim results
// of the current series (DDM outcomes, per-step base-wrapper uncertainties,
// and quality factors); an information-fusion rule combines the outcomes
// into an improved fused prediction; four timeseries-aware quality factors
// (taQF) are derived from the buffer; and a second calibrated quality impact
// model (taQIM) maps the stateless factors plus the taQF to a dependable
// uncertainty for the fused outcome. Uncertainty-fusion baselines (naïve,
// opportune, worst-case) are provided behind the same runtime interface.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Record stores the interim results of one timestep, as kept in the
// timeseries buffer.
type Record struct {
	// Outcome is the momentaneous DDM outcome o_j.
	Outcome int
	// Uncertainty is the stateless base-wrapper estimate u_j.
	Uncertainty float64
	// Quality holds the stateless quality factors observed at t_j.
	Quality []float64
}

// Buffer is the timeseries buffer: it accumulates one Record per timestep
// and is cleared at the onset of a new timeseries (when the tracker reports
// that predictions now relate to a different physical object). A Limit > 0
// turns it into a ring that keeps only the most recent records, for
// unbounded streams; the study uses unlimited buffers since GTSRB series
// have at most 30 frames.
//
// Alongside the records the buffer maintains running per-outcome statistics
// (vote counts and certainty sums), updated on every append and eviction, so
// the four taQF can be derived in O(1) instead of a full-series scan (see
// FeaturesAt). ComputeFeatures remains the reference oracle the incremental
// stats are tested against.
type Buffer struct {
	records []Record
	limit   int
	start   int // ring start when limit > 0 and full
	full    bool

	// total counts every append since the last Reset, including records a
	// full ring has since evicted; Len() is the buffered count. The taQF
	// length factor uses the buffered count — the window the other factors
	// are computed over — while total makes eviction observable.
	total int
	// stats holds the running per-outcome statistics. A key is deleted as
	// soon as its count reaches zero, so len(stats) is the distinct-outcome
	// taQF and floating-point eviction drift in a certainty sum dies with
	// its class.
	stats map[int]outcomeStat
}

// outcomeStat is the running state of one outcome class: how many buffered
// records carry it and the sum of their certainties (1 - u_j).
type outcomeStat struct {
	count     int
	certainty float64
}

// NewBuffer creates a buffer; limit 0 means unbounded.
func NewBuffer(limit int) (*Buffer, error) {
	if limit < 0 {
		return nil, fmt.Errorf("core: buffer limit %d must be >= 0", limit)
	}
	b := &Buffer{
		limit: limit,
		stats: make(map[int]outcomeStat, 8),
	}
	if limit > 0 {
		b.records = make([]Record, 0, limit)
	}
	return b, nil
}

// Append adds one timestep. When the buffer is a full ring it returns the
// record that was evicted to make room, so callers maintaining their own
// incremental state (e.g. a fusion.Tally) can retire it.
func (b *Buffer) Append(r Record) (evicted Record, wasEvicted bool) {
	// Clamp defensively; upstream validation should prevent this. NaN is
	// clamped to 1 (maximum uncertainty) so it cannot poison the running
	// certainty sums.
	if math.IsNaN(r.Uncertainty) || r.Uncertainty > 1 {
		r.Uncertainty = 1
	} else if r.Uncertainty < 0 {
		r.Uncertainty = 0
	}
	b.total++
	b.statAdd(r)
	if b.limit == 0 || len(b.records) < b.limit {
		b.records = append(b.records, r)
		return Record{}, false
	}
	evicted = b.records[b.start]
	b.records[b.start] = r
	b.start = (b.start + 1) % b.limit
	b.full = true
	b.statRemove(evicted)
	return evicted, true
}

func (b *Buffer) statAdd(r Record) {
	s := b.stats[r.Outcome]
	s.count++
	s.certainty += 1 - r.Uncertainty
	b.stats[r.Outcome] = s
}

func (b *Buffer) statRemove(r Record) {
	s := b.stats[r.Outcome]
	s.count--
	if s.count <= 0 {
		delete(b.stats, r.Outcome)
		return
	}
	s.certainty -= 1 - r.Uncertainty
	b.stats[r.Outcome] = s
}

// Len returns the number of buffered timesteps.
func (b *Buffer) Len() int { return len(b.records) }

// TotalSteps returns the number of timesteps appended since the last Reset,
// including any a full ring has evicted. TotalSteps() == Len() while no
// eviction has happened; under a BufferLimit the difference is the number of
// evicted records.
func (b *Buffer) TotalSteps() int { return b.total }

// Reset clears the buffer at the onset of a new timeseries. Capacity is
// retained so a steady-state stream of series allocates nothing.
func (b *Buffer) Reset() {
	b.records = b.records[:0]
	b.start = 0
	b.full = false
	b.total = 0
	clear(b.stats)
}

// FeaturesAt derives all four taQF for the given fused outcome from the
// running statistics in O(1) — no series scan. It is the incremental
// equivalent of ComputeFeatures(b.Outcomes(), b.Uncertainties(), fused).
func (b *Buffer) FeaturesAt(fused int) ([4]float64, error) {
	var out [4]float64
	n := len(b.records)
	if n == 0 {
		return out, ErrEmptySeries
	}
	s := b.stats[fused]
	out[Ratio-1] = float64(s.count) / float64(n)
	out[Length-1] = float64(n)
	out[Size-1] = float64(len(b.stats))
	out[Certainty-1] = s.certainty
	return out, nil
}

// Outcomes returns the buffered outcomes in time order (a fresh slice).
func (b *Buffer) Outcomes() []int {
	out := make([]int, 0, len(b.records))
	b.each(func(r Record) { out = append(out, r.Outcome) })
	return out
}

// Uncertainties returns the buffered per-step uncertainties in time order (a
// fresh slice).
func (b *Buffer) Uncertainties() []float64 {
	out := make([]float64, 0, len(b.records))
	b.each(func(r Record) { out = append(out, r.Uncertainty) })
	return out
}

// Records returns a copy of the buffered records in time order.
func (b *Buffer) Records() []Record {
	out := make([]Record, 0, len(b.records))
	b.each(func(r Record) { out = append(out, r) })
	return out
}

// Last returns the most recent record; ok is false for an empty buffer.
func (b *Buffer) Last() (Record, bool) {
	if len(b.records) == 0 {
		return Record{}, false
	}
	if b.limit > 0 && b.full {
		idx := (b.start + b.limit - 1) % b.limit
		return b.records[idx], true
	}
	return b.records[len(b.records)-1], true
}

// each visits records in time order, handling ring wrap-around.
func (b *Buffer) each(fn func(Record)) {
	if b.limit == 0 || !b.full {
		for _, r := range b.records {
			fn(r)
		}
		return
	}
	for i := 0; i < b.limit; i++ {
		fn(b.records[(b.start+i)%b.limit])
	}
}

// ErrEmptySeries is returned when a wrapper step is requested with no data.
var ErrEmptySeries = errors.New("core: empty timeseries")
