package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/iese-repro/tauw/internal/trace"
	"github.com/iese-repro/tauw/internal/xslice"
)

// StepItem is one entry of a batch step: one timestep for one open track.
type StepItem struct {
	TrackID int
	Outcome int
	Quality []float64
}

// SeriesStepItem is one entry of a batch step addressed by string series id.
type SeriesStepItem struct {
	SeriesID string
	Outcome  int
	Quality  []float64
}

// BatchResult pairs one batch item's result with its error; exactly one of
// the two is meaningful. Errors are per-item: one bad item never fails its
// batch.
type BatchResult struct {
	Result Result
	Err    error
}

// batchScratch is the reusable dispatch state of one StepBatch call: the
// counting-sort arrays that group items by shard, the compacted list of
// non-empty groups, and the worker coordination fields. Batches recycle it
// through scratchPool, so a steady-state serving loop allocates nothing for
// grouping or fan-out — the price PR 2's profile showed dominating the batch
// path (a map of index slices plus a channel per call).
type batchScratch struct {
	// Counting sort by shard: counts/offsets are indexed by shard id,
	// order holds item indices grouped by shard, groups lists the
	// non-empty shards in ascending order.
	counts []int32
	order  []int32
	groups []int32

	// Series resolution scratch (StepBatchSeries only).
	tracks  []StepItem
	back    []int32
	results []BatchResult

	// Worker state, set per dispatch and cleared before release so the
	// pool never pins a caller's items or results. done is ctx.Done(),
	// captured once at dispatch: nil for context.Background(), so the
	// deadline-free path pays nothing for cancellation support.
	pool  *WrapperPool
	items []StepItem
	out   []BatchResult
	ctx   context.Context
	done  <-chan struct{}
	next  atomic.Int32
	wg    sync.WaitGroup

	// runFn is the bound method value of run, created once per scratch:
	// `go s.run()` would allocate a fresh closure per spawned worker,
	// while `go s.runFn()` starts from the cached func value for free.
	runFn func()
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// minItemsPerWorker is the fan-out threshold: a worker goroutine must have
// at least this many items of expected work before spawning it can win.
// Below it, the ~1-2 µs of spawn plus wg wake latency exceeds the stepping
// work being handed off (a pool step is ~300 ns), so small batches run
// inline regardless of the requested worker count.
const minItemsPerWorker = 256

// batchParallelism reports how many workers can make concurrent progress:
// min(NumCPU, GOMAXPROCS), evaluated per batch because GOMAXPROCS can change
// at runtime. GOMAXPROCS alone is not enough — when it exceeds the physical
// core count (common in containers and under `go test -cpu`), extra workers
// are pure scheduler churn on cores that do not exist, which is exactly the
// workers=16 slower than workers=1 regression BENCH_5 measured. A var so
// tests can force the fan-out path on machines with too few cores to reach
// it naturally.
var batchParallelism = func() int {
	p := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < p {
		return n
	}
	return p
}

// maxUsefulWorkers caps a requested worker count at the parallelism that can
// actually help for n items: one worker per minItemsPerWorker chunk of
// expected work, and never more than the schedulable CPUs.
func maxUsefulWorkers(n, workers int) int {
	if byWork := (n + minItemsPerWorker - 1) / minItemsPerWorker; workers > byWork {
		workers = byWork
	}
	if p := batchParallelism(); workers > p {
		workers = p
	}
	return workers
}

// StepBatch feeds a batch of timesteps to the pool, fanning the work out
// across shards with at most `workers` goroutines (0 means one per
// schedulable CPU). Results are returned in input order in a freshly
// allocated slice; hot loops that want the allocation-free path should hold
// onto a result slice and use StepBatchInto.
func (p *WrapperPool) StepBatch(items []StepItem, workers int) []BatchResult {
	return p.StepBatchInto(items, workers, nil)
}

// StepBatchInto is StepBatch writing into dst: when cap(dst) >= len(items)
// the results reuse dst's storage and the call allocates nothing in steady
// state — the grouping scratch comes from a sync.Pool and the fan-out runs
// without a channel or closures. The returned slice must be used instead of
// dst (it may be reallocated, exactly like append).
//
// Items are grouped by shard before dispatch, which has two effects: a
// worker takes each shard lock once per batch instead of once per item, and
// multiple items addressing the same track are applied in their input order
// (they hash to the same shard, so one worker handles them sequentially).
func (p *WrapperPool) StepBatchInto(items []StepItem, workers int, dst []BatchResult) []BatchResult {
	return p.StepBatchIntoCtx(context.Background(), items, workers, dst)
}

// traceBatch records the batch envelope event at dispatch exit (deferred
// from StepBatchIntoCtx so every return path is covered).
func (p *WrapperPool) traceBatch(start int64, n int) {
	p.trace.RecordSince(start, trace.KindBatch, trace.StatusOK, 0, 0, uint64(n))
}

// cancelStride is how many items a worker steps between cancellation
// checks: a power of two so the check is a mask, and small enough that a
// canceled batch stops within ~20 µs of the deadline at ~300 ns/step.
const cancelStride = 64

// stepSpan is the serial stepping loop with cancellation: once done is
// closed, every remaining item fails with the context's error instead of
// stepping. A nil done (context.Background()) reduces it to the plain loop.
func stepSpan(ctx context.Context, done <-chan struct{}, p *WrapperPool, items []StepItem, out []BatchResult) {
	for i := range items {
		if done != nil && i&(cancelStride-1) == 0 {
			select {
			case <-done:
				err := ctx.Err()
				for j := i; j < len(items); j++ {
					out[j].Result, out[j].Err = Result{}, err
				}
				return
			default:
			}
		}
		out[i].Result, out[i].Err = p.Step(items[i].TrackID, items[i].Outcome, items[i].Quality)
	}
}

// StepBatchIntoCtx is StepBatchInto honouring ctx: items not yet stepped
// when ctx is canceled fail with ctx.Err() instead of blocking the batch on
// work whose caller has already given up. Cancellation is polled every
// cancelStride items, so a batch overruns its deadline by at most a few
// microseconds of stepping; items already stepped keep their results (a
// step that happened is not undone by a deadline).
//
//tauw:hotpath
func (p *WrapperPool) StepBatchIntoCtx(ctx context.Context, items []StepItem, workers int, dst []BatchResult) []BatchResult {
	out := xslice.Grow(dst, len(items))
	if len(items) == 0 {
		return out
	}
	// The fan-out envelope event: per-item detail is recorded by each
	// Step; this one attributes the dispatch itself (grouping, handoff,
	// stragglers) with the item count as its argument.
	if p.trace != nil {
		//tauwcheck:ignore hotpath one defer per batch envelope, amortised across the items
		defer p.traceBatch(p.trace.Now(), len(items))
	}
	done := ctx.Done()
	if workers <= 0 {
		workers = defaultWorkers()
	}
	workers = maxUsefulWorkers(len(items), workers)
	if workers <= 1 || len(items) == 1 {
		stepSpan(ctx, done, p, items, out)
		return out
	}

	s := scratchPool.Get().(*batchScratch)
	s.group(p, items)
	if len(s.groups) == 1 {
		// One shard owns every item: the fan-out would degenerate to a
		// single worker, so run the plain loop without goroutine handoff.
		stepSpan(ctx, done, p, items, out)
		s.release()
		return out
	}
	if workers > len(s.groups) {
		workers = len(s.groups)
	}
	s.pool, s.items, s.out = p, items, out
	s.ctx, s.done = ctx, done
	s.next.Store(0)
	if s.runFn == nil {
		s.runFn = s.run
	}
	// The caller is a worker too: spawn workers-1 goroutines and drain the
	// claim loop inline. The batch never parks its own goroutine in
	// wg.Wait while a freshly scheduled worker does all the work, and the
	// spawned workers only pick up what the caller hasn't claimed yet.
	s.wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go s.runFn()
	}
	s.work()
	s.wg.Wait()
	s.release()
	return out
}

// group builds the shard partition of items with a counting sort: counts[s]
// becomes the start offset of shard s's run inside order, and groups lists
// the non-empty shards. No maps, no per-group slices — three reusable int32
// arrays sized by shard count and batch length.
func (s *batchScratch) group(p *WrapperPool, items []StepItem) {
	nshards := len(p.shards)
	s.counts = xslice.Grow(s.counts, nshards+1)
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.order = xslice.Grow(s.order, len(items))
	s.groups = s.groups[:0]
	for _, it := range items {
		s.counts[p.shardIndex(it.TrackID)]++
	}
	var sum int32
	for sh := 0; sh < nshards; sh++ {
		c := s.counts[sh]
		if c > 0 {
			s.groups = append(s.groups, int32(sh))
		}
		s.counts[sh] = sum
		sum += c
	}
	s.counts[nshards] = sum
	for i, it := range items {
		sh := p.shardIndex(it.TrackID)
		s.order[s.counts[sh]] = int32(i)
		s.counts[sh]++
	}
	// Each placement advanced counts[sh] by the shard's item count, so
	// counts[sh] is now the END of shard sh's run and counts[sh-1] its
	// start (empty shards carry the boundary through unchanged).
}

// runBounds returns the [start, end) span of shard sh's run inside order.
func (s *batchScratch) runBounds(sh int32) (int32, int32) {
	start := int32(0)
	if sh > 0 {
		start = s.counts[sh-1]
	}
	return start, s.counts[sh]
}

// run wraps work for spawned goroutines; the dispatching caller invokes
// work directly and is not registered in the WaitGroup.
func (s *batchScratch) run() {
	defer s.wg.Done()
	s.work()
}

// work is the worker loop: claim the next shard group, step its items in
// input order, repeat until the groups are drained. After cancellation the
// claim loop keeps running so every group is still visited — its items are
// filled with the context error by stepRun rather than left zero.
func (s *batchScratch) work() {
	for {
		g := int(s.next.Add(1)) - 1
		if g >= len(s.groups) {
			return
		}
		start, end := s.runBounds(s.groups[g])
		s.stepRun(s.order[start:end])
	}
}

// stepRun steps one shard group's items in input order, honouring
// cancellation every cancelStride items (see stepSpan; this is its
// order-indirected twin for the fan-out path).
func (s *batchScratch) stepRun(run []int32) {
	for k, i := range run {
		if s.done != nil && k&(cancelStride-1) == 0 {
			select {
			case <-s.done:
				err := s.ctx.Err()
				for _, j := range run[k:] {
					s.out[j].Result, s.out[j].Err = Result{}, err
				}
				return
			default:
			}
		}
		it := &s.items[i]
		s.out[i].Result, s.out[i].Err = s.pool.Step(it.TrackID, it.Outcome, it.Quality)
	}
}

// release clears the caller-owned references and returns the scratch to the
// pool; the int32 arrays keep their capacity for the next batch.
func (s *batchScratch) release() {
	s.pool, s.items, s.out = nil, nil, nil
	s.ctx, s.done = nil, nil
	for i := range s.tracks {
		s.tracks[i] = StepItem{}
	}
	s.tracks = s.tracks[:0]
	s.back = s.back[:0]
	for i := range s.results {
		s.results[i] = BatchResult{}
	}
	s.results = s.results[:0]
	scratchPool.Put(s)
}

// StepBatchSeries is StepBatch addressed by string series ids: each id is
// resolved through the sharded registry, unknown ids fail their item with
// ErrUnknownSeries (wrapped), and all resolvable items proceed as one track
// batch. Results are returned in input order in a fresh slice.
func (p *WrapperPool) StepBatchSeries(items []SeriesStepItem, workers int) []BatchResult {
	return p.StepBatchSeriesInto(items, workers, nil)
}

// StepBatchSeriesInto is StepBatchSeries writing into dst (see
// StepBatchInto): with a recycled dst the id resolution, grouping, and
// dispatch all run on pooled scratch and the call is allocation-free in
// steady state.
func (p *WrapperPool) StepBatchSeriesInto(items []SeriesStepItem, workers int, dst []BatchResult) []BatchResult {
	return p.StepBatchSeriesIntoCtx(context.Background(), items, workers, dst)
}

// StepBatchSeriesIntoCtx is StepBatchSeriesInto honouring ctx (see
// StepBatchIntoCtx): id resolution always completes — it is pure map
// lookups — and the stepping pass sheds once ctx is canceled, so unknown
// ids keep their specific error while unstepped items report ctx.Err().
func (p *WrapperPool) StepBatchSeriesIntoCtx(ctx context.Context, items []SeriesStepItem, workers int, dst []BatchResult) []BatchResult {
	out := xslice.Grow(dst, len(items))
	if len(items) == 0 {
		return out
	}
	s := scratchPool.Get().(*batchScratch)
	s.tracks = s.tracks[:0]
	s.back = s.back[:0]
	for i, it := range items {
		track, err := p.ResolveSeries(it.SeriesID)
		if err != nil {
			out[i].Result, out[i].Err = Result{}, err
			continue
		}
		s.tracks = append(s.tracks, StepItem{TrackID: track, Outcome: it.Outcome, Quality: it.Quality})
		s.back = append(s.back, int32(i))
	}
	s.results = p.StepBatchIntoCtx(ctx, s.tracks, workers, xslice.Grow(s.results, len(s.tracks)))
	for j, r := range s.results {
		out[s.back[j]] = r
	}
	s.release()
	return out
}
