package core

import "sync"

// StepItem is one entry of a batch step: one timestep for one open track.
type StepItem struct {
	TrackID int
	Outcome int
	Quality []float64
}

// SeriesStepItem is one entry of a batch step addressed by string series id.
type SeriesStepItem struct {
	SeriesID string
	Outcome  int
	Quality  []float64
}

// BatchResult pairs one batch item's result with its error; exactly one of
// the two is meaningful. Errors are per-item: one bad item never fails its
// batch.
type BatchResult struct {
	Result Result
	Err    error
}

// StepBatch feeds a batch of timesteps to the pool, fanning the work out
// across shards with at most `workers` goroutines (0 means one per
// schedulable CPU). Results are returned in input order.
//
// Items are grouped by shard before dispatch, which has two effects: a
// worker takes each shard lock once per batch instead of once per item, and
// multiple items addressing the same track are applied in their input order
// (they hash to the same shard, so one worker handles them sequentially).
func (p *WrapperPool) StepBatch(items []StepItem, workers int) []BatchResult {
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}

	// Group item indices by owning shard. For a single-item (or
	// single-shard) batch the fan-out degenerates to a plain loop with no
	// goroutine handoff.
	groups := make(map[uint64][]int, workers)
	for i, it := range items {
		s := mix64(uint64(it.TrackID)) & uint64(len(p.shards)-1)
		groups[s] = append(groups[s], i)
	}
	if len(groups) == 1 || workers == 1 {
		for i := range items {
			out[i].Result, out[i].Err = p.Step(items[i].TrackID, items[i].Outcome, items[i].Quality)
		}
		return out
	}

	work := make(chan []int, len(groups))
	for _, idxs := range groups {
		work <- idxs
	}
	close(work)
	if workers > len(groups) {
		workers = len(groups)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idxs := range work {
				for _, i := range idxs {
					out[i].Result, out[i].Err = p.Step(items[i].TrackID, items[i].Outcome, items[i].Quality)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// StepBatchSeries is StepBatch addressed by string series ids: each id is
// resolved through the sharded registry, unknown ids fail their item with
// ErrUnknownSeries (wrapped), and all resolvable items proceed as one track
// batch. Results are returned in input order.
func (p *WrapperPool) StepBatchSeries(items []SeriesStepItem, workers int) []BatchResult {
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	tracks := make([]StepItem, 0, len(items))
	// back maps position in the resolved track batch to input position.
	back := make([]int, 0, len(items))
	for i, it := range items {
		track, err := p.ResolveSeries(it.SeriesID)
		if err != nil {
			out[i].Err = err
			continue
		}
		tracks = append(tracks, StepItem{TrackID: track, Outcome: it.Outcome, Quality: it.Quality})
		back = append(back, i)
	}
	for j, r := range p.StepBatch(tracks, workers) {
		out[back[j]] = r
	}
	return out
}
