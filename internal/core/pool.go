package core

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/iese-repro/tauw/internal/trace"
	"github.com/iese-repro/tauw/internal/uw"
)

// WrapperPool manages one timeseries-aware wrapper per tracked object, the
// session layer every runtime deployment needs: tracks open and close as
// the tracker reports object changes, and each track's wrapper keeps its
// own buffer.
//
// The pool is sharded: track ids hash to one of N shards, each with its own
// lock and track map, so opens/steps/closes on different tracks almost never
// contend. Shard selection itself is lock-free. Steps for the same track are
// serialised; steps for different tracks proceed independently. The pool is
// safe for concurrent use.
//
// Alongside the integer track ids the pool keeps a sharded registry of
// string series ids (OpenSeries/StepSeries/CloseSeries), the session handle
// a network serving layer hands to clients.
type WrapperPool struct {
	base      *uw.Wrapper
	taqim     *uw.QualityImpactModel
	cfg       Config
	maxTracks int

	// model is the serving taQIM revision, hot-swappable at runtime
	// (SwapModel) without blocking or tearing concurrent steps: every step
	// loads the pointer exactly once, so it sees one consistent
	// (model, version) pair, and the version is stamped into its Result.
	// The construction-time taqim field above stays as revision 1 and as
	// the probe for validating new tracks' configuration.
	model atomic.Pointer[modelState]

	// active counts open tracks; nextSeries mints monotonically increasing
	// series handles. Both are atomics so neither is a global hot spot.
	active     atomic.Int64
	nextSeries atomic.Uint64

	shards []trackShard
	series []seriesShard
	// shardShift is 64 - log2(len(shards)): shard selection takes the top
	// bits of the Fibonacci hash (see shardIndex).
	shardShift uint8

	// monitored enables the runtime calibration-monitoring hooks (see
	// monitor.go): shard-local step counters in stepStats and, when
	// ringSize > 0, a per-track provenance ring feedback is joined against.
	monitored bool
	ringSize  int
	stepStats []stepStatsShard

	// journaling enables the close journal the durability layer drains (see
	// WithStateJournal / DrainClosed in state.go). journalMu only guards the
	// journal slice; it is taken inside shard locks (Close) and never the
	// other way around.
	journaling bool
	journalMu  sync.Mutex
	journal    []int

	// trace is the flight recorder (nil on untraced pools: the hot paths
	// pay one predictable branch per event site and nothing else).
	trace *trace.Recorder
}

type pooledWrapper struct {
	// mu guards the wrapper and its ring. Trace recording while holding it
	// is forbidden (the ring reservation spin must never extend a critical
	// section); record after unlock, as Step does.
	//
	//tauw:notrace
	mu sync.Mutex
	w  *Wrapper
	// ring is the track's provenance ring (nil unless the pool was built
	// WithMonitoring and a positive ring size). Slots are addressed by the
	// step's TotalSteps modulo the ring length; guarded by mu.
	ring []provRecord
	// dirty marks state mutated since the durability layer's last capture
	// (see CollectDirty in state.go); guarded by mu. Set unconditionally on
	// the mutation paths — a plain store under a lock the path already
	// holds is cheaper than branching on whether anyone collects it.
	dirty bool
}

// PoolOption customises pool construction.
type PoolOption func(*poolOptions)

type poolOptions struct {
	shards    int
	monitored bool
	ringSize  int
	journal   bool
	trace     *trace.Recorder
}

// WithTrace wires the pool's event sites — step enter/exit, batch fan-out,
// feedback join, model swap — into the flight recorder. Recording one
// event costs two atomic operations and zero allocations (see
// internal/trace), so the step path keeps its 0 allocs/op contract;
// BenchmarkPoolStepTraced holds the line in CI.
func WithTrace(rec *trace.Recorder) PoolOption {
	return func(o *poolOptions) { o.trace = rec }
}

// WithShards overrides the shard count (rounded up to a power of two;
// 0 keeps DefaultShards). More shards reduce contention at slightly more
// memory; one shard degenerates to the classic single-mutex pool.
func WithShards(n int) PoolOption {
	return func(o *poolOptions) { o.shards = n }
}

// NewWrapperPool creates a pool that serves at most maxTracks concurrent
// tracks (0 means unlimited).
func NewWrapperPool(base *uw.Wrapper, taqim *uw.QualityImpactModel, cfg Config, maxTracks int, opts ...PoolOption) (*WrapperPool, error) {
	if base == nil || taqim == nil {
		return nil, errors.New("core: base wrapper and taQIM are required")
	}
	if maxTracks < 0 {
		return nil, fmt.Errorf("core: maxTracks %d must be >= 0", maxTracks)
	}
	var o poolOptions
	for _, opt := range opts {
		opt(&o)
	}
	nshards, err := normShards(o.shards)
	if err != nil {
		return nil, err
	}
	if o.ringSize < 0 {
		return nil, fmt.Errorf("core: feedback ring size %d must be >= 0", o.ringSize)
	}
	// Validate the config once by assembling a probe wrapper.
	if _, err := NewWrapper(base, taqim, cfg); err != nil {
		return nil, err
	}
	p := &WrapperPool{
		base:       base,
		taqim:      taqim,
		cfg:        cfg,
		maxTracks:  maxTracks,
		shards:     make([]trackShard, nshards),
		series:     make([]seriesShard, nshards),
		shardShift: uint8(64 - bits.TrailingZeros(uint(nshards))),
		monitored:  o.monitored,
		ringSize:   o.ringSize,
		journaling: o.journal,
		trace:      o.trace,
	}
	if p.monitored {
		p.stepStats = make([]stepStatsShard, nshards)
	}
	p.model.Store(&modelState{qim: taqim, version: 1})
	for i := range p.shards {
		p.shards[i].tracks = make(map[int]*pooledWrapper)
	}
	for i := range p.series {
		p.series[i].ids = make(map[string]int)
	}
	return p, nil
}

// NumShards reports the pool's shard count (a power of two).
func (p *WrapperPool) NumShards() int { return len(p.shards) }

// ErrTrackBudget is returned when opening a track would exceed the pool's
// budget.
var ErrTrackBudget = errors.New("core: track budget exhausted")

// ErrUnknownTrack is returned when stepping or closing a track that is not
// open.
var ErrUnknownTrack = errors.New("core: unknown track")

// ErrUnknownSeries is returned when stepping or closing a string series id
// that is not registered (never issued, or already closed).
var ErrUnknownSeries = errors.New("core: unknown series")

// Open starts a fresh timeseries for the given track id; an existing track
// with the same id is reset (the tracker said the object changed). Track
// ids must be non-negative: the negative space is reserved for the series
// registry (see OpenSeries), and letting callers open into it would alias
// registry-owned tracks.
func (p *WrapperPool) Open(trackID int) error {
	if trackID < 0 {
		return fmt.Errorf("core: track id %d must be >= 0 (negative ids are reserved for series)", trackID)
	}
	return p.open(trackID)
}

func (p *WrapperPool) open(trackID int) error {
	sh := p.trackShardFor(trackID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if pw, ok := sh.tracks[trackID]; ok {
		pw.mu.Lock()
		pw.w.NewSeries()
		// A reset restarts TotalSteps at 1, so surviving ring slots from
		// the previous series would collide with the new step numbers:
		// clear them, making feedback for the dead series unjoinable
		// (ErrStepUnavailable) instead of silently joined to the wrong
		// estimate.
		clear(pw.ring)
		pw.dirty = true
		pw.mu.Unlock()
		return nil
	}
	// The budget is enforced with an optimistic reservation: claim a slot,
	// roll back if that overshot. Holding only the shard lock here means
	// concurrent opens on other shards cannot be double-counted past the
	// budget, only transiently rejected at the boundary.
	if n := p.active.Add(1); p.maxTracks > 0 && n > int64(p.maxTracks) {
		p.active.Add(-1)
		return fmt.Errorf("%w: %d tracks open", ErrTrackBudget, p.maxTracks)
	}
	w, err := NewWrapper(p.base, p.taqim, p.cfg)
	if err != nil {
		p.active.Add(-1)
		return err
	}
	pw := &pooledWrapper{w: w, dirty: true}
	if p.monitored && p.ringSize > 0 {
		pw.ring = make([]provRecord, p.ringSize)
	}
	sh.tracks[trackID] = pw
	return nil
}

// Step feeds one timestep to the track's wrapper. The unlock is explicit
// rather than deferred: Step is the pool's hottest function and the
// wrapper's step is pure arithmetic over owned state, so there is no panic
// path the defer would be protecting.
//
//tauw:hotpath
func (p *WrapperPool) Step(trackID, outcome int, quality []float64) (Result, error) {
	// Trace timing reads the clock only on traced pools; the event itself
	// is recorded after the wrapper lock drops so the ring's spin word
	// never nests inside pw.mu.
	var traceStart int64
	if p.trace != nil {
		traceStart = p.trace.Now()
	}
	shard := p.shardIndex(trackID)
	sh := &p.shards[shard]
	sh.mu.Lock()
	pw, ok := sh.tracks[trackID]
	sh.mu.Unlock()
	if !ok {
		if p.trace != nil {
			p.trace.RecordSince(traceStart, trace.KindStep, trace.StatusNotFound, uint16(shard), uint64(trackID), 0)
		}
		return Result{}, fmt.Errorf("%w: %d", ErrUnknownTrack, trackID)
	}
	pw.mu.Lock()
	// One atomic load pins this step's model revision: a concurrent
	// SwapModel replaces the pointer for later steps but can never tear
	// this one (the compiled tree behind pm.qim is immutable).
	pm := p.model.Load()
	res, err := pw.w.stepScopedModel(pm.qim, outcome, quality, nil)
	if err == nil {
		res.ModelVersion = pm.version
		pw.dirty = true
		if p.monitored {
			p.recordStep(pw, shard, &res)
		}
	}
	pw.mu.Unlock()
	if p.trace != nil {
		status := trace.StatusOK
		if err != nil {
			status = trace.StatusError
		}
		p.trace.RecordSince(traceStart, trace.KindStep, status, uint16(shard), uint64(trackID), pm.version)
	}
	return res, err
}

// Close retires a track.
func (p *WrapperPool) Close(trackID int) error {
	sh := p.trackShardFor(trackID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.tracks[trackID]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTrack, trackID)
	}
	delete(sh.tracks, trackID)
	p.active.Add(-1)
	if p.journaling {
		p.journalMu.Lock()
		p.journal = append(p.journal, trackID)
		p.journalMu.Unlock()
	}
	return nil
}

// Active returns the number of open tracks.
func (p *WrapperPool) Active() int { return int(p.active.Load()) }

// OpenSeries mints a fresh string series id, opens its track, and registers
// the id. The track opens before the id becomes resolvable, so a failed
// open (e.g. exhausted budget) leaves nothing behind — later steps on the
// minted id report ErrUnknownSeries, a not-found condition — and a raced
// CloseSeries on a predicted id can never orphan a half-open track.
//
// Series tracks live in the negative track-id space (see seriesTrack), so
// they never collide with tracker-assigned ids passed to Open directly.
func (p *WrapperPool) OpenSeries() (string, error) {
	n := p.nextSeries.Add(1)
	id := "s" + strconv.FormatUint(n, 10)
	track := seriesTrack(n)
	if err := p.open(track); err != nil {
		return "", err
	}
	ssh := p.seriesShardFor(id)
	ssh.mu.Lock()
	ssh.ids[id] = track
	ssh.mu.Unlock()
	return id, nil
}

// seriesTrack maps a minted series number onto the negative track-id space.
// Trackers hand non-negative object ids to Open; keeping registry-minted
// tracks negative means the two id families can share one pool without the
// series layer ever resetting or closing a tracker's track.
func seriesTrack(n uint64) int { return -int(n) }

// ResolveSeries maps a series id to its track id.
func (p *WrapperPool) ResolveSeries(id string) (int, error) {
	ssh := p.seriesShardFor(id)
	ssh.mu.Lock()
	track, ok := ssh.ids[id]
	ssh.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownSeries, id)
	}
	return track, nil
}

// StepSeries feeds one timestep to the series' wrapper.
func (p *WrapperPool) StepSeries(id string, outcome int, quality []float64) (Result, error) {
	track, err := p.ResolveSeries(id)
	if err != nil {
		return Result{}, err
	}
	return p.Step(track, outcome, quality)
}

// CloseSeries retires a series and its track.
func (p *WrapperPool) CloseSeries(id string) error {
	ssh := p.seriesShardFor(id)
	ssh.mu.Lock()
	track, ok := ssh.ids[id]
	if ok {
		delete(ssh.ids, id)
	}
	ssh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSeries, id)
	}
	return p.Close(track)
}
