package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/iese-repro/tauw/internal/uw"
)

// WrapperPool manages one timeseries-aware wrapper per tracked object, the
// session layer every runtime deployment needs: tracks open and close as
// the tracker reports object changes, and each track's wrapper keeps its
// own buffer. The pool is safe for concurrent use; steps for the same track
// are serialised, steps for different tracks proceed independently.
type WrapperPool struct {
	base      *uw.Wrapper
	taqim     *uw.QualityImpactModel
	cfg       Config
	maxTracks int

	mu     sync.Mutex
	tracks map[int]*pooledWrapper
}

type pooledWrapper struct {
	mu sync.Mutex
	w  *Wrapper
}

// NewWrapperPool creates a pool that serves at most maxTracks concurrent
// tracks (0 means unlimited).
func NewWrapperPool(base *uw.Wrapper, taqim *uw.QualityImpactModel, cfg Config, maxTracks int) (*WrapperPool, error) {
	if base == nil || taqim == nil {
		return nil, errors.New("core: base wrapper and taQIM are required")
	}
	if maxTracks < 0 {
		return nil, fmt.Errorf("core: maxTracks %d must be >= 0", maxTracks)
	}
	// Validate the config once by assembling a probe wrapper.
	if _, err := NewWrapper(base, taqim, cfg); err != nil {
		return nil, err
	}
	return &WrapperPool{
		base:      base,
		taqim:     taqim,
		cfg:       cfg,
		maxTracks: maxTracks,
		tracks:    make(map[int]*pooledWrapper),
	}, nil
}

// ErrTrackBudget is returned when opening a track would exceed the pool's
// budget.
var ErrTrackBudget = errors.New("core: track budget exhausted")

// ErrUnknownTrack is returned when stepping or closing a track that is not
// open.
var ErrUnknownTrack = errors.New("core: unknown track")

// Open starts a fresh timeseries for the given track id; an existing track
// with the same id is reset (the tracker said the object changed).
func (p *WrapperPool) Open(trackID int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pw, ok := p.tracks[trackID]; ok {
		pw.mu.Lock()
		pw.w.NewSeries()
		pw.mu.Unlock()
		return nil
	}
	if p.maxTracks > 0 && len(p.tracks) >= p.maxTracks {
		return fmt.Errorf("%w: %d tracks open", ErrTrackBudget, len(p.tracks))
	}
	w, err := NewWrapper(p.base, p.taqim, p.cfg)
	if err != nil {
		return err
	}
	p.tracks[trackID] = &pooledWrapper{w: w}
	return nil
}

// Step feeds one timestep to the track's wrapper.
func (p *WrapperPool) Step(trackID, outcome int, quality []float64) (Result, error) {
	p.mu.Lock()
	pw, ok := p.tracks[trackID]
	p.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("%w: %d", ErrUnknownTrack, trackID)
	}
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.w.Step(outcome, quality)
}

// Close retires a track.
func (p *WrapperPool) Close(trackID int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tracks[trackID]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTrack, trackID)
	}
	delete(p.tracks, trackID)
	return nil
}

// Active returns the number of open tracks.
func (p *WrapperPool) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.tracks)
}
