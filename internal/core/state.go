// state.go is the snapshot/restore surface of the wrapper pool — the core
// half of the durability layer (internal/store owns the encoding and the
// backends; this file owns what the state *is*). A track's restorable state
// is small and flat: the buffered records, the running per-outcome
// statistics, the incremental fusion tally, and the provenance ring. The
// contract is exactness: restoring a SeriesState into a fresh pool and
// stepping must be bit-identical to stepping the uninterrupted wrapper,
// across ring eviction, feedback joins, and model hot-swaps
// (TestCheckpointRestoreDifferential pins this).
//
// The hot step path pays one plain bool store under a lock it already
// holds (pooledWrapper.dirty); everything else — dirty collection, close
// journaling, snapshot assembly — runs on the background flusher's clock,
// off the serving path.
package core

import (
	"errors"
	"fmt"
	"strconv"

	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/uw"
)

// OutcomeStat is the exported running state of one outcome class in a
// track's buffer: the buffered vote count and certainty sum behind the
// O(1) taQF derivation.
type OutcomeStat struct {
	Outcome   int
	Count     int
	Certainty float64
}

// ProvEntry is one live slot of a track's provenance ring, exported so
// ground-truth feedback for pre-restart steps still joins (and duplicate
// feedback is still rejected) after a restore.
type ProvEntry struct {
	// Step is the 1-based TotalSteps of the judged estimate (never 0; empty
	// slots are not exported).
	Step         uint64
	Uncertainty  float64
	ModelVersion uint64
	Fused        int32
	Leaf         int32
	Taken        bool
}

// SeriesState is the complete restorable state of one open track. A single
// value can be reused across snapshots — every slice field is appended into
// at its existing capacity, so a steady-state flush loop allocates nothing
// once the high-water marks are reached.
type SeriesState struct {
	// Track is the pool track id; negative ids are registry-minted series
	// (their string id is derivable, see SeriesID).
	Track int
	// Total is the number of steps since the series began, including
	// records a full ring buffer has evicted.
	Total int
	// Records holds the buffered window in time order. Quality slices alias
	// the state's internal arena and are only valid until the next snapshot
	// into this value.
	Records []Record
	// Stats holds the running per-outcome statistics, sorted by outcome so
	// two snapshots of the same buffer are identical.
	Stats []OutcomeStat
	// HasTally reports whether Tally carries exported fusion state; when
	// false (fuser without an exact-state tally), restore replays the
	// buffered window instead.
	HasTally bool
	Tally    fusion.TallyState
	// Ring holds the live provenance-ring slots in ring order.
	Ring []ProvEntry

	// arena backs the Records' Quality copies (grown once per snapshot so
	// the sub-slices never move mid-fill).
	arena []float64
}

// SeriesID returns the string series id of a registry-minted track ("s<n>"
// for Track -n) and "" for tracker-assigned non-negative tracks.
func (st *SeriesState) SeriesID() string {
	if st.Track >= 0 {
		return ""
	}
	return "s" + strconv.FormatUint(uint64(-int64(st.Track)), 10)
}

// snapshotInto captures the track's state. Called with pw.mu held; the
// capture is a deep copy, so the caller may encode st after releasing the
// lock.
func (pw *pooledWrapper) snapshotInto(trackID int, st *SeriesState) {
	w := pw.w
	st.Track = trackID
	st.Total = w.buf.total

	totalQ := 0
	w.buf.each(func(r Record) { totalQ += len(r.Quality) })
	if cap(st.arena) < totalQ {
		st.arena = make([]float64, 0, totalQ)
	}
	st.arena = st.arena[:0]
	st.Records = st.Records[:0]
	w.buf.each(func(r Record) {
		start := len(st.arena)
		st.arena = append(st.arena, r.Quality...)
		r.Quality = st.arena[start:len(st.arena):len(st.arena)]
		st.Records = append(st.Records, r)
	})

	st.Stats = st.Stats[:0]
	for o, s := range w.buf.stats {
		st.Stats = append(st.Stats, OutcomeStat{Outcome: o, Count: s.count, Certainty: s.certainty})
	}
	sortStats(st.Stats)

	st.HasTally = false
	st.Tally.Clock = 0
	st.Tally.Votes = st.Tally.Votes[:0]
	if stl, ok := w.tally.(fusion.StatefulTally); ok {
		stl.ExportState(&st.Tally)
		st.HasTally = true
	}

	st.Ring = st.Ring[:0]
	for i := range pw.ring {
		s := &pw.ring[i]
		if s.step == 0 {
			continue
		}
		st.Ring = append(st.Ring, ProvEntry{
			Step:         s.step,
			Uncertainty:  s.uncertainty,
			ModelVersion: s.modelVer,
			Fused:        s.fused,
			Leaf:         s.taqimLeaf,
			Taken:        s.taken,
		})
	}
}

// sortStats orders entries by outcome (insertion sort over the handful of
// distinct classes one window holds, mirroring fusion.sortVotes).
func sortStats(stats []OutcomeStat) {
	for i := 1; i < len(stats); i++ {
		s := stats[i]
		j := i - 1
		for j >= 0 && stats[j].Outcome > s.Outcome {
			stats[j+1] = stats[j]
			j--
		}
		stats[j+1] = s
	}
}

// SnapshotTrack captures one open track's state into st (deep copy,
// reusing st's capacity). It does not clear the track's dirty mark — use
// CollectDirty/ForEachTrack for the flusher's clearing capture.
func (p *WrapperPool) SnapshotTrack(trackID int, st *SeriesState) error {
	sh := p.trackShardFor(trackID)
	sh.mu.Lock()
	pw, ok := sh.tracks[trackID]
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTrack, trackID)
	}
	pw.mu.Lock()
	pw.snapshotInto(trackID, st)
	pw.mu.Unlock()
	return nil
}

// CollectDirty snapshots every track stepped (or opened, reset, or fed
// back to) since its last capture, clearing the dirty mark as each is
// captured, and passes each snapshot to visit. st is the reused scratch
// capture — visit must finish with it before returning. If visit fails the
// track is re-marked dirty and the sweep stops, so no mutation is lost to
// a failed flush. Returns the number of tracks visited.
//
// The durability layer calls this on the flush clock and must append any
// drained close records (DrainClosed) to the log *after* the snapshots of
// the same sweep: a track closed mid-sweep may still be captured, and the
// ordering guarantees its close record lands later in the log, so recovery
// converges on closed rather than resurrected.
func (p *WrapperPool) CollectDirty(st *SeriesState, visit func(*SeriesState) error) (int, error) {
	return p.sweepTracks(st, visit, true)
}

// ForEachTrack snapshots every open track regardless of dirtiness — the
// full-checkpoint capture — clearing dirty marks along the way (the
// checkpoint supersedes any pending flush). Same visit contract as
// CollectDirty.
func (p *WrapperPool) ForEachTrack(st *SeriesState, visit func(*SeriesState) error) (int, error) {
	return p.sweepTracks(st, visit, false)
}

func (p *WrapperPool) sweepTracks(st *SeriesState, visit func(*SeriesState) error, onlyDirty bool) (int, error) {
	visited := 0
	var pws []*pooledWrapper
	var ids []int
	for si := range p.shards {
		sh := &p.shards[si]
		// Collect under the shard lock, snapshot after releasing it: holding
		// sh.mu while taking pw.mu would deadlock against open()'s reset
		// branch, and holding it across the copy would stall the shard's
		// serving path for the whole sweep.
		sh.mu.Lock()
		pws, ids = pws[:0], ids[:0]
		for id, pw := range sh.tracks {
			pws = append(pws, pw)
			ids = append(ids, id)
		}
		sh.mu.Unlock()
		for i, pw := range pws {
			pw.mu.Lock()
			if onlyDirty && !pw.dirty {
				pw.mu.Unlock()
				continue
			}
			pw.dirty = false
			pw.snapshotInto(ids[i], st)
			pw.mu.Unlock()
			if err := visit(st); err != nil {
				pw.mu.Lock()
				pw.dirty = true
				pw.mu.Unlock()
				return visited, err
			}
			visited++
		}
	}
	return visited, nil
}

// RestoreTrack rebuilds one track from a snapshot, replacing any track
// already open under the same id. The restored wrapper is built from the
// pool's own base/taQIM/config — the snapshot carries series state, not
// model state (InstallModel restores a hot-swapped model). The track comes
// back clean (not dirty): its state is, by definition, what the store
// already holds.
func (p *WrapperPool) RestoreTrack(st *SeriesState) error {
	limit := p.cfg.BufferLimit
	if limit > 0 && len(st.Records) > limit {
		return fmt.Errorf("core: restore track %d: %d buffered records exceed buffer limit %d",
			st.Track, len(st.Records), limit)
	}
	if st.Total < len(st.Records) {
		return fmt.Errorf("core: restore track %d: total steps %d < %d buffered records",
			st.Track, st.Total, len(st.Records))
	}
	w, err := NewWrapper(p.base, p.taqim, p.cfg)
	if err != nil {
		return err
	}

	// Buffer: records in time order with start=0 is a canonical ring layout
	// — eviction order from here on matches the uninterrupted original.
	b := w.buf
	totalQ := 0
	for i := range st.Records {
		totalQ += len(st.Records[i].Quality)
	}
	var arena []float64
	if totalQ > 0 {
		arena = make([]float64, 0, totalQ)
	}
	for _, r := range st.Records {
		if len(r.Quality) > 0 {
			start := len(arena)
			arena = append(arena, r.Quality...)
			r.Quality = arena[start:len(arena):len(arena)]
		}
		b.records = append(b.records, r)
	}
	b.start = 0
	b.full = limit > 0 && len(b.records) == limit
	b.total = st.Total
	for _, s := range st.Stats {
		if s.Count <= 0 {
			return fmt.Errorf("core: restore track %d: outcome %d count %d must be positive",
				st.Track, s.Outcome, s.Count)
		}
		if _, dup := b.stats[s.Outcome]; dup {
			return fmt.Errorf("core: restore track %d: duplicate stats for outcome %d", st.Track, s.Outcome)
		}
		b.stats[s.Outcome] = outcomeStat{count: s.Count, certainty: s.Certainty}
	}

	// Tally: exact state when both sides speak StatefulTally; otherwise
	// replay the buffered window — counts come out identical and relative
	// push order (what the recency tie-break compares) is preserved.
	if st.HasTally {
		if stl, ok := w.tally.(fusion.StatefulTally); ok {
			if err := stl.RestoreState(&st.Tally); err != nil {
				return fmt.Errorf("core: restore track %d: %w", st.Track, err)
			}
		} else if w.tally != nil {
			replayTally(w.tally, b)
		}
	} else if w.tally != nil {
		replayTally(w.tally, b)
	}

	var ring []provRecord
	if p.monitored && p.ringSize > 0 {
		ring = make([]provRecord, p.ringSize)
		for _, e := range st.Ring {
			if e.Step == 0 {
				continue
			}
			slot := &ring[(e.Step-1)%uint64(p.ringSize)]
			// A snapshot taken under a different -feedback-ring size can map
			// two entries to one slot; the newer step wins, like the live ring.
			if e.Step > slot.step {
				*slot = provRecord{
					step:        e.Step,
					uncertainty: e.Uncertainty,
					modelVer:    e.ModelVersion,
					fused:       e.Fused,
					taqimLeaf:   e.Leaf,
					taken:       e.Taken,
				}
			}
		}
	}

	pw := &pooledWrapper{w: w, ring: ring}
	sh := p.trackShardFor(st.Track)
	sh.mu.Lock()
	_, existed := sh.tracks[st.Track]
	if !existed {
		if n := p.active.Add(1); p.maxTracks > 0 && n > int64(p.maxTracks) {
			p.active.Add(-1)
			sh.mu.Unlock()
			return fmt.Errorf("%w: %d tracks open", ErrTrackBudget, p.maxTracks)
		}
	}
	sh.tracks[st.Track] = pw
	sh.mu.Unlock()

	if st.Track < 0 {
		n := uint64(-int64(st.Track))
		id := "s" + strconv.FormatUint(n, 10)
		ssh := p.seriesShardFor(id)
		ssh.mu.Lock()
		ssh.ids[id] = st.Track
		ssh.mu.Unlock()
		p.SetSeriesCounter(n)
	}
	return nil
}

// replayTally rebuilds an incremental tally from the buffered window.
func replayTally(t fusion.Tally, b *Buffer) {
	b.each(func(r Record) { t.Push(r.Outcome, r.Uncertainty) })
}

// SetSeriesCounter raises the series-id counter to at least n, so ids
// minted after a restore never collide with restored series. Lowering is
// refused silently (restores apply in arbitrary order).
func (p *WrapperPool) SetSeriesCounter(n uint64) {
	for {
		cur := p.nextSeries.Load()
		if cur >= n || p.nextSeries.CompareAndSwap(cur, n) {
			return
		}
	}
}

// SeriesCounter reports the series-id counter (the number of series ever
// minted), checkpointed so restarts keep minting unique ids.
func (p *WrapperPool) SeriesCounter() uint64 { return p.nextSeries.Load() }

// InstallModel restores a hot-swapped serving model at the given version —
// the restart counterpart of SwapModel, for replaying a checkpointed
// recalibration. The same shape guards apply; versions can only move
// forward.
func (p *WrapperPool) InstallModel(next *uw.QualityImpactModel, version uint64) error {
	if next == nil {
		return errors.New("core: installed model must not be nil")
	}
	if version == 0 {
		return errors.New("core: model version 0 is reserved for unversioned wrappers")
	}
	for {
		cur := p.model.Load()
		if got, want := next.NumFeatures(), cur.qim.NumFeatures(); got != want {
			return fmt.Errorf("%w: scores %d features, pool assembles %d", ErrModelShape, got, want)
		}
		if got, want := next.NumRegions(), cur.qim.NumRegions(); got != want {
			return fmt.Errorf("%w: %d regions, serving model has %d", ErrModelShape, got, want)
		}
		if version < cur.version {
			return fmt.Errorf("core: installed model version %d would regress serving version %d",
				version, cur.version)
		}
		if p.model.CompareAndSwap(cur, &modelState{qim: next, version: version}) {
			return nil
		}
	}
}

// PoolStats is the exported aggregate of the pool's shard-local step
// accounting — the monitored-step counters behind StepCount,
// UncertaintySum, and OutcomeCounts. Restart-restoring it keeps the
// tauw_steps_total family continuous across a crash.
type PoolStats struct {
	// UncertaintyFP is the served-uncertainty sum in the pool's fixed-point
	// units (see uncertaintyScale).
	UncertaintyFP uint64
	// Outcomes counts steps by fused outcome bucket; the last slot is the
	// overflow bucket.
	Outcomes [NumOutcomeBuckets + 1]uint64
}

// ExportStats aggregates the shard-local step counters into st.
func (p *WrapperPool) ExportStats(st *PoolStats) {
	st.UncertaintyFP = 0
	clear(st.Outcomes[:])
	for i := range p.stepStats {
		s := &p.stepStats[i]
		st.UncertaintyFP += s.uncertaintyFP.Load()
		for b := 0; b <= NumOutcomeBuckets; b++ {
			st.Outcomes[b] += s.outcomes[b].Load()
		}
	}
}

// RestoreStats folds an exported aggregate into the pool (shard 0 — every
// reader aggregates across shards, so placement is unobservable). Additive,
// so it composes with steps already served. No-op on unmonitored pools.
func (p *WrapperPool) RestoreStats(st *PoolStats) {
	if !p.monitored {
		return
	}
	s0 := &p.stepStats[0]
	if st.UncertaintyFP > 0 {
		s0.uncertaintyFP.Add(st.UncertaintyFP)
	}
	for b := 0; b <= NumOutcomeBuckets; b++ {
		if st.Outcomes[b] > 0 {
			s0.outcomes[b].Add(st.Outcomes[b])
		}
	}
}

// WithStateJournal enables the close journal the durability layer drains:
// every Close/CloseSeries appends the retired track id, so the write-ahead
// log can record closes and recovery converges on the live track set.
// Without this option closes are not journalled (nothing drains the
// journal in a pool that isn't checkpointed, and it must not grow without
// bound).
func WithStateJournal() PoolOption {
	return func(o *poolOptions) { o.journal = true }
}

// DrainClosed appends the track ids closed since the last drain to dst and
// returns it, clearing the journal. The flusher must write these *after*
// the same sweep's series snapshots (see CollectDirty).
func (p *WrapperPool) DrainClosed(dst []int) []int {
	p.journalMu.Lock()
	dst = append(dst, p.journal...)
	p.journal = p.journal[:0]
	p.journalMu.Unlock()
	return dst
}
