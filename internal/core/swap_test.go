package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/iese-repro/tauw/internal/dtree"
)

func TestSwapModelVersioning(t *testing.T) {
	pool, st := monitoredPoolFixture(t, 8)
	if err := pool.Open(1); err != nil {
		t.Fatal(err)
	}
	if got := pool.ModelVersion(); got != 1 {
		t.Fatalf("initial ModelVersion = %d, want 1", got)
	}
	s := st.testSeries[0]
	res, err := pool.Step(1, s.Outcomes[0], s.Quality[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelVersion != 1 {
		t.Fatalf("pre-swap step stamped version %d, want 1", res.ModelVersion)
	}

	// Recalibrate the serving model with heavy failure evidence for the
	// region the fixture's steps land in: the swapped-in revision must
	// serve a higher bound under version 2.
	ev := []dtree.LeafEvidence{{LeafID: res.TAQIMLeaf, Count: 5000, Events: 4500}}
	next, deltas, err := pool.CurrentTAQIM().Recalibrate(ev, dtree.RecalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var refreshed *dtree.LeafDelta
	for i := range deltas {
		if deltas[i].LeafID == res.TAQIMLeaf {
			refreshed = &deltas[i]
		}
	}
	if refreshed == nil || !refreshed.Refreshed || refreshed.NewValue <= refreshed.OldValue {
		t.Fatalf("evidence did not lift the target leaf: %+v", refreshed)
	}
	oldV, newV, err := pool.SwapModel(next)
	if err != nil {
		t.Fatal(err)
	}
	if oldV != 1 || newV != 2 {
		t.Fatalf("swap versions = (%d, %d), want (1, 2)", oldV, newV)
	}
	if got := pool.ModelVersion(); got != 2 {
		t.Fatalf("post-swap ModelVersion = %d, want 2", got)
	}
	res2, err := pool.Step(1, s.Outcomes[0], s.Quality[0])
	if err != nil {
		t.Fatal(err)
	}
	if res2.ModelVersion != 2 {
		t.Fatalf("post-swap step stamped version %d, want 2", res2.ModelVersion)
	}
	// Feedback joined to pre- and post-swap steps reports each step's own
	// model revision.
	rec1, err := pool.TakeFeedback(1, res.TotalSteps)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := pool.TakeFeedback(1, res2.TotalSteps)
	if err != nil {
		t.Fatal(err)
	}
	if rec1.ModelVersion != 1 || rec2.ModelVersion != 2 {
		t.Fatalf("joined versions = (%d, %d), want (1, 2)", rec1.ModelVersion, rec2.ModelVersion)
	}
}

func TestSwapModelGuards(t *testing.T) {
	pool, st := poolFixture(t, 0)
	if _, _, err := pool.SwapModel(nil); err == nil {
		t.Error("nil model must not swap")
	}
	// A taQIM fitted on a narrower feature subset scores a different row
	// width than the pool's wrappers assemble.
	narrow := fitTAQIM(t, st, []Feature{Ratio})
	if _, _, err := pool.SwapModel(narrow); !errors.Is(err, ErrModelShape) {
		t.Errorf("narrow model swap = %v, want ErrModelShape", err)
	}
	if got := pool.ModelVersion(); got != 1 {
		t.Errorf("failed swaps must not advance the version: %d", got)
	}
}

// TestPoolStepDuringSwapRace drives concurrent steps, feedback joins,
// repeated model swaps, and scrape reads through one pool. Under -race it is
// the tentpole's core safety claim: a hot-swap never blocks or tears a step,
// and every step observes exactly one (model, version) pair — visible as a
// non-decreasing version sequence per track (steps of a track are
// serialised) whose uncertainty matches one of the two models' bounds.
func TestPoolStepDuringSwapRace(t *testing.T) {
	pool, st := monitoredPoolFixture(t, 32)
	const tracks = 8
	const stepsPerTrack = 300
	for id := 0; id < tracks; id++ {
		if err := pool.Open(id); err != nil {
			t.Fatal(err)
		}
	}
	base := pool.CurrentTAQIM()
	lifted, _, err := base.Recalibrate(
		[]dtree.LeafEvidence{{LeafID: 0, Count: 1000, Events: 900}}, dtree.RecalibConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := st.testSeries[0]

	var stop atomic.Bool
	var aux sync.WaitGroup
	// Swapper: flip between the two revisions as fast as it can.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for i := 0; !stop.Load(); i++ {
			m := base
			if i%2 == 0 {
				m = lifted
			}
			if _, _, err := pool.SwapModel(m); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Scraper: aggregate the monitoring counters continuously.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for !stop.Load() {
			_ = pool.StepCount()
			_ = pool.UncertaintySum()
			_ = pool.ModelVersion()
			pool.OutcomeCounts(func(int, uint64) {})
		}
	}()
	// Steppers + feedback per track.
	var wg sync.WaitGroup
	for id := 0; id < tracks; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var lastVer uint64
			for j := 0; j < stepsPerTrack; j++ {
				res, err := pool.Step(id, s.Outcomes[j%len(s.Outcomes)], s.Quality[j%len(s.Quality)])
				if err != nil {
					t.Error(err)
					return
				}
				if res.ModelVersion < lastVer {
					t.Errorf("track %d: model version went backwards %d -> %d", id, lastVer, res.ModelVersion)
					return
				}
				lastVer = res.ModelVersion
				if rec, err := pool.TakeFeedback(id, res.TotalSteps); err == nil {
					if rec.ModelVersion != res.ModelVersion {
						t.Errorf("track %d: feedback version %d, step version %d", id, rec.ModelVersion, res.ModelVersion)
						return
					}
				} else if !errors.Is(err, ErrStepUnavailable) && !errors.Is(err, ErrDuplicateFeedback) {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	stop.Store(true)
	aux.Wait()
}
