package core

import (
	"testing"
	"unsafe"
)

// TestShardPadding pins the false-sharing defence: every shard struct must
// be padded to a whole number of shardPad strides, so that in the pool's
// shard arrays no two shards' hot fields (mutex + map header) can land on
// the same cache line — or the same adjacent-line prefetch pair — whatever
// the backing array's base alignment.
func TestShardPadding(t *testing.T) {
	if s := unsafe.Sizeof(trackShard{}); s%shardPad != 0 || s == 0 {
		t.Errorf("trackShard size %d is not a positive multiple of %d", s, shardPad)
	}
	if s := unsafe.Sizeof(seriesShard{}); s%shardPad != 0 || s == 0 {
		t.Errorf("seriesShard size %d is not a positive multiple of %d", s, shardPad)
	}
	if s := unsafe.Sizeof(stepStatsShard{}); s%shardPad != 0 || s == 0 {
		t.Errorf("stepStatsShard size %d is not a positive multiple of %d", s, shardPad)
	}
	// The pad must not displace the payload: the state must sit at offset 0
	// so shard selection lands directly on the mutex's line.
	if off := unsafe.Offsetof(trackShard{}.trackShardState); off != 0 {
		t.Errorf("trackShardState at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(seriesShard{}.seriesShardState); off != 0 {
		t.Errorf("seriesShardState at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(stepStatsShard{}.stepStatsState); off != 0 {
		t.Errorf("stepStatsState at offset %d, want 0", off)
	}
}

// TestShardIndexMatchesShardFor ties the counting sort's raw index to the
// pointer selection Step uses: StepBatch groups by shardIndex and Step locks
// trackShardFor, so the two must always agree or a batch's input-order
// guarantee for same-track items would silently break.
func TestShardIndexMatchesShardFor(t *testing.T) {
	pool, _ := poolFixture(t, 0)
	for _, id := range []int{0, 1, 31, 32, 1 << 20, -1, -63, 1<<31 - 1} {
		if got, want := &pool.shards[pool.shardIndex(id)], pool.trackShardFor(id); got != want {
			t.Errorf("track %d: shardIndex and trackShardFor disagree", id)
		}
	}
}
