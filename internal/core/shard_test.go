package core

import (
	"testing"
	"unsafe"
)

// TestShardPadding is the analyzer-vs-runtime cross-check for the
// false-sharing defence. The full per-struct enforcement lives in the
// shardpad analyzer (every //tauw:pad=128 struct is types.Sizes-verified by
// tauwcheck); this one runtime probe on trackShard pins that the analyzer's
// size model and the running binary agree, so a compiler layout change
// cannot silently diverge from what CI verified statically.
func TestShardPadding(t *testing.T) {
	if s := unsafe.Sizeof(trackShard{}); s%shardPad != 0 || s == 0 {
		t.Errorf("trackShard size %d is not a positive multiple of %d", s, shardPad)
	}
	if off := unsafe.Offsetof(trackShard{}.trackShardState); off != 0 {
		t.Errorf("trackShardState at offset %d, want 0", off)
	}
}

// TestShardIndexMatchesShardFor ties the counting sort's raw index to the
// pointer selection Step uses: StepBatch groups by shardIndex and Step locks
// trackShardFor, so the two must always agree or a batch's input-order
// guarantee for same-track items would silently break.
func TestShardIndexMatchesShardFor(t *testing.T) {
	pool, _ := poolFixture(t, 0)
	for _, id := range []int{0, 1, 31, 32, 1 << 20, -1, -63, 1<<31 - 1} {
		if got, want := &pool.shards[pool.shardIndex(id)], pool.trackShardFor(id); got != want {
			t.Errorf("track %d: shardIndex and trackShardFor disagree", id)
		}
	}
}
