package core

import (
	"errors"
	"sync"
	"testing"
)

func poolFixture(t *testing.T, maxTracks int) (*WrapperPool, *synthStudy) {
	t.Helper()
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	pool, err := NewWrapperPool(st.base, taqim, Config{}, maxTracks)
	if err != nil {
		t.Fatal(err)
	}
	return pool, st
}

func TestWrapperPoolLifecycle(t *testing.T) {
	pool, st := poolFixture(t, 0)
	if err := pool.Open(1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Open(2); err != nil {
		t.Fatal(err)
	}
	if pool.Active() != 2 {
		t.Errorf("active = %d, want 2", pool.Active())
	}
	s := st.testSeries[0]
	for j := range s.Outcomes {
		res, err := pool.Step(1, s.Outcomes[j], s.Quality[j])
		if err != nil {
			t.Fatal(err)
		}
		if res.SeriesLen != j+1 {
			t.Errorf("step %d: series len %d", j, res.SeriesLen)
		}
	}
	// Re-opening an existing track resets its buffer.
	if err := pool.Open(1); err != nil {
		t.Fatal(err)
	}
	res, err := pool.Step(1, s.Outcomes[0], s.Quality[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.SeriesLen != 1 {
		t.Errorf("after reopen: series len %d, want 1", res.SeriesLen)
	}
	if err := pool.Close(2); err != nil {
		t.Fatal(err)
	}
	if pool.Active() != 1 {
		t.Errorf("active = %d, want 1", pool.Active())
	}
	if err := pool.Close(2); !errors.Is(err, ErrUnknownTrack) {
		t.Errorf("double close = %v, want ErrUnknownTrack", err)
	}
	if _, err := pool.Step(99, 0, s.Quality[0]); !errors.Is(err, ErrUnknownTrack) {
		t.Errorf("step unknown track = %v, want ErrUnknownTrack", err)
	}
}

func TestWrapperPoolBudget(t *testing.T) {
	pool, _ := poolFixture(t, 2)
	if err := pool.Open(1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Open(2); err != nil {
		t.Fatal(err)
	}
	if err := pool.Open(3); !errors.Is(err, ErrTrackBudget) {
		t.Errorf("over budget = %v, want ErrTrackBudget", err)
	}
	// Closing frees budget.
	if err := pool.Close(1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Open(3); err != nil {
		t.Errorf("open after close: %v", err)
	}
}

func TestWrapperPoolValidation(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	if _, err := NewWrapperPool(nil, taqim, Config{}, 0); err == nil {
		t.Error("nil base must fail")
	}
	if _, err := NewWrapperPool(st.base, nil, Config{}, 0); err == nil {
		t.Error("nil taQIM must fail")
	}
	if _, err := NewWrapperPool(st.base, taqim, Config{}, -1); err == nil {
		t.Error("negative budget must fail")
	}
	if _, err := NewWrapperPool(st.base, taqim, Config{Features: []Feature{Feature(99)}}, 0); err == nil {
		t.Error("invalid config must fail")
	}
	pool, err := NewWrapperPool(st.base, taqim, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Negative ids are the series registry's reserved space.
	if err := pool.Open(-1); err == nil {
		t.Error("negative track id must fail")
	}
}

func TestWrapperPoolShardOptions(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	cases := []struct {
		req, want int
	}{
		{0, DefaultShards}, // default
		{1, 1},
		{2, 2},
		{3, 4}, // rounded up to a power of two
		{30, 32},
		{64, 64},
	}
	for _, c := range cases {
		pool, err := NewWrapperPool(st.base, taqim, Config{}, 0, WithShards(c.req))
		if err != nil {
			t.Fatalf("WithShards(%d): %v", c.req, err)
		}
		if got := pool.NumShards(); got != c.want {
			t.Errorf("WithShards(%d) => %d shards, want %d", c.req, got, c.want)
		}
	}
	if _, err := NewWrapperPool(st.base, taqim, Config{}, 0, WithShards(-1)); err == nil {
		t.Error("negative shard count must fail")
	}
	// The degenerate single-shard pool still honours the full lifecycle.
	pool, err := NewWrapperPool(st.base, taqim, Config{}, 0, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	s := st.testSeries[0]
	for id := 0; id < 5; id++ {
		if err := pool.Open(id); err != nil {
			t.Fatal(err)
		}
		if _, err := pool.Step(id, s.Outcomes[0], s.Quality[0]); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Active() != 5 {
		t.Errorf("active = %d, want 5", pool.Active())
	}
}

func TestWrapperPoolConcurrent(t *testing.T) {
	pool, st := poolFixture(t, 0)
	const tracks = 8
	for id := 0; id < tracks; id++ {
		if err := pool.Open(id); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, tracks)
	for id := 0; id < tracks; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := st.testSeries[id%len(st.testSeries)]
			for round := 0; round < 5; round++ {
				for j := range s.Outcomes {
					res, err := pool.Step(id, s.Outcomes[j], s.Quality[j])
					if err != nil {
						errCh <- err
						return
					}
					if res.Uncertainty < 0 || res.Uncertainty > 1 {
						errCh <- errors.New("invalid uncertainty")
						return
					}
				}
				if err := pool.Open(id); err != nil { // reset between rounds
					errCh <- err
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if pool.Active() != tracks {
		t.Errorf("active = %d, want %d", pool.Active(), tracks)
	}
}
