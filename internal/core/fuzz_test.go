package core

import (
	"testing"

	"github.com/iese-repro/tauw/internal/uw"
)

// FuzzLoadBundle hardens the deployment path: arbitrary bytes must either
// produce a working wrapper or a clean error — never a panic and never a
// wrapper that violates basic invariants.
func FuzzLoadBundle(f *testing.F) {
	// Seed with a genuine bundle and characteristic corruptions.
	st, err := buildStudyForFuzz()
	if err != nil {
		f.Fatal(err)
	}
	taqim, err := FitTimeseriesQIM(st.base, st.trainSeries, st.calibSeries,
		[]string{"severity", "noise"}, nil, nil, fuzzQIMConfig())
	if err != nil {
		f.Fatal(err)
	}
	w, err := NewWrapper(st.base, taqim, Config{})
	if err != nil {
		f.Fatal(err)
	}
	good, err := SaveBundle(w)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"base_qim":{},"taqim":{}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadBundle(data, nil)
		if err != nil {
			return // clean rejection is fine
		}
		// A successfully loaded bundle must serve valid estimates.
		quality := make([]float64, loaded.Base().QIM().Config().TreeDepth)
		// The fuzzed model's feature width is unknown; probe with the
		// width the taQIM expects minus the taQF columns. If the probe
		// width is wrong the wrapper must error, not panic.
		res, err := loaded.Step(0, quality)
		if err != nil {
			return
		}
		if res.Uncertainty < 0 || res.Uncertainty > 1 {
			t.Fatalf("loaded bundle produced uncertainty %g", res.Uncertainty)
		}
	})
}

// buildStudyForFuzz builds the miniature fixture without *testing.T.
func buildStudyForFuzz() (*synthStudy, error) {
	frames := func(series []SeriesObservations) ([][]float64, []bool) {
		var x [][]float64
		var y []bool
		for _, s := range series {
			for j := range s.Outcomes {
				x = append(x, s.Quality[j])
				y = append(y, s.Outcomes[j] != s.Truth)
			}
		}
		return x, y
	}
	train := makeSeries(120, 8, 1)
	calib := makeSeries(120, 8, 2)
	tx, ty := frames(train)
	cx, cy := frames(calib)
	qim, err := uw.FitQIM(tx, ty, cx, cy, []string{"severity", "noise"}, fuzzQIMConfig())
	if err != nil {
		return nil, err
	}
	base, err := uw.NewWrapper(qim, nil)
	if err != nil {
		return nil, err
	}
	return &synthStudy{base: base, trainSeries: train, calibSeries: calib}, nil
}

func fuzzQIMConfig() uw.QIMConfig {
	cfg := uw.DefaultQIMConfig()
	cfg.MinLeafCalibration = 60
	cfg.TreeDepth = 4
	return cfg
}
