package core

import (
	"math/rand/v2"
	"strings"
	"testing"

	"github.com/iese-repro/tauw/internal/fusion"
	"github.com/iese-repro/tauw/internal/uw"
)

// synthStudy builds a miniature end-to-end fixture: series with a constant
// per-series severity factor; the DDM errs with probability depending on
// severity, and errors within a series are correlated (constant situation),
// exactly the structure the taUW exploits.
type synthStudy struct {
	base        *uw.Wrapper
	trainSeries []SeriesObservations
	calibSeries []SeriesObservations
	testSeries  []SeriesObservations
}

func makeSeries(n, length int, seed uint64) []SeriesObservations {
	rng := rand.New(rand.NewPCG(seed, 99))
	out := make([]SeriesObservations, n)
	for i := range out {
		truth := rng.IntN(5)
		severity := rng.Float64()
		errP := 0.02 + 0.45*severity
		// A per-series wrong class makes errors systematic, like a
		// persistent visual confusion.
		wrong := (truth + 1 + rng.IntN(3)) % 5
		s := SeriesObservations{Truth: truth}
		for j := 0; j < length; j++ {
			o := truth
			if rng.Float64() < errP {
				o = wrong
			}
			s.Outcomes = append(s.Outcomes, o)
			s.Quality = append(s.Quality, []float64{severity, rng.Float64()})
		}
		out[i] = s
	}
	return out
}

func buildStudy(t *testing.T) *synthStudy {
	t.Helper()
	frames := func(series []SeriesObservations) ([][]float64, []bool) {
		var x [][]float64
		var y []bool
		for _, s := range series {
			for j := range s.Outcomes {
				x = append(x, s.Quality[j])
				y = append(y, s.Outcomes[j] != s.Truth)
			}
		}
		return x, y
	}
	train := makeSeries(220, 10, 1)
	calib := makeSeries(220, 10, 2)
	test := makeSeries(120, 10, 3)
	tx, ty := frames(train)
	cx, cy := frames(calib)
	cfg := uw.DefaultQIMConfig()
	cfg.MinLeafCalibration = 100
	qim, err := uw.FitQIM(tx, ty, cx, cy, []string{"severity", "noise"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := uw.NewWrapper(qim, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &synthStudy{base: base, trainSeries: train, calibSeries: calib, testSeries: test}
}

func fitTAQIM(t *testing.T, st *synthStudy, feats []Feature) *uw.QualityImpactModel {
	t.Helper()
	cfg := uw.DefaultQIMConfig()
	cfg.MinLeafCalibration = 100
	taqim, err := FitTimeseriesQIM(st.base, st.trainSeries, st.calibSeries,
		[]string{"severity", "noise"}, feats, fusion.MajorityVote{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return taqim
}

func TestFitTimeseriesQIMUsesTAQF(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	rules := taqim.Rules()
	if !strings.Contains(rules, "taqf_") {
		t.Errorf("taQIM rules never mention a taQF:\n%s", rules)
	}
	imp := taqim.FeatureImportance()
	var taImp float64
	for name, v := range imp {
		if strings.HasPrefix(name, "taqf_") {
			taImp += v
		}
	}
	if taImp <= 0.05 {
		t.Errorf("taQF importance %.3f too low; timeseries features unused", taImp)
	}
}

func TestBuildRowsValidation(t *testing.T) {
	st := buildStudy(t)
	if _, _, err := BuildRows(nil, st.base, nil, nil); err == nil {
		t.Error("empty series must fail")
	}
	if _, _, err := BuildRows(st.trainSeries, nil, nil, nil); err == nil {
		t.Error("nil base must fail")
	}
	bad := []SeriesObservations{{Truth: 0}}
	if _, _, err := BuildRows(bad, st.base, nil, nil); err == nil {
		t.Error("series without outcomes must fail")
	}
	bad = []SeriesObservations{{Truth: 0, Outcomes: []int{1}, Quality: [][]float64{{1, 2}, {3, 4}}}}
	if _, _, err := BuildRows(bad, st.base, nil, nil); err == nil {
		t.Error("outcome/quality mismatch must fail")
	}
	bad = []SeriesObservations{{Truth: 0, Outcomes: []int{1, 1}, Quality: [][]float64{{1, 2}, {3}}}}
	if _, _, err := BuildRows(bad, st.base, nil, nil); err == nil {
		t.Error("ragged quality must fail")
	}
	x, y, err := BuildRows(st.trainSeries[:3], st.base, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 30 || len(y) != 30 {
		t.Errorf("rows = %d/%d, want 30 per 3 series of length 10", len(x), len(y))
	}
	if len(x[0]) != 2+4 {
		t.Errorf("row width %d, want stateless 2 + taQF 4", len(x[0]))
	}
}

func TestWrapperStepLifecycle(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	w, err := NewWrapper(st.base, taqim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := st.testSeries[0]
	var last Result
	for j := range s.Outcomes {
		res, err := w.Step(s.Outcomes[j], s.Quality[j])
		if err != nil {
			t.Fatal(err)
		}
		if res.SeriesLen != j+1 {
			t.Errorf("step %d: series len %d", j, res.SeriesLen)
		}
		if res.Uncertainty < 0 || res.Uncertainty > 1 {
			t.Errorf("step %d: uncertainty %g outside [0,1]", j, res.Uncertainty)
		}
		if res.TAQF[Length-1] != float64(j+1) {
			t.Errorf("step %d: taQF length %g", j, res.TAQF[Length-1])
		}
		if j == 0 && res.Fused != s.Outcomes[0] {
			t.Error("first fused outcome must equal the isolated one")
		}
		last = res
	}
	if w.SeriesLen() != len(s.Outcomes) {
		t.Errorf("series len = %d", w.SeriesLen())
	}
	w.NewSeries()
	if w.SeriesLen() != 0 {
		t.Error("NewSeries must clear the buffer")
	}
	res, err := w.Step(s.Outcomes[0], s.Quality[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.SeriesLen != 1 {
		t.Error("buffer must restart after NewSeries")
	}
	if w.TAQIM() != taqim || w.Base() != st.base {
		t.Error("accessors broken")
	}
	_ = last
}

func TestWrapperConstructionErrors(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	if _, err := NewWrapper(nil, taqim, Config{}); err == nil {
		t.Error("nil base must fail")
	}
	if _, err := NewWrapper(st.base, nil, Config{}); err == nil {
		t.Error("nil taQIM must fail")
	}
	if _, err := NewWrapper(st.base, taqim, Config{Features: []Feature{Feature(42)}}); err == nil {
		t.Error("invalid feature must fail")
	}
	if _, err := NewWrapper(st.base, taqim, Config{BufferLimit: -2}); err == nil {
		t.Error("negative buffer limit must fail")
	}
}

func TestWrapperDistinguishesSeverity(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	run := func(severity float64, outcomes []int) float64 {
		w, err := NewWrapper(st.base, taqim, Config{})
		if err != nil {
			t.Fatal(err)
		}
		var u float64
		for _, o := range outcomes {
			res, err := w.Step(o, []float64{severity, 0.5})
			if err != nil {
				t.Fatal(err)
			}
			u = res.Uncertainty
		}
		return u
	}
	// Clean consistent series vs degraded inconsistent series.
	uClean := run(0.05, []int{1, 1, 1, 1, 1, 1, 1, 1})
	uDirty := run(0.95, []int{1, 2, 1, 3, 2, 1, 2, 2})
	if uClean >= uDirty {
		t.Errorf("clean series u=%g must be below dirty series u=%g", uClean, uDirty)
	}
}

func TestUFWrapperBaselines(t *testing.T) {
	st := buildStudy(t)
	mk := func(uf fusion.UncertaintyFuser) *UFWrapper {
		w, err := NewUFWrapper(st.base, uf, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	naive := mk(fusion.Naive{})
	opp := mk(fusion.Opportune{})
	worst := mk(fusion.WorstCase{})
	current := mk(fusion.Current{})
	s := st.testSeries[1]
	for j := range s.Outcomes {
		rn, err := naive.Step(s.Outcomes[j], s.Quality[j])
		if err != nil {
			t.Fatal(err)
		}
		ro, err := opp.Step(s.Outcomes[j], s.Quality[j])
		if err != nil {
			t.Fatal(err)
		}
		rw, err := worst.Step(s.Outcomes[j], s.Quality[j])
		if err != nil {
			t.Fatal(err)
		}
		rc, err := current.Step(s.Outcomes[j], s.Quality[j])
		if err != nil {
			t.Fatal(err)
		}
		// All baselines share the fused outcome.
		if rn.Fused != ro.Fused || ro.Fused != rw.Fused || rw.Fused != rc.Fused {
			t.Fatalf("step %d: baselines disagree on fused outcome", j)
		}
		if rn.Uncertainty > ro.Uncertainty+1e-15 {
			t.Errorf("step %d: naive %g > opportune %g", j, rn.Uncertainty, ro.Uncertainty)
		}
		if ro.Uncertainty > rw.Uncertainty+1e-15 {
			t.Errorf("step %d: opportune %g > worst-case %g", j, ro.Uncertainty, rw.Uncertainty)
		}
		if rc.Uncertainty != rc.Stateless.Uncertainty {
			t.Errorf("step %d: current must pass through the stateless estimate", j)
		}
	}
	naive.NewSeries()
	if naive.SeriesLen() != 0 {
		t.Error("NewSeries must clear")
	}
}

func TestUFWrapperConstructionErrors(t *testing.T) {
	st := buildStudy(t)
	if _, err := NewUFWrapper(nil, fusion.Naive{}, Config{}); err == nil {
		t.Error("nil base must fail")
	}
	if _, err := NewUFWrapper(st.base, nil, Config{}); err == nil {
		t.Error("nil uncertainty fuser must fail")
	}
	if _, err := NewUFWrapper(st.base, fusion.Naive{}, Config{BufferLimit: -1}); err == nil {
		t.Error("negative buffer limit must fail")
	}
}

func TestStepScopedCombinesScopeUncertainty(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	// Rebuild the base wrapper with a scope model: factor 0 must stay in
	// [0, 10].
	scope, err := uw.NewScopeModel(1, uw.BoundaryCheck{Name: "lat", Index: 0, Min: 0, Max: 10})
	if err != nil {
		t.Fatal(err)
	}
	base, err := uw.NewWrapper(st.base.QIM(), scope)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWrapper(base, taqim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := st.testSeries[0]
	// In scope: identical to plain Step behaviour.
	res, err := w.StepScoped(s.Outcomes[0], s.Quality[0], []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stateless.ScopeUncertainty != 0 {
		t.Error("in-scope step must have zero scope uncertainty")
	}
	// Out of scope: the fused uncertainty saturates at 1.
	w.NewSeries()
	res, err = w.StepScoped(s.Outcomes[0], s.Quality[0], []float64{99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stateless.ScopeUncertainty != 1 {
		t.Errorf("out-of-scope scope uncertainty = %g, want 1", res.Stateless.ScopeUncertainty)
	}
	if res.Uncertainty != 1 {
		t.Errorf("out-of-scope fused uncertainty = %g, want 1", res.Uncertainty)
	}
	// Wrong scope width must fail.
	w.NewSeries()
	if _, err := w.StepScoped(s.Outcomes[0], s.Quality[0], []float64{1, 2}); err == nil {
		t.Error("wrong scope width must fail")
	}
}

// Training/runtime consistency: the rows BuildRows emits for a series must
// produce exactly the uncertainties the runtime Wrapper computes step by
// step — otherwise the taQIM would be trained on a different feature layout
// than it is queried with.
func TestBuildRowsMatchesRuntimeSteps(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	series := st.testSeries[:5]
	x, _, err := BuildRows(series, st.base, fusion.MajorityVote{}, AllFeatures())
	if err != nil {
		t.Fatal(err)
	}
	row := 0
	for _, s := range series {
		w, err := NewWrapper(st.base, taqim, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for j := range s.Outcomes {
			res, err := w.Step(s.Outcomes[j], s.Quality[j])
			if err != nil {
				t.Fatal(err)
			}
			fromRows, err := taqim.Uncertainty(x[row])
			if err != nil {
				t.Fatal(err)
			}
			if res.Uncertainty != fromRows {
				t.Fatalf("series step %d: runtime u=%g but training row gives %g",
					j, res.Uncertainty, fromRows)
			}
			row++
		}
	}
}

// End-to-end shape check mirroring the paper's core claims on the synthetic
// fixture: information fusion reduces the series-end error rate, and the
// taUW's uncertainty separates correct from wrong fused outcomes.
func TestEndToEndFusionImprovesAccuracy(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	w, err := NewWrapper(st.base, taqim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	isolatedErrs, fusedErrs, steps := 0, 0, 0
	var uWrong, uRight float64
	nWrong, nRight := 0, 0
	for _, s := range st.testSeries {
		w.NewSeries()
		for j := range s.Outcomes {
			res, err := w.Step(s.Outcomes[j], s.Quality[j])
			if err != nil {
				t.Fatal(err)
			}
			steps++
			if s.Outcomes[j] != s.Truth {
				isolatedErrs++
			}
			if res.Fused != s.Truth {
				fusedErrs++
				uWrong += res.Uncertainty
				nWrong++
			} else {
				uRight += res.Uncertainty
				nRight++
			}
		}
	}
	if fusedErrs >= isolatedErrs {
		t.Errorf("fusion must reduce errors: fused %d vs isolated %d (of %d)",
			fusedErrs, isolatedErrs, steps)
	}
	if nWrong > 0 && nRight > 0 && uWrong/float64(nWrong) <= uRight/float64(nRight) {
		t.Errorf("mean uncertainty on wrong fused outcomes (%.3f) must exceed correct ones (%.3f)",
			uWrong/float64(nWrong), uRight/float64(nRight))
	}
}
