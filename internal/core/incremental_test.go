package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/iese-repro/tauw/internal/fusion"
)

// opaqueFuser hides a fuser's Incremental implementation behind the plain
// OutcomeFuser interface, forcing the wrapper onto the reference full-series
// path. The differential tests use it to compare both paths on identical
// inputs.
type opaqueFuser struct{ fusion.OutcomeFuser }

const taqfTol = 1e-9

// TestBufferFeaturesAtMatchesOracle drives random append/reset sequences —
// with and without ring eviction — and checks after every append that the
// O(1) running statistics agree with the ComputeFeatures oracle for every
// plausible fused outcome.
func TestBufferFeaturesAtMatchesOracle(t *testing.T) {
	for _, limit := range []int{0, 1, 2, 5, 16} {
		for seed := uint64(1); seed <= 8; seed++ {
			rng := rand.New(rand.NewPCG(seed, uint64(limit)*31+1))
			b, err := NewBuffer(limit)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 300; step++ {
				if rng.IntN(40) == 0 {
					b.Reset()
					if b.TotalSteps() != 0 || b.Len() != 0 {
						t.Fatal("reset must clear counters")
					}
					continue
				}
				b.Append(Record{Outcome: rng.IntN(5), Uncertainty: rng.Float64()})
				outs := b.Outcomes()
				us := b.Uncertainties()
				// Every outcome class (present or not) is a valid fused
				// candidate: absent classes must yield ratio/certainty 0.
				for fused := 0; fused < 6; fused++ {
					want, err := ComputeFeatures(outs, us, fused)
					if err != nil {
						t.Fatal(err)
					}
					got, err := b.FeaturesAt(fused)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if math.Abs(want[i]-got[i]) > taqfTol {
							t.Fatalf("limit %d seed %d step %d fused %d: taQF[%d] oracle %g, incremental %g",
								limit, seed, step, fused, i, want[i], got[i])
						}
					}
				}
			}
		}
	}
}

func TestBufferTotalStepsUnderEviction(t *testing.T) {
	b, err := NewBuffer(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		evicted, wasEvicted := b.Append(Record{Outcome: i})
		if i < 3 {
			if wasEvicted {
				t.Fatalf("append %d: eviction before the ring is full", i)
			}
		} else if !wasEvicted || evicted.Outcome != i-3 {
			t.Fatalf("append %d: evicted %+v (%v), want outcome %d", i, evicted, wasEvicted, i-3)
		}
	}
	if b.Len() != 3 {
		t.Errorf("buffered len = %d, want 3", b.Len())
	}
	if b.TotalSteps() != 10 {
		t.Errorf("total steps = %d, want 10", b.TotalSteps())
	}
	b.Reset()
	if b.TotalSteps() != 0 {
		t.Errorf("total steps after reset = %d", b.TotalSteps())
	}
}

func TestBufferNaNUncertaintyClamped(t *testing.T) {
	b, err := NewBuffer(2)
	if err != nil {
		t.Fatal(err)
	}
	b.Append(Record{Outcome: 1, Uncertainty: math.NaN()})
	if us := b.Uncertainties(); us[0] != 1 {
		t.Fatalf("NaN uncertainty stored as %g, want clamp to 1", us[0])
	}
	// The running certainty sum must stay finite so eviction can recover.
	b.Append(Record{Outcome: 1, Uncertainty: 0.25})
	b.Append(Record{Outcome: 1, Uncertainty: 0.5}) // evicts the NaN record
	taqf, err := b.FeaturesAt(1)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - 0.25) + (1 - 0.5)
	if math.Abs(taqf[Certainty-1]-want) > taqfTol {
		t.Errorf("certainty after evicting NaN record = %g, want %g", taqf[Certainty-1], want)
	}
}

// TestWrapperFastPathMatchesReference is the end-to-end differential test:
// a wrapper on the incremental fast path and one forced onto the reference
// path consume identical streams — across buffer limits, feature subsets,
// and series resets — and must emit identical results at every step.
func TestWrapperFastPathMatchesReference(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	for _, limit := range []int{0, 1, 3, 8} {
		for _, feats := range [][]Feature{nil, {Ratio, Certainty}, {Length, Size}} {
			fast, err := NewWrapper(st.base, taqim, Config{BufferLimit: limit, Features: feats})
			if err != nil {
				t.Fatal(err)
			}
			if fast.tally == nil {
				t.Fatal("default fuser must take the incremental fast path")
			}
			ref, err := NewWrapper(st.base, taqim, Config{
				BufferLimit: limit,
				Features:    feats,
				Fuser:       opaqueFuser{fusion.MajorityVote{}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if ref.tally != nil {
				t.Fatal("opaque fuser must force the reference path")
			}
			rng := rand.New(rand.NewPCG(uint64(limit)+77, 5))
			for step := 0; step < 400; step++ {
				if rng.IntN(35) == 0 {
					fast.NewSeries()
					ref.NewSeries()
				}
				outcome := rng.IntN(5)
				quality := []float64{rng.Float64(), rng.Float64()}
				fr, ferr := fast.Step(outcome, quality)
				rr, rerr := ref.Step(outcome, quality)
				if (ferr == nil) != (rerr == nil) {
					t.Fatalf("limit %d step %d: errors diverge: %v vs %v", limit, step, ferr, rerr)
				}
				if ferr != nil {
					continue
				}
				if fr.Fused != rr.Fused {
					t.Fatalf("limit %d step %d: fused %d vs %d", limit, step, fr.Fused, rr.Fused)
				}
				if fr.Uncertainty != rr.Uncertainty {
					t.Fatalf("limit %d step %d: uncertainty %g vs %g", limit, step, fr.Uncertainty, rr.Uncertainty)
				}
				if fr.SeriesLen != rr.SeriesLen || fr.TotalSteps != rr.TotalSteps {
					t.Fatalf("limit %d step %d: len %d/%d vs %d/%d",
						limit, step, fr.SeriesLen, fr.TotalSteps, rr.SeriesLen, rr.TotalSteps)
				}
				if fr.Stateless != rr.Stateless {
					t.Fatalf("limit %d step %d: stateless estimates diverge", limit, step)
				}
				for i := range fr.TAQF {
					if math.Abs(fr.TAQF[i]-rr.TAQF[i]) > taqfTol {
						t.Fatalf("limit %d step %d: taQF[%d] %g vs %g",
							limit, step, i, fr.TAQF[i], rr.TAQF[i])
					}
				}
			}
		}
	}
}

// TestWrapperTotalStepsSemantics pins the taQF length semantics under
// eviction: SeriesLen (and the length factor) saturate at the buffer limit,
// while TotalSteps keeps counting.
func TestWrapperTotalStepsSemantics(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	w, err := NewWrapper(st.base, taqim, Config{BufferLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := w.Step(1, []float64{0.2, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		wantLen := min(i+1, 4)
		if res.SeriesLen != wantLen {
			t.Errorf("step %d: SeriesLen %d, want %d", i, res.SeriesLen, wantLen)
		}
		if res.TotalSteps != i+1 {
			t.Errorf("step %d: TotalSteps %d, want %d", i, res.TotalSteps, i+1)
		}
		if res.TAQF[Length-1] != float64(wantLen) {
			t.Errorf("step %d: length factor %g must follow the buffered window (%d)",
				i, res.TAQF[Length-1], wantLen)
		}
	}
	if w.TotalSteps() != 10 || w.SeriesLen() != 4 {
		t.Errorf("accessors: total %d len %d", w.TotalSteps(), w.SeriesLen())
	}
	w.NewSeries()
	if w.TotalSteps() != 0 {
		t.Errorf("NewSeries must reset TotalSteps, got %d", w.TotalSteps())
	}
}

// TestWrapperFastPathLifecycleWithEviction runs the fast path through many
// series with a tiny ring and sanity-checks invariants the differential test
// might mask: ratio in (0,1], size bounded by the window, certainty bounded
// by the agreeing count.
func TestWrapperFastPathLifecycleWithEviction(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	w, err := NewWrapper(st.base, taqim, Config{BufferLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 12))
	for series := 0; series < 20; series++ {
		w.NewSeries()
		for step := 0; step < 30; step++ {
			res, err := w.Step(rng.IntN(3), []float64{rng.Float64(), rng.Float64()})
			if err != nil {
				t.Fatal(err)
			}
			n := float64(res.SeriesLen)
			if r := res.TAQF[Ratio-1]; r <= 0 || r > 1 {
				t.Fatalf("ratio %g outside (0,1]: the fused outcome always has a vote", r)
			}
			if s := res.TAQF[Size-1]; s < 1 || s > n {
				t.Fatalf("size %g outside [1,%g]", s, n)
			}
			if c := res.TAQF[Certainty-1]; c < -taqfTol || c > n+taqfTol {
				t.Fatalf("certainty %g outside [0,%g]", c, n)
			}
		}
	}
}
