package core

import (
	"fmt"
	"runtime"
	"sync"
	"unsafe"
)

// DefaultShards is the shard count used when a pool is created without an
// explicit override: enough to keep lock contention negligible on common
// core counts without wasting memory on tiny deployments.
const DefaultShards = 32

// shardPad is the stride shards are padded to. Two cache lines, not one:
// slice backing arrays are not guaranteed 64-byte alignment, so a 64-byte
// shard can still straddle a line boundary and share both halves with its
// neighbours, and adjacent-line prefetchers pull lines in 128-byte pairs
// anyway. At a 128-byte stride the hot head of a shard (mutex + map header)
// can never land on the same line — or the same prefetch pair — as another
// shard's, whatever the array's base alignment.
const shardPad = 128

// trackShardState is the payload of one track shard: one slice of the
// pool's track map under its own lock.
type trackShardState struct {
	//tauw:notrace
	mu     sync.Mutex
	tracks map[int]*pooledWrapper
}

// trackShard pads the state to the next multiple of the shard stride; the
// pad width is computed from the state's size, so growing the state keeps
// the struct stride-aligned automatically (TestShardPadding pins the
// invariant). The expression always pads by at least one byte, so a state
// that is already an exact stride multiple carries one extra stride — a
// non-issue at the current 16-byte state.
//
//tauw:pad=128
type trackShard struct {
	trackShardState
	_ [shardPad - unsafe.Sizeof(trackShardState{})%shardPad]byte
}

// seriesShardState is the payload of one registry shard: one slice of the
// string-series-id registry. The registry is sharded independently of the
// track maps: a series id hashes by string, its track by integer, so the
// two layers scale without coordinating.
type seriesShardState struct {
	//tauw:notrace
	mu  sync.Mutex
	ids map[string]int
}

// seriesShard pads the registry shard to the shard stride (see trackShard).
//
//tauw:pad=128
type seriesShard struct {
	seriesShardState
	_ [shardPad - unsafe.Sizeof(seriesShardState{})%shardPad]byte
}

// normShards validates and normalises a shard-count request: 0 means
// DefaultShards, and any positive value is rounded up to the next power of
// two so shard selection stays a mask instead of a modulo.
func normShards(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("core: shard count %d must be >= 0", n)
	}
	if n == 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p, nil
}

// fibMul is 2^64/φ, the Fibonacci-hashing multiplier: one multiply spreads
// sequential track ids (the common allocation pattern) across the top bits,
// from which the shard index is taken. Chosen over a full splitmix64
// finaliser because shard selection sits on the per-step path, where the
// sharded pool must not cost more than the single-mutex design it replaced
// even at GOMAXPROCS=1 (one imul + one shift versus two imuls and three
// xor-shifts).
const fibMul = 0x9e3779b97f4a7c15

// shardIndex maps a track id to the index of its owning shard (Fibonacci
// hashing: top shardBits bits of id*fibMul). StepBatch's counting sort uses
// the raw index to group items without touching the shards themselves.
//
// shardShift is 64-log2(nshards); for a single shard it is 64, and a Go
// shift by >= 64 yields 0 — exactly the only valid index.
func (p *WrapperPool) shardIndex(trackID int) uint64 {
	return (uint64(trackID) * fibMul) >> p.shardShift
}

// trackShardFor selects the shard owning a track id. Shard selection is
// lock-free: the shard slice is immutable after construction.
func (p *WrapperPool) trackShardFor(trackID int) *trackShard {
	return &p.shards[p.shardIndex(trackID)]
}

// seriesShardFor selects the registry shard owning a series id (FNV-1a,
// then the same top-bits extraction as shardIndex — FNV mixes low bits
// well, the multiply propagates them up).
func (p *WrapperPool) seriesShardFor(id string) *seriesShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &p.series[(h*fibMul)>>p.shardShift]
}

// defaultWorkers bounds a batch fan-out when the caller does not: one worker
// per schedulable CPU, never more than one per shard group.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
