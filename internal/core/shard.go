package core

import (
	"fmt"
	"runtime"
	"sync"
)

// DefaultShards is the shard count used when a pool is created without an
// explicit override: enough to keep lock contention negligible on common
// core counts without wasting memory on tiny deployments.
const DefaultShards = 32

// trackShard holds one slice of the pool's track map under its own lock.
// The padding rounds the struct up to a full 64-byte cache line (8-byte
// mutex + 8-byte map header + 48) so that a hot shard does not false-share
// with its neighbours in the shard array.
type trackShard struct {
	mu     sync.Mutex
	tracks map[int]*pooledWrapper
	_      [48]byte
}

// seriesShard holds one slice of the string-series-id registry. The registry
// is sharded independently of the track maps: a series id hashes by string,
// its track by integer, so the two layers scale without coordinating.
type seriesShard struct {
	mu  sync.Mutex
	ids map[string]int
	_   [48]byte
}

// normShards validates and normalises a shard-count request: 0 means
// DefaultShards, and any positive value is rounded up to the next power of
// two so shard selection stays a mask instead of a modulo.
func normShards(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("core: shard count %d must be >= 0", n)
	}
	if n == 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p, nil
}

// mix64 is the splitmix64 finaliser: a cheap, well-distributed integer hash
// so that sequential track ids (the common allocation pattern) spread across
// shards instead of marching through them in lockstep.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// trackShardFor selects the shard owning a track id. Shard selection is
// lock-free: the shard slice is immutable after construction.
func (p *WrapperPool) trackShardFor(trackID int) *trackShard {
	return &p.shards[mix64(uint64(trackID))&uint64(len(p.shards)-1)]
}

// seriesShardFor selects the registry shard owning a series id (FNV-1a).
func (p *WrapperPool) seriesShardFor(id string) *seriesShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &p.series[mix64(h)&uint64(len(p.series)-1)]
}

// defaultWorkers bounds a batch fan-out when the caller does not: one worker
// per schedulable CPU, never more than one per shard group.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
