package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The tests in this file are the race-hardening suite for the sharded pool:
// they are written to be run under `go test -race` and hammer every pool
// entry point (Open/Step/Close/Active and the series registry) from many
// goroutines at once. Assertions focus on invariants that must hold under
// any interleaving; the race detector covers the rest.

// TestWrapperPoolChurnRace has each goroutine own a disjoint set of track
// ids and cycle open → step → close while other goroutines do the same.
// With exclusive ownership no call may fail, and the pool must drain to
// zero active tracks.
func TestWrapperPoolChurnRace(t *testing.T) {
	pool, st := poolFixture(t, 0)
	const (
		goroutines = 16
		rounds     = 8
	)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := st.testSeries[g%len(st.testSeries)]
			for r := 0; r < rounds; r++ {
				id := g + goroutines*r // disjoint per goroutine and round
				if err := pool.Open(id); err != nil {
					errCh <- fmt.Errorf("open %d: %w", id, err)
					return
				}
				for j := range s.Outcomes {
					res, err := pool.Step(id, s.Outcomes[j], s.Quality[j])
					if err != nil {
						errCh <- fmt.Errorf("step %d: %w", id, err)
						return
					}
					if res.SeriesLen != j+1 {
						errCh <- fmt.Errorf("track %d: series len %d, want %d", id, res.SeriesLen, j+1)
						return
					}
				}
				if err := pool.Close(id); err != nil {
					errCh <- fmt.Errorf("close %d: %w", id, err)
					return
				}
			}
		}(g)
	}
	// A reader hammers Active concurrently; its value must stay in range.
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := pool.Active(); n < 0 || n > goroutines {
				errCh <- fmt.Errorf("active = %d outside [0,%d]", n, goroutines)
				return
			}
			runtime.Gosched() // keep the reader from starving steppers on small GOMAXPROCS
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if n := pool.Active(); n != 0 {
		t.Errorf("active = %d after full churn, want 0", n)
	}
}

// TestWrapperPoolSharedTrackRace aims many steppers at the same track while
// a resetter re-opens it: steps must never fail (the track is always open)
// and series lengths must stay positive and bounded by the step count.
func TestWrapperPoolSharedTrackRace(t *testing.T) {
	pool, st := poolFixture(t, 0)
	const trackID = 7
	if err := pool.Open(trackID); err != nil {
		t.Fatal(err)
	}
	const (
		steppers = 8
		steps    = 50
	)
	var wg sync.WaitGroup
	errCh := make(chan error, steppers+1)
	for g := 0; g < steppers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := st.testSeries[g%len(st.testSeries)]
			for j := 0; j < steps; j++ {
				res, err := pool.Step(trackID, s.Outcomes[j%len(s.Outcomes)], s.Quality[j%len(s.Quality)])
				if err != nil {
					errCh <- err
					return
				}
				if res.SeriesLen < 1 || res.SeriesLen > steppers*steps {
					errCh <- fmt.Errorf("series len %d out of range", res.SeriesLen)
					return
				}
				if res.Uncertainty < 0 || res.Uncertainty > 1 {
					errCh <- fmt.Errorf("uncertainty %g out of range", res.Uncertainty)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 20; r++ {
			if err := pool.Open(trackID); err != nil { // reset, never an error
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if n := pool.Active(); n != 1 {
		t.Errorf("active = %d, want 1", n)
	}
}

// TestWrapperPoolBudgetRace races far more opens than the budget allows:
// exactly maxTracks must win, every loser must see ErrTrackBudget, and the
// budget must be fully reusable after the winners close.
func TestWrapperPoolBudgetRace(t *testing.T) {
	const (
		budget      = 16
		contenders  = 64
		raceRepeats = 4
	)
	pool, _ := poolFixture(t, budget)
	for round := 0; round < raceRepeats; round++ {
		var opened sync.Map
		var wins, losses atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < contenders; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				err := pool.Open(id)
				switch {
				case err == nil:
					wins.Add(1)
					opened.Store(id, true)
				case errors.Is(err, ErrTrackBudget):
					losses.Add(1)
				default:
					t.Errorf("open %d: unexpected error %v", id, err)
				}
			}(round*contenders + g)
		}
		wg.Wait()
		if w := wins.Load(); w != budget {
			t.Fatalf("round %d: %d opens won, want exactly %d", round, w, budget)
		}
		if l := losses.Load(); l != contenders-budget {
			t.Fatalf("round %d: %d opens lost, want %d", round, l, contenders-budget)
		}
		if n := pool.Active(); n != budget {
			t.Fatalf("round %d: active = %d, want %d", round, n, budget)
		}
		opened.Range(func(k, _ any) bool {
			if err := pool.Close(k.(int)); err != nil {
				t.Errorf("close %v: %v", k, err)
			}
			return true
		})
		if n := pool.Active(); n != 0 {
			t.Fatalf("round %d: active = %d after close, want 0", round, n)
		}
	}
}

// TestWrapperPoolSeriesRace drives the string-series registry concurrently:
// every goroutine opens its own series, steps it, and closes it. Ids must be
// unique across goroutines and the pool must drain.
func TestWrapperPoolSeriesRace(t *testing.T) {
	pool, st := poolFixture(t, 0)
	const (
		goroutines = 12
		perG       = 6
	)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	var mu sync.Mutex
	seen := make(map[string]bool)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := st.testSeries[g%len(st.testSeries)]
			for r := 0; r < perG; r++ {
				id, err := pool.OpenSeries()
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				if seen[id] {
					mu.Unlock()
					errCh <- fmt.Errorf("duplicate series id %q", id)
					return
				}
				seen[id] = true
				mu.Unlock()
				for j := 0; j < 5; j++ {
					if _, err := pool.StepSeries(id, s.Outcomes[j], s.Quality[j]); err != nil {
						errCh <- err
						return
					}
				}
				if err := pool.CloseSeries(id); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if n := pool.Active(); n != 0 {
		t.Errorf("active = %d, want 0", n)
	}
	if len(seen) != goroutines*perG {
		t.Errorf("minted %d distinct ids, want %d", len(seen), goroutines*perG)
	}
}

// TestSeriesTracksDisjointFromManualIDs pins the namespace contract: series
// minted through the registry must never collide with tracker-assigned ids
// passed to Open directly, even when both count from 1.
func TestSeriesTracksDisjointFromManualIDs(t *testing.T) {
	pool, st := poolFixture(t, 0)
	s := st.testSeries[0]
	if err := pool.Open(1); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Step(1, s.Outcomes[0], s.Quality[0]); err != nil {
		t.Fatal(err)
	}
	id, err := pool.OpenSeries() // mints series number 1 as well
	if err != nil {
		t.Fatal(err)
	}
	if pool.Active() != 2 {
		t.Fatalf("active = %d, want 2 (manual + series)", pool.Active())
	}
	// The series open must not have reset the manual track's buffer.
	res, err := pool.Step(1, s.Outcomes[1], s.Quality[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.SeriesLen != 2 {
		t.Errorf("manual track series len = %d, want 2 (reset by OpenSeries?)", res.SeriesLen)
	}
	// Closing the series must not close the manual track.
	if err := pool.CloseSeries(id); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Step(1, s.Outcomes[2], s.Quality[2]); err != nil {
		t.Errorf("manual track unusable after CloseSeries: %v", err)
	}
	if pool.Active() != 1 {
		t.Errorf("active = %d, want 1", pool.Active())
	}
}

// TestOpenSeriesUnregistersOnFailure is the regression test for the series
// leak: a series whose underlying open fails (budget exhausted) must not
// stay registered — stepping or closing it reports unknown-series, the
// not-found condition, rather than an internal unknown-track error.
func TestOpenSeriesUnregistersOnFailure(t *testing.T) {
	pool, st := poolFixture(t, 1)
	id1, err := pool.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.OpenSeries(); !errors.Is(err, ErrTrackBudget) {
		t.Fatalf("second open = %v, want ErrTrackBudget", err)
	}
	// The failed series handle would have been "s2"; it must be gone.
	if _, err := pool.StepSeries("s2", 0, st.testSeries[0].Quality[0]); !errors.Is(err, ErrUnknownSeries) {
		t.Errorf("step on leaked series = %v, want ErrUnknownSeries", err)
	}
	if err := pool.CloseSeries("s2"); !errors.Is(err, ErrUnknownSeries) {
		t.Errorf("close on leaked series = %v, want ErrUnknownSeries", err)
	}
	// The surviving series still works, and freeing it frees the budget.
	if _, err := pool.StepSeries(id1, st.testSeries[0].Outcomes[0], st.testSeries[0].Quality[0]); err != nil {
		t.Fatal(err)
	}
	if err := pool.CloseSeries(id1); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.OpenSeries(); err != nil {
		t.Errorf("open after close: %v", err)
	}
}
