package core

import (
	"errors"
	"sync"
	"testing"
)

// batchFixture opens `tracks` tracks on a fresh pool and returns a quality
// row to step with.
func batchFixture(t *testing.T, tracks int) (*WrapperPool, *synthStudy) {
	t.Helper()
	pool, st := poolFixture(t, 0)
	for id := 0; id < tracks; id++ {
		if err := pool.Open(id); err != nil {
			t.Fatal(err)
		}
	}
	return pool, st
}

func TestStepBatchEmpty(t *testing.T) {
	pool, _ := batchFixture(t, 1)
	if got := pool.StepBatch(nil, 0); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
	if got := pool.StepBatchSeries(nil, 0); len(got) != 0 {
		t.Errorf("empty series batch returned %d results", len(got))
	}
}

// TestStepBatchOrderAndErrors checks the per-item contract: results come
// back in input order, repeated items for one track apply in input order
// (series length advances monotonically), and an unknown track fails only
// its own item.
func TestStepBatchOrderAndErrors(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		pool, st := batchFixture(t, 4)
		s := st.testSeries[0]
		items := []StepItem{
			{TrackID: 0, Outcome: s.Outcomes[0], Quality: s.Quality[0]},
			{TrackID: 1, Outcome: s.Outcomes[0], Quality: s.Quality[0]},
			{TrackID: 0, Outcome: s.Outcomes[1], Quality: s.Quality[1]},
			{TrackID: 999, Outcome: s.Outcomes[0], Quality: s.Quality[0]}, // not open
			{TrackID: 0, Outcome: s.Outcomes[2], Quality: s.Quality[2]},
			{TrackID: 3, Outcome: s.Outcomes[0], Quality: s.Quality[0]},
		}
		got := pool.StepBatch(items, workers)
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(items))
		}
		for i, r := range got {
			if i == 3 {
				if !errors.Is(r.Err, ErrUnknownTrack) {
					t.Errorf("workers=%d: item 3 err = %v, want ErrUnknownTrack", workers, r.Err)
				}
				continue
			}
			if r.Err != nil {
				t.Errorf("workers=%d: item %d failed: %v", workers, i, r.Err)
			}
		}
		// Track 0 received items 0, 2, 4 in that order.
		for want, i := range []int{0, 2, 4} {
			if got[i].Result.SeriesLen != want+1 {
				t.Errorf("workers=%d: track-0 item %d series len %d, want %d",
					workers, i, got[i].Result.SeriesLen, want+1)
			}
		}
		// Single-item tracks are at length 1.
		for _, i := range []int{1, 5} {
			if got[i].Result.SeriesLen != 1 {
				t.Errorf("workers=%d: item %d series len %d, want 1", workers, i, got[i].Result.SeriesLen)
			}
		}
	}
}

// TestStepBatchMatchesSequential runs the same steps through StepBatch and
// through a sequential loop on an identical pool: the per-track results must
// agree exactly (batching must not change any estimate).
func TestStepBatchMatchesSequential(t *testing.T) {
	const tracks = 8
	poolA, st := batchFixture(t, tracks)
	poolB, _ := batchFixture(t, tracks)
	var items []StepItem
	for j := 0; j < 5; j++ {
		for id := 0; id < tracks; id++ {
			s := st.testSeries[id%len(st.testSeries)]
			items = append(items, StepItem{TrackID: id, Outcome: s.Outcomes[j], Quality: s.Quality[j]})
		}
	}
	batched := poolA.StepBatch(items, 4)
	for i, it := range items {
		seq, err := poolB.Step(it.TrackID, it.Outcome, it.Quality)
		if err != nil {
			t.Fatal(err)
		}
		if batched[i].Err != nil {
			t.Fatalf("batched item %d: %v", i, batched[i].Err)
		}
		b := batched[i].Result
		if b.Fused != seq.Fused || b.Uncertainty != seq.Uncertainty || b.SeriesLen != seq.SeriesLen {
			t.Errorf("item %d diverges: batch (%d,%g,%d) vs sequential (%d,%g,%d)",
				i, b.Fused, b.Uncertainty, b.SeriesLen, seq.Fused, seq.Uncertainty, seq.SeriesLen)
		}
	}
}

// TestStepBatchSeriesMixed feeds a batch with valid, never-issued, and
// already-closed series ids: each item gets its own verdict.
func TestStepBatchSeriesMixed(t *testing.T) {
	pool, st := poolFixture(t, 0)
	s := st.testSeries[0]
	a, err := pool.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	closed, err := pool.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.CloseSeries(closed); err != nil {
		t.Fatal(err)
	}
	items := []SeriesStepItem{
		{SeriesID: a, Outcome: s.Outcomes[0], Quality: s.Quality[0]},
		{SeriesID: "never-issued", Outcome: s.Outcomes[0], Quality: s.Quality[0]},
		{SeriesID: b, Outcome: s.Outcomes[0], Quality: s.Quality[0]},
		{SeriesID: closed, Outcome: s.Outcomes[0], Quality: s.Quality[0]},
		{SeriesID: a, Outcome: s.Outcomes[1], Quality: s.Quality[1]},
	}
	got := pool.StepBatchSeries(items, 0)
	if got[0].Err != nil || got[2].Err != nil || got[4].Err != nil {
		t.Fatalf("valid items failed: %v %v %v", got[0].Err, got[2].Err, got[4].Err)
	}
	if !errors.Is(got[1].Err, ErrUnknownSeries) {
		t.Errorf("never-issued err = %v, want ErrUnknownSeries", got[1].Err)
	}
	if !errors.Is(got[3].Err, ErrUnknownSeries) {
		t.Errorf("closed err = %v, want ErrUnknownSeries", got[3].Err)
	}
	if got[0].Result.SeriesLen != 1 || got[4].Result.SeriesLen != 2 {
		t.Errorf("series %q lengths = %d,%d, want 1,2", a, got[0].Result.SeriesLen, got[4].Result.SeriesLen)
	}
}

// TestStepBatchConcurrent fires overlapping batches from several goroutines
// (race-detector fodder): every item must succeed and the total number of
// steps applied per track must equal the global step count.
func TestStepBatchConcurrent(t *testing.T) {
	const (
		tracks     = 8
		goroutines = 6
		perBatch   = 32
	)
	pool, st := batchFixture(t, tracks)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := st.testSeries[g%len(st.testSeries)]
			items := make([]StepItem, perBatch)
			for i := range items {
				j := (g + i) % len(s.Outcomes)
				items[i] = StepItem{TrackID: (g + i) % tracks, Outcome: s.Outcomes[j], Quality: s.Quality[j]}
			}
			for _, r := range pool.StepBatch(items, 3) {
				if r.Err != nil {
					errCh <- r.Err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Every goroutine contributed perBatch/tracks steps to each track.
	wantLen := goroutines * perBatch / tracks
	for id := 0; id < tracks; id++ {
		s := st.testSeries[0]
		res, err := pool.Step(id, s.Outcomes[0], s.Quality[0])
		if err != nil {
			t.Fatal(err)
		}
		if res.SeriesLen != wantLen+1 {
			t.Errorf("track %d: series len %d, want %d", id, res.SeriesLen, wantLen+1)
		}
	}
}

// TestStepBatchIntoReuse drives the allocation-free path: a recycled result
// slice must come back with identical results to the allocating API, stale
// contents (old errors, old results) must be fully overwritten, and an
// undersized dst must be transparently reallocated.
func TestStepBatchIntoReuse(t *testing.T) {
	const tracks = 6
	for _, workers := range []int{1, 4} {
		poolA, st := batchFixture(t, tracks)
		poolB, _ := batchFixture(t, tracks)
		var items []StepItem
		for j := 0; j < 4; j++ {
			for id := 0; id < tracks; id++ {
				s := st.testSeries[id%len(st.testSeries)]
				items = append(items, StepItem{TrackID: id, Outcome: s.Outcomes[j], Quality: s.Quality[j]})
			}
		}
		// Poison dst with stale state the reuse path must overwrite.
		dst := make([]BatchResult, len(items), len(items)+8)
		for i := range dst {
			dst[i] = BatchResult{Result: Result{Fused: -77, SeriesLen: -77}, Err: ErrUnknownTrack}
		}
		got := poolA.StepBatchInto(items, workers, dst)
		if &got[0] != &dst[0] {
			t.Errorf("workers=%d: StepBatchInto reallocated despite sufficient capacity", workers)
		}
		want := poolB.StepBatch(items, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Err != nil || want[i].Err != nil {
				t.Fatalf("workers=%d item %d: errs %v vs %v", workers, i, got[i].Err, want[i].Err)
			}
			if got[i].Result != want[i].Result {
				t.Errorf("workers=%d item %d: %+v vs %+v", workers, i, got[i].Result, want[i].Result)
			}
		}
		// Undersized dst: must grow, not truncate.
		short := make([]BatchResult, 0, 1)
		regrown := poolB.StepBatchInto(items[:2], workers, short)
		if len(regrown) != 2 {
			t.Errorf("workers=%d: undersized dst produced %d results, want 2", workers, len(regrown))
		}
	}
}

// TestStepBatchSeriesIntoReuse mirrors TestStepBatchIntoReuse for the
// string-addressed entry point, including stale-error overwrite on items
// that succeed and per-item failures on items that do not.
func TestStepBatchSeriesIntoReuse(t *testing.T) {
	pool, st := poolFixture(t, 0)
	s := st.testSeries[0]
	a, err := pool.OpenSeries()
	if err != nil {
		t.Fatal(err)
	}
	items := []SeriesStepItem{
		{SeriesID: a, Outcome: s.Outcomes[0], Quality: s.Quality[0]},
		{SeriesID: "never-issued", Outcome: s.Outcomes[0], Quality: s.Quality[0]},
		{SeriesID: a, Outcome: s.Outcomes[1], Quality: s.Quality[1]},
	}
	dst := make([]BatchResult, 3)
	for i := range dst {
		dst[i] = BatchResult{Result: Result{SeriesLen: -1}, Err: ErrTrackBudget}
	}
	got := pool.StepBatchSeriesInto(items, 2, dst)
	if got[0].Err != nil || got[2].Err != nil {
		t.Fatalf("valid items failed: %v %v", got[0].Err, got[2].Err)
	}
	if got[0].Result.SeriesLen != 1 || got[2].Result.SeriesLen != 2 {
		t.Errorf("series lengths = %d,%d, want 1,2", got[0].Result.SeriesLen, got[2].Result.SeriesLen)
	}
	if !errors.Is(got[1].Err, ErrUnknownSeries) {
		t.Errorf("item 1 err = %v, want ErrUnknownSeries", got[1].Err)
	}
	if got[1].Result.SeriesLen != 0 {
		t.Errorf("failed item kept stale result: %+v", got[1].Result)
	}
}

// forceBatchParallelism overrides the CPU cap so the goroutine fan-out path
// runs even on machines with a single schedulable core, restoring the real
// cap when the test ends. Tests in this package run sequentially, so the
// override cannot leak into a concurrent batch.
func forceBatchParallelism(t *testing.T, p int) {
	t.Helper()
	prev := batchParallelism
	batchParallelism = func() int { return p }
	t.Cleanup(func() { batchParallelism = prev })
}

// TestStepBatchIntoGrowShrinkProperty drives one recycled dst through a
// sequence of batches whose sizes grow and shrink across calls — the exact
// recycle pattern a serving loop produces — and checks every call against a
// per-item Step oracle on a twin pool. A dst-reuse bug (stale results
// surviving a shrink, length mismatch after a grow) shows up as a divergence
// or a leftover poison value.
func TestStepBatchIntoGrowShrinkProperty(t *testing.T) {
	const tracks = 16
	sizes := []int{3, 40, 7, 40, 1, 25, 0, 40, 12}
	for _, workers := range []int{1, 16} {
		poolA, st := batchFixture(t, tracks)
		poolB, _ := batchFixture(t, tracks)
		var dst []BatchResult
		step := 0
		for round, n := range sizes {
			items := make([]StepItem, n)
			for i := range items {
				s := st.testSeries[(step+i)%len(st.testSeries)]
				j := (step + i) % len(s.Outcomes)
				items[i] = StepItem{TrackID: (step + i) % tracks, Outcome: s.Outcomes[j], Quality: s.Quality[j]}
			}
			// Poison the recycled storage beyond this call's length so any
			// read of stale capacity is distinguishable from real output.
			for i := range dst {
				dst[i] = BatchResult{Result: Result{Fused: -99, SeriesLen: -99}, Err: ErrTrackBudget}
			}
			dst = poolA.StepBatchInto(items, workers, dst)
			if len(dst) != n {
				t.Fatalf("workers=%d round %d: len %d, want %d", workers, round, len(dst), n)
			}
			for i, it := range items {
				want, err := poolB.Step(it.TrackID, it.Outcome, it.Quality)
				if err != nil {
					t.Fatal(err)
				}
				if dst[i].Err != nil {
					t.Fatalf("workers=%d round %d item %d: %v", workers, round, i, dst[i].Err)
				}
				if dst[i].Result != want {
					t.Errorf("workers=%d round %d item %d: %+v vs oracle %+v",
						workers, round, i, dst[i].Result, want)
				}
			}
			step += n
		}
	}
}

// TestStepBatchFanOutForced pins the goroutine fan-out path itself: with the
// CPU cap lifted and batches larger than minItemsPerWorker, multiple workers
// genuinely run, and the results must still match the allocating API
// (ordering per track, per-item errors, no lost or duplicated items).
func TestStepBatchFanOutForced(t *testing.T) {
	forceBatchParallelism(t, 8)
	const tracks = 32
	poolA, st := batchFixture(t, tracks)
	poolB, _ := batchFixture(t, tracks)
	n := 3*minItemsPerWorker + 17
	items := make([]StepItem, n)
	for i := range items {
		s := st.testSeries[i%len(st.testSeries)]
		j := i % len(s.Outcomes)
		items[i] = StepItem{TrackID: i % tracks, Outcome: s.Outcomes[j], Quality: s.Quality[j]}
	}
	if got := maxUsefulWorkers(n, 16); got < 2 {
		t.Fatalf("maxUsefulWorkers(%d, 16) = %d, want >= 2 with forced parallelism", n, got)
	}
	got := poolA.StepBatchInto(items, 16, nil)
	want := poolB.StepBatch(items, 1)
	for i := range want {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("item %d: errs %v vs %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Result != want[i].Result {
			t.Errorf("item %d: fan-out %+v vs sequential %+v", i, got[i].Result, want[i].Result)
		}
	}
}

// TestMaxUsefulWorkers pins the capping arithmetic: small batches always run
// inline, the per-worker floor splits large batches, and the CPU cap wins
// over the request.
func TestMaxUsefulWorkers(t *testing.T) {
	forceBatchParallelism(t, 4)
	cases := []struct{ n, workers, want int }{
		{1, 16, 1},
		{minItemsPerWorker, 16, 1},
		{minItemsPerWorker + 1, 16, 2},
		{4 * minItemsPerWorker, 16, 4},
		{100 * minItemsPerWorker, 16, 4}, // CPU cap
		{100 * minItemsPerWorker, 2, 2},  // request below caps is honoured
	}
	for _, c := range cases {
		if got := maxUsefulWorkers(c.n, c.workers); got != c.want {
			t.Errorf("maxUsefulWorkers(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestStepBatchIntoSteadyStateAllocs is the zero-allocation claim as a unit
// test: once every ring buffer is warm and the result slice is recycled, a
// sequential batch must not allocate at all, and a parallel batch must stay
// within the two-allocs-per-op budget the bench gate enforces.
func TestStepBatchIntoSteadyStateAllocs(t *testing.T) {
	st := buildStudy(t)
	taqim := fitTAQIM(t, st, nil)
	const ringLimit = 8
	pool, err := NewWrapperPool(st.base, taqim, Config{BufferLimit: ringLimit}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const tracks = 64
	s := st.testSeries[0]
	items := make([]StepItem, tracks)
	for id := 0; id < tracks; id++ {
		if err := pool.Open(id); err != nil {
			t.Fatal(err)
		}
		items[id] = StepItem{TrackID: id, Outcome: s.Outcomes[0], Quality: s.Quality[0]}
	}
	var dst []BatchResult
	// Warm up: fill every ring (plus one eviction round) and let the
	// scratch pool and result slice reach steady state.
	for i := 0; i < ringLimit+2; i++ {
		dst = pool.StepBatchInto(items, 4, dst)
	}
	for _, workers := range []int{1, 4} {
		avg := testing.AllocsPerRun(20, func() {
			dst = pool.StepBatchInto(items, workers, dst)
			for i := range dst {
				if dst[i].Err != nil {
					t.Fatal(dst[i].Err)
				}
			}
		})
		// The parallel path gets headroom of one allocation per spawned
		// worker: `go s.runFn()` itself allocates nothing, but the runtime
		// may have to allocate a fresh goroutine stack when its free list
		// is empty (a scheduler heuristic that depends on what ran before,
		// surfaced by -shuffle) — that is not a property of the batch path.
		budget := 2.0
		if workers > 1 {
			budget += float64(workers - 1)
		}
		if avg > budget {
			t.Errorf("workers=%d: %.1f allocs per steady-state batch, want <= %.0f", workers, avg, budget)
		}
	}
}
