package core

import (
	"fmt"
	"sort"
)

// Feature identifies one of the four timeseries-aware quality factors
// proposed by the paper.
type Feature int

const (
	// Ratio (taQF1) is the share of DDM outcomes in the series that agree
	// with the current fused outcome.
	Ratio Feature = iota + 1
	// Length (taQF2) is the length of the series up to the current step.
	Length
	// Size (taQF3) is the number of distinct DDM outcomes in the series.
	Size
	// Certainty (taQF4) is the cumulative certainty: the sum of 1-u_j
	// over the steps whose outcome agrees with the current fused outcome.
	Certainty
)

// AllFeatures lists the four taQF in canonical order.
func AllFeatures() []Feature {
	return []Feature{Ratio, Length, Size, Certainty}
}

// String returns the feature name used in reports and rule exports.
func (f Feature) String() string {
	switch f {
	case Ratio:
		return "taqf_ratio"
	case Length:
		return "taqf_length"
	case Size:
		return "taqf_size"
	case Certainty:
		return "taqf_certainty"
	default:
		return fmt.Sprintf("Feature(%d)", int(f))
	}
}

// FeatureSubsets enumerates all non-empty subsets of the four taQF in
// deterministic order (by size, then lexicographically), as evaluated by the
// paper's feature-importance study (Fig. 7).
func FeatureSubsets() [][]Feature {
	all := AllFeatures()
	var out [][]Feature
	for mask := 1; mask < 1<<len(all); mask++ {
		var sub []Feature
		for i, f := range all {
			if mask&(1<<i) != 0 {
				sub = append(sub, f)
			}
		}
		out = append(out, sub)
	}
	sort.SliceStable(out, func(a, b int) bool { return len(out[a]) < len(out[b]) })
	return out
}

// ComputeFeatures derives all four taQF from the series history
// (o_0..o_i, u_0..u_i) and the current fused outcome, returning them indexed
// as [Ratio-1, Length-1, Size-1, Certainty-1].
func ComputeFeatures(outcomes []int, uncertainties []float64, fused int) ([4]float64, error) {
	var out [4]float64
	n := len(outcomes)
	if n == 0 {
		return out, ErrEmptySeries
	}
	if len(uncertainties) != n {
		return out, fmt.Errorf("core: %d outcomes but %d uncertainties", n, len(uncertainties))
	}
	agree := 0
	distinct := make(map[int]struct{}, 4)
	var cumCertainty float64
	for j, o := range outcomes {
		distinct[o] = struct{}{}
		if o == fused {
			agree++
			cumCertainty += 1 - uncertainties[j]
		}
	}
	out[Ratio-1] = float64(agree) / float64(n)
	out[Length-1] = float64(n)
	out[Size-1] = float64(len(distinct))
	out[Certainty-1] = cumCertainty
	return out, nil
}

// SelectFeatures extracts the requested subset from a full taQF vector, in
// the order given by feats.
func SelectFeatures(all [4]float64, feats []Feature) ([]float64, error) {
	out := make([]float64, len(feats))
	for i, f := range feats {
		if f < Ratio || f > Certainty {
			return nil, fmt.Errorf("core: unknown feature %d", int(f))
		}
		out[i] = all[f-1]
	}
	return out, nil
}

// FeatureNames returns the names of the selected features, for tree exports.
func FeatureNames(feats []Feature) []string {
	out := make([]string, len(feats))
	for i, f := range feats {
		out[i] = f.String()
	}
	return out
}
