package xlog

import (
	"strings"
	"testing"
)

func capture(l *Logger) (*Logger, *[]string) {
	lines := &[]string{}
	return l.WithSink(func(line string) { *lines = append(*lines, line) }), lines
}

func TestRendering(t *testing.T) {
	cases := []struct {
		name string
		emit func(l *Logger)
		want string
	}{
		{"plain", func(l *Logger) { l.Info("listening", "addr", ":8080") },
			`level=info component=server msg=listening addr=:8080`},
		{"quoted msg", func(l *Logger) { l.Warn("degraded mode cleared", "errors", 3) },
			`level=warn component=server msg="degraded mode cleared" errors=3`},
		{"quoted value", func(l *Logger) { l.Error("write failed", "err", "connection lost") },
			`level=error component=server msg="write failed" err="connection lost"`},
		{"empty value", func(l *Logger) { l.Info("x", "k", "") },
			`level=info component=server msg=x k=""`},
		{"equals in value", func(l *Logger) { l.Info("x", "k", "a=b") },
			`level=info component=server msg=x k="a=b"`},
		{"non-string key", func(l *Logger) { l.Info("x", 7, "v") },
			`level=info component=server msg=x 7=v`},
		{"odd kv", func(l *Logger) { l.Info("x", "orphan") },
			`level=info component=server msg=x !BADKEY=orphan`},
		{"printf", func(l *Logger) { l.Printf("writing %d response: %v", 200, "connection lost") },
			`level=error component=server msg="writing 200 response: connection lost"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, lines := capture(New("server"))
			tc.emit(l)
			if len(*lines) != 1 || (*lines)[0] != tc.want {
				t.Fatalf("got %q\nwant %q", *lines, tc.want)
			}
		})
	}
}

func TestLevelFiltering(t *testing.T) {
	l, lines := capture(New("store"))
	l.Debug("hidden")
	if len(*lines) != 0 {
		t.Fatalf("debug leaked through the default Info threshold: %q", *lines)
	}
	dl, dlines := capture(New("store"))
	dl = dl.WithLevel(LevelDebug)
	dl.Debug("visible")
	if len(*dlines) != 1 || !strings.Contains((*dlines)[0], "level=debug") {
		t.Fatalf("debug level lost a record: %q", *dlines)
	}
	el, elines := capture(New("store"))
	el = el.WithLevel(LevelError)
	el.Warn("hidden")
	el.Error("kept")
	if len(*elines) != 1 || !strings.Contains((*elines)[0], "msg=kept") {
		t.Fatalf("error threshold kept %q", *elines)
	}
}

func TestDefaultSinkSwap(t *testing.T) {
	var got []string
	old := SetDefaultSink(func(line string) { got = append(got, line) })
	defer SetDefaultSink(old)
	New("durability").Info("final checkpoint written", "checkpoints", 2, "flushes", 9)
	if len(got) != 1 ||
		got[0] != `level=info component=durability msg="final checkpoint written" checkpoints=2 flushes=9` {
		t.Fatalf("default sink saw %q", got)
	}
}

// TestImmutability pins that With* returns copies: a leveled variant must
// not change the original's threshold.
func TestImmutability(t *testing.T) {
	l, lines := capture(New("a"))
	_ = l.WithLevel(LevelError)
	l.Info("still visible")
	if len(*lines) != 1 {
		t.Fatalf("WithLevel mutated the receiver: %q", *lines)
	}
	if l.Component() != "a" {
		t.Fatalf("component = %q", l.Component())
	}
}
