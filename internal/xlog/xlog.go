// Package xlog is the serving stack's structured-logging shim: leveled
// key=value lines with a consistent component field and an injectable
// sink. It deliberately stays tiny — logfmt rendering onto the standard
// library's log package, no dependencies, no background state — because
// its job is uniformity (every subsystem logs `level=... component=...
// msg="..." k=v`), not a logging framework. Log sites are cold paths
// (startup, shutdown, failures, transitions); the hot path's telemetry
// lives in internal/monitor and internal/trace.
package xlog

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's logfmt name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// Sink receives one rendered line (no trailing newline). The default sink
// hands lines to the standard library logger, keeping its timestamps so a
// migrated subsystem's output stays greppable next to unmigrated lines.
type Sink func(line string)

// defaultSink is process-wide and swappable for tests that capture every
// component's output at once.
var defaultSink atomic.Pointer[Sink]

func init() {
	s := Sink(func(line string) { log.Print(line) })
	defaultSink.Store(&s)
}

// SetDefaultSink replaces the process-wide sink and returns the previous
// one, for tests to restore.
func SetDefaultSink(s Sink) Sink {
	old := defaultSink.Swap(&s)
	return *old
}

// Logger renders leveled logfmt lines for one component. The zero value is
// unusable; construct with New. Loggers are immutable — With* methods
// return copies — so handing one to another goroutine is always safe.
type Logger struct {
	component string
	min       Level
	sink      Sink // nil means the process default
}

// New returns a logger for a component ("server", "durability",
// "admission", "recalib", "trace", ...) at the default Info threshold.
func New(component string) *Logger {
	return &Logger{component: component, min: LevelInfo}
}

// WithSink returns a copy whose lines go to s instead of the process
// default.
func (l *Logger) WithSink(s Sink) *Logger {
	c := *l
	c.sink = s
	return &c
}

// WithLevel returns a copy that drops records below min.
func (l *Logger) WithLevel(min Level) *Logger {
	c := *l
	c.min = min
	return &c
}

// Component returns the logger's component name.
func (l *Logger) Component() string { return l.component }

func (l *Logger) emit(lv Level, msg string, kv []any) {
	if lv < l.min {
		return
	}
	var b strings.Builder
	b.Grow(64 + len(msg))
	b.WriteString("level=")
	b.WriteString(lv.String())
	b.WriteString(" component=")
	b.WriteString(l.component)
	b.WriteString(" msg=")
	appendValue(&b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteString(key)
		b.WriteByte('=')
		appendValue(&b, fmt.Sprint(kv[i+1]))
	}
	if len(kv)%2 == 1 {
		// An odd trailing key is a programming error at the call site;
		// surface it in the line instead of silently dropping the value.
		b.WriteString(" !BADKEY=")
		appendValue(&b, fmt.Sprint(kv[len(kv)-1]))
	}
	sink := l.sink
	if sink == nil {
		sink = *defaultSink.Load()
	}
	sink(b.String())
}

// appendValue writes v, quoting when it contains logfmt metacharacters so
// lines stay machine-splittable on spaces.
func appendValue(b *strings.Builder, v string) {
	if strings.ContainsAny(v, " \t\n\"=") || v == "" {
		b.WriteString(fmt.Sprintf("%q", v))
		return
	}
	b.WriteString(v)
}

// Debug logs at LevelDebug; kv is alternating key/value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.emit(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.emit(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.emit(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.emit(LevelError, msg, kv) }

// Printf is the migration escape hatch: printf-style sites that predate
// the shim render their formatted text as the msg of an error-level record
// (the historical logf sites all reported failures). New call sites should
// use the structured methods instead.
func (l *Logger) Printf(format string, args ...any) {
	l.emit(LevelError, fmt.Sprintf(format, args...), nil)
}
