package track

import (
	"errors"
	"fmt"
	"math"
)

// MultiTracker maintains several concurrent sign tracks — a frame on a real
// road often shows more than one traffic sign. Detections are associated to
// the nearest compatible track by Mahalanobis gating; unmatched detections
// open new tracks, and tracks that miss too many frames are retired. Each
// track carries its own timeseries id, so one wrapper buffer per track can
// be maintained downstream.
type MultiTracker struct {
	cfg       Config
	maxTracks int
	tracks    map[int]*trackState
	nextID    int
}

type trackState struct {
	kf  *KalmanFilter
	gap int
}

// NewMultiTracker creates a tracker that maintains at most maxTracks
// concurrent tracks.
func NewMultiTracker(cfg Config, maxTracks int) (*MultiTracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if maxTracks <= 0 {
		return nil, errors.New("track: maxTracks must be positive")
	}
	return &MultiTracker{
		cfg:       cfg,
		maxTracks: maxTracks,
		tracks:    make(map[int]*trackState),
	}, nil
}

// ActiveTracks returns the ids of the live tracks (order unspecified).
func (m *MultiTracker) ActiveTracks() []int {
	out := make([]int, 0, len(m.tracks))
	for id := range m.tracks {
		out = append(out, id)
	}
	return out
}

// ObserveFrame processes all detections of one frame jointly: every track
// is predicted once, detections are greedily matched to the gate-compatible
// track with the smallest innovation distance, leftover detections open new
// tracks (respecting maxTracks), and unmatched tracks accrue a miss.
// The i-th returned observation corresponds to detections[i]; a SeriesID of
// -1 means the detection was dropped because the track budget is exhausted.
func (m *MultiTracker) ObserveFrame(detections [][2]float64) ([]Observation, error) {
	// Predict all live tracks once.
	type candidate struct {
		id    int
		state *trackState
	}
	cands := make([]candidate, 0, len(m.tracks))
	for id, st := range m.tracks {
		if _, _, err := st.kf.Predict(1); err != nil {
			return nil, fmt.Errorf("track: predict track %d: %w", id, err)
		}
		cands = append(cands, candidate{id: id, state: st})
	}
	out := make([]Observation, len(detections))
	usedTrack := make(map[int]bool, len(cands))
	usedDet := make(map[int]bool, len(detections))
	// Greedy association: repeatedly take the globally closest
	// (track, detection) pair within the gate. The innovation distance is
	// approximated by the normalised Euclidean distance to the predicted
	// position; the exact Mahalanobis statistic is evaluated on Update.
	for {
		bestD := math.Inf(1)
		bestT, bestDet := -1, -1
		for ti, c := range cands {
			if usedTrack[ti] {
				continue
			}
			px, py, _, _ := c.state.kf.State()
			for di, det := range detections {
				if usedDet[di] {
					continue
				}
				dx := det[0] - px
				dy := det[1] - py
				d := (dx*dx + dy*dy) / m.cfg.MeasurementNoise
				if d < bestD {
					bestD = d
					bestT, bestDet = ti, di
				}
			}
		}
		// The coarse gate is deliberately loose (4x) — the exact
		// statistic from Update decides.
		if bestT < 0 || bestD > 4*m.cfg.Gate {
			break
		}
		usedTrack[bestT] = true
		usedDet[bestDet] = true
		c := cands[bestT]
		det := detections[bestDet]
		d2, err := c.state.kf.Update(det[0], det[1])
		if err != nil {
			return nil, fmt.Errorf("track: update track %d: %w", c.id, err)
		}
		if d2 > m.cfg.Gate {
			// Exact statistic rejects: treat as unmatched; the
			// track keeps its prediction and accrues a miss, the
			// detection opens a new track below.
			usedDet[bestDet] = false
			c.state.gap++
			continue
		}
		c.state.gap = 0
		out[bestDet] = Observation{SeriesID: c.id, Distance2: d2}
	}
	// Unmatched tracks miss this frame.
	for ti, c := range cands {
		if !usedTrack[ti] {
			c.state.gap++
		}
	}
	// Unmatched detections open new tracks.
	for di, det := range detections {
		if usedDet[di] {
			continue
		}
		if len(m.tracks) >= m.maxTracks {
			out[di] = Observation{SeriesID: -1}
			continue
		}
		kf, err := NewKalmanFilter(m.cfg.ProcessNoise, m.cfg.MeasurementNoise)
		if err != nil {
			return nil, err
		}
		kf.Init(det[0], det[1])
		id := m.nextID
		m.nextID++
		m.tracks[id] = &trackState{kf: kf}
		out[di] = Observation{SeriesID: id, NewSeries: true}
	}
	// Retire stale tracks.
	for id, st := range m.tracks {
		if st.gap > m.cfg.MaxGap {
			delete(m.tracks, id)
		}
	}
	return out, nil
}
