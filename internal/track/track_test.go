package track

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/iese-repro/tauw/internal/gtsrb"
)

func TestKalmanValidation(t *testing.T) {
	if _, err := NewKalmanFilter(0, 1); err == nil {
		t.Error("zero process noise must fail")
	}
	if _, err := NewKalmanFilter(1, -1); err == nil {
		t.Error("negative measurement noise must fail")
	}
	kf, err := NewKalmanFilter(0.1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if kf.Initialised() {
		t.Error("fresh filter must not be initialised")
	}
	if _, _, err := kf.Predict(1); err == nil {
		t.Error("predict before init must fail")
	}
	if _, err := kf.Update(0, 0); err == nil {
		t.Error("update before init must fail")
	}
	kf.Init(0.5, 0.5)
	if _, _, err := kf.Predict(0); err == nil {
		t.Error("non-positive dt must fail")
	}
}

func TestKalmanTracksConstantVelocity(t *testing.T) {
	kf, err := NewKalmanFilter(0.001, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	kf.Init(0, 0)
	const vx, vy = 0.02, 0.01
	for step := 1; step <= 50; step++ {
		if _, _, err := kf.Predict(1); err != nil {
			t.Fatal(err)
		}
		mx := vx*float64(step) + rng.NormFloat64()*0.01
		my := vy*float64(step) + rng.NormFloat64()*0.01
		if _, err := kf.Update(mx, my); err != nil {
			t.Fatal(err)
		}
	}
	x, y, evx, evy := kf.State()
	if math.Abs(x-vx*50) > 0.05 || math.Abs(y-vy*50) > 0.05 {
		t.Errorf("position estimate (%.3f,%.3f) far from (%.3f,%.3f)", x, y, vx*50, vy*50)
	}
	if math.Abs(evx-vx) > 0.01 || math.Abs(evy-vy) > 0.01 {
		t.Errorf("velocity estimate (%.4f,%.4f) far from (%.3f,%.3f)", evx, evy, vx, vy)
	}
}

func TestKalmanUncertaintyShrinksWithMeasurements(t *testing.T) {
	kf, err := NewKalmanFilter(0.0001, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	kf.Init(0.5, 0.5)
	before := kf.positionUncertainty()
	for i := 0; i < 10; i++ {
		if _, _, err := kf.Predict(1); err != nil {
			t.Fatal(err)
		}
		if _, err := kf.Update(0.5, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if after := kf.positionUncertainty(); after >= before {
		t.Errorf("uncertainty must shrink: before %g after %g", before, after)
	}
}

func TestKalmanInnovationDistance(t *testing.T) {
	kf, err := NewKalmanFilter(0.001, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	kf.Init(0.5, 0.5)
	// Settle the filter on a stationary target.
	for i := 0; i < 5; i++ {
		kf.Predict(1)
		if _, err := kf.Update(0.5, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	kf.Predict(1)
	dNear, err := kf.Update(0.505, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	kf2, _ := NewKalmanFilter(0.001, 0.0001)
	kf2.Init(0.5, 0.5)
	for i := 0; i < 5; i++ {
		kf2.Predict(1)
		kf2.Update(0.5, 0.5)
	}
	kf2.Predict(1)
	dFar, err := kf2.Update(0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if dFar <= dNear {
		t.Errorf("far measurement distance %g must exceed near %g", dFar, dNear)
	}
	if dFar < 9.21 {
		t.Errorf("jump to another sign must violate the 0.99 gate, got %g", dFar)
	}
}

func TestTrackerConfigValidation(t *testing.T) {
	bad := []Config{
		{ProcessNoise: 0, MeasurementNoise: 1, Gate: 9, MaxGap: 1},
		{ProcessNoise: 1, MeasurementNoise: 0, Gate: 9, MaxGap: 1},
		{ProcessNoise: 1, MeasurementNoise: 1, Gate: 0, MaxGap: 1},
		{ProcessNoise: 1, MeasurementNoise: 1, Gate: 9, MaxGap: -1},
	}
	for i, cfg := range bad {
		if _, err := NewTracker(cfg); err == nil {
			t.Errorf("config %d must fail", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestTrackerSegmentsSyntheticSeries(t *testing.T) {
	// Two GTSRB series: one sign drifting smoothly, then a jump to the
	// next sign. The tracker must emit exactly one NewSeries per sign.
	cfg := gtsrb.DefaultGeneratorConfig()
	cfg.NumSeries = 6
	series, err := gtsrb.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracker(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.CurrentSeries() != -1 {
		t.Error("fresh tracker must report no active series")
	}
	boundaries := 0
	var lastID = -1
	for _, s := range series {
		for j, f := range s.Frames {
			obs, err := tr.Observe(f.ImageX, f.ImageY)
			if err != nil {
				t.Fatal(err)
			}
			if obs.NewSeries {
				boundaries++
				if j != 0 {
					t.Errorf("series %d frame %d spuriously started a new track (d2=%.1f)",
						s.ID, j, obs.Distance2)
				}
			}
			if obs.SeriesID < lastID {
				t.Error("series ids must be monotone")
			}
			lastID = obs.SeriesID
		}
		// Between physical signs the detector loses the object; the
		// tracker drops the track after MaxGap misses.
		for g := 0; g < DefaultConfig().MaxGap+1; g++ {
			tr.MissedFrame()
		}
	}
	if boundaries != len(series) {
		t.Errorf("detected %d series, want %d", boundaries, len(series))
	}
}

func TestTrackerGateDetectsJump(t *testing.T) {
	tr, err := NewTracker(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Smooth track.
	for i := 0; i < 10; i++ {
		obs, err := tr.Observe(0.4+float64(i)*0.01, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && obs.NewSeries {
			t.Fatalf("smooth motion misdetected as new series at step %d", i)
		}
	}
	// Teleport: a different sign.
	obs, err := tr.Observe(0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.NewSeries {
		t.Error("teleport must start a new series")
	}
	if obs.SeriesID != 1 {
		t.Errorf("series id = %d, want 1", obs.SeriesID)
	}
}

func TestTrackerMissedFramesDropTrack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxGap = 2
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Observe(0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	tr.MissedFrame()
	tr.MissedFrame()
	if tr.CurrentSeries() != 0 {
		t.Error("track must survive MaxGap misses")
	}
	tr.MissedFrame()
	if tr.CurrentSeries() != -1 {
		t.Error("track must drop after MaxGap+1 misses")
	}
	obs, err := tr.Observe(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.NewSeries {
		t.Error("observation after dropped track must start a new series")
	}
	// MissedFrame on an idle tracker is a no-op.
	tr.Reset()
	tr.MissedFrame()
	if tr.CurrentSeries() != -1 {
		t.Error("reset tracker must stay idle")
	}
}
