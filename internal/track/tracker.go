package track

import (
	"errors"
	"fmt"
)

// Config parameterises the sign tracker.
type Config struct {
	// ProcessNoise and MeasurementNoise configure the Kalman filter. The
	// defaults suit normalised image coordinates in [0,1].
	ProcessNoise, MeasurementNoise float64
	// Gate is the squared-Mahalanobis gating threshold: an observation
	// whose innovation exceeds the gate starts a new timeseries. 9.21 is
	// the chi-squared(2) 0.99 quantile.
	Gate float64
	// MaxGap is the number of missed frames after which the track is
	// dropped even without a gate violation.
	MaxGap int
}

// DefaultConfig returns tracking parameters suited to normalised image
// coordinates.
func DefaultConfig() Config {
	return Config{
		ProcessNoise:     0.05,
		MeasurementNoise: 0.0004, // ~2% of the image, squared
		Gate:             9.21,
		MaxGap:           3,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.ProcessNoise <= 0 || c.MeasurementNoise <= 0:
		return errors.New("track: noise levels must be positive")
	case c.Gate <= 0:
		return errors.New("track: gate must be positive")
	case c.MaxGap < 0:
		return errors.New("track: max gap must be non-negative")
	}
	return nil
}

// Observation is the tracker's verdict for one detection.
type Observation struct {
	// SeriesID numbers the timeseries this detection belongs to,
	// starting at 0.
	SeriesID int
	// NewSeries is true when this detection started a new timeseries;
	// the wrapper must clear its buffer then.
	NewSeries bool
	// Distance2 is the squared Mahalanobis innovation distance against
	// the predicted track (0 for the first detection of a series).
	Distance2 float64
}

// Tracker segments a stream of sign detections into timeseries. It is not
// safe for concurrent use; wrap it if multiple goroutines feed detections.
type Tracker struct {
	cfg      Config
	kf       *KalmanFilter
	series   int
	gap      int
	hasTrack bool
}

// NewTracker creates a tracker.
func NewTracker(cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kf, err := NewKalmanFilter(cfg.ProcessNoise, cfg.MeasurementNoise)
	if err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, kf: kf, series: -1}, nil
}

// Observe processes one detection at the given normalised image position.
func (t *Tracker) Observe(x, y float64) (Observation, error) {
	if !t.hasTrack {
		return t.startSeries(x, y, 0), nil
	}
	if _, _, err := t.kf.Predict(1); err != nil {
		return Observation{}, fmt.Errorf("track: predict: %w", err)
	}
	d2, err := t.kf.Update(x, y)
	if err != nil {
		return Observation{}, fmt.Errorf("track: update: %w", err)
	}
	if d2 > t.cfg.Gate {
		// The detection is incompatible with the current track: a
		// different physical sign.
		return t.startSeries(x, y, d2), nil
	}
	t.gap = 0
	return Observation{SeriesID: t.series, Distance2: d2}, nil
}

// MissedFrame tells the tracker that a frame contained no detection; after
// MaxGap consecutive misses the track is dropped so the next detection
// starts a new timeseries.
func (t *Tracker) MissedFrame() {
	if !t.hasTrack {
		return
	}
	t.gap++
	if t.gap > t.cfg.MaxGap {
		t.hasTrack = false
	}
}

// Reset drops the current track unconditionally.
func (t *Tracker) Reset() { t.hasTrack = false }

// CurrentSeries returns the id of the active series, or -1 when none is
// active.
func (t *Tracker) CurrentSeries() int {
	if !t.hasTrack {
		return -1
	}
	return t.series
}

func (t *Tracker) startSeries(x, y, d2 float64) Observation {
	t.series++
	t.kf.Init(x, y)
	t.gap = 0
	t.hasTrack = true
	return Observation{SeriesID: t.series, NewSeries: true, Distance2: d2}
}
