package track

import (
	"math/rand/v2"
	"testing"
)

func TestMultiTrackerValidation(t *testing.T) {
	if _, err := NewMultiTracker(Config{}, 4); err == nil {
		t.Error("invalid config must fail")
	}
	if _, err := NewMultiTracker(DefaultConfig(), 0); err == nil {
		t.Error("zero track budget must fail")
	}
}

func TestMultiTrackerTwoParallelSigns(t *testing.T) {
	mt, err := NewMultiTracker(DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	// Two signs drifting apart; each must keep a stable series id.
	idA, idB := -1, -1
	for step := 0; step < 20; step++ {
		ax := 0.3 + 0.01*float64(step) + 0.002*rng.NormFloat64()
		ay := 0.4 + 0.002*rng.NormFloat64()
		bx := 0.7 - 0.01*float64(step) + 0.002*rng.NormFloat64()
		by := 0.6 + 0.002*rng.NormFloat64()
		obs, err := mt.ObserveFrame([][2]float64{{ax, ay}, {bx, by}})
		if err != nil {
			t.Fatal(err)
		}
		if len(obs) != 2 {
			t.Fatalf("got %d observations", len(obs))
		}
		if step == 0 {
			if !obs[0].NewSeries || !obs[1].NewSeries {
				t.Fatal("first frame must open two tracks")
			}
			idA, idB = obs[0].SeriesID, obs[1].SeriesID
			if idA == idB {
				t.Fatal("both signs assigned the same track")
			}
			continue
		}
		if obs[0].SeriesID != idA {
			t.Errorf("step %d: sign A jumped from track %d to %d", step, idA, obs[0].SeriesID)
		}
		if obs[1].SeriesID != idB {
			t.Errorf("step %d: sign B jumped from track %d to %d", step, idB, obs[1].SeriesID)
		}
		if obs[0].NewSeries || obs[1].NewSeries {
			t.Errorf("step %d: spurious new series", step)
		}
	}
	if got := len(mt.ActiveTracks()); got != 2 {
		t.Errorf("active tracks = %d, want 2", got)
	}
}

func TestMultiTrackerRetiresStaleTracks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxGap = 1
	mt, err := NewMultiTracker(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.ObserveFrame([][2]float64{{0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	// Two empty frames exceed MaxGap=1.
	if _, err := mt.ObserveFrame(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := mt.ObserveFrame(nil); err != nil {
		t.Fatal(err)
	}
	if got := len(mt.ActiveTracks()); got != 0 {
		t.Errorf("active tracks = %d, want 0 after retirement", got)
	}
	// A new detection opens a fresh series.
	obs, err := mt.ObserveFrame([][2]float64{{0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if !obs[0].NewSeries {
		t.Error("detection after retirement must start a new series")
	}
}

func TestMultiTrackerBudget(t *testing.T) {
	mt, err := NewMultiTracker(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := mt.ObserveFrame([][2]float64{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for _, o := range obs {
		if o.SeriesID == -1 {
			dropped++
		}
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1 (budget 2, detections 3)", dropped)
	}
}

func TestMultiTrackerSeparatesJump(t *testing.T) {
	mt, err := NewMultiTracker(DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Settle one track.
	for i := 0; i < 5; i++ {
		if _, err := mt.ObserveFrame([][2]float64{{0.4 + 0.01*float64(i), 0.5}}); err != nil {
			t.Fatal(err)
		}
	}
	// A far-away detection must open a second track, not steal the
	// first.
	obs, err := mt.ObserveFrame([][2]float64{{0.05, 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	if !obs[0].NewSeries {
		t.Error("distant detection must open a new series")
	}
	if got := len(mt.ActiveTracks()); got != 2 {
		t.Errorf("active tracks = %d, want 2", got)
	}
}
