// Package track implements the traffic-sign tracking substrate the paper
// relies on to segment the input stream into timeseries: following the cited
// road-sign trackers (Fang et al.; Gudigar et al.), detected sign positions
// are filtered with a constant-velocity Kalman filter, and a new timeseries
// begins whenever the observed location is incompatible with the predicted
// track — i.e. the predictions now relate to a different physical sign, so
// the timeseries buffer of the wrapper must be cleared.
package track

import (
	"errors"
	"fmt"
)

// KalmanFilter is a 2-D constant-velocity Kalman filter over the state
// [x, y, vx, vy] with position-only measurements.
type KalmanFilter struct {
	x [4]float64    // state estimate
	p [4][4]float64 // estimate covariance
	q float64       // process-noise intensity
	r float64       // measurement-noise variance
	// initialised reports whether Init has been called.
	initialised bool
}

// NewKalmanFilter creates a filter with the given process- and
// measurement-noise levels (variances).
func NewKalmanFilter(processNoise, measurementNoise float64) (*KalmanFilter, error) {
	if processNoise <= 0 || measurementNoise <= 0 {
		return nil, fmt.Errorf("track: noise levels must be positive, got q=%g r=%g",
			processNoise, measurementNoise)
	}
	return &KalmanFilter{q: processNoise, r: measurementNoise}, nil
}

// Init (re)starts the filter at the given position with zero velocity and a
// wide prior.
func (k *KalmanFilter) Init(x, y float64) {
	k.x = [4]float64{x, y, 0, 0}
	k.p = [4][4]float64{}
	for i := 0; i < 2; i++ {
		k.p[i][i] = 4 * k.r
	}
	for i := 2; i < 4; i++ {
		k.p[i][i] = 1
	}
	k.initialised = true
}

// Initialised reports whether the filter carries a state.
func (k *KalmanFilter) Initialised() bool { return k.initialised }

// State returns the current estimate (x, y, vx, vy).
func (k *KalmanFilter) State() (x, y, vx, vy float64) {
	return k.x[0], k.x[1], k.x[2], k.x[3]
}

// Predict advances the state by dt and returns the predicted position.
func (k *KalmanFilter) Predict(dt float64) (x, y float64, err error) {
	if !k.initialised {
		return 0, 0, errors.New("track: filter not initialised")
	}
	if dt <= 0 {
		return 0, 0, fmt.Errorf("track: dt must be positive, got %g", dt)
	}
	// State transition x' = F x with F adding velocity*dt to position.
	k.x[0] += k.x[2] * dt
	k.x[1] += k.x[3] * dt
	// Covariance P' = F P F^T + Q. F couples (0,2) and (1,3).
	var fp [4][4]float64
	f := [4][4]float64{
		{1, 0, dt, 0},
		{0, 1, 0, dt},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for m := 0; m < 4; m++ {
				s += f[i][m] * k.p[m][j]
			}
			fp[i][j] = s
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for m := 0; m < 4; m++ {
				s += fp[i][m] * f[j][m]
			}
			k.p[i][j] = s
		}
	}
	// Discrete white-noise acceleration model.
	dt2 := dt * dt
	dt3 := dt2 * dt / 2
	dt4 := dt2 * dt2 / 4
	for d := 0; d < 2; d++ {
		k.p[d][d] += k.q * dt4
		k.p[d][d+2] += k.q * dt3
		k.p[d+2][d] += k.q * dt3
		k.p[d+2][d+2] += k.q * dt2
	}
	return k.x[0], k.x[1], nil
}

// Update folds in a position measurement and returns the squared
// Mahalanobis distance of the innovation, the statistic used for gating
// (chi-squared with 2 degrees of freedom under the same-object hypothesis).
func (k *KalmanFilter) Update(mx, my float64) (float64, error) {
	if !k.initialised {
		return 0, errors.New("track: filter not initialised")
	}
	// Innovation y = z - Hx with H selecting position.
	iy0 := mx - k.x[0]
	iy1 := my - k.x[1]
	// S = H P H^T + R is the top-left 2x2 block plus R.
	s00 := k.p[0][0] + k.r
	s01 := k.p[0][1]
	s10 := k.p[1][0]
	s11 := k.p[1][1] + k.r
	det := s00*s11 - s01*s10
	if det <= 0 {
		return 0, errors.New("track: innovation covariance not positive definite")
	}
	inv00, inv01 := s11/det, -s01/det
	inv10, inv11 := -s10/det, s00/det
	d2 := iy0*(inv00*iy0+inv01*iy1) + iy1*(inv10*iy0+inv11*iy1)
	// Kalman gain K = P H^T S^{-1} (4x2).
	var gain [4][2]float64
	for i := 0; i < 4; i++ {
		gain[i][0] = k.p[i][0]*inv00 + k.p[i][1]*inv10
		gain[i][1] = k.p[i][0]*inv01 + k.p[i][1]*inv11
	}
	for i := 0; i < 4; i++ {
		k.x[i] += gain[i][0]*iy0 + gain[i][1]*iy1
	}
	// P = (I - K H) P ; KH only has columns 0,1.
	var np [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			np[i][j] = k.p[i][j] - gain[i][0]*k.p[0][j] - gain[i][1]*k.p[1][j]
		}
	}
	k.p = np
	return d2, nil
}

// positionUncertainty returns the trace of the position covariance block,
// a cheap health signal used in tests.
func (k *KalmanFilter) positionUncertainty() float64 {
	return k.p[0][0] + k.p[1][1]
}
