package ddm

import (
	"math"
	"testing"
)

func TestCentroidLearnsBlobs(t *testing.T) {
	train := threeClassBlobs(300, 0.5, 21)
	test := threeClassBlobs(150, 0.5, 22)
	model, err := TrainCentroid(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(model, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.97 {
		t.Errorf("centroid accuracy %.3f on easy blobs, want >= 0.97", ev.Accuracy)
	}
	scores, err := model.Scores(test[0].X)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range scores {
		if s < 0 {
			t.Error("negative probability")
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scores sum to %g", sum)
	}
	if model.NumClasses() != 3 {
		t.Error("class count wrong")
	}
}

func TestCentroidWeakerThanSoftmax(t *testing.T) {
	// On overlapping anisotropic blobs the linear softmax should beat
	// plain nearest-mean; this pins the baseline ordering the study's
	// model-agnosticism argument relies on.
	train := threeClassBlobs(900, 1.8, 23)
	test := threeClassBlobs(450, 1.8, 24)
	centroid, err := TrainCentroid(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	softmax, err := TrainSoftmax(train, 3, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	evC, err := Evaluate(centroid, test)
	if err != nil {
		t.Fatal(err)
	}
	evS, err := Evaluate(softmax, test)
	if err != nil {
		t.Fatal(err)
	}
	if evS.Accuracy < evC.Accuracy-0.03 {
		t.Errorf("softmax (%.3f) unexpectedly much worse than centroid (%.3f)",
			evS.Accuracy, evC.Accuracy)
	}
}

func TestCentroidErrors(t *testing.T) {
	if _, err := TrainCentroid(nil, 3); err == nil {
		t.Error("empty training set must fail")
	}
	good := threeClassBlobs(30, 0.5, 25)
	if _, err := TrainCentroid(good, 1); err == nil {
		t.Error("single class must fail")
	}
	bad := append([]Sample{}, good...)
	bad[2] = Sample{X: []float64{1}, Class: 0}
	if _, err := TrainCentroid(bad, 3); err == nil {
		t.Error("ragged features must fail")
	}
	bad2 := append([]Sample{}, good...)
	bad2[2] = Sample{X: []float64{1, 2}, Class: 9}
	if _, err := TrainCentroid(bad2, 3); err == nil {
		t.Error("out-of-range class must fail")
	}
	model, err := TrainCentroid(good, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Predict([]float64{1}); err == nil {
		t.Error("wrong width must fail")
	}
	if _, err := model.Scores([]float64{1, 2, 3}); err == nil {
		t.Error("wrong width must fail")
	}
}

func TestCentroidHandlesMissingClass(t *testing.T) {
	// Train with class 2 absent: predictions must still be well-formed.
	var train []Sample
	for _, s := range threeClassBlobs(90, 0.3, 26) {
		if s.Class != 2 {
			train = append(train, s)
		}
	}
	model, err := TrainCentroid(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := model.Predict([]float64{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if pred != 0 {
		t.Errorf("prediction %d, want 0 (nearest trained centroid)", pred)
	}
}
