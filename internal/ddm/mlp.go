package ddm

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// MLP is a one-hidden-layer ReLU network with a softmax output, the closest
// stdlib-only stand-in for the paper's small CNN. It exists both as the
// optional DDM of the study and as evidence that the wrapper is
// model-agnostic: everything downstream only sees the Classifier interface.
type MLP struct {
	// W1 is [hidden][dim+1] (last column bias), W2 is [classes][hidden+1].
	W1, W2  [][]float64
	Dim     int
	Hidden  int
	Classes int
}

// NumClasses implements Classifier.
func (m *MLP) NumClasses() int { return m.Classes }

// forward computes hidden activations and output logits.
func (m *MLP) forward(x []float64, hidden, logits []float64) {
	for h := 0; h < m.Hidden; h++ {
		w := m.W1[h]
		acc := w[m.Dim]
		for i, xi := range x {
			acc += w[i] * xi
		}
		if acc < 0 {
			acc = 0 // ReLU
		}
		hidden[h] = acc
	}
	for c := 0; c < m.Classes; c++ {
		w := m.W2[c]
		acc := w[m.Hidden]
		for h, hv := range hidden {
			acc += w[h] * hv
		}
		logits[c] = acc
	}
}

// Scores implements Classifier.
func (m *MLP) Scores(x []float64) ([]float64, error) {
	if len(x) != m.Dim {
		return nil, fmt.Errorf("ddm: input has %d features, model wants %d", len(x), m.Dim)
	}
	hidden := make([]float64, m.Hidden)
	logits := make([]float64, m.Classes)
	m.forward(x, hidden, logits)
	softmaxInPlace(logits)
	return logits, nil
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) (int, error) {
	if len(x) != m.Dim {
		return 0, fmt.Errorf("ddm: input has %d features, model wants %d", len(x), m.Dim)
	}
	hidden := make([]float64, m.Hidden)
	logits := make([]float64, m.Classes)
	m.forward(x, hidden, logits)
	return argmax(logits), nil
}

// TrainMLP fits a one-hidden-layer network with minibatch SGD.
func TrainMLP(samples []Sample, classes, hidden int, cfg TrainConfig) (*MLP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, errors.New("ddm: empty training set")
	}
	if classes <= 1 || hidden <= 0 {
		return nil, fmt.Errorf("ddm: invalid sizes classes=%d hidden=%d", classes, hidden)
	}
	dim := len(samples[0].X)
	for i, s := range samples {
		if len(s.X) != dim {
			return nil, fmt.Errorf("ddm: sample %d has %d features, want %d", i, len(s.X), dim)
		}
		if s.Class < 0 || s.Class >= classes {
			return nil, fmt.Errorf("ddm: sample %d has class %d outside [0,%d)", i, s.Class, classes)
		}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x6d6c70)) // "mlp"
	m := &MLP{Dim: dim, Hidden: hidden, Classes: classes}
	m.W1 = randMatrix(rng, hidden, dim+1, math.Sqrt(2/float64(dim)))
	m.W2 = randMatrix(rng, classes, hidden+1, math.Sqrt(2/float64(hidden)))
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	var (
		hid    = make([]float64, hidden)
		logits = make([]float64, classes)
		dOut   = make([]float64, classes)
		dHid   = make([]float64, hidden)
	)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate * (1 - 0.9*float64(epoch)/float64(cfg.Epochs))
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		var epochLoss float64
		for _, si := range idx {
			s := samples[si]
			m.forward(s.X, hid, logits)
			softmaxInPlace(logits)
			epochLoss += -math.Log(math.Max(logits[s.Class], 1e-12))
			for c := range dOut {
				dOut[c] = logits[c]
				if c == s.Class {
					dOut[c] -= 1
				}
			}
			// Backprop into the hidden layer.
			for h := 0; h < hidden; h++ {
				var g float64
				if hid[h] > 0 { // ReLU gate
					for c := 0; c < classes; c++ {
						g += dOut[c] * m.W2[c][h]
					}
				}
				dHid[h] = g
			}
			for c := 0; c < classes; c++ {
				w := m.W2[c]
				g := dOut[c]
				for h, hv := range hid {
					w[h] -= lr * (g*hv + cfg.L2*w[h])
				}
				w[hidden] -= lr * g
			}
			for h := 0; h < hidden; h++ {
				if dHid[h] == 0 {
					continue
				}
				w := m.W1[h]
				g := dHid[h]
				for i, xi := range s.X {
					w[i] -= lr * (g*xi + cfg.L2*w[i])
				}
				w[dim] -= lr * g
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss/float64(len(idx)))
		}
	}
	return m, nil
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) [][]float64 {
	out := make([][]float64, rows)
	for r := range out {
		out[r] = make([]float64, cols)
		for c := 0; c < cols-1; c++ { // leave bias at 0
			out[r][c] = rng.NormFloat64() * scale
		}
	}
	return out
}
