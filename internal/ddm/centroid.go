package ddm

import (
	"errors"
	"fmt"
	"math"
)

// Centroid is a nearest-class-mean classifier: the simplest model the
// wrapper can encapsulate, used as a weak baseline and to demonstrate that
// the uncertainty wrapper is genuinely model-agnostic (it touches only the
// Classifier interface).
type Centroid struct {
	// Means is the per-class mean feature vector.
	Means   [][]float64
	Dim     int
	Classes int
}

var _ Classifier = (*Centroid)(nil)

// TrainCentroid computes per-class means. Classes that never occur keep a
// zero centroid and are effectively never predicted unless everything else
// is farther.
func TrainCentroid(samples []Sample, classes int) (*Centroid, error) {
	if len(samples) == 0 {
		return nil, errors.New("ddm: empty training set")
	}
	if classes <= 1 {
		return nil, fmt.Errorf("ddm: need at least 2 classes, got %d", classes)
	}
	dim := len(samples[0].X)
	means := make([][]float64, classes)
	counts := make([]int, classes)
	for c := range means {
		means[c] = make([]float64, dim)
	}
	for i, s := range samples {
		if len(s.X) != dim {
			return nil, fmt.Errorf("ddm: sample %d has %d features, want %d", i, len(s.X), dim)
		}
		if s.Class < 0 || s.Class >= classes {
			return nil, fmt.Errorf("ddm: sample %d has class %d outside [0,%d)", i, s.Class, classes)
		}
		for d, v := range s.X {
			means[s.Class][d] += v
		}
		counts[s.Class]++
	}
	for c := range means {
		if counts[c] == 0 {
			continue
		}
		for d := range means[c] {
			means[c][d] /= float64(counts[c])
		}
	}
	return &Centroid{Means: means, Dim: dim, Classes: classes}, nil
}

// NumClasses implements Classifier.
func (c *Centroid) NumClasses() int { return c.Classes }

// Predict implements Classifier: the class with the nearest centroid.
func (c *Centroid) Predict(x []float64) (int, error) {
	if len(x) != c.Dim {
		return 0, fmt.Errorf("ddm: input has %d features, model wants %d", len(x), c.Dim)
	}
	best, bestD := 0, math.Inf(1)
	for cl, mean := range c.Means {
		var d float64
		for i, xi := range x {
			diff := xi - mean[i]
			d += diff * diff
		}
		if d < bestD {
			bestD = d
			best = cl
		}
	}
	return best, nil
}

// Scores implements Classifier with a softmax over negative distances — a
// heuristic confidence, deliberately uncalibrated (the wrapper does the
// calibrated part).
func (c *Centroid) Scores(x []float64) ([]float64, error) {
	if len(x) != c.Dim {
		return nil, fmt.Errorf("ddm: input has %d features, model wants %d", len(x), c.Dim)
	}
	out := make([]float64, c.Classes)
	for cl, mean := range c.Means {
		var d float64
		for i, xi := range x {
			diff := xi - mean[i]
			d += diff * diff
		}
		out[cl] = -math.Sqrt(d)
	}
	softmaxInPlace(out)
	return out, nil
}
