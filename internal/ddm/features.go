// Package ddm implements the data-driven-model substrate of the study: a
// synthetic stand-in for the convolutional TSR network of the paper. Since
// the uncertainty wrapper treats the DDM as a black box, what must be
// faithful is the *behaviour* of the model, not its architecture: errors
// must become rarer as the sign grows in the image, concentrate under
// quality deficits, cluster within visually similar sign families, and
// persist within a series because the situation setting persists. To get
// that, the package synthesises per-frame feature vectors from per-class
// prototypes degraded by the deficit channels, and trains real from-scratch
// classifiers (multinomial logistic regression and a one-hidden-layer MLP)
// with minibatch SGD.
package ddm

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/gtsrb"
)

// FeatureConfig parameterises the synthetic image-embedding model.
type FeatureConfig struct {
	// Dim is the embedding dimension.
	Dim int
	// FamilySpread scales the distance between family centres; ClassSpread
	// scales the distance of a class from its family centre. ClassSpread <
	// FamilySpread makes within-family confusions dominate.
	FamilySpread, ClassSpread float64
	// NoiseBase is the additive Gaussian noise level on a clean, close
	// sign.
	NoiseBase float64
	// NoiseSeverityGain adds noise proportional to deficit severity.
	NoiseSeverityGain float64
	// NoiseResolutionGain adds noise when the sign is small in the image.
	NoiseResolutionGain float64
	// ContrastLoss scales how strongly wash-out deficits (haze,
	// backlight, darkness, steam) reduce signal contrast.
	ContrastLoss float64
	// DistortionGain scales the series-persistent confusion: under heavy
	// deficits a sign consistently resembles one specific other sign
	// (dirt occluding the same digits every frame, haze washing out the
	// same contours). This is what makes DDM errors within a series
	// statistically dependent — the effect that breaks the naïve
	// uncertainty-fusion assumption in the paper.
	DistortionGain float64
	// Seed fixes the prototype layout.
	Seed uint64
}

// DefaultFeatureConfig returns the configuration used by the study; the
// noise levels are tuned so a trained classifier lands in the paper's
// accuracy regime (~92% on length-10 test subseries).
func DefaultFeatureConfig() FeatureConfig {
	return FeatureConfig{
		Dim:                 32,
		FamilySpread:        3.4,
		ClassSpread:         1.85,
		NoiseBase:           0.42,
		NoiseSeverityGain:   0.85,
		NoiseResolutionGain: 1.35,
		ContrastLoss:        0.45,
		DistortionGain:      1.35,
		Seed:                17,
	}
}

// Validate checks the configuration.
func (c FeatureConfig) Validate() error {
	switch {
	case c.Dim <= 0:
		return errors.New("ddm: feature dimension must be positive")
	case c.FamilySpread <= 0 || c.ClassSpread <= 0:
		return errors.New("ddm: spreads must be positive")
	case c.NoiseBase < 0 || c.NoiseSeverityGain < 0 || c.NoiseResolutionGain < 0:
		return errors.New("ddm: noise terms must be non-negative")
	case c.ContrastLoss < 0 || c.ContrastLoss > 1:
		return fmt.Errorf("ddm: contrast loss %g outside [0,1]", c.ContrastLoss)
	case c.DistortionGain < 0:
		return errors.New("ddm: distortion gain must be non-negative")
	}
	return nil
}

// FeatureModel synthesises embeddings for sign observations.
type FeatureModel struct {
	cfg    FeatureConfig
	protos [][]float64
}

// NewFeatureModel builds the per-class prototype layout deterministically
// from the seed: each family has a centre, and each class sits at a smaller
// offset from its family centre, so classes within a family are mutually
// closer than classes across families.
func NewFeatureModel(cfg FeatureConfig) (*FeatureModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x70726f74)) // "prot"
	centres := make(map[gtsrb.Family][]float64)
	for f := gtsrb.FamilySpeedLimit; f <= gtsrb.FamilyMandatory; f++ {
		c := make([]float64, cfg.Dim)
		for i := range c {
			c[i] = rng.NormFloat64() * cfg.FamilySpread
		}
		centres[f] = c
	}
	protos := make([][]float64, gtsrb.NumClasses)
	for _, cl := range gtsrb.Catalog() {
		p := make([]float64, cfg.Dim)
		centre := centres[cl.Family]
		for i := range p {
			p[i] = centre[i] + rng.NormFloat64()*cfg.ClassSpread
		}
		protos[cl.ID] = p
	}
	return &FeatureModel{cfg: cfg, protos: protos}, nil
}

// Dim returns the embedding dimension.
func (m *FeatureModel) Dim() int { return m.cfg.Dim }

// Prototype returns a copy of the clean prototype of a class.
func (m *FeatureModel) Prototype(class int) ([]float64, error) {
	if class < 0 || class >= gtsrb.NumClasses {
		return nil, fmt.Errorf("ddm: class %d outside catalogue", class)
	}
	out := make([]float64, m.cfg.Dim)
	copy(out, m.protos[class])
	return out, nil
}

// clarity maps apparent pixel size to [0,1]: ~0 for tiny crops, ~1 for full
// resolution, saturating like downsampling does.
func clarity(pixelSize float64) float64 {
	return pixelSize / (pixelSize + 45)
}

// SeriesDistortion is a persistent confusion drawn once per series: the
// target class the sign drifts toward under deficits and the strength of the
// drift. A nil distortion disables the effect (used for the training-set
// augmentation, whose deficits are rendered independently per image).
type SeriesDistortion struct {
	// Target is the class the distorted sign resembles.
	Target int
	// Strength scales the drift in [0,1].
	Strength float64
}

// NewSeriesDistortion draws the persistent confusion for one series showing
// the given class: usually toward a visually similar class of the same
// family, occasionally toward an arbitrary one.
func (m *FeatureModel) NewSeriesDistortion(class int, rng *rand.Rand) (SeriesDistortion, error) {
	cl, ok := gtsrb.ClassByID(class)
	if !ok {
		return SeriesDistortion{}, fmt.Errorf("ddm: class %d outside catalogue", class)
	}
	target := class
	if rng.Float64() < 0.75 {
		members := gtsrb.FamilyMembers(cl.Family)
		if len(members) > 1 {
			for target == class {
				target = members[rng.IntN(len(members))]
			}
		}
	}
	if target == class {
		for target == class {
			target = rng.IntN(gtsrb.NumClasses)
		}
	}
	return SeriesDistortion{Target: target, Strength: rng.Float64()}, nil
}

// Observe synthesises the embedding of one frame: the class prototype at a
// contrast reduced by wash-out deficits, blended toward the series'
// persistent confusion target in proportion to the deficit severity, plus
// noise that grows with deficit severity and with poor resolution, plus
// occlusion (zeroed dimensions) from dirt on sign or lens.
func (m *FeatureModel) Observe(class int, pixelSize float64, in augment.Intensities,
	dist *SeriesDistortion, rng *rand.Rand) ([]float64, error) {
	if class < 0 || class >= gtsrb.NumClasses {
		return nil, fmt.Errorf("ddm: class %d outside catalogue", class)
	}
	cl := clarity(pixelSize)
	washout := 0.32*in[augment.Haze] + 0.2*in[augment.Darkness] +
		0.2*in[augment.NaturalBacklight] + 0.14*in[augment.ArtificialBacklight] +
		0.26*in[augment.SteamedLens] + 0.12*in[augment.Rain]
	if washout > 1 {
		washout = 1
	}
	contrast := (0.35 + 0.65*cl) * (1 - m.cfg.ContrastLoss*washout)
	sigma := m.cfg.NoiseBase +
		m.cfg.NoiseSeverityGain*in.Severity() +
		m.cfg.NoiseResolutionGain*(1-cl) +
		0.8*in[augment.MotionBlur]*(0.4+0.6*in[augment.Darkness])
	// Frame-to-frame detection quality varies even under a constant
	// situation (crop jitter, exposure control, compression), which is
	// what lets majority voting recover hard series: frames of the same
	// series oscillate around the decision boundary instead of failing
	// in lockstep.
	sigma *= 0.78 + 0.44*rng.Float64()
	// Series-persistent confusion: blend toward the distortion target in
	// proportion to severity. Blends above 0.5 flip the nearest
	// prototype, giving systematic within-series misclassification.
	blend := 0.0
	target := class
	if dist != nil && dist.Target != class && dist.Target >= 0 && dist.Target < gtsrb.NumClasses {
		blend = m.cfg.DistortionGain * dist.Strength * in.Severity()
		if blend > 0.85 {
			blend = 0.85
		}
		target = dist.Target
	}
	x := make([]float64, m.cfg.Dim)
	proto := m.protos[class]
	tproto := m.protos[target]
	for i := range x {
		signal := (1-blend)*proto[i] + blend*tproto[i]
		x[i] = signal*contrast + rng.NormFloat64()*sigma
	}
	// Dirt occludes parts of the sign: zero a random block of dims.
	occlusion := 0.5*in[augment.SignDirt] + 0.5*in[augment.LensDirt]
	if occlusion > 0 {
		nMask := int(occlusion * 0.5 * float64(m.cfg.Dim))
		for k := 0; k < nMask; k++ {
			x[rng.IntN(m.cfg.Dim)] = 0
		}
	}
	return x, nil
}

// Sample couples one frame with its synthesised embedding and label; the
// training pipeline works on flat slices of samples.
type Sample struct {
	X     []float64
	Class int
}

// Dataset synthesises samples for a set of series under per-frame deficit
// intensities. frames[i][j] must hold the intensities for series i, frame j.
func (m *FeatureModel) Dataset(series []gtsrb.Series, frames [][]augment.Intensities, seed uint64) ([]Sample, error) {
	if len(series) != len(frames) {
		return nil, fmt.Errorf("ddm: %d series but %d intensity sets", len(series), len(frames))
	}
	var out []Sample
	for i, s := range series {
		if len(frames[i]) != s.Len() {
			return nil, fmt.Errorf("ddm: series %d has %d frames but %d intensity vectors", s.ID, s.Len(), len(frames[i]))
		}
		rng := rand.New(rand.NewPCG(seed, uint64(s.ID)*0x9e3779b97f4a7c15+uint64(i)))
		dist, err := m.NewSeriesDistortion(s.Class, rng)
		if err != nil {
			return nil, err
		}
		for j, f := range s.Frames {
			x, err := m.Observe(f.Class, f.PixelSize, frames[i][j], &dist, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, Sample{X: x, Class: f.Class})
		}
	}
	return out, nil
}

// severityProxy is exposed for tests: the expected signal-to-noise ratio of
// an observation, used to verify monotone degradation.
func (m *FeatureModel) severityProxy(pixelSize float64, in augment.Intensities) float64 {
	cl := clarity(pixelSize)
	sigma := m.cfg.NoiseBase + m.cfg.NoiseSeverityGain*in.Severity() + m.cfg.NoiseResolutionGain*(1-cl)
	contrast := 0.35 + 0.65*cl
	return contrast / sigma
}
