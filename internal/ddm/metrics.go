package ddm

import (
	"errors"
	"fmt"
)

// Evaluation summarises classifier performance on a labelled sample set.
type Evaluation struct {
	// N is the number of evaluated samples.
	N int
	// Correct is the number of correct hard decisions.
	Correct int
	// Accuracy is Correct/N.
	Accuracy float64
	// Confusion[i][j] counts samples of true class i predicted as j.
	Confusion [][]int
}

// MisclassificationRate returns 1 - Accuracy.
func (e Evaluation) MisclassificationRate() float64 { return 1 - e.Accuracy }

// Evaluate runs the classifier over the samples and aggregates accuracy and
// the confusion matrix.
func Evaluate(c Classifier, samples []Sample) (Evaluation, error) {
	if len(samples) == 0 {
		return Evaluation{}, errors.New("ddm: empty evaluation set")
	}
	k := c.NumClasses()
	ev := Evaluation{N: len(samples), Confusion: make([][]int, k)}
	for i := range ev.Confusion {
		ev.Confusion[i] = make([]int, k)
	}
	for i, s := range samples {
		pred, err := c.Predict(s.X)
		if err != nil {
			return Evaluation{}, fmt.Errorf("ddm: evaluating sample %d: %w", i, err)
		}
		if s.Class < 0 || s.Class >= k {
			return Evaluation{}, fmt.Errorf("ddm: sample %d class %d outside [0,%d)", i, s.Class, k)
		}
		ev.Confusion[s.Class][pred]++
		if pred == s.Class {
			ev.Correct++
		}
	}
	ev.Accuracy = float64(ev.Correct) / float64(ev.N)
	return ev, nil
}

// PerClassRecall returns the recall of every class (NaN-free: classes with
// no samples report recall 1, as no mistakes were observed).
func (e Evaluation) PerClassRecall() []float64 {
	out := make([]float64, len(e.Confusion))
	for i, row := range e.Confusion {
		total := 0
		for _, v := range row {
			total += v
		}
		if total == 0 {
			out[i] = 1
			continue
		}
		out[i] = float64(row[i]) / float64(total)
	}
	return out
}
