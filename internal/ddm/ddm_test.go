package ddm

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/iese-repro/tauw/internal/augment"
	"github.com/iese-repro/tauw/internal/gtsrb"
)

func newModel(t *testing.T) *FeatureModel {
	t.Helper()
	m, err := NewFeatureModel(DefaultFeatureConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFeatureConfigValidate(t *testing.T) {
	bad := []FeatureConfig{
		{Dim: 0, FamilySpread: 1, ClassSpread: 1},
		{Dim: 8, FamilySpread: 0, ClassSpread: 1},
		{Dim: 8, FamilySpread: 1, ClassSpread: 1, NoiseBase: -1},
		{Dim: 8, FamilySpread: 1, ClassSpread: 1, ContrastLoss: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	if err := DefaultFeatureConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestPrototypeFamilyStructure(t *testing.T) {
	m := newModel(t)
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	proto := func(c int) []float64 {
		p, err := m.Prototype(c)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Mean within-family distance must be smaller than cross-family.
	var within, cross float64
	var nWithin, nCross int
	cat := gtsrb.Catalog()
	for i := 0; i < gtsrb.NumClasses; i++ {
		for j := i + 1; j < gtsrb.NumClasses; j++ {
			d := dist(proto(i), proto(j))
			if cat[i].Family == cat[j].Family {
				within += d
				nWithin++
			} else {
				cross += d
				nCross++
			}
		}
	}
	if within/float64(nWithin) >= cross/float64(nCross) {
		t.Errorf("within-family distance %.3f not smaller than cross-family %.3f",
			within/float64(nWithin), cross/float64(nCross))
	}
}

func TestPrototypeErrors(t *testing.T) {
	m := newModel(t)
	if _, err := m.Prototype(-1); err == nil {
		t.Error("negative class must fail")
	}
	if _, err := m.Prototype(gtsrb.NumClasses); err == nil {
		t.Error("class 43 must fail")
	}
}

func TestObserveDegradation(t *testing.T) {
	m := newModel(t)
	// The SNR proxy must fall with severity and with distance.
	var clean, dirty augment.Intensities
	dirty[augment.Haze] = 0.9
	dirty[augment.SteamedLens] = 0.8
	if m.severityProxy(200, clean) <= m.severityProxy(200, dirty) {
		t.Error("deficits must reduce SNR")
	}
	if m.severityProxy(200, clean) <= m.severityProxy(20, clean) {
		t.Error("small signs must reduce SNR")
	}
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := m.Observe(-1, 100, clean, nil, rng); err == nil {
		t.Error("invalid class must fail")
	}
	x, err := m.Observe(3, 100, clean, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != m.Dim() {
		t.Errorf("observation dim %d, want %d", len(x), m.Dim())
	}
}

func TestDatasetShapeAndDeterminism(t *testing.T) {
	m := newModel(t)
	gcfg := gtsrb.DefaultGeneratorConfig()
	gcfg.NumSeries = 4
	series, err := gtsrb.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := augment.NewPool(3, 50)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]augment.Intensities, len(series))
	for i, s := range series {
		set, err := pool.Setting(i)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = augment.Apply(set, s, 7)
	}
	a, err := m.Dataset(series, frames, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Dataset(series, frames, 11)
	if err != nil {
		t.Fatal(err)
	}
	wantN := 0
	for _, s := range series {
		wantN += s.Len()
	}
	if len(a) != wantN {
		t.Fatalf("dataset has %d samples, want %d", len(a), wantN)
	}
	for i := range a {
		if a[i].Class != b[i].Class {
			t.Fatal("dataset classes differ between runs")
		}
		for d := range a[i].X {
			if a[i].X[d] != b[i].X[d] {
				t.Fatal("dataset features differ between runs")
			}
		}
	}
	// Shape mismatches must fail.
	if _, err := m.Dataset(series, frames[:1], 11); err == nil {
		t.Error("mismatched series/frames must fail")
	}
	badFrames := make([][]augment.Intensities, len(series))
	copy(badFrames, frames)
	badFrames[0] = frames[0][:1]
	if _, err := m.Dataset(series, badFrames, 11); err == nil {
		t.Error("short intensity vector must fail")
	}
}

// threeClassBlobs builds an easy 3-class dataset for trainer tests.
func threeClassBlobs(n int, noise float64, seed uint64) []Sample {
	rng := rand.New(rand.NewPCG(seed, 0))
	centres := [][]float64{{3, 0}, {-3, 1}, {0, -3}}
	out := make([]Sample, n)
	for i := range out {
		c := i % 3
		out[i] = Sample{
			X:     []float64{centres[c][0] + rng.NormFloat64()*noise, centres[c][1] + rng.NormFloat64()*noise},
			Class: c,
		}
	}
	return out
}

func TestTrainSoftmaxLearnsBlobs(t *testing.T) {
	train := threeClassBlobs(600, 0.5, 1)
	test := threeClassBlobs(300, 0.5, 2)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	var lastLoss float64
	cfg.Progress = func(_ int, loss float64) { lastLoss = loss }
	model, err := TrainSoftmax(train, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(model, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.97 {
		t.Errorf("softmax accuracy %.3f on easy blobs, want >= 0.97", ev.Accuracy)
	}
	if lastLoss <= 0 || lastLoss > 0.2 {
		t.Errorf("final loss %.4f not converged", lastLoss)
	}
	scores, err := model.Scores(test[0].X)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range scores {
		if s < 0 {
			t.Error("negative probability")
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scores sum to %g", sum)
	}
}

func TestTrainSoftmaxErrors(t *testing.T) {
	good := threeClassBlobs(30, 0.5, 1)
	if _, err := TrainSoftmax(nil, 3, DefaultTrainConfig()); err == nil {
		t.Error("empty training set must fail")
	}
	if _, err := TrainSoftmax(good, 1, DefaultTrainConfig()); err == nil {
		t.Error("single class must fail")
	}
	bad := append([]Sample{}, good...)
	bad[3] = Sample{X: []float64{1}, Class: 0}
	if _, err := TrainSoftmax(bad, 3, DefaultTrainConfig()); err == nil {
		t.Error("ragged features must fail")
	}
	bad2 := append([]Sample{}, good...)
	bad2[3] = Sample{X: []float64{1, 2}, Class: 7}
	if _, err := TrainSoftmax(bad2, 3, DefaultTrainConfig()); err == nil {
		t.Error("out-of-range class must fail")
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 0
	if _, err := TrainSoftmax(good, 3, cfg); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestSoftmaxPredictShapeErrors(t *testing.T) {
	model, err := TrainSoftmax(threeClassBlobs(60, 0.3, 4), 3, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Predict([]float64{1}); err == nil {
		t.Error("wrong input width must fail")
	}
	if _, err := model.Scores([]float64{1, 2, 3}); err == nil {
		t.Error("wrong input width must fail")
	}
}

func TestSoftmaxSerialisationRoundTrip(t *testing.T) {
	model, err := TrainSoftmax(threeClassBlobs(60, 0.3, 4), 3, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := model.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSoftmax(data)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1.5, -0.5}
	p1, _ := model.Predict(x)
	p2, err := loaded.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("loaded model predicts %d, original %d", p2, p1)
	}
	if _, err := LoadSoftmax([]byte("{nope")); err == nil {
		t.Error("corrupt JSON must fail")
	}
	if _, err := LoadSoftmax([]byte(`{"W":[[1,2]],"Dim":1,"Classes":2}`)); err == nil {
		t.Error("row-count mismatch must fail")
	}
	if _, err := LoadSoftmax([]byte(`{"W":[[1],[1]],"Dim":3,"Classes":2}`)); err == nil {
		t.Error("row-width mismatch must fail")
	}
}

func TestTrainMLPLearnsBlobs(t *testing.T) {
	train := threeClassBlobs(600, 0.5, 5)
	test := threeClassBlobs(300, 0.5, 6)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 8
	cfg.LearningRate = 0.05
	model, err := TrainMLP(train, 3, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(model, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.97 {
		t.Errorf("MLP accuracy %.3f on easy blobs, want >= 0.97", ev.Accuracy)
	}
	scores, err := model.Scores(test[1].X)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("MLP scores sum to %g", sum)
	}
}

func TestTrainMLPErrors(t *testing.T) {
	good := threeClassBlobs(30, 0.5, 1)
	if _, err := TrainMLP(nil, 3, 8, DefaultTrainConfig()); err == nil {
		t.Error("empty training set must fail")
	}
	if _, err := TrainMLP(good, 3, 0, DefaultTrainConfig()); err == nil {
		t.Error("zero hidden units must fail")
	}
	if _, err := TrainMLP(good, 1, 8, DefaultTrainConfig()); err == nil {
		t.Error("single class must fail")
	}
	bad := append([]Sample{}, good...)
	bad[0] = Sample{X: []float64{1, 2}, Class: -1}
	if _, err := TrainMLP(bad, 3, 8, DefaultTrainConfig()); err == nil {
		t.Error("negative class must fail")
	}
}

func TestMLPShapeErrors(t *testing.T) {
	model, err := TrainMLP(threeClassBlobs(60, 0.3, 9), 3, 8, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Predict([]float64{1, 2, 3}); err == nil {
		t.Error("wrong width must fail")
	}
	if _, err := model.Scores([]float64{1}); err == nil {
		t.Error("wrong width must fail")
	}
}

func TestEvaluate(t *testing.T) {
	model, err := TrainSoftmax(threeClassBlobs(300, 0.3, 8), 3, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := threeClassBlobs(90, 0.3, 9)
	ev, err := Evaluate(model, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.N != 90 {
		t.Errorf("N = %d", ev.N)
	}
	total := 0
	diag := 0
	for i, row := range ev.Confusion {
		for j, v := range row {
			total += v
			if i == j {
				diag += v
			}
		}
	}
	if total != ev.N || diag != ev.Correct {
		t.Errorf("confusion matrix inconsistent: total=%d diag=%d", total, diag)
	}
	if math.Abs(ev.Accuracy+ev.MisclassificationRate()-1) > 1e-12 {
		t.Error("accuracy + misclassification != 1")
	}
	recalls := ev.PerClassRecall()
	if len(recalls) != 3 {
		t.Fatalf("recall length %d", len(recalls))
	}
	for c, r := range recalls {
		if r < 0 || r > 1 {
			t.Errorf("recall[%d] = %g", c, r)
		}
	}
	if _, err := Evaluate(model, nil); err == nil {
		t.Error("empty evaluation must fail")
	}
	badSamples := []Sample{{X: []float64{1, 2}, Class: 99}}
	if _, err := Evaluate(model, badSamples); err == nil {
		t.Error("out-of-range class must fail")
	}
}

func TestTrainConfigValidate(t *testing.T) {
	bad := []TrainConfig{
		{Epochs: 0, BatchSize: 8, LearningRate: 0.1},
		{Epochs: 1, BatchSize: 0, LearningRate: 0.1},
		{Epochs: 1, BatchSize: 8, LearningRate: 0},
		{Epochs: 1, BatchSize: 8, LearningRate: 0.1, Momentum: 1},
		{Epochs: 1, BatchSize: 8, LearningRate: 0.1, L2: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

// End-to-end: a classifier trained on the synthetic GTSRB pipeline must do
// clearly better on clean close-ups than on degraded distant frames.
func TestPipelineDegradationAffectsAccuracy(t *testing.T) {
	m := newModel(t)
	rng := rand.New(rand.NewPCG(21, 22))
	mk := func(px float64, in augment.Intensities, n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			class := i % gtsrb.NumClasses
			x, err := m.Observe(class, px, in, nil, rng)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = Sample{X: x, Class: class}
		}
		return out
	}
	var clean, hard augment.Intensities
	hard[augment.Haze] = 0.8
	hard[augment.Darkness] = 0.9
	hard[augment.MotionBlur] = 0.7
	train := append(mk(150, clean, 2000), mk(40, hard, 2000)...)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	model, err := TrainSoftmax(train, gtsrb.NumClasses, cfg)
	if err != nil {
		t.Fatal(err)
	}
	evClean, err := Evaluate(model, mk(150, clean, 1000))
	if err != nil {
		t.Fatal(err)
	}
	evHard, err := Evaluate(model, mk(40, hard, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if evClean.Accuracy < evHard.Accuracy+0.1 {
		t.Errorf("degradation must cost accuracy: clean %.3f vs hard %.3f",
			evClean.Accuracy, evHard.Accuracy)
	}
	if evClean.Accuracy < 0.8 {
		t.Errorf("clean accuracy %.3f too low; feature model miscalibrated", evClean.Accuracy)
	}
}
