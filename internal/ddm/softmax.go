package ddm

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// Classifier is what the uncertainty wrapper wraps: a black-box multi-class
// model exposing a hard decision and (optionally) class scores. The wrapper
// never relies on the scores being calibrated.
type Classifier interface {
	// Predict returns the most likely class for the feature vector.
	Predict(x []float64) (int, error)
	// Scores returns softmax class probabilities (model confidence, not a
	// dependable uncertainty).
	Scores(x []float64) ([]float64, error)
	// NumClasses returns the size of the output space.
	NumClasses() int
}

// TrainConfig controls minibatch SGD for the from-scratch classifiers.
type TrainConfig struct {
	// Epochs is the number of passes over the training data.
	Epochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// LearningRate is the initial step size; it decays linearly to 10%
	// over the epochs.
	LearningRate float64
	// L2 is the weight-decay coefficient.
	L2 float64
	// Momentum is the classical momentum coefficient (0 disables).
	Momentum float64
	// Seed fixes shuffling and initialisation.
	Seed uint64
	// Progress, when non-nil, receives the mean training loss after each
	// epoch. It is excluded from serialisation.
	Progress func(epoch int, loss float64) `json:"-"`
}

// DefaultTrainConfig returns a configuration that trains the study's
// classifiers to convergence in a few seconds.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:       6,
		BatchSize:    64,
		LearningRate: 0.12,
		L2:           1e-5,
		Momentum:     0.9,
		Seed:         5,
	}
}

// Validate checks the configuration.
func (c TrainConfig) Validate() error {
	switch {
	case c.Epochs <= 0:
		return errors.New("ddm: epochs must be positive")
	case c.BatchSize <= 0:
		return errors.New("ddm: batch size must be positive")
	case c.LearningRate <= 0:
		return errors.New("ddm: learning rate must be positive")
	case c.L2 < 0 || c.Momentum < 0 || c.Momentum >= 1:
		return errors.New("ddm: invalid regularisation or momentum")
	}
	return nil
}

// Softmax is a multinomial logistic-regression classifier: a linear map plus
// softmax, trained with minibatch SGD and cross-entropy loss.
type Softmax struct {
	// W is row-major [classes][dim+1]; the last column is the bias.
	W       [][]float64
	Dim     int
	Classes int
}

// NumClasses implements Classifier.
func (s *Softmax) NumClasses() int { return s.Classes }

// logits computes the raw class scores for x.
func (s *Softmax) logits(x []float64) []float64 {
	out := make([]float64, s.Classes)
	for c := 0; c < s.Classes; c++ {
		w := s.W[c]
		acc := w[s.Dim] // bias
		for i, xi := range x {
			acc += w[i] * xi
		}
		out[c] = acc
	}
	return out
}

// Scores implements Classifier.
func (s *Softmax) Scores(x []float64) ([]float64, error) {
	if len(x) != s.Dim {
		return nil, fmt.Errorf("ddm: input has %d features, model wants %d", len(x), s.Dim)
	}
	z := s.logits(x)
	softmaxInPlace(z)
	return z, nil
}

// Predict implements Classifier.
func (s *Softmax) Predict(x []float64) (int, error) {
	if len(x) != s.Dim {
		return 0, fmt.Errorf("ddm: input has %d features, model wants %d", len(x), s.Dim)
	}
	z := s.logits(x)
	return argmax(z), nil
}

// TrainSoftmax fits a Softmax classifier on the samples.
func TrainSoftmax(samples []Sample, classes int, cfg TrainConfig) (*Softmax, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, errors.New("ddm: empty training set")
	}
	if classes <= 1 {
		return nil, fmt.Errorf("ddm: need at least 2 classes, got %d", classes)
	}
	dim := len(samples[0].X)
	for i, s := range samples {
		if len(s.X) != dim {
			return nil, fmt.Errorf("ddm: sample %d has %d features, want %d", i, len(s.X), dim)
		}
		if s.Class < 0 || s.Class >= classes {
			return nil, fmt.Errorf("ddm: sample %d has class %d outside [0,%d)", i, s.Class, classes)
		}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x736d6178)) // "smax"
	model := &Softmax{Dim: dim, Classes: classes, W: make([][]float64, classes)}
	vel := make([][]float64, classes)
	scale := 1 / math.Sqrt(float64(dim))
	for c := range model.W {
		model.W[c] = make([]float64, dim+1)
		vel[c] = make([]float64, dim+1)
		for i := 0; i < dim; i++ {
			model.W[c][i] = rng.NormFloat64() * 0.01 * scale
		}
	}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	grad := make([][]float64, classes)
	for c := range grad {
		grad[c] = make([]float64, dim+1)
	}
	probs := make([]float64, classes)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate * (1 - 0.9*float64(epoch)/float64(cfg.Epochs))
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(idx))
			for c := range grad {
				clearSlice(grad[c])
			}
			for _, si := range idx[start:end] {
				s := samples[si]
				z := model.logits(s.X)
				copy(probs, z)
				softmaxInPlace(probs)
				epochLoss += -math.Log(math.Max(probs[s.Class], 1e-12))
				for c := 0; c < classes; c++ {
					g := probs[c]
					if c == s.Class {
						g -= 1
					}
					gc := grad[c]
					for i, xi := range s.X {
						gc[i] += g * xi
					}
					gc[dim] += g
				}
			}
			bs := float64(end - start)
			for c := 0; c < classes; c++ {
				wc, vc, gc := model.W[c], vel[c], grad[c]
				for i := range wc {
					g := gc[i]/bs + cfg.L2*wc[i]
					vc[i] = cfg.Momentum*vc[i] - lr*g
					wc[i] += vc[i]
				}
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss/float64(len(idx)))
		}
	}
	return model, nil
}

// MarshalJSON serialises the model.
func (s *Softmax) MarshalJSON() ([]byte, error) {
	type alias Softmax
	return json.Marshal((*alias)(s))
}

// LoadSoftmax deserialises a model produced by MarshalJSON.
func LoadSoftmax(data []byte) (*Softmax, error) {
	var s Softmax
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("ddm: decode softmax: %w", err)
	}
	if s.Classes != len(s.W) {
		return nil, fmt.Errorf("ddm: corrupt softmax: %d classes but %d weight rows", s.Classes, len(s.W))
	}
	for c, row := range s.W {
		if len(row) != s.Dim+1 {
			return nil, fmt.Errorf("ddm: corrupt softmax: row %d has %d weights, want %d", c, len(row), s.Dim+1)
		}
	}
	return &s, nil
}

func softmaxInPlace(z []float64) {
	maxZ := z[0]
	for _, v := range z[1:] {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(v - maxZ)
		z[i] = e
		sum += e
	}
	for i := range z {
		z[i] /= sum
	}
}

func argmax(z []float64) int {
	best := 0
	for i, v := range z[1:] {
		if v > z[best] {
			best = i + 1
		}
	}
	return best
}

func clearSlice(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
