package augment

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"github.com/iese-repro/tauw/internal/gtsrb"
)

func TestDeficitNames(t *testing.T) {
	names := Names()
	if len(names) != NumDeficits {
		t.Fatalf("%d names, want %d", len(names), NumDeficits)
	}
	seen := make(map[string]bool)
	for d := Deficit(0); d < NumDeficits; d++ {
		n := d.String()
		if n == "" || seen[n] {
			t.Errorf("deficit %d has empty or duplicate name %q", d, n)
		}
		seen[n] = true
		if names[d] != n {
			t.Errorf("Names()[%d] = %q, want %q", d, names[d], n)
		}
	}
	if !strings.Contains(Deficit(99).String(), "99") {
		t.Error("out-of-range deficit should stringify with number")
	}
}

func TestNamesReturnsCopy(t *testing.T) {
	n1 := Names()
	n1[0] = "mutated"
	if Names()[0] == "mutated" {
		t.Error("Names must return a fresh slice")
	}
}

func TestLevels(t *testing.T) {
	if !(Low.Value() < Medium.Value() && Medium.Value() < High.Value()) {
		t.Error("levels must be ordered")
	}
	if Level(0).Value() != 0 {
		t.Error("invalid level value must be 0")
	}
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Error("level names wrong")
	}
	if !strings.Contains(Level(9).String(), "9") {
		t.Error("unknown level should stringify with number")
	}
}

func TestSeverity(t *testing.T) {
	var clean Intensities
	if clean.Severity() != 0 {
		t.Error("clean severity must be 0")
	}
	var full Intensities
	for i := range full {
		full[i] = 1
	}
	s := full.Severity()
	if s <= 0.9 || s > 1.0001 {
		t.Errorf("full severity = %g, want ~1", s)
	}
	var one Intensities
	one[SteamedLens] = 1
	if one.Severity() <= 0 || one.Severity() >= full.Severity() {
		t.Error("single-channel severity must be between 0 and full")
	}
}

func TestTrainingVariants(t *testing.T) {
	vs := TrainingVariants()
	if len(vs) != 1+NumDeficits*3 {
		t.Fatalf("%d variants, want %d", len(vs), 1+NumDeficits*3)
	}
	if vs[0] != (Intensities{}) {
		t.Error("first variant must be clean")
	}
	// Each non-clean variant touches exactly one channel.
	for i, v := range vs[1:] {
		nonZero := 0
		for _, x := range v {
			if x != 0 {
				nonZero++
			}
		}
		if nonZero != 1 {
			t.Errorf("variant %d touches %d channels", i+1, nonZero)
		}
	}
}

func TestPoolBasics(t *testing.T) {
	p, err := NewPool(42, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 1000 {
		t.Errorf("size = %d", p.Size())
	}
	if _, err := NewPool(1, 0); err == nil {
		t.Error("empty pool must fail")
	}
	if _, err := p.Setting(-1); err == nil {
		t.Error("negative index must fail")
	}
	if _, err := p.Setting(1000); err == nil {
		t.Error("index == size must fail")
	}
}

func TestPoolDeterministicAndDiverse(t *testing.T) {
	p, err := NewPool(42, 10000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Setting(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Setting(7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same index must give identical settings")
	}
	c, err := p.Setting(8)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different indices should give different settings")
	}
	// Distribution sanity over a sample: some rain, some fog, some night.
	rainy, foggy, dark := 0, 0, 0
	n := 2000
	for i := 0; i < n; i++ {
		s, err := p.Setting(i)
		if err != nil {
			t.Fatal(err)
		}
		if s.RainMMH > 0 {
			rainy++
		}
		if s.FogDensity > 0 {
			foggy++
		}
		if s.Base[Darkness] > 0.9 {
			dark++
		}
		for ch, v := range s.Base {
			if v < 0 || v > 1 {
				t.Fatalf("setting %d channel %d intensity %g outside [0,1]", i, ch, v)
			}
		}
		if s.Road < Urban || s.Road > Highway {
			t.Fatalf("setting %d has invalid road %d", i, s.Road)
		}
	}
	if rainy < n/10 || rainy > n/2 {
		t.Errorf("rainy settings = %d of %d, implausible", rainy, n)
	}
	if foggy == 0 {
		t.Error("no foggy settings in sample")
	}
	if dark < n/10 {
		t.Errorf("dark settings = %d of %d, implausible", dark, n)
	}
}

func TestPoolRandom(t *testing.T) {
	p, err := NewPool(11, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	s := p.Random(rng)
	if s.Index < 0 || s.Index >= 500 {
		t.Errorf("random setting index %d outside pool", s.Index)
	}
}

func TestRoadKindString(t *testing.T) {
	if Urban.String() != "urban" || Rural.String() != "rural" || Highway.String() != "highway" {
		t.Error("road names wrong")
	}
	if !strings.Contains(RoadKind(7).String(), "7") {
		t.Error("unknown road should stringify with number")
	}
}

func genSeries(t *testing.T, n int) []gtsrb.Series {
	t.Helper()
	cfg := gtsrb.DefaultGeneratorConfig()
	cfg.NumSeries = n
	series, err := gtsrb.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return series
}

func TestApplyPropagation(t *testing.T) {
	series := genSeries(t, 5)
	p, err := NewPool(42, 100)
	if err != nil {
		t.Fatal(err)
	}
	setting, err := p.Setting(3)
	if err != nil {
		t.Fatal(err)
	}
	frames := Apply(setting, series[0], 9)
	if len(frames) != series[0].Len() {
		t.Fatalf("got %d frame intensity vectors, want %d", len(frames), series[0].Len())
	}
	// Per the paper: all channels except motion blur and artificial
	// backlight are constant within the series.
	varying := map[Deficit]bool{MotionBlur: true, ArtificialBacklight: true}
	for d := Deficit(0); d < NumDeficits; d++ {
		for j := 1; j < len(frames); j++ {
			if !varying[d] && frames[j][d] != frames[0][d] {
				t.Errorf("channel %s varies within series (%g vs %g)", d, frames[j][d], frames[0][d])
			}
		}
	}
	for j, in := range frames {
		for ch, v := range in {
			if v < 0 || v > 1 {
				t.Errorf("frame %d channel %d intensity %g outside [0,1]", j, ch, v)
			}
		}
	}
}

func TestApplyDeterministic(t *testing.T) {
	series := genSeries(t, 2)
	p, _ := NewPool(42, 100)
	setting, _ := p.Setting(5)
	a := Apply(setting, series[1], 77)
	b := Apply(setting, series[1], 77)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("frame %d differs between identical applications", j)
		}
	}
	c := Apply(setting, series[1], 78)
	same := true
	for j := range a {
		if a[j] != c[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should perturb the varying channels")
	}
}

// The synthetic weather model must reproduce the seasonal daylight pattern:
// at 18:00, winter drives are dark and summer drives are not, and deep
// night is always dark.
func TestSeasonalDaylight(t *testing.T) {
	p, err := NewPool(7, 200000)
	if err != nil {
		t.Fatal(err)
	}
	var winterEvening, summerEvening, night []float64
	for i := 0; i < 200000 && (len(winterEvening) < 50 || len(summerEvening) < 50 || len(night) < 50); i++ {
		s, err := p.Setting(i)
		if err != nil {
			t.Fatal(err)
		}
		eveningHour := s.Hour >= 17.5 && s.Hour <= 18.5
		switch {
		case eveningHour && (s.DayOfYear < 30 || s.DayOfYear > 335):
			winterEvening = append(winterEvening, s.Base[Darkness])
		case eveningHour && s.DayOfYear > 150 && s.DayOfYear < 210:
			summerEvening = append(summerEvening, s.Base[Darkness])
		case s.Hour >= 1 && s.Hour <= 2:
			night = append(night, s.Base[Darkness])
		}
	}
	mean := func(xs []float64) float64 {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	if len(winterEvening) < 20 || len(summerEvening) < 20 || len(night) < 20 {
		t.Fatalf("not enough samples: %d/%d/%d", len(winterEvening), len(summerEvening), len(night))
	}
	if mean(winterEvening) <= mean(summerEvening)+0.2 {
		t.Errorf("18:00 darkness: winter %.2f must clearly exceed summer %.2f",
			mean(winterEvening), mean(summerEvening))
	}
	if mean(night) < 0.95 {
		t.Errorf("deep-night darkness %.2f must be ~1", mean(night))
	}
}

// Property: severity is monotone — increasing any channel cannot decrease it.
func TestSeverityMonotone(t *testing.T) {
	f := func(raw [NumDeficits]uint8, ch uint8, bump uint8) bool {
		var in Intensities
		for i := range in {
			in[i] = float64(raw[i]) / 255
		}
		out := in
		c := int(ch) % NumDeficits
		out[c] = clamp01(out[c] + float64(bump)/255)
		return out.Severity() >= in.Severity()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
