package augment

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/iese-repro/tauw/internal/gtsrb"
)

// RoadKind is the simplified road classification derived from the synthetic
// location model (the paper draws street locations from OpenStreetMap).
type RoadKind int

// Road kinds.
const (
	Urban RoadKind = iota + 1
	Rural
	Highway
)

// String returns the road-kind name.
func (r RoadKind) String() string {
	switch r {
	case Urban:
		return "urban"
	case Rural:
		return "rural"
	case Highway:
		return "highway"
	default:
		return fmt.Sprintf("RoadKind(%d)", int(r))
	}
}

// Setting is one situation setting: the environmental conditions of a drive
// past one traffic sign. The raw condition fields come from the synthetic
// weather and location models; Base holds the deficit intensities they imply
// for the series.
type Setting struct {
	// Index is the setting's position in its pool.
	Index int
	// DayOfYear in [0,365), Hour in [0,24).
	DayOfYear int
	Hour      float64
	// RainMMH is the rain rate in mm/h.
	RainMMH float64
	// FogDensity in [0,1].
	FogDensity float64
	// TempC is the air temperature in Celsius; HumidityPct in [0,100].
	TempC       float64
	HumidityPct float64
	// Road is the road kind at the sign location.
	Road RoadKind
	// Base are the series-constant deficit intensities implied by the
	// conditions; MotionBlur and ArtificialBacklight entries are the
	// *mean* levels around which the per-frame values vary.
	Base Intensities
}

// Pool is a deterministic, lazily evaluated pool of situation settings; the
// paper samples from 2.7 million realistic settings. Settings are computed
// on demand from (seed, index), so a paper-scale pool costs no memory.
type Pool struct {
	seed uint64
	n    int
}

// PaperPoolSize is the situation-setting pool size reported by the paper.
const PaperPoolSize = 2_700_000

// NewPool creates a pool of n settings derived from seed.
func NewPool(seed uint64, n int) (*Pool, error) {
	if n <= 0 {
		return nil, errors.New("augment: pool size must be positive")
	}
	return &Pool{seed: seed, n: n}, nil
}

// Size returns the number of settings in the pool.
func (p *Pool) Size() int { return p.n }

// Setting returns the i-th setting of the pool.
func (p *Pool) Setting(i int) (Setting, error) {
	if i < 0 || i >= p.n {
		return Setting{}, fmt.Errorf("augment: setting index %d outside pool of %d", i, p.n)
	}
	rng := rand.New(rand.NewPCG(p.seed, uint64(i)+0x736574)) // "set"
	return synthesize(i, rng), nil
}

// Random draws a uniformly random setting from the pool using rng.
func (p *Pool) Random(rng *rand.Rand) Setting {
	s, err := p.Setting(rng.IntN(p.n))
	if err != nil {
		// Unreachable: IntN(p.n) is always in range for a valid pool.
		panic(err)
	}
	return s
}

// synthesize realises one situation setting. It stands in for drawing a
// historical weather record (DWD) and a street location (OSM): conditions
// are correlated the way real ones are (rain with clouds and humidity, fog
// with cold mornings, condensation with cold+humid, darkness with hour and
// season).
func synthesize(index int, rng *rand.Rand) Setting {
	s := Setting{Index: index}
	s.DayOfYear = rng.IntN(365)
	s.Hour = rng.Float64() * 24
	// Season factor: 0 mid-winter, 1 mid-summer.
	season := 0.5 - 0.5*math.Cos(2*math.Pi*float64(s.DayOfYear)/365)
	// Rain: ~25% of drives see rain; heavier rain is rarer (exponential).
	if rng.Float64() < 0.25 {
		s.RainMMH = rng.ExpFloat64() * 2.5
	}
	// Fog: mostly in cold months and mornings.
	fogChance := 0.12 * (1 - season) * morningness(s.Hour)
	if rng.Float64() < 0.05+fogChance {
		s.FogDensity = math.Min(1, rng.ExpFloat64()*0.35)
	}
	s.TempC = -3 + 22*season + rng.NormFloat64()*4
	s.HumidityPct = math.Max(20, math.Min(100, 65+20*s.RainMMH/(1+s.RainMMH)+rng.NormFloat64()*12))
	switch r := rng.Float64(); {
	case r < 0.45:
		s.Road = Urban
	case r < 0.8:
		s.Road = Rural
	default:
		s.Road = Highway
	}
	s.Base = baseIntensities(s, rng)
	return s
}

// morningness peaks around 07:00.
func morningness(hour float64) float64 {
	d := math.Abs(hour - 7)
	if d > 12 {
		d = 24 - d
	}
	return math.Max(0, 1-d/5)
}

// daylight returns 1 at solar noon and 0 at night, with a season-dependent
// day length.
func daylight(hour float64, dayOfYear int) float64 {
	season := 0.5 - 0.5*math.Cos(2*math.Pi*float64(dayOfYear)/365)
	halfDay := 4.2 + 4.2*season // winter: ~8.4h day, summer: ~16.8h
	d := math.Abs(hour - 13)    // solar noon ~13:00 local
	if d >= halfDay {
		return 0
	}
	return math.Cos(d / halfDay * math.Pi / 2)
}

// baseIntensities maps raw conditions to the series-constant deficit
// intensities.
func baseIntensities(s Setting, rng *rand.Rand) Intensities {
	var in Intensities
	in[Rain] = s.RainMMH / (s.RainMMH + 3) // saturating map, ~0.5 at 3mm/h
	light := daylight(s.Hour, s.DayOfYear)
	in[Darkness] = 1 - light
	in[Haze] = s.FogDensity
	// Natural backlight: sun close to the horizon and by chance in the
	// driving direction.
	lowSun := light * (1 - light) * 4 // peaks at dawn/dusk
	if rng.Float64() < 0.4 {
		in[NaturalBacklight] = math.Min(1, lowSun*(0.5+rng.Float64()))
	}
	// Artificial backlight: headlights/street lights, only relevant in
	// the dark and mostly in urban areas.
	urbanFactor := map[RoadKind]float64{Urban: 1, Rural: 0.45, Highway: 0.6}[s.Road]
	in[ArtificialBacklight] = in[Darkness] * urbanFactor * 0.6 * rng.Float64()
	// Dirt accumulates on rural roads and in rainy conditions.
	dirtBase := map[RoadKind]float64{Urban: 0.12, Rural: 0.3, Highway: 0.18}[s.Road]
	in[SignDirt] = clamp01(dirtBase*rng.ExpFloat64() + 0.1*in[Rain])
	in[LensDirt] = clamp01(dirtBase*0.8*rng.ExpFloat64() + 0.15*in[Rain])
	// Condensation on the lens: cold and humid.
	condens := sigmoid((s.HumidityPct-75)/8) * sigmoid((12-s.TempC)/5)
	in[SteamedLens] = clamp01(condens * (0.3 + 0.7*rng.Float64()))
	// Motion blur mean level: grows with darkness (longer exposure); the
	// per-frame speed contribution is added during application.
	in[MotionBlur] = clamp01(0.15 + 0.35*in[Darkness])
	return in
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Apply realises per-frame intensities for a series under the given setting.
// All channels stay constant over the series except motion blur (driven by
// per-frame speed plus jitter) and artificial backlight (oncoming lights
// appear and disappear), matching the paper's augmentation protocol.
func Apply(setting Setting, series gtsrb.Series, seed uint64) []Intensities {
	rng := rand.New(rand.NewPCG(seed, uint64(series.ID)*2654435761+uint64(setting.Index)))
	out := make([]Intensities, series.Len())
	// Artificial backlight events: Markov on/off flicker.
	abOn := rng.Float64() < 0.5
	for j, f := range series.Frames {
		in := setting.Base
		// Motion blur: exposure-scaled speed with jitter.
		speedTerm := clamp01((f.SpeedKMH - 30) / 90)
		in[MotionBlur] = clamp01(setting.Base[MotionBlur]*(0.6+0.8*rng.Float64()) + 0.35*speedTerm*setting.Base[Darkness])
		// Artificial backlight flicker.
		if rng.Float64() < 0.25 {
			abOn = !abOn
		}
		if abOn {
			in[ArtificialBacklight] = clamp01(setting.Base[ArtificialBacklight] * (0.8 + 0.6*rng.Float64()))
		} else {
			in[ArtificialBacklight] = 0
		}
		out[j] = in
	}
	return out
}
