// Package augment is a synthetic substitute for the probabilistic image
// augmentation framework of Jöckel & Kläs that the paper uses to enrich
// GTSRB with realistic quality deficits. The original framework renders nine
// deficit types into the images, parameterised by situation settings derived
// from Deutscher Wetterdienst weather records and OpenStreetMap locations.
//
// Because the wrapper never inspects pixels, this package reproduces the
// *statistical* pipeline instead: a synthetic weather/daylight model and a
// road-type model generate an indexable pool of millions of situation
// settings; each setting fixes the nine deficit intensities for a whole
// series (a series shows one physical sign under one situation), with motion
// blur and artificial backlight allowed to vary frame-by-frame exactly as in
// the paper.
package augment

import "fmt"

// Deficit identifies one of the nine quality-deficit channels used by the
// paper.
type Deficit int

// The nine deficit channels.
const (
	Rain Deficit = iota
	Darkness
	Haze
	NaturalBacklight
	ArtificialBacklight
	SignDirt
	LensDirt
	SteamedLens
	MotionBlur
)

// NumDeficits is the number of deficit channels.
const NumDeficits = 9

var deficitNames = [NumDeficits]string{
	"rain",
	"darkness",
	"haze",
	"natural_backlight",
	"artificial_backlight",
	"sign_dirt",
	"lens_dirt",
	"steamed_lens",
	"motion_blur",
}

// String returns the canonical deficit name.
func (d Deficit) String() string {
	if d < 0 || d >= NumDeficits {
		return fmt.Sprintf("Deficit(%d)", int(d))
	}
	return deficitNames[d]
}

// Names returns the deficit names in channel order; the slice is fresh on
// every call.
func Names() []string {
	out := make([]string, NumDeficits)
	for i := range out {
		out[i] = deficitNames[i]
	}
	return out
}

// Level is a discrete augmentation intensity used for training-set
// augmentation (the paper augments every training image with each deficit at
// low, medium, and high intensity).
type Level int

// Discrete intensity levels.
const (
	Low Level = iota + 1
	Medium
	High
)

// Value maps the level to a channel intensity in [0,1].
func (l Level) Value() float64 {
	switch l {
	case Low:
		return 0.25
	case Medium:
		return 0.55
	case High:
		return 0.85
	default:
		return 0
	}
}

// String returns the level name.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Intensities is one realised deficit vector: intensity per channel in
// [0,1].
type Intensities [NumDeficits]float64

// Severity aggregates the channels into a single degradation score in [0,1].
// The weights encode how strongly each deficit disturbs a sign classifier:
// lens-local deficits (steam, dirt, blur) hurt more than ambient ones.
func (in Intensities) Severity() float64 {
	weights := [NumDeficits]float64{
		Rain:                0.09,
		Darkness:            0.13,
		Haze:                0.12,
		NaturalBacklight:    0.10,
		ArtificialBacklight: 0.08,
		SignDirt:            0.13,
		LensDirt:            0.11,
		SteamedLens:         0.14,
		MotionBlur:          0.10,
	}
	var s float64
	for i, v := range in {
		s += weights[i] * v
	}
	return s
}

// TrainingVariants returns the deficit vectors the paper uses to augment the
// training data: the clean image plus every deficit at low, medium, and high
// intensity (1 + 9*3 = 28 variants).
func TrainingVariants() []Intensities {
	out := make([]Intensities, 0, 1+NumDeficits*3)
	out = append(out, Intensities{}) // clean
	for d := Deficit(0); d < NumDeficits; d++ {
		for _, l := range []Level{Low, Medium, High} {
			var v Intensities
			v[d] = l.Value()
			out = append(out, v)
		}
	}
	return out
}
