// Package simplex implements the runtime verification-and-validation
// substrate that motivates dependable uncertainty estimates in the paper:
// a simplex-style monitor that compares each (fused) outcome's uncertainty
// against a required confidence level and escalates through configured
// countermeasures — accept, degrade, fall back to a safe channel, or
// disengage — instead of acting on an undependable perception result.
package simplex

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Countermeasure is one escalation level of the monitor.
type Countermeasure struct {
	// Name labels the level (e.g. "accept", "reduce-speed", "handover").
	Name string
	// MaxUncertainty is the largest uncertainty this level tolerates.
	MaxUncertainty float64
}

// Policy is an ordered escalation ladder. Levels are sorted by
// MaxUncertainty; the first level whose bound covers the observed
// uncertainty wins. An uncertainty above every bound triggers the terminal
// countermeasure.
type Policy struct {
	// Levels are the graded countermeasures.
	Levels []Countermeasure
	// Terminal is applied when no level tolerates the uncertainty.
	Terminal Countermeasure
}

// DefaultTSRPolicy mirrors a traffic-sign-recognition deployment: act on
// the outcome below 1% uncertainty, treat it as advisory below 10%, ignore
// the reading below 50%, and hand control back above that.
func DefaultTSRPolicy() Policy {
	return Policy{
		Levels: []Countermeasure{
			{Name: "accept", MaxUncertainty: 0.01},
			{Name: "advisory-only", MaxUncertainty: 0.10},
			{Name: "ignore-reading", MaxUncertainty: 0.50},
		},
		Terminal: Countermeasure{Name: "handover", MaxUncertainty: 1},
	}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if len(p.Levels) == 0 {
		return errors.New("simplex: policy needs at least one level")
	}
	for i, l := range p.Levels {
		if l.MaxUncertainty < 0 || l.MaxUncertainty > 1 {
			return fmt.Errorf("simplex: level %q bound %g outside [0,1]", l.Name, l.MaxUncertainty)
		}
		if l.Name == "" {
			return fmt.Errorf("simplex: level %d has no name", i)
		}
	}
	if p.Terminal.Name == "" {
		return errors.New("simplex: terminal countermeasure needs a name")
	}
	return nil
}

// Decision is the monitor's verdict for one outcome.
type Decision struct {
	// Outcome echoes the gated outcome.
	Outcome int
	// Uncertainty is the estimate the decision was based on.
	Uncertainty float64
	// Level is the selected countermeasure.
	Level Countermeasure
	// Accepted reports whether the first (least restrictive) level
	// applied.
	Accepted bool
}

// Stats counts monitor activity per level.
type Stats struct {
	// Total is the number of gated outcomes.
	Total int
	// PerLevel maps countermeasure name to activation count.
	PerLevel map[string]int
}

// Monitor gates outcomes against a policy. It is safe for concurrent use.
type Monitor struct {
	mu     sync.Mutex
	policy Policy
	counts map[string]int
	total  int
}

// NewMonitor creates a monitor; the policy's levels are sorted by bound.
func NewMonitor(policy Policy) (*Monitor, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	levels := make([]Countermeasure, len(policy.Levels))
	copy(levels, policy.Levels)
	sort.SliceStable(levels, func(a, b int) bool {
		return levels[a].MaxUncertainty < levels[b].MaxUncertainty
	})
	policy.Levels = levels
	return &Monitor{policy: policy, counts: make(map[string]int)}, nil
}

// Gate selects the countermeasure for one outcome with the given dependable
// uncertainty.
func (m *Monitor) Gate(outcome int, uncertainty float64) (Decision, error) {
	if uncertainty < 0 || uncertainty > 1 {
		return Decision{}, fmt.Errorf("simplex: uncertainty %g outside [0,1]", uncertainty)
	}
	level := m.policy.Terminal
	accepted := false
	for i, l := range m.policy.Levels {
		if uncertainty <= l.MaxUncertainty {
			level = l
			accepted = i == 0
			break
		}
	}
	m.mu.Lock()
	m.counts[level.Name]++
	m.total++
	m.mu.Unlock()
	return Decision{
		Outcome:     outcome,
		Uncertainty: uncertainty,
		Level:       level,
		Accepted:    accepted,
	}, nil
}

// Snapshot returns a copy of the activity counters.
func (m *Monitor) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	per := make(map[string]int, len(m.counts))
	for k, v := range m.counts {
		per[k] = v
	}
	return Stats{Total: m.total, PerLevel: per}
}

// EachCount visits the per-countermeasure activation counts in escalation
// order (levels ascending by bound, then the terminal countermeasure),
// including levels that have never fired. Unlike Snapshot it allocates
// nothing, so a metrics scrape can sit directly on top of it; visit must
// not call back into the monitor.
func (m *Monitor) EachCount(visit func(name string, count int)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, l := range m.policy.Levels {
		visit(l.Name, m.counts[l.Name])
	}
	visit(m.policy.Terminal.Name, m.counts[m.policy.Terminal.Name])
}

// Policy returns the monitor's (sorted) policy.
func (m *Monitor) Policy() Policy {
	levels := make([]Countermeasure, len(m.policy.Levels))
	copy(levels, m.policy.Levels)
	return Policy{Levels: levels, Terminal: m.policy.Terminal}
}
