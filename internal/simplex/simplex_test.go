package simplex

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPolicyValidate(t *testing.T) {
	if err := DefaultTSRPolicy().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
	bad := []Policy{
		{},
		{Levels: []Countermeasure{{Name: "a", MaxUncertainty: 2}}, Terminal: Countermeasure{Name: "t"}},
		{Levels: []Countermeasure{{Name: "", MaxUncertainty: 0.5}}, Terminal: Countermeasure{Name: "t"}},
		{Levels: []Countermeasure{{Name: "a", MaxUncertainty: 0.5}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d must fail validation", i)
		}
	}
}

func TestMonitorEscalation(t *testing.T) {
	m, err := NewMonitor(DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		u        float64
		want     string
		accepted bool
	}{
		{0.005, "accept", true},
		{0.01, "accept", true},
		{0.05, "advisory-only", false},
		{0.3, "ignore-reading", false},
		{0.9, "handover", false},
		{1, "handover", false},
		{0, "accept", true},
	}
	for _, tt := range tests {
		d, err := m.Gate(14, tt.u)
		if err != nil {
			t.Fatal(err)
		}
		if d.Level.Name != tt.want {
			t.Errorf("Gate(u=%g) = %q, want %q", tt.u, d.Level.Name, tt.want)
		}
		if d.Accepted != tt.accepted {
			t.Errorf("Gate(u=%g) accepted = %v, want %v", tt.u, d.Accepted, tt.accepted)
		}
		if d.Outcome != 14 || d.Uncertainty != tt.u {
			t.Errorf("decision must echo inputs: %+v", d)
		}
	}
	if _, err := m.Gate(1, -0.1); err == nil {
		t.Error("negative uncertainty must fail")
	}
	if _, err := m.Gate(1, 1.1); err == nil {
		t.Error("uncertainty > 1 must fail")
	}
	stats := m.Snapshot()
	if stats.Total != len(tests) {
		t.Errorf("total = %d, want %d", stats.Total, len(tests))
	}
	if stats.PerLevel["accept"] != 3 {
		t.Errorf("accept count = %d, want 3", stats.PerLevel["accept"])
	}
	if stats.PerLevel["handover"] != 2 {
		t.Errorf("handover count = %d, want 2", stats.PerLevel["handover"])
	}
}

func TestMonitorSortsLevels(t *testing.T) {
	p := Policy{
		Levels: []Countermeasure{
			{Name: "loose", MaxUncertainty: 0.5},
			{Name: "tight", MaxUncertainty: 0.01},
		},
		Terminal: Countermeasure{Name: "stop", MaxUncertainty: 1},
	}
	m, err := NewMonitor(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Gate(0, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if d.Level.Name != "tight" {
		t.Errorf("tightest applicable level must win, got %q", d.Level.Name)
	}
	got := m.Policy()
	if got.Levels[0].Name != "tight" || got.Levels[1].Name != "loose" {
		t.Error("policy accessor must expose sorted levels")
	}
}

func TestMonitorConcurrentUse(t *testing.T) {
	m, err := NewMonitor(DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const goroutines, perG = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				u := float64(i%100) / 100
				if _, err := m.Gate(g, u); err != nil {
					t.Errorf("gate: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	stats := m.Snapshot()
	if stats.Total != goroutines*perG {
		t.Errorf("total = %d, want %d", stats.Total, goroutines*perG)
	}
	sum := 0
	for _, v := range stats.PerLevel {
		sum += v
	}
	if sum != stats.Total {
		t.Errorf("per-level counts %d do not add up to total %d", sum, stats.Total)
	}
}

// Property: the selected level always tolerates the uncertainty (or is
// terminal), and tighter uncertainty never selects a looser level.
func TestMonitorMonotoneProperty(t *testing.T) {
	m, err := NewMonitor(DefaultTSRPolicy())
	if err != nil {
		t.Fatal(err)
	}
	levelRank := func(name string) int {
		for i, l := range m.Policy().Levels {
			if l.Name == name {
				return i
			}
		}
		return len(m.Policy().Levels)
	}
	f := func(a, b uint16) bool {
		u1 := float64(a) / 65535
		u2 := float64(b) / 65535
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		d1, err1 := m.Gate(0, u1)
		d2, err2 := m.Gate(0, u2)
		if err1 != nil || err2 != nil {
			return false
		}
		return levelRank(d1.Level.Name) <= levelRank(d2.Level.Name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
