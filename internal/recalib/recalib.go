// Package recalib closes the drift loop: it turns the observability signals
// PR 4 added (per-leaf ground-truth feedback, the Page-Hinkley calibration-
// drift alarm) into a model update, by refreshing the serving taQIM's leaf
// bounds from the accumulated online evidence (dtree.Recalibrate via
// uw.QualityImpactModel.Recalibrate) and hot-swapping the refreshed revision
// into the wrapper pool with zero downtime (core.WrapperPool.SwapModel).
//
// Two triggers share one engine: a manual trigger (the operator's POST
// /v1/recalibrate) that runs whenever called, and an automatic trigger
// (TryAuto) meant to be invoked when the drift alarm is active, guarded by a
// cooldown (no swap storms while an alarm churns) and a min-feedback-per-
// leaf requirement (no bound is refreshed from thin evidence — the
// Gerber/Jöckel/Kläs failure mode where a handful of lucky feedbacks
// collapses a region's bound). Either way a swap is atomic for the serving
// path: steps in flight finish on the old revision, later steps see the new
// one, and nothing blocks.
//
//tauw:seam
package recalib

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/dtree"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/trace"
)

// Config tunes the recalibration policy.
type Config struct {
	// MinLeafFeedback is the minimum online feedback a leaf needs before
	// its bound is refreshed (leaves below it keep their current bound),
	// and the auto trigger's evidence guard: an automatic recalibration
	// only runs when at least one leaf qualifies. 0 means
	// DefaultMinLeafFeedback; negative disables the guard (any leaf with
	// evidence is refreshed, however thin).
	MinLeafFeedback int
	// Cooldown is the minimum time between automatic recalibration
	// attempts — swaps and guard-rejected tries alike — so an alarm that
	// stays active across many feedbacks can neither trigger a swap storm
	// nor pay the per-leaf evidence aggregation on every feedback. 0 means
	// DefaultCooldown; negative disables the cooldown. Manual
	// recalibrations ignore it.
	Cooldown time.Duration
	// LaplaceAlpha is the add-alpha smoothing applied to refreshed bounds
	// (see dtree.RecalibConfig.LaplaceAlpha); 0 disables smoothing.
	LaplaceAlpha int
	// DropPrior recomputes refreshed leaves from online evidence alone
	// instead of combining it with the offline calibration counts.
	DropPrior bool
	// Now injects the clock (tests); nil means time.Now.
	Now func() time.Time
	// Trace wires substantive recalibration attempts (a retrain that
	// swapped, or failed trying) into the flight recorder as KindRecalib
	// events with the retrain duration; guard rejections are not recorded
	// — the cooldown path runs per feedback and would only be noise.
	Trace *trace.Recorder
}

// Policy defaults.
const (
	DefaultMinLeafFeedback = 50
	DefaultCooldown        = time.Minute
)

// withDefaults wires the injectable defaults, including the ambient clock.
//
//tauw:seamimpl
func (c Config) withDefaults() Config {
	if c.MinLeafFeedback == 0 {
		c.MinLeafFeedback = DefaultMinLeafFeedback
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Report is the outcome of one recalibration attempt.
type Report struct {
	// Swapped reports whether a new model revision was swapped in; when
	// false, Reason says why not and the versions are equal.
	Swapped bool
	Reason  string
	// OldVersion and NewVersion are the serving model versions before and
	// after the attempt.
	OldVersion, NewVersion uint64
	// Deltas is the per-leaf audit of the swap (nil when no swap
	// happened): every leaf with its old and new bound, the online
	// evidence offered, and whether it was refreshed.
	Deltas []dtree.LeafDelta
}

// Reasons a recalibration attempt reports without swapping.
const (
	ReasonCooldown   = "cooldown active"
	ReasonNoEvidence = "no leaf reached the feedback minimum"
)

// Recalibrator binds the pool, the per-leaf evidence, and the calibration
// monitor into the recalibration policy engine. It is safe for concurrent
// use: attempts serialise on an internal mutex while the pool keeps serving.
type Recalibrator struct {
	pool  *core.WrapperPool
	leafs *monitor.LeafStats
	calib *monitor.Monitor
	cfg   Config

	mu           sync.Mutex // serialises recalibration attempts
	lastAuto     time.Time
	count        atomic.Uint64
	lastSwapNano atomic.Int64

	// scratch reused across attempts (guarded by mu).
	totals   []monitor.LeafCounts
	evidence []dtree.LeafEvidence
}

// New wires a recalibrator. The leaf accumulators must be sized for the
// pool's serving model (monitor.NewLeafStats(taqim.NumRegions(), ...));
// calib may be nil when no drift monitor participates (the alarm is then
// never re-armed by a swap).
func New(pool *core.WrapperPool, leafs *monitor.LeafStats, calib *monitor.Monitor, cfg Config) (*Recalibrator, error) {
	if pool == nil || leafs == nil {
		return nil, errors.New("recalib: pool and leaf accumulators are required")
	}
	if cfg.LaplaceAlpha < 0 {
		return nil, errors.New("recalib: laplace alpha must be >= 0")
	}
	if got, want := leafs.NumLeaves(), pool.CurrentTAQIM().NumRegions(); got != want {
		return nil, errors.New("recalib: leaf accumulators sized for a different model")
	}
	return &Recalibrator{pool: pool, leafs: leafs, calib: calib, cfg: cfg.withDefaults()}, nil
}

// Recalibrate runs a manual recalibration: refresh every leaf with enough
// online evidence, swap the refreshed model in, reset the accumulators, and
// clear an active drift alarm. The cooldown does not apply — an operator
// who asks, gets. When no leaf has enough evidence the model is left
// untouched and the report says so.
func (r *Recalibrator) Recalibrate() (Report, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempt(false)
}

// TryAuto runs the automatic trigger, meant to be called when the drift
// alarm fires: it applies the cooldown and evidence guards, and on success
// swaps, resets the accumulators, and re-arms the alarm. Guard rejections
// are reported, not errors. The cooldown window restarts on every
// attempt — successful or guard-rejected — so an alarm churning across
// many feedbacks costs one timestamp comparison per feedback, not a
// per-leaf evidence aggregation.
func (r *Recalibrator) TryAuto() (Report, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempt(true)
}

// attempt is the shared engine; the caller holds r.mu.
func (r *Recalibrator) attempt(auto bool) (Report, error) {
	now := r.cfg.Now()
	version := r.pool.ModelVersion()
	rep := Report{OldVersion: version, NewVersion: version}
	if auto {
		if r.cfg.Cooldown > 0 && !r.lastAuto.IsZero() && now.Sub(r.lastAuto) < r.cfg.Cooldown {
			rep.Reason = ReasonCooldown
			return rep, nil
		}
		r.lastAuto = now
	}
	minLeaf := r.cfg.MinLeafFeedback
	if minLeaf < 0 {
		minLeaf = 0 // guard disabled: any leaf with evidence qualifies
	}
	r.totals = r.leafs.Totals(r.totals)
	r.evidence = r.evidence[:0]
	qualifying := 0
	for leaf, lc := range r.totals {
		if lc.Count == 0 {
			continue
		}
		// A feedback racing the post-swap Reset can be torn — its count
		// zeroed, its event landing after — leaving events briefly above
		// the count. Clamp rather than fail: the pair is evidence either
		// way, and dtree.Recalibrate rejects events > count outright.
		events := lc.Events
		if events > lc.Count {
			events = lc.Count
		}
		r.evidence = append(r.evidence, dtree.LeafEvidence{
			LeafID: leaf,
			Count:  int(lc.Count),
			Events: int(events),
		})
		if int(lc.Count) >= minLeaf {
			qualifying++
		}
	}
	if qualifying == 0 {
		rep.Reason = ReasonNoEvidence
		return rep, nil
	}
	var traceStart int64
	if r.cfg.Trace != nil {
		traceStart = r.cfg.Trace.Now()
	}
	cur := r.pool.CurrentTAQIM()
	next, deltas, err := cur.Recalibrate(r.evidence, dtree.RecalibConfig{
		MinLeafEvidence: minLeaf,
		LaplaceAlpha:    r.cfg.LaplaceAlpha,
		DropPrior:       r.cfg.DropPrior,
	})
	if err != nil {
		r.traceAttempt(traceStart, trace.StatusError, 0)
		return rep, err
	}
	oldV, newV, err := r.pool.SwapModel(next)
	if err != nil {
		r.traceAttempt(traceStart, trace.StatusError, 0)
		return rep, err
	}
	// The swapped model has absorbed the accumulated evidence: restart the
	// accumulators so the next cycle measures the new revision, stamp the
	// swap, and clear the alarm so the detector re-arms against post-swap
	// traffic.
	r.leafs.Reset()
	r.count.Add(1)
	r.lastSwapNano.Store(now.UnixNano())
	if r.calib != nil {
		r.calib.ResetDriftAlarm()
	}
	rep.Swapped = true
	rep.OldVersion = oldV
	rep.NewVersion = newV
	rep.Deltas = deltas
	r.traceAttempt(traceStart, trace.StatusOK, newV)
	return rep, nil
}

// traceAttempt records one substantive recalibration attempt (the retrain
// duration, and the swapped-in version on success).
func (r *Recalibrator) traceAttempt(start int64, status trace.Status, newVersion uint64) {
	if r.cfg.Trace == nil {
		return
	}
	r.cfg.Trace.RecordSince(start, trace.KindRecalib, status, 0, 0, newVersion)
}

// ModelVersion implements monitor.SwapSource: the serving model revision.
func (r *Recalibrator) ModelVersion() uint64 { return r.pool.ModelVersion() }

// RecalibrationCount implements monitor.SwapSource: completed swaps.
func (r *Recalibrator) RecalibrationCount() uint64 { return r.count.Load() }

// LastSwapUnixNano implements monitor.SwapSource: when the last swap
// landed (0 before the first).
func (r *Recalibrator) LastSwapUnixNano() int64 { return r.lastSwapNano.Load() }
