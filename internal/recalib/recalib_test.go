package recalib_test

import (
	"sync"
	"testing"
	"time"

	"github.com/iese-repro/tauw/internal/core"
	"github.com/iese-repro/tauw/internal/eval"
	"github.com/iese-repro/tauw/internal/monitor"
	"github.com/iese-repro/tauw/internal/recalib"
)

var (
	studyOnce sync.Once
	studyVal  *eval.Study
	studyErr  error
)

func testStudy(t *testing.T) *eval.Study {
	t.Helper()
	studyOnce.Do(func() {
		studyVal, studyErr = eval.BuildStudy(eval.TinyConfig())
	})
	if studyErr != nil {
		t.Fatalf("BuildStudy: %v", studyErr)
	}
	return studyVal
}

// fixture builds a monitored pool, leaf accumulators, and a recalibrator
// with an injectable clock.
func fixture(t *testing.T, cfg recalib.Config) (*core.WrapperPool, *monitor.LeafStats, *monitor.Monitor, *recalib.Recalibrator) {
	t.Helper()
	st := testStudy(t)
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM, core.Config{}, 0, core.WithMonitoring(64))
	if err != nil {
		t.Fatal(err)
	}
	leafs, err := monitor.NewLeafStats(st.TAQIM.NumRegions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	calib, err := monitor.New(monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := recalib.New(pool, leafs, calib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pool, leafs, calib, r
}

// feed runs steps through the pool and attributes deliberately wrong
// feedback so the stepped leaf accumulates heavy failure evidence.
func feed(t *testing.T, pool *core.WrapperPool, leafs *monitor.LeafStats, n int) {
	t.Helper()
	st := testStudy(t)
	if err := pool.Open(1); err != nil {
		t.Fatal(err)
	}
	s := st.TestSeries[0]
	for j := 0; j < n; j++ {
		if j%len(s.Outcomes) == 0 {
			if err := pool.Open(1); err != nil { // restart the series
				t.Fatal(err)
			}
		}
		res, err := pool.Step(1, s.Outcomes[j%len(s.Outcomes)], s.Quality[j%len(s.Quality)])
		if err != nil {
			t.Fatal(err)
		}
		rec, err := pool.TakeFeedback(1, res.TotalSteps)
		if err != nil {
			t.Fatal(err)
		}
		leafs.Observe(1, rec.TAQIMLeaf, true) // every estimate judged wrong
	}
}

func TestRecalibrateSwapsAndLiftsBounds(t *testing.T) {
	pool, leafs, _, r := fixture(t, recalib.Config{MinLeafFeedback: 20})
	feed(t, pool, leafs, 200)
	if got := leafs.TotalCount(); got != 200 {
		t.Fatalf("accumulated %d feedbacks, want 200", got)
	}
	rep, err := r.Recalibrate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped {
		t.Fatalf("manual recalibration with 200 feedbacks did not swap: %+v", rep)
	}
	if rep.OldVersion != 1 || rep.NewVersion != 2 {
		t.Fatalf("versions (%d, %d), want (1, 2)", rep.OldVersion, rep.NewVersion)
	}
	if pool.ModelVersion() != 2 {
		t.Fatalf("pool version %d, want 2", pool.ModelVersion())
	}
	lifted := 0
	for _, d := range rep.Deltas {
		if d.Refreshed {
			if d.NewValue <= d.OldValue {
				t.Errorf("all-wrong evidence must lift leaf %d: %g -> %g", d.LeafID, d.OldValue, d.NewValue)
			}
			lifted++
		}
	}
	if lifted == 0 {
		t.Fatal("no leaf was refreshed")
	}
	// The accumulators restart after the swap.
	if got := leafs.TotalCount(); got != 0 {
		t.Errorf("accumulators not reset: %d", got)
	}
	if r.RecalibrationCount() != 1 {
		t.Errorf("RecalibrationCount = %d, want 1", r.RecalibrationCount())
	}
	if r.LastSwapUnixNano() == 0 {
		t.Error("LastSwapUnixNano not stamped")
	}
	if r.ModelVersion() != 2 {
		t.Errorf("ModelVersion = %d, want 2", r.ModelVersion())
	}
}

func TestRecalibrateNoEvidence(t *testing.T) {
	_, _, _, r := fixture(t, recalib.Config{MinLeafFeedback: 20})
	rep, err := r.Recalibrate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swapped || rep.Reason != recalib.ReasonNoEvidence {
		t.Fatalf("empty accumulators must not swap: %+v", rep)
	}
	if rep.OldVersion != rep.NewVersion {
		t.Fatalf("versions moved without a swap: %+v", rep)
	}
}

func TestTryAutoGuards(t *testing.T) {
	clock := time.Unix(1000, 0)
	cfg := recalib.Config{
		MinLeafFeedback: 10,
		Cooldown:        time.Minute,
		Now:             func() time.Time { return clock },
	}
	pool, leafs, calib, r := fixture(t, cfg)

	// Thin evidence: the auto trigger must refuse.
	feed(t, pool, leafs, 5)
	rep, err := r.TryAuto()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swapped || rep.Reason != recalib.ReasonNoEvidence {
		t.Fatalf("thin evidence must not auto-swap: %+v", rep)
	}
	// A guard-rejected attempt arms the cooldown too: the alarm churning
	// across feedbacks must not pay the evidence aggregation every time.
	rep, err = r.TryAuto()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swapped || rep.Reason != recalib.ReasonCooldown {
		t.Fatalf("immediate retry after a rejected attempt must hit the cooldown: %+v", rep)
	}
	clock = clock.Add(2 * time.Minute)

	// Enough evidence: swap, and the drift alarm is cleared.
	feed(t, pool, leafs, 100)
	// Drive the detector into an alarm: a calibrated baseline, then a
	// sustained squared-error degradation.
	for i := 0; i < 250; i++ {
		if err := calib.Observe(1, 0.05, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300 && !calib.DriftAlarmed(); i++ {
		if err := calib.Observe(1, 0.9, false); err != nil {
			t.Fatal(err)
		}
	}
	if !calib.DriftAlarmed() {
		t.Fatal("fixture failed to raise a drift alarm")
	}
	rep, err = r.TryAuto()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped {
		t.Fatalf("auto recalibration with evidence did not swap: %+v", rep)
	}
	if calib.DriftAlarmed() {
		t.Error("swap must re-arm (clear) the drift alarm")
	}

	// Within the cooldown the next auto attempt is refused however much
	// evidence exists; manual still works.
	feed(t, pool, leafs, 100)
	clock = clock.Add(30 * time.Second)
	rep, err = r.TryAuto()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swapped || rep.Reason != recalib.ReasonCooldown {
		t.Fatalf("cooldown must refuse the auto trigger: %+v", rep)
	}
	rep, err = r.Recalibrate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped {
		t.Fatalf("manual recalibration must ignore the cooldown: %+v", rep)
	}

	// After the cooldown the auto trigger works again.
	feed(t, pool, leafs, 100)
	clock = clock.Add(2 * time.Minute)
	rep, err = r.TryAuto()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped {
		t.Fatalf("expired cooldown must allow the auto trigger: %+v", rep)
	}
	if got := r.RecalibrationCount(); got != 3 {
		t.Errorf("RecalibrationCount = %d, want 3", got)
	}
}

func TestNewValidation(t *testing.T) {
	st := testStudy(t)
	pool, err := core.NewWrapperPool(st.Base, st.TAQIM, core.Config{}, 0, core.WithMonitoring(8))
	if err != nil {
		t.Fatal(err)
	}
	leafs, err := monitor.NewLeafStats(st.TAQIM.NumRegions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recalib.New(nil, leafs, nil, recalib.Config{}); err == nil {
		t.Error("nil pool must fail")
	}
	if _, err := recalib.New(pool, nil, nil, recalib.Config{}); err == nil {
		t.Error("nil leaf stats must fail")
	}
	// Negative min feedback is the explicit "no guard" setting.
	if _, err := recalib.New(pool, leafs, nil, recalib.Config{MinLeafFeedback: -1}); err != nil {
		t.Errorf("negative min feedback (guard disabled): %v", err)
	}
	if _, err := recalib.New(pool, leafs, nil, recalib.Config{LaplaceAlpha: -1}); err == nil {
		t.Error("negative laplace must fail")
	}
	wrong, err := monitor.NewLeafStats(st.TAQIM.NumRegions()+3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recalib.New(pool, wrong, nil, recalib.Config{}); err == nil {
		t.Error("mis-sized accumulators must fail")
	}
	// nil calib is allowed.
	if _, err := recalib.New(pool, leafs, nil, recalib.Config{}); err != nil {
		t.Errorf("nil calib: %v", err)
	}
}

// TestRecalibrateConcurrentWithTraffic races manual recalibrations against
// live steps and feedback — the policy-layer slice of the tentpole's race
// story (run under -race).
func TestRecalibrateConcurrentWithTraffic(t *testing.T) {
	pool, leafs, _, r := fixture(t, recalib.Config{MinLeafFeedback: 5, Cooldown: -1})
	st := testStudy(t)
	s := st.TestSeries[0]
	// Seed enough evidence that the first attempt can swap whatever the
	// goroutine interleaving does.
	feed(t, pool, leafs, 20)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(track int) {
			defer wg.Done()
			if err := pool.Open(track); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 300; j++ {
				res, err := pool.Step(track, s.Outcomes[j%len(s.Outcomes)], s.Quality[j%len(s.Quality)])
				if err != nil {
					t.Error(err)
					return
				}
				if rec, err := pool.TakeFeedback(track, res.TotalSteps); err == nil {
					leafs.Observe(track, rec.TAQIMLeaf, j%2 == 0)
				}
			}
		}(w + 10)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := r.Recalibrate(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if v := pool.ModelVersion(); v < 2 {
		t.Errorf("no recalibration landed under traffic: version %d", v)
	}
}
