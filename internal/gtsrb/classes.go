// Package gtsrb provides a synthetic substitute for the German Traffic Sign
// Recognition Benchmark timeseries data used by the paper. The original
// dataset contains 1307 series of 29-30 images each, taken while a car
// approaches a physical traffic sign. This package reproduces the parts of
// the benchmark that matter to the uncertainty-wrapper study: the 43-class
// catalogue (grouped into visually similar families so classifier confusions
// cluster realistically), the approach geometry (the sign's pixel size grows
// along the series), per-series ground truth, image-plane sign positions for
// the tracker, and GPS locations inside Germany for the scope model.
package gtsrb

// NumClasses is the number of traffic-sign classes in GTSRB.
const NumClasses = 43

// Family groups visually similar sign classes. Confusions inside a family
// are far more likely than across families, which the synthetic feature
// model in internal/ddm exploits.
type Family int

// Families of German traffic signs as grouped in GTSRB.
const (
	FamilySpeedLimit Family = iota + 1
	FamilyDerestriction
	FamilyProhibition
	FamilyPriority
	FamilyDanger
	FamilyMandatory
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case FamilySpeedLimit:
		return "speed-limit"
	case FamilyDerestriction:
		return "derestriction"
	case FamilyProhibition:
		return "prohibition"
	case FamilyPriority:
		return "priority"
	case FamilyDanger:
		return "danger"
	case FamilyMandatory:
		return "mandatory"
	default:
		return "unknown"
	}
}

// Class describes one traffic-sign class.
type Class struct {
	// ID is the GTSRB class id (0..42).
	ID int
	// Name is the human-readable sign name.
	Name string
	// Family is the visual family of the sign.
	Family Family
	// Weight is the relative sampling frequency, mirroring the strong
	// class imbalance of GTSRB (speed limits dominate).
	Weight float64
}

// catalog lists the 43 GTSRB classes with names, families, and approximate
// relative frequencies from the benchmark's training distribution.
var catalog = []Class{
	{0, "speed limit 20", FamilySpeedLimit, 0.6},
	{1, "speed limit 30", FamilySpeedLimit, 6.6},
	{2, "speed limit 50", FamilySpeedLimit, 6.7},
	{3, "speed limit 60", FamilySpeedLimit, 4.2},
	{4, "speed limit 70", FamilySpeedLimit, 5.9},
	{5, "speed limit 80", FamilySpeedLimit, 5.5},
	{6, "end of speed limit 80", FamilyDerestriction, 1.2},
	{7, "speed limit 100", FamilySpeedLimit, 4.3},
	{8, "speed limit 120", FamilySpeedLimit, 4.2},
	{9, "no passing", FamilyProhibition, 4.4},
	{10, "no passing for heavy vehicles", FamilyProhibition, 6.0},
	{11, "right-of-way at next intersection", FamilyPriority, 3.9},
	{12, "priority road", FamilyPriority, 6.3},
	{13, "yield", FamilyPriority, 6.4},
	{14, "stop", FamilyPriority, 2.3},
	{15, "no vehicles", FamilyProhibition, 1.8},
	{16, "no heavy vehicles", FamilyProhibition, 1.2},
	{17, "no entry", FamilyProhibition, 3.3},
	{18, "general caution", FamilyDanger, 3.6},
	{19, "dangerous curve left", FamilyDanger, 0.6},
	{20, "dangerous curve right", FamilyDanger, 1.0},
	{21, "double curve", FamilyDanger, 0.9},
	{22, "bumpy road", FamilyDanger, 1.1},
	{23, "slippery road", FamilyDanger, 1.5},
	{24, "road narrows on the right", FamilyDanger, 0.8},
	{25, "road work", FamilyDanger, 4.5},
	{26, "traffic signals", FamilyDanger, 1.8},
	{27, "pedestrians", FamilyDanger, 0.7},
	{28, "children crossing", FamilyDanger, 1.6},
	{29, "bicycles crossing", FamilyDanger, 0.8},
	{30, "beware of ice/snow", FamilyDanger, 1.3},
	{31, "wild animals crossing", FamilyDanger, 2.3},
	{32, "end of all limits", FamilyDerestriction, 0.7},
	{33, "turn right ahead", FamilyMandatory, 2.0},
	{34, "turn left ahead", FamilyMandatory, 1.2},
	{35, "ahead only", FamilyMandatory, 3.6},
	{36, "go straight or right", FamilyMandatory, 1.1},
	{37, "go straight or left", FamilyMandatory, 0.6},
	{38, "keep right", FamilyMandatory, 6.2},
	{39, "keep left", FamilyMandatory, 0.9},
	{40, "roundabout mandatory", FamilyMandatory, 1.0},
	{41, "end of no passing", FamilyDerestriction, 0.7},
	{42, "end of no passing for heavy vehicles", FamilyDerestriction, 0.7},
}

// Catalog returns a copy of the 43-class catalogue.
func Catalog() []Class {
	out := make([]Class, len(catalog))
	copy(out, catalog)
	return out
}

// ClassByID returns the class with the given id; ok is false when the id is
// outside 0..42.
func ClassByID(id int) (Class, bool) {
	if id < 0 || id >= len(catalog) {
		return Class{}, false
	}
	return catalog[id], true
}

// FamilyMembers returns the ids of all classes in the given family.
func FamilyMembers(f Family) []int {
	var out []int
	for _, c := range catalog {
		if c.Family == f {
			out = append(out, c.ID)
		}
	}
	return out
}
