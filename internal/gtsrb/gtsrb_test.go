package gtsrb

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCatalogComplete(t *testing.T) {
	cs := Catalog()
	if len(cs) != NumClasses {
		t.Fatalf("catalogue has %d classes, want %d", len(cs), NumClasses)
	}
	seen := make(map[string]bool)
	for i, c := range cs {
		if c.ID != i {
			t.Errorf("class %d has ID %d", i, c.ID)
		}
		if c.Name == "" || seen[c.Name] {
			t.Errorf("class %d has empty or duplicate name %q", i, c.Name)
		}
		seen[c.Name] = true
		if c.Family < FamilySpeedLimit || c.Family > FamilyMandatory {
			t.Errorf("class %d has invalid family %d", i, c.Family)
		}
		if c.Weight <= 0 {
			t.Errorf("class %d has non-positive weight", i)
		}
	}
}

func TestCatalogIsACopy(t *testing.T) {
	cs := Catalog()
	cs[0].Name = "mutated"
	if c, _ := ClassByID(0); c.Name == "mutated" {
		t.Error("Catalog must return a copy")
	}
}

func TestClassByID(t *testing.T) {
	if c, ok := ClassByID(14); !ok || c.Name != "stop" {
		t.Errorf("ClassByID(14) = %+v, %v", c, ok)
	}
	if _, ok := ClassByID(-1); ok {
		t.Error("negative id must not resolve")
	}
	if _, ok := ClassByID(43); ok {
		t.Error("id 43 must not resolve")
	}
}

func TestFamilyMembers(t *testing.T) {
	speed := FamilyMembers(FamilySpeedLimit)
	want := []int{0, 1, 2, 3, 4, 5, 7, 8}
	if len(speed) != len(want) {
		t.Fatalf("speed family = %v, want %v", speed, want)
	}
	for i := range want {
		if speed[i] != want[i] {
			t.Fatalf("speed family = %v, want %v", speed, want)
		}
	}
	total := 0
	for f := FamilySpeedLimit; f <= FamilyMandatory; f++ {
		total += len(FamilyMembers(f))
		if f.String() == "unknown" {
			t.Errorf("family %d has no name", f)
		}
	}
	if total != NumClasses {
		t.Errorf("families cover %d classes, want %d", total, NumClasses)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumSeries = 40
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Class != b[i].Class || a[i].Len() != b[i].Len() {
			t.Fatalf("series %d differs between runs", i)
		}
		for j := range a[i].Frames {
			if a[i].Frames[j] != b[i].Frames[j] {
				t.Fatalf("frame %d/%d differs between runs", i, j)
			}
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumSeries = 100
	series, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.Len() < cfg.MinFrames || s.Len() > cfg.MaxFrames {
			t.Fatalf("series %d has %d frames", s.ID, s.Len())
		}
		if !s.Location.InGermany() {
			t.Errorf("series %d located outside Germany: %+v", s.ID, s.Location)
		}
		if _, ok := ClassByID(s.Class); !ok {
			t.Errorf("series %d has invalid class %d", s.ID, s.Class)
		}
		prevSize := 0.0
		for j, f := range s.Frames {
			if f.Class != s.Class {
				t.Fatalf("frame class %d != series class %d", f.Class, s.Class)
			}
			if f.Step != j || f.SeriesID != s.ID {
				t.Fatalf("frame indices wrong: %+v", f)
			}
			if f.PixelSize < 15 || f.PixelSize > 250 {
				t.Errorf("pixel size %g out of range", f.PixelSize)
			}
			if f.PixelSize < prevSize {
				t.Errorf("pixel size must not shrink during approach: %g after %g", f.PixelSize, prevSize)
			}
			prevSize = f.PixelSize
			if f.Distance <= 0 {
				t.Errorf("distance %g must be positive", f.Distance)
			}
		}
		first, last := s.Frames[0], s.Frames[s.Len()-1]
		if first.Distance <= last.Distance {
			t.Errorf("series %d does not approach: %g -> %g", s.ID, first.Distance, last.Distance)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GeneratorConfig{
		{NumSeries: 0, MinFrames: 1, MaxFrames: 2, FarDistance: 60, NearDistance: 7},
		{NumSeries: 5, MinFrames: 0, MaxFrames: 2, FarDistance: 60, NearDistance: 7},
		{NumSeries: 5, MinFrames: 3, MaxFrames: 2, FarDistance: 60, NearDistance: 7},
		{NumSeries: 5, MinFrames: 1, MaxFrames: 2, FarDistance: 7, NearDistance: 60},
		{NumSeries: 5, MinFrames: 1, MaxFrames: 2, FarDistance: 60, NearDistance: 0},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestGenerateClassImbalance(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumSeries = 4000
	series, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, NumClasses)
	for _, s := range series {
		counts[s.Class]++
	}
	// speed limit 50 (weight 6.7) must be far more common than
	// speed limit 20 (weight 0.6).
	if counts[2] < 3*counts[0] {
		t.Errorf("class imbalance not reproduced: class2=%d class0=%d", counts[2], counts[0])
	}
}

func TestSplit(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumSeries = 200
	series, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, calib, test, err := Split(series, 0.4, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(train) + len(calib) + len(test); got != len(series) {
		t.Fatalf("split loses series: %d != %d", got, len(series))
	}
	// Stratified rounding keeps the requested fractions within a few
	// series of the target.
	if len(train) < 60 || len(train) > 100 {
		t.Errorf("train size %d far from 40%% of 200", len(train))
	}
	if len(calib) < 40 || len(calib) > 80 {
		t.Errorf("calib size %d far from 30%% of 200", len(calib))
	}
	// No series may appear in two splits.
	seen := make(map[int]string)
	for _, s := range train {
		seen[s.ID] = "train"
	}
	for _, s := range calib {
		if prev, dup := seen[s.ID]; dup {
			t.Fatalf("series %d in calib and %s", s.ID, prev)
		}
		seen[s.ID] = "calib"
	}
	for _, s := range test {
		if prev, dup := seen[s.ID]; dup {
			t.Fatalf("series %d in test and %s", s.ID, prev)
		}
	}
}

func TestSplitStratifiedCoverage(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumSeries = 160
	cfg.MinPerClass = 3
	series, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, calib, test, err := Split(series, 0.4, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	cover := func(name string, ss []Series) {
		seen := make(map[int]bool)
		for _, s := range ss {
			seen[s.Class] = true
		}
		for c := 0; c < NumClasses; c++ {
			if !seen[c] {
				t.Errorf("%s split misses class %d", name, c)
			}
		}
	}
	cover("train", train)
	cover("calib", calib)
	cover("test", test)
}

func TestGenerateMinPerClass(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumSeries = 150
	cfg.MinPerClass = 3
	series, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, NumClasses)
	for _, s := range series {
		counts[s.Class]++
	}
	for c, n := range counts {
		if n < 3 {
			t.Errorf("class %d has only %d series, want >= 3", c, n)
		}
	}
	cfg.MinPerClass = 10 // needs 430 series, have 150
	if _, err := Generate(cfg); err == nil {
		t.Error("infeasible MinPerClass must fail")
	}
	cfg.MinPerClass = -1
	if _, err := Generate(cfg); err == nil {
		t.Error("negative MinPerClass must fail")
	}
}

func TestSplitErrors(t *testing.T) {
	if _, _, _, err := Split(nil, 0.5, 0.2, 1); err == nil {
		t.Error("empty input must fail")
	}
	s := []Series{{ID: 1}}
	if _, _, _, err := Split(s, 0.8, 0.5, 1); err == nil {
		t.Error("fractions > 1 must fail")
	}
	if _, _, _, err := Split(s, -0.1, 0.5, 1); err == nil {
		t.Error("negative fraction must fail")
	}
}

func TestSubsample(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumSeries = 5
	series, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	sub, err := Subsample(series[0], 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 10 {
		t.Fatalf("subsample length %d", sub.Len())
	}
	if sub.Class != series[0].Class || sub.ID != series[0].ID {
		t.Error("subsample must keep identity")
	}
	for j, f := range sub.Frames {
		if f.Step != j {
			t.Errorf("frame %d has step %d", j, f.Step)
		}
	}
	// Frames must be a contiguous slice of the parent (compare by
	// distance which is strictly decreasing).
	found := false
	for start := 0; start+10 <= series[0].Len(); start++ {
		if series[0].Frames[start].Distance == sub.Frames[0].Distance {
			found = true
			for j := 0; j < 10; j++ {
				if series[0].Frames[start+j].Distance != sub.Frames[j].Distance {
					t.Fatal("subsample is not contiguous")
				}
			}
		}
	}
	if !found {
		t.Error("subsample start not found in parent")
	}
	if _, err := Subsample(series[0], 0, rng); err == nil {
		t.Error("length 0 must fail")
	}
	if _, err := Subsample(series[0], series[0].Len()+1, rng); err == nil {
		t.Error("oversized subsample must fail")
	}
}

// Property: subsampling the full length returns the identical series.
func TestSubsampleFullLength(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumSeries = 3
	series, _ := Generate(cfg)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		s := series[int(seed%uint64(len(series)))]
		sub, err := Subsample(s, s.Len(), rng)
		if err != nil {
			return false
		}
		for j := range sub.Frames {
			if sub.Frames[j].Distance != s.Frames[j].Distance {
				return false
			}
		}
		return sub.Len() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInGermany(t *testing.T) {
	tests := []struct {
		loc  Location
		want bool
	}{
		{Location{49.48958, 8.46725}, true},    // Mannheim (from the paper's Fig. 1)
		{Location{40.71272, -74.00604}, false}, // New York (from the paper's Fig. 1)
	}
	for _, tt := range tests {
		if got := tt.loc.InGermany(); got != tt.want {
			t.Errorf("InGermany(%+v) = %v, want %v", tt.loc, got, tt.want)
		}
	}
	_ = math.Pi // keep math import if cases change
}
