package gtsrb

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Frame is one synthetic observation of a traffic sign: everything the rest
// of the system needs to know about an "image" without storing pixels.
type Frame struct {
	// SeriesID identifies the physical sign encounter.
	SeriesID int
	// Step is the zero-based index of the frame within its series.
	Step int
	// Class is the ground-truth GTSRB class id.
	Class int
	// Distance is the camera-to-sign distance in metres.
	Distance float64
	// PixelSize is the apparent sign size in pixels (larger is easier).
	PixelSize float64
	// ImageX and ImageY give the sign centre in normalised image
	// coordinates [0,1]^2; the tracker consumes these.
	ImageX, ImageY float64
	// SpeedKMH is the vehicle speed; it drives motion blur.
	SpeedKMH float64
}

// Location is a WGS84 coordinate used by the scope-compliance model.
type Location struct {
	Lat float64
	Lon float64
}

// Germany is the bounding box the paper uses as the spatial target
// application scope.
var Germany = struct{ LatMin, LatMax, LonMin, LonMax float64 }{
	LatMin: 47.27, LatMax: 55.06, LonMin: 5.87, LonMax: 15.04,
}

// InGermany reports whether the location falls inside the Germany bounding
// box.
func (l Location) InGermany() bool {
	return l.Lat >= Germany.LatMin && l.Lat <= Germany.LatMax &&
		l.Lon >= Germany.LonMin && l.Lon <= Germany.LonMax
}

// Series is one encounter with a physical traffic sign: a run of consecutive
// frames sharing a single ground truth.
type Series struct {
	// ID identifies the series.
	ID int
	// Class is the ground-truth class shared by all frames.
	Class int
	// Location is where the encounter happened.
	Location Location
	// Frames are the observations ordered by time.
	Frames []Frame
}

// Len returns the number of frames.
func (s Series) Len() int { return len(s.Frames) }

// GeneratorConfig parameterises the synthetic benchmark.
type GeneratorConfig struct {
	// NumSeries is the number of sign encounters to generate; the paper's
	// GTSRB training archive has 1307.
	NumSeries int
	// MinFrames and MaxFrames bound the series length (GTSRB: 29..30).
	MinFrames, MaxFrames int
	// FarDistance and NearDistance are the camera distances at the first
	// and last frame in metres.
	FarDistance, NearDistance float64
	// MinPerClass guarantees at least this many series per class before
	// weighted sampling fills the rest. The real GTSRB training archive
	// covers every class; small synthetic subsets must too, otherwise the
	// DDM cannot learn the rare classes at all.
	MinPerClass int
	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultGeneratorConfig mirrors the GTSRB timeseries layout.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		NumSeries:    1307,
		MinFrames:    29,
		MaxFrames:    30,
		FarDistance:  60,
		NearDistance: 7,
		Seed:         1,
	}
}

// Validate checks the configuration.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.NumSeries <= 0:
		return errors.New("gtsrb: NumSeries must be positive")
	case c.MinFrames <= 0 || c.MaxFrames < c.MinFrames:
		return fmt.Errorf("gtsrb: invalid frame bounds [%d,%d]", c.MinFrames, c.MaxFrames)
	case !(c.FarDistance > c.NearDistance) || c.NearDistance <= 0:
		return fmt.Errorf("gtsrb: invalid distances far=%g near=%g", c.FarDistance, c.NearDistance)
	case c.MinPerClass < 0:
		return fmt.Errorf("gtsrb: MinPerClass %d must be >= 0", c.MinPerClass)
	case c.MinPerClass*NumClasses > c.NumSeries:
		return fmt.Errorf("gtsrb: MinPerClass %d needs %d series, have %d",
			c.MinPerClass, c.MinPerClass*NumClasses, c.NumSeries)
	}
	return nil
}

// focalPx converts distance to apparent pixel size: a 0.9 m sign observed by
// a camera with ~1900 px/rad focal length, clamped to the GTSRB crop range
// of roughly 15..250 px.
func focalPx(distance float64) float64 {
	size := 1700.0 / distance
	return math.Max(15, math.Min(250, size))
}

// Generate builds the synthetic benchmark deterministically from the seed.
func Generate(cfg GeneratorConfig) ([]Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x67747372)) // "gtsr"
	classPicker := newWeightedPicker()
	// Guaranteed coverage block: MinPerClass series per class, in a
	// shuffled order so coverage series do not cluster at low ids.
	coverage := make([]int, 0, cfg.MinPerClass*NumClasses)
	for k := 0; k < cfg.MinPerClass; k++ {
		for c := 0; c < NumClasses; c++ {
			coverage = append(coverage, c)
		}
	}
	rng.Shuffle(len(coverage), func(a, b int) { coverage[a], coverage[b] = coverage[b], coverage[a] })
	out := make([]Series, cfg.NumSeries)
	for i := range out {
		var class int
		if i < len(coverage) {
			class = coverage[i]
		} else {
			class = classPicker.pick(rng)
		}
		nFrames := cfg.MinFrames
		if cfg.MaxFrames > cfg.MinFrames {
			nFrames += rng.IntN(cfg.MaxFrames - cfg.MinFrames + 1)
		}
		loc := Location{
			Lat: Germany.LatMin + rng.Float64()*(Germany.LatMax-Germany.LatMin),
			Lon: Germany.LonMin + rng.Float64()*(Germany.LonMax-Germany.LonMin),
		}
		speed := 30 + rng.Float64()*70 // 30..100 km/h
		// The sign drifts from near the image centre toward the right
		// edge as the car approaches.
		startX := 0.45 + rng.Float64()*0.15
		startY := 0.35 + rng.Float64()*0.15
		s := Series{ID: i, Class: class, Location: loc, Frames: make([]Frame, nFrames)}
		for j := 0; j < nFrames; j++ {
			progress := float64(j) / float64(nFrames-1)
			if nFrames == 1 {
				progress = 1
			}
			// Distance shrinks with constant approach speed:
			// interpolate in 1/d so pixel size grows smoothly.
			invD := (1-progress)/cfg.FarDistance + progress/cfg.NearDistance
			d := 1 / invD
			s.Frames[j] = Frame{
				SeriesID:  i,
				Step:      j,
				Class:     class,
				Distance:  d,
				PixelSize: focalPx(d),
				ImageX:    math.Min(0.98, startX+0.45*progress+0.01*rng.NormFloat64()),
				ImageY:    math.Min(0.98, startY+0.25*progress+0.01*rng.NormFloat64()),
				SpeedKMH:  speed + rng.NormFloat64(),
			}
		}
		out[i] = s
	}
	return out, nil
}

// weightedPicker samples class ids proportional to catalogue weights.
type weightedPicker struct {
	cum []float64
}

func newWeightedPicker() *weightedPicker {
	cum := make([]float64, len(catalog))
	var total float64
	for i, c := range catalog {
		total += c.Weight
		cum[i] = total
	}
	return &weightedPicker{cum: cum}
}

func (p *weightedPicker) pick(rng *rand.Rand) int {
	r := rng.Float64() * p.cum[len(p.cum)-1]
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Split partitions series into train/calibration/test groups by the given
// fractions (the remainder goes to test). The split is stratified by class
// and deterministic in the seed: every class with at least three series
// contributes to each group, so a small benchmark cannot leave a class
// untrained — mirroring the paper's setting, where all 43 classes appear in
// every split of the 1307 series.
func Split(series []Series, trainFrac, calibFrac float64, seed uint64) (train, calib, test []Series, err error) {
	if trainFrac < 0 || calibFrac < 0 || trainFrac+calibFrac > 1 {
		return nil, nil, nil, fmt.Errorf("gtsrb: invalid split fractions %g/%g", trainFrac, calibFrac)
	}
	if len(series) == 0 {
		return nil, nil, nil, errors.New("gtsrb: no series to split")
	}
	rng := rand.New(rand.NewPCG(seed, 0x73706c74)) // "splt"
	byClass := make(map[int][]int)
	for i, s := range series {
		byClass[s.Class] = append(byClass[s.Class], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		members := byClass[c]
		rng.Shuffle(len(members), func(a, b int) { members[a], members[b] = members[b], members[a] })
		n := len(members)
		nTrain := int(math.Round(trainFrac * float64(n)))
		nCalib := int(math.Round(calibFrac * float64(n)))
		if n >= 3 {
			// Force representation in every group.
			if nTrain == 0 {
				nTrain = 1
			}
			if nCalib == 0 {
				nCalib = 1
			}
			for nTrain+nCalib >= n {
				if nTrain >= nCalib && nTrain > 1 {
					nTrain--
				} else if nCalib > 1 {
					nCalib--
				} else {
					break
				}
			}
		}
		if nTrain+nCalib > n {
			nCalib = n - nTrain
		}
		for i, idx := range members {
			switch {
			case i < nTrain:
				train = append(train, series[idx])
			case i < nTrain+nCalib:
				calib = append(calib, series[idx])
			default:
				test = append(test, series[idx])
			}
		}
	}
	return train, calib, test, nil
}

// Subsample returns a contiguous subseries of the given length starting at a
// uniformly random step, as the paper does to de-bias calibration and test
// data from sign distance ("a subseries of length 10 with a uniformly random
// starting time step"). Frames are re-stamped with fresh step indices; the
// resulting series keeps the parent's identity fields.
func Subsample(s Series, length int, rng *rand.Rand) (Series, error) {
	if length <= 0 {
		return Series{}, fmt.Errorf("gtsrb: subsample length %d must be positive", length)
	}
	if length > s.Len() {
		return Series{}, fmt.Errorf("gtsrb: subsample length %d exceeds series length %d", length, s.Len())
	}
	start := 0
	if s.Len() > length {
		start = rng.IntN(s.Len() - length + 1)
	}
	sub := Series{ID: s.ID, Class: s.Class, Location: s.Location, Frames: make([]Frame, length)}
	copy(sub.Frames, s.Frames[start:start+length])
	for j := range sub.Frames {
		sub.Frames[j].Step = j
	}
	return sub, nil
}
