// Package xslice holds the one slice helper the serving path's recycling
// idiom is built on, shared so the packages that recycle buffers (core's
// batch results, dtree's batch outputs, tauserve's scratch) cannot drift
// apart on its semantics.
package xslice

// Grow returns s[:n], reallocating only when the capacity is insufficient.
// Recycled storage is returned as-is: callers that care about stale
// contents must overwrite every element (the batch paths do) or clear
// explicitly.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
