package xslice

import "testing"

func TestGrow(t *testing.T) {
	s := make([]int, 2, 8)
	s[0], s[1] = 7, 9
	g := Grow(s, 5)
	if len(g) != 5 || cap(g) != 8 {
		t.Errorf("Grow within cap = len %d cap %d, want 5/8", len(g), cap(g))
	}
	if &g[0] != &s[:1][0] {
		t.Error("Grow within cap reallocated")
	}
	if g[0] != 7 || g[1] != 9 {
		t.Error("Grow clobbered recycled contents")
	}
	big := Grow(s, 9)
	if len(big) != 9 {
		t.Errorf("Grow beyond cap = len %d, want 9", len(big))
	}
	if big[0] != 0 {
		t.Error("fresh allocation not zeroed")
	}
	if got := Grow[int](nil, 0); len(got) != 0 {
		t.Errorf("Grow(nil, 0) = len %d, want 0", len(got))
	}
	if got := Grow[int](nil, 3); len(got) != 3 {
		t.Errorf("Grow(nil, 3) = len %d, want 3", len(got))
	}
}
