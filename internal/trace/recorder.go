package trace

import (
	"cmp"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Recorder defaults: 8 ring stripes of 4096 events cover ~30k events of
// recent history (about a second of saturated single-core stepping, minutes
// of realistic mixed traffic) in ~1.3 MiB; anomaly snapshots look back 30
// seconds; 256 sheds inside one second freeze a shed-rate anomaly.
const (
	DefaultRings      = 8
	DefaultRingEvents = 4096
	DefaultWindow     = 30 * time.Second
	DefaultShedPerSec = 256
)

// Config tunes a Recorder. The zero value means defaults everywhere.
type Config struct {
	// Rings is the number of ring stripes (rounded up to a power of two).
	// Events stripe by pool shard, so contention on one stripe's spin word
	// only arises between shards that share it.
	Rings int
	// RingEvents is each stripe's capacity in events (rounded up to a
	// power of two); the oldest events are overwritten when full.
	RingEvents int
	// Window is how far back an anomaly snapshot reaches.
	Window time.Duration
	// ShedPerSec freezes a "shed_rate" anomaly when this many admission
	// sheds land inside one second; < 0 disables the trigger.
	ShedPerSec int
	// OnAnomaly, when set, is called once per frozen snapshot (reason, the
	// freeze time in Unix nanoseconds, and the captured event count) — the
	// hook behind the structured anomaly log line. It runs with the
	// recorder's anomaly lock held and must not call back into Freeze.
	OnAnomaly func(reason string, at int64, events int)
}

// stripePad aligns each ring stripe to its own cache lines, the same
// false-sharing discipline as the pool's shards: two cores recording to
// neighbouring stripes must not ping-pong one line between them.
const stripePad = 128

type ringState struct {
	// lock is the stripe's spin word: 0 free, 1 held. Writers CAS it to 1,
	// write their slot, and release with a plain atomic store — the two
	// atomic operations of the hot-path budget. The CAS acquire and the
	// release store pair into a happens-before edge, so the plain pos/buf
	// accesses inside the critical section are race-free by the memory
	// model, not just in practice.
	lock atomic.Uint32
	// pos counts events ever recorded to this stripe; pos & (len(buf)-1)
	// is the next slot, so the live region is the last min(pos, len(buf))
	// events ending at pos.
	pos uint64
	buf []Event
}

type ring struct {
	ringState
	_ [stripePad - unsafe.Sizeof(ringState{})%stripePad]byte
}

// Recorder is the flight recorder: striped event rings plus the anomaly
// snapshot state. All methods are safe on a nil *Recorder and do nothing,
// so layers wire `cfg.Trace.Record(...)` unconditionally.
type Recorder struct {
	rings []ring
	mask  uint64

	// The event clock: one wall-clock anchor captured at construction plus
	// the monotonic delta since. Monotonic reads keep merged dumps ordered
	// through NTP slews; the wall anchor keeps timestamps meaningful to an
	// operator reading the dump next to the logs.
	baseWall int64
	baseMono time.Time

	window    int64
	shedLimit int64
	onAnomaly func(reason string, at int64, events int)

	// Shed-rate trigger: a one-second tumbling window. The counter races
	// benignly across the window flip (a shed storm straddling a second
	// boundary may need a few extra events to trigger), which is fine for
	// an anomaly heuristic.
	shedSec   atomic.Int64
	shedCount atomic.Int64

	// anomaly is the last frozen snapshot; scratch is the reusable merge
	// buffer freezes snapshot into. Both live under anomMu.
	anomMu  sync.Mutex
	scratch []Event
	anomaly anomalyState
}

type anomalyState struct {
	info   AnomalyInfo
	events []Event
}

// AnomalyInfo describes a frozen anomaly snapshot.
type AnomalyInfo struct {
	// Reason is the trigger: "breaker_trip", "drift_alarm", "shed_rate".
	Reason string
	// At is the freeze time in Unix nanoseconds; Seq counts freezes since
	// construction, so a poller can tell a new anomaly from the last one.
	At  int64
	Seq uint64
}

// normPow2 rounds n up to a power of two (the ring index masks depend on
// it), mirroring the pool's shard normalisation.
func normPow2(n, def int) int {
	if n <= 0 {
		n = def
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New builds a Recorder. The zero Config is valid and gives the defaults.
func New(cfg Config) *Recorder {
	rings := normPow2(cfg.Rings, DefaultRings)
	events := normPow2(cfg.RingEvents, DefaultRingEvents)
	window := cfg.Window
	if window <= 0 {
		window = DefaultWindow
	}
	shed := int64(cfg.ShedPerSec)
	if cfg.ShedPerSec == 0 {
		shed = DefaultShedPerSec
	}
	now := time.Now()
	r := &Recorder{
		rings:     make([]ring, rings),
		mask:      uint64(rings - 1),
		baseWall:  now.UnixNano(),
		baseMono:  now,
		window:    int64(window),
		shedLimit: shed,
		onAnomaly: cfg.OnAnomaly,
	}
	for i := range r.rings {
		r.rings[i].buf = make([]Event, events)
	}
	return r
}

// Now returns the recorder's clock — Unix nanoseconds derived from the
// monotonic anchor. Callers timing an operation read it once at the start
// and hand it to RecordSince, so one event costs exactly two clock reads.
//
//tauw:hotpath
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return r.baseWall + int64(time.Since(r.baseMono))
}

// Record logs one instant event (no duration).
//
//tauw:hotpath
//tauw:noescape
func (r *Recorder) Record(kind Kind, status Status, shard uint16, series, arg uint64) {
	if r == nil {
		return
	}
	r.record(Event{TS: r.Now(), Series: series, Arg: arg, Kind: kind, Status: status, Shard: shard})
}

// RecordSince logs one timed event: start is a value previously read from
// Now, the event's timestamp is the present, and the duration the
// difference.
//
//tauw:hotpath
//tauw:noescape
func (r *Recorder) RecordSince(start int64, kind Kind, status Status, shard uint16, series, arg uint64) {
	if r == nil {
		return
	}
	ts := r.Now()
	r.record(Event{TS: ts, Series: series, Dur: ts - start, Arg: arg, Kind: kind, Status: status, Shard: shard})
}

// record claims the event's stripe and writes the slot: one CAS, one
// struct copy, one release store.
//
//tauw:noescape
func (r *Recorder) record(ev Event) {
	rg := &r.rings[uint64(ev.Shard)&r.mask]
	for spins := 0; !rg.lock.CompareAndSwap(0, 1); spins++ {
		if spins > 64 {
			// A dump holds the stripe for a bounded copy; yield instead of
			// burning the core it needs to finish.
			runtime.Gosched()
		}
	}
	rg.buf[rg.pos&uint64(len(rg.buf)-1)] = ev
	rg.pos++
	rg.lock.Store(0)

	if ev.Kind == KindShed && r.shedLimit > 0 {
		r.noteShed(ev.TS)
	}
}

// noteShed advances the one-second shed window and freezes a shed-rate
// anomaly the moment the count crosses the limit (== not >=, so one storm
// freezes once).
func (r *Recorder) noteShed(ts int64) {
	sec := ts / int64(time.Second)
	if w := r.shedSec.Load(); w != sec {
		if r.shedSec.CompareAndSwap(w, sec) {
			r.shedCount.Store(0)
		}
	}
	if r.shedCount.Add(1) == r.shedLimit {
		// The freeze is the storm's one cold transition: at most once per
		// shed window, and worth its snapshot cost by definition.
		//tauwcheck:ignore hotpath anomaly freeze fires once per storm, deliberately cold
		r.Freeze("shed_rate")
	}
}

// drain appends the stripe's live events to dst in recording order. It
// holds the stripe's spin word for the copy, so callers should pass a dst
// with capacity to spare: growing the slice while writers spin would
// stretch a bounded pause into an allocation.
func (rg *ring) drain(dst []Event) []Event {
	for spins := 0; !rg.lock.CompareAndSwap(0, 1); spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
	n := uint64(len(rg.buf))
	start := uint64(0)
	if rg.pos > n {
		start = rg.pos - n
	}
	for i := start; i < rg.pos; i++ {
		dst = append(dst, rg.buf[i&(n-1)])
	}
	rg.lock.Store(0)
	return dst
}

// Snapshot merges every stripe's live events into dst (reset to length
// zero first) and returns them sorted by timestamp — the /debug/flight
// dump. Steady-state cost is the copy plus an in-place sort: zero
// allocations once dst has grown to the rings' total capacity.
func (r *Recorder) Snapshot(dst []Event) []Event {
	dst = dst[:0]
	if r == nil {
		return dst
	}
	for i := range r.rings {
		dst = r.rings[i].drain(dst)
	}
	slices.SortFunc(dst, func(a, b Event) int { return cmp.Compare(a.TS, b.TS) })
	return dst
}

// Capacity reports the recorder's total event capacity (all stripes), the
// snapshot buffer size a caller should pre-grow to.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.rings) * len(r.rings[0].buf)
}

// Freeze captures the last Window of events as the recorder's anomaly
// snapshot, records a KindAnomaly marker in the live stream, and fires the
// OnAnomaly hook. Re-freezing replaces the previous snapshot: the *last*
// anomaly is the one an operator is paged about.
func (r *Recorder) Freeze(reason string) {
	if r == nil {
		return
	}
	now := r.Now()
	r.record(Event{TS: now, Kind: KindAnomaly, Status: StatusOK})

	r.anomMu.Lock()
	defer r.anomMu.Unlock()
	r.scratch = r.Snapshot(r.scratch)
	evs := r.scratch
	cut := now - r.window
	lo := 0
	for lo < len(evs) && evs[lo].TS < cut {
		lo++
	}
	evs = evs[lo:]
	r.anomaly.info.Reason = reason
	r.anomaly.info.At = now
	r.anomaly.info.Seq++
	r.anomaly.events = append(r.anomaly.events[:0], evs...)
	if r.onAnomaly != nil {
		r.onAnomaly(reason, now, len(evs))
	}
}

// LastAnomaly appends the last frozen snapshot's events to dst and returns
// its metadata. A zero-valued AnomalyInfo (Seq 0) means nothing has been
// frozen yet.
func (r *Recorder) LastAnomaly(dst []Event) (AnomalyInfo, []Event) {
	dst = dst[:0]
	if r == nil {
		return AnomalyInfo{}, dst
	}
	r.anomMu.Lock()
	defer r.anomMu.Unlock()
	return r.anomaly.info, append(dst, r.anomaly.events...)
}
