package trace

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tornMagic ties an event's fields together: writers set Arg = Series ^
// tornMagic and Dur = -int64(Series), so any event assembled from two
// different writes (a torn slot) breaks the invariant.
const tornMagic = 0x5bd1e995c3b4a717

func checkNotTorn(t *testing.T, evs []Event) {
	t.Helper()
	for i, ev := range evs {
		if ev.Kind != KindStep {
			continue
		}
		if ev.Arg != ev.Series^tornMagic || ev.Dur != -int64(ev.Series) {
			t.Fatalf("event %d torn: series=%d arg=%#x dur=%d", i, ev.Series, ev.Arg, ev.Dur)
		}
	}
}

func checkOrdered(t *testing.T, evs []Event) {
	t.Helper()
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("snapshot out of order at %d: %d after %d", i, evs[i].TS, evs[i-1].TS)
		}
	}
}

// TestSnapshotWraparoundOrdering is the property test of the satellite:
// overfill every stripe several times over from interleaved writers, then
// require the merged snapshot to be time-ordered, capacity-bounded, and
// free of torn events.
func TestSnapshotWraparoundOrdering(t *testing.T) {
	r := New(Config{Rings: 4, RingEvents: 64})
	const total = 4 * 64 * 5 // 5x overfill
	for i := 0; i < total; i++ {
		s := uint64(i)
		r.record(Event{
			TS: r.Now(), Series: s, Dur: -int64(s), Arg: s ^ tornMagic,
			Kind: KindStep, Shard: uint16(i % 16),
		})
	}
	evs := r.Snapshot(nil)
	if len(evs) != r.Capacity() {
		t.Fatalf("snapshot has %d events, want full capacity %d", len(evs), r.Capacity())
	}
	checkOrdered(t, evs)
	checkNotTorn(t, evs)
	// Every stripe must have kept its *newest* events: series below the
	// eviction horizon of the most-overwritten stripe are gone.
	minSeries := evs[0].Series
	for _, ev := range evs {
		if ev.Series < minSeries {
			minSeries = ev.Series
		}
	}
	if minSeries < total-uint64(r.Capacity())-16*4 {
		t.Fatalf("snapshot kept stale series %d after %d writes", minSeries, total)
	}
}

// TestConcurrentRecordDumpFreeze is the race test: step/feedback/swap/
// checkpoint writers on every stripe, concurrent snapshots, and concurrent
// freezes, all while the shed trigger fires. Run under -race this proves
// the spin-word protocol establishes the happens-before edges; the torn
// check proves slot writes are atomic with respect to readers.
func TestConcurrentRecordDumpFreeze(t *testing.T) {
	r := New(Config{Rings: 4, RingEvents: 128, ShedPerSec: 8})
	var stop atomic.Bool
	var wg sync.WaitGroup

	writer := func(kind Kind, worker uint64) {
		defer wg.Done()
		for i := uint64(0); !stop.Load(); i++ {
			s := worker<<32 | i
			switch kind {
			case KindStep:
				start := r.Now()
				r.record(Event{
					TS: r.Now(), Series: s, Dur: -int64(s), Arg: s ^ tornMagic,
					Kind: KindStep, Shard: uint16(i % 32),
				})
				_ = start
			case KindShed:
				r.Record(KindShed, StatusQueueFull, 0, 0, EndpointStep)
			default:
				r.RecordSince(r.Now(), kind, StatusOK, uint16(i%32), s, i)
			}
		}
	}
	for w, kind := range []Kind{KindStep, KindStep, KindFeedback, KindSwap, KindCheckpoint, KindShed} {
		wg.Add(1)
		go writer(kind, uint64(w))
	}
	wg.Add(1)
	go func() { // the /debug/flight reader
		defer wg.Done()
		var buf []Event
		for !stop.Load() {
			buf = r.Snapshot(buf)
			checkOrdered(t, buf)
			checkNotTorn(t, buf)
		}
	}()
	wg.Add(1)
	go func() { // the anomaly freezer + /debug/flight/last-anomaly reader
		defer wg.Done()
		var buf []Event
		for !stop.Load() {
			r.Freeze("breaker_trip")
			_, buf = r.LastAnomaly(buf)
			checkNotTorn(t, buf)
		}
	}()

	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	info, evs := r.LastAnomaly(nil)
	if info.Seq == 0 || len(evs) == 0 {
		t.Fatalf("no anomaly captured after concurrent freezes (seq=%d, %d events)", info.Seq, len(evs))
	}
}

// TestFreezeWindowAndHook pins the anomaly contract: the snapshot keeps
// only the window, the marker event lands in the live stream, and the hook
// reports the freeze exactly once per call.
func TestFreezeWindowAndHook(t *testing.T) {
	var hookReason string
	var hookCalls, hookEvents int
	r := New(Config{Rings: 1, RingEvents: 16, Window: time.Hour,
		OnAnomaly: func(reason string, at int64, events int) {
			hookReason, hookCalls, hookEvents = reason, hookCalls+1, events
		}})
	r.Record(KindBreaker, StatusTripped, 0, 0, 0)
	r.Freeze("breaker_trip")
	if hookCalls != 1 || hookReason != "breaker_trip" || hookEvents < 1 {
		t.Fatalf("hook saw (%q, calls=%d, events=%d)", hookReason, hookCalls, hookEvents)
	}
	info, evs := r.LastAnomaly(nil)
	if info.Reason != "breaker_trip" || info.Seq != 1 || info.At == 0 {
		t.Fatalf("anomaly info = %+v", info)
	}
	found := false
	for _, ev := range evs {
		if ev.Kind == KindBreaker && ev.Status == StatusTripped {
			found = true
		}
	}
	if !found {
		t.Fatalf("frozen snapshot lost the breaker event: %+v", evs)
	}
	// The marker of the freeze itself must be visible to a later live dump.
	live := r.Snapshot(nil)
	found = false
	for _, ev := range live {
		if ev.Kind == KindAnomaly {
			found = true
		}
	}
	if !found {
		t.Fatal("live snapshot missing the KindAnomaly freeze marker")
	}

	// An old event outside the window must not survive a freeze.
	r2 := New(Config{Rings: 1, RingEvents: 16, Window: time.Millisecond})
	r2.Record(KindStep, StatusOK, 0, 7, 0)
	time.Sleep(5 * time.Millisecond)
	r2.Freeze("drift_alarm")
	_, evs = r2.LastAnomaly(nil)
	for _, ev := range evs {
		if ev.Kind == KindStep {
			t.Fatalf("freeze kept an event older than the window: %+v", ev)
		}
	}
}

// TestShedRateTrigger pins the shed-rate anomaly: crossing ShedPerSec
// inside one second freezes exactly one "shed_rate" snapshot.
func TestShedRateTrigger(t *testing.T) {
	r := New(Config{Rings: 1, RingEvents: 64, ShedPerSec: 5})
	for i := 0; i < 20; i++ {
		r.Record(KindShed, StatusQueueFull, 0, 0, EndpointSteps)
	}
	info, evs := r.LastAnomaly(nil)
	if info.Reason != "shed_rate" || info.Seq != 1 {
		t.Fatalf("shed storm froze %+v, want one shed_rate anomaly", info)
	}
	sheds := 0
	for _, ev := range evs {
		if ev.Kind == KindShed {
			sheds++
		}
	}
	if sheds < 5 {
		t.Fatalf("shed_rate snapshot holds %d shed events, want >= 5", sheds)
	}
}

// TestNilRecorder pins the no-op contract every call site relies on.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 {
		t.Fatal("nil Now != 0")
	}
	r.Record(KindStep, StatusOK, 0, 1, 2)
	r.RecordSince(0, KindStep, StatusOK, 0, 1, 2)
	r.Freeze("x")
	if got := r.Snapshot(nil); len(got) != 0 {
		t.Fatalf("nil Snapshot returned %d events", len(got))
	}
	if info, evs := r.LastAnomaly(nil); info.Seq != 0 || len(evs) != 0 {
		t.Fatal("nil LastAnomaly returned data")
	}
	if r.Capacity() != 0 {
		t.Fatal("nil Capacity != 0")
	}
}

// TestNames pins the wire names the flight encoder emits.
func TestNames(t *testing.T) {
	if KindStep.Name() != "step" || KindWALAppend.Name() != "wal_append" ||
		KindAnomaly.Name() != "anomaly" || Kind(200).Name() != "unknown" {
		t.Fatal("kind names diverged from the wire contract")
	}
	if StatusOK.Name() != "ok" || StatusTripped.Name() != "tripped" ||
		StatusDeadline.Name() != "deadline" || Status(200).Name() != "unknown" {
		t.Fatal("status names diverged from the wire contract")
	}
}

// TestConfigNormalisation pins the power-of-two rounding and defaults.
func TestConfigNormalisation(t *testing.T) {
	r := New(Config{})
	if len(r.rings) != DefaultRings || len(r.rings[0].buf) != DefaultRingEvents {
		t.Fatalf("zero config gave %d rings x %d events", len(r.rings), len(r.rings[0].buf))
	}
	r = New(Config{Rings: 3, RingEvents: 100})
	if len(r.rings) != 4 || len(r.rings[0].buf) != 128 {
		t.Fatalf("rounding gave %d rings x %d events, want 4 x 128", len(r.rings), len(r.rings[0].buf))
	}
	r = New(Config{ShedPerSec: -1})
	for i := 0; i < 100; i++ {
		r.Record(KindShed, StatusQueueFull, 0, 0, 0)
	}
	if info, _ := r.LastAnomaly(nil); info.Seq != 0 {
		t.Fatal("ShedPerSec < 0 must disable the shed trigger")
	}
}
